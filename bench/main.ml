(* bench/main.ml — the experiment harness.

   The paper has one figure (Figure 1) and no tables; its "evaluation" is a
   set of theorem-shaped quantitative claims. Each experiment below
   regenerates one of them as a printed table or series; EXPERIMENTS.md
   records the expected shapes and the measured outcomes.

     E1  Figure 1          chase grid of T_d on G^8
     E2  Theorem 5(B)      G^{2^n} in rew(phi_R^n); exponential disjuncts
     E3  Theorem 6(B)      T_d^K iterated level descent: tower growth
     E4  Theorem 4         FUS/FES: uniform c_{T,D} for local+CT theories
     E5  Example 39        sticky star: locality constant grows with degree
     E6  Example 42        T_c: whole-cycle support at degree 2
     E7  Definition 43     distance contraction: T_d vs linear theories
     E8  Example 28        truncated infinite theory: growing c_T
     E9  Example 66        ancestor sets: raw theory vs T_NF + crucial bound
     E10 Observation 31    linear-size rewritings for local theories
     E11 Exercise 46       ablation: T_d without (loop)
     E12 Observation 29    atomic-query support is uniformly small
     E13 Section 3/5       chase-flavour termination matrix
     E14 motivation        answering via rewriting vs via the chase
     par                   parallel layer determinism & scaling
     ix                    incremental indexing / memoization A/B
     rw                    subsumption index + decomposed containment A/B
     po                    portfolio selection over the zoo + fuzz smoke
     perf                  bechamel micro-benchmarks

   Usage: dune exec bench/main.exe [-- e1 e2 ... | all | perf] *)

open Logic

let line = String.make 78 '-'

let header id title claim =
  Fmt.pr "@.%s@.%s | %s@.     %s@.%s@." line id title claim line

let row fmt = Fmt.pr fmt

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1: the chase grid of T_d over the green path G^8        *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1" "Figure 1: fragment of Ch(T_d, G^8(a0,a8))"
    "the doubling grid appears; phi_R^3(a0,a8) holds; a0-a8 get closer";
  let a0, a8, g8 = Theories.Instances.path Theories.Zoo.g2 8 in
  let run, dt =
    time_it (fun () ->
        Chase.Engine.run ~max_depth:7 ~max_atoms:400_000 Theories.Zoo.t_d g8)
  in
  row "  %-8s %-10s %-14s %-14s@." "stage" "atoms" "R over path" "G over path";
  let dom = Fact_set.domain g8 in
  for i = 0 to Chase.Engine.depth run do
    let stage = Chase.Engine.stage run i in
    let count rel =
      List.length
        (List.filter
           (fun a ->
             Symbol.equal (Atom.rel a) rel
             && Term.Set.mem (Atom.arg a 0) dom
             && not (Fact_set.mem a g8))
           (Fact_set.atoms stage))
    in
    row "  %-8d %-10d %-14d %-14d@." i
      (Fact_set.cardinal stage)
      (count Theories.Zoo.r2) (count Theories.Zoo.g2)
  done;
  let _, _, phi3 = Theories.Zoo.phi_r 3 in
  (match Chase.Entailment.entails_run run phi3 [ a0; a8 ] with
  | Chase.Entailment.Entailed n ->
      row "  phi_R^3(a0,a8): DERIVED at depth %d@." n
  | _ -> row "  phi_R^3(a0,a8): not derived within budget@.");
  (match Rewriting.Distancing.max_contraction run with
  | Some (p, ratio) ->
      row "  max contraction: dist_D(%a,%a)=%d vs dist_Ch=%d  (ratio %.3f)@."
        Term.pp p.Rewriting.Distancing.a Term.pp p.Rewriting.Distancing.b
        (Option.get p.Rewriting.Distancing.dist_d)
        (Option.get p.Rewriting.Distancing.dist_ch)
        ratio
  | None -> ());
  row "  rule profile: %s@."
    (String.concat ", "
       (List.map
          (fun (name, n) -> Printf.sprintf "%s:%d" name n)
          (Chase.Engine.rule_counts run)));
  row "  (%.2fs)@." dt

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 5(B): exponential disjuncts in rew(phi_R^n)            *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2" "Theorem 5(B): G^{2^n} in rew_{T_d}(phi_R^n)"
    "max disjunct size >= 2^n although |phi_R^n| = 2n+1 (exponential blow-up)";
  row "  %-4s %-8s %-10s %-10s %-8s %-12s %-10s %-8s@." "n" "|phi|" "disjuncts"
    "max size" "2^n" "G^{2^n}?" "steps" "time";
  List.iter
    (fun n ->
      let _, _, phi = Theories.Zoo.phi_r n in
      let res, dt =
        time_it (fun () ->
            Marked.Process.rewrite_td
              ~pool:(Parallel.Pool.get_default ())
              phi)
      in
      let _, _, gq = Theories.Zoo.g_path_query (1 lsl n) in
      let found =
        Ucq.exists
          (fun d -> Containment.isomorphic d gq)
          res.Marked.Process.rewriting
      in
      row "  %-4d %-8d %-10d %-10d %-8d %-12b %-10d %.2fs%s@." n (Cq.size phi)
        (Ucq.cardinal res.Marked.Process.rewriting)
        (Ucq.max_disjunct_size res.Marked.Process.rewriting)
        (1 lsl n) found res.Marked.Process.stats.Marked.Process.steps dt
        (if res.Marked.Process.complete then "" else " (budget!)"))
    (* n = 5 became affordable with the subsumption-indexed UCQ store and
       the component-decomposed containment solver (the rw experiment);
       the seed engine needed minutes for it. *)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 6(B): the T_d^K tower by iterated level descent        *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3" "Theorem 6(B): (K-1)-fold exponential rewritings for T_d^K"
    "iterated level descent: each pair (I_{i+1}, I_i) doubles path length";
  row "  (the single-query construction is deferred to the paper's journal@.";
  row "   version; we chain the per-level processes, which realizes the same@.";
  row "   tower: phi at level k with parameter m yields I_{k-1}^{2^m})@.@.";
  row "  %-4s %-4s %-22s %-14s %-10s@." "K" "n" "descent" "final length"
    "verdict";
  let descend kk start_len =
    (* From level K down to 2: rewrite phi_{I_k}^{len}, extract the
       I_{k-1}-path disjunct, whose length becomes the next len. *)
    let rec go k len acc =
      if k < 2 then (List.rev acc, len)
      else
        let _, _, phi = Theories.Zoo.phi_i k len in
        let res =
          Marked.Process.rewrite_tdk
            ~pool:(Parallel.Pool.get_default ())
            kk ~max_steps:500_000 phi
        in
        if not res.Marked.Process.complete then (List.rev acc, -1)
        else
          let expected = 1 lsl len in
          let _, _, path_q = Theories.Zoo.i_path_query (k - 1) expected in
          if
            Ucq.exists
              (fun d -> Containment.isomorphic d path_q)
              res.Marked.Process.rewriting
          then go (k - 1) expected (expected :: acc)
          else (List.rev acc, -1)
    in
    go kk start_len [ start_len ]
  in
  List.iter
    (fun (kk, n) ->
      let (chain, final), dt = time_it (fun () -> descend kk n) in
      row "  %-4d %-4d %-22s %-14d %-10s (%.2fs)@." kk n
        (String.concat "->" (List.map string_of_int chain))
        final
        (if final > 0 then "confirmed" else "FAILED")
        dt)
    (* (2, 5) became affordable together with E2's n = 5 (see the rw
       experiment): one descent step rewriting phi_{I_2}^5 to the
       I_1-path of length 32. *)
    [ (2, 1); (2, 2); (2, 3); (3, 1); (3, 2); (4, 1); (2, 5) ]

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 4: the FUS/FES conjecture for local theories           *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4" "Theorem 4: local + core-terminating => uniformly bounded chase"
    "c_{T,D} stays flat for T_spouse / T_loopcut; T_p never core-terminates";
  let person_court n =
    Fact_set.of_list
      (List.init n (fun i ->
           Atom.make Theories.Zoo.person
             [ Term.const (Printf.sprintf "p%d" i) ]))
  in
  let e_path n =
    let _, _, d = Theories.Instances.path Theories.Zoo.e2 n in
    d
  in
  let sizes = [ 1; 2; 4; 6; 8 ] in
  row "  %-12s" "instance |D|";
  List.iter (fun n -> row " %6d" n) sizes;
  row "@.";
  let series name theory make =
    row "  %-12s" name;
    List.iter
      (fun n ->
        match
          Chase.Termination.core_terminates_on ~max_c:8 ~lookahead:4
            ~max_atoms:60_000 theory (make n)
        with
        | Chase.Termination.Holds c -> row " %6d" c
        | Chase.Termination.Budget_exhausted | Chase.Termination.Fails ->
            row " %6s" "-")
      sizes;
    row "@."
  in
  series "T_spouse" Theories.Zoo.t_spouse person_court;
  series "T_loopcut" Theories.Zoo.t_loopcut e_path;
  series "T_p" Theories.Zoo.t_p e_path;
  row "  ('-' = no model found within budget: T_p is BDD but not FES,@.";
  row "   so no finite stage ever contains a model — Exercise 22)@."

(* ------------------------------------------------------------------ *)
(* E5 — Example 39: sticky theories are bd-local but not local         *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header "E5" "Example 39: sticky star needs locality constant k+1"
    "min locality constant grows with the observer's degree; flat at fixed degree";
  row "  %-10s %-8s %-14s %-12s@." "colours k" "|D|" "min l (star)" "degree";
  List.iter
    (fun k ->
      let star = Theories.Instances.sticky_star k in
      let deg = Gaifman.max_degree (Gaifman.of_fact_set star) in
      (* The sticky chase fans out k-fold per level: keep the sub-chase
         window equal to the main window (derivations are depth-monotone
         in the sub-instance, so this is exact here). *)
      match
        Rewriting.Locality.min_constant ~depth:(k + 1) ~sub_depth:(k + 1)
          Theories.Zoo.t_sticky star ~max_l:(k + 1)
      with
      | Some l ->
          row "  %-10d %-8d %-14d %-12d@." k (Fact_set.cardinal star) l deg
      | None ->
          row "  %-10d %-8d > %-12d %-12d@." k (Fact_set.cardinal star)
            (k + 2) deg)
    [ 1; 2; 3; 4; 5 ];
  let _, _, chain = Theories.Instances.path Theories.Zoo.r2 4 in
  match
    Rewriting.Locality.min_constant ~depth:4 Theories.Zoo.t_sticky chain
      ~max_l:3
  with
  | Some l -> row "  degree-2 R-chain of 4: min l = %d (bd-locality)@." l
  | None -> row "  degree-2 chain: > 3@."

(* ------------------------------------------------------------------ *)
(* E6 — Example 42: T_c is BDD but not bd-local                        *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6" "Example 42: T_c needs the whole n-cycle (degree 2)"
    "some chase atom requires every fact: support = n, at constant degree";
  row "  %-6s %-10s %-14s %-10s@." "n" "degree" "max support" "time";
  List.iter
    (fun n ->
      let cyc = Theories.Instances.cycle Theories.Zoo.e2 n in
      let deg = Gaifman.max_degree (Gaifman.of_fact_set cyc) in
      let support, dt =
        time_it (fun () ->
            Rewriting.Locality.max_support ~depth:n ~sub_depth:n
              Theories.Zoo.t_c cyc)
      in
      match support with
      | Some s -> row "  %-6d %-10d %-14d %.2fs@." n deg s dt
      | None -> row "  %-6d %-10d %-14s %.2fs@." n deg "-" dt)
    [ 3; 4; 5; 6; 7 ]

(* ------------------------------------------------------------------ *)
(* E7 — Definition 43: T_d is not distancing                           *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7" "Definition 43: distance contraction under the chase"
    "T_d: dist_D / dist_Ch grows (2^n vs ~2n+1); linear T_p: never above 1";
  row "  %-12s %-8s %-14s %-14s %-10s@." "theory" "path" "endpoint dist_D"
    "endpoint dist_Ch" "ratio";
  let endpoint_pair run a b =
    List.find_opt
      (fun p ->
        Term.equal p.Rewriting.Distancing.a a
        && Term.equal p.Rewriting.Distancing.b b
        || Term.equal p.Rewriting.Distancing.a b
           && Term.equal p.Rewriting.Distancing.b a)
      (Rewriting.Distancing.pairs run)
  in
  List.iter
    (fun n ->
      let len = 1 lsl n in
      let a, b, d = Theories.Instances.path Theories.Zoo.g2 len in
      let depth = min 8 (2 * n + 2) in
      let run =
        Chase.Engine.run ~max_depth:depth ~max_atoms:500_000 Theories.Zoo.t_d
          d
      in
      match endpoint_pair run a b with
      | Some { Rewriting.Distancing.dist_d = Some dd; dist_ch = Some dc; _ }
        ->
          row "  %-12s G^%-6d %-14d %-14d %-10.3f@." "T_d" len dd dc
            (float_of_int dd /. float_of_int dc)
      | _ -> row "  %-12s G^%-6d (endpoints not both reached)@." "T_d" len)
    [ 2; 3; 4 ];
  List.iter
    (fun len ->
      let a, b, d = Theories.Instances.path Theories.Zoo.e2 len in
      let run = Chase.Engine.run ~max_depth:6 Theories.Zoo.t_p d in
      match endpoint_pair run a b with
      | Some { Rewriting.Distancing.dist_d = Some dd; dist_ch = Some dc; _ }
        ->
          row "  %-12s E^%-6d %-14d %-14d %-10.3f@." "T_p" len dd dc
            (float_of_int dd /. float_of_int dc)
      | _ -> row "  %-12s E^%-6d (endpoints not both reached)@." "T_p" len)
    [ 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* E8 — Example 28: the FUS/FES conjecture fails for infinite theories *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8" "Example 28: truncations of the infinite theory"
    "c_{T,D} grows with the truncation level n: no uniform bound exists";
  row "  %-6s %-16s %-12s@." "n" "saturation depth" "c_{T,D}";
  List.iter
    (fun n ->
      let theory = Theories.Zoo.t_e28 n in
      let d = Theories.Instances.e28_start n in
      let sat =
        match
          Chase.Termination.all_instances_terminates_on ~max_depth:(n + 3)
            theory d
        with
        | Chase.Termination.Holds k -> string_of_int k
        | _ -> "-"
      in
      let c =
        match
          Chase.Termination.core_terminates_on ~max_c:(n + 2) ~lookahead:2
            theory d
        with
        | Chase.Termination.Holds c -> string_of_int c
        | _ -> "-"
      in
      row "  %-6d %-16s %-12s@." n sat c)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* E9 — Example 66 / Lemma 77: ancestor sets, raw vs normalized        *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9" "Example 66 vs the Crucial Lemma (Appendix A)"
    "adversarial ancestors grow with |D| for raw T; bounded under T_NF";
  match Normalization.Normalize.normalize Theories.Zoo.t_ex66 with
  | None -> row "  normalization did not complete@."
  | Some nf ->
      let bound = Normalization.Normalize.crucial_bound nf in
      let k, h, n, cap_n = Normalization.Normalize.constants nf in
      row "  T_NF: %d rules, k=%d nullary, h=%d, N=%s, crucial bound M=%s@." n
        k h
        (if cap_n = max_int then "inf" else string_of_int cap_n)
        (if bound = max_int then "inf" else string_of_int bound);
      row "  %-8s %-22s %-22s@." "m" "raw max ancestors" "T_NF max ancestors";
      List.iter
        (fun m ->
          let d = Theories.Instances.ex66_instance m in
          let raw_run =
            Chase.Engine.run ~max_depth:(2 * m) ~max_atoms:50_000
              Theories.Zoo.t_ex66 d
          in
          let raw =
            Normalization.Ancestry.max_tree_ancestors raw_run
              (Normalization.Ancestry.Adversarial 17)
          in
          let nf_run =
            Chase.Engine.run ~max_depth:(2 * m) ~max_atoms:50_000
              nf.Normalization.Normalize.t_nf d
          in
          let nfc =
            Normalization.Ancestry.max_tree_ancestors nf_run
              (Normalization.Ancestry.Adversarial 17)
          in
          row "  %-8d %-22d %-22d@." m raw nfc)
        [ 2; 4; 6; 8; 10 ]

(* ------------------------------------------------------------------ *)
(* E10 — Observation 31: local theories have linear-size rewritings    *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10" "Observation 31: rs_T(psi) <= l_T * |psi| for local theories"
    "rs grows (at most) linearly in query size for T_p; exponentially for T_d";
  row "  %-12s %-8s %-8s %-10s@." "theory" "|psi|" "rs" "rs/|psi|";
  List.iter
    (fun n ->
      let _, _, q = Theories.Zoo.e_path_query n in
      match Rewriting.Rewrite.rs Theories.Zoo.t_p q with
      | Some rs ->
          row "  %-12s %-8d %-8d %-10.2f@." "T_p" n rs
            (float_of_int rs /. float_of_int n)
      | None -> row "  %-12s %-8d (incomplete)@." "T_p" n)
    [ 1; 2; 3; 4; 5; 6 ];
  List.iter
    (fun n ->
      let _, _, phi = Theories.Zoo.phi_r n in
      let res = Marked.Process.rewrite_td phi in
      let rs = Ucq.max_disjunct_size res.Marked.Process.rewriting in
      row "  %-12s %-8d %-8d %-10.2f@." "T_d" (Cq.size phi) rs
        (float_of_int rs /. float_of_int (Cq.size phi)))
    [ 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* E11 — Exercise 46: the (loop) ablation                              *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11" "Exercise 46 (ablation): T_d without (loop)"
    "with (loop) every boolean query holds at depth 1; without, depth varies";
  let _, _, d = Theories.Instances.path Theories.Zoo.g2 2 in
  row "  boolean query depth (instance G^2):@.";
  row "  %-10s %-12s %-16s@." "query" "T_d" "T_d \\ (loop)";
  List.iter
    (fun n ->
      let _, _, phi = Theories.Zoo.phi_r n in
      let bq = Cq.make ~free:[] (Cq.atoms phi) in
      let depth_under theory =
        let run = Chase.Engine.run ~max_depth:6 ~max_atoms:150_000 theory d in
        match Chase.Entailment.needed_depth run bq [] with
        | Some k -> string_of_int k
        | None -> "-"
      in
      row "  phi_R^%-3d  %-12s %-16s@." n
        (depth_under Theories.Zoo.t_d)
        (depth_under Theories.Zoo.t_d_noloop))
    [ 1; 2 ];
  row "  (phi_R^3 needs chase depth 9 without (loop) — growing with the@.";
  row "   query is fine for BDD; the point is the uniform depth 1 with it)@.";
  row "@.  generic piece-rewriting (single-head compilation), query G(x,y):@.";
  let x = Term.var "x" and y = Term.var "y" in
  let q = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.g2 [ x; y ] ] in
  let budget =
    {
      Rewriting.Rewrite.max_disjuncts = 60;
      max_atoms_per_disjunct = 20;
      max_steps = 400;
    }
  in
  let r = Rewriting.Rewrite.rewrite ~budget Theories.Zoo.t_d_noloop q in
  row "  T_d \\ (loop): %s after %d steps (%d disjuncts)@."
    (match r.Rewriting.Rewrite.outcome with
    | Rewriting.Rewrite.Complete -> "complete"
    | Rewriting.Rewrite.Step_budget -> "step budget exhausted"
    | Rewriting.Rewrite.Disjunct_budget -> "disjunct budget exhausted"
    | Rewriting.Rewrite.Size_budget -> "size budget exhausted"
    | Rewriting.Rewrite.Guard_exhausted c ->
        "guard: " ^ Guard.cause_to_string c)
    r.Rewriting.Rewrite.steps
    (Ucq.cardinal r.Rewriting.Rewrite.ucq);
  row "  (the marked-query process, which exploits all three rules of T_d,@.";
  row "   completes on every phi_R^n — see E2; the generic engine cannot@.";
  row "   even represent (pins)/(loop) and diverges on the grid rule alone)@."

(* ------------------------------------------------------------------ *)
(* E12 — Observation 29 / Exercise 13: atomic support is small         *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12"
    "Observation 29: derived atoms come from few facts (BDD locality)"
    "max fact-support of any chase atom stays small for local theories";
  row "  %-12s %-8s %-14s@." "theory" "|D|" "max support";
  let cases =
    [
      ( "T_spouse",
        Theories.Zoo.t_spouse,
        Fact_set.of_list
          (List.init 5 (fun i ->
               Atom.make Theories.Zoo.person
                 [ Term.const (Printf.sprintf "p%d" i) ])) );
      ( "T_loopcut",
        Theories.Zoo.t_loopcut,
        let _, _, d = Theories.Instances.path Theories.Zoo.e2 5 in
        d );
      ( "T_p",
        Theories.Zoo.t_p,
        Theories.Instances.random_binary ~seed:7 ~rels:[ Theories.Zoo.e2 ]
          ~nodes:4 ~facts:6 );
    ]
  in
  List.iter
    (fun (name, theory, d) ->
      match Rewriting.Locality.max_support ~depth:3 ~sub_depth:6 theory d with
      | Some s -> row "  %-12s %-8d %-14d@." name (Fact_set.cardinal d) s
      | None -> row "  %-12s %-8d %-14s@." name (Fact_set.cardinal d) "-")
    cases

(* ------------------------------------------------------------------ *)
(* E13 — chase variants: termination is flavour-dependent (Section 3)  *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13" "Chase flavours across the zoo (Sections 3 and 5)"
    "restricted may terminate where (semi-)oblivious diverge; FES is flavour-free";
  row "  %-28s %-16s %-12s %-14s %-12s %-8s %-6s@." "case" "semi-oblivious"
    "oblivious" "restricted" "core chase" "FES" "w.a.";
  let verdict_semi theory d =
    let r = Chase.Engine.run ~max_depth:10 ~max_atoms:20_000 theory d in
    if Chase.Engine.saturated r then
      Printf.sprintf "stops@%d" (Chase.Engine.depth r)
    else "diverges"
  in
  let verdict_ob theory d =
    let r =
      Chase.Variants.run_oblivious ~max_depth:10 ~max_atoms:20_000 theory d
    in
    if r.Chase.Variants.saturated then
      Printf.sprintf "stops@%d" r.Chase.Variants.steps
    else "diverges"
  in
  let verdict_restricted theory d =
    let r =
      Chase.Variants.run_restricted ~max_applications:500 ~max_atoms:20_000
        theory d
    in
    if r.Chase.Variants.saturated then
      Printf.sprintf "model@%d" r.Chase.Variants.steps
    else "diverges"
  in
  let fes theory d =
    match Chase.Termination.core_terminates_on ~max_c:6 ~lookahead:4 theory d with
    | Chase.Termination.Holds c -> Printf.sprintf "c=%d" c
    | _ -> "-"
  in
  let verdict_core theory d =
    let r = Chase.Variants.run_core ~max_rounds:8 ~max_atoms:20_000 theory d in
    if r.Chase.Variants.saturated then
      Printf.sprintf "model@%d" r.Chase.Variants.steps
    else "diverges"
  in
  List.iter
    (fun (name, theory, d) ->
      row "  %-28s %-16s %-12s %-14s %-12s %-8s %-6b@." name
        (verdict_semi theory d)
        (verdict_ob theory d)
        (verdict_restricted theory d)
        (verdict_core theory d)
        (fes theory d)
        (Theories.Classes.is_weakly_acyclic theory))
    [
      ("T_spouse / Person(ada)", Theories.Zoo.t_spouse,
       Fact_set.of_list
         [ Atom.make Theories.Zoo.person [ Term.const "ada" ] ]);
      ("T_p / E(a,b)", Theories.Zoo.t_p,
       Theories.Instances.single_edge Theories.Zoo.e2);
      ("T_loopcut / E(a,b)", Theories.Zoo.t_loopcut,
       Theories.Instances.single_edge Theories.Zoo.e2);
      ("T_a / Human(abel)", Theories.Zoo.t_a, Theories.Instances.human_abel);
      ("T_ex66 / m=3", Theories.Zoo.t_ex66,
       Theories.Instances.ex66_instance 3);
      ("transitive closure / E^4",
       (let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
        Theory.make ~name:"tc"
          [
            Tgd.make
              ~body:
                [ Atom.make Theories.Zoo.e2 [ x; y ];
                  Atom.make Theories.Zoo.e2 [ y; z ] ]
              ~head:[ Atom.make Theories.Zoo.e2 [ x; z ] ]
              ();
          ]),
       (let _, _, d = Theories.Instances.path Theories.Zoo.e2 4 in
        d));
    ]

(* ------------------------------------------------------------------ *)
(* E14 — the point of BDD: query answering without the chase           *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header "E14" "Why FUS matters: rewriting-based answering vs the chase"
    "query time flat-ish under rewriting; chase cost grows with the database";
  (* A linear (BDD) ontology: employment with invented departments. *)
  let staff = Symbol.make "Staff" ~arity:1 in
  let works = Symbol.make "WorksFor" ~arity:2 in
  let dept = Symbol.make "Department" ~arity:1 in
  let x = Term.var "x" and dvar = Term.var "d" in
  let ontology =
    Theory.make ~name:"employment"
      [
        Tgd.make ~name:"employed" ~body:[ Atom.make staff [ x ] ]
          ~head:[ Atom.make works [ x; dvar ] ] ();
        Tgd.make ~name:"dept" ~body:[ Atom.make works [ x; dvar ] ]
          ~head:[ Atom.make dept [ dvar ] ] ();
      ]
  in
  let database n =
    Fact_set.of_list
      (List.concat_map
         (fun i ->
           [
             Atom.make staff [ Term.const (Printf.sprintf "s%d" i) ];
             Atom.make works
               [
                 Term.const (Printf.sprintf "s%d" i);
                 Term.const (Printf.sprintf "d%d" (i mod 7));
               ];
           ])
         (List.init n (fun i -> i)))
  in
  let q =
    Cq.make ~free:[ x ] [ Atom.make works [ x; dvar ] ]
  in
  let reasoner = Frontier.Reasoner.create ontology in
  (* Warm the cache once so E14 measures pure query time. *)
  ignore (Frontier.Reasoner.answer reasoner (database 1) q);
  row "  %-10s %-10s %-16s %-16s@." "|D|" "answers" "rewriting (ms)"
    "chase (ms)";
  List.iter
    (fun n ->
      let d = database n in
      let (answers, route), t_rew =
        time_it (fun () -> Frontier.Reasoner.answer reasoner d q)
      in
      assert (route = Frontier.Reasoner.Rewriting);
      let _, t_chase =
        time_it (fun () ->
            let run = Chase.Engine.run ~max_depth:3 ontology d in
            ignore (Cq.answers q (Chase.Engine.result run)))
      in
      row "  %-10d %-10d %-16.2f %-16.2f@." (2 * n) (List.length answers)
        (t_rew *. 1000.) (t_chase *. 1000.))
    [ 50; 100; 200; 400; 800 ]

(* ------------------------------------------------------------------ *)
(* par — the parallel execution layer: determinism and scaling         *)
(* ------------------------------------------------------------------ *)

let par () =
  header "par" "parallel chase & rewriting (lib/parallel) vs sequential"
    "bit-identical chase stages and equivalent rewritings at any -j; \
     speedup needs > 1 core";
  let pool = Parallel.Pool.get_default () in
  let jobs = Parallel.Pool.size pool in
  row "  jobs: %d (-j N or FRONTIER_JOBS; this machine has %d cores)@." jobs
    (Domain.recommended_domain_count ());
  (* Chase workload: the E1 grid, T_d on G^8 to depth 7. *)
  let _, _, g8 = Theories.Instances.path Theories.Zoo.g2 8 in
  let chase p =
    Chase.Engine.run ?pool:p ~max_depth:7 ~max_atoms:400_000 Theories.Zoo.t_d
      g8
  in
  let run_seq, t_seq = time_it (fun () -> chase None) in
  Parallel.Pool.reset_busy pool;
  let run_par, t_par = time_it (fun () -> chase (Some pool)) in
  let stages_equal =
    Chase.Engine.depth run_seq = Chase.Engine.depth run_par
    && List.for_all
         (fun i ->
           Fact_set.equal
             (Chase.Engine.stage run_seq i)
             (Chase.Engine.stage run_par i))
         (List.init (Chase.Engine.depth run_seq + 1) Fun.id)
  in
  row "  chase T_d on G^8 depth 7:  seq %.3fs   -j%d %.3fs   (x%.2f)@." t_seq
    jobs t_par (t_seq /. t_par);
  row "  stages bit-identical: %b; saturation flags equal: %b@." stages_equal
    (Chase.Engine.saturated run_seq = Chase.Engine.saturated run_par
    && Chase.Engine.hit_atom_budget run_seq
       = Chase.Engine.hit_atom_budget run_par);
  Array.iter
    (fun (s : Saturation.Stats.round) ->
      row "    stage %d: %6d triggers, %6d derived (%6d fresh), %.4fs wall@."
        s.Saturation.Stats.index s.Saturation.Stats.tally.Saturation.Stats.expanded
        s.Saturation.Stats.tally.Saturation.Stats.generated
        s.Saturation.Stats.tally.Saturation.Stats.admitted
        s.Saturation.Stats.wall_s)
    (Chase.Engine.stage_stats run_par);
  row "  per-domain busy seconds: [%a]@."
    Fmt.(array ~sep:sp (fmt "%.3f"))
    (Parallel.Pool.busy_times pool);
  (* Rewriting workload: the E11 generic saturation on T_d \ (loop). *)
  let x = Term.var "x" and y = Term.var "y" in
  let q = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.g2 [ x; y ] ] in
  let budget =
    {
      Rewriting.Rewrite.max_disjuncts = 60;
      max_atoms_per_disjunct = 20;
      max_steps = 400;
    }
  in
  let r_seq, rt_seq =
    time_it (fun () ->
        Rewriting.Rewrite.rewrite ~budget Theories.Zoo.t_d_noloop q)
  in
  let r_par, rt_par =
    time_it (fun () ->
        Rewriting.Rewrite.rewrite ~pool ~budget Theories.Zoo.t_d_noloop q)
  in
  row "  rewrite T_d\\(loop) G(x,y):  seq %.3fs   -j%d %.3fs   (x%.2f)@."
    rt_seq jobs rt_par (rt_seq /. rt_par);
  row "  seq: %d disjuncts, %d containment checks; -j%d: %d disjuncts, %d \
       containment checks@."
    (Ucq.cardinal r_seq.Rewriting.Rewrite.ucq)
    r_seq.Rewriting.Rewrite.containment_checks jobs
    (Ucq.cardinal r_par.Rewriting.Rewrite.ucq)
    r_par.Rewriting.Rewrite.containment_checks;
  row "  rewritings UCQ-equivalent: %b@."
    (Ucq.equivalent r_seq.Rewriting.Rewrite.ucq r_par.Rewriting.Rewrite.ucq);
  let k = r_par.Rewriting.Rewrite.kernel_stats in
  row "  -j%d kernel: %d rounds, %d expanded, %d generated, %d admitted, %d \
       deduped@."
    jobs k.Saturation.Stats.rounds
    k.Saturation.Stats.totals.Saturation.Stats.expanded
    k.Saturation.Stats.totals.Saturation.Stats.generated
    k.Saturation.Stats.totals.Saturation.Stats.admitted
    k.Saturation.Stats.totals.Saturation.Stats.deduped

(* ------------------------------------------------------------------ *)
(* ix — incremental indexing & containment memoization A/B             *)
(* ------------------------------------------------------------------ *)

(* The tentpole experiment of the indexing/memoization PR: run the chase
   hot path (T_d on the depth-8 grid of E1/par) and the rewriting hot
   path (generic saturation on T_d \ (loop), as in E11) with the
   incremental index maintenance and the containment memo cache switched
   off and on, in-process, via the instrumentation toggles. The toggles
   *attribute* cost between index maintenance strategies and cache
   traffic within this build; the headline speedup of the PR (>= 2x on
   both hot paths vs the pre-PR build, whose sets re-derive their index
   from scratch after every stage and recompute every containment
   verdict) is measured against a checkout of the previous commit and
   recorded in EXPERIMENTS.md. Timings are min-of-N (the box is noisy);
   counters come from the instrumented run.

   FRONTIER_BENCH_SMOKE=1   shrink the workloads (CI smoke sizing)
   FRONTIER_BENCH_JSON=path also write the results as a JSON snapshot *)

let ix () =
  header "ix"
    "incremental fact-set indexing + containment memoization (A/B)"
    "in-process toggles attribute the cost; the >= 2x-vs-pre-PR numbers \
     live in EXPERIMENTS.md";
  let smoke = Sys.getenv_opt "FRONTIER_BENCH_SMOKE" <> None in
  let reps = if smoke then 2 else 5 in
  let grid_len = if smoke then 4 else 8 in
  let depth = if smoke then 5 else 8 in
  let rewrite_budget =
    (* Smoke sizing mirrors E11's budget; the full run uses the deeper
       saturation (the acceptance workload of EXPERIMENTS.md). *)
    if smoke then
      {
        Rewriting.Rewrite.max_disjuncts = 60;
        max_atoms_per_disjunct = 20;
        max_steps = 120;
      }
    else
      {
        Rewriting.Rewrite.max_disjuncts = 200;
        max_atoms_per_disjunct = 24;
        max_steps = 2_000;
      }
  in
  let best f =
    (* min-of-reps wall time; result and counters from the last rep
       (per-rep work is deterministic). *)
    let t = ref infinity in
    let out = ref None in
    for _ = 1 to reps do
      Fact_set.reset_counters ();
      Containment.reset_memo ();
      let v, dt = time_it f in
      if dt < !t then t := dt;
      out := Some v
    done;
    (Option.get !out, !t)
  in
  (* --- chase: T_d on G^grid_len to depth [depth] --------------------- *)
  let _, _, grid = Theories.Instances.path Theories.Zoo.g2 grid_len in
  let chase () =
    Chase.Engine.run ~max_depth:depth ~max_atoms:1_000_000 Theories.Zoo.t_d
      grid
  in
  Fact_set.set_incremental false;
  let run_off, chase_off = best chase in
  let c_off = Fact_set.counters () in
  Fact_set.set_incremental true;
  let run_on, chase_on = best chase in
  let c_on = Fact_set.counters () in
  let atoms_on = Fact_set.cardinal (Chase.Engine.result run_on) in
  row "  chase T_d on G^%d depth %d (%d atoms, min of %d):@." grid_len depth
    atoms_on reps;
  row "    incremental off: %.3fs  (%d full builds / %d atoms re-indexed)@."
    chase_off c_off.Fact_set.builds c_off.Fact_set.built_atoms;
  row "    incremental on:  %.3fs  (%d extensions / %d delta atoms, %d \
       builds / %d atoms)@."
    chase_on c_on.Fact_set.extends c_on.Fact_set.delta_atoms
    c_on.Fact_set.builds c_on.Fact_set.built_atoms;
  row "    speedup: x%.2f;  stages identical: %b@." (chase_off /. chase_on)
    (Chase.Engine.depth run_off = Chase.Engine.depth run_on
    && Fact_set.equal
         (Chase.Engine.result run_off)
         (Chase.Engine.result run_on));
  (* --- rewriting: generic saturation on T_d \ (loop) ----------------- *)
  let x = Term.var "x" and y = Term.var "y" in
  let q = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.g2 [ x; y ] ] in
  let rewrite () =
    Rewriting.Rewrite.rewrite ~budget:rewrite_budget Theories.Zoo.t_d_noloop
      q
  in
  Containment.set_memoization false;
  let r_off, rw_off = best rewrite in
  (* The memo arm deliberately does *not* reset the cache between reps:
     a single cold saturation has almost no repeated (candidate,
     disjunct) pairs, so the cache's value shows when the same theory is
     rewritten again and the process-wide verdicts are reused — the
     repeated-analysis pattern of the marked-set and termination
     pipelines. Cold (first run) and warm (later runs) are reported
     separately. *)
  Containment.set_memoization true;
  Containment.reset_memo ();
  let r_cold, rw_cold = time_it rewrite in
  let r_on = ref r_cold in
  let rw_warm = ref infinity in
  for _ = 2 to reps do
    let v, dt = time_it rewrite in
    r_on := v;
    if dt < !rw_warm then rw_warm := dt
  done;
  let rw_warm = if !rw_warm = infinity then rw_cold else !rw_warm in
  let r_on = !r_on in
  row "  rewrite T_d\\(loop) G(x,y), %d steps:@."
    r_on.Rewriting.Rewrite.steps;
  row "    memo off:       %.4fs  (%d containment checks, all computed)@."
    rw_off r_off.Rewriting.Rewrite.containment_checks;
  row "    memo on, cold:  %.4fs  (first run, empty cache)@." rw_cold;
  row "    memo on, warm:  %.4fs  (%d checks: %d cache hits, %d misses)@."
    rw_warm r_on.Rewriting.Rewrite.containment_checks
    r_on.Rewriting.Rewrite.cache_hits r_on.Rewriting.Rewrite.cache_misses;
  row "    warm speedup: x%.2f;  rewritings equivalent: %b@."
    (rw_off /. rw_warm)
    (Ucq.equivalent r_off.Rewriting.Rewrite.ucq r_on.Rewriting.Rewrite.ucq);
  (* --- optional JSON snapshot ---------------------------------------- *)
  match Sys.getenv_opt "FRONTIER_BENCH_JSON" with
  | None -> ()
  | Some path ->
      Checkpoint.Atomic_io.write_file path
      @@ Printf.sprintf
           {|{
  "bench": "ix",
  "note": "speedup fields compare in-process A/B toggles of this build; the >= 2x acceptance numbers vs the pre-PR build are in EXPERIMENTS.md",
  "smoke": %b,
  "reps": %d,
  "chase": {
    "workload": "T_d on G^%d, max_depth %d",
    "atoms": %d,
    "incremental_off_s": %.6f,
    "incremental_on_s": %.6f,
    "speedup": %.3f,
    "off_counters": { "builds": %d, "built_atoms": %d },
    "on_counters": { "extends": %d, "delta_atoms": %d, "builds": %d, "built_atoms": %d }
  },
  "rewrite": {
    "workload": "T_d minus loop, G(x,y), budget %d/%d/%d",
    "steps": %d,
    "memo_off_s": %.6f,
    "memo_on_cold_s": %.6f,
    "memo_on_warm_s": %.6f,
    "warm_speedup": %.3f,
    "containment_checks": %d,
    "cache_hits": %d,
    "cache_misses": %d
  }
}
|}
        smoke reps grid_len depth atoms_on chase_off chase_on
        (chase_off /. chase_on) c_off.Fact_set.builds
        c_off.Fact_set.built_atoms c_on.Fact_set.extends
        c_on.Fact_set.delta_atoms c_on.Fact_set.builds
        c_on.Fact_set.built_atoms rewrite_budget.Rewriting.Rewrite.max_disjuncts
        rewrite_budget.Rewriting.Rewrite.max_atoms_per_disjunct
        rewrite_budget.Rewriting.Rewrite.max_steps
        r_on.Rewriting.Rewrite.steps rw_off rw_cold rw_warm
        (rw_off /. rw_warm)
        r_on.Rewriting.Rewrite.containment_checks
        r_on.Rewriting.Rewrite.cache_hits r_on.Rewriting.Rewrite.cache_misses;
      row "  json snapshot written to %s@." path

(* ------------------------------------------------------------------ *)
(* rw — subsumption-indexed UCQ store & decomposed containment A/B     *)
(* ------------------------------------------------------------------ *)

(* The tentpole experiment of the subsumption-index PR. Both layers ship
   behind toggles in the style of [Fact_set.set_incremental]:

     Ucq_index.set_indexing        the fingerprint-indexed UCQ store
     Containment.set_decomposition prescreen + Gaifman-component solving

   With both off the engines are the PR 2 baseline, byte for byte, so an
   in-process interleaved A/B measures the PR's speedup directly. Arms
   alternate (baseline, accelerated, baseline, ...) to spread allocator
   and frequency noise across both; each run starts from a cold
   containment memo. Every workload also cross-checks that the two arms
   produce equivalent UCQs.

   FRONTIER_BENCH_SMOKE=1   shrink the workloads (CI smoke sizing)
   FRONTIER_BENCH_JSON=path also write the results as a JSON snapshot *)

let rw () =
  header "rw"
    "subsumption-indexed UCQ store + component-decomposed containment (A/B)"
    "interleaved on/off arms; acceptance: >= 2x on the E2/E3 marked \
     workloads";
  let smoke = Sys.getenv_opt "FRONTIER_BENCH_SMOKE" <> None in
  let reps = if smoke then 1 else 2 in
  let set_accel on =
    Ucq_index.set_indexing on;
    Containment.set_decomposition on
  in
  (* One interleaved A/B measurement: [reps] alternating pairs of runs,
     min wall time per arm, results from the last rep of each arm. The
     containment memo is reset before every run so each arm is cold and
     the arms cannot feed each other verdicts. *)
  let ab f =
    let t_off = ref infinity and t_on = ref infinity in
    let r_off = ref None and r_on = ref None in
    let ix = ref Ucq_index.{ pairs = 0; pruned = 0 } in
    let sv = ref Containment.{ splits = 0; prescreened = 0 } in
    for _ = 1 to reps do
      List.iter
        (fun on ->
          set_accel on;
          Containment.reset_memo ();
          Ucq_index.reset_stats ();
          Containment.reset_solver_stats ();
          let v, dt = time_it f in
          if on then begin
            if dt < !t_on then t_on := dt;
            r_on := Some v;
            ix := Ucq_index.stats ();
            sv := Containment.solver_stats ()
          end
          else begin
            if dt < !t_off then t_off := dt;
            r_off := Some v
          end)
        [ false; true ]
    done;
    set_accel true;
    ( Option.get !r_off, !t_off, Option.get !r_on, !t_on, !ix, !sv )
  in
  let results = ref [] in
  let report name steps disjuncts t_off t_on equiv ix sv =
    row "  %-26s off %8.3fs   on %8.3fs   x%-6.2f %s@." name t_off t_on
      (t_off /. t_on)
      (if equiv then "equivalent" else "MISMATCH");
    row "    %d steps, %d disjuncts; index pruned %d/%d pairs; %d splits, \
         %d prescreened@."
      steps disjuncts ix.Ucq_index.pruned ix.Ucq_index.pairs
      sv.Containment.splits sv.Containment.prescreened;
    results :=
      (name, steps, disjuncts, t_off, t_on, equiv, ix, sv) :: !results
  in
  (* --- E2: the marked-query process on phi_R^n under T_d ------------- *)
  let e2_ns = if smoke then [ 3 ] else [ 4; 5 ] in
  List.iter
    (fun n ->
      let _, _, phi = Theories.Zoo.phi_r n in
      let r_off, t_off, r_on, t_on, ix, sv =
        ab (fun () -> Marked.Process.rewrite_td phi)
      in
      report
        (Printf.sprintf "E2 phi_R^%d (T_d)" n)
        r_on.Marked.Process.stats.Marked.Process.steps
        (Ucq.cardinal r_on.Marked.Process.rewriting)
        t_off t_on
        (Ucq.equivalent r_off.Marked.Process.rewriting
           r_on.Marked.Process.rewriting)
        ix sv)
    e2_ns;
  (* --- E3: one level-descent step of a T_d^K tower ------------------- *)
  (* The full-size workload is the level-2 step at length 5 — the exact
     analog of E2's phi_R^5 inside the tower, and the step that
     dominates any deeper descent. *)
  let kk, lvl, n3 = if smoke then (3, 3, 1) else (2, 2, 5) in
  let _, _, phi_i = Theories.Zoo.phi_i lvl n3 in
  let r_off, t_off, r_on, t_on, ix, sv =
    ab (fun () -> Marked.Process.rewrite_tdk kk ~max_steps:500_000 phi_i)
  in
  report
    (Printf.sprintf "E3 phi_I%d^%d (T_d^%d)" lvl n3 kk)
    r_on.Marked.Process.stats.Marked.Process.steps
    (Ucq.cardinal r_on.Marked.Process.rewriting)
    t_off t_on
    (Ucq.equivalent r_off.Marked.Process.rewriting
       r_on.Marked.Process.rewriting)
    ix sv;
  (* --- generic piece-rewriting saturation (the E11/ix workload) ------ *)
  let x = Term.var "x" and y = Term.var "y" in
  let q = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.g2 [ x; y ] ] in
  let budget =
    if smoke then
      {
        Rewriting.Rewrite.max_disjuncts = 60;
        max_atoms_per_disjunct = 20;
        max_steps = 120;
      }
    else
      {
        Rewriting.Rewrite.max_disjuncts = 200;
        max_atoms_per_disjunct = 24;
        max_steps = 2_000;
      }
  in
  let r_off, t_off, r_on, t_on, ix, sv =
    ab (fun () ->
        Rewriting.Rewrite.rewrite ~budget Theories.Zoo.t_d_noloop q)
  in
  report "generic T_d\\(loop)"
    r_on.Rewriting.Rewrite.steps
    (Ucq.cardinal r_on.Rewriting.Rewrite.ucq)
    t_off t_on
    (Ucq.equivalent r_off.Rewriting.Rewrite.ucq r_on.Rewriting.Rewrite.ucq)
    ix sv;
  (* --- optional JSON snapshot ---------------------------------------- *)
  match Sys.getenv_opt "FRONTIER_BENCH_JSON" with
  | None -> ()
  | Some path ->
      let entry (name, steps, disjuncts, t_off, t_on, equiv, ix, sv) =
        Printf.sprintf
          {|    {
      "workload": %S,
      "steps": %d,
      "disjuncts": %d,
      "baseline_s": %.6f,
      "accelerated_s": %.6f,
      "speedup": %.3f,
      "equivalent": %b,
      "index_pairs": %d,
      "index_pruned": %d,
      "component_splits": %d,
      "prescreened": %d
    }|}
          name steps disjuncts t_off t_on (t_off /. t_on) equiv
          ix.Ucq_index.pairs ix.Ucq_index.pruned sv.Containment.splits
          sv.Containment.prescreened
      in
      Checkpoint.Atomic_io.write_file path
      @@ Printf.sprintf
           {|{
  "bench": "rw",
  "note": "interleaved A/B of Ucq_index.set_indexing + Containment.set_decomposition; both off = the PR 2 engines",
  "smoke": %b,
  "reps": %d,
  "workloads": [
%s
  ]
}
|}
        smoke reps
        (String.concat ",\n" (List.rev_map entry !results));
      row "  json snapshot written to %s@." path

(* ------------------------------------------------------------------ *)
(* shard — sharded work-stealing pool: -j1 vs -j4 differential + timing *)
(* ------------------------------------------------------------------ *)

(* The tentpole experiment of the sharded-pool PR: drive every
   saturation client (chase, generic rewriting, the E2/E3 marked
   processes) through an explicit -j1 pool and an explicit -j4 pool and
   check that the results and stage counters are identical — the
   scheduler may only change wall time, never the mathematics. Wall
   times are min-of-reps; the -j4 arm can only beat -j1 on a
   multi-core box (per-domain busy seconds are printed so a 1-core run
   is honest about oversubscription). [containment_checks] is the one
   counter deliberately *not* compared: the batch memo prepass resolves
   cached pairs on the coordinator and [Pool.exists] genuinely early-
   exits, so how many implication checks the -j4 arm pays is schedule-
   dependent even though the verdicts (and hence results) are not.

   FRONTIER_BENCH_SMOKE=1   shrink the workloads (CI smoke sizing)
   FRONTIER_BENCH_JSON=path also write the results as a JSON snapshot *)

let shard () =
  header "shard"
    "sharded work-stealing pool: -j1 vs -j4 across the saturation clients"
    "identical results and stage counters at every -j; speedup needs > 1 \
     core";
  let smoke = Sys.getenv_opt "FRONTIER_BENCH_SMOKE" <> None in
  let reps = if smoke then 1 else 2 in
  let jobs = 4 in
  let pool1 = Parallel.Pool.create 1 in
  let pooln = Parallel.Pool.create jobs in
  row "  comparing -j1 vs -j%d (this machine has %d cores)@." jobs
    (Domain.recommended_domain_count ());
  let best f =
    let t = ref infinity and out = ref None in
    for _ = 1 to reps do
      let v, dt = time_it f in
      if dt < !t then t := dt;
      out := Some v
    done;
    (Option.get !out, !t)
  in
  let tally_eq (a : Saturation.Stats.tally) (b : Saturation.Stats.tally) =
    a.Saturation.Stats.expanded = b.Saturation.Stats.expanded
    && a.Saturation.Stats.generated = b.Saturation.Stats.generated
    && a.Saturation.Stats.admitted = b.Saturation.Stats.admitted
    && a.Saturation.Stats.deduped = b.Saturation.Stats.deduped
  in
  let kernel_eq (a : Saturation.Stats.t) (b : Saturation.Stats.t) =
    a.Saturation.Stats.rounds = b.Saturation.Stats.rounds
    && tally_eq a.Saturation.Stats.totals b.Saturation.Stats.totals
  in
  let ucq_identical u1 u2 =
    (* Same disjuncts in the same order, compared by canonical id — the
       hash-consed notion of "bit-identical" ([Ucq.equivalent] would
       also accept semantically equal but differently-built stores). *)
    List.equal
      (fun a b -> Cq.canon_id a = Cq.canon_id b)
      (Ucq.disjuncts u1) (Ucq.disjuncts u2)
  in
  let results = ref [] in
  let report ?(criterion = "identical") name t1 tn identical detail =
    row "  %-26s -j1 %8.3fs   -j%d %8.3fs   x%-6.2f %s@." name t1 jobs tn
      (t1 /. tn)
      (if identical then criterion else "MISMATCH");
    if detail <> "" then row "    %s@." detail;
    results := (name, t1, tn, identical, criterion) :: !results
  in
  (* --- chase: T_d on the E1 grid ------------------------------------- *)
  let grid_len = if smoke then 5 else 8 in
  let depth = if smoke then 5 else 7 in
  let _, _, grid = Theories.Instances.path Theories.Zoo.g2 grid_len in
  let chase pool () =
    Chase.Engine.run ~pool ~max_depth:depth ~max_atoms:400_000
      Theories.Zoo.t_d grid
  in
  let c1, ct1 = best (chase pool1) in
  let cn, ctn = best (chase pooln) in
  let stages_identical =
    Chase.Engine.depth c1 = Chase.Engine.depth cn
    && List.for_all
         (fun i ->
           Fact_set.equal (Chase.Engine.stage c1 i) (Chase.Engine.stage cn i))
         (List.init (Chase.Engine.depth c1 + 1) Fun.id)
    && Array.for_all2
         (fun (a : Saturation.Stats.round) (b : Saturation.Stats.round) ->
           a.Saturation.Stats.index = b.Saturation.Stats.index
           && tally_eq a.Saturation.Stats.tally b.Saturation.Stats.tally)
         (Chase.Engine.stage_stats c1)
         (Chase.Engine.stage_stats cn)
  in
  report
    (Printf.sprintf "chase T_d G^%d depth %d" grid_len depth)
    ct1 ctn stages_identical
    (Printf.sprintf "%d stages, %d atoms"
       (Chase.Engine.depth cn + 1)
       (Fact_set.cardinal (Chase.Engine.result cn)));
  (* --- generic rewriting saturation (the E11 workload) --------------- *)
  let x = Term.var "x" and y = Term.var "y" in
  let q = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.g2 [ x; y ] ] in
  let budget =
    {
      Rewriting.Rewrite.max_disjuncts = (if smoke then 60 else 200);
      max_atoms_per_disjunct = (if smoke then 20 else 24);
      max_steps = (if smoke then 120 else 2_000);
    }
  in
  let rewrite pool () =
    Containment.reset_memo ();
    Rewriting.Rewrite.rewrite ~pool ~budget Theories.Zoo.t_d_noloop q
  in
  let r1, rt1 = best (rewrite pool1) in
  let rn, rtn = best (rewrite pooln) in
  (* The generic saturation's cross-[-j] contract is UCQ *equivalence*,
     not syntactic identity: a -j>1 run expands whole batches per round
     (a subsumed frontier entry may still be expanded if it died within
     its own batch), so steps and round counters legitimately differ.
     The chase and the marked processes below are bit-identical. *)
  report ~criterion:"equivalent" "generic T_d\\(loop)" rt1 rtn
    (Ucq.equivalent r1.Rewriting.Rewrite.ucq rn.Rewriting.Rewrite.ucq)
    (Printf.sprintf "-j1 %d steps / %d disjuncts, -j%d %d steps / %d \
                     disjuncts"
       r1.Rewriting.Rewrite.steps
       (Ucq.cardinal r1.Rewriting.Rewrite.ucq)
       jobs rn.Rewriting.Rewrite.steps
       (Ucq.cardinal rn.Rewriting.Rewrite.ucq));
  (* --- E2: the marked process on phi_R^n ----------------------------- *)
  let n2 = if smoke then 3 else 5 in
  let _, _, phi = Theories.Zoo.phi_r n2 in
  let td pool () = Marked.Process.rewrite_td ~pool phi in
  let m1, mt1 = best (td pool1) in
  let mn, mtn = best (td pooln) in
  report
    (Printf.sprintf "E2 phi_R^%d (T_d)" n2)
    mt1 mtn
    (m1.Marked.Process.stats = mn.Marked.Process.stats
    && kernel_eq m1.Marked.Process.kernel_stats mn.Marked.Process.kernel_stats
    && ucq_identical m1.Marked.Process.rewriting mn.Marked.Process.rewriting)
    (Printf.sprintf "%d steps, %d disjuncts"
       mn.Marked.Process.stats.Marked.Process.steps
       (Ucq.cardinal mn.Marked.Process.rewriting));
  (* --- E3: one level-descent step of a T_d^K tower ------------------- *)
  let kk, lvl, n3 = if smoke then (3, 3, 1) else (2, 2, 5) in
  let _, _, phi_i = Theories.Zoo.phi_i lvl n3 in
  let tdk pool () =
    Marked.Process.rewrite_tdk ~pool kk ~max_steps:500_000 phi_i
  in
  let k1, kt1 = best (tdk pool1) in
  let kn, ktn = best (tdk pooln) in
  report
    (Printf.sprintf "E3 phi_I%d^%d (T_d^%d)" lvl n3 kk)
    kt1 ktn
    (k1.Marked.Process.stats = kn.Marked.Process.stats
    && kernel_eq k1.Marked.Process.kernel_stats kn.Marked.Process.kernel_stats
    && ucq_identical k1.Marked.Process.rewriting kn.Marked.Process.rewriting)
    (Printf.sprintf "%d steps, %d disjuncts"
       kn.Marked.Process.stats.Marked.Process.steps
       (Ucq.cardinal kn.Marked.Process.rewriting));
  row "  -j%d per-domain busy seconds (whole experiment): [%a]@." jobs
    Fmt.(array ~sep:sp (fmt "%.3f"))
    (Parallel.Pool.busy_times pooln);
  let all_identical =
    List.for_all (fun (_, _, _, ok, _) -> ok) !results
  in
  row "  all workloads meet their cross--j contract: %b@." all_identical;
  (* --- optional JSON snapshot ---------------------------------------- *)
  (match Sys.getenv_opt "FRONTIER_BENCH_JSON" with
  | None -> ()
  | Some path ->
      let entry (name, t1, tn, identical, criterion) =
        Printf.sprintf
          {|    {
      "workload": %S,
      "j1_s": %.6f,
      "j%d_s": %.6f,
      "speedup": %.3f,
      "criterion": %S,
      "passed": %b
    }|}
          name t1 jobs tn (t1 /. tn) criterion identical
      in
      Checkpoint.Atomic_io.write_file path
      @@ Printf.sprintf
           {|{
  "bench": "shard",
  "note": "explicit -j1 vs -j%d pools over the saturation clients; 'identical' covers results and stage counters, 'equivalent' is the generic saturation's batch-semantics contract; speedup is hardware-bound (1.0x is expected on a 1-core box)",
  "smoke": %b,
  "reps": %d,
  "cores": %d,
  "workloads": [
%s
  ]
}
|}
        jobs smoke reps
        (Domain.recommended_domain_count ())
        (String.concat ",\n" (List.rev_map entry !results));
      row "  json snapshot written to %s@." path);
  Parallel.Pool.shutdown pool1;
  Parallel.Pool.shutdown pooln;
  (* check-shard gates on this experiment: a cross-scheduling mismatch
     is a scheduler bug, not a measurement. *)
  if not all_identical then exit 1

(* ------------------------------------------------------------------ *)
(* arena — flat-arena engine: boxed vs arena A/B + cost-gated -j4      *)
(* ------------------------------------------------------------------ *)

(* The tentpole experiment of the flat-arena PR: run every saturation
   client once with the boxed layer layout + map-based engine
   ([Fact_set.set_arena false]) and once with the arena layout +
   compiled register machine (the default), both at -j1, and check the
   results are identical — the representation may only change wall
   time, never the mathematics. A third arm repeats the arena run at
   -j4 through the cost-gated pool: on a 1-core box the gate routes
   everything inline, so the -j4 column measures the gate itself (it
   must stay within a whisker of -j1, where the pre-gate scheduler
   collapsed to 0.02-0.14x on the fan-out-happy workloads).

   FRONTIER_BENCH_SMOKE=1   shrink the workloads (CI smoke sizing)
   FRONTIER_BENCH_JSON=path also write the results as a JSON snapshot *)

let arena () =
  header "arena"
    "flat-arena engine: boxed vs arena layouts at -j1 + cost-gated -j4"
    "identical results across layouts; arena beats boxed; -j4 never \
     collapses";
  let smoke = Sys.getenv_opt "FRONTIER_BENCH_SMOKE" <> None in
  let reps = if smoke then 1 else 2 in
  let jobs = 4 in
  let pool1 = Parallel.Pool.create 1 in
  let pooln = Parallel.Pool.create jobs in
  row "  comparing boxed -j1 / arena -j1 / arena -j%d (this machine has %d \
       cores)@."
    jobs
    (Domain.recommended_domain_count ());
  Homomorphism.reset_counters ();
  Fact_set.reset_counters ();
  (* [arena_on]: layer layout AND engine for the timed run; the memo is
     cold at every rep so no arm inherits the previous arm's work. *)
  let best ~arena_on f =
    let t = ref infinity and out = ref None in
    for _ = 1 to reps do
      Fact_set.set_arena arena_on;
      Containment.reset_memo ();
      (* Each arm measures its own cost: compacting first stops the
         previous arms' garbage (dead chase results, containment memos,
         rewriting stores) from inflating this arm's major-GC marking
         time — without it the later workloads read ~2x slower here
         than the same call in a fresh process. *)
      Gc.compact ();
      let v, dt = time_it f in
      if dt < !t then t := dt;
      out := Some v
    done;
    Fact_set.set_arena true;
    (Option.get !out, !t)
  in
  let tally_eq (a : Saturation.Stats.tally) (b : Saturation.Stats.tally) =
    a.Saturation.Stats.expanded = b.Saturation.Stats.expanded
    && a.Saturation.Stats.generated = b.Saturation.Stats.generated
    && a.Saturation.Stats.admitted = b.Saturation.Stats.admitted
    && a.Saturation.Stats.deduped = b.Saturation.Stats.deduped
  in
  let kernel_eq (a : Saturation.Stats.t) (b : Saturation.Stats.t) =
    a.Saturation.Stats.rounds = b.Saturation.Stats.rounds
    && tally_eq a.Saturation.Stats.totals b.Saturation.Stats.totals
  in
  let ucq_identical u1 u2 =
    List.equal
      (fun a b -> Cq.canon_id a = Cq.canon_id b)
      (Ucq.disjuncts u1) (Ucq.disjuncts u2)
  in
  let results = ref [] in
  let report ?(criterion = "identical") name tb ta tn identical detail =
    row "  %-26s boxed %8.3fs   arena %8.3fs   x%-6.2f -j%d %8.3fs   %s@."
      name tb ta (tb /. ta) jobs tn
      (if identical then criterion else "MISMATCH");
    if detail <> "" then row "    %s@." detail;
    results := (name, tb, ta, tn, identical, criterion) :: !results
  in
  (* --- chase: T_d on the E1 grid ------------------------------------- *)
  let grid_len = if smoke then 5 else 8 in
  let depth = if smoke then 5 else 7 in
  let _, _, grid = Theories.Instances.path Theories.Zoo.g2 grid_len in
  let chase pool () =
    Chase.Engine.run ~pool ~max_depth:depth ~max_atoms:400_000
      Theories.Zoo.t_d grid
  in
  let cb, cbt = best ~arena_on:false (chase pool1) in
  let ca, cat_ = best ~arena_on:true (chase pool1) in
  let cn, cnt = best ~arena_on:true (chase pooln) in
  let stages_identical c1 c2 =
    Chase.Engine.depth c1 = Chase.Engine.depth c2
    && List.for_all
         (fun i ->
           Fact_set.equal (Chase.Engine.stage c1 i) (Chase.Engine.stage c2 i))
         (List.init (Chase.Engine.depth c1 + 1) Fun.id)
    && Array.for_all2
         (fun (a : Saturation.Stats.round) (b : Saturation.Stats.round) ->
           a.Saturation.Stats.index = b.Saturation.Stats.index
           && tally_eq a.Saturation.Stats.tally b.Saturation.Stats.tally)
         (Chase.Engine.stage_stats c1)
         (Chase.Engine.stage_stats c2)
  in
  report
    (Printf.sprintf "chase T_d G^%d depth %d" grid_len depth)
    cbt cat_ cnt
    (stages_identical cb ca && stages_identical ca cn)
    (Printf.sprintf "%d stages, %d atoms"
       (Chase.Engine.depth ca + 1)
       (Fact_set.cardinal (Chase.Engine.result ca)));
  (* --- generic rewriting saturation (the E11 workload) --------------- *)
  let x = Term.var "x" and y = Term.var "y" in
  let q = Cq.make ~free:[ x ] [ Atom.make Theories.Zoo.g2 [ x; y ] ] in
  let budget =
    {
      Rewriting.Rewrite.max_disjuncts = (if smoke then 60 else 200);
      max_atoms_per_disjunct = (if smoke then 20 else 24);
      max_steps = (if smoke then 120 else 2_000);
    }
  in
  let rewrite pool () =
    Rewriting.Rewrite.rewrite ~pool ~budget Theories.Zoo.t_d_noloop q
  in
  let rb, rbt = best ~arena_on:false (rewrite pool1) in
  let ra, rat = best ~arena_on:true (rewrite pool1) in
  let rn, rnt = best ~arena_on:true (rewrite pooln) in
  report ~criterion:"equivalent" "generic T_d\\(loop)" rbt rat rnt
    (Ucq.equivalent rb.Rewriting.Rewrite.ucq ra.Rewriting.Rewrite.ucq
    && Ucq.equivalent ra.Rewriting.Rewrite.ucq rn.Rewriting.Rewrite.ucq)
    (Printf.sprintf "boxed %d steps / %d disjuncts, arena %d steps / %d \
                     disjuncts"
       rb.Rewriting.Rewrite.steps
       (Ucq.cardinal rb.Rewriting.Rewrite.ucq)
       ra.Rewriting.Rewrite.steps
       (Ucq.cardinal ra.Rewriting.Rewrite.ucq));
  (* --- E2: the marked process on phi_R^n ----------------------------- *)
  let n2 = if smoke then 3 else 5 in
  let _, _, phi = Theories.Zoo.phi_r n2 in
  let td pool () = Marked.Process.rewrite_td ~pool phi in
  let mb, mbt = best ~arena_on:false (td pool1) in
  let ma, mat_ = best ~arena_on:true (td pool1) in
  let mn, mnt = best ~arena_on:true (td pooln) in
  let marked_eq (a : Marked.Process.result) (b : Marked.Process.result) =
    a.Marked.Process.stats = b.Marked.Process.stats
    && kernel_eq a.Marked.Process.kernel_stats b.Marked.Process.kernel_stats
    && ucq_identical a.Marked.Process.rewriting b.Marked.Process.rewriting
  in
  report
    (Printf.sprintf "E2 phi_R^%d (T_d)" n2)
    mbt mat_ mnt
    (marked_eq mb ma && marked_eq ma mn)
    (Printf.sprintf "%d steps, %d disjuncts"
       ma.Marked.Process.stats.Marked.Process.steps
       (Ucq.cardinal ma.Marked.Process.rewriting));
  (* --- E3: one level-descent step of a T_d^K tower ------------------- *)
  let kk, lvl, n3 = if smoke then (3, 3, 1) else (2, 2, 5) in
  let _, _, phi_i = Theories.Zoo.phi_i lvl n3 in
  let tdk pool () =
    Marked.Process.rewrite_tdk ~pool kk ~max_steps:500_000 phi_i
  in
  let kb, kbt = best ~arena_on:false (tdk pool1) in
  let ka, kat = best ~arena_on:true (tdk pool1) in
  let kn, knt = best ~arena_on:true (tdk pooln) in
  report
    (Printf.sprintf "E3 phi_I%d^%d (T_d^%d)" lvl n3 kk)
    kbt kat knt
    (marked_eq kb ka && marked_eq ka kn)
    (Printf.sprintf "%d steps, %d disjuncts"
       ka.Marked.Process.stats.Marked.Process.steps
       (Ucq.cardinal ka.Marked.Process.rewriting));
  (* --- engine / store / gate telemetry ------------------------------- *)
  let astats = Arena.stats Arena.global in
  let hc = Homomorphism.counters () in
  let fc = Fact_set.counters () in
  row "  arena store: %d spans / %d ints / %.1f MiB@." astats.Arena.spans
    astats.Arena.ints
    (float_of_int astats.Arena.bytes /. 1024. /. 1024.);
  row "  compiled engine: %d searches / %d nodes / %d reg ops / %d \
       solutions@."
    hc.Homomorphism.searches hc.Homomorphism.nodes hc.Homomorphism.reg_ops
    hc.Homomorphism.solutions;
  row "  join index: %d posting probes / %d intersections@."
    fc.Fact_set.posting_probes fc.Fact_set.posting_intersections;
  let all_identical =
    List.for_all (fun (_, _, _, _, ok, _) -> ok) !results
  in
  row "  all workloads meet their cross-layout contract: %b@." all_identical;
  (* --- optional JSON snapshot ---------------------------------------- *)
  (match Sys.getenv_opt "FRONTIER_BENCH_JSON" with
  | None -> ()
  | Some path ->
      let entry (name, tb, ta, tn, identical, criterion) =
        Printf.sprintf
          {|    {
      "workload": %S,
      "boxed_j1_s": %.6f,
      "arena_j1_s": %.6f,
      "speedup": %.3f,
      "arena_j%d_s": %.6f,
      "j%d_vs_j1": %.3f,
      "criterion": %S,
      "passed": %b
    }|}
          name tb ta (tb /. ta) jobs tn jobs (ta /. tn) criterion identical
      in
      Checkpoint.Atomic_io.write_file path
      @@ Printf.sprintf
           {|{
  "bench": "arena",
  "note": "boxed layout + map engine vs arena layout + compiled register machine, both -j1; the -j%d arm runs the arena build through the cost-gated pool (inline on a 1-core box). speedup = boxed_j1_s / arena_j1_s; j%d_vs_j1 = arena_j1_s / arena_j%d_s (>= 0.9 required).",
  "smoke": %b,
  "reps": %d,
  "cores": %d,
  "workloads": [
%s
  ]
}
|}
        jobs jobs jobs smoke reps
        (Domain.recommended_domain_count ())
        (String.concat ",\n" (List.rev_map entry !results));
      row "  json snapshot written to %s@." path);
  Parallel.Pool.shutdown pool1;
  Parallel.Pool.shutdown pooln;
  (* check-arena gates on this experiment: a cross-layout mismatch is an
     engine bug, not a measurement. *)
  if not all_identical then exit 1

(* ------------------------------------------------------------------ *)
(* eval — the plan layer on million-fact instances                     *)
(* ------------------------------------------------------------------ *)

let eval () =
  header "eval"
    "plan layer: leapfrog joins vs boxed enumeration on large instances"
    "identical answers; leapfrog >= 2x at 10^6 facts; rewrite-then-evaluate \
     = chase-then-query";
  let smoke = Sys.getenv_opt "FRONTIER_BENCH_SMOKE" <> None in
  let reps = if smoke then 1 else 2 in
  Eval.reset_counters ();
  let equal_tuples a b = List.compare (List.compare Term.compare) a b = 0 in
  let results = ref [] in
  let report kind name tl tb n identical =
    row "  %-24s leapfrog %8.3fs   boxed %8.3fs   x%-6.2f %8d answers   %s@."
      name tl tb (tb /. tl) n
      (if identical then "identical" else "MISMATCH");
    results := (kind, name, tl, tb, n, identical) :: !results
  in
  (* [on]: plan-layer engine for the timed run. Both arms see the same
     Fact_set, so neither pays the instance build; the leapfrog arm's
     per-call Prepared sort IS part of its cost, deliberately. *)
  let best on q d =
    let t = ref infinity and out = ref None in
    for _ = 1 to reps do
      Eval.set_eval on;
      Gc.compact ();
      let v, dt = time_it (fun () -> Eval.answers q d) in
      if dt < !t then t := dt;
      out := Some v
    done;
    Eval.set_eval true;
    (Option.get !out, !t)
  in
  let ab name q d =
    let lf, tl = best true q d in
    let bx, tb = best false q d in
    report "ab" name tl tb (List.length lf) (equal_tuples lf bx)
  in
  (* --- A/B: leapfrog vs the boxed reference ------------------------- *)
  let gside = if smoke then 40 else 710 in
  let grid =
    Theories.Instances.grid Theories.Zoo.r2 Theories.Zoo.g2 ~width:gside
      ~height:gside
  in
  row "  grid %dx%d: %d facts@." gside gside (Fact_set.cardinal grid);
  let _, _, rq2 = Theories.Zoo.r_path_query 2 in
  ab "grid R-path^2" rq2 grid;
  (* Density matters: at ~15 edges/node the boxed engine's per-edge
     neighbourhood scans dwarf the leapfrog intersections, which is
     where the worst-case-optimal join earns its keep. *)
  let er_nodes, er_edges =
    if smoke then (500, 7_500) else (66_000, 1_000_000)
  in
  let er =
    Theories.Instances.erdos_renyi Theories.Zoo.e2 ~seed:42 ~nodes:er_nodes
      ~edges:er_edges
  in
  row "  erdos-renyi seed 42: %d facts@." (Fact_set.cardinal er);
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let tri =
    Cq.make ~free:[ x; y ]
      [
        Atom.make Theories.Zoo.e2 [ x; y ];
        Atom.make Theories.Zoo.e2 [ y; z ];
        Atom.make Theories.Zoo.e2 [ x; z ];
      ]
  in
  ab "ER triangles" tri er;
  let ba_nodes, ba_m = if smoke then (2_000, 3) else (330_000, 3) in
  let ba =
    Theories.Instances.barabasi_albert Theories.Zoo.e2 ~seed:42
      ~nodes:ba_nodes ~m:ba_m
  in
  row "  barabasi-albert seed 42: %d facts (heavy-tailed degrees)@."
    (Fact_set.cardinal ba);
  ab "BA triangles" tri ba;
  (* --- end-to-end: Strategy -> rewrite -> evaluate vs chase ---------- *)
  (* The acceptance pipeline behind [frontier answer]: on a generated
     grid, the portfolio's exact answers must coincide with
     chase-then-query restricted to the instance domain (the chase depth
     covers every rewriting disjunct of the path query, so the
     domain-restricted answers have converged even though these theories
     never saturate). *)
  let eside = if smoke then 30 else 710 in
  let _, _, eq2 = Theories.Zoo.e_path_query 2 in
  let q_e0 =
    (* q(x) :- E0(x, z): one rewriting step per tower level. *)
    Cq.make ~free:[ x ] [ Atom.make (Theories.Zoo.e_k 0) [ x; z ] ]
  in
  let e2e_depth = 3 and e2e_atoms = 12_000_000 in
  List.iter
    (fun (name, theory, rel_h, rel_v, q) ->
      let inst =
        Theories.Instances.grid rel_h rel_v ~width:eside ~height:eside
      in
      row "  %-24s grid %dx%d: %d facts@." name eside eside
        (Fact_set.cardinal inst);
      let plan = Portfolio.plan theory in
      let guard = Guard.create () in
      let a, ta =
        time_it (fun () ->
            Portfolio.execute ~guard ~max_depth:e2e_depth
              ~max_atoms:e2e_atoms plan theory inst q)
      in
      let (reference, _, _), tc =
        time_it (fun () ->
            Portfolio.Strategy.chase_arm ~max_depth:e2e_depth
              ~max_atoms:e2e_atoms theory inst q)
      in
      let ok =
        if a.Portfolio.Strategy.exact then
          Portfolio.Strategy.equal_answers a.Portfolio.Strategy.tuples
            reference
        else
          List.for_all
            (fun tuple -> List.exists (( = ) tuple) reference)
            a.Portfolio.Strategy.tuples
      in
      row "  %-24s rewrite+eval %8.3fs   chase+query %8.3fs   %8d answers \
           via %s%s   %s@."
        name ta tc
        (List.length a.Portfolio.Strategy.tuples)
        (Portfolio.Strategy.strategy_name a.Portfolio.Strategy.used)
        (if a.Portfolio.Strategy.exact then "" else " (partial)")
        (if ok then "agree" else "MISMATCH");
      results :=
        ("e2e", name, ta, tc, List.length a.Portfolio.Strategy.tuples, ok)
        :: !results)
    [
      ( "T_p / E-path^2", Theories.Zoo.t_p, Theories.Zoo.e2,
        Theories.Zoo.g2, eq2 );
      ( "T_e28[2] / E0(x,.)", Theories.Zoo.t_e28 2, Theories.Zoo.e_k 2,
        Theories.Zoo.e_k 1, q_e0 );
    ];
  (* --- plan-layer telemetry ------------------------------------------ *)
  let c = Eval.counters () in
  row "  plan layer: %d leapfrog plans / %d seeks / %d gallops / %d tuples@."
    c.Eval.plans c.Eval.seeks c.Eval.gallops c.Eval.emitted;
  let all_identical =
    List.for_all (fun (_, _, _, _, _, ok) -> ok) !results
  in
  let ab_speedup =
    List.fold_left
      (fun acc (kind, _, tl, tb, _, _) ->
        if kind = "ab" then Float.max acc (tb /. tl) else acc)
      0. !results
  in
  row "  answers agree on every workload: %b@." all_identical;
  row "  best leapfrog speedup over boxed: x%.2f@." ab_speedup;
  (* --- optional JSON snapshot ---------------------------------------- *)
  (match Sys.getenv_opt "FRONTIER_BENCH_JSON" with
  | None -> ()
  | Some path ->
      let entry (kind, name, tl, tb, n, ok) =
        Printf.sprintf
          {|    {
      "kind": %S,
      "workload": %S,
      "%s": %.6f,
      "%s": %.6f,
      "speedup": %.3f,
      "answers": %d,
      "passed": %b
    }|}
          kind name
          (if kind = "ab" then "leapfrog_s" else "rewrite_eval_s")
          tl
          (if kind = "ab" then "boxed_s" else "chase_query_s")
          tb (tb /. tl) n ok
      in
      Checkpoint.Atomic_io.write_file path
      @@ Printf.sprintf
           {|{
  "bench": "eval",
  "note": "leapfrog plan layer vs boxed enumeration (kind=ab) and the frontier-answer pipeline vs chase-then-query (kind=e2e); speedup = boxed_s / leapfrog_s resp. chase_query_s / rewrite_eval_s.",
  "smoke": %b,
  "reps": %d,
  "plans": %d,
  "seeks": %d,
  "gallops": %d,
  "emitted": %d,
  "workloads": [
%s
  ]
}
|}
           smoke reps c.Eval.plans c.Eval.seeks c.Eval.gallops c.Eval.emitted
           (String.concat ",\n" (List.rev_map entry !results));
      row "  json snapshot written to %s@." path);
  (* check-eval gates on this experiment: an answer mismatch is an
     engine bug; in full sizing the 10^6-fact workloads must also show
     the leapfrog layer is genuinely faster than the boxed reference. *)
  if not all_identical then exit 1;
  if (not smoke) && ab_speedup < 2. then begin
    row "  FAIL: expected >= 2x leapfrog speedup on 10^6-fact workloads@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* po — portfolio strategy selection + differential fuzz smoke         *)
(* ------------------------------------------------------------------ *)

let po () =
  header "po" "portfolio: checker decisions across the zoo + fuzz campaign"
    "every theory classifies, routes soundly; campaign: zero disagreements";
  let smoke = Sys.getenv_opt "FRONTIER_BENCH_SMOKE" <> None in
  row "  %-12s %-20s %-10s %s@." "theory" "strategy" "time" "reasons";
  List.iter
    (fun (name, theory) ->
      let plan, dt = time_it (fun () -> Portfolio.plan theory) in
      row "  %-12s %-20s %-10s %s@." name
        (Portfolio.Strategy.strategy_name plan.Portfolio.Strategy.strategy)
        (Printf.sprintf "%.1fms" (dt *. 1000.))
        (String.concat "; " plan.Portfolio.Strategy.reasons))
    [
      ("T_a", Theories.Zoo.t_a); ("T_p", Theories.Zoo.t_p);
      ("T_sticky", Theories.Zoo.t_sticky);
      ("T_nonbdd", Theories.Zoo.t_nonbdd); ("T_d", Theories.Zoo.t_d);
      ("T_d^3", Theories.Zoo.t_dk 3); ("T_d_noloop", Theories.Zoo.t_d_noloop);
      ("T_loopcut", Theories.Zoo.t_loopcut); ("T_c", Theories.Zoo.t_c);
      ("T_e28[3]", Theories.Zoo.t_e28 3); ("T_spouse", Theories.Zoo.t_spouse);
      ("T_ex66", Theories.Zoo.t_ex66);
    ];
  let count = if smoke then 60 else 500 in
  let outcome = Portfolio.Fuzz.campaign ~seed:42 ~count () in
  row "@.  %a" Portfolio.Fuzz.pp_outcome outcome;
  row "  campaign clean: %b@." (outcome.Portfolio.Fuzz.failures = [])

(* ------------------------------------------------------------------ *)
(* perf — bechamel micro-benchmarks                                    *)
(* ------------------------------------------------------------------ *)

let perf () =
  header "perf" "bechamel micro-benchmarks"
    "chase / homomorphism / containment / process step throughput";
  let open Bechamel in
  let open Toolkit in
  let _, _, g4 = Theories.Instances.path Theories.Zoo.g2 4 in
  let chase_run =
    Chase.Engine.run ~max_depth:4 ~max_atoms:50_000 Theories.Zoo.t_d g4
  in
  let chase_result = Chase.Engine.result chase_run in
  let _, _, phi2 = Theories.Zoo.phi_r 2 in
  let _, _, path3 = Theories.Zoo.e_path_query 3 in
  let t_loopcut_d =
    let _, _, d = Theories.Instances.path Theories.Zoo.e2 6 in
    d
  in
  let tests =
    [
      Test.make ~name:"chase T_d on G^4 depth 4"
        (Staged.stage (fun () ->
             ignore
               (Chase.Engine.run ~max_depth:4 ~max_atoms:50_000
                  Theories.Zoo.t_d g4)));
      Test.make ~name:"chase T_loopcut on E^6 depth 6"
        (Staged.stage (fun () ->
             ignore
               (Chase.Engine.run ~max_depth:6 Theories.Zoo.t_loopcut
                  t_loopcut_d)));
      Test.make ~name:"CQ eval phi_R^2 on chase(G^4)"
        (Staged.stage (fun () -> ignore (Cq.boolean_holds phi2 chase_result)));
      Test.make ~name:"containment path3 vs path3"
        (Staged.stage (fun () -> ignore (Containment.implies path3 path3)));
      Test.make ~name:"marked process phi_R^2"
        (Staged.stage (fun () -> ignore (Marked.Process.rewrite_td phi2)));
      Test.make ~name:"rewrite T_a mother query"
        (Staged.stage (fun () ->
             let x = Term.var "x" and y = Term.var "y" in
             ignore
               (Rewriting.Rewrite.rewrite Theories.Zoo.t_a
                  (Cq.make ~free:[ x ]
                     [ Atom.make Theories.Zoo.mother [ x; y ] ]))));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  row "  %-38s %-16s@." "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              let pretty =
                if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
                else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
                else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
                else Printf.sprintf "%.0f ns" est
              in
              row "  %-38s %-16s@." name pretty
          | Some [] | None -> row "  %-38s (no estimate)@." name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("par", par); ("ix", ix);
    ("rw", rw); ("shard", shard); ("arena", arena); ("eval", eval); ("po", po);
    ("perf", perf);
  ]

let () =
  (* Strip a -j N pair (or FRONTIER_JOBS) before experiment selection. *)
  let rec split_jobs acc = function
    | [] -> (List.rev acc, None)
    | "-j" :: n :: rest ->
        let ids, _ = split_jobs acc rest in
        (ids, int_of_string_opt n)
    | arg :: rest -> split_jobs (arg :: acc) rest
  in
  let args, jobs_flag =
    match Array.to_list Sys.argv with
    | _ :: args -> split_jobs [] args
    | [] -> ([], None)
  in
  (match jobs_flag with
  | Some j -> Parallel.Pool.set_default_jobs j
  | None -> Parallel.Pool.set_default_jobs (Parallel.Pool.jobs_from_env ()));
  let requested =
    match args with
    | [] | "all" :: _ -> List.map fst experiments
    | ids -> ids
  in
  Fmt.pr "frontier benchmark harness — paper experiment reproduction@.";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun id ->
      match List.assoc_opt (String.lowercase_ascii id) experiments with
      | Some f -> f ()
      | None ->
          Fmt.epr "unknown experiment %S (have: %s)@." id
            (String.concat ", " (List.map fst experiments)))
    requested;
  Fmt.pr "@.%s@.total wall time: %.1fs@." line (Unix.gettimeofday () -. t0)

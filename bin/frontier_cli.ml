(* frontier — command-line front end.

   Subcommands:
     chase     run the semi-oblivious Skolem chase and print stages
     rewrite   compute the UCQ rewriting of a query
     answer    certain answers, via the chase and (if possible) rewriting
     classify  syntactic class report for a theory
     analyze   locality / distancing / termination probes on an instance
     portfolio class checkers + auto-strategy selection (and execution)
     fuzz      seeded differential fuzzing campaign across the engines *)

open Cmdliner

(* Exit codes: 0 = complete result; 2 = a resource budget (deadline, fuel,
   memory ceiling, Ctrl-C) tripped and a PARTIAL result was printed;
   3 = internal error (bad input, unknown variant, ...). *)
let exit_exhausted = 2
let exit_internal = 3

let read_source s =
  (* A value is either inline text or @file. *)
  if String.length s > 0 && s.[0] = '@' then (
    let path = String.sub s 1 (String.length s - 1) in
    let ic = open_in path in
    let n = in_channel_length ic in
    let content = really_input_string ic n in
    close_in ic;
    content)
  else s

let theory_arg =
  let doc = "Theory: inline rules or @file. Rules look like \
             'Human(y) -> exists z. Mother(y,z)', separated by '.' or \
             newlines." in
  Arg.(required & opt (some string) None & info [ "t"; "theory" ] ~doc)

let instance_arg =
  let doc = "Instance: inline facts or @file, e.g. 'Human(abel). E(a,b)'." in
  Arg.(required & opt (some string) None & info [ "d"; "instance" ] ~doc)

let query_arg =
  let doc = "Query: '(x,y) :- R(x,z), G(z,y)' or ':- E(x,x)' (boolean)." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~doc)

let depth_arg =
  let doc = "Maximum chase depth." in
  Arg.(value & opt int 20 & info [ "depth" ] ~doc)

let atoms_arg =
  let doc = "Maximum number of chase atoms." in
  Arg.(value & opt int 200_000 & info [ "max-atoms" ] ~doc)

let jobs_arg =
  let doc =
    "Number of OCaml domains for the parallel chase stages and rewriting \
     saturation (1 = sequential). Results are identical for every value."
  in
  let env = Cmd.Env.info "FRONTIER_JOBS" in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~env ~doc)

let timeout_arg =
  let doc =
    "Wall-clock deadline in seconds (may be fractional). On expiry the \
     run stops at its next guard checkpoint, the partial result computed \
     so far is printed, and the exit code is 2."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~doc)

let memory_arg =
  let doc =
    "Live-heap ceiling in megabytes, sampled via Gc.quick_stat at guard \
     checkpoints. Exceeding it stops the run with partial output and \
     exit code 2."
  in
  Arg.(value & opt (some int) None & info [ "max-memory-mb" ] ~doc)

let words_of_mb mb = mb * 1024 * 1024 / (Sys.word_size / 8)

(* One guard per invocation: deadline/memory flags plus a cancellation
   token flipped by Ctrl-C or SIGTERM, so an interrupted run still prints
   its partial result (and --stats) on the way out — and, when a
   checkpoint sink is active, the kernel's final save runs before exit,
   so a supervised orchestrator that SIGTERMs a pod gets a resumable
   snapshot. Both signals share the partial-output exit code 2. *)
let with_guard ~timeout ~max_memory_mb f =
  let cancel = Atomic.make false in
  let guard =
    Frontier.Guard.create ?deadline_s:timeout
      ?max_heap_words:(Option.map words_of_mb max_memory_mb)
      ~cancel ()
  in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set cancel true) in
  let previous_int = Sys.signal Sys.sigint handler in
  let previous_term = Sys.signal Sys.sigterm handler in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint previous_int;
      Sys.set_signal Sys.sigterm previous_term)
    (fun () -> f guard)

(* Report the guard verdict and translate it into the exit code. *)
let finish guard =
  match Frontier.Guard.status guard with
  | None -> ()
  | Some cause ->
      let p = Frontier.Guard.progress guard in
      Fmt.pr
        "guard: exhausted (%s) after %d checkpoints, %d fuel spent, %.3fs \
         elapsed%s — partial result above@."
        (Frontier.Guard.cause_to_string cause)
        p.Frontier.Guard.checkpoints p.Frontier.Guard.fuel_spent
        p.Frontier.Guard.elapsed_s
        (if p.Frontier.Guard.peak_heap_words > 0 then
           Printf.sprintf ", peak heap %d words"
             p.Frontier.Guard.peak_heap_words
         else "");
      exit exit_exhausted

let with_pool jobs f =
  (* Always a private pool — a [create 1] spawns no domains but keeps
     this run's busy accounting out of the shared [Pool.sequential]. *)
  let pool = Frontier.Pool.create jobs in
  Fun.protect ~finally:(fun () -> Frontier.Pool.shutdown pool) (fun () ->
      f pool)

let parse_theory s = Frontier.Parse.theory (read_source s)
let parse_instance s = Frontier.Parse.instance (read_source s)
let parse_query s = Frontier.Parse.query (read_source s)

(* Engine telemetry for [--stats], one schema for every subcommand
   (chase, rewrite, answer): the process-wide tallies are sampled before
   the run and printed as deltas, plus the arena's absolute size (the
   store is append-only and process-wide, so a delta would undersell
   it). bench tables and tools/bench_drift.py rely on the lines being
   identical across paths — add new telemetry here, not in a command. *)
let engine_stats_before () =
  ( Frontier.Homomorphism.counters (),
    Frontier.Fact_set.counters (),
    Frontier.Pool.gate_counters (),
    Frontier.Eval.counters () )

let print_engine_stats (h0, f0, g0, e0) =
  let a = Frontier.Arena.stats Frontier.Arena.global in
  let h1 = Frontier.Homomorphism.counters () in
  let f1 = Frontier.Fact_set.counters () in
  let g1 = Frontier.Pool.gate_counters () in
  let e1 = Frontier.Eval.counters () in
  Fmt.pr "arena: %d spans / %d ints / %.2f MiB@." a.Frontier.Arena.spans
    a.Frontier.Arena.ints
    (float_of_int a.Frontier.Arena.bytes /. 1024. /. 1024.);
  Fmt.pr "compiled joins: %d searches / %d nodes / %d register ops / %d \
          solutions@."
    (h1.Frontier.Homomorphism.searches - h0.Frontier.Homomorphism.searches)
    (h1.Frontier.Homomorphism.nodes - h0.Frontier.Homomorphism.nodes)
    (h1.Frontier.Homomorphism.reg_ops - h0.Frontier.Homomorphism.reg_ops)
    (h1.Frontier.Homomorphism.solutions
    - h0.Frontier.Homomorphism.solutions);
  Fmt.pr "join index: %d posting probes / %d intersections@."
    (f1.Frontier.Fact_set.posting_probes
    - f0.Frontier.Fact_set.posting_probes)
    (f1.Frontier.Fact_set.posting_intersections
    - f0.Frontier.Fact_set.posting_intersections);
  Fmt.pr "index: +%d delta / %d rebuilt atoms@."
    (f1.Frontier.Fact_set.delta_atoms - f0.Frontier.Fact_set.delta_atoms)
    (f1.Frontier.Fact_set.built_atoms - f0.Frontier.Fact_set.built_atoms);
  Fmt.pr "plan layer: %d leapfrog plans / %d seeks / %d gallops / %d \
          tuples@."
    (e1.Frontier.Eval.plans - e0.Frontier.Eval.plans)
    (e1.Frontier.Eval.seeks - e0.Frontier.Eval.seeks)
    (e1.Frontier.Eval.gallops - e0.Frontier.Eval.gallops)
    (e1.Frontier.Eval.emitted - e0.Frontier.Eval.emitted);
  Fmt.pr "fan-out gate: %d batches inline / %d fanned out@."
    (g1.Frontier.Pool.inline_batches - g0.Frontier.Pool.inline_batches)
    (g1.Frontier.Pool.fanout_batches - g0.Frontier.Pool.fanout_batches)

let handle f =
  try f () with
  | Frontier.Parse.Error msg ->
      Fmt.epr "parse error: %s@." msg;
      exit exit_internal
  | Invalid_argument msg ->
      Fmt.epr "error: %s@." msg;
      exit exit_internal

(* Durability flags, shared by chase / rewrite / marked-rewrite. *)
let checkpoint_dir_arg =
  let doc =
    "Write crash-safe snapshots of the saturation state into this \
     directory (created if missing). An interrupted run — crash, OOM \
     kill, SIGINT/SIGTERM, tripped guard — can then be continued with \
     'frontier resume'."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~doc)

let checkpoint_every_arg =
  let doc =
    "Snapshot at every N-th committed saturation round (subject to a \
     0.5s wall-clock throttle between writes)."
  in
  Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~doc)

let make_sink dir every =
  Option.map (fun d -> Frontier.Checkpoint.sink ~every d) dir

let print_checkpoint_stats () =
  let c = Frontier.Checkpoint.counters () in
  if
    c.Frontier.Checkpoint.writes + c.Frontier.Checkpoint.write_failures
    + c.Frontier.Checkpoint.rejected_reads
    > 0
  then
    Fmt.pr
      "checkpoints: %d written (%d payload bytes), %d write failures, %d \
       rejected on read@."
      c.Frontier.Checkpoint.writes c.Frontier.Checkpoint.bytes_written
      c.Frontier.Checkpoint.write_failures
      c.Frontier.Checkpoint.rejected_reads

(* ------------------------------------------------------------------ *)

let chase_cmd =
  let run theory instance depth max_atoms verbose variant dot_file jobs stats
      timeout max_memory_mb checkpoint_dir checkpoint_every =
    handle (fun () ->
        with_pool jobs (fun pool ->
        with_guard ~timeout ~max_memory_mb (fun guard ->
        let t = parse_theory theory in
        let d = parse_instance instance in
        let checkpoint = make_sink checkpoint_dir checkpoint_every in
        (match (checkpoint, variant) with
        | Some _, ("oblivious" | "restricted") ->
            Fmt.epr
              "note: --checkpoint-dir only applies to the semi-oblivious \
               variant; ignoring@."
        | _ -> ());
        let result_facts =
          match variant with
          | "semi-oblivious" ->
              let es0 = engine_stats_before () in
              let run =
                Frontier.Chase_engine.run ~pool ~guard ~max_depth:depth
                  ~max_atoms ?checkpoint t d
              in
              Fmt.pr "chase: %d stages%s%s@."
                (Frontier.Chase_engine.depth run)
                (if Frontier.Chase_engine.saturated run then " (saturated)"
                 else "")
                (match Frontier.Chase_engine.interrupted run with
                 | Some c ->
                     " (interrupted: " ^ Frontier.Guard.cause_to_string c
                     ^ ")"
                 | None -> "");
              for i = 0 to Frontier.Chase_engine.depth run do
                Fmt.pr "stage %d: %d atoms@." i
                  (Frontier.Fact_set.cardinal
                     (Frontier.Chase_engine.stage run i))
              done;
              if stats then begin
                Fmt.pr "%a@." Frontier.Saturation.Stats.pp
                  (Frontier.Chase_engine.kernel_stats run);
                print_engine_stats es0;
                print_checkpoint_stats ()
              end;
              Frontier.Chase_engine.result run
          | "oblivious" ->
              let r =
                Frontier.Chase_variants.run_oblivious ~pool ~guard
                  ~max_depth:depth ~max_atoms t d
              in
              Fmt.pr "oblivious chase: %d stages%s, %d atoms@."
                r.Frontier.Chase_variants.steps
                (if r.Frontier.Chase_variants.saturated then " (saturated)"
                 else "")
                (Frontier.Fact_set.cardinal r.Frontier.Chase_variants.facts);
              r.Frontier.Chase_variants.facts
          | "restricted" ->
              let r =
                Frontier.Chase_variants.run_restricted ~guard
                  ~max_applications:(depth * 100) ~max_atoms t d
              in
              Fmt.pr "restricted chase: %d applications%s, %d atoms@."
                r.Frontier.Chase_variants.steps
                (if r.Frontier.Chase_variants.saturated then
                   " (model reached)"
                 else "")
                (Frontier.Fact_set.cardinal r.Frontier.Chase_variants.facts);
              r.Frontier.Chase_variants.facts
          | other ->
              Fmt.epr "unknown chase variant %S@." other;
              exit exit_internal
        in
        (match dot_file with
        | Some path ->
            let oc = open_out path in
            output_string oc
              (Frontier.Render.to_dot
                 ~highlight:(Frontier.Fact_set.domain d)
                 result_facts);
            close_out oc;
            Fmt.pr "dot graph written to %s@." path
        | None -> ());
        if verbose then Fmt.pr "%a@." Frontier.Fact_set.pp result_facts;
        finish guard)))
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print all atoms.")
  in
  let variant =
    Arg.(
      value
      & opt string "semi-oblivious"
      & info [ "variant" ]
          ~doc:"Chase variant: semi-oblivious (default), oblivious,                 restricted.")
  in
  let dot_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~doc:"Write the result as a GraphViz dot file.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print per-stage work counters (triggers, derived atoms, wall \
             time, per-domain busy time) plus the flat-arena engine \
             telemetry: arena size, compiled-join searches and register \
             ops, posting-list probes, and the parallel cost gate's \
             inline/fan-out batch split.")
  in
  Cmd.v
    (Cmd.info "chase" ~doc:"Run the chase (semi-oblivious by default)")
    Term.(
      const run $ theory_arg $ instance_arg $ depth_arg $ atoms_arg $ verbose
      $ variant $ dot_file $ jobs_arg $ stats $ timeout_arg $ memory_arg
      $ checkpoint_dir_arg $ checkpoint_every_arg)

let rewrite_cmd =
  let run theory query steps disjuncts jobs stats timeout max_memory_mb
      checkpoint_dir checkpoint_every =
    handle (fun () ->
        with_pool jobs (fun pool ->
        with_guard ~timeout ~max_memory_mb (fun guard ->
        let t = parse_theory theory in
        let q = parse_query query in
        let budget =
          {
            Frontier.Rewrite.default_budget with
            Frontier.Rewrite.max_steps = steps;
            max_disjuncts = disjuncts;
          }
        in
        let checkpoint = make_sink checkpoint_dir checkpoint_every in
        let es0 = engine_stats_before () in
        let r = Frontier.Rewrite.rewrite ~pool ~guard ~budget ?checkpoint t q in
        (match r.Frontier.Rewrite.outcome with
        | Frontier.Rewrite.Complete -> Fmt.pr "rewriting complete:@."
        | Frontier.Rewrite.Step_budget -> Fmt.pr "step budget exhausted; partial:@."
        | Frontier.Rewrite.Disjunct_budget ->
            Fmt.pr "disjunct budget exhausted; partial:@."
        | Frontier.Rewrite.Size_budget ->
            Fmt.pr "disjunct size budget exhausted; partial:@."
        | Frontier.Rewrite.Guard_exhausted cause ->
            Fmt.pr "guard exhausted (%s); partial:@."
              (Frontier.Guard.cause_to_string cause));
        Fmt.pr "%a@." Frontier.Ucq.pp r.Frontier.Rewrite.ucq;
        Fmt.pr
          "disjuncts: %d, max size: %d, steps: %d, generated: %d, \
           containment checks: %d (cache: %d hits, %d misses)@."
          (Frontier.Ucq.cardinal r.Frontier.Rewrite.ucq)
          (Frontier.Ucq.max_disjunct_size r.Frontier.Rewrite.ucq)
          r.Frontier.Rewrite.steps r.Frontier.Rewrite.generated
          r.Frontier.Rewrite.containment_checks
          r.Frontier.Rewrite.cache_hits r.Frontier.Rewrite.cache_misses;
        if stats then begin
          Fmt.pr "%a@." Frontier.Saturation.Stats.pp
            r.Frontier.Rewrite.kernel_stats;
          Fmt.pr
            "solver: %d candidate pairs pruned by the subsumption index, \
             %d containment searches split into components@."
            r.Frontier.Rewrite.index_pruned
            r.Frontier.Rewrite.component_splits;
          print_engine_stats es0;
          print_checkpoint_stats ()
        end;
        finish guard;
        (* Exhausted legacy budgets (no guard trip) also mean the printed
           UCQ is partial: keep the exit-code contract uniform. *)
        if r.Frontier.Rewrite.outcome <> Frontier.Rewrite.Complete then
          exit exit_exhausted)))
  in
  let steps =
    Arg.(value & opt int 5_000 & info [ "steps" ] ~doc:"Rewriting step budget.")
  in
  let disjuncts =
    Arg.(value & opt int 2_000 & info [ "disjuncts" ] ~doc:"Disjunct budget.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the saturation kernel's counters (rounds, frontier \
             expansions, admissions, dedups), the solver counters (pairs \
             pruned by the UCQ subsumption index, containment searches \
             decomposed into Gaifman components), and the flat-arena \
             engine telemetry: arena size, compiled-join searches and \
             register ops, posting-list probes, and the parallel cost \
             gate's inline/fan-out batch split.")
  in
  Cmd.v
    (Cmd.info "rewrite" ~doc:"Compute the UCQ rewriting of a query")
    Term.(
      const run $ theory_arg $ query_arg $ steps $ disjuncts $ jobs_arg
      $ stats $ timeout_arg $ memory_arg $ checkpoint_dir_arg
      $ checkpoint_every_arg)

(* The [answer] input: an explicit instance, or one of the seeded
   large-instance generators — the million-fact workloads the evaluation
   layer exists for. *)
let generated_instance ~gen ~gen_size ~gen_facts ~gen_seed ~gen_rels =
  let rels names =
    match
      String.split_on_char ',' names
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    with
    | [] -> invalid_arg "--gen-rels: need at least one relation name"
    | names -> List.map (fun n -> Frontier.Symbol.make n ~arity:2) names
  in
  match gen with
  | "grid" -> (
      match rels (Option.value ~default:"R,G" gen_rels) with
      | [ right; down ] ->
          Frontier.Instances.grid right down ~width:gen_size ~height:gen_size
      | _ -> invalid_arg "--gen grid: needs exactly two relations (right,down)")
  | "er" -> (
      match rels (Option.value ~default:"E" gen_rels) with
      | [ rel ] ->
          Frontier.Instances.erdos_renyi rel ~seed:gen_seed ~nodes:gen_size
            ~edges:gen_facts
      | _ -> invalid_arg "--gen er: needs exactly one relation")
  | "ba" -> (
      match rels (Option.value ~default:"E" gen_rels) with
      | [ rel ] ->
          Frontier.Instances.barabasi_albert rel ~seed:gen_seed
            ~nodes:gen_size
            ~m:(max 1 (gen_facts / max 1 gen_size))
      | _ -> invalid_arg "--gen ba: needs exactly one relation")
  | other -> invalid_arg ("unknown generator '" ^ other ^ "' (grid|er|ba)")

let answer_cmd =
  let run theory instance gen gen_size gen_facts gen_seed gen_rels query
      depth max_atoms jobs stats compare_engines timeout max_memory_mb =
    handle (fun () ->
        with_pool jobs (fun pool ->
        with_guard ~timeout ~max_memory_mb (fun guard ->
        let t = parse_theory theory in
        let d =
          match (instance, gen) with
          | Some s, None -> parse_instance s
          | None, Some g ->
              generated_instance ~gen:g ~gen_size ~gen_facts ~gen_seed
                ~gen_rels
          | Some _, Some _ ->
              invalid_arg "give either --instance or --gen, not both"
          | None, None -> invalid_arg "need an --instance or a --gen"
        in
        let q = parse_query query in
        Fmt.pr "instance: %d facts@." (Frontier.Fact_set.cardinal d);
        let es0 = engine_stats_before () in
        (* Strategy -> rewrite (or chase/marked) -> evaluate. *)
        let plan = Frontier.Portfolio.plan ~pool ~guard t in
        Fmt.pr "strategy: %a (%s)@." Frontier.Portfolio.Strategy.pp_strategy
          plan.Frontier.Portfolio.Strategy.strategy
          (String.concat "; " plan.Frontier.Portfolio.Strategy.reasons);
        let a =
          Frontier.Portfolio.execute ~pool ~guard ~max_depth:depth ~max_atoms
            plan t d q
        in
        Fmt.pr "%s answers (%d%s, via %s%s):@."
          (if a.Frontier.Portfolio.Strategy.exact then "certain" else "sound")
          (List.length a.Frontier.Portfolio.Strategy.tuples)
          (if a.Frontier.Portfolio.Strategy.exact then "" else ", partial")
          (Frontier.Portfolio.Strategy.strategy_name
             a.Frontier.Portfolio.Strategy.used)
          (if a.Frontier.Portfolio.Strategy.fell_back then ", after fallback"
           else "");
        let tuples = a.Frontier.Portfolio.Strategy.tuples in
        let shown = List.filteri (fun i _ -> i < 20) tuples in
        List.iter
          (fun tuple ->
            Fmt.pr "  (%a)@."
              (Fmt.list ~sep:(Fmt.any ", ") Frontier.Term.pp)
              tuple)
          shown;
        if List.length tuples > List.length shown then
          Fmt.pr "  ... (%d more)@." (List.length tuples - List.length shown);
        if compare_engines then begin
          let chase_tuples, saturated, _ =
            Frontier.Portfolio.Strategy.chase_arm ~pool ~guard
              ~max_depth:depth ~max_atoms t d q
          in
          Fmt.pr "chase-then-query (%d answers%s): %s@."
            (List.length chase_tuples)
            (if saturated then "" else ", unsaturated")
            (if
               Frontier.Portfolio.Strategy.equal_answers chase_tuples
                 (Frontier.Portfolio.Strategy.normalize_tuples tuples)
             then "agrees"
             else "DISAGREES")
        end;
        if stats then print_engine_stats es0;
        finish guard)))
  in
  let instance_opt =
    let doc = "Instance: inline facts or @file (alternative: --gen)." in
    Arg.(value & opt (some string) None & info [ "d"; "instance" ] ~doc)
  in
  let gen =
    let doc =
      "Generate the instance instead: 'grid' (gen-size x gen-size, \
       relations right,down), 'er' (Erdős–Rényi, gen-facts edges over \
       gen-size nodes) or 'ba' (Barabási–Albert preferential attachment, \
       ~gen-facts edges)."
    in
    Arg.(value & opt (some string) None & info [ "gen" ] ~doc)
  in
  let gen_size =
    Arg.(
      value & opt int 1000
      & info [ "gen-size" ]
          ~doc:"Nodes (er/ba) or side length (grid) of the generated \
                instance.")
  in
  let gen_facts =
    Arg.(
      value & opt int 1_000_000
      & info [ "gen-facts" ] ~doc:"Edge count of the generated instance \
                                   (er/ba).")
  in
  let gen_seed =
    Arg.(value & opt int 42 & info [ "gen-seed" ] ~doc:"Generator seed.")
  in
  let gen_rels =
    Arg.(
      value
      & opt (some string) None
      & info [ "gen-rels" ]
          ~doc:"Relation names for the generator, comma-separated \
                (defaults: 'R,G' for grid, 'E' for er/ba).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the engine telemetry (same schema as chase/rewrite \
             --stats), including the plan layer's leapfrog counters.")
  in
  let compare_engines =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Also compute chase-then-query answers and report whether \
             they agree with the strategy's result.")
  in
  Cmd.v
    (Cmd.info "answer"
       ~doc:
         "Certain answers end-to-end: strategy selection, rewriting (or \
          chase), then plan-layer evaluation over the instance")
    Term.(
      const run $ theory_arg $ instance_opt $ gen $ gen_size $ gen_facts
      $ gen_seed $ gen_rels $ query_arg $ depth_arg $ atoms_arg $ jobs_arg
      $ stats $ compare_engines $ timeout_arg $ memory_arg)

let explain_cmd =
  let run theory instance query tuple depth max_atoms =
    handle (fun () ->
        let t = parse_theory theory in
        let d = parse_instance instance in
        let q = parse_query query in
        let answer =
          match tuple with
          | None -> []
          | Some s ->
              String.split_on_char ',' s
              |> List.map String.trim
              |> List.filter (fun x -> x <> "")
              |> List.map Frontier.Term.const
        in
        let run = Frontier.Chase_engine.run ~max_depth:depth ~max_atoms t d in
        match Frontier.Explain.explain run q answer with
        | Some expl ->
            Fmt.pr "%a@." Frontier.Explain.pp expl;
            Fmt.pr "support is sufficient: %b@."
              (Frontier.Explain.support_is_sufficient ~max_depth:depth run
                 expl q answer)
        | None ->
            Fmt.pr
              "not entailed within the chase budget (depth %d)@." depth)
  in
  let tuple =
    Arg.(
      value
      & opt (some string) None
      & info [ "a"; "answers" ]
          ~doc:"Answer tuple: comma-separated constants, e.g. 'abel,eve'.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Why is the query entailed? Derivation trees and fact support")
    Term.(
      const run $ theory_arg $ instance_arg $ query_arg $ tuple $ depth_arg
      $ atoms_arg)

let marked_rewrite_cmd =
  let run query levels steps stats timeout max_memory_mb checkpoint_dir
      checkpoint_every =
    handle (fun () ->
        with_guard ~timeout ~max_memory_mb (fun guard ->
        let q = parse_query (read_source query) in
        let checkpoint = make_sink checkpoint_dir checkpoint_every in
        let res =
          if levels = 2 then
            Frontier.Marked_process.rewrite_td ~guard ~max_steps:steps
              ?checkpoint q
          else
            Frontier.Marked_process.rewrite_tdk ~guard ~max_steps:steps
              ?checkpoint levels q
        in
        Fmt.pr "%s after %d process steps (%d cut, %d fuse, %d reduce):@."
          (if res.Frontier.Marked_process.complete then "complete"
           else
             match res.Frontier.Marked_process.interrupted with
             | Some c ->
                 "guard exhausted (" ^ Frontier.Guard.cause_to_string c ^ ")"
             | None -> "step budget exhausted")
          res.Frontier.Marked_process.stats.Frontier.Marked_process.steps
          res.Frontier.Marked_process.stats.Frontier.Marked_process.cut_steps
          res.Frontier.Marked_process.stats.Frontier.Marked_process.fuse_steps
          res.Frontier.Marked_process.stats.Frontier.Marked_process.reduce_steps;
        if stats then begin
          Fmt.pr "%a@." Frontier.Saturation.Stats.pp
            res.Frontier.Marked_process.kernel_stats;
          print_checkpoint_stats ()
        end;
        Fmt.pr "%a@." Frontier.Ucq.pp res.Frontier.Marked_process.rewriting;
        Fmt.pr "disjuncts: %d, max size: %d, trivial: %d, aliased: %d@."
          (Frontier.Ucq.cardinal res.Frontier.Marked_process.rewriting)
          (Frontier.Ucq.max_disjunct_size
             res.Frontier.Marked_process.rewriting)
          (List.length res.Frontier.Marked_process.trivial)
          (List.length res.Frontier.Marked_process.aliased);
        finish guard;
        if not res.Frontier.Marked_process.complete then exit exit_exhausted))
  in
  let levels =
    Arg.(
      value & opt int 2
      & info [ "K"; "levels" ]
          ~doc:"Signature levels: 2 = T_d over R/G (default); K > 2 uses                 I1..IK (T_d^K).")
  in
  let steps =
    Arg.(
      value & opt int 200_000
      & info [ "steps" ] ~doc:"Process step budget.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the saturation kernel's counters (process steps, \
             operation results produced, live queries enqueued).")
  in
  Cmd.v
    (Cmd.info "marked-rewrite"
       ~doc:
         "Rewrite a query under T_d (or T_d^K) with the marked-query           process of Sections 10-12")
    Term.(
      const run $ query_arg $ levels $ steps $ stats $ timeout_arg
      $ memory_arg $ checkpoint_dir_arg $ checkpoint_every_arg)

let resume_cmd =
  let run dir jobs stats timeout max_memory_mb max_attempts checkpoint_every
      =
    handle (fun () ->
        with_pool jobs (fun pool ->
        with_guard ~timeout ~max_memory_mb (fun guard ->
        if Frontier.Checkpoint.Snapshot.list ~dir = [] then begin
          Fmt.epr "resume: no snapshots in %s@." dir;
          exit exit_internal
        end;
        (* The resumed run keeps checkpointing into the same directory, so
           each supervised attempt that makes progress shrinks the replay
           the next attempt has to do. *)
        let sink = Frontier.Checkpoint.sink ~every:checkpoint_every dir in
        let outcome, report =
          Frontier.Checkpoint.Supervisor.run ~max_attempts
            ~on_event:(fun line -> Fmt.epr "supervisor: %s@." line)
            ~dir
            (fun ~resume ->
              match resume with
              | None ->
                  invalid_arg
                    "every snapshot in the directory was rejected \
                     (checksum/version); cold start needs the original \
                     chase/rewrite/marked-rewrite invocation"
              | Some snap ->
                  let kind = snap.Frontier.Checkpoint.Snapshot.kind in
                  if kind = Frontier.Chase_engine.checkpoint_kind then
                    `Chase
                      (Frontier.Chase_engine.resume ~pool ~guard
                         ~checkpoint:sink snap)
                  else if kind = Frontier.Rewrite.checkpoint_kind then
                    `Rewrite
                      (Frontier.Rewrite.resume ~pool ~guard ~checkpoint:sink
                         snap)
                  else if kind = Frontier.Marked_process.checkpoint_kind
                  then
                    `Marked
                      (Frontier.Marked_process.resume ~pool ~guard
                         ~checkpoint:sink snap)
                  else
                    invalid_arg
                      (Printf.sprintf "unknown snapshot kind %S" kind))
        in
        if stats then begin
          Fmt.pr
            "supervisor: %d attempt%s, resumed from round %s, %d rejected \
             snapshot%s, %d cold start%s, %.2fs backoff@."
            report.Frontier.Checkpoint.Supervisor.attempts
            (if report.Frontier.Checkpoint.Supervisor.attempts = 1 then ""
             else "s")
            (match
               report.Frontier.Checkpoint.Supervisor.resumed_round
             with
            | Some r -> string_of_int r
            | None -> "<cold>")
            report.Frontier.Checkpoint.Supervisor.rejected_snapshots
            (if
               report.Frontier.Checkpoint.Supervisor.rejected_snapshots = 1
             then ""
             else "s")
            report.Frontier.Checkpoint.Supervisor.cold_starts
            (if report.Frontier.Checkpoint.Supervisor.cold_starts = 1 then
               ""
             else "s")
            report.Frontier.Checkpoint.Supervisor.slept_s;
          print_checkpoint_stats ()
        end;
        match outcome with
        | Error e ->
            Fmt.epr "resume failed: %s@." (Printexc.to_string e);
            exit exit_internal
        | Ok (`Chase run) ->
            Fmt.pr "chase: %d stages%s%s@."
              (Frontier.Chase_engine.depth run)
              (if Frontier.Chase_engine.saturated run then " (saturated)"
               else "")
              (match Frontier.Chase_engine.interrupted run with
              | Some c ->
                  " (interrupted: " ^ Frontier.Guard.cause_to_string c ^ ")"
              | None -> "");
            for i = 0 to Frontier.Chase_engine.depth run do
              Fmt.pr "stage %d: %d atoms@." i
                (Frontier.Fact_set.cardinal
                   (Frontier.Chase_engine.stage run i))
            done;
            if stats then
              Fmt.pr "%a@." Frontier.Saturation.Stats.pp
                (Frontier.Chase_engine.kernel_stats run);
            finish guard
        | Ok (`Rewrite r) ->
            (match r.Frontier.Rewrite.outcome with
            | Frontier.Rewrite.Complete -> Fmt.pr "rewriting complete:@."
            | Frontier.Rewrite.Step_budget ->
                Fmt.pr "step budget exhausted; partial:@."
            | Frontier.Rewrite.Disjunct_budget ->
                Fmt.pr "disjunct budget exhausted; partial:@."
            | Frontier.Rewrite.Size_budget ->
                Fmt.pr "disjunct size budget exhausted; partial:@."
            | Frontier.Rewrite.Guard_exhausted cause ->
                Fmt.pr "guard exhausted (%s); partial:@."
                  (Frontier.Guard.cause_to_string cause));
            Fmt.pr "%a@." Frontier.Ucq.pp r.Frontier.Rewrite.ucq;
            Fmt.pr "disjuncts: %d, max size: %d, steps: %d@."
              (Frontier.Ucq.cardinal r.Frontier.Rewrite.ucq)
              (Frontier.Ucq.max_disjunct_size r.Frontier.Rewrite.ucq)
              r.Frontier.Rewrite.steps;
            if stats then
              Fmt.pr "%a@." Frontier.Saturation.Stats.pp
                r.Frontier.Rewrite.kernel_stats;
            finish guard;
            if r.Frontier.Rewrite.outcome <> Frontier.Rewrite.Complete then
              exit exit_exhausted
        | Ok (`Marked res) ->
            Fmt.pr "%s after %d process steps:@."
              (if res.Frontier.Marked_process.complete then "complete"
               else
                 match res.Frontier.Marked_process.interrupted with
                 | Some c ->
                     "guard exhausted ("
                     ^ Frontier.Guard.cause_to_string c
                     ^ ")"
                 | None -> "step budget exhausted")
              res.Frontier.Marked_process.stats
                .Frontier.Marked_process.steps;
            Fmt.pr "%a@." Frontier.Ucq.pp
              res.Frontier.Marked_process.rewriting;
            Fmt.pr "disjuncts: %d, trivial: %d, aliased: %d@."
              (Frontier.Ucq.cardinal res.Frontier.Marked_process.rewriting)
              (List.length res.Frontier.Marked_process.trivial)
              (List.length res.Frontier.Marked_process.aliased);
            if stats then
              Fmt.pr "%a@." Frontier.Saturation.Stats.pp
                res.Frontier.Marked_process.kernel_stats;
            finish guard;
            if not res.Frontier.Marked_process.complete then
              exit exit_exhausted)))
  in
  let dir =
    let doc = "Snapshot directory written by --checkpoint-dir." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let max_attempts =
    Arg.(
      value & opt int 3
      & info [ "max-attempts" ]
          ~doc:
            "Supervised retries: on a failed attempt, back off \
             exponentially, re-read the snapshot directory, and resume \
             from the newest valid snapshot.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the supervisor report (attempts, resumed round, \
             rejected snapshots, backoff) plus the engine's kernel \
             counters and checkpoint write/read telemetry.")
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Continue an interrupted chase / rewrite / marked-rewrite run \
          from its newest valid snapshot, with supervised retries and \
          degradation to older snapshots on corruption")
    Term.(
      const run $ dir $ jobs_arg $ stats $ timeout_arg $ memory_arg
      $ max_attempts $ checkpoint_every_arg)

let classify_cmd =
  let run theory =
    handle (fun () ->
        let t = parse_theory theory in
        Fmt.pr "%a@." Frontier.Classes.pp_report (Frontier.classify t))
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Syntactic class report")
    Term.(const run $ theory_arg)

let analyze_cmd =
  let run theory instance depth max_l timeout max_memory_mb =
    handle (fun () ->
        with_guard ~timeout ~max_memory_mb (fun guard ->
        let t = parse_theory theory in
        let d = parse_instance instance in
        (match Frontier.Locality.min_constant ~depth t d ~max_l with
        | Some l -> Fmt.pr "locality: no defect at l = %d on this instance@." l
        | None ->
            Fmt.pr "locality: defects persist up to l = %d on this instance@."
              max_l);
        let run = Frontier.Chase_engine.run ~max_depth:depth t d in
        (match Frontier.Distancing.max_contraction run with
        | Some (p, ratio) ->
            Fmt.pr "distancing: max contraction %.3f (pair %a, %a)@." ratio
              Frontier.Term.pp p.Frontier.Distancing.a Frontier.Term.pp
              p.Frontier.Distancing.b
        | None -> Fmt.pr "distancing: no connected pair@.");
        (match
           Frontier.Termination.core_terminates_on ~guard ~max_c:depth t d
         with
        | Frontier.Termination.Holds c ->
            Fmt.pr "core termination: model inside stage %d@." c
        | Frontier.Termination.Budget_exhausted ->
            Fmt.pr "core termination: no model found within budget@."
        | Frontier.Termination.Fails ->
            Fmt.pr "core termination: refuted@.");
        finish guard))
  in
  let max_l =
    Arg.(value & opt int 4 & info [ "max-l" ] ~doc:"Locality constant bound.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Locality / distancing / termination probes")
    Term.(
      const run $ theory_arg $ instance_arg $ depth_arg $ max_l $ timeout_arg
      $ memory_arg)

let portfolio_cmd =
  let run theory instance query probe stats jobs timeout max_memory_mb =
    handle (fun () ->
        with_pool jobs (fun pool ->
        with_guard ~timeout ~max_memory_mb (fun guard ->
        let t = parse_theory theory in
        let plan = Frontier.Portfolio.plan ~pool ~guard ~probe t in
        Fmt.pr "strategy: %a (%s)@."
          Frontier.Portfolio.Strategy.pp_strategy
          plan.Frontier.Portfolio.Strategy.strategy
          (String.concat "; " plan.Frontier.Portfolio.Strategy.reasons);
        Fmt.pr "%a"
          Frontier.Portfolio.Checkers.pp_report
          plan.Frontier.Portfolio.Strategy.report;
        if stats then
          List.iter
            (fun (name, seconds) ->
              Fmt.pr "checker %-16s %.6fs@." name seconds)
            plan.Frontier.Portfolio.Strategy.report
              .Frontier.Portfolio.Checkers.timings;
        (match (instance, query) with
        | Some instance, Some query ->
            let d = parse_instance instance and q = parse_query query in
            let a = Frontier.Portfolio.execute ~pool ~guard plan t d q in
            Fmt.pr "answers via %s%s (%s, %d tuples):@."
              (Frontier.Portfolio.Strategy.strategy_name
                 a.Frontier.Portfolio.Strategy.used)
              (if a.Frontier.Portfolio.Strategy.fell_back then
                 " [fell back]"
               else "")
              (if a.Frontier.Portfolio.Strategy.exact then "exact"
               else "sound but possibly incomplete")
              (List.length a.Frontier.Portfolio.Strategy.tuples);
            List.iter
              (fun tuple ->
                Fmt.pr "  (%a)@."
                  (Fmt.list ~sep:(Fmt.any ", ") Frontier.Term.pp)
                  tuple)
              a.Frontier.Portfolio.Strategy.tuples;
            if stats then
              List.iter
                (fun (name, kernel) ->
                  Fmt.pr "engine %s:@.%a@." name
                    Frontier.Saturation.Stats.pp kernel)
                a.Frontier.Portfolio.Strategy.attempts
        | Some _, None | None, Some _ ->
            Fmt.epr
              "portfolio: --instance and --query must be given together@.";
            exit exit_internal
        | None, None -> ());
        finish guard)))
  in
  let instance_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "d"; "instance" ]
          ~doc:
            "Optional instance (with --query): execute the selected \
             strategy and print the certain answers.")
  in
  let query_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ]
          ~doc:"Optional query (with --instance); see the answer command.")
  in
  let probe =
    Arg.(
      value & flag
      & info [ "probe" ]
          ~doc:
            "Also run the empirical BDD probe (atomic-query rewritings + \
             uniform-bound series over random instances). Costs chases \
             and rewritings; off by default.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print per-checker wall-clock timings and, when executing, \
             each attempted engine's saturation-kernel counters.")
  in
  Cmd.v
    (Cmd.info "portfolio"
       ~doc:
         "Classify a theory with the portfolio checkers and select (or \
          run) the cheapest sound strategy")
    Term.(
      const run $ theory_arg $ instance_opt $ query_opt $ probe $ stats
      $ jobs_arg $ timeout_arg $ memory_arg)

let fuzz_cmd =
  let run seed count dir stats jobs timeout max_memory_mb =
    handle (fun () ->
        with_pool jobs (fun pool ->
        with_guard ~timeout ~max_memory_mb (fun guard ->
        let outcome =
          Frontier.Portfolio.Fuzz.campaign ~pool ~guard ?dir ~seed ~count ()
        in
        Fmt.pr "%a" Frontier.Portfolio.Fuzz.pp_outcome outcome;
        if stats then
          List.iter
            (fun f ->
              List.iter
                (fun a ->
                  Fmt.pr "  sample %d arm %s: %s, %d answers@."
                    f.Frontier.Portfolio.Fuzz.sample
                      .Frontier.Portfolio.Fuzz.index
                    a.Frontier.Portfolio.Fuzz.arm
                    (if a.Frontier.Portfolio.Fuzz.exact then "exact"
                     else "inexact")
                    (List.length a.Frontier.Portfolio.Fuzz.answers))
                f.Frontier.Portfolio.Fuzz.arms)
            outcome.Frontier.Portfolio.Fuzz.failures;
        finish guard;
        if outcome.Frontier.Portfolio.Fuzz.failures <> [] then exit 1)))
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~doc:"Campaign seed; samples are deterministic in it.")
  in
  let count =
    Arg.(value & opt int 200 & info [ "count" ] ~doc:"Number of samples.")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ]
          ~doc:
            "Directory for minimized .repro counterexamples (created if \
             missing). Without it failures are only reported.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print per-arm answers for each failure.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: run every applicable engine on seeded \
          random theories, cross-check certain answers, and minimize any \
          disagreement to a .repro file (exit 1)")
    Term.(
      const run $ seed $ count $ dir $ stats $ jobs_arg $ timeout_arg
      $ memory_arg)

let () =
  (* FRONTIER_FAULTS=<seed> turns on deterministic fault injection for the
     whole process — the replayable chaos knob the CI fault matrix uses. *)
  Frontier.Guard.Faults.install (Frontier.Guard.Faults.from_env ());
  let info =
    Cmd.info "frontier" ~version:"1.0.0"
      ~doc:
        "Query rewritability toolkit: chase, UCQ rewriting, and the \
         frontier analyzers from 'A Journey to the Frontiers of Query \
         Rewritability' (PODS 2022)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ chase_cmd; rewrite_cmd; marked_rewrite_cmd; resume_cmd;
            answer_cmd; explain_cmd; classify_cmd; analyze_cmd;
            portfolio_cmd; fuzz_cmd ]))

.PHONY: all build test check check-faults check-kernel check-portfolio check-shard check-arena check-eval check-resume bench bench-smoke examples doc clean fmt

# Every generated bench snapshot — recorded smoke baselines and the
# transient *-check.json the drift gates produce — lives here, out of
# the repo root. The committed BENCH_*.json full-size runs stay at the
# top level; they are reference data, not build products.
SNAPSHOTS := bench/snapshots

all: build

$(SNAPSHOTS):
	mkdir -p $(SNAPSHOTS)

build:
	dune build @all

test:
	dune runtest --force

# What CI runs: full build, the whole test suite (property counts scale
# with FRONTIER_QCHECK_COUNT), and a parallel-layer smoke run.
check:
	dune build @all
	dune runtest --force
	dune exec bench/main.exe -- e1 par -j 2

# Fault matrix (mirrored by the CI fault-matrix job): replay the
# property suite under three deterministic fault schedules
# (FRONTIER_FAULTS seeds task exceptions, worker deaths, and simulated
# deadline/memory trips), then drive the CLI's degraded mode — a
# non-terminating chase under --timeout must print a partial result and
# exit 2 — at -j1 and -j4.
check-faults: build
	for seed in 1 7 42; do \
	  echo "== FRONTIER_FAULTS=$$seed =="; \
	  FRONTIER_FAULTS=$$seed FRONTIER_QCHECK_COUNT=25 \
	    dune exec test/test_properties.exe || exit 1; \
	done
	for j in 1 4; do \
	  echo "== degraded-mode chase, -j $$j =="; \
	  dune exec bin/frontier_cli.exe -- chase \
	    -t 'E(x,y) -> exists z. E(y,z)' -d 'E(a,b)' \
	    --depth 1000000 --max-atoms 100000000 --timeout 0.3 -j $$j; \
	  test $$? -eq 2 || exit 1; \
	done

# Saturation-kernel gate: the kernel unit tests, the differential
# property suite (kernel-based chase/rewriting vs the naive references,
# -j1..-j4, fault seeds), then the ix and rw bench experiments re-run in
# smoke sizing at -j1 and -j4 and compared against the recorded
# snapshots — aggregate wall-clock drift beyond DRIFT_TOL (default 5%)
# fails. A first run on a fresh checkout seeds the snapshots; run `make
# bench-smoke` on the baseline commit to compare across commits.
DRIFT_TOL ?= 0.05
check-kernel: build | $(SNAPSHOTS)
	dune exec test/test_guard.exe
	FRONTIER_QCHECK_COUNT=50 dune exec test/test_properties.exe
	for j in 1 4; do \
	  echo "== bench drift gate, -j $$j =="; \
	  FRONTIER_JOBS=$$j FRONTIER_BENCH_SMOKE=1 \
	    FRONTIER_BENCH_JSON=$(SNAPSHOTS)/bench-kernel-ix.json \
	    dune exec bench/main.exe -- ix || exit 1; \
	  FRONTIER_JOBS=$$j FRONTIER_BENCH_SMOKE=1 \
	    FRONTIER_BENCH_JSON=$(SNAPSHOTS)/bench-kernel-rw.json \
	    dune exec bench/main.exe -- rw || exit 1; \
	  python3 tools/bench_drift.py $(SNAPSHOTS)/bench-smoke.json \
	    $(SNAPSHOTS)/bench-kernel-ix.json \
	    --tolerance $(DRIFT_TOL) || exit 1; \
	  python3 tools/bench_drift.py $(SNAPSHOTS)/bench-smoke-rw.json \
	    $(SNAPSHOTS)/bench-kernel-rw.json \
	    --tolerance $(DRIFT_TOL) || exit 1; \
	done

# Sharded-scheduler gate (mirrored by the CI shard job): the pool unit
# suite (shard slicing, steal paths, dead-worker rescue, the [exists]
# early exit), the differential property suite (kernel clients vs the
# naive references at -j1..-j4), a pool-driven smoke of the default-pool
# plumbing at -j1, -j4 and -j$(NPROC), and finally the shard experiment
# itself — explicit -j1 vs -j4 pools over every saturation client, which
# exits nonzero if any workload misses its cross-scheduling contract.
# Its snapshot is gated against the recorded baseline by the drift
# checker (at a loose tolerance: the shard smoke totals ~0.2s, so
# scheduler noise swamps the kernel gate's 5% — correctness is enforced
# by the experiment's own nonzero exit, drift is a coarse tripwire).
# The committed BENCH_shard.json is the full-size run; the smoke check
# writes bench-shard-check.json instead so it never clobbers it.
NPROC := $(shell nproc 2>/dev/null || echo 2)
SHARD_DRIFT_TOL ?= 0.25
check-shard: build | $(SNAPSHOTS)
	dune exec test/test_pool.exe
	FRONTIER_QCHECK_COUNT=25 dune exec test/test_properties.exe
	for j in 1 4 $(NPROC); do \
	  echo "== pool-driven smoke, -j $$j =="; \
	  FRONTIER_BENCH_SMOKE=1 \
	    dune exec bench/main.exe -- par -j $$j || exit 1; \
	done
	FRONTIER_BENCH_SMOKE=1 \
	  FRONTIER_BENCH_JSON=$(SNAPSHOTS)/bench-shard-check.json \
	  dune exec bench/main.exe -- shard
	python3 tools/bench_drift.py $(SNAPSHOTS)/bench-smoke-shard.json \
	  $(SNAPSHOTS)/bench-shard-check.json \
	  --tolerance $(SHARD_DRIFT_TOL)

# Flat-arena gate (mirrored by the CI arena job): the arena unit suite
# (interning, span decoding, posting intersections), the arena-vs-boxed
# differential properties, then the arena A/B experiment in smoke sizing
# — which itself exits nonzero if any boxed/arena stage comparison or
# cost-gate criterion fails — drift-gated against the recorded smoke
# snapshot. The committed BENCH_arena.json is the full-size run; the
# smoke check writes bench-arena-check.json so it never clobbers it.
ARENA_DRIFT_TOL ?= 0.25
check-arena: build | $(SNAPSHOTS)
	dune exec test/test_arena.exe
	FRONTIER_QCHECK_COUNT=25 dune exec test/test_properties.exe
	FRONTIER_BENCH_SMOKE=1 \
	  FRONTIER_BENCH_JSON=$(SNAPSHOTS)/bench-arena-check.json \
	  dune exec bench/main.exe -- arena
	python3 tools/bench_drift.py $(SNAPSHOTS)/bench-smoke-arena.json \
	  $(SNAPSHOTS)/bench-arena-check.json \
	  --tolerance $(ARENA_DRIFT_TOL)

# Plan-layer gate (mirrored by the CI eval job): the eval unit suite
# (plan compilation, leapfrog-vs-reference answers, guard salvage, the
# containment probe), the eval differential properties (leapfrog =
# boxed = Cq.answers on random and seeded instances; rewrite-then-
# evaluate = chase-then-query across the zoo at -j1/-j4), a CLI smoke
# of `frontier answer` on a generated grid, then the eval A/B
# experiment in smoke sizing — which itself exits nonzero on any
# answer mismatch — drift-gated against the recorded smoke snapshot.
# The committed BENCH_eval.json is the full-size run; the smoke check
# writes bench-eval-check.json so it never clobbers it.
EVAL_DRIFT_TOL ?= 0.25
check-eval: build | $(SNAPSHOTS)
	dune exec test/test_eval.exe
	FRONTIER_QCHECK_COUNT=25 dune exec test/test_properties.exe -- test eval
	dune exec bin/frontier_cli.exe -- answer \
	  -t 'E(x,y) -> exists z. E(y,z)' -q '(x,y) :- E(x,z), E(z,y)' \
	  --gen grid --gen-size 60 --compare --stats
	FRONTIER_BENCH_SMOKE=1 \
	  FRONTIER_BENCH_JSON=$(SNAPSHOTS)/bench-eval-check.json \
	  dune exec bench/main.exe -- eval
	python3 tools/bench_drift.py $(SNAPSHOTS)/bench-smoke-eval.json \
	  $(SNAPSHOTS)/bench-eval-check.json \
	  --tolerance $(EVAL_DRIFT_TOL)

# Portfolio gate (mirrored by the CI portfolio job): the checker /
# selector / minimizer / repro unit suites, the zoo classification
# cross-check in the paper suite, then a differential fuzz smoke —
# 200 samples at each of three seeds plus a 500-sample campaign at
# seed 42, all via the multi-seed sweep tool. Any disagreement is
# delta-debugged to a .repro under _fuzz/ (CI uploads them).
check-portfolio: build
	dune exec test/test_portfolio.exe
	dune exec test/test_paper.exe
	dune exec tools/fuzz_campaign.exe -- --count 200 --dir _fuzz 1 7 42
	dune exec tools/fuzz_campaign.exe -- --count 500 --dir _fuzz 42

# Durability gate (mirrored by the CI resume job): the checkpoint unit
# and in-process resume-differential suite, then real SIGKILL
# crash/resume trials — each trial forks a child running with
# checkpointing on, kills it at a seeded saturation round, resumes
# through the supervisor in the parent, and compares against an
# uninterrupted reference (chase: bit-identical stages; rewriting
# engines: UCQ-equivalent). Chase and rewrite trials are cheap; the
# marked trials replay phi_R^5 end to end, so their count stays small.
# Passing trials clean up after themselves; failing trials leave their
# snapshot directories under _crash/ for post-mortem (CI uploads them).
check-resume: build
	dune exec test/test_checkpoint.exe
	dune exec tools/crash_harness.exe -- --dir _crash --workload chase --trials 5 1 7 42
	dune exec tools/crash_harness.exe -- --dir _crash --workload rewrite --trials 5 1 7 42
	dune exec tools/crash_harness.exe -- --dir _crash --workload marked --trials 1 1 7 42

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Quick A/B passes on reduced workloads; each experiment emits a JSON
# snapshot (counters + timings) suitable for archiving as a CI artifact:
#   ix     incremental fact-set indexing + containment memoization
#   rw     subsumption-indexed UCQ store + decomposed containment solver
#   shard  sharded work-stealing pool, -j1 vs -j4 differential
#   arena  flat-arena + compiled joins vs boxed, cost-gated -j4
#   eval   leapfrog plan layer vs boxed enumeration + answer pipeline
bench-smoke: | $(SNAPSHOTS)
	FRONTIER_BENCH_SMOKE=1 \
		FRONTIER_BENCH_JSON=$(SNAPSHOTS)/bench-smoke.json \
		dune exec bench/main.exe -- ix
	FRONTIER_BENCH_SMOKE=1 \
		FRONTIER_BENCH_JSON=$(SNAPSHOTS)/bench-smoke-rw.json \
		dune exec bench/main.exe -- rw
	FRONTIER_BENCH_SMOKE=1 \
		FRONTIER_BENCH_JSON=$(SNAPSHOTS)/bench-smoke-shard.json \
		dune exec bench/main.exe -- shard
	FRONTIER_BENCH_SMOKE=1 \
		FRONTIER_BENCH_JSON=$(SNAPSHOTS)/bench-smoke-arena.json \
		dune exec bench/main.exe -- arena
	FRONTIER_BENCH_SMOKE=1 \
		FRONTIER_BENCH_JSON=$(SNAPSHOTS)/bench-smoke-eval.json \
		dune exec bench/main.exe -- eval

examples:
	dune exec examples/quickstart.exe
	dune exec examples/genealogy.exe
	dune exec examples/sticky_colors.exe
	dune exec examples/chase_zoo.exe
	dune exec examples/university.exe
	dune exec examples/frontier_grid.exe

doc:
	dune build @doc

clean:
	dune clean

fmt:
	dune fmt || true

.PHONY: all build test bench examples doc clean fmt

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

examples:
	dune exec examples/quickstart.exe
	dune exec examples/genealogy.exe
	dune exec examples/sticky_colors.exe
	dune exec examples/chase_zoo.exe
	dune exec examples/university.exe
	dune exec examples/frontier_grid.exe

doc:
	dune build @doc

clean:
	dune clean

fmt:
	dune fmt || true

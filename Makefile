.PHONY: all build test check bench bench-smoke examples doc clean fmt

all: build

build:
	dune build @all

test:
	dune runtest --force

# What CI runs: full build, the whole test suite (property counts scale
# with FRONTIER_QCHECK_COUNT), and a parallel-layer smoke run.
check:
	dune build @all
	dune runtest --force
	dune exec bench/main.exe -- e1 par -j 2

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Quick A/B passes on reduced workloads; each experiment emits a JSON
# snapshot (counters + timings) suitable for archiving as a CI artifact:
#   ix  incremental fact-set indexing + containment memoization
#   rw  subsumption-indexed UCQ store + decomposed containment solver
bench-smoke:
	FRONTIER_BENCH_SMOKE=1 FRONTIER_BENCH_JSON=bench-smoke.json \
		dune exec bench/main.exe -- ix
	FRONTIER_BENCH_SMOKE=1 FRONTIER_BENCH_JSON=bench-smoke-rw.json \
		dune exec bench/main.exe -- rw

examples:
	dune exec examples/quickstart.exe
	dune exec examples/genealogy.exe
	dune exec examples/sticky_colors.exe
	dune exec examples/chase_zoo.exe
	dune exec examples/university.exe
	dune exec examples/frontier_grid.exe

doc:
	dune build @doc

clean:
	dune clean

fmt:
	dune fmt || true

(** The rewriting process of Section 10: start from all proper markings of
    the input query ([S_0]), repeatedly replace a live query by the result
    of the applicable operation, until no live query remains. Termination
    is guaranteed by rank descent (Lemma 53) — the implementation
    additionally takes a step budget as a defensive bound and can record
    the rank trace so tests can verify the strict descent. *)

open Logic

type stats = {
  steps : int;
  cut_steps : int;
  fuse_steps : int;
  reduce_steps : int;
  dropped_improper : int;  (** results discarded as not properly marked *)
  dropped_unsat : int;  (** unsatisfiable in-edge patterns (K > 2 only) *)
}

type result = {
  rewriting : Ucq.t;
      (** The disjuncts from totally marked, non-aliased queries: the CQ
          part of [rew(phi)]. *)
  aliased : Marked_query.t list;
      (** Totally marked queries whose answer variables were fused. *)
  trivial : Marked_query.t list;
      (** Queries reduced to an empty body: true for every answer tuple over
          the instance domain (respecting aliases). *)
  complete : bool;  (** false iff the step budget or the guard tripped *)
  interrupted : Guard.cause option;
      (** the guard's trip cause when one fired; [None] for a clean finish
          or a plain [max_steps] trip. When set, [rewriting]/[aliased]/
          [trivial] hold the totally-marked queries collected so far — a
          sound partial rewriting (each disjunct is a genuine member of
          [rew(phi)]); only completeness is lost. *)
  stats : stats;
  kernel_stats : Saturation.Stats.t;
      (** the saturation kernel's counters for the run ([expanded] =
          process steps taken, [generated] = operation results produced,
          [admitted] = live queries enqueued); per-round entries are not
          recorded — the process is a strict one-pop-per-round worklist *)
  rank_trace : Rank.srk list option;
}

val run :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_steps:int -> ?record_ranks:bool ->
  ?on_step:
    (before:Marked_query.t ->
     classification:Operations.classification ->
     results:Marked_query.t list ->
     unit) ->
  ?checkpoint:Checkpoint.sink ->
  levels:Symbol.t array ->
  Cq.t -> result
(** Requires a connected query with at least one answer variable (the paper
    dispenses with boolean queries via the (loop) rule — see
    {!boolean_always_true}). Defaults: [max_steps = 200_000],
    [record_ranks = false]. The guard is checkpointed (one fuel unit) per
    process step; a trip abandons the live queue and reports the cause in
    [interrupted].

    With [checkpoint], the process state — the live worklist, the
    collected totally-marked and trivial queries, the step counters, and
    the {e full} iso-dedup store — is snapshotted into the sink's
    directory at its round cadence (the [min_interval_s] throttle
    matters here: the process commits one round per worklist pop) and at
    any non-complete finish — see {!resume}.

    The process itself is a strict one-pop-per-round worklist, but the
    per-result classification cost (isomorphism fingerprints and
    canonical ids) is farmed out to [pool] when it has workers: keys are
    computed in parallel, then consumed by a sequential store pass in
    the original order, so the result is bit-identical at any pool size.
    Defaults to a private sequential pool so independent runs do not
    share busy-time accounting. *)

val rewrite_td :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_steps:int ->
  ?on_step:
    (before:Marked_query.t ->
     classification:Operations.classification ->
     results:Marked_query.t list ->
     unit) ->
  ?checkpoint:Checkpoint.sink ->
  Cq.t -> result
(** The process for [T_d] itself: levels [G; R]. *)

val rewrite_tdk :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_steps:int ->
  ?on_step:
    (before:Marked_query.t ->
     classification:Operations.classification ->
     results:Marked_query.t list ->
     unit) ->
  ?checkpoint:Checkpoint.sink ->
  int -> Cq.t -> result
(** The process for [T_d^K]: levels [I_1; ...; I_K]. *)

val checkpoint_kind : string
(** The [Checkpoint.Snapshot.kind] tag process snapshots carry:
    ["marked"]. *)

val resume :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_steps:int ->
  ?checkpoint:Checkpoint.sink ->
  Checkpoint.Snapshot.t -> result
(** Continue a rewriting process from a (validated) snapshot. The
    iso-dedup store is rebuilt from the snapshot's full seen-section (so
    no already-processed query is re-admitted), the collected results
    and step counters are restored verbatim, and the live worklist
    resumes in queue order; [max_steps] defaults to the snapshot's
    recorded value. The resumed result's rewriting, aliased, and trivial
    sets equal an uninterrupted run's. [record_ranks] and [on_step] are
    not available on resume — the pre-snapshot portion of a rank trace
    is not serialized, and [kernel_stats] covers only the resumed
    segment.

    Raises [Invalid_argument] on a snapshot of a different kind and
    [Checkpoint.Codec.Error] on undecodable content. *)

val boolean_always_true : unit -> unit
(** Documentation marker: due to (loop), every boolean CQ over the level
    signature holds in [Ch_1(T_d, D)] for every instance [D] — boolean
    queries need no rewriting. *)

val holds_via_rewriting :
  result -> Fact_set.t -> Term.t list -> bool
(** Evaluate the computed rewriting over an instance: true iff some CQ
    disjunct holds, some aliased disjunct holds with the tuple's equalities
    satisfied, or some trivial disjunct admits the tuple (all components in
    the active domain with the required equalities). *)

(** Marked queries (Definition 47) over the layered signature of [T_d]
    and [T_d^K].

    A marked query is a CQ over binary level relations [I_1 .. I_K]
    ([T_d] is the instance [K = 2] with [I_2 = R] and [I_1 = G]) together
    with a set [V] of *marked* variables — those that must be matched to
    original-instance constants (Definition 48). Answer variables are
    always marked.

    Answer aliasing: the fuse operations can force two answer variables
    together; we keep the original answer tuple shape and track each answer
    variable's current representative, so such disjuncts stay first-class
    (they answer only tuples with the corresponding components equal). *)

open Logic

type t = private {
  levels : Symbol.t array;
      (** [levels.(i)] is [I_{i+1}]; length [K >= 2]. *)
  free : (Term.t * Term.t) list;
      (** (original answer variable, current representative). *)
  atoms : Atom.t list;  (** binary atoms over [levels]; may be empty *)
  marked : Term.Set.t;  (** contains every representative of [free] *)
  mutable tagged : Cq.t option option;
      (** cached [tagged_cq]; [None] until first computed *)
}

val make :
  levels:Symbol.t array ->
  free:(Term.t * Term.t) list ->
  marked:Term.Set.t ->
  Atom.t list ->
  t
(** Validates: atoms binary over [levels], representatives marked and (when
    atoms are non-empty) occurring in the atoms, marked set within the
    variables. *)

val of_cq : levels:Symbol.t array -> Cq.t -> marked:Term.Set.t -> t
val vars : t -> Term.t list
val level_of : t -> Atom.t -> int
(** Index [i] such that the atom's relation is [levels.(i)]. *)

val atoms_at_level : t -> int -> Atom.t list
val is_totally_marked : t -> bool
val is_trivial : t -> bool
(** No atoms left: satisfied by any answer tuple over the instance domain
    (respecting aliases). *)

val is_properly_marked : t -> bool
(** The conditions of Observation 50, generalized to [K] levels:
    (i) an edge into a marked variable starts at a marked variable;
    (ii) every variable on a directed cycle is marked;
    (iii) two same-level edges into one variable: markings of the sources
    agree;
    (iv) [K > 2] only: an unmarked variable's in-edges use at most two
    levels, and when two, they are adjacent ([I_{i+1}] and [I_i]) — any
    other in-pattern cannot be realized by a chase-invented term. *)

val is_live : t -> bool
(** Properly marked, not totally marked, and non-trivial. *)

val all_markings : levels:Symbol.t array -> Cq.t -> t list
(** [S_0]: every marking [V] with [free subseteq V], restricted to the
    properly marked ones. *)

val to_cq : t -> Cq.t option
(** The underlying CQ with the representatives as answer variables;
    [None] when trivial (no atoms). *)

val tagged_cq : t -> Cq.t option
(** Encoding for isomorphism tests: the CQ extended with a unary
    [MARKED] atom per marked variable. [None] when trivial. *)

val equal_upto_iso : t -> t -> bool

val aliased : t -> bool
(** Two answer variables share a representative. *)

val tuple_admissible : t -> Term.t list -> (Term.t * Term.t) list option
(** Check an answer tuple against the aliasing structure: [None] when two
    aliased positions disagree; otherwise the binding of each
    representative. *)

val holds : Chase.Engine.run -> t -> Term.t list -> bool
(** Definition 48: a homomorphism into the chase prefix mapping marked
    variables into [dom(D)] and unmarked ones outside it, with the answer
    tuple respected. *)

val pp : t Fmt.t

open Logic

type t = {
  levels : Symbol.t array;
  free : (Term.t * Term.t) list;
  atoms : Atom.t list;
  marked : Term.Set.t;
  mutable tagged : Cq.t option option;
      (* cached [tagged_cq]; [None] = not yet computed *)
}

let marked_tag = Symbol.make "MARKED?" ~arity:1

let level_index levels rel =
  let rec go i =
    if i >= Array.length levels then None
    else if Symbol.equal levels.(i) rel then Some i
    else go (i + 1)
  in
  go 0

let dedup_terms l =
  let _, rev =
    List.fold_left
      (fun (seen, acc) x ->
        if Term.Set.mem x seen then (seen, acc)
        else (Term.Set.add x seen, x :: acc))
      (Term.Set.empty, []) l
  in
  List.rev rev

let make ~levels ~free ~marked atoms =
  if Array.length levels < 2 then
    invalid_arg "Marked_query.make: need at least two levels";
  let atoms = Atom.Set.elements (Atom.Set.of_list atoms) in
  List.iter
    (fun a ->
      (match level_index levels (Atom.rel a) with
      | Some _ -> ()
      | None ->
          invalid_arg
            (Fmt.str "Marked_query.make: atom %a outside the level signature"
               Atom.pp a));
      if Atom.arity a <> 2 then
        invalid_arg "Marked_query.make: level relations must be binary";
      List.iter
        (fun t ->
          if not (Term.is_var t) then
            invalid_arg "Marked_query.make: only variables allowed")
        (Atom.args a))
    atoms;
  let var_set = Term.Set.of_list (List.concat_map Atom.vars atoms) in
  List.iter
    (fun (_orig, rep) ->
      if not (Term.Set.mem rep marked) then
        invalid_arg "Marked_query.make: answer representative must be marked";
      if atoms <> [] && not (Term.Set.mem rep var_set) then
        invalid_arg
          "Marked_query.make: answer representative must occur in the body")
    free;
  let rep_set = Term.Set.of_list (List.map snd free) in
  if not (Term.Set.subset marked (Term.Set.union var_set rep_set)) then
    invalid_arg "Marked_query.make: marked variables must occur in the query";
  { levels; free; atoms; marked; tagged = None }

let of_cq ~levels q ~marked =
  let marked =
    Term.Set.union marked (Term.Set.of_list (Cq.free q))
  in
  make ~levels
    ~free:(List.map (fun v -> (v, v)) (Cq.free q))
    ~marked (Cq.atoms q)

let vars q = dedup_terms (List.map snd q.free @ List.concat_map Atom.vars q.atoms)

let level_of q a =
  match level_index q.levels (Atom.rel a) with
  | Some i -> i
  | None -> invalid_arg "Marked_query.level_of: atom outside signature"

let atoms_at_level q i =
  List.filter (fun a -> level_of q a = i) q.atoms

let is_totally_marked q =
  List.for_all (fun v -> Term.Set.mem v q.marked) (vars q)

let is_trivial q = q.atoms = []

(* Variables lying on a directed cycle: SCCs of size >= 2 or self-loops
   (Tarjan). *)
let cycle_vars atoms =
  let succs = Hashtbl.create 16 in
  let verts = dedup_terms (List.concat_map Atom.vars atoms) in
  List.iter
    (fun a ->
      let s = Atom.arg a 0 and d = Atom.arg a 1 in
      let prev = Option.value ~default:[] (Hashtbl.find_opt succs (Term.hash s)) in
      Hashtbl.replace succs (Term.hash s) (d :: prev))
    atoms;
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref Term.Set.empty in
  let rec strongconnect v =
    Hashtbl.replace index (Term.hash v) !counter;
    Hashtbl.replace lowlink (Term.hash v) !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack (Term.hash v) true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index (Term.hash w)) then begin
          strongconnect w;
          Hashtbl.replace lowlink (Term.hash v)
            (min
               (Hashtbl.find lowlink (Term.hash v))
               (Hashtbl.find lowlink (Term.hash w)))
        end
        else if Option.value ~default:false (Hashtbl.find_opt on_stack (Term.hash w))
        then
          Hashtbl.replace lowlink (Term.hash v)
            (min
               (Hashtbl.find lowlink (Term.hash v))
               (Hashtbl.find index (Term.hash w))))
      (Option.value ~default:[] (Hashtbl.find_opt succs (Term.hash v)));
    if Hashtbl.find lowlink (Term.hash v) = Hashtbl.find index (Term.hash v)
    then begin
      (* Pop the SCC rooted at v. *)
      let scc = ref [] in
      let continue_ = ref true in
      while !continue_ do
        match !stack with
        | [] -> continue_ := false
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack (Term.hash w) false;
            scc := w :: !scc;
            if Term.equal w v then continue_ := false
      done;
      match !scc with
      | [ single ] ->
          (* Self-loop? *)
          if
            List.exists (Term.equal single)
              (Option.value ~default:[]
                 (Hashtbl.find_opt succs (Term.hash single)))
          then result := Term.Set.add single !result
      | multiple -> List.iter (fun w -> result := Term.Set.add w !result) multiple
    end
  in
  List.iter
    (fun v -> if not (Hashtbl.mem index (Term.hash v)) then strongconnect v)
    verts;
  !result

let is_properly_marked q =
  let marked v = Term.Set.mem v q.marked in
  let cond_i =
    List.for_all
      (fun a -> (not (marked (Atom.arg a 1))) || marked (Atom.arg a 0))
      q.atoms
  in
  let cond_ii = Term.Set.for_all marked (cycle_vars q.atoms) in
  let cond_iii =
    (* Group in-edges by (level, target): source markings must agree. *)
    let groups = Hashtbl.create 16 in
    List.iter
      (fun a ->
        let key = (level_of q a, Term.hash (Atom.arg a 1)) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (Atom.arg a 0 :: prev))
      q.atoms;
    Hashtbl.fold
      (fun _ sources ok ->
        ok
        &&
        match sources with
        | [] -> true
        | s :: rest -> List.for_all (fun s' -> marked s' = marked s) rest)
      groups true
  in
  let cond_iv =
    Array.length q.levels = 2
    ||
    (* In-levels of each unmarked variable: at most two, adjacent. *)
    let in_levels = Hashtbl.create 16 in
    List.iter
      (fun a ->
        let tgt = Atom.arg a 1 in
        if not (marked tgt) then begin
          let prev =
            Option.value ~default:[]
              (Hashtbl.find_opt in_levels (Term.hash tgt))
          in
          let l = level_of q a in
          if not (List.mem l prev) then
            Hashtbl.replace in_levels (Term.hash tgt) (l :: prev)
        end)
      q.atoms;
    Hashtbl.fold
      (fun _ ls ok ->
        ok
        &&
        match List.sort Int.compare ls with
        | [] | [ _ ] -> true
        | [ a; b ] -> b = a + 1
        | _ -> false)
      in_levels true
  in
  cond_i && cond_ii && cond_iii && cond_iv

let is_live q =
  is_properly_marked q && (not (is_totally_marked q)) && not (is_trivial q)

let all_markings ~levels q =
  let free = List.map (fun v -> (v, v)) (Cq.free q) in
  let base_marked = Term.Set.of_list (Cq.free q) in
  let optional = Cq.exist_vars q in
  let rec subsets = function
    | [] -> [ Term.Set.empty ]
    | v :: rest ->
        let smaller = subsets rest in
        smaller @ List.map (Term.Set.add v) smaller
  in
  List.filter_map
    (fun extra ->
      let m = make ~levels ~free ~marked:(Term.Set.union base_marked extra) (Cq.atoms q) in
      if is_properly_marked m then Some m else None)
    (subsets optional)

let to_cq q =
  if q.atoms = [] then None
  else Some (Cq.make ~free:(dedup_terms (List.map snd q.free)) q.atoms)

let tagged_cq q =
  (* Cached: the rewriting process probes its seen-store with the tagged
     encoding on every generated query, and the encoding in turn carries
     the CQ-level caches (iso keys, canonical ids, fingerprints). *)
  match q.tagged with
  | Some t -> t
  | None ->
      let t =
        if q.atoms = [] then None
        else
          let tags =
            List.map
              (fun v -> Atom.make marked_tag [ v ])
              (Term.Set.elements q.marked)
          in
          Some
            (Cq.make ~free:(dedup_terms (List.map snd q.free)) (q.atoms @ tags))
      in
      q.tagged <- Some t;
      t

let alias_pattern q =
  (* For each answer position, the first position sharing its rep. *)
  List.mapi
    (fun i (_, rep) ->
      let rec first j = function
        | [] -> i
        | (_, rep') :: _ when Term.equal rep rep' -> j
        | _ :: rest -> first (j + 1) rest
      in
      first 0 q.free)
    q.free

let aliased q = List.exists2 (fun i j -> i <> j) (alias_pattern q) (List.mapi (fun i _ -> i) q.free)

let equal_upto_iso q1 q2 =
  Array.length q1.levels = Array.length q2.levels
  && Array.for_all2 Symbol.equal q1.levels q2.levels
  && alias_pattern q1 = alias_pattern q2
  &&
  match (tagged_cq q1, tagged_cq q2) with
  | None, None -> true
  | Some c1, Some c2 ->
      (* Equal canonical ids certify isomorphism without a search (the
         common rediscovery case); distinct ids decide nothing — the
         canonical code is sound but not complete — so fall back to the
         full injective-homomorphism test. *)
      Cq.canon_id c1 = Cq.canon_id c2 || Containment.isomorphic c1 c2
  | None, Some _ | Some _, None -> false

let tuple_admissible q tuple =
  if List.length tuple <> List.length q.free then None
  else
    let bindings = ref Term.Map.empty in
    let ok = ref true in
    List.iter2
      (fun (_, rep) value ->
        match Term.Map.find_opt rep !bindings with
        | Some v when not (Term.equal v value) -> ok := false
        | Some _ -> ()
        | None -> bindings := Term.Map.add rep value !bindings)
      q.free tuple;
    if !ok then Some (Term.Map.bindings !bindings) else None

let holds run q tuple =
  match tuple_admissible q tuple with
  | None -> false
  | Some bindings -> (
      let d_dom = Fact_set.domain (Chase.Engine.initial run) in
      let in_d u = Term.Set.mem u d_dom in
      if List.exists (fun (_, value) -> not (in_d value)) bindings then false
      else if q.atoms = [] then true
      else
        let init =
          List.fold_left
            (fun m (rep, value) -> Term.Map.add rep value m)
            Term.Map.empty bindings
        in
        let image_ok v u =
          if Term.Set.mem v q.marked then in_d u else not (in_d u)
        in
        match
          Homomorphism.find
            (Homomorphism.make ~init ~image_ok
               ~flexible:(Term.Set.of_list (vars q))
               ~pattern:q.atoms
               ~target:(Chase.Engine.result run)
               ())
        with
        | Some _ -> true
        | None -> false)

let pp ppf q =
  let pp_var ppf v =
    if Term.Set.mem v q.marked then Fmt.pf ppf "%a!" Term.pp v
    else Term.pp ppf v
  in
  let pp_atom ppf a =
    Fmt.pf ppf "%a(%a,%a)" Symbol.pp (Atom.rel a) pp_var (Atom.arg a 0) pp_var
      (Atom.arg a 1)
  in
  Fmt.pf ppf "<(%a). %a>"
    (Fmt.list ~sep:(Fmt.any ",") (fun ppf (_, rep) -> Term.pp ppf rep))
    q.free
    (Fmt.list ~sep:(Fmt.any ", ") pp_atom)
    q.atoms

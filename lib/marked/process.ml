open Logic

type stats = {
  steps : int;
  cut_steps : int;
  fuse_steps : int;
  reduce_steps : int;
  dropped_improper : int;
  dropped_unsat : int;
}

type result = {
  rewriting : Ucq.t;
  aliased : Marked_query.t list;
  trivial : Marked_query.t list;
  complete : bool;
  interrupted : Guard.cause option;
  stats : stats;
  kernel_stats : Saturation.Stats.t;
  rank_trace : Rank.srk list option;
}

let dedup_terms l =
  let _, rev =
    List.fold_left
      (fun (seen, acc) x ->
        if Term.Set.mem x seen then (seen, acc)
        else (Term.Set.add x seen, x :: acc))
      (Term.Set.empty, []) l
  in
  List.rev rev

(* Iso-aware membership in a bucketed store of marked queries. The
   fingerprint key is complete for isomorphism (isomorphic queries share
   it), so only the bucket needs the expensive pairwise test — and that
   test short-circuits on equal canonical ids inside
   [Marked_query.equal_upto_iso]. The key is the 1-WL hash mixed with
   the atom count: the WL colors separate same-shape queries whose
   marks sit on different symmetric branches — the dominant population
   at depth — keeping buckets near-singleton, and unlike the string
   [Cq.iso_key] render the hash is one int per classified query (the
   render was the single largest cost of the E2/E3 process runs). A
   hash collision between non-isomorphic queries only costs the bucket
   probe an extra refuting isomorphism test, never a wrong answer. *)
module Store = struct
  type t = (int, Marked_query.t list) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let key q =
    match Marked_query.tagged_cq q with
    | Some cq -> (Cq.wl_hash cq * 131) lxor Cq.size cq
    | None -> min_int

  (* Membership test and insertion in one probe: the key computation
     and the bucket lookup are paid once per classified query. [?key]
     lets a parallel pre-pass hand in the key it already computed. *)
  let add_if_absent ?key:key_opt (store : t) q =
    let k = match key_opt with Some k -> k | None -> key q in
    let bucket = Option.value ~default:[] (Hashtbl.find_opt store k) in
    if List.exists (Marked_query.equal_upto_iso q) bucket then false
    else begin
      Hashtbl.replace store k (q :: bucket);
      true
    end

  (* The per-query work a pool worker can do ahead of the coordinator's
     sequential store pass: the fingerprint key (an uncached string
     render) plus the canonical id the bucket's iso probes start from.
     Pure apart from per-query caches — distinct queries share no
     mutable state, so workers never race. *)
  let warm q =
    let k = key q in
    (match Marked_query.tagged_cq q with
    | Some cq -> ignore (Cq.canon_id cq)
    | None -> ());
    k
end

let checkpoint_kind = "marked"

(* One marked query per snapshot line: the free (original, representative)
   pairs, the marked set, and the atoms — [Marked_query.make] revalidates
   on decode. Canonical ids and WL fingerprints are process-local caches
   and are never serialized; the store is re-warmed by re-insertion. *)
let mq_to_string mq =
  let module Codec = Checkpoint.Codec in
  Codec.concat
    [
      Codec.list_to_string
        (fun (o, r) ->
          Codec.concat [ Codec.term_to_string o; Codec.term_to_string r ])
        mq.Marked_query.free;
      Codec.list_to_string Codec.term_to_string
        (Term.Set.elements mq.Marked_query.marked);
      Codec.list_to_string Codec.atom_to_string mq.Marked_query.atoms;
    ]

let mq_of_string ~levels s =
  let module Codec = Checkpoint.Codec in
  match Codec.fields s with
  | [ free; marked; atoms ] -> (
      let pair p =
        match Codec.fields p with
        | [ o; r ] -> (Codec.term_of_string o, Codec.term_of_string r)
        | _ -> raise (Codec.Error "marked query: bad free pair")
      in
      try
        Marked_query.make ~levels
          ~free:(Codec.list_of_string pair free)
          ~marked:
            (Term.Set.of_list
               (Codec.list_of_string Codec.term_of_string marked))
          (Codec.list_of_string Codec.atom_of_string atoms)
      with Invalid_argument m -> raise (Codec.Error m))
  | _ -> raise (Codec.Error "marked query: expected three fields")

(* The snapshot carries the complete classification state: the live
   worklist, the collected totally-marked and trivial queries, and the
   {e full} seen-store contents. Serializing the store is what keeps a
   resumed run from re-admitting (and re-expanding) a query the
   interrupted run had already processed — unlike generic rewriting,
   store membership here is the only dedup, so dropping it would change
   the result, not just the step count. *)
let encode_state ~round ~levels ~q ~max_steps ~stats ~seen ~finished ~trivial
    ~frontier =
  let module Codec = Checkpoint.Codec in
  let seen_lines =
    Hashtbl.fold (fun _ bucket acc -> List.rev_append bucket acc) seen []
  in
  {
    Checkpoint.Snapshot.kind = checkpoint_kind;
    round;
    meta =
      [
        ("steps", string_of_int stats.steps);
        ("cut_steps", string_of_int stats.cut_steps);
        ("fuse_steps", string_of_int stats.fuse_steps);
        ("reduce_steps", string_of_int stats.reduce_steps);
        ("dropped_improper", string_of_int stats.dropped_improper);
        ("dropped_unsat", string_of_int stats.dropped_unsat);
        ("max_steps", string_of_int max_steps);
      ];
    sections =
      [
        ( "levels",
          Array.to_list
            (Array.map (fun l -> Codec.concat [ Symbol.name l ]) levels) );
        ("query", [ Codec.cq_to_string q ]);
        ("frontier", List.map mq_to_string (Array.to_list frontier));
        ("finished", List.map mq_to_string finished);
        ("trivial", List.map mq_to_string trivial);
        ("seen", List.map mq_to_string seen_lines);
      ];
  }

type restart = {
  frontier0 : Marked_query.t list;  (* queue order *)
  finished0 : Marked_query.t list;  (* newest-first, as the run keeps them *)
  trivial0 : Marked_query.t list;
  seen0 : Marked_query.t list;
  stats0 : stats;
  round0 : int;
}

let run_from ?pool ?guard ?(max_steps = 200_000) ?(record_ranks = false)
    ?on_step ?checkpoint:checkpoint_sink ~restart ~levels q =
  let pool =
    match pool with Some p -> p | None -> Parallel.Pool.create 1
  in
  let guard = match guard with Some g -> g | None -> Guard.unlimited () in
  if Cq.free q = [] then
    invalid_arg
      "Process.run: boolean queries need no rewriting under (loop); \
       the process expects at least one answer variable";
  if not (Cq.is_connected q) then
    invalid_arg "Process.run: the query must be connected";
  let seen = Store.create () in
  let finished = ref [] in
  let trivial = ref [] in
  let stats =
    ref
      {
        steps = 0;
        cut_steps = 0;
        fuse_steps = 0;
        reduce_steps = 0;
        dropped_improper = 0;
        dropped_unsat = 0;
      }
  in
  (* The kernel owns the FIFO worklist of live queries; [classify_new]
     returns the items to enqueue. When rank traces are requested, a
     mirror queue shadows the kernel's worklist (same pops, same pushes)
     so each snapshot can enumerate the currently-live queries. *)
  let mirror = Queue.create () in
  let classify_new ?key mq =
    if not (Marked_query.is_properly_marked mq) then begin
      stats := { !stats with dropped_improper = !stats.dropped_improper + 1 };
      None
    end
    else if Store.add_if_absent ?key seen mq then begin
      if Marked_query.is_trivial mq then begin
        trivial := mq :: !trivial;
        None
      end
      else if Marked_query.is_totally_marked mq then begin
        finished := mq :: !finished;
        None
      end
      else begin
        if record_ranks then Queue.add mq mirror;
        Some mq
      end
    end
    else None
  in
  (* Batch classification: at pool size 1 this is exactly the
     sequential [filter_map classify_new]; with workers, the uncached
     fingerprint keys and canonical ids (the dominant per-result cost)
     are computed in parallel first and the store pass consumes them in
     the original order — same store contents, same enqueue order, so
     the rewriting is bit-identical at any [-j]. *)
  let classify_many mqs =
    let plural = match mqs with _ :: _ :: _ -> true | _ -> false in
    if Parallel.Pool.effective_size pool <= 1 || not plural then
      List.filter_map classify_new mqs
    else
      let keys = Parallel.Pool.map_list pool Store.warm mqs in
      List.filter_map Fun.id
        (List.map2 (fun mq k -> classify_new ~key:k mq) mqs keys)
  in
  let initial_live, base_round =
    match restart with
    | None -> (classify_many (Marked_query.all_markings ~levels q), 0)
    | Some r ->
        (* Rebuild the dedup store from the snapshot's full contents,
           then restore the collected results and counters verbatim; the
           live worklist resumes exactly where the snapshot left it. *)
        List.iter (fun mq -> ignore (Store.add_if_absent seen mq)) r.seen0;
        finished := r.finished0;
        trivial := r.trivial0;
        stats := r.stats0;
        if record_ranks then List.iter (fun mq -> Queue.add mq mirror) r.frontier0;
        (r.frontier0, r.round0)
  in
  let rank_trace = ref [] in
  let snapshot () =
    if record_ranks then begin
      let all =
        List.of_seq (Queue.to_seq mirror) @ !finished @ !trivial
      in
      rank_trace := Rank.srk all :: !rank_trace
    end
  in
  snapshot ();
  let pre_tripped = Guard.status guard in
  (* One kernel round per process step: drain one marked query, apply the
     operation its maximal variable selects, classify the results. The
     live worklist is simply abandoned on a trip: the totally-marked
     queries collected so far form a sound partial rewriting (each came
     from finitely many rank-descending operations on a proper marking). *)
  let step (_ : Saturation.ctx) batch =
    let current = match batch with [| mq |] -> mq | _ -> assert false in
    (* One checkpoint and one fuel unit per process step. *)
    match Guard.spend guard 1 with
    | Some _ ->
        {
          Saturation.next = [];
          tally = Saturation.Stats.zero;
          stop = true;
          commit = false;
        }
    | None -> (
        if record_ranks then ignore (Queue.pop mirror);
        match Operations.maximal_var current with
        | None ->
            (* Lemma 55 guarantees a maximal variable for live queries. *)
            invalid_arg "Process.run: live query without maximal variable"
        | Some (x, classification) ->
            stats :=
              (let s = !stats in
               match classification with
               | Operations.Cut _ ->
                   { s with steps = s.steps + 1; cut_steps = s.cut_steps + 1 }
               | Operations.Fuse _ ->
                   {
                     s with
                     steps = s.steps + 1;
                     fuse_steps = s.fuse_steps + 1;
                   }
               | Operations.Reduce _ ->
                   {
                     s with
                     steps = s.steps + 1;
                     reduce_steps = s.reduce_steps + 1;
                   }
               | Operations.Unsatisfiable ->
                   {
                     s with
                     steps = s.steps + 1;
                     dropped_unsat = s.dropped_unsat + 1;
                   });
            let results = Operations.apply current x classification in
            (match on_step with
            | Some f -> f ~before:current ~classification ~results
            | None -> ());
            let new_live = classify_many results in
            snapshot ();
            {
              Saturation.next = new_live;
              tally =
                Saturation.Stats.tally ~expanded:1
                  ~generated:(List.length results)
                  ~admitted:(List.length new_live)
                  ~deduped:
                    (List.length results - List.length new_live)
                  ();
              stop = false;
              commit = true;
            })
  in
  let checkpoint =
    Option.map
      (fun sink ->
        {
          Saturation.every = sink.Checkpoint.every;
          min_interval_s = sink.Checkpoint.min_interval_s;
          save =
            (fun ~round ~final:_ frontier ->
              Checkpoint.save_to sink
                (encode_state ~round ~levels ~q ~max_steps ~stats:!stats
                   ~seen ~finished:!finished ~trivial:!trivial ~frontier));
        })
      checkpoint_sink
  in
  let verdict, kernel_stats =
    Saturation.run ~guard
      ~drain:
        (Saturation.At_most
           (fun () -> if !stats.steps >= max_steps then 0 else 1))
      ~record_rounds:false ~base_round ?checkpoint ~init:initial_live ~step
      ()
  in
  let complete, interrupted =
    match verdict with
    | Saturation.Saturated -> (pre_tripped = None, pre_tripped)
    | Saturation.Stopped -> (false, pre_tripped)
    | Saturation.Tripped cause -> (false, Some cause)
  in
  let aliased, plain =
    List.partition Marked_query.aliased !finished
  in
  let rewriting =
    Ucq.of_list (List.filter_map Marked_query.to_cq plain)
  in
  {
    rewriting;
    aliased;
    trivial = !trivial;
    complete;
    interrupted;
    stats = !stats;
    kernel_stats;
    rank_trace = (if record_ranks then Some (List.rev !rank_trace) else None);
  }

let run ?pool ?guard ?max_steps ?record_ranks ?on_step ?checkpoint ~levels q
    =
  run_from ?pool ?guard ?max_steps ?record_ranks ?on_step ?checkpoint
    ~restart:None ~levels q

let decode_snapshot snap =
  let module S = Checkpoint.Snapshot in
  let module Codec = Checkpoint.Codec in
  if snap.S.kind <> checkpoint_kind then
    invalid_arg
      (Printf.sprintf "Process.resume: %S snapshot, expected %S" snap.S.kind
         checkpoint_kind);
  let levels =
    S.section snap "levels"
    |> List.map (fun line ->
           match Codec.fields line with
           | [ name ] -> Symbol.make name ~arity:2
           | _ -> raise (Codec.Error "levels: expected one field per line"))
    |> Array.of_list
  in
  if Array.length levels < 2 then
    raise (Codec.Error "levels: need at least two level relations");
  let q =
    match S.section snap "query" with
    | [ line ] -> Codec.cq_of_string line
    | _ -> raise (Codec.Error "expected a one-line query section")
  in
  let dec = mq_of_string ~levels in
  let stat name = Option.value ~default:0 (S.meta_int snap name) in
  let restart =
    {
      frontier0 = List.map dec (S.section snap "frontier");
      finished0 = List.map dec (S.section snap "finished");
      trivial0 = List.map dec (S.section snap "trivial");
      seen0 = List.map dec (S.section snap "seen");
      stats0 =
        {
          steps = stat "steps";
          cut_steps = stat "cut_steps";
          fuse_steps = stat "fuse_steps";
          reduce_steps = stat "reduce_steps";
          dropped_improper = stat "dropped_improper";
          dropped_unsat = stat "dropped_unsat";
        };
      round0 = snap.S.round;
    }
  in
  (levels, q, restart, S.meta_int snap "max_steps")

let resume ?pool ?guard ?max_steps ?checkpoint snap =
  let levels, q, restart, snap_max = decode_snapshot snap in
  let max_steps =
    match max_steps with Some _ as m -> m | None -> snap_max
  in
  run_from ?pool ?guard ?max_steps ?checkpoint ~restart:(Some restart)
    ~levels q

let td_levels = [| Symbol.make "G" ~arity:2; Symbol.make "R" ~arity:2 |]

let rewrite_td ?pool ?guard ?max_steps ?on_step ?checkpoint q =
  run ?pool ?guard ?max_steps ?on_step ?checkpoint ~levels:td_levels q

let rewrite_tdk ?pool ?guard ?max_steps ?on_step ?checkpoint kk q =
  if kk < 2 then invalid_arg "Process.rewrite_tdk: K must be at least 2";
  let levels =
    Array.init kk (fun i -> Symbol.make (Printf.sprintf "I%d" (i + 1)) ~arity:2)
  in
  run ?pool ?guard ?max_steps ?on_step ?checkpoint ~levels q

let boolean_always_true () = ()

let holds_via_rewriting result d tuple =
  let dom = Fact_set.domain d in
  let in_dom t = Term.Set.mem t dom in
  Ucq.holds result.rewriting d tuple
  || List.exists
       (fun mq ->
         match Marked_query.tuple_admissible mq tuple with
         | None -> false
         | Some bindings -> (
             if List.exists (fun (_, v) -> not (in_dom v)) bindings then false
             else
               match Marked_query.to_cq mq with
               | None -> true
               | Some cq ->
                   let reps = dedup_terms (List.map snd mq.Marked_query.free) in
                   let tuple' =
                     List.map
                       (fun rep ->
                         snd
                           (List.find
                              (fun (r, _) -> Term.equal r rep)
                              bindings))
                       reps
                   in
                   Cq.holds cq d tuple'))
       (result.aliased @ result.trivial)

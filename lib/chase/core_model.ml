open Logic

let endomorphism_avoiding f ~keep ~avoid =
  let dom = Fact_set.domain f in
  let flexible = Term.Set.diff dom keep in
  if not (Term.Set.mem avoid flexible) then None
  else
    Homomorphism.find
      (Homomorphism.make
         ~image_ok:(fun _ u -> not (Term.equal u avoid))
         ~flexible ~pattern:(Fact_set.atoms f) ~target:f ())

let image_of f mapping ~flexible =
  (* A shrinking endomorphism typically moves a small fraction of the
     atoms (the ones touching the avoided term), so update [f] by the
     moved atoms instead of rebuilding: the fact-set index is then
     maintained incrementally across the [core_of] shrink iterations.
     When [f] is indexed, the join index enumerates exactly the atoms
     touching a moved term; the untouched atoms — the vast majority of
     a large model — are never visited at all. *)
  let moved =
    Term.Map.fold
      (fun v u acc -> if Term.equal v u then acc else Term.Set.add v acc)
      mapping Term.Set.empty
  in
  let touching =
    if Fact_set.is_indexed f then
      Atom.Set.elements
        (Term.Set.fold
           (fun v acc ->
             List.fold_left
               (fun acc a -> Atom.Set.add a acc)
               acc
               (Fact_set.atoms_with_term f v))
           moved Atom.Set.empty)
    else
      List.filter
        (fun a ->
          List.exists (fun t -> Term.Set.mem t moved) (Atom.args a))
        (Fact_set.atoms f)
  in
  let removed = ref [] and added = ref [] in
  List.iter
    (fun a ->
      let a' = Homomorphism.apply mapping ~flexible a in
      if not (Atom.equal a a') then begin
        removed := a :: !removed;
        added := a' :: !added
      end)
    touching;
  let shrunk = Fact_set.diff f (Fact_set.of_list !removed) in
  List.fold_left (fun fs a -> Fact_set.add a fs) shrunk !added

let core_of ?guard ?(keep = Term.Set.empty) f =
  let guard = match guard with Some g -> g | None -> Guard.unlimited () in
  (* One kernel round per successful shrink: the round searches for an
     endomorphism avoiding some non-kept element and applies it; a round
     finding none (or observing a trip mid-search) ends the saturation —
     the current structure is the core (or, after a trip, a sound,
     possibly non-minimal retract). *)
  let state = ref f in
  let step (_ : Saturation.ctx) _batch =
    let f = !state in
    let dom = Fact_set.domain f in
    let candidates = Term.Set.elements (Term.Set.diff dom keep) in
    let rec try_avoid = function
      | [] -> None
      | a :: rest -> (
          (* One checkpoint per avoided-element probe. *)
          if Guard.check guard <> None then None
          else
            match endomorphism_avoiding f ~keep ~avoid:a with
            | Some h -> Some h
            | None -> try_avoid rest)
    in
    match try_avoid candidates with
    | Some h ->
        state := image_of f h ~flexible:(Term.Set.diff dom keep);
        {
          Saturation.next = [ () ];
          tally = Saturation.Stats.tally ~expanded:1 ();
          stop = false;
          commit = true;
        }
    | None ->
        {
          Saturation.next = [];
          tally = Saturation.Stats.zero;
          stop = false;
          commit = true;
        }
  in
  ignore
    (Saturation.run ~guard ~record_rounds:false ~init:[ () ] ~step ());
  !state

let retract_onto f ~into ~keep =
  let flexible = Term.Set.diff (Fact_set.domain f) keep in
  Homomorphism.find
    (Homomorphism.make ~flexible ~pattern:(Fact_set.atoms f) ~target:into ())

type core_result = { c : int; model : Fact_set.t; core : Fact_set.t }

exception Found_model of Fact_set.t

let core_of_chase ?pool ?guard ?(max_c = 20) ?(lookahead = 6)
    ?(max_atoms = 100_000) ?(max_homs = 5_000) theory d =
  let guard' = match guard with Some g -> g | None -> Guard.unlimited () in
  let run =
    Engine.run ?pool ?guard ~max_depth:(max_c + lookahead) ~max_atoms theory d
  in
  let keep = Fact_set.domain d in
  let deepest = Engine.result run in
  let deepest_is_everything = Engine.saturated run in
  let flexible = Term.Set.diff (Fact_set.domain deepest) keep in
  let model_inside n =
    let stage_n = Engine.stage run (min n (Engine.depth run)) in
    (* The image of a model is a model (Observation 2), so when the run
       saturated any fold of it into stage [n] works.  Otherwise [deepest]
       is only a prefix and a fold image need not be a model: enumerate
       folds (capped) and model-check each image. *)
    let tried = ref 0 in
    (* Prefer folding onto original constants: candidate facts whose
       arguments are instance constants come first, so the first
       homomorphisms enumerated are the natural "collapse everything onto
       D" folds whose images tend to be models. *)
    let prefer atom =
      List.length
        (List.filter
           (fun t -> not (Term.Set.mem t keep))
           (Atom.args atom))
    in
    try
      Homomorphism.iter
        (Homomorphism.make ~prefer ~flexible
           ~pattern:(Fact_set.atoms deepest) ~target:stage_n ())
        (fun h ->
          incr tried;
          if !tried > max_homs then raise Not_found;
          if
            !tried land Guard.poll_mask = 0
            && Guard.check guard' <> None
          then raise Not_found;
          let m = image_of deepest h ~flexible in
          if deepest_is_everything || Theory.satisfied_in theory m then
            raise (Found_model m));
      None
    with
    | Found_model m -> Some m
    | Not_found -> None
  in
  let rec search n =
    if n > max_c || n > Engine.depth run || Guard.status guard' <> None then
      None
    else
      match model_inside n with
      | Some m ->
          Some { c = n; model = m; core = core_of ?guard ~keep m }
      | None -> search (n + 1)
  in
  search 0

(** The semi-oblivious Skolem chase (Definitions 5-6).

    [run] computes the stages [Ch_0(T,D) .. Ch_k(T,D)] bottom-up with
    semi-naive evaluation, stopping at saturation (then [Ch_k = Ch(T,D)]),
    at [max_depth], or at [max_atoms]. Thanks to the Skolem naming
    convention the stages are honest *sets*: re-running from any
    intermediate stage produces literally the same atoms (Observation 8).

    Every derived atom records all rule applications [(rho, sigma)] that
    created it — the raw material for birth atoms (Observation 10) and the
    parent/ancestor functions of Appendix A. *)

open Logic

type run

val run :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_depth:int -> ?max_atoms:int ->
  ?checkpoint:Checkpoint.sink ->
  Theory.t -> Fact_set.t -> run
(** Defaults: [max_depth = 50], [max_atoms = 200_000], [pool] sequential,
    [guard] unlimited, no [checkpoint].

    With a pool of [N > 1] domains, each stage's semi-naive trigger
    enumeration is partitioned by (rule x delta-seed position) across the
    domains and the per-task results are merged at the stage barrier in
    task order — the exact production order of the sequential engine — so
    stages, saturation and budget flags, and recorded provenance are
    identical whatever [N] is.

    The guard is checkpointed at every stage boundary and every
    {!Guard.poll_mask}+1 trigger enumerations inside each parallel task,
    and the stage's fresh atoms are drawn from its fuel account. On a
    trip, a partially enumerated sweep is discarded wholesale, so the
    recorded stages are always exactly [Ch_0 .. Ch_i] — a sound prefix
    of the fault-free chase ({!interrupted} reports the cause;
    [max_depth]/[max_atoms] remain as thin compatibility shims over the
    same mechanism).

    With [checkpoint], the run emits a crash-safe snapshot of the chase
    state (theory, stage deltas, creating-application provenance) into
    the sink's directory at the sink's round cadence, plus a final one
    at any non-saturated finish — see {!resume}. *)

val checkpoint_kind : string
(** The [Checkpoint.Snapshot.kind] tag chase snapshots carry: ["chase"]. *)

val resume :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_depth:int -> ?max_atoms:int ->
  ?checkpoint:Checkpoint.sink ->
  Checkpoint.Snapshot.t -> run
(** Continue a chase from a (validated) snapshot. Stage numbering, the
    [max_depth] cutoff, and the checkpoint cadence continue in absolute
    rounds; [max_depth]/[max_atoms] default to the values recorded in
    the snapshot. Because decoding re-interns every term and [Tgd.make]
    rebuilds Skolem patterns from head isomorphism types (Definition 4,
    Observation 8), the resumed stages are {e bit-identical} to an
    uninterrupted run's: [stage], [result], [saturated],
    [stage_of_atom], [atom_frontier] and [birth_atom] all agree. Two
    caveats: {!kernel_stats} covers only the resumed segment, and
    {!derivations} lists only the creating application for pre-snapshot
    atoms (rediscovery derivations are not serialized).

    Raises [Invalid_argument] on a snapshot of a different kind and
    [Checkpoint.Codec.Error] on undecodable content. *)

val kernel_stats : run -> Saturation.Stats.t
(** The saturation kernel's per-round counters for the run: one round per
    executed sweep ([expanded] = trigger homomorphisms enumerated,
    [generated] = atom productions with rediscoveries, [admitted] = the
    stage's fresh atoms). *)

val stage_stats : run -> Saturation.Stats.round array
(** [kernel_stats r].per_round: one entry per executed sweep, in stage
    order. When the run saturated, the final entry is the
    fixpoint-confirming sweep (which derived nothing), so the array has
    [depth r + 1] entries; otherwise [depth r]. *)

val theory : run -> Theory.t
val initial : run -> Fact_set.t

val depth : run -> int
(** Index of the last computed stage. *)

val saturated : run -> bool
(** True iff the last stage is a fixpoint, i.e. equals [Ch(T, D)]. *)

val interrupted : run -> Guard.cause option
(** Why the run stopped early, if a guard (or the [max_atoms] compat
    budget, reported as {!Guard.Fuel}) tripped; [None] when the run
    saturated or only exhausted [max_depth]. *)

val guard : run -> Guard.t
(** The guard the run drew on (an unlimited one when none was given). *)

val outcome : run -> (run, run) Guard.outcome
(** The unified verdict: [Complete] iff the run saturated, otherwise
    [Exhausted] with the trip cause ({!Guard.Fuel} for the depth/atom
    compat budgets) and the guard's progress counters. The partial run
    is a sound prefix: every recorded stage [i] is exactly [Ch_i]. *)

val hit_atom_budget : run -> bool
(** Deprecated: a derived view of {!outcome} — equivalent to
    [interrupted run = Some Guard.Fuel]. Use {!outcome} in new code. *)

val stage : run -> int -> Fact_set.t
(** [stage r i] is [Ch_i(T,D)]. For [i > depth r]: the last stage when
    saturated (the chase stabilized), otherwise [Invalid_argument]. *)

val result : run -> Fact_set.t
(** The deepest computed stage. *)

val new_at_stage : run -> int -> Atom.t list
(** Atoms first appearing in stage [i]. *)

val stage_of_atom : run -> Atom.t -> int option
(** First stage containing the atom; [None] for atoms outside the run. *)

val derivations : run -> Atom.t -> (Tgd.t * Homomorphism.mapping) list
(** All recorded rule applications creating the atom (empty for initial
    facts). *)

val atom_frontier : run -> Atom.t -> Term.Set.t option
(** [fr(alpha)] — the images of the creating rule's frontier variables;
    well-defined across derivations by Observation 9. [None] for initial
    facts. *)

val birth_atom : run -> Term.t -> Atom.t option
(** Observation 10: the unique atom in which a chase-invented term occurs
    outside the frontier. [None] for initial-domain terms. *)

val invented_terms : run -> Term.Set.t
(** [dom(Ch) \ dom(D)] restricted to the computed prefix. *)

val rule_counts : run -> (string * int) list
(** Number of atoms whose creating application used each rule (by rule
    name), sorted descending — a cheap profile of which rules drive the
    chase. *)

(** The semi-oblivious Skolem chase (Definitions 5-6).

    [run] computes the stages [Ch_0(T,D) .. Ch_k(T,D)] bottom-up with
    semi-naive evaluation, stopping at saturation (then [Ch_k = Ch(T,D)]),
    at [max_depth], or at [max_atoms]. Thanks to the Skolem naming
    convention the stages are honest *sets*: re-running from any
    intermediate stage produces literally the same atoms (Observation 8).

    Every derived atom records all rule applications [(rho, sigma)] that
    created it — the raw material for birth atoms (Observation 10) and the
    parent/ancestor functions of Appendix A. *)

open Logic

type run

type stage_stats = {
  triggers : int;  (** trigger homomorphisms enumerated during the sweep *)
  produced : int;  (** atom productions, rediscoveries included *)
  fresh_atoms : int;  (** genuinely new atoms (the stage's delta) *)
  wall_s : float;  (** wall-clock seconds for the sweep + merge *)
  domain_busy_s : float array;
      (** per-domain busy seconds inside the sweep (index 0 = caller) *)
  index_delta_atoms : int;
      (** atoms incrementally appended to fact-set indexes during the
          sweep (process-wide [Fact_set] counter delta; index extensions
          are lazy, so a stage's delta may be observed by the following
          sweep, which forces it) *)
  index_rebuild_atoms : int;
      (** atoms indexed by from-scratch builds or layer merges during the
          sweep — with incremental maintenance on this stays proportional
          to the deltas instead of re-counting the whole set per stage *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?max_depth:int -> ?max_atoms:int -> Theory.t -> Fact_set.t -> run
(** Defaults: [max_depth = 50], [max_atoms = 200_000], [pool] sequential.

    With a pool of [N > 1] domains, each stage's semi-naive trigger
    enumeration is partitioned by (rule x delta-seed position) across the
    domains and the per-task results are merged at the stage barrier in
    task order — the exact production order of the sequential engine — so
    stages, saturation and budget flags, and recorded provenance are
    identical whatever [N] is. *)

val stage_stats : run -> stage_stats array
(** One entry per executed sweep, in stage order. When the run saturated,
    the final entry is the fixpoint-confirming sweep (which derived
    nothing), so the array has [depth r + 1] entries; otherwise [depth r]. *)

val theory : run -> Theory.t
val initial : run -> Fact_set.t

val depth : run -> int
(** Index of the last computed stage. *)

val saturated : run -> bool
(** True iff the last stage is a fixpoint, i.e. equals [Ch(T, D)]. *)

val hit_atom_budget : run -> bool

val stage : run -> int -> Fact_set.t
(** [stage r i] is [Ch_i(T,D)]. For [i > depth r]: the last stage when
    saturated (the chase stabilized), otherwise [Invalid_argument]. *)

val result : run -> Fact_set.t
(** The deepest computed stage. *)

val new_at_stage : run -> int -> Atom.t list
(** Atoms first appearing in stage [i]. *)

val stage_of_atom : run -> Atom.t -> int option
(** First stage containing the atom; [None] for atoms outside the run. *)

val derivations : run -> Atom.t -> (Tgd.t * Homomorphism.mapping) list
(** All recorded rule applications creating the atom (empty for initial
    facts). *)

val atom_frontier : run -> Atom.t -> Term.Set.t option
(** [fr(alpha)] — the images of the creating rule's frontier variables;
    well-defined across derivations by Observation 9. [None] for initial
    facts. *)

val birth_atom : run -> Term.t -> Atom.t option
(** Observation 10: the unique atom in which a chase-invented term occurs
    outside the frontier. [None] for initial-domain terms. *)

val invented_terms : run -> Term.Set.t
(** [dom(Ch) \ dom(D)] restricted to the computed prefix. *)

val rule_counts : run -> (string * int) list
(** Number of atoms whose creating application used each rule (by rule
    name), sorted descending — a cheap profile of which rules drive the
    chase. *)

type verdict = Holds of int | Fails | Budget_exhausted

let core_terminates_on ?pool ?guard ?max_c ?lookahead ?max_atoms theory d =
  match
    Core_model.core_of_chase ?pool ?guard ?max_c ?lookahead ?max_atoms theory d
  with
  | Some { Core_model.c; _ } -> Holds c
  | None -> Budget_exhausted

let all_instances_terminates_on ?pool ?guard ?max_depth ?max_atoms theory d =
  let run = Engine.run ?pool ?guard ?max_depth ?max_atoms theory d in
  if Engine.saturated run then Holds (Engine.depth run) else Budget_exhausted

let uniform_bound_on ?pool ?guard ?max_c ?lookahead ?max_atoms theory instances
    =
  let tripped () =
    match guard with None -> false | Some g -> Guard.status g <> None
  in
  let per_instance =
    List.filter_map
      (fun d ->
        if tripped () then None
        else
          match
            core_terminates_on ?pool ?guard ?max_c ?lookahead ?max_atoms
              theory d
          with
          | Holds c -> Some (d, c)
          | Fails | Budget_exhausted -> None)
      instances
  in
  let all_ok = List.length per_instance = List.length instances in
  let bound =
    if all_ok && per_instance <> [] then
      Some (List.fold_left (fun acc (_, c) -> max acc c) 0 per_instance)
    else None
  in
  (bound, per_instance)

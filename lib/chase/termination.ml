type verdict = Holds of int | Fails | Budget_exhausted

let core_terminates_on ?pool ?guard ?max_c ?lookahead ?max_atoms theory d =
  match
    Core_model.core_of_chase ?pool ?guard ?max_c ?lookahead ?max_atoms theory d
  with
  | Some { Core_model.c; _ } -> Holds c
  | None -> Budget_exhausted

let all_instances_terminates_on ?pool ?guard ?max_depth ?max_atoms theory d =
  let run = Engine.run ?pool ?guard ?max_depth ?max_atoms theory d in
  if Engine.saturated run then Holds (Engine.depth run) else Budget_exhausted

let uniform_bound_on ?pool ?guard ?max_c ?lookahead ?max_atoms theory instances
    =
  (* The probe worklist is the instance list itself: one kernel round per
     instance, the guard checkpointed at every round boundary, so a trip
     skips the remaining instances (the per-instance list stays a prefix
     and [all_ok] below turns false). *)
  let acc = ref [] in
  let step (_ : Saturation.ctx) batch =
    let d = match batch with [| d |] -> d | _ -> assert false in
    (match
       core_terminates_on ?pool ?guard ?max_c ?lookahead ?max_atoms theory d
     with
    | Holds c -> acc := (d, c) :: !acc
    | Fails | Budget_exhausted -> ());
    {
      Saturation.next = [];
      tally = Saturation.Stats.tally ~expanded:1 ();
      stop = false;
      commit = true;
    }
  in
  ignore
    (Saturation.run ?guard
       ~drain:(Saturation.At_most (fun () -> 1))
       ~record_rounds:false ~init:instances ~step ());
  let per_instance = List.rev !acc in
  let all_ok = List.length per_instance = List.length instances in
  let bound =
    if all_ok && per_instance <> [] then
      Some (List.fold_left (fun acc (_, c) -> max acc c) 0 per_instance)
    else None
  in
  (bound, per_instance)

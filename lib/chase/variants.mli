(** Other chase flavours, for contrast with the semi-oblivious Skolem chase
    of {!Engine} ("Chase comes in many variants and flavors", Section 3).

    - The {e oblivious} chase (footnote 15): Skolem functions take {b all}
      body variables as arguments, not just the frontier — so two triggers
      differing only in non-frontier bindings invent {e different} terms.
      It produces a superset (up to homomorphism) of the semi-oblivious
      chase and terminates strictly less often.

    - The {e restricted} (standard) chase (footnote 19): a rule fires only
      when its head has no witness yet. It is sequential and
      order-dependent; we use a deterministic rule/trigger order. It
      terminates strictly more often — e.g. on Exercise 23's theory the
      restricted chase reaches a finite model while the semi-oblivious one
      runs forever. *)

open Logic

type result = {
  facts : Fact_set.t;
  steps : int;  (** stages (oblivious) or rule applications (restricted) *)
  saturated : bool;
  interrupted : Guard.cause option;
      (** why the run stopped early, when its guard (or the [max_atoms]
          compat cap, reported as {!Guard.Fuel}) tripped; the facts are
          then the last completed stage/round — a sound prefix. Package
          a full verdict with [Guard.outcome g ~complete ~partial]. *)
}

val run_oblivious :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_depth:int -> ?max_atoms:int -> Theory.t -> Fact_set.t -> result
(** Parallel stages like {!Engine.run}, but with oblivious Skolemization
    (per-rule function symbols over all body variables). With a pool, the
    per-stage trigger enumeration fans out one task per rule; the additions
    are merged as a set union, so the result is domain-count independent. *)

val run_core :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_rounds:int -> ?max_atoms:int -> Theory.t -> Fact_set.t -> result
(** The core chase of Deutsch-Nash-Remmel (the paper's reference [1]): one
    parallel semi-oblivious step, then fold the result to its core keeping
    the instance constants, until the current structure is a model. It
    terminates precisely when a finite universal model exists — i.e. on
    core-terminating (FES) theories (Definition 19): [T_loopcut] and
    [T_spouse] reach their finite cores although their semi-oblivious
    chases are infinite. [steps] counts rounds. *)

val run_restricted :
  ?guard:Guard.t ->
  ?max_applications:int -> ?max_atoms:int -> Theory.t -> Fact_set.t -> result
(** Sequential restricted chase: repeatedly find the first violating
    trigger (deterministic order) and satisfy it with a fresh Skolem
    witness; stop when the structure is a model ([saturated = true]), a
    budget trips, or the guard does (one checkpoint and one fuel unit
    per rule application). *)

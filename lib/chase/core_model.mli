(** Cores of finite structures and [Core(T, D)] (Definitions 19-24).

    The core of a finite structure [F] relative to a set of frozen elements
    is the minimal retract of [F] fixing those elements, computed by
    repeatedly folding [F] along endomorphisms that avoid some non-frozen
    element. [Core(T,D)] then follows Definition 24: the least [n] such
    that [Ch_n(T,D)] contains a model [M] of [T] with [D subseteq M],
    witnessed through a homomorphism from a deeper chase prefix. *)

open Logic

val core_of : ?guard:Guard.t -> ?keep:Term.Set.t -> Fact_set.t -> Fact_set.t
(** Minimal retract of the structure fixing [keep] (default: nothing).
    The result is an induced sub-collapse: a homomorphic image inside the
    input. The guard is checkpointed once per avoided-element probe; on a
    trip the current structure is returned — still a sound retract of the
    input, merely possibly non-minimal. *)

val retract_onto : Fact_set.t -> into:Fact_set.t -> keep:Term.Set.t ->
  Homomorphism.mapping option
(** A homomorphism from the first structure into (the atoms of) [into],
    identity on [keep]; [None] if there is none. The two structures usually
    share atoms ([into] is a chase stage of the first). *)

type core_result = {
  c : int;  (** [c_{T,D}]: the least stage containing a model *)
  model : Fact_set.t;  (** the model [M] found inside [Ch_c] *)
  core : Fact_set.t;  (** [Core(T, D)]: [M] folded to a minimal retract *)
}

val core_of_chase :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_c:int -> ?lookahead:int -> ?max_atoms:int -> ?max_homs:int ->
  Theory.t -> Fact_set.t -> core_result option
(** Searches [n = 0, 1, ...] for the first chase stage containing a model of
    [T] extending [D] (Definition 20). When the chase saturates the answer
    is exact; otherwise the model is witnessed by folding the computed
    prefix ([lookahead] extra stages, default 6) into stage [n] and model-
    checking the image — a sound semi-decision procedure ([None] = budget
    exhausted, matching the undecidability of core termination). The guard
    bounds the underlying chase, the fold enumeration (polled every
    {!Guard.poll_mask}+1 homomorphisms), and the final core fold; a trip
    yields [None], indistinguishable from budget exhaustion by design —
    inspect [Guard.status] to tell them apart. *)

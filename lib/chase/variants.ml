open Logic

type result = {
  facts : Fact_set.t;
  steps : int;
  saturated : bool;
  interrupted : Guard.cause option;
}

(* Abort marker for guard trips observed inside a task's trigger
   enumeration (see Engine.Sweep_aborted). *)
exception Sweep_aborted

(* ------------------------------------------------------------------ *)
(* Oblivious chase                                                     *)
(* ------------------------------------------------------------------ *)

let oblivious_apply ~rule_index rule sigma =
  let all_vars = Tgd.body_vars rule in
  let args = List.map (fun v -> Term.Map.find v sigma) all_vars in
  let subst =
    Term.subst_of_bindings
      (List.mapi
         (fun j w ->
           let fn =
             Printf.sprintf "ob%d.%d[%s]" rule_index j (Tgd.name rule)
           in
           (w, Term.app fn args))
         (Tgd.exist_vars rule)
      @ List.map (fun v -> (v, Term.Map.find v sigma)) (Tgd.frontier rule))
  in
  List.map (Atom.subst subst) (Tgd.head rule)

let run_oblivious ?(pool = Parallel.Pool.sequential) ?guard
    ?(max_depth = 20) ?(max_atoms = 100_000) theory d =
  let guard =
    match guard with Some g -> g | None -> Guard.unlimited ()
  in
  let facts = ref d in
  let steps = ref 0 in
  let capped = ref None in
  let rules = Array.of_list (Theory.rules theory) in
  (* One kernel round per oblivious stage over a unit worklist: the
     evolving fact set lives in [facts]; saturation is signalled by
     returning no successor item. *)
  let step (ctx : Saturation.ctx) _batch =
    let discard =
      { Saturation.next = []; tally = Saturation.Stats.zero;
        stop = false; commit = false }
    in
    (* The historical atom cap, checked at round entry like the old
       loop condition: the round never runs. *)
    if Fact_set.cardinal !facts > max_atoms then begin
      capped := Some Guard.Fuel;
      discard
    end
    else begin
      (* Publish the index before the fan-out; workers only read [!facts].
         The per-rule addition sets are merged in rule order (set union is
         order-insensitive anyway, so the result is trivially
         deterministic). *)
      ignore (Fact_set.domain !facts);
      let per_rule =
        Parallel.Pool.map_array ~guard ctx.Saturation.pool
          (fun (rule_index, rule) ->
            let local = ref Atom.Set.empty in
            let seen = ref 0 in
            (try
               Tgd.triggers rule !facts (fun sigma ->
                   incr seen;
                   if
                     !seen land Guard.poll_mask = 0
                     && Guard.check guard <> None
                   then raise Sweep_aborted;
                   List.iter
                     (fun atom ->
                       if not (Fact_set.mem atom !facts) then
                         local := Atom.Set.add atom !local)
                     (oblivious_apply ~rule_index rule sigma))
             with Sweep_aborted -> ());
            !local)
          (Array.mapi (fun i r -> (i, r)) rules)
      in
      match Guard.status guard with
      | Some _ ->
          (* Discard the aborted sweep: [facts] stays the last completed
             stage, a sound prefix of the fault-free oblivious chase. *)
          discard
      | None ->
          let additions =
            Array.fold_left Atom.Set.union Atom.Set.empty per_rule
          in
          let n = Atom.Set.cardinal additions in
          let tally = Saturation.Stats.tally ~generated:n ~admitted:n () in
          if Atom.Set.is_empty additions then
            { Saturation.next = []; tally; stop = false; commit = true }
          else begin
            incr steps;
            (* [additions] was mem-filtered against [!facts], so this is the
               disjoint-union fast path: the existing index is extended by the
               delta rather than rebuilt over the whole set. *)
            facts := Fact_set.union !facts (Fact_set.of_set additions);
            ignore (Guard.spend guard n);
            { Saturation.next = [ () ]; tally; stop = false; commit = true }
          end
    end
  in
  let verdict, _ =
    Saturation.run ~pool ~guard ~max_rounds:max_depth ~record_rounds:false
      ~init:[ () ] ~step ()
  in
  let saturated, interrupted =
    match verdict with
    | Saturation.Saturated -> (true, None)
    | Saturation.Stopped -> (false, !capped)
    | Saturation.Tripped cause -> (false, Some cause)
  in
  { facts = !facts; steps = !steps; saturated; interrupted }

(* ------------------------------------------------------------------ *)
(* Core chase                                                          *)
(* ------------------------------------------------------------------ *)

let run_core ?pool ?guard ?(max_rounds = 20) ?(max_atoms = 100_000) theory
    d =
  let guard =
    match guard with Some g -> g | None -> Guard.unlimited ()
  in
  let keep = Fact_set.domain d in
  let current = ref d in
  let rounds = ref 0 in
  let stopped = ref None in
  (* One kernel round per "model-check, then step-and-fold" iteration. *)
  let step (ctx : Saturation.ctx) _batch =
    let discard =
      { Saturation.next = []; tally = Saturation.Stats.zero;
        stop = false; commit = false }
    in
    if Fact_set.cardinal !current > max_atoms then
      (* The historical cap stops the run without a cause (the old loop
         condition simply failed). *)
      discard
    else if Theory.satisfied_in theory !current then
      { Saturation.next = []; tally = Saturation.Stats.zero;
        stop = false; commit = true }
    else begin
      let stepped =
        Engine.run ~pool:ctx.Saturation.pool ~guard ~max_depth:1 ~max_atoms
          theory !current
      in
      match Engine.interrupted stepped with
      | Some cause ->
          (* Keep the last completed round's structure. A sub-engine
             atom-cap trip is not a guard trip, so carry the cause out
             through [stopped]. *)
          stopped := Some cause;
          discard
      | None ->
          incr rounds;
          let before = Fact_set.cardinal !current in
          current := Core_model.core_of ~guard ~keep (Engine.result stepped);
          let tally =
            Saturation.Stats.tally ~expanded:1
              ~generated:(Fact_set.cardinal (Engine.result stepped) - before)
              ~admitted:(Fact_set.cardinal !current - before)
              ()
          in
          { Saturation.next = [ () ]; tally; stop = false; commit = true }
    end
  in
  let verdict, _ =
    Saturation.run ?pool ~guard ~max_rounds ~record_rounds:false
      ~init:[ () ] ~step ()
  in
  let saturated, interrupted =
    match verdict with
    | Saturation.Saturated -> (true, None)
    | Saturation.Stopped -> (false, !stopped)
    | Saturation.Tripped cause -> (false, Some cause)
  in
  { facts = !current; steps = !rounds; saturated; interrupted }

(* ------------------------------------------------------------------ *)
(* Restricted (standard) chase                                         *)
(* ------------------------------------------------------------------ *)

let null_counter = Atomic.make 0

let fresh_null () =
  Term.const (Printf.sprintf "_null%d" (1 + Atomic.fetch_and_add null_counter 1))

let restricted_apply rule sigma =
  let subst =
    Term.subst_of_bindings
      (List.map (fun w -> (w, fresh_null ())) (Tgd.exist_vars rule)
      @ List.map (fun v -> (v, Term.Map.find v sigma)) (Tgd.frontier rule))
  in
  List.map (Atom.subst subst) (Tgd.head rule)

let run_restricted ?guard ?(max_applications = 10_000)
    ?(max_atoms = 100_000) theory d =
  let guard =
    match guard with Some g -> g | None -> Guard.unlimited ()
  in
  let facts = ref d in
  let steps = ref 0 in
  let saturated = ref false in
  let rec first_violation = function
    | [] -> None
    | rule :: rest -> (
        match Tgd.violating_trigger rule !facts with
        | Some sigma -> Some (rule, sigma)
        | None -> first_violation rest)
  in
  (* One kernel round per rule application over a unit worklist. *)
  let step (_ : Saturation.ctx) _batch =
    let discard =
      { Saturation.next = []; tally = Saturation.Stats.zero;
        stop = false; commit = false }
    in
    if !steps >= max_applications || Fact_set.cardinal !facts > max_atoms
    then
      (* The historical budgets stop the run without a cause (the old
         loop condition simply failed). *)
      discard
    else if
      (* One checkpoint (and one fuel unit) per rule application; the
         kernel's post-discard status check surfaces the trip. *)
      Guard.spend guard 1 <> None
    then discard
    else
      match first_violation (Theory.rules theory) with
      | None ->
          saturated := true;
          { Saturation.next = []; tally = Saturation.Stats.zero;
            stop = false; commit = true }
      | Some (rule, sigma) ->
          incr steps;
          let head = restricted_apply rule sigma in
          facts :=
            List.fold_left
              (fun fs atom -> Fact_set.add atom fs)
              !facts head;
          let tally =
            Saturation.Stats.tally ~expanded:1
              ~generated:(List.length head) ()
          in
          { Saturation.next = [ () ]; tally; stop = false; commit = true }
  in
  let verdict, _ =
    Saturation.run ~guard ~record_rounds:false ~init:[ () ] ~step ()
  in
  let interrupted =
    match verdict with
    | Saturation.Tripped cause -> Some cause
    | Saturation.Saturated | Saturation.Stopped -> None
  in
  { facts = !facts; steps = !steps; saturated = !saturated; interrupted }

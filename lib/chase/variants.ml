open Logic

type result = {
  facts : Fact_set.t;
  steps : int;
  saturated : bool;
  interrupted : Guard.cause option;
}

(* Abort marker for guard trips observed inside a task's trigger
   enumeration (see Engine.Sweep_aborted). *)
exception Sweep_aborted

(* ------------------------------------------------------------------ *)
(* Oblivious chase                                                     *)
(* ------------------------------------------------------------------ *)

let oblivious_apply ~rule_index rule sigma =
  let all_vars = Tgd.body_vars rule in
  let args = List.map (fun v -> Term.Map.find v sigma) all_vars in
  let subst =
    Term.subst_of_bindings
      (List.mapi
         (fun j w ->
           let fn =
             Printf.sprintf "ob%d.%d[%s]" rule_index j (Tgd.name rule)
           in
           (w, Term.app fn args))
         (Tgd.exist_vars rule)
      @ List.map (fun v -> (v, Term.Map.find v sigma)) (Tgd.frontier rule))
  in
  List.map (Atom.subst subst) (Tgd.head rule)

let run_oblivious ?(pool = Parallel.Pool.sequential) ?guard
    ?(max_depth = 20) ?(max_atoms = 100_000) theory d =
  let guard =
    match guard with Some g -> g | None -> Guard.unlimited ()
  in
  let facts = ref d in
  let steps = ref 0 in
  let saturated = ref false in
  let interrupted = ref (Guard.status guard) in
  let budget_ok () =
    if Fact_set.cardinal !facts > max_atoms then begin
      interrupted := Some Guard.Fuel;
      false
    end
    else true
  in
  let rules = Array.of_list (Theory.rules theory) in
  while
    (not !saturated) && !interrupted = None && !steps < max_depth
    && budget_ok ()
  do
    incr steps;
    match Guard.check guard with
    | Some cause ->
        interrupted := Some cause;
        decr steps
    | None ->
    (* Publish the index before the fan-out; workers only read [!facts].
       The per-rule addition sets are merged in rule order (set union is
       order-insensitive anyway, so the result is trivially deterministic). *)
    ignore (Fact_set.domain !facts);
    let per_rule =
      Parallel.Pool.map_array ~guard pool
        (fun (rule_index, rule) ->
          let local = ref Atom.Set.empty in
          let seen = ref 0 in
          (try
             Tgd.triggers rule !facts (fun sigma ->
                 incr seen;
                 if
                   !seen land Guard.poll_mask = 0
                   && Guard.check guard <> None
                 then raise Sweep_aborted;
                 List.iter
                   (fun atom ->
                     if not (Fact_set.mem atom !facts) then
                       local := Atom.Set.add atom !local)
                   (oblivious_apply ~rule_index rule sigma))
           with Sweep_aborted -> ());
          !local)
        (Array.mapi (fun i r -> (i, r)) rules)
    in
    match Guard.status guard with
    | Some cause ->
        (* Discard the aborted sweep: [facts] stays the last completed
           stage, a sound prefix of the fault-free oblivious chase. *)
        interrupted := Some cause;
        decr steps
    | None ->
        let additions =
          Array.fold_left Atom.Set.union Atom.Set.empty per_rule
        in
        if Atom.Set.is_empty additions then begin
          saturated := true;
          decr steps
        end
        else begin
          (* [additions] was mem-filtered against [!facts], so this is the
             disjoint-union fast path: the existing index is extended by the
             delta rather than rebuilt over the whole set. *)
          facts := Fact_set.union !facts (Fact_set.of_set additions);
          match Guard.spend guard (Atom.Set.cardinal additions) with
          | Some cause -> interrupted := Some cause
          | None -> ()
        end
  done;
  {
    facts = !facts;
    steps = !steps;
    saturated = !saturated;
    interrupted = !interrupted;
  }

(* ------------------------------------------------------------------ *)
(* Core chase                                                          *)
(* ------------------------------------------------------------------ *)

let run_core ?pool ?guard ?(max_rounds = 20) ?(max_atoms = 100_000) theory
    d =
  let guard =
    match guard with Some g -> g | None -> Guard.unlimited ()
  in
  let keep = Fact_set.domain d in
  let current = ref d in
  let rounds = ref 0 in
  let saturated = ref false in
  let interrupted = ref (Guard.status guard) in
  while
    (not !saturated) && !interrupted = None
    && !rounds < max_rounds
    && Fact_set.cardinal !current <= max_atoms
  do
    match Guard.check guard with
    | Some cause -> interrupted := Some cause
    | None ->
        if Theory.satisfied_in theory !current then saturated := true
        else begin
          incr rounds;
          let step =
            Engine.run ?pool ~guard ~max_depth:1 ~max_atoms theory !current
          in
          match Engine.interrupted step with
          | Some cause ->
              (* Keep the last completed round's structure. *)
              interrupted := Some cause;
              decr rounds
          | None ->
              current :=
                Core_model.core_of ~guard ~keep (Engine.result step)
        end
  done;
  {
    facts = !current;
    steps = !rounds;
    saturated = !saturated;
    interrupted = !interrupted;
  }

(* ------------------------------------------------------------------ *)
(* Restricted (standard) chase                                         *)
(* ------------------------------------------------------------------ *)

let null_counter = Atomic.make 0

let fresh_null () =
  Term.const (Printf.sprintf "_null%d" (1 + Atomic.fetch_and_add null_counter 1))

let restricted_apply rule sigma =
  let subst =
    Term.subst_of_bindings
      (List.map (fun w -> (w, fresh_null ())) (Tgd.exist_vars rule)
      @ List.map (fun v -> (v, Term.Map.find v sigma)) (Tgd.frontier rule))
  in
  List.map (Atom.subst subst) (Tgd.head rule)

let run_restricted ?guard ?(max_applications = 10_000)
    ?(max_atoms = 100_000) theory d =
  let guard =
    match guard with Some g -> g | None -> Guard.unlimited ()
  in
  let facts = ref d in
  let steps = ref 0 in
  let saturated = ref false in
  let interrupted = ref (Guard.status guard) in
  let budget_ok () =
    !steps < max_applications && Fact_set.cardinal !facts <= max_atoms
  in
  let rec first_violation = function
    | [] -> None
    | rule :: rest -> (
        match Tgd.violating_trigger rule !facts with
        | Some sigma -> Some (rule, sigma)
        | None -> first_violation rest)
  in
  let continue_ = ref true in
  while !continue_ && !interrupted = None && budget_ok () do
    (* One checkpoint (and one fuel unit) per rule application. *)
    match Guard.spend guard 1 with
    | Some cause -> interrupted := Some cause
    | None -> (
        match first_violation (Theory.rules theory) with
        | None ->
            saturated := true;
            continue_ := false
        | Some (rule, sigma) ->
            incr steps;
            facts :=
              List.fold_left
                (fun fs atom -> Fact_set.add atom fs)
                !facts (restricted_apply rule sigma))
  done;
  {
    facts = !facts;
    steps = !steps;
    saturated = !saturated;
    interrupted = !interrupted;
  }

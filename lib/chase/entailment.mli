(** CQ entailment through the chase, and the [Enough(n, phi, D, T)]
    predicate of Section 4. *)

open Logic

type verdict =
  | Entailed of int
      (** [Entailed n]: the query holds in [Ch_n] (minimal computed [n]). *)
  | Not_entailed  (** The chase saturated and the query does not hold. *)
  | Unknown
      (** Budget exhausted — or the guard tripped — without finding the
          query. A derived view of the chase's [Guard.outcome]: the
          computed prefix is sound, so [Unknown] never contradicts a
          would-be [Entailed]; it only under-approximates it. *)

val entails :
  ?guard:Guard.t ->
  ?max_depth:int -> ?max_atoms:int ->
  Theory.t -> Fact_set.t -> Cq.t -> Term.t list -> verdict
(** [entails t d q tuple]: does [T, D |= q(tuple)]? The guard bounds the
    underlying chase; on a trip the verdict degrades to [Unknown] (or to a
    still-correct [Entailed n] when the query already holds in the computed
    prefix). *)

val entails_run : Engine.run -> Cq.t -> Term.t list -> verdict
(** Same, over an already-computed run. *)

val needed_depth : Engine.run -> Cq.t -> Term.t list -> int option
(** Minimal [n] with [Ch_n |= q(tuple)], within the run's prefix. *)

val enough : Engine.run -> int -> Cq.t -> bool
(** [enough r n q]: [Enough(n, q, D, T)] — for every tuple over
    [dom(D)^|free q|], [Ch |= q(abar)] iff [Ch_n |= q(abar)], where [Ch] is
    the run's deepest stage. Exact when the run is saturated; otherwise a
    statement about the computed prefix (callers must budget accordingly). *)

val all_tuples : Fact_set.t -> int -> Term.t list list
(** All tuples over the active domain of the given length (helper for
    [Enough]-style sweeps). *)

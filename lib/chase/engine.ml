open Logic

(* Provenance is recorded per derived atom in a hash table (hash-consed
   term ids make [Atom.hash] cheap and well-spread); the table is only
   ever mutated by the coordinator, in deterministic production order. *)
module Atom_tbl = Hashtbl.Make (struct
  type t = Atom.t

  let equal = Atom.equal
  let hash = Atom.hash
end)

type run = {
  theory : Theory.t;
  initial : Fact_set.t;
  stages : Fact_set.t array;
  saturated : bool;
  interrupted : Guard.cause option;
      (* Some: the guard tripped (the max_atoms compat budget trips it
         with [Fuel]); the stages are the sound prefix computed before
         the trip — an aborted sweep contributes nothing *)
  guard : Guard.t;
  info : (int * (Tgd.t * Homomorphism.mapping) list ref) Atom_tbl.t;
      (* derived atoms: first stage, creating applications; the list is
         mutated in place so a rediscovery costs one table probe *)
  stats : Saturation.Stats.t;
}

(* The semi-naive trigger enumeration lives in the plan layer
   ([Eval.Match]) together with every other matcher; the engine only
   consumes parts opaquely, so the aliases keep this file's vocabulary. *)
let rule_parts = Eval.Match.rule_parts
let part_triggers = Eval.Match.part_triggers

(* Abort marker for a guard trip observed inside a task's trigger
   enumeration: the task catches it and returns its partial local list,
   which the coordinator then discards wholesale (the guard is sticky,
   so the post-sweep status check sees the trip). *)
exception Sweep_aborted

let checkpoint_kind = "chase"

(* Snapshot encoding. A chase snapshot at (absolute) stage r holds the
   theory, the initial instance, one delta line per committed stage
   1..r, and per derived atom its *creating* rule application — enough
   to rebuild [stages], [info] and the semi-naive cursors exactly.
   Everything goes through [Checkpoint.Codec], so hash-consed ids never
   touch the disk; re-interning on decode plus the Skolem naming
   convention (Definition 4, via [Tgd.make]) is what makes the resumed
   chase bit-identical (Observation 8). Rediscovery derivations beyond
   the creating one are deliberately dropped: [atom_frontier],
   [birth_atom] and [rule_counts] only consult the creating application,
   and carrying every rediscovery would multiply the snapshot size. *)
let encode_state ~round ~theory ~max_depth ~max_atoms ~stages ~deltas ~info =
  let module Codec = Checkpoint.Codec in
  let rules = Array.of_list (Theory.rules theory) in
  let rule_idx r =
    let n = Array.length rules in
    let rec go i = if i >= n then -1 else if rules.(i) == r then i else go (i + 1) in
    go 0
  in
  let stage0 = List.hd (List.rev stages) in
  let prov =
    Atom_tbl.fold
      (fun atom (st, ders) acc ->
        match List.rev !ders with
        | [] -> acc
        | (rule, sigma) :: _ ->
            let i = rule_idx rule in
            if i < 0 then acc
            else
              Codec.concat
                [
                  Codec.atom_to_string atom;
                  string_of_int st;
                  string_of_int i;
                  Codec.mapping_to_string sigma;
                ]
              :: acc)
      info []
  in
  {
    Checkpoint.Snapshot.kind = checkpoint_kind;
    round;
    meta =
      [
        ("max_depth", string_of_int max_depth);
        ("max_atoms", string_of_int max_atoms);
      ];
    sections =
      [
        ("theory", Codec.theory_to_lines theory);
        ("stage0", List.map Codec.atom_to_string (Fact_set.atoms stage0));
        ( "deltas",
          List.rev_map (Codec.list_to_string Codec.atom_to_string) deltas );
        ("prov", prov);
      ];
  }

(* [run_from] is the engine body, parameterized by the resume state: a
   fresh run passes [stages0 = [initial]], no deltas, an empty info
   table; [resume] passes the decoded snapshot state. [base_round] is
   derived from the delta count, so stage numbering, the [max_depth]
   cutoff, and the checkpoint cadence all continue in absolute rounds. *)
let run_from ?(pool = Parallel.Pool.sequential) ?guard ?(max_depth = 50)
    ?(max_atoms = 200_000) ?checkpoint:checkpoint_sink ~stages0 ~deltas0
    ~info theory =
  let guard =
    match guard with Some g -> g | None -> Guard.unlimited ()
  in
  let initial = List.hd (List.rev stages0) in
  let base_round = List.length deltas0 in
  let stages = ref stages0 in
  let deltas = ref deltas0 in
  let full = ref (List.hd stages0) in
  let old_facts =
    ref
      (match stages0 with
      | _ :: prev :: _ -> prev
      | _ -> Fact_set.empty)
  in
  let old_dom = ref (Fact_set.domain !old_facts) in
  (* A client-level stop that is not a guard trip: the historical
     [max_atoms] atom cap, expressed as the unified fuel cause. *)
  let capped = ref None in
  (* Cost hint for the dispatch gate: consecutive semi-naive sweeps have
     strongly correlated costs, so the previous sweep's wall time is an
     honest estimate for the next one (0. = no history, let the gate
     probe). An inline sweep measures the sequential cost exactly; a
     fanned-out one underestimates it, which only reinforces the
     (correct) fan-out decision. *)
  let last_sweep_s = ref 0. in
  (* One kernel round per chase stage: the worklist item is the stage's
     delta, the step is the parallel semi-naive sweep, and the kernel owns
     the boundary checkpoint, the aborted-sweep discard, and the stats. *)
  let step (ctx : Saturation.ctx) batch =
    let delta = match batch with [| d |] -> d | _ -> assert false in
    let discard =
      { Saturation.next = []; tally = Saturation.Stats.zero;
        stop = false; commit = false }
    in
    (* Force the lazy indexes of the shared fact sets *before* fanning out:
       workers only ever read them. *)
    ignore (Fact_set.domain !old_facts);
    ignore (Fact_set.domain delta);
    let full_dom = Fact_set.domain !full in
    let new_dom = Term.Set.diff full_dom !old_dom in
    let old_dom_list = Term.Set.elements !old_dom in
    let new_dom_list = Term.Set.elements new_dom in
    let full_dom_list = Term.Set.elements full_dom in
    (* One task per (rule, semi-naive round), in rule-major order. Each
       task accumulates its productions locally (newest first, like the
       sequential engine); the deterministic slot-ordered merge below
       rebuilds the exact production list the sequential engine computes,
       so stages, saturation flags and provenance are independent of the
       domain count. *)
    let old_is_empty = Fact_set.is_empty !old_facts in
    let tasks =
      Array.of_list
        (List.concat_map
           (fun rule ->
             List.map (fun part -> (rule, part))
               (rule_parts rule ~old_is_empty))
           (Theory.rules theory))
    in
    let t_sweep = Unix.gettimeofday () in
    let est_s = !last_sweep_s in
    let locals =
      Parallel.Pool.map_array ~guard
        ?est_s:(if est_s > 0. then Some est_s else None)
        ctx.Saturation.pool
        (fun (rule, part) ->
          let local = ref [] in
          let triggers = ref 0 in
          (* Guard checkpoints every [poll_mask]+1 triggers: a trip
             aborts this task's enumeration early; the coordinator then
             discards the whole sweep (stages stay an exact prefix). *)
          (try
             part_triggers rule part ~old_facts:!old_facts ~delta
               ~full:!full ~old_dom_list ~new_dom_list ~full_dom_list
               (fun sigma ->
                 incr triggers;
                 if
                   !triggers land Guard.poll_mask = 0
                   && Guard.check guard <> None
                 then raise Sweep_aborted;
                 List.iter
                   (fun atom -> local := (atom, rule, sigma) :: !local)
                   (Tgd.apply rule sigma))
           with Sweep_aborted -> ());
          (!local, !triggers))
        tasks
    in
    last_sweep_s := Unix.gettimeofday () -. t_sweep;
    let triggers =
      Array.fold_left (fun acc (_, t) -> acc + t) 0 locals
    in
    match Guard.status guard with
    | Some _ ->
        (* The sweep was aborted mid-enumeration: its partial
           productions are unsound as a stage, so discard them — the
           recorded stages remain exactly [Ch_0 .. Ch_i] for the last
           completed sweep [i]. *)
        discard
    | None ->
        (* Partition into genuinely new atoms and rediscoveries; record all
           derivations either way, iterating the per-task locals in the
           sequential engine's production order (tasks last-to-first, each
           local newest-first — the order the former concatenated list had).
           The info table dedups: an atom lands in [fresh] exactly once, at
           its first production. *)
        let n_produced = ref 0 in
        let fresh = ref [] in
        for i = Array.length locals - 1 downto 0 do
          let local, _ = locals.(i) in
          List.iter
            (fun (atom, rule, sigma) ->
              incr n_produced;
              match Atom_tbl.find_opt info atom with
              | Some (_, ders) -> ders := (rule, sigma) :: !ders
              | None ->
                  if Fact_set.mem atom initial then ()
                  else begin
                    fresh := atom :: !fresh;
                    Atom_tbl.add info atom
                      (ctx.Saturation.round, ref [ (rule, sigma) ])
                  end)
            local
        done;
        (* A rediscovered atom from an earlier stage cannot shift its stage:
           every non-initial atom of [full] is already recorded in [info], so
           it takes the rediscovery branch above and never reaches [fresh]. *)
        let delta' = Fact_set.of_set (Atom.Set.of_list !fresh) in
        let fresh_atoms = Fact_set.cardinal delta' in
        let tally =
          Saturation.Stats.tally ~expanded:triggers ~generated:!n_produced
            ~admitted:fresh_atoms ~deduped:(!n_produced - fresh_atoms) ()
        in
        old_facts := !full;
        old_dom := full_dom;
        (* [fresh] contains no atom of [full]: every non-initial atom of
           [full] is in [info] and initial atoms are filtered above. *)
        full := Fact_set.union_disjoint !full delta';
        stages := !full :: !stages;
        if Fact_set.is_empty delta' then begin
          (* Drop the stabilized duplicate stage; the kernel sees an empty
             frontier and reports [Saturated]. The round's stats entry is
             kept: the fixpoint-confirming sweep did real
             trigger-enumeration work even though it derived nothing. *)
          stages := List.tl !stages;
          { Saturation.next = []; tally; stop = false; commit = true }
        end
        else if Fact_set.cardinal !full > max_atoms then begin
          (* The historical atom cap: the completed stage is kept, the
             run stops — no fuel is drawn for the capped stage. *)
          capped := Some Guard.Fuel;
          deltas := !fresh :: !deltas;
          { Saturation.next = []; tally; stop = true; commit = true }
        end
        else begin
          (* Draw the stage's fresh atoms from the guard's fuel account; a
             fuel (or boundary-sampled deadline/memory) trip keeps the
             completed stage and stops the run (the kernel consults the
             sticky trip state right after the commit). *)
          ignore (Guard.spend guard fresh_atoms);
          deltas := !fresh :: !deltas;
          { Saturation.next = [ delta' ]; tally; stop = false; commit = true }
        end
  in
  let checkpoint =
    Option.map
      (fun sink ->
        {
          Saturation.every = sink.Checkpoint.every;
          min_interval_s = sink.Checkpoint.min_interval_s;
          save =
            (fun ~round ~final:_ _frontier ->
              Checkpoint.save_to sink
                (encode_state ~round ~theory ~max_depth ~max_atoms
                   ~stages:!stages ~deltas:!deltas ~info));
        })
      checkpoint_sink
  in
  let init =
    match deltas0 with
    | [] -> [ initial ]
    | last :: _ -> [ Fact_set.of_list last ]
  in
  let verdict, stats =
    Saturation.run ~pool ~guard ~drain:Saturation.All ~max_rounds:max_depth
      ~record_rounds:true ~base_round ?checkpoint ~init ~step ()
  in
  let saturated, interrupted =
    match verdict with
    | Saturation.Saturated -> (true, None)
    | Saturation.Stopped -> (false, !capped) (* None for plain max_depth *)
    | Saturation.Tripped cause -> (false, Some cause)
  in
  {
    theory;
    initial;
    stages = Array.of_list (List.rev !stages);
    saturated;
    interrupted;
    guard;
    info;
    stats;
  }

let run ?pool ?guard ?max_depth ?max_atoms ?checkpoint theory initial =
  run_from ?pool ?guard ?max_depth ?max_atoms ?checkpoint
    ~stages0:[ initial ] ~deltas0:[]
    ~info:(Atom_tbl.create (1 lsl 18))
    theory

(* Snapshot decoding: the exact inverse of [encode_state]. Raises
   [Invalid_argument] on a snapshot of another kind and
   [Checkpoint.Codec.Error] on malformed content — both only reachable
   on a checksum-valid file, i.e. a version-skew or writer bug, never
   plain corruption (the checksum rejects that upstream). *)
let decode_snapshot snap =
  let module S = Checkpoint.Snapshot in
  let module Codec = Checkpoint.Codec in
  if snap.S.kind <> checkpoint_kind then
    invalid_arg
      (Printf.sprintf "Engine.resume: %S snapshot, expected %S" snap.S.kind
         checkpoint_kind);
  let theory = Codec.theory_of_lines (S.section snap "theory") in
  let stage0 =
    Fact_set.of_list
      (List.map Codec.atom_of_string (S.section snap "stage0"))
  in
  let deltas =
    List.map
      (Codec.list_of_string Codec.atom_of_string)
      (S.section snap "deltas")
  in
  let rules = Array.of_list (Theory.rules theory) in
  let info = Atom_tbl.create (1 lsl 18) in
  List.iter
    (fun line ->
      match Codec.fields line with
      | [ a; st; i; m ] ->
          let atom = Codec.atom_of_string a in
          let st = Codec.int_of_string st in
          let i = Codec.int_of_string i in
          if i < 0 || i >= Array.length rules then
            raise (Codec.Error "provenance rule index out of range");
          Atom_tbl.replace info atom
            (st, ref [ (rules.(i), Codec.mapping_of_string m) ])
      | _ -> raise (Codec.Error "bad provenance line"))
    (S.section snap "prov");
  let stages =
    List.fold_left
      (fun acc delta ->
        Fact_set.union_disjoint (List.hd acc) (Fact_set.of_list delta) :: acc)
      [ stage0 ] deltas
  in
  (theory, stages, List.rev deltas, info)

let resume ?pool ?guard ?max_depth ?max_atoms ?checkpoint snap =
  let module S = Checkpoint.Snapshot in
  let theory, stages0, deltas0, info = decode_snapshot snap in
  let max_depth =
    match max_depth with
    | Some d -> d
    | None -> Option.value ~default:50 (S.meta_int snap "max_depth")
  in
  let max_atoms =
    match max_atoms with
    | Some a -> a
    | None -> Option.value ~default:200_000 (S.meta_int snap "max_atoms")
  in
  run_from ?pool ?guard ~max_depth ~max_atoms ?checkpoint ~stages0 ~deltas0
    ~info theory

let theory r = r.theory
let initial r = r.initial
let kernel_stats r = r.stats
let stage_stats r = r.stats.Saturation.Stats.per_round
let depth r = Array.length r.stages - 1
let saturated r = r.saturated
let interrupted r = r.interrupted
let guard r = r.guard

(* Derived view of the unified guard outcome: true exactly when the
   atom/step fuel account (the historical [max_atoms] cap included) ran
   dry. *)
let hit_atom_budget r = r.interrupted = Some Guard.Fuel

let outcome r =
  if r.saturated then Guard.Complete r
  else
    let cause =
      match r.interrupted with
      | Some cause -> cause
      | None -> Guard.Fuel (* the max_depth compat budget: depth fuel *)
    in
    Guard.Exhausted
      { partial = r; cause; progress = Guard.progress r.guard }

let stage r i =
  if i < 0 then invalid_arg "Engine.stage: negative index"
  else if i <= depth r then r.stages.(i)
  else if r.saturated then r.stages.(depth r)
  else
    invalid_arg
      (Printf.sprintf
         "Engine.stage: stage %d not computed (depth %d, not saturated)" i
         (depth r))

let result r = r.stages.(depth r)

let new_at_stage r i =
  if i = 0 then Fact_set.atoms r.stages.(0)
  else if i <= depth r then
    Fact_set.atoms (Fact_set.diff r.stages.(i) r.stages.(i - 1))
  else []

let stage_of_atom r atom =
  if Fact_set.mem atom r.initial then Some 0
  else
    match Atom_tbl.find_opt r.info atom with
    | Some (st, _) when Fact_set.mem atom (result r) -> Some st
    | Some _ | None -> None

let derivations r atom =
  match Atom_tbl.find_opt r.info atom with
  | Some (_, ders) -> !ders
  | None -> []

let atom_frontier r atom =
  match derivations r atom with
  | [] -> None
  | ders ->
      (* Derivations are prepended as they are found, so the *creating*
         application is the last element. Later re-derivations (e.g. a
         Datalog rule re-proving an existential atom) may have different
         frontiers; Observation 9's well-definedness is about creating
         applications only. *)
      let rule, sigma = List.nth ders (List.length ders - 1) in
      Some
        (List.fold_left
           (fun acc v -> Term.Set.add (Term.Map.find v sigma) acc)
           Term.Set.empty (Tgd.frontier rule))

let invented_terms r =
  Term.Set.diff (Fact_set.domain (result r)) (Fact_set.domain r.initial)

let birth_atom r term =
  if not (Term.Set.mem term (invented_terms r)) then None
  else
    (* The join index answers "which atoms mention [term]" directly —
       the result set was scanned in full per invented term before.
       [atoms_with_term] returns [Atom.Set] order, i.e. exactly the
       order the old [List.filter] over [atoms] produced. *)
    let candidates = Fact_set.atoms_with_term (result r) term in
    List.find_opt
      (fun atom ->
        match atom_frontier r atom with
        | Some fr -> not (Term.Set.mem term fr)
        | None -> false)
      candidates

let rule_counts r =
  let counts = Hashtbl.create 16 in
  Atom_tbl.iter
    (fun _ (_, ders) ->
      match List.rev !ders with
      | (rule, _) :: _ ->
          let name =
            match Tgd.name rule with "" -> "(unnamed)" | n -> n
          in
          Hashtbl.replace counts name
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts name))
      | [] -> ())
    r.info;
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

open Logic

let subsets_up_to l items =
  let rec choose k items =
    if k = 0 then [ [] ]
    else
      match items with
      | [] -> []
      | x :: rest ->
          List.map (fun s -> x :: s) (choose (k - 1) rest) @ choose k rest
  in
  List.concat_map
    (fun size -> choose size items)
    (List.init l (fun i -> i + 1))

let c_d ?guard ?(l = 2) ?max_c ?lookahead ?max_atoms theory d =
  let subsets = subsets_up_to l (Fact_set.atoms d) in
  List.fold_left
    (fun acc subset ->
      match acc with
      | None -> None
      | Some (union, k) -> (
          let f = Fact_set.of_list subset in
          match
            Core_model.core_of_chase ?guard ?max_c ?lookahead ?max_atoms
              theory f
          with
          | Some { Core_model.c; core; _ } ->
              Some (Fact_set.union union core, max k c)
          | None -> None))
    (Some (Fact_set.empty, 0))
    subsets

let lemma33_holds ?guard ?l ?max_c ?lookahead ?max_atoms theory d =
  match c_d ?guard ?l ?max_c ?lookahead ?max_atoms theory d with
  | None -> None
  | Some (cd, k_t) ->
      let run = Engine.run ?guard ~max_depth:k_t ?max_atoms theory d in
      if Engine.interrupted run <> None then None
      else
        Some
          (Fact_set.subset cd (Engine.stage run (min k_t (Engine.depth run))))

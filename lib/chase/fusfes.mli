(** Executable pieces of the Theorem 4 proof (Section 8).

    For a local, core-terminating theory the proof assembles a global fold
    of [Ch(D)] from the cores of the small sub-instances. The two
    finite-checkable ingredients:

    - [c_d]: the set [C_D = U_{F in I_D} Core(F)] of Definition 32, where
      [I_D] collects the sub-instances of size at most [l];
    - Lemma 33: [C_D subseteq Ch_{k_T}(D)] for a constant [k_T] depending
      only on the theory — here computed as the largest [c_{T,F}] over the
      sub-instances, so the inclusion check is exactly the lemma's
      statement.

    Thanks to the Skolem naming convention the union of cores is a literal
    set union inside [Ch(D)]. *)

open Logic

val c_d :
  ?guard:Guard.t ->
  ?l:int -> ?max_c:int -> ?lookahead:int -> ?max_atoms:int ->
  Theory.t -> Fact_set.t -> (Fact_set.t * int) option
(** [(C_D, k_T)] with [k_T] the largest per-sub-instance core stage;
    [None] when some sub-instance's core search exhausts its budget
    (non-FES theories) or the guard trips. Default [l = 2]. *)

val lemma33_holds :
  ?guard:Guard.t ->
  ?l:int -> ?max_c:int -> ?lookahead:int -> ?max_atoms:int ->
  Theory.t -> Fact_set.t -> bool option
(** Check [C_D subseteq Ch_{k_T}(D)] directly. [None] when [c_d] fails or
    the guard trips before the witnessing chase reaches stage [k_T] (a
    partial prefix cannot certify the inclusion either way). *)

(** Termination analyzers: core termination (FES, Definition 18),
    all-instances termination (Definition 21), and the uniform-BDD constant
    of Observation 27. All are undecidable in general; these are budgeted
    semi-decision procedures evaluated over instance families. *)

open Logic

type verdict = Holds of int | Fails | Budget_exhausted
(** [Budget_exhausted] is the legacy name for every resource trip: it now
    covers both the [max_*] compat caps and {!Guard} trips (deadline, fuel,
    memory, cancellation). To distinguish the cause, pass an explicit
    [?guard] and inspect [Guard.status] after the call. *)

val core_terminates_on :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_c:int -> ?lookahead:int -> ?max_atoms:int ->
  Theory.t -> Fact_set.t -> verdict
(** [Holds c]: stage [c] of the chase on this instance contains a model
    ([c = c_{T,D}] up to the prefix-witness approximation). [Fails] is never
    returned (non-termination is not finitely refutable on one instance);
    budget exhaustion is the negative signal. *)

val all_instances_terminates_on :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_depth:int -> ?max_atoms:int -> Theory.t -> Fact_set.t -> verdict
(** [Holds n]: the chase saturates at stage [n] on this instance. *)

val uniform_bound_on :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_c:int -> ?lookahead:int -> ?max_atoms:int ->
  Theory.t -> Fact_set.t list -> (int option * (Fact_set.t * int) list)
(** For each instance, [c_{T,D}]; the first component is the maximum when
    every instance succeeded ([None] when some budget was exhausted). By
    Observation 27, a uniform bound across *all* instances witnesses UBDD;
    across a family it is the experimental series of E4/E8. A guard trip
    mid-family stops probing further instances — the per-instance list then
    covers a prefix of the family. *)

open Logic

type verdict = Entailed of int | Not_entailed | Unknown

let needed_depth run q tuple =
  let rec go n =
    if n > Engine.depth run then None
    else if Cq.holds q (Engine.stage run n) tuple then Some n
    else go (n + 1)
  in
  (* Monotonicity lets us first test the deepest stage, cheaply pruning the
     common negative case. *)
  if Cq.holds q (Engine.result run) tuple then go 0 else None

let entails_run run q tuple =
  match needed_depth run q tuple with
  | Some n -> Entailed n
  | None -> if Engine.saturated run then Not_entailed else Unknown

let entails ?guard ?max_depth ?max_atoms theory d q tuple =
  let run = Engine.run ?guard ?max_depth ?max_atoms theory d in
  entails_run run q tuple

let all_tuples d len =
  let dom = Term.Set.elements (Fact_set.domain d) in
  let rec go = function
    | 0 -> [ [] ]
    | k ->
        let shorter = go (k - 1) in
        List.concat_map (fun a -> List.map (fun t -> a :: t) shorter) dom
  in
  go len

let enough run n q =
  let d = Engine.initial run in
  let full = Engine.result run in
  let stage_n = Engine.stage run (min n (Engine.depth run)) in
  List.for_all
    (fun tuple ->
      Bool.equal (Cq.holds q full tuple) (Cq.holds q stage_n tuple))
    (all_tuples d (List.length (Cq.free q)))

(** Reproducible counterexample files.

    A [.repro] file is a sectioned, line-based rendering of a
    (theory, instance, query) triple in the concrete syntax of
    {!Logic.Parser}, plus free-form metadata — everything needed to
    replay a fuzzing disagreement:

    {v
    # frontier fuzz counterexample
    # seed: 42
    [theory]
    lin0: L0(x,y) -> exists z. L1(y,z)
    [instance]
    L0(n0,n1). L1(n1,n2)
    [query]
    (x) :- L0(x,y)
    v}

    {!render} and {!parse} round-trip: constants are quoted in rules and
    queries (where bare identifiers read as variables) and bare in
    instances (where they read as constants), matching the parser's
    conventions. Skolem terms cannot appear — repro objects are always
    source-level. *)

type t = {
  triple : Minimize.triple;
  meta : (string * string) list;  (** rendered as [# key: value] lines *)
}

val render : t -> string
val write : path:string -> t -> unit

val parse : string -> t
(** Raises [Logic.Parser.Parse_error] on malformed sections and
    [Invalid_argument] on a missing [theory]/[query] section. *)

val load : string -> t

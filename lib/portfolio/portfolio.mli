(** The frontier portfolio: class checkers, an auto-strategy selector,
    and a differential fuzzing harness (ROADMAP item 5).

    {ul
    {- {!Checkers} — loop-restricted rules (Asuncion et al.), a BDD
       probe over the existing uniform-bound machinery, piece-rewriter
       compatibility, and [T_d]/[T_d^K] shape detection;}
    {- {!Strategy} — [plan] routes a theory to terminating chase, UCQ
       rewriting, or the marked process; [execute] runs the choice with
       run-time validation and a budgeted-chase fallback;}
    {- {!Fuzz} — seeded random-theory campaigns running every applicable
       engine per sample and cross-checking certain answers;}
    {- {!Minimize} / {!Repro} — delta-debugging of disagreements down to
       minimized, replayable [.repro] files.}}

    [Portfolio.plan] and [Portfolio.execute] are re-exported at the top
    level as the library's two-call API. *)

module Checkers = Checkers
module Strategy = Strategy
module Minimize = Minimize
module Repro = Repro
module Fuzz = Fuzz

type strategy = Strategy.strategy =
  | Ucq_rewriting
  | Terminating_chase
  | Marked_process of int
  | Budgeted_chase

val plan :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?probe:bool ->
  Logic.Theory.t ->
  Strategy.plan
(** {!Strategy.plan}. *)

val execute :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?budget:Rewriting.Rewrite.budget ->
  ?max_depth:int ->
  ?max_atoms:int ->
  Strategy.plan ->
  Logic.Theory.t ->
  Logic.Fact_set.t ->
  Logic.Cq.t ->
  Strategy.answers
(** {!Strategy.execute}. *)

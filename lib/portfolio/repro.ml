open Logic

type t = {
  triple : Minimize.triple;
  meta : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

(* In rule/query position bare identifiers parse as variables, so
   constants must be quoted; in instance position they parse as
   constants and stay bare. *)
let quoted_term ppf t =
  match t.Term.view with
  | Term.Var v -> Fmt.string ppf v
  | Term.Const c -> Fmt.pf ppf "\"%s\"" c
  | Term.App _ -> invalid_arg "Repro.render: Skolem term in rule or query"

let ground_term ppf t =
  match t.Term.view with
  | Term.Const c -> Fmt.string ppf c
  | _ -> invalid_arg "Repro.render: non-constant in instance fact"

let atom_with pp_term ppf a =
  Fmt.pf ppf "%s(%a)"
    (Symbol.name (Atom.rel a))
    (Fmt.list ~sep:(Fmt.any ",") pp_term)
    (Atom.args a)

let rule_line ppf r =
  let pp_atoms = Fmt.list ~sep:(Fmt.any ", ") (atom_with quoted_term) in
  Fmt.pf ppf "%s: " (Tgd.name r);
  (match (Tgd.body r, Tgd.dom_vars r) with
  | [], [] -> Fmt.string ppf "true"
  | [], dv -> Fmt.pf ppf "dom(%a)" (Fmt.list ~sep:(Fmt.any ",") Term.pp) dv
  | body, [] -> pp_atoms ppf body
  | body, dv ->
      Fmt.pf ppf "%a, dom(%a)" pp_atoms body
        (Fmt.list ~sep:(Fmt.any ",") Term.pp)
        dv);
  match Tgd.exist_vars r with
  | [] -> Fmt.pf ppf " -> %a" pp_atoms (Tgd.head r)
  | ev ->
      Fmt.pf ppf " -> exists %a. %a"
        (Fmt.list ~sep:(Fmt.any " ") Term.pp)
        ev pp_atoms (Tgd.head r)

let query_line ppf q =
  let pp_atoms = Fmt.list ~sep:(Fmt.any ", ") (atom_with quoted_term) in
  match Cq.free q with
  | [] -> Fmt.pf ppf ":- %a" pp_atoms (Cq.atoms q)
  | free ->
      Fmt.pf ppf "(%a) :- %a"
        (Fmt.list ~sep:(Fmt.any ",") Term.pp)
        free pp_atoms (Cq.atoms q)

let render { triple; meta } =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# frontier fuzz counterexample";
  List.iter (fun (k, v) -> line "# %s: %s" k v) meta;
  line "[theory]";
  List.iter
    (fun r -> line "%s" (Fmt.str "%a" rule_line r))
    (Theory.rules triple.Minimize.theory);
  line "[instance]";
  (match Fact_set.atoms triple.Minimize.instance with
  | [] -> ()
  | facts ->
      line "%s"
        (String.concat ". "
           (List.map (Fmt.str "%a" (atom_with ground_term)) facts)));
  line "[query]";
  line "%s" (Fmt.str "%a" query_line triple.Minimize.query);
  Buffer.contents buf

(* Atomic (tmp + fsync + rename): a fuzz campaign interrupted mid-write
   must never leave a truncated .repro behind — the whole point of the
   file is to survive the crash that produced it. *)
let write ~path t = Checkpoint.Atomic_io.write_file path (render t)

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let parse text =
  let meta = ref [] in
  let sections = Hashtbl.create 4 in
  let current = ref None in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         let line = String.trim raw in
         if line = "" then ()
         else if String.length line >= 2 && line.[0] = '[' then
           current := Some (String.sub line 1 (String.length line - 2))
         else if line.[0] = '#' then begin
           let body = String.trim (String.sub line 1 (String.length line - 1)) in
           match String.index_opt body ':' with
           | Some i ->
               let k = String.trim (String.sub body 0 i)
               and v =
                 String.trim
                   (String.sub body (i + 1) (String.length body - i - 1))
               in
               if k <> "" then meta := (k, v) :: !meta
           | None -> ()
         end
         else
           match !current with
           | None -> ()
           | Some section ->
               let prev =
                 Option.value ~default:[] (Hashtbl.find_opt sections section)
               in
               Hashtbl.replace sections section (line :: prev));
  let section name =
    String.concat "\n"
      (List.rev (Option.value ~default:[] (Hashtbl.find_opt sections name)))
  in
  let theory_src = section "theory" and query_src = section "query" in
  if theory_src = "" then invalid_arg "Repro.parse: missing [theory] section";
  if query_src = "" then invalid_arg "Repro.parse: missing [query] section";
  let theory = Parser.parse_theory ~name:"repro" theory_src in
  let instance =
    match section "instance" with
    | "" -> Fact_set.empty
    | src -> Parser.parse_instance src
  in
  let query = Parser.parse_query query_src in
  {
    triple = { Minimize.theory; instance; query };
    meta = List.rev !meta;
  }

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(** The portfolio selector: route a theory to the cheapest sound engine.

    {!plan} weighs the {!Checkers} evidence into one strategy; {!execute}
    runs it and {e re-validates at run time} — a rewriting's answers are
    used only on a [Complete] outcome, a chase's only when it saturated,
    the marked process's only on a [complete] run — falling back to a
    budgeted chase otherwise. The [exact] flag on the returned answers is
    therefore trustworthy whatever the checkers claimed: an over-eager
    plan costs a fallback, never an unsound answer. This is the invariant
    the differential fuzzer ({!Fuzz}) cross-checks at scale. *)

open Logic

type strategy =
  | Ucq_rewriting
      (** rewrite the query to a UCQ (Theorem 1) and evaluate it directly
          over the instance — the FUS/BDD fast path *)
  | Terminating_chase
      (** chase to saturation (Datalog / weakly-acyclic theories) and
          read the certain answers off the universal model *)
  | Marked_process of int
      (** the Section 10 marked-query process over [K] levels (2 = [T_d]
          itself) — exact for [T_d]/[T_d^K], where neither the chase nor
          plain UCQ rewriting terminates *)
  | Budgeted_chase
      (** no class evidence: chase under the budget; answers are sound,
          exact only if saturation was reached *)

val strategy_name : strategy -> string
val pp_strategy : strategy Fmt.t

type plan = {
  strategy : strategy;
  reasons : string list;  (** the evidence behind the choice, for humans *)
  report : Checkers.report;
}

val plan :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?probe:bool ->
  Theory.t ->
  plan
(** Routing, first match wins:
    + [T_d]/[T_d^K] shape — {!Marked_process} (the only exact engine
      there);
    + rewriter-compatible and linear, sticky, loop-restricted, or (with
      [~probe:true]) atomic-query certified — {!Ucq_rewriting};
    + Datalog or weakly acyclic — {!Terminating_chase};
    + otherwise {!Budgeted_chase}. *)

(** {1 Execution} *)

type answers = {
  tuples : Term.t list list;
      (** certain answers over the instance's active domain, sorted and
          deduplicated; a boolean query yields [[[]]] (holds) or [[]] *)
  exact : bool;
      (** the producing engine finished ([Complete] rewriting, saturated
          chase, complete marked process): [tuples] is exactly the
          certain answers. When [false] the tuples are sound (each one is
          entailed) but possibly incomplete. *)
  used : strategy;  (** the engine that actually produced [tuples] *)
  fell_back : bool;
      (** the planned engine did not finish and the budgeted chase took
          over *)
  attempts : (string * Saturation.Stats.t) list;
      (** per-engine kernel counters, in execution order — what
          [frontier portfolio --stats] prints *)
}

val execute :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?budget:Rewriting.Rewrite.budget ->
  ?max_depth:int ->
  ?max_atoms:int ->
  plan ->
  Theory.t ->
  Fact_set.t ->
  Cq.t ->
  answers
(** Run the plan on one (instance, query) input. Defaults:
    [budget = Rewrite.default_budget], [max_depth = 40],
    [max_atoms = 200_000] for the chase legs. *)

(** {1 Single-engine arms (exposed for the differential fuzzer)} *)

val chase_arm :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_depth:int ->
  ?max_atoms:int ->
  Theory.t ->
  Fact_set.t ->
  Cq.t ->
  Term.t list list * bool * Saturation.Stats.t
(** Certain answers through the chase: (normalized tuples, exact =
    saturated, kernel stats). *)

val rewriting_arm :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?budget:Rewriting.Rewrite.budget ->
  Theory.t ->
  Fact_set.t ->
  Cq.t ->
  Term.t list list * bool * Saturation.Stats.t
(** Certain answers through UCQ rewriting: exact iff the rewriting
    completed (tuples are [[]] otherwise). Callers must ensure
    {!Checkers.rewriter_compatible} — a [Complete] outcome on a theory
    with skipped rules is not a certificate. *)

val normalize_tuples : Term.t list list -> Term.t list list
(** Sort and deduplicate answer tuples — the comparison format every arm
    returns. *)

val equal_answers : Term.t list list -> Term.t list list -> bool

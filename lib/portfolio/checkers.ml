open Logic

(* ------------------------------------------------------------------ *)
(* Loop-restricted rules (conservative core of Asuncion et al.)       *)
(* ------------------------------------------------------------------ *)

type loop_verdict = {
  loop_restricted : bool;
  cyclic_rules : string list;
  offenders : string list;
}

let rels_of atoms =
  List.fold_left
    (fun acc a -> Symbol.Set.add (Atom.rel a) acc)
    Symbol.Set.empty atoms

(* edge i -> j: a head relation of rule i feeds rule j's body, or rule j
   has domain variables and rule i invents terms (the invented terms
   enlarge the active domain rule j quantifies over). *)
let dependency_edges rules =
  let n = Array.length rules in
  let head_rels = Array.map (fun r -> rels_of (Tgd.head r)) rules in
  let body_rels = Array.map (fun r -> rels_of (Tgd.body r)) rules in
  let edges = Array.make n [] in
  for i = n - 1 downto 0 do
    let inventing = Tgd.exist_vars rules.(i) <> [] in
    for j = n - 1 downto 0 do
      let feeds =
        Symbol.Set.exists
          (fun s -> Symbol.Set.mem s body_rels.(j))
          head_rels.(i)
      in
      let feeds_domain = inventing && Tgd.dom_vars rules.(j) <> [] in
      if feeds || feeds_domain then edges.(i) <- j :: edges.(i)
    done
  done;
  edges

(* Tarjan SCC (rule sets are small; recursion depth = |rules|). *)
let sccs edges =
  let n = Array.length edges in
  let index = Array.make n (-1)
  and lowlink = Array.make n 0
  and on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and components = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      edges.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  !components

let is_linear_datalog r = Tgd.is_linear r && Tgd.is_datalog r

let loop_restricted t =
  let rules = Array.of_list (Theory.rules t) in
  let edges = dependency_edges rules in
  let cyclic = Array.make (Array.length rules) false in
  List.iter
    (fun component ->
      match component with
      | [ v ] -> if List.mem v edges.(v) then cyclic.(v) <- true
      | vs -> List.iter (fun v -> cyclic.(v) <- true) vs)
    (sccs edges);
  let label i r =
    match Tgd.name r with "" -> Printf.sprintf "rule#%d" i | n -> n
  in
  let cyclic_rules = ref [] and offenders = ref [] in
  Array.iteri
    (fun i r ->
      if cyclic.(i) then begin
        cyclic_rules := label i r :: !cyclic_rules;
        if not (is_linear_datalog r) then offenders := label i r :: !offenders
      end)
    rules;
  {
    loop_restricted = !offenders = [];
    cyclic_rules = List.rev !cyclic_rules;
    offenders = List.rev !offenders;
  }

let pp_loop_verdict ppf v =
  if v.loop_restricted then
    Fmt.pf ppf "loop-restricted (cyclic rules: %s)"
      (match v.cyclic_rules with
      | [] -> "none"
      | names -> String.concat ", " names)
  else
    Fmt.pf ppf "not loop-restricted (offending cyclic rules: %s)"
      (String.concat ", " v.offenders)

(* ------------------------------------------------------------------ *)
(* Rewriter compatibility                                             *)
(* ------------------------------------------------------------------ *)

let rewriter_compatible t =
  List.for_all
    (fun r -> Tgd.body r <> [] && Tgd.dom_vars r = [])
    (Theory.rules t)

(* ------------------------------------------------------------------ *)
(* T_d / T_d^K shape detection                                        *)
(* ------------------------------------------------------------------ *)

type td_shape = Td | Tdk of int

let max_tdk = 8

(* A rule rendering invariant under variable renaming: variables are
   relabeled in first-occurrence order across dom-vars, body, head. *)
let canonical_rule_key r =
  let tbl = Hashtbl.create 8 and counter = ref 0 in
  let rename t =
    match t.Term.view with
    | Term.Var _ -> (
        match Hashtbl.find_opt tbl t.Term.id with
        | Some t' -> t'
        | None ->
            let t' = Term.var (Printf.sprintf "c%d" !counter) in
            incr counter;
            Hashtbl.add tbl t.Term.id t';
            t')
    | _ -> t
  in
  let pp_atoms = Fmt.list ~sep:(Fmt.any ",") Atom.pp in
  let dv = List.map rename (Tgd.dom_vars r) in
  let body = List.map (Atom.map_args rename) (Tgd.body r) in
  let head = List.map (Atom.map_args rename) (Tgd.head r) in
  Fmt.str "%a|%a|%a"
    (Fmt.list ~sep:(Fmt.any ",") Term.pp)
    dv pp_atoms body pp_atoms head

let theory_key t =
  List.sort String.compare (List.map canonical_rule_key (Theory.rules t))

let zoo_keys =
  lazy
    ((theory_key Theories.Zoo.t_d, Td)
    :: List.init (max_tdk - 1) (fun i ->
           let k = i + 2 in
           (theory_key (Theories.Zoo.t_dk k), Tdk k)))

let td_shape t =
  let key = theory_key t in
  List.assoc_opt key (Lazy.force zoo_keys)

(* ------------------------------------------------------------------ *)
(* BDD probe                                                          *)
(* ------------------------------------------------------------------ *)

type probe = {
  certified : bool;
  atomic : Rewriting.Bdd.probe list;
  uniform_bound : int option;
}

let atomic_queries t =
  let rels =
    Symbol.Set.elements (Theory.signature t)
    |> List.filter (fun s -> Symbol.arity s >= 1)
    |> List.sort (fun a b -> String.compare (Symbol.name a) (Symbol.name b))
  in
  List.map
    (fun s ->
      let vars =
        List.init (Symbol.arity s) (fun i ->
            Term.var (Printf.sprintf "p%d" i))
      in
      Cq.make ~free:vars [ Atom.make s vars ])
    rels

let probe_budget =
  {
    Rewriting.Rewrite.max_disjuncts = 120;
    max_atoms_per_disjunct = 10;
    max_steps = 400;
  }

let bdd_probe ?pool ?guard ?(budget = probe_budget) t =
  let atomic = Rewriting.Bdd.probe ?guard ~budget t (atomic_queries t) in
  let certified =
    rewriter_compatible t
    && atomic <> []
    && List.for_all
         (fun p ->
           p.Rewriting.Bdd.result.Rewriting.Rewrite.outcome
           = Rewriting.Rewrite.Complete)
         atomic
  in
  let instances =
    List.filter
      (fun d -> not (Fact_set.is_empty d))
      [
        Theories.Generators.random_instance_for ~seed:11 t ~nodes:4 ~facts:6;
        Theories.Generators.random_instance_for ~seed:23 t ~nodes:6 ~facts:10;
      ]
  in
  let uniform_bound =
    match instances with
    | [] -> None
    | _ ->
        fst
          (Chase.Termination.uniform_bound_on ?pool ?guard ~max_c:8
             ~max_atoms:20_000 t instances)
  in
  { certified; atomic; uniform_bound }

(* ------------------------------------------------------------------ *)
(* The combined report                                                *)
(* ------------------------------------------------------------------ *)

type report = {
  classes : Theories.Classes.report;
  loops : loop_verdict;
  rewriter_ok : bool;
  td : td_shape option;
  probe : probe option;
  timings : (string * float) list;
}

let timed name f timings =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  timings := (name, Unix.gettimeofday () -. t0) :: !timings;
  v

let classify ?pool ?guard ?(probe = false) t =
  let timings = ref [] in
  let classes = timed "classes" (fun () -> Theories.Classes.classify t) timings in
  let loops = timed "loop-restricted" (fun () -> loop_restricted t) timings in
  let rewriter_ok =
    timed "rewriter-compat" (fun () -> rewriter_compatible t) timings
  in
  let td = timed "td-shape" (fun () -> td_shape t) timings in
  let probe =
    if probe then
      Some (timed "bdd-probe" (fun () -> bdd_probe ?pool ?guard t) timings)
    else None
  in
  { classes; loops; rewriter_ok; td; probe; timings = List.rev !timings }

let pp_report ppf r =
  Fmt.pf ppf "%a@." Theories.Classes.pp_report r.classes;
  Fmt.pf ppf "%a@." pp_loop_verdict r.loops;
  Fmt.pf ppf "piece-rewriter compatible: %b@." r.rewriter_ok;
  (match r.td with
  | Some Td -> Fmt.pf ppf "shape: T_d (levels G, R)@."
  | Some (Tdk k) -> Fmt.pf ppf "shape: T_d^%d (levels I1..I%d)@." k k
  | None -> Fmt.pf ppf "shape: no marked-process match@.");
  match r.probe with
  | None -> ()
  | Some p ->
      Fmt.pf ppf
        "bdd probe: %s (%d/%d atomic queries complete, uniform bound %s)@."
        (if p.certified then "atomic queries certified" else "inconclusive")
        (List.length
           (List.filter
              (fun pr ->
                pr.Rewriting.Bdd.result.Rewriting.Rewrite.outcome
                = Rewriting.Rewrite.Complete)
              p.atomic))
        (List.length p.atomic)
        (match p.uniform_bound with
        | Some c -> string_of_int c
        | None -> "none")

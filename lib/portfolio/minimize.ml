open Logic

type triple = { theory : Theory.t; instance : Fact_set.t; query : Cq.t }

let size t =
  ( List.length (Theory.rules t.theory),
    Fact_set.cardinal t.instance,
    Cq.size t.query )

(* One left-to-right pass: try dropping each element, committing drops
   that keep [test] true. Returns the surviving elements and whether
   anything was dropped. *)
let shrink_pass elems test =
  let changed = ref false in
  let rec go kept = function
    | [] -> List.rev kept
    | x :: rest ->
        if test (List.rev_append kept rest) then begin
          changed := true;
          go kept rest
        end
        else go (x :: kept) rest
  in
  let survivors = go [] elems in
  (survivors, !changed)

let minimize ?(max_rounds = 16) ~keep t0 =
  let ok theory instance query =
    try keep theory instance query with _ -> false
  in
  if not (ok t0.theory t0.instance t0.query) then t0
  else
    let current = ref t0 in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds < max_rounds do
      changed := false;
      incr rounds;
      (* rules *)
      let rules, c =
        shrink_pass
          (Theory.rules !current.theory)
          (fun rules ->
            rules <> []
            &&
            let theory = Theory.make ~name:(Theory.name !current.theory) rules in
            ok theory !current.instance !current.query)
      in
      if c then begin
        changed := true;
        current :=
          {
            !current with
            theory = Theory.make ~name:(Theory.name !current.theory) rules;
          }
      end;
      (* facts *)
      let facts, c =
        shrink_pass
          (Fact_set.atoms !current.instance)
          (fun atoms ->
            ok !current.theory (Fact_set.of_list atoms) !current.query)
      in
      if c then begin
        changed := true;
        current := { !current with instance = Fact_set.of_list facts }
      end;
      (* query atoms: a drop that unbinds an answer variable makes
         [Cq.make] raise inside [ok]'s try — counted as not keeping *)
      let atoms, c =
        shrink_pass
          (Cq.atoms !current.query)
          (fun atoms ->
            atoms <> []
            &&
            try
              let query = Cq.make ~free:(Cq.free !current.query) atoms in
              ok !current.theory !current.instance query
            with Invalid_argument _ -> false)
      in
      if c then begin
        changed := true;
        current :=
          {
            !current with
            query = Cq.make ~free:(Cq.free !current.query) atoms;
          }
      end
    done;
    !current

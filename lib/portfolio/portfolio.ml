module Checkers = Checkers
module Strategy = Strategy
module Minimize = Minimize
module Repro = Repro
module Fuzz = Fuzz

type strategy = Strategy.strategy =
  | Ucq_rewriting
  | Terminating_chase
  | Marked_process of int
  | Budgeted_chase

let plan = Strategy.plan
let execute = Strategy.execute

(** The differential fuzzing campaign: random theories, every applicable
    engine per sample, certain-answer cross-checks, and auto-minimized
    [.repro] counterexamples on disagreement.

    Each sample is deterministic in [(seed, index)]: the theory family
    cycles through the {!Theories.Generators} emitters, the instance and
    query are drawn from the same per-sample state, and samples run
    sequentially — a campaign at seed [s] is replayable fact-for-fact at
    any [-j] level (the pool only parallelizes inside the engines, whose
    results are pool-size independent).

    Three arms run on every sample:

    {ul
    {- the chase ({!Strategy.chase_arm}) — exact iff saturated;}
    {- UCQ rewriting ({!Strategy.rewriting_arm}) — only on
       {!Checkers.rewriter_compatible} theories, exact iff [Complete];}
    {- the portfolio ({!Strategy.execute} on {!Strategy.plan}) — exact
       per its own run-time validation.}}

    Two or more {e exact} arms must agree on the normalized certain
    answers; a mismatch is a disagreement, delta-debugged by
    {!Minimize.minimize} (the kept property: the arms still disagree)
    and written to a [.repro] file when a directory is given. An arm
    that raises is likewise a failure, minimized under "still raises". *)

open Logic

type family =
  | Linear
  | Datalog
  | Guarded
  | Sticky
  | Loop_restricted
  | Mixed  (** union of a linear and a Datalog theory *)

val family_name : family -> string

type sample = {
  index : int;
  family : family;
  triple : Minimize.triple;
}

val sample : seed:int -> int -> sample
(** The [index]-th sample of campaign [seed]; deterministic. *)

type arm = {
  arm : string;
  answers : Term.t list list;
  exact : bool;
}

type failure = {
  sample : sample;
  arms : arm list;  (** empty when the failure is a raised exception *)
  error : string option;  (** the exception, when one was raised *)
  minimized : Minimize.triple;
  repro_path : string option;  (** where the [.repro] was written *)
}

val run_sample :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  sample ->
  arm list * Strategy.plan
(** The three arms (in order chase, rewriting when applicable,
    portfolio) and the plan the portfolio chose. *)

type outcome = {
  seed : int;
  samples : int;  (** samples actually run (a guard trip stops early) *)
  agreed : int;
  single_arm : int;  (** fewer than two exact arms: nothing to check *)
  failures : failure list;
  by_family : (string * int) list;
  by_strategy : (string * int) list;
      (** how often {!Strategy.plan} chose each strategy *)
  wall_s : float;
}

val write_repro :
  dir:string option ->
  seed:int ->
  failure ->
  (string * string) list ->
  failure
(** Write the failure's minimized triple to
    [dir/fuzz-seed<seed>-sample<i>.repro] (creating [dir] if needed) and
    return the failure with [repro_path] set; a [None] directory is a
    no-op. The extra metadata is appended after the standard
    seed/sample/family keys. Exposed for the standalone campaign tool
    and the tests. *)

val campaign :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?dir:string ->
  seed:int ->
  count:int ->
  unit ->
  outcome
(** Run samples [0 .. count-1]. With [~dir], each failure's minimized
    counterexample is written to [dir/fuzz-seed<seed>-sample<i>.repro]
    (the directory is created if missing). The guard is consulted
    between samples; on a trip the campaign stops with the samples
    completed so far. *)

val pp_outcome : outcome Fmt.t

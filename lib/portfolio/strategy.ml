open Logic

type strategy =
  | Ucq_rewriting
  | Terminating_chase
  | Marked_process of int
  | Budgeted_chase

let strategy_name = function
  | Ucq_rewriting -> "ucq-rewriting"
  | Terminating_chase -> "terminating-chase"
  | Marked_process k -> Printf.sprintf "marked-process[%d]" k
  | Budgeted_chase -> "budgeted-chase"

let pp_strategy ppf s = Fmt.string ppf (strategy_name s)

type plan = {
  strategy : strategy;
  reasons : string list;
  report : Checkers.report;
}

let plan ?pool ?guard ?probe t =
  let report = Checkers.classify ?pool ?guard ?probe t in
  let classes = report.Checkers.classes in
  match report.Checkers.td with
  | Some Checkers.Td ->
      {
        strategy = Marked_process 2;
        reasons = [ "matches T_d up to variable renaming" ];
        report;
      }
  | Some (Checkers.Tdk k) ->
      {
        strategy = Marked_process k;
        reasons = [ Printf.sprintf "matches T_d^%d up to variable renaming" k ];
        report;
      }
  | None ->
      let fus_reasons =
        List.filter_map
          (fun (cond, why) -> if cond then Some why else None)
          [
            (classes.Theories.Classes.linear, "linear");
            (classes.Theories.Classes.sticky, "sticky");
            ( report.Checkers.loops.Checkers.loop_restricted,
              "loop-restricted" );
            ( (match report.Checkers.probe with
              | Some p -> p.Checkers.certified
              | None -> false),
              "atomic queries probe-certified" );
          ]
      in
      if report.Checkers.rewriter_ok && fus_reasons <> [] then
        { strategy = Ucq_rewriting; reasons = fus_reasons; report }
      else
        let chase_reasons =
          List.filter_map
            (fun (cond, why) -> if cond then Some why else None)
            [
              (classes.Theories.Classes.datalog, "datalog");
              (classes.Theories.Classes.weakly_acyclic, "weakly acyclic");
            ]
        in
        if chase_reasons <> [] then
          { strategy = Terminating_chase; reasons = chase_reasons; report }
        else
          {
            strategy = Budgeted_chase;
            reasons = [ "no class evidence; chase under budget" ];
            report;
          }

(* ------------------------------------------------------------------ *)
(* Arms                                                               *)
(* ------------------------------------------------------------------ *)

let normalize_tuples ts = List.sort_uniq (List.compare Term.compare) ts

let equal_answers a b =
  List.compare (List.compare Term.compare) a b = 0

let empty_stats =
  {
    Saturation.Stats.rounds = 0;
    totals = Saturation.Stats.zero;
    wall_s = 0.;
    per_round = [||];
  }

let chase_arm ?pool ?guard ?(max_depth = 40) ?(max_atoms = 200_000) t d q =
  let run = Chase.Engine.run ?pool ?guard ~max_depth ~max_atoms t d in
  let model = Chase.Engine.result run in
  let tuples, complete =
    if Cq.free q = [] then
      ((if Eval.boolean_holds q model then [ [] ] else []), true)
    else
      let dom = Fact_set.domain d in
      let keep ts =
        List.filter (List.for_all (fun tm -> Term.Set.mem tm dom)) ts
      in
      match Eval.answers_outcome ?guard q model with
      | Guard.Complete ts -> (keep ts, true)
      | Guard.Exhausted { partial; _ } ->
          (* sound but possibly incomplete extraction *)
          (keep partial, false)
  in
  ( normalize_tuples tuples,
    complete && Chase.Engine.saturated run,
    Chase.Engine.kernel_stats run )

let rewriting_arm ?pool ?guard ?budget t d q =
  let r = Rewriting.Rewrite.rewrite ?pool ?guard ?budget t q in
  let complete = r.Rewriting.Rewrite.outcome = Rewriting.Rewrite.Complete in
  if not complete then ([], false, r.Rewriting.Rewrite.kernel_stats)
  else if Cq.free q = [] then
    ( (if Eval.ucq_boolean_holds r.Rewriting.Rewrite.ucq d then [ [] ] else []),
      true,
      r.Rewriting.Rewrite.kernel_stats )
  else
    match Eval.ucq_answers_outcome ?guard r.Rewriting.Rewrite.ucq d with
    | Guard.Complete tuples ->
        (normalize_tuples tuples, true, r.Rewriting.Rewrite.kernel_stats)
    | Guard.Exhausted { partial; _ } ->
        (* sound but possibly incomplete: report inexact so the
           portfolio's validation layer does not certify the answer *)
        (normalize_tuples partial, false, r.Rewriting.Rewrite.kernel_stats)

(* The marked process answers queries over the level signature of
   T_d/T_d^K. Returns [None] when the query falls outside its contract
   (foreign relations, disconnected body) — the caller then falls back. *)
let marked_arm ?guard ~levels d q =
  let level_syms =
    if levels = 2 then Symbol.Set.of_list [ Theories.Zoo.g2; Theories.Zoo.r2 ]
    else
      Symbol.Set.of_list (List.init levels (fun i -> Theories.Zoo.i_k (i + 1)))
  in
  let q_sig =
    List.fold_left
      (fun acc a -> Symbol.Set.add (Atom.rel a) acc)
      Symbol.Set.empty (Cq.atoms q)
  in
  if not (Symbol.Set.subset q_sig level_syms) then None
  else if Cq.free q = [] then
    (* Process.boolean_always_true: the (loop) rule makes every boolean
       CQ over the level signature hold on every instance. *)
    Some ([ [] ], true, empty_stats)
  else if not (Cq.is_connected q) then None
  else
    let result =
      if levels = 2 then Marked.Process.rewrite_td ?guard q
      else Marked.Process.rewrite_tdk ?guard levels q
    in
    if not result.Marked.Process.complete then
      Some ([], false, result.Marked.Process.kernel_stats)
    else
      let dom = Term.Set.elements (Fact_set.domain d) in
      let width = List.length (Cq.free q) in
      let n = List.length dom in
      let count = int_of_float (float_of_int n ** float_of_int width) in
      if count > 20_000 then None
      else
        let rec tuples_of k =
          if k = 0 then [ [] ]
          else
            let rest = tuples_of (k - 1) in
            List.concat_map (fun c -> List.map (fun tl -> c :: tl) rest) dom
        in
        let tuples =
          List.filter
            (fun tuple -> Marked.Process.holds_via_rewriting result d tuple)
            (tuples_of width)
        in
        Some (normalize_tuples tuples, true, result.Marked.Process.kernel_stats)

(* ------------------------------------------------------------------ *)
(* Execution with run-time validation and fallback                    *)
(* ------------------------------------------------------------------ *)

type answers = {
  tuples : Term.t list list;
  exact : bool;
  used : strategy;
  fell_back : bool;
  attempts : (string * Saturation.Stats.t) list;
}

let execute ?pool ?guard ?budget ?max_depth ?max_atoms plan t d q =
  let attempts = ref [] in
  let record name stats = attempts := (name, stats) :: !attempts in
  let finish ~used ~fell_back (tuples, exact, stats) =
    record (strategy_name used) stats;
    { tuples; exact; used; fell_back; attempts = List.rev !attempts }
  in
  let chase_fallback ~fell_back () =
    finish ~used:Budgeted_chase ~fell_back
      (chase_arm ?pool ?guard ?max_depth ?max_atoms t d q)
  in
  match plan.strategy with
  | Ucq_rewriting -> (
      match rewriting_arm ?pool ?guard ?budget t d q with
      | tuples, true, stats ->
          finish ~used:Ucq_rewriting ~fell_back:false (tuples, true, stats)
      | _, false, stats ->
          record (strategy_name Ucq_rewriting) stats;
          chase_fallback ~fell_back:true ())
  | Marked_process k -> (
      match marked_arm ?guard ~levels:k d q with
      | Some ((_, true, _) as result) ->
          finish ~used:(Marked_process k) ~fell_back:false result
      | Some (_, false, stats) ->
          record (strategy_name (Marked_process k)) stats;
          chase_fallback ~fell_back:true ()
      | None -> chase_fallback ~fell_back:true ())
  | Terminating_chase ->
      finish ~used:Terminating_chase ~fell_back:false
        (chase_arm ?pool ?guard ?max_depth ?max_atoms t d q)
  | Budgeted_chase -> chase_fallback ~fell_back:false ()

open Logic

type family = Linear | Datalog | Guarded | Sticky | Loop_restricted | Mixed

let families = [| Linear; Datalog; Guarded; Sticky; Loop_restricted; Mixed |]

let family_name = function
  | Linear -> "linear"
  | Datalog -> "datalog"
  | Guarded -> "guarded"
  | Sticky -> "sticky"
  | Loop_restricted -> "loop-restricted"
  | Mixed -> "mixed"

type sample = {
  index : int;
  family : family;
  triple : Minimize.triple;
}

(* Arm budgets: small enough that a 500-sample campaign stays fast,
   large enough that Datalog chases saturate and linear/sticky
   rewritings complete on these sizes. *)
let chase_depth = 15
let chase_atoms = 8_000

let rewrite_budget =
  {
    Rewriting.Rewrite.max_disjuncts = 60;
    max_atoms_per_disjunct = 10;
    max_steps = 250;
  }

let random_query state theory =
  let rels =
    Symbol.Set.elements
      (Symbol.Set.filter (fun s -> Symbol.arity s = 2) (Theory.signature theory))
    |> List.sort (fun a b -> String.compare (Symbol.name a) (Symbol.name b))
  in
  let vars = [| Term.var "x"; Term.var "y"; Term.var "z"; Term.var "w" |] in
  let pick_var () = vars.(Random.State.int state (Array.length vars)) in
  let pick_rel () = List.nth rels (Random.State.int state (List.length rels)) in
  let n_atoms = 1 + Random.State.int state 2 in
  let atoms =
    List.init n_atoms (fun _ ->
        Atom.make (pick_rel ()) [ pick_var (); pick_var () ])
  in
  let body_vars =
    List.concat_map Atom.vars atoms |> List.sort_uniq Term.compare
  in
  let boolean = Random.State.int state 5 = 0 in
  let free =
    if boolean then []
    else [ List.nth body_vars (Random.State.int state (List.length body_vars)) ]
  in
  Cq.make ~free atoms

let sample ~seed index =
  let state = Random.State.make [| 0x5eed; seed; index |] in
  let family = families.(index mod Array.length families) in
  let sub = Random.State.int state 1_000_000 in
  let rels = 2 + Random.State.int state 2 in
  let rules = 2 + Random.State.int state 3 in
  let theory =
    match family with
    | Linear -> Theories.Generators.random_linear_binary ~seed:sub ~rels ~rules
    | Datalog -> Theories.Generators.random_datalog_binary ~seed:sub ~rels ~rules
    | Guarded -> Theories.Generators.random_guarded ~seed:sub ~rels ~rules
    | Sticky -> Theories.Generators.random_sticky ~seed:sub ~rels ~rules
    | Loop_restricted ->
        Theories.Generators.random_loop_restricted ~seed:sub ~rels ~rules
    | Mixed ->
        Theory.make ~name:(Printf.sprintf "mixed[%d]" sub)
          (Theory.rules
             (Theories.Generators.random_linear_binary ~seed:sub ~rels
                ~rules:(max 1 (rules / 2)))
          @ Theory.rules
              (Theories.Generators.random_datalog_binary ~seed:(sub + 1) ~rels
                 ~rules:(max 1 (rules - (rules / 2)))))
  in
  let nodes = 3 + Random.State.int state 3 in
  let facts = 4 + Random.State.int state 5 in
  let instance =
    Theories.Generators.random_instance_for ~seed:(sub + 13) theory ~nodes
      ~facts
  in
  let query = random_query state theory in
  { index; family; triple = { Minimize.theory; instance; query } }

(* ------------------------------------------------------------------ *)
(* Arms and cross-checking                                            *)
(* ------------------------------------------------------------------ *)

type arm = {
  arm : string;
  answers : Term.t list list;
  exact : bool;
}

let arms_of ?pool ?guard { Minimize.theory; instance; query } plan =
  let chase_tuples, chase_exact, _ =
    Strategy.chase_arm ?pool ?guard ~max_depth:chase_depth
      ~max_atoms:chase_atoms theory instance query
  in
  let chase = { arm = "chase"; answers = chase_tuples; exact = chase_exact } in
  let rewriting =
    if Checkers.rewriter_compatible theory then
      let tuples, exact, _ =
        Strategy.rewriting_arm ?pool ?guard ~budget:rewrite_budget theory
          instance query
      in
      [ { arm = "rewriting"; answers = tuples; exact } ]
    else []
  in
  let portfolio =
    let a =
      Strategy.execute ?pool ?guard ~budget:rewrite_budget
        ~max_depth:chase_depth ~max_atoms:chase_atoms plan theory instance
        query
    in
    {
      arm = Printf.sprintf "portfolio:%s" (Strategy.strategy_name a.Strategy.used);
      answers = a.Strategy.tuples;
      exact = a.Strategy.exact;
    }
  in
  (chase :: rewriting) @ [ portfolio ]

let run_sample ?pool ?guard s =
  let plan = Strategy.plan ?pool ?guard s.triple.Minimize.theory in
  (arms_of ?pool ?guard s.triple plan, plan)

(* [`Agree], [`Single] (nothing to cross-check), or the disagreeing
   exact arms. *)
let verdict arms =
  match List.filter (fun a -> a.exact) arms with
  | [] | [ _ ] -> `Single
  | a :: rest ->
      if List.for_all (fun b -> Strategy.equal_answers a.answers b.answers) rest
      then `Agree
      else `Disagree

(* The minimizer's kept property: the triple still shows >= 2 exact,
   disagreeing arms (engines re-run with the campaign budgets). *)
let still_disagrees ?pool theory instance query =
  let triple = { Minimize.theory; instance; query } in
  let plan = Strategy.plan ?pool theory in
  match verdict (arms_of ?pool triple plan) with
  | `Disagree -> true
  | `Agree | `Single -> false

let still_raises ?pool theory instance query =
  let triple = { Minimize.theory; instance; query } in
  match
    let plan = Strategy.plan ?pool theory in
    arms_of ?pool triple plan
  with
  | _ -> false
  | exception _ -> true

type failure = {
  sample : sample;
  arms : arm list;
  error : string option;
  minimized : Minimize.triple;
  repro_path : string option;
}

type outcome = {
  seed : int;
  samples : int;
  agreed : int;
  single_arm : int;
  failures : failure list;
  by_family : (string * int) list;
  by_strategy : (string * int) list;
  wall_s : float;
}

let write_repro ~dir ~seed failure extra_meta =
  match dir with
  | None -> failure
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let path =
        Filename.concat dir
          (Printf.sprintf "fuzz-seed%d-sample%d.repro" seed
             failure.sample.index)
      in
      let meta =
        [
          ("seed", string_of_int seed);
          ("sample", string_of_int failure.sample.index);
          ("family", family_name failure.sample.family);
        ]
        @ extra_meta
        @ List.map
            (fun a ->
              ( "arm " ^ a.arm,
                Printf.sprintf "%s, %d answers"
                  (if a.exact then "exact" else "inexact")
                  (List.length a.answers) ))
            failure.arms
      in
      Repro.write ~path { Repro.triple = failure.minimized; meta };
      { failure with repro_path = Some path }

let campaign ?pool ?guard ?dir ~seed ~count () =
  let t0 = Unix.gettimeofday () in
  let bump table key =
    let n = Option.value ~default:0 (Hashtbl.find_opt table key) in
    Hashtbl.replace table key (n + 1)
  in
  let by_family = Hashtbl.create 8 and by_strategy = Hashtbl.create 8 in
  let agreed = ref 0 and single = ref 0 and ran = ref 0 in
  let failures = ref [] in
  (try
     for index = 0 to count - 1 do
       (match guard with
       | Some g when Guard.status g <> None -> raise Exit
       | _ -> ());
       let s = sample ~seed index in
       incr ran;
       bump by_family (family_name s.family);
       match run_sample ?pool ?guard s with
       | arms, plan -> (
           bump by_strategy (Strategy.strategy_name plan.Strategy.strategy);
           match verdict arms with
           | `Agree -> incr agreed
           | `Single -> incr single
           | `Disagree ->
               let minimized =
                 Minimize.minimize
                   ~keep:(fun th d q -> still_disagrees ?pool th d q)
                   s.triple
               in
               let failure =
                 {
                   sample = s;
                   arms;
                   error = None;
                   minimized;
                   repro_path = None;
                 }
               in
               failures :=
                 write_repro ~dir ~seed failure
                   [ ("kind", "disagreement") ]
                 :: !failures)
       | exception Exit -> raise Exit
       | exception exn ->
           let minimized =
             Minimize.minimize
               ~keep:(fun th d q -> still_raises ?pool th d q)
               s.triple
           in
           let failure =
             {
               sample = s;
               arms = [];
               error = Some (Printexc.to_string exn);
               minimized;
               repro_path = None;
             }
           in
           failures :=
             write_repro ~dir ~seed failure
               [ ("kind", "exception"); ("error", Printexc.to_string exn) ]
             :: !failures
     done
   with Exit -> ());
  let sorted table =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    seed;
    samples = !ran;
    agreed = !agreed;
    single_arm = !single;
    failures = List.rev !failures;
    by_family = sorted by_family;
    by_strategy = sorted by_strategy;
    wall_s = Unix.gettimeofday () -. t0;
  }

let pp_outcome ppf o =
  Fmt.pf ppf
    "campaign seed %d: %d samples in %.2fs — %d agreed, %d single-arm, %d \
     failures@."
    o.seed o.samples o.wall_s o.agreed o.single_arm (List.length o.failures);
  let pp_counts name counts =
    Fmt.pf ppf "%s: %s@." name
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) counts))
  in
  pp_counts "families" o.by_family;
  pp_counts "strategies" o.by_strategy;
  List.iter
    (fun f ->
      let rules, facts, atoms = Minimize.size f.minimized in
      Fmt.pf ppf
        "FAILURE sample %d (%s)%s: minimized to %d rules, %d facts, %d \
         query atoms%s@."
        f.sample.index
        (family_name f.sample.family)
        (match f.error with Some e -> " raised " ^ e | None -> "")
        rules facts atoms
        (match f.repro_path with
        | Some p -> " — repro at " ^ p
        | None -> ""))
    o.failures

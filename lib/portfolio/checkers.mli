(** Class checkers beyond {!Theories.Classes}: the routing evidence the
    portfolio selector ({!Strategy.plan}) weighs.

    Three kinds of evidence are produced here:

    {ul
    {- {e loop-restricted rules} (Asuncion et al., "Loop restricted
       existential rules"): a conservative syntactic core — every cycle of
       the rule-dependency graph must consist solely of linear Datalog
       rules — under which backward piece-rewriting is size-non-increasing
       around cycles and strictly descends the condensation otherwise, so
       the UCQ rewriting of every query is finite (the theory is BDD);}
    {- a {e BDD probe} reusing the existing machinery: per-relation atomic
       queries through {!Rewriting.Bdd.probe} (a complete rewriting is a
       genuine per-query certificate) and
       {!Chase.Termination.uniform_bound_on} over a small random instance
       family (a bounded [c_{T,D}] series is BDD-consistent evidence,
       Observation 27);}
    {- {e shape detection} for the marked-query process: does the theory
       coincide, up to renaming of rule variables, with [T_d] or [T_d^K]
       (Section 10)? The zoo symbols themselves ([R]/[G], [I1..IK]) must
       be used — the process operates on those levels.}}

    None of these checks is trusted blindly by the selector:
    {!Strategy.execute} re-validates the chosen engine's answer at run
    time (a rewriting is used only when [Complete], a chase only when
    saturated), so an over-eager checker costs a fallback, never a wrong
    answer. *)

open Logic

(** {1 Loop-restricted rules} *)

type loop_verdict = {
  loop_restricted : bool;
  cyclic_rules : string list;
      (** names of rules lying on some cycle of the rule-dependency
          graph, in rule order *)
  offenders : string list;
      (** cyclic rules that are not linear Datalog — the witnesses that
          the conservative loop-restriction fails *)
}

val loop_restricted : Theory.t -> loop_verdict
(** The rule-dependency graph has an edge [rho -> rho'] when some head
    relation of [rho] occurs in the body of [rho'], and (conservatively)
    from every term-inventing rule into every rule with domain variables
    (invented terms enlarge the active domain those variables range
    over). The verdict holds when every rule on a cycle is linear Datalog
    (single body atom, no existential or domain variables): rewriting
    backward through such a rule replaces one atom by one atom, so
    disjunct size is bounded along cycles and every rewriting path
    descends the acyclic condensation after finitely many steps. *)

val pp_loop_verdict : loop_verdict Fmt.t

(** {1 Rewriter compatibility} *)

val rewriter_compatible : Theory.t -> bool
(** The piece rewriter silently skips rules with empty bodies or domain
    variables ({!Rewriting.Rewrite.rewrite}), so a [Complete] outcome is a
    genuine certificate only when no rule is of that shape. The selector
    never routes to UCQ rewriting without this. *)

(** {1 Marked-process shape} *)

type td_shape =
  | Td  (** [T_d] itself: levels [G; R] (Definition 45) *)
  | Tdk of int  (** [T_d^K]: levels [I1 .. IK] *)

val td_shape : Theory.t -> td_shape option
(** Does the theory equal {!Theories.Zoo.t_d} (resp. [t_dk K], [K] up to
    {!max_tdk}) up to renaming of rule variables and reordering of rules?
    Relation symbols are compared by name — the marked process is defined
    on the zoo's own level symbols. *)

val max_tdk : int
(** Largest [K] that {!td_shape} tests for. *)

(** {1 BDD probe} *)

type probe = {
  certified : bool;
      (** every per-relation atomic query has a [Complete] rewriting (and
          the theory is {!rewriter_compatible}) — per-query BDD
          certificates covering the atomic queries *)
  atomic : Rewriting.Bdd.probe list;
      (** the per-query rewriting outcomes, in signature order *)
  uniform_bound : int option;
      (** max [c_{T,D}] over the probe instance family when every member
          succeeded within budget ([None]: family empty or some budget
          tripped) — the Observation 27 series *)
}

val bdd_probe :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?budget:Rewriting.Rewrite.budget ->
  Theory.t ->
  probe
(** Atomic queries [(x1..xn) :- R(x1..xn)] for every signature relation,
    each rewritten under a small budget; plus {!Chase.Termination.
    uniform_bound_on} over two seeded random instances of the theory's
    binary signature. Purely empirical: [certified = false] never refutes
    BDD, and [certified = true] certifies exactly the atomic queries. *)

(** {1 The combined report} *)

type report = {
  classes : Theories.Classes.report;
  loops : loop_verdict;
  rewriter_ok : bool;
  td : td_shape option;
  probe : probe option;  (** [None] unless probing was requested *)
  timings : (string * float) list;
      (** wall-clock seconds per checker, in execution order *)
}

val classify :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?probe:bool ->
  Theory.t ->
  report
(** Run every checker ([probe] defaults to [false] — the BDD probe runs
    chases and rewritings, the rest is linear-time syntax). *)

val pp_report : report Fmt.t

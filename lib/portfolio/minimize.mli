(** Counterexample minimization: greedy delta-debugging of a
    (theory, instance, query) triple.

    Given a predicate [keep] that holds on the input (e.g. "two exact
    engines still disagree on this triple"), repeatedly drop rules,
    facts, and query atoms one at a time, committing every drop that
    preserves [keep], until a fixpoint: the result is 1-minimal — no
    single rule, fact, or query atom can be removed without losing the
    behaviour. [keep] is called on candidate triples only; a candidate
    that makes it raise counts as not keeping (e.g. a query atom drop
    that unbinds an answer variable). *)

open Logic

type triple = { theory : Theory.t; instance : Fact_set.t; query : Cq.t }

val minimize :
  ?max_rounds:int ->
  keep:(Theory.t -> Fact_set.t -> Cq.t -> bool) ->
  triple ->
  triple
(** [max_rounds] (default 16) bounds the outer fixpoint iterations; each
    round is one rule pass, one fact pass, and one query-atom pass. The
    input triple is returned unchanged when [keep] does not hold on it. *)

val size : triple -> int * int * int
(** (rules, facts, query atoms) — the minimization metric. *)

(** Frontier — the public API of this library.

    Everything the paper "A Journey to the Frontiers of Query
    Rewritability" (PODS 2022) talks about, executable:

    {ul
    {- terms / atoms / fact sets / CQs / TGDs and a concrete syntax
       ([module Logic], re-exported here as {!Term}, {!Atom}, ... );}
    {- the semi-oblivious Skolem chase with provenance ({!Chase});}
    {- cores and (core-)termination ({!Cores}, {!Termination});}
    {- UCQ rewriting by piece unifiers ({!Rewrite}) and BDD probing
       ({!Bdd_probe});}
    {- locality / bd-locality / distancing analyzers ({!Locality},
       {!Distancing});}
    {- the marked-query rewriting process for [T_d] and [T_d^K]
       ({!Marked_process});}
    {- the Appendix A normalization pipeline ({!Normal_form},
       {!Ancestors});}
    {- the paper's theory zoo and instance generators ({!Zoo},
       {!Instances}, {!Classes}).}}

    A three-line quickstart:
    {[
      let theory = Frontier.Parse.theory "Human(y) -> exists z. Mother(y,z)" in
      let d = Frontier.Parse.instance "Human(abel)" in
      let q = Frontier.Parse.query "(x) :- Mother(x, m)" in
      Frontier.certain_answers theory d q
    ]} *)

(** {1 Re-exported substrate} *)

module Term = Logic.Term
module Symbol = Logic.Symbol
module Atom = Logic.Atom
module Fact_set = Logic.Fact_set
module Gaifman = Logic.Gaifman
module Cq = Logic.Cq
module Ucq = Logic.Ucq
module Containment = Logic.Containment
module Tgd = Logic.Tgd
module Theory = Logic.Theory
module Homomorphism = Logic.Homomorphism
module Arena = Logic.Arena
module Render = Logic.Render

module Eval = Eval
(** The executable-plan evaluation layer: compiles CQs/UCQs into
    leapfrog-style worst-case-optimal joins over sorted per-column views
    and is the single entry point for answering a rewriting over data —
    {!certain_answers} and {!answer_via_rewriting} below run on it, as
    do the chase's trigger matching and the containment solver's
    existence probes (legacy engines stay behind [Eval.set_eval]). *)

module Chase_engine = Chase.Engine
module Entailment = Chase.Entailment
module Cores = Chase.Core_model
module Termination = Chase.Termination
module Chase_variants = Chase.Variants
module Explain = Chase.Explain

module Rewrite = Rewriting.Rewrite
module Piece_unifier = Rewriting.Piece_unifier
module Bdd_probe = Rewriting.Bdd
module Locality = Rewriting.Locality
module Distancing = Rewriting.Distancing
module Exercises = Rewriting.Exercises

module Marked_query = Marked.Marked_query
module Marked_process = Marked.Process
module Marked_rank = Marked.Rank

module Normal_form = Normalization.Normalize
module Ancestors = Normalization.Ancestry
module Crucial = Normalization.Crucial

module Zoo = Theories.Zoo
module Instances = Theories.Instances
module Classes = Theories.Classes

module Multiset = Order.Multiset
module Transform = Theories.Transform
module Generators = Theories.Generators

module Reasoner = Reasoner

module Portfolio = Portfolio
(** The strategy portfolio (ROADMAP item 5): class checkers beyond
    {!Classes} (loop-restricted rules, a BDD probe, [T_d]-shape
    detection), the [plan]/[execute] auto-selector over the chase,
    rewriting, and marked-process engines, and the differential fuzzing
    harness with counterexample minimization ([frontier portfolio] /
    [frontier fuzz] in the CLI). *)

module Pool = Parallel.Pool
(** Work-stealing domain pool; pass one to the [?pool] entry points below
    (and to {!Chase_engine.run}, {!Rewrite.rewrite}, ...) to fan the chase
    stages and rewriting saturation out over OCaml 5 domains. Results are
    independent of the domain count. *)

module Saturation = Saturation
(** The generic fixpoint kernel every saturation in this reproduction runs
    on: the chase stages, the rewriting worklist, the marked-query process,
    and the core/termination probes are all [Saturation.run] instances.
    Its {!Saturation.Stats} record is the uniform per-round counter format
    the CLI's [--stats] flags and the bench harness print. *)

module Guard = Guard
(** Process-wide resource governor: wall-clock deadlines, fuel accounts,
    live-heap ceilings, and cooperative cancellation, with a unified
    [(complete, partial)] outcome type. Pass one [Guard.t] to the [?guard]
    entry points below (and to {!Chase_engine.run}, {!Rewrite.rewrite},
    {!Marked_process.run}, ...) to bound a whole pipeline — including its
    parallel fan-outs — by a single budget; every stage then degrades to a
    documented sound partial result instead of running away. *)

module Checkpoint = Checkpoint
(** Crash-safe durability: versioned, checksummed, atomically-written
    snapshots of saturation state, the {!Checkpoint.Codec} text encodings
    that make resumed chases bit-identical, and the
    {!Checkpoint.Supervisor} retry-with-resume loop. Pass a
    {!Checkpoint.sink} to {!Chase_engine.run}, {!Rewrite.rewrite}, or
    {!Marked_process.run} and resume with the corresponding [resume]
    entry point ([frontier resume] in the CLI). *)

(** {1 Parsing} *)

module Parse : sig
  exception Error of string

  val theory : ?name:string -> string -> Logic.Theory.t
  val instance : string -> Logic.Fact_set.t
  val query : string -> Logic.Cq.t
  val rule : string -> Logic.Tgd.t
end

(** {1 High-level pipelines} *)

val certain_answers :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?max_depth:int -> ?max_atoms:int ->
  Logic.Theory.t -> Logic.Fact_set.t -> Logic.Cq.t ->
  Logic.Term.t list list
(** The certain answers of the query over the instance under the theory,
    computed through the chase (complete up to the depth budget; a guard
    trip truncates the chase, so the answers are then sound but possibly
    incomplete — inspect [Guard.status] to detect it). *)

val certain :
  ?guard:Guard.t ->
  ?max_depth:int -> ?max_atoms:int ->
  Logic.Theory.t -> Logic.Fact_set.t -> Logic.Cq.t -> Logic.Term.t list ->
  bool
(** [T, D |= q(tuple)]? *)

val rewrite :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?budget:Rewriting.Rewrite.budget ->
  Logic.Theory.t -> Logic.Cq.t -> Rewriting.Rewrite.result
(** The UCQ rewriting of the query (Theorem 1), by saturation. *)

val answer_via_rewriting :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?budget:Rewriting.Rewrite.budget ->
  Logic.Theory.t -> Logic.Fact_set.t -> Logic.Cq.t ->
  Logic.Term.t list list option
(** Rewrite the query, then evaluate the UCQ directly over the instance —
    the whole point of FUS/BDD theories. [None] when the rewriting does not
    complete within budget. *)

val classify : Logic.Theory.t -> Theories.Classes.report

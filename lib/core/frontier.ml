module Term = Logic.Term
module Symbol = Logic.Symbol
module Atom = Logic.Atom
module Fact_set = Logic.Fact_set
module Gaifman = Logic.Gaifman
module Cq = Logic.Cq
module Ucq = Logic.Ucq
module Containment = Logic.Containment
module Tgd = Logic.Tgd
module Theory = Logic.Theory
module Homomorphism = Logic.Homomorphism
module Arena = Logic.Arena
module Render = Logic.Render
module Eval = Eval

module Chase_engine = Chase.Engine
module Entailment = Chase.Entailment
module Cores = Chase.Core_model
module Termination = Chase.Termination
module Chase_variants = Chase.Variants
module Explain = Chase.Explain

module Rewrite = Rewriting.Rewrite
module Piece_unifier = Rewriting.Piece_unifier
module Bdd_probe = Rewriting.Bdd
module Locality = Rewriting.Locality
module Distancing = Rewriting.Distancing
module Exercises = Rewriting.Exercises

module Marked_query = Marked.Marked_query
module Marked_process = Marked.Process
module Marked_rank = Marked.Rank

module Normal_form = Normalization.Normalize
module Ancestors = Normalization.Ancestry
module Crucial = Normalization.Crucial

module Zoo = Theories.Zoo
module Instances = Theories.Instances
module Classes = Theories.Classes

module Multiset = Order.Multiset
module Transform = Theories.Transform
module Generators = Theories.Generators

module Reasoner = Reasoner
module Portfolio = Portfolio
module Pool = Parallel.Pool
module Saturation = Saturation
module Guard = Guard
module Checkpoint = Checkpoint

module Parse = struct
  exception Error of string

  let wrap f x =
    try f x with Logic.Parser.Parse_error msg -> raise (Error msg)

  let theory ?name input = wrap (Logic.Parser.parse_theory ?name) input
  let instance input = wrap Logic.Parser.parse_instance input
  let query input = wrap Logic.Parser.parse_query input
  let rule input = wrap Logic.Parser.parse_rule input
end

let certain_answers ?pool ?guard ?max_depth ?max_atoms theory d q =
  let run = Chase.Engine.run ?pool ?guard ?max_depth ?max_atoms theory d in
  let dom = Fact_set.domain d in
  List.filter
    (fun tuple -> List.for_all (fun t -> Term.Set.mem t dom) tuple)
    (Eval.answers ?guard q (Chase.Engine.result run))

let certain ?guard ?max_depth ?max_atoms theory d q tuple =
  match
    Chase.Entailment.entails ?guard ?max_depth ?max_atoms theory d q tuple
  with
  | Chase.Entailment.Entailed _ -> true
  | Chase.Entailment.Not_entailed | Chase.Entailment.Unknown -> false

let rewrite ?pool ?guard ?budget theory q =
  Rewriting.Rewrite.rewrite ?pool ?guard ?budget theory q

let answer_via_rewriting ?pool ?guard ?budget theory d q =
  let r = Rewriting.Rewrite.rewrite ?pool ?guard ?budget theory q in
  match r.Rewriting.Rewrite.outcome with
  | Rewriting.Rewrite.Complete ->
      Some (Eval.ucq_answers ?guard r.Rewriting.Rewrite.ucq d)
  | _ -> None

let classify = Theories.Classes.classify

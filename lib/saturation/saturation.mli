(** The generic saturation kernel.

    Everything this reproduction computes is a fixpoint saturation over a
    worklist: the semi-oblivious chase grows a fact set stage by stage
    (Definition 6), UCQ rewriting saturates a minimal disjunct store by
    piece-unifier steps (Theorem 1), the core/termination probes iterate
    "step then fold" rounds (Section 5), and the marked-query process
    drains a queue of markings by rank-descending operations (Section 10).
    [run] is the one loop under all of them: it owns the worklist, the
    round structure, {!Guard.t} polling, the round-discarding trip
    protocol, and per-round stats emission — each client shrinks to a
    domain-specific expansion {e step}.

    The kernel's loop discipline is the contract the differential fault
    suite relies on:

    {ul
    {- the guard is checkpointed once at every round boundary (before any
       work), and a trip there costs nothing — the round never ran;}
    {- a step may additionally observe a mid-round trip (its tasks poll
       the same sticky guard); it then returns [commit = false] and the
       kernel discards the round wholesale, so the accumulated state is
       always a sound prefix of the fault-free computation;}
    {- after a committed round, the sticky trip state is consulted once
       more, so a trip raised by [Guard.spend] inside the step stops the
       saturation with the committed round kept.}}

    The worklist is a flat array-backed FIFO: a round's batch is one
    contiguous [Array.sub] off the head (which the pool then shards
    contiguously across workers), productions append at the tail, and
    the frontier size is O(1). All plumbing is constant-stack, so
    frontiers of millions of items are safe (verified on a 1M-item
    frontier by the test suite). *)

(** Per-round and whole-run counters, uniform across every saturation
    this repository runs (chase sweeps, rewriting batches, marked-process
    steps): what the [--stats] flags and the bench harness print. *)
module Stats : sig
  type tally = {
    expanded : int;
        (** worklist items the round actually expanded (chase: trigger
            homomorphisms enumerated; rewriting: live disjuncts popped;
            marked process: operations applied) *)
    generated : int;
        (** raw productions before dedup/subsumption (chase: atom
            productions, rediscoveries included; rewriting: one-step
            rewritings) *)
    admitted : int;
        (** productions that survived dedup/subsumption and entered the
            evolving state (chase: the stage's fresh atoms; rewriting:
            disjuncts added to the store) *)
    deduped : int;
        (** productions rejected as duplicates/subsumed *)
  }

  val zero : tally
  val add : tally -> tally -> tally

  val tally :
    ?expanded:int -> ?generated:int -> ?admitted:int -> ?deduped:int ->
    unit -> tally
  (** Any omitted field is 0. *)

  type round = {
    index : int;  (** 1-based round number *)
    frontier : int;  (** worklist items handed to the step *)
    tally : tally;
    wall_s : float;  (** wall-clock seconds for the round *)
    domain_busy_s : float array;
        (** per-domain busy seconds inside the round (index 0 = caller);
            [[||]] when the run recorded no pool activity *)
  }

  type t = {
    rounds : int;  (** committed rounds (discarded rounds don't count) *)
    totals : tally;
    wall_s : float;  (** whole-run wall clock, discarded rounds included *)
    per_round : round array;
        (** one entry per committed round, in order; empty when the run
            was started with [record_rounds:false] *)
  }

  val pp_round : Format.formatter -> round -> unit
  (** One line: [round N: frontier F, expanded E -> G generated, A
      admitted (D deduped), T s [busy ...]]. The shared rendering behind
      every [--stats] flag. *)

  val pp : Format.formatter -> t -> unit
  (** The per-round lines (when recorded) followed by a totals line. *)
end

type verdict =
  | Saturated  (** the worklist drained: a true fixpoint was reached *)
  | Stopped
      (** the step asked to stop, [max_rounds] ran out, or the drain
          hook returned a non-positive batch size — a client-level
          budget, not a guard trip *)
  | Tripped of Guard.cause
      (** the guard tripped (at a round boundary, inside a discarded
          round, or by a [spend] within a committed one) *)

type ctx = {
  pool : Parallel.Pool.t;  (** for fanning the step's work out *)
  guard : Guard.t;  (** the sticky trip account the step must poll *)
  round : int;  (** 1-based number of the round being attempted *)
}

type 'w step_result = {
  next : 'w list;
      (** new worklist items, enqueued behind the remaining frontier in
          order *)
  tally : Stats.tally;
  stop : bool;  (** stop after this round (client budget exhausted) *)
  commit : bool;
      (** [false]: the round was aborted mid-flight (a worker observed a
          guard trip); the kernel discards it — no round count, no tally,
          no enqueue — and finishes with the guard's sticky cause *)
}

type drain =
  | All  (** each round takes the whole frontier (chase-style stages) *)
  | At_most of (unit -> int)
      (** each round takes at most [f ()] items ([1] = one-at-a-time
          worklist); a non-positive answer stops the run ([Stopped]) —
          the hook is how clients express step budgets *)

(** The durability hook: how a client asks the kernel to emit resumable
    snapshots of the worklist at round boundaries. The kernel only owns
    the frontier and the round number — the [save] callback is where the
    client serializes its own evolving state (fact stages, disjunct
    store, ...) alongside the frontier array it is handed. *)
type 'w checkpoint = {
  every : int;
      (** save when the absolute round number is a multiple of this *)
  min_interval_s : float;
      (** ... and at least this much wall time passed since the last
          save — the throttle for one-item-per-round drains that commit
          hundreds of thousands of rounds *)
  save : round:int -> final:bool -> 'w array -> unit;
      (** called with the absolute committed-round number and the
          frontier {e after} that round's productions were enqueued;
          [final] marks the save fired at a non-[Saturated] finish
          (budget stop, guard trip, cancellation). Must not raise —
          durability is best-effort (see [Checkpoint.save_to]). *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t ->
  ?drain:drain ->
  ?max_rounds:int ->
  ?record_rounds:bool ->
  ?base_round:int ->
  ?checkpoint:'w checkpoint ->
  init:'w list ->
  step:(ctx -> 'w array -> 'w step_result) ->
  unit ->
  verdict * Stats.t
(** Defaults: [pool] a {e private} size-1 pool (so independent runs never
    share busy accounting; pass [Parallel.Pool.sequential] explicitly if
    the old shared-pool behavior is wanted), [guard] unlimited,
    [drain = All], [max_rounds = max_int], [record_rounds = true] (pass
    [false] on one-item-per-round drains over huge frontiers — recording
    a round per item would allocate proportionally).

    The step receives its batch as an array — a contiguous slice of the
    frontier in FIFO order; it must not mutate it.

    Sequential fallback: under an [At_most] drain, a round whose batch
    holds fewer items than the pool has workers runs with a private
    size-1 pool in [ctx.pool] — every [Pool] call inside the step takes
    the inline path without consulting the dispatch cost gate. [All]
    drains always see the supplied pool (a chase stage is often a
    single item whose step fans out the real work internally). The
    fallback changes scheduling only, never results or round
    boundaries; [Stats.round.domain_busy_s] reflects the pool the round
    actually ran on.

    Round protocol, in order: (1) empty frontier — [Saturated]; (2)
    [max_rounds] committed rounds reached — [Stopped]; (3) guard
    checkpoint — a trip is [Tripped] with no round run; (4) drain hook
    non-positive — [Stopped]; (5) the step runs on the batch; (6)
    [commit = false] — round discarded (the batch goes back on the
    frontier head), verdict from the sticky guard state ([Stopped] if
    somehow untripped); (7) round committed: stats accumulated, [next]
    enqueued, a due [checkpoint] cadence save fires, then the sticky
    guard state is consulted ([Tripped] keeps the committed round),
    then [stop] — [Stopped].

    Resumption: [base_round] (default 0) offsets the round arithmetic —
    [ctx.round], [Stats.round.index], the [max_rounds] cutoff, and the
    [checkpoint] cadence all use [base_round + committed-this-segment],
    so a run resumed from a round-[r] snapshot with [base_round:r]
    continues exactly where the interrupted one left off (the paper's
    Observation 8 makes the chase instance of this literally
    bit-identical). [Stats.t] itself stays segment-local: [rounds] and
    the tallies count only work done by this call.

    Every non-[Saturated] finish with a [checkpoint] installed emits a
    last snapshot of the current frontier (skipped only when the cadence
    save already captured that exact round), so trips, budget stops, and
    SIGINT/SIGTERM cancellations always leave resumable state behind. *)

val outcome :
  verdict ->
  guard:Guard.t ->
  complete:'a ->
  partial:'p ->
  stopped_cause:Guard.cause ->
  ('a, 'p) Guard.outcome
(** Package a verdict as the unified {!Guard.outcome}: [Saturated] is
    [Complete]; [Tripped cause] is [Exhausted] with that cause;
    [Stopped] is [Exhausted] with [stopped_cause] (clients map their
    legacy step/depth budgets to {!Guard.Fuel} here). *)

val split_batch : int -> 'a list -> 'a list * 'a list
(** [split_batch n l = (first n elements of l, the rest)], both in
    order. Tail-recursive — safe on frontiers of arbitrary length. *)

module Stats = struct
  type tally = {
    expanded : int;
    generated : int;
    admitted : int;
    deduped : int;
  }

  let zero = { expanded = 0; generated = 0; admitted = 0; deduped = 0 }

  let add a b =
    {
      expanded = a.expanded + b.expanded;
      generated = a.generated + b.generated;
      admitted = a.admitted + b.admitted;
      deduped = a.deduped + b.deduped;
    }

  let tally ?(expanded = 0) ?(generated = 0) ?(admitted = 0) ?(deduped = 0)
      () =
    { expanded; generated; admitted; deduped }

  type round = {
    index : int;
    frontier : int;
    tally : tally;
    wall_s : float;
    domain_busy_s : float array;
  }

  type t = {
    rounds : int;
    totals : tally;
    wall_s : float;
    per_round : round array;
  }

  let pp_busy ppf busy =
    if Array.exists (fun b -> b > 0.0005) busy then begin
      Format.fprintf ppf " [busy";
      Array.iter (fun b -> Format.fprintf ppf " %.3f" b) busy;
      Format.fprintf ppf "]"
    end

  let pp_round ppf r =
    Format.fprintf ppf
      "round %d: frontier %d, expanded %d -> %d generated, %d admitted (%d \
       deduped), %.3fs%a"
      r.index r.frontier r.tally.expanded r.tally.generated r.tally.admitted
      r.tally.deduped r.wall_s pp_busy r.domain_busy_s

  let pp ppf s =
    Array.iter (fun r -> Format.fprintf ppf "%a@\n" pp_round r) s.per_round;
    Format.fprintf ppf
      "total: %d round%s, expanded %d -> %d generated, %d admitted (%d \
       deduped), %.3fs"
      s.rounds
      (if s.rounds = 1 then "" else "s")
      s.totals.expanded s.totals.generated s.totals.admitted s.totals.deduped
      s.wall_s
end

type verdict = Saturated | Stopped | Tripped of Guard.cause

type ctx = { pool : Parallel.Pool.t; guard : Guard.t; round : int }

type 'w step_result = {
  next : 'w list;
  tally : Stats.tally;
  stop : bool;
  commit : bool;
}

type drain = All | At_most of (unit -> int)

type 'w checkpoint = {
  every : int;
  min_interval_s : float;
  save : round:int -> final:bool -> 'w array -> unit;
}

(* Tail-recursive frontier split: [split_batch n l] is [(first n, rest)]
   in order. A saturation frontier can hold millions of items, too deep
   for non-tail recursion. *)
let split_batch n l =
  let rec go n acc = function
    | [] -> (List.rev acc, [])
    | rest when n <= 0 -> (List.rev acc, rest)
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

(* The worklist: a flat array-backed FIFO. Items live in
   [buf.(head .. tail - 1)]; a round's batch is one [Array.sub] off the
   head (which the pool then shards contiguously), productions append at
   the tail, and growth compacts the live region to the front. Frontier
   size is O(1) — the old front/back list deque paid an O(n) double
   reversal per [All] round plus an O(n) [List.length] for the stats. *)
type 'w queue = {
  mutable buf : 'w array;
  mutable head : int;
  mutable tail : int;
}

let queue_of_list init =
  let buf = Array.of_list init in
  { buf; head = 0; tail = Array.length buf }

let queue_length q = q.tail - q.head

(* Make room for [extra] more items, using [witness] to seed fresh
   storage. Doubling growth amortizes to O(1) per pushed item. *)
let queue_reserve q extra witness =
  if q.tail + extra > Array.length q.buf then begin
    let len = queue_length q in
    let cap = max 16 (max (2 * Array.length q.buf) (len + extra)) in
    let buf = Array.make cap witness in
    Array.blit q.buf q.head buf 0 len;
    q.buf <- buf;
    q.head <- 0;
    q.tail <- len
  end

let queue_push_list q items =
  match items with
  | [] -> ()
  | witness :: _ ->
      queue_reserve q (List.length items) witness;
      List.iter
        (fun x ->
          q.buf.(q.tail) <- x;
          q.tail <- q.tail + 1)
        items

let queue_take q k =
  let m = min k (queue_length q) in
  let batch = Array.sub q.buf q.head m in
  q.head <- q.head + m;
  batch

let run ?pool ?guard ?(drain = All) ?(max_rounds = max_int)
    ?(record_rounds = true) ?(base_round = 0) ?checkpoint ~init ~step () =
  (* A private size-1 pool by default (not the shared [Pool.sequential]):
     independent runs must not cross-contaminate each other's busy
     accounting. *)
  let pool =
    match pool with Some p -> p | None -> Parallel.Pool.create 1
  in
  let guard = match guard with Some g -> g | None -> Guard.unlimited () in
  let rounds = ref 0 in
  let totals = ref Stats.zero in
  let per_round = ref [] in
  let t_start = Unix.gettimeofday () in
  let q = queue_of_list init in
  (* Durability hooks. A cadence save fires after a committed round when
     the *absolute* round number (resumed segments count from
     [base_round]) hits the [every] stride and at least [min_interval_s]
     has passed — the throttle that keeps one-pop-per-round drains from
     spending their run writing files. A final save fires on any
     non-[Saturated] finish so a budget stop, guard trip, or
     cancellation always leaves the freshest resumable state behind;
     it is skipped when the cadence save already captured this exact
     round. Saturated runs save nothing — there is nothing to resume. *)
  let last_save_t = ref (Unix.gettimeofday ()) in
  let last_saved_round = ref (-1) in
  let frontier_snapshot () = Array.sub q.buf q.head (queue_length q) in
  let cadence_save () =
    match checkpoint with
    | None -> ()
    | Some c ->
        let abs = base_round + !rounds in
        if abs mod c.every = 0 then begin
          let now = Unix.gettimeofday () in
          if now -. !last_save_t >= c.min_interval_s then begin
            c.save ~round:abs ~final:false (frontier_snapshot ());
            last_save_t := now;
            last_saved_round := abs
          end
        end
  in
  let finish verdict =
    (match (checkpoint, verdict) with
    | Some c, (Stopped | Tripped _) ->
        let abs = base_round + !rounds in
        if !last_saved_round <> abs then
          c.save ~round:abs ~final:true (frontier_snapshot ())
    | _ -> ());
    ( verdict,
      {
        Stats.rounds = !rounds;
        totals = !totals;
        wall_s = Unix.gettimeofday () -. t_start;
        per_round = Array.of_list (List.rev !per_round);
      } )
  in
  (* Sequential fallback for budgeted drains: an [At_most] round whose
     batch cannot even hand one item to each worker (the tail of a
     rewriting saturation, a nearly-drained process queue) runs against
     a private size-1 pool, so the step's own [Pool] calls take the
     inline path outright instead of each re-deciding at the dispatch
     gate. [All] drains are exempt: the chase's round batch is its
     *stage*, frequently a single item whose step fans out the real
     per-(rule, part) work inside — forcing it sequential would serialize
     the one dispatch that matters. Scheduling only; results, tallies,
     and round boundaries are unchanged. *)
  let seq_pool = lazy (Parallel.Pool.create 1) in
  let round_pool batch =
    match drain with
    | All -> pool
    | At_most _ ->
        if Array.length batch < Parallel.Pool.size pool then
          Lazy.force seq_pool
        else pool
  in
  let rec loop () =
    if queue_length q = 0 then finish Saturated
    else if base_round + !rounds >= max_rounds then finish Stopped
    else
      match Guard.check guard with
      | Some cause ->
          (* A boundary trip costs nothing: the round never ran. *)
          finish (Tripped cause)
      | None -> (
          let want =
            match drain with All -> queue_length q | At_most f -> f ()
          in
          if (match drain with All -> false | At_most _ -> want <= 0) then
            finish Stopped
          else
            let batch = queue_take q want in
            let rpool = round_pool batch in
            let ctx =
              { pool = rpool; guard; round = base_round + !rounds + 1 }
            in
            let busy0 =
              if record_rounds then Parallel.Pool.busy_times rpool else [||]
            in
            let t0 = if record_rounds then Unix.gettimeofday () else 0. in
            let res = step ctx batch in
            if not res.commit then begin
              (* Aborted mid-round: the partial products are unsound,
                 so the round is discarded wholesale — the
                 accumulated state stays an exact prefix. The batch
                 goes back on the head (steps must not mutate it), so
                 the final snapshot still holds the full frontier. *)
              q.head <- q.head - Array.length batch;
              match Guard.status guard with
              | Some cause -> finish (Tripped cause)
              | None -> finish Stopped
            end
            else begin
              incr rounds;
              totals := Stats.add !totals res.tally;
              if record_rounds then begin
                let busy1 = Parallel.Pool.busy_times rpool in
                per_round :=
                  {
                    Stats.index = base_round + !rounds;
                    frontier = Array.length batch;
                    tally = res.tally;
                    wall_s = Unix.gettimeofday () -. t0;
                    domain_busy_s =
                      Array.init (Array.length busy1) (fun i ->
                          busy1.(i) -. busy0.(i));
                  }
                  :: !per_round
              end;
              queue_push_list q res.next;
              cadence_save ();
              (* A trip raised inside the committed round (typically
                 by the step's own [Guard.spend]) stops the run with
                 the round kept. *)
              match Guard.status guard with
              | Some cause -> finish (Tripped cause)
              | None -> if res.stop then finish Stopped else loop ()
            end)
  in
  loop ()

let outcome verdict ~guard ~complete ~partial ~stopped_cause =
  match verdict with
  | Saturated -> Guard.Complete complete
  | Tripped cause ->
      Guard.Exhausted { partial; cause; progress = Guard.progress guard }
  | Stopped ->
      Guard.Exhausted
        { partial; cause = stopped_cause; progress = Guard.progress guard }

module Stats = struct
  type tally = {
    expanded : int;
    generated : int;
    admitted : int;
    deduped : int;
  }

  let zero = { expanded = 0; generated = 0; admitted = 0; deduped = 0 }

  let add a b =
    {
      expanded = a.expanded + b.expanded;
      generated = a.generated + b.generated;
      admitted = a.admitted + b.admitted;
      deduped = a.deduped + b.deduped;
    }

  let tally ?(expanded = 0) ?(generated = 0) ?(admitted = 0) ?(deduped = 0)
      () =
    { expanded; generated; admitted; deduped }

  type round = {
    index : int;
    frontier : int;
    tally : tally;
    wall_s : float;
    domain_busy_s : float array;
  }

  type t = {
    rounds : int;
    totals : tally;
    wall_s : float;
    per_round : round array;
  }

  let pp_busy ppf busy =
    if Array.exists (fun b -> b > 0.0005) busy then begin
      Format.fprintf ppf " [busy";
      Array.iter (fun b -> Format.fprintf ppf " %.3f" b) busy;
      Format.fprintf ppf "]"
    end

  let pp_round ppf r =
    Format.fprintf ppf
      "round %d: frontier %d, expanded %d -> %d generated, %d admitted (%d \
       deduped), %.3fs%a"
      r.index r.frontier r.tally.expanded r.tally.generated r.tally.admitted
      r.tally.deduped r.wall_s pp_busy r.domain_busy_s

  let pp ppf s =
    Array.iter (fun r -> Format.fprintf ppf "%a@\n" pp_round r) s.per_round;
    Format.fprintf ppf
      "total: %d round%s, expanded %d -> %d generated, %d admitted (%d \
       deduped), %.3fs"
      s.rounds
      (if s.rounds = 1 then "" else "s")
      s.totals.expanded s.totals.generated s.totals.admitted s.totals.deduped
      s.wall_s
end

type verdict = Saturated | Stopped | Tripped of Guard.cause

type ctx = { pool : Parallel.Pool.t; guard : Guard.t; round : int }

type 'w step_result = {
  next : 'w list;
  tally : Stats.tally;
  stop : bool;
  commit : bool;
}

type drain = All | At_most of (unit -> int)

(* Tail-recursive frontier split: [split_batch n l] is [(first n, rest)]
   in order. A saturation frontier can hold millions of items, too deep
   for non-tail recursion. *)
let split_batch n l =
  let rec go n acc = function
    | [] -> (List.rev acc, [])
    | rest when n <= 0 -> (List.rev acc, rest)
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

(* First [k] items of the deque [front @ List.rev back], plus the
   remainder in the same representation. Tail-recursive. *)
let take k front back =
  let rec go k acc front back =
    if k <= 0 then (List.rev acc, front, back)
    else
      match front with
      | x :: rest -> go (k - 1) (x :: acc) rest back
      | [] -> if back = [] then (List.rev acc, [], []) else go k acc (List.rev back) []
  in
  go k [] front back

let run ?(pool = Parallel.Pool.sequential) ?guard ?(drain = All)
    ?(max_rounds = max_int) ?(record_rounds = true) ~init ~step () =
  let guard = match guard with Some g -> g | None -> Guard.unlimited () in
  let rounds = ref 0 in
  let totals = ref Stats.zero in
  let per_round = ref [] in
  let t_start = Unix.gettimeofday () in
  let finish verdict =
    ( verdict,
      {
        Stats.rounds = !rounds;
        totals = !totals;
        wall_s = Unix.gettimeofday () -. t_start;
        per_round = Array.of_list (List.rev !per_round);
      } )
  in
  (* The worklist is a front/back deque: rounds consume from [front],
     their productions are pushed (reversed) onto [back], and the back is
     reversed in when the front drains — overall FIFO, with every
     operation tail-recursive and constant-stack. *)
  let rec loop front back =
    match (front, back) with
    | [], [] -> finish Saturated
    | [], back -> loop (List.rev back) []
    | front, back -> (
        if !rounds >= max_rounds then finish Stopped
        else
          match Guard.check guard with
          | Some cause ->
              (* A boundary trip costs nothing: the round never ran. *)
              finish (Tripped cause)
          | None -> (
              let want =
                match drain with All -> -1 | At_most f -> f ()
              in
              if (match drain with All -> false | At_most _ -> want <= 0)
              then finish Stopped
              else
                let batch, front, back =
                  match drain with
                  | All ->
                      (List.rev_append (List.rev front) (List.rev back), [], [])
                  | At_most _ -> take want front back
                in
                let ctx = { pool; guard; round = !rounds + 1 } in
                let busy0 =
                  if record_rounds then Parallel.Pool.busy_times pool
                  else [||]
                in
                let t0 = if record_rounds then Unix.gettimeofday () else 0. in
                let res = step ctx batch in
                if not res.commit then
                  (* Aborted mid-round: the partial products are unsound,
                     so the round is discarded wholesale — the
                     accumulated state stays an exact prefix. *)
                  match Guard.status guard with
                  | Some cause -> finish (Tripped cause)
                  | None -> finish Stopped
                else begin
                  incr rounds;
                  totals := Stats.add !totals res.tally;
                  if record_rounds then begin
                    let busy1 = Parallel.Pool.busy_times pool in
                    per_round :=
                      {
                        Stats.index = !rounds;
                        frontier = List.length batch;
                        tally = res.tally;
                        wall_s = Unix.gettimeofday () -. t0;
                        domain_busy_s =
                          Array.init (Array.length busy1) (fun i ->
                              busy1.(i) -. busy0.(i));
                      }
                      :: !per_round
                  end;
                  let back = List.rev_append res.next back in
                  (* A trip raised inside the committed round (typically
                     by the step's own [Guard.spend]) stops the run with
                     the round kept. *)
                  match Guard.status guard with
                  | Some cause -> finish (Tripped cause)
                  | None ->
                      if res.stop then finish Stopped else loop front back
                end))
  in
  loop init []

let outcome verdict ~guard ~complete ~partial ~stopped_cause =
  match verdict with
  | Saturated -> Guard.Complete complete
  | Tripped cause ->
      Guard.Exhausted { partial; cause; progress = Guard.progress guard }
  | Stopped ->
      Guard.Exhausted
        { partial; cause = stopped_cause; progress = Guard.progress guard }

open Logic

let const = Term.const
let atom = Atom.make

let path rel ?(prefix = "a") n =
  if n < 1 then invalid_arg "Instances.path: length must be positive";
  let node i = const (Printf.sprintf "%s%d" prefix i) in
  let facts = List.init n (fun i -> atom rel [ node i; node (i + 1) ]) in
  (node 0, node n, Fact_set.of_list facts)

let cycle rel ?(prefix = "a") n =
  if n < 2 then invalid_arg "Instances.cycle: need at least two nodes";
  let node i = const (Printf.sprintf "%s%d" prefix (i mod n)) in
  Fact_set.of_list (List.init n (fun i -> atom rel [ node i; node (i + 1) ]))

let grid right down ~width ~height =
  if width < 1 || height < 1 then
    invalid_arg "Instances.grid: dimensions must be positive";
  let node i j = const (Printf.sprintf "g%d_%d" i j) in
  let rights =
    List.concat_map
      (fun i ->
        List.init (width - 1) (fun j ->
            atom right [ node i j; node i (j + 1) ]))
      (List.init height (fun i -> i))
  in
  let downs =
    List.concat_map
      (fun i ->
        List.init width (fun j -> atom down [ node i j; node (i + 1) j ]))
      (List.init (height - 1) (fun i -> i))
  in
  Fact_set.of_list (rights @ downs)

let sticky_star l =
  if l < 1 then invalid_arg "Instances.sticky_star: need at least one colour";
  let a = const "a" and b1 = const "b1" and b2 = const "b2" in
  let colour i = const (Printf.sprintf "c%d" i) in
  Fact_set.of_list
    (atom Zoo.e4 [ a; b1; b2; colour 1 ]
    :: List.init l (fun i -> atom Zoo.r2 [ a; colour (i + 1) ]))

let ex66_instance m =
  let a0 = const "a0" and a1 = const "a1" in
  Fact_set.of_list
    (atom Zoo.e2 [ a0; a1 ]
    :: List.init m (fun i -> atom Zoo.p1 [ const (Printf.sprintf "b%d" (i + 1)) ]))

let e28_start n =
  Fact_set.of_list [ atom (Zoo.e_k n) [ const "a"; const "b" ] ]

let human_abel = Fact_set.of_list [ atom Zoo.human [ const "Abel" ] ]

let single_edge rel = Fact_set.of_list [ atom rel [ const "a"; const "b" ] ]

let random_binary ~seed ~rels ~nodes ~facts =
  if nodes < 1 then invalid_arg "Instances.random_binary: nodes must be positive";
  List.iter
    (fun rel ->
      if Symbol.arity rel <> 2 then
        invalid_arg "Instances.random_binary: relations must be binary")
    rels;
  let state = Random.State.make [| seed |] in
  let node () = const (Printf.sprintf "n%d" (Random.State.int state nodes)) in
  let rel () =
    List.nth rels (Random.State.int state (List.length rels))
  in
  Fact_set.of_list
    (List.init facts (fun _ -> atom (rel ()) [ node (); node () ]))

let nonbdd_chain n =
  if n < 1 then invalid_arg "Instances.nonbdd_chain: length must be positive";
  let node i = const (Printf.sprintf "a%d" i) in
  let c = const "c" in
  Fact_set.of_list
    (atom Zoo.r2 [ node 0; c ]
    :: List.init n (fun i -> atom Zoo.e3 [ node i; node (i + 1); c ]))

let erdos_renyi rel ~seed ~nodes ~edges =
  if Symbol.arity rel <> 2 then
    invalid_arg "Instances.erdos_renyi: relation must be binary";
  if nodes < 1 then invalid_arg "Instances.erdos_renyi: nodes must be positive";
  if edges < 0 then invalid_arg "Instances.erdos_renyi: negative edge count";
  let state = Random.State.make [| seed |] in
  let node i = const (Printf.sprintf "v%d" i) in
  let acc = ref [] in
  for _ = 1 to edges do
    let u = Random.State.int state nodes in
    let v = Random.State.int state nodes in
    acc := atom rel [ node u; node v ] :: !acc
  done;
  Fact_set.of_list !acc

let barabasi_albert rel ~seed ~nodes ~m =
  if Symbol.arity rel <> 2 then
    invalid_arg "Instances.barabasi_albert: relation must be binary";
  if m < 1 then invalid_arg "Instances.barabasi_albert: m must be positive";
  if nodes < 2 then invalid_arg "Instances.barabasi_albert: need >= 2 nodes";
  let state = Random.State.make [| seed |] in
  let node i = const (Printf.sprintf "v%d" i) in
  (* The endpoint multiset: every attached edge contributes both ends, so
     sampling it uniformly is sampling vertices proportionally to degree —
     the standard array trick for preferential attachment. *)
  let ends = Array.make (2 * m * nodes) 0 in
  let n_ends = ref 0 in
  let push e =
    ends.(!n_ends) <- e;
    incr n_ends
  in
  let acc = ref [] in
  for v = 1 to nodes - 1 do
    for _ = 1 to min v m do
      let u =
        if !n_ends = 0 then 0 else ends.(Random.State.int state !n_ends)
      in
      acc := atom rel [ node v; node u ] :: !acc;
      push v;
      push u
    done
  done;
  Fact_set.of_list !acc

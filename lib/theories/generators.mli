(** Random theory generators for property-based testing.

    Linear theories are always BDD (Section 1), so on any random linear
    theory the saturating rewriter must terminate and agree with the chase
    — a strong end-to-end oracle. Datalog theories always saturate on
    finite instances, giving a model oracle for the chase engine.

    {b Seed-determinism contract} (every generator below): the same
    arguments produce literally the same theory — same rules, same order,
    same hash-consed symbols — in every process and at any parallelism
    level ([-j]/[FRONTIER_JOBS]). Each generator draws exclusively from a
    local [Random.State] seeded from its own arguments (with a distinct
    prime offset per generator so their streams never collide), touches
    no global mutable state, and never iterates a hash order. The
    portfolio fuzzer's replayability rests on this contract; the golden
    samples in [test/test_theories.ml] pin it. *)

open Logic

val random_linear_binary :
  seed:int -> rels:int -> rules:int -> Theory.t
(** Rules with a single binary body atom [E_i(x,y)] and a head drawn from
    the patterns [E_j(y,z)], [E_j(x,z)] (existential) and [E_j(y,x)],
    [E_j(x,x)], [E_j(y,y)] (Datalog), over relations [L0 .. L_{rels-1}]. *)

val random_datalog_binary :
  seed:int -> rels:int -> rules:int -> Theory.t
(** One- or two-atom bodies, Datalog heads over the body variables. *)

val random_guarded :
  seed:int -> rels:int -> rules:int -> Theory.t
(** Guarded theories over binary relations [L0 .. L_{rels-1}] and unary
    [U0 .. U_{rels-1}]: every rule's body is a guard atom [L_i(x,y)]
    containing all body variables, plus up to one side atom over
    [{x, y}]; heads are single atoms over the body variables, possibly
    with one existential. Guarded by construction
    ([Theory.is_guarded]). *)

val random_sticky :
  seed:int -> rels:int -> rules:int -> Theory.t
(** Sticky theories (Cali-Gottlob-Pieris marking): candidates with
    one- and two-atom join bodies are drawn from a per-attempt state
    [Random.State.make [|seed + offset; rels; rules; attempt|]] and the
    first candidate that {!Classes.is_sticky} accepts is returned — the
    rejection sampling is itself deterministic in [seed]. After 64
    rejections the generator falls back to a single-body-atom theory,
    which is vacuously sticky (no body variable ever occurs twice). *)

val random_loop_restricted :
  seed:int -> rels:int -> rules:int -> Theory.t
(** Loop-restricted theories, constructively in class: relations
    [L0 .. L_{rels-1}] are stratified into levels; same-level rules are
    linear Datalog (single body atom, head over its variables) and may
    form cycles, while every existential or join rule maps strictly
    lower levels to a higher one. All cycles of the rule-dependency
    graph therefore consist of linear Datalog rules — exactly the
    conservative loop-restriction the portfolio checker tests. *)

val random_instance_for :
  seed:int -> Theory.t -> nodes:int -> facts:int -> Fact_set.t
(** A random instance over the binary (and, when present, unary)
    relations of the theory's own signature. Binary-only theories
    receive exactly the instances this function always produced; unary
    facts are drawn from a separate offset state. *)

open Logic

let rel_symbol i = Symbol.make (Printf.sprintf "L%d" i) ~arity:2

let random_linear_binary ~seed ~rels ~rules =
  if rels < 1 || rules < 1 then
    invalid_arg "Generators.random_linear_binary: need rels, rules >= 1";
  let state = Random.State.make [| seed; rels; rules |] in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let rel () = rel_symbol (Random.State.int state rels) in
  let rule i =
    let body = [ Atom.make (rel ()) [ x; y ] ] in
    let head =
      match Random.State.int state 5 with
      | 0 -> Atom.make (rel ()) [ y; z ]
      | 1 -> Atom.make (rel ()) [ x; z ]
      | 2 -> Atom.make (rel ()) [ y; x ]
      | 3 -> Atom.make (rel ()) [ x; x ]
      | _ -> Atom.make (rel ()) [ y; y ]
    in
    Tgd.make ~name:(Printf.sprintf "lin%d" i) ~body ~head:[ head ] ()
  in
  Theory.make
    ~name:(Printf.sprintf "linear[%d]" seed)
    (List.init rules rule)

let random_datalog_binary ~seed ~rels ~rules =
  if rels < 1 || rules < 1 then
    invalid_arg "Generators.random_datalog_binary: need rels, rules >= 1";
  let state = Random.State.make [| seed + 7919; rels; rules |] in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let rel () = rel_symbol (Random.State.int state rels) in
  let rule i =
    let two_atoms = Random.State.bool state in
    let body =
      if two_atoms then
        [ Atom.make (rel ()) [ x; y ]; Atom.make (rel ()) [ y; z ] ]
      else [ Atom.make (rel ()) [ x; y ] ]
    in
    let vars = if two_atoms then [| x; y; z |] else [| x; y |] in
    let pick () = vars.(Random.State.int state (Array.length vars)) in
    let head = Atom.make (rel ()) [ pick (); pick () ] in
    Tgd.make ~name:(Printf.sprintf "dl%d" i) ~body ~head:[ head ] ()
  in
  Theory.make
    ~name:(Printf.sprintf "datalog[%d]" seed)
    (List.init rules rule)

let unary_symbol i = Symbol.make (Printf.sprintf "U%d" i) ~arity:1

let random_guarded ~seed ~rels ~rules =
  if rels < 1 || rules < 1 then
    invalid_arg "Generators.random_guarded: need rels, rules >= 1";
  let state = Random.State.make [| seed + 104_729; rels; rules |] in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let brel () = rel_symbol (Random.State.int state rels) in
  let urel () = unary_symbol (Random.State.int state rels) in
  let rule i =
    let guard = Atom.make (brel ()) [ x; y ] in
    let extra =
      match Random.State.int state 4 with
      | 0 -> []
      | 1 -> [ Atom.make (urel ()) [ x ] ]
      | 2 -> [ Atom.make (urel ()) [ y ] ]
      | _ -> [ Atom.make (brel ()) [ y; x ] ]
    in
    let head =
      match Random.State.int state 6 with
      | 0 -> Atom.make (brel ()) [ y; z ]
      | 1 -> Atom.make (brel ()) [ x; z ]
      | 2 -> Atom.make (brel ()) [ x; y ]
      | 3 -> Atom.make (brel ()) [ y; x ]
      | 4 -> Atom.make (urel ()) [ x ]
      | _ -> Atom.make (urel ()) [ y ]
    in
    Tgd.make ~name:(Printf.sprintf "g%d" i) ~body:(guard :: extra)
      ~head:[ head ] ()
  in
  Theory.make
    ~name:(Printf.sprintf "guarded[%d]" seed)
    (List.init rules rule)

let random_sticky ~seed ~rels ~rules =
  if rels < 1 || rules < 1 then
    invalid_arg "Generators.random_sticky: need rels, rules >= 1";
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let w = Term.var "w" in
  let candidate attempt =
    let state = Random.State.make [| seed + 224_737; rels; rules; attempt |] in
    let rel () = rel_symbol (Random.State.int state rels) in
    let rule i =
      let body =
        match Random.State.int state 3 with
        | 0 -> [ Atom.make (rel ()) [ x; y ] ]
        | 1 -> [ Atom.make (rel ()) [ x; y ]; Atom.make (rel ()) [ y; z ] ]
        | _ -> [ Atom.make (rel ()) [ x; y ]; Atom.make (rel ()) [ x; z ] ]
      in
      let head =
        match Random.State.int state 5 with
        | 0 -> Atom.make (rel ()) [ x; w ]
        | 1 -> Atom.make (rel ()) [ y; w ]
        | 2 -> Atom.make (rel ()) [ x; y ]
        | 3 -> Atom.make (rel ()) [ y; x ]
        | _ -> Atom.make (rel ()) [ x; x ]
      in
      Tgd.make ~name:(Printf.sprintf "st%d" i) ~body ~head:[ head ] ()
    in
    Theory.make
      ~name:(Printf.sprintf "sticky[%d]" seed)
      (List.init rules rule)
  in
  (* Deterministic rejection sampling: the attempt number is part of the
     PRNG seed, so the accepted candidate depends only on the arguments. *)
  let rec search attempt =
    if attempt >= 64 then
      (* Fallback: single-body-atom rules never repeat a body variable,
         so the marking condition holds vacuously. *)
      let state =
        Random.State.make [| seed + 224_737; rels; rules; max_int |]
      in
      let rel () = rel_symbol (Random.State.int state rels) in
      let rule i =
        let head =
          match Random.State.int state 3 with
          | 0 -> Atom.make (rel ()) [ y; z ]
          | 1 -> Atom.make (rel ()) [ y; x ]
          | _ -> Atom.make (rel ()) [ x; x ]
        in
        Tgd.make
          ~name:(Printf.sprintf "st%d" i)
          ~body:[ Atom.make (rel ()) [ x; y ] ]
          ~head:[ head ] ()
      in
      Theory.make
        ~name:(Printf.sprintf "sticky[%d]" seed)
        (List.init rules rule)
    else
      let t = candidate attempt in
      if Classes.is_sticky t then t else search (attempt + 1)
  in
  search 0

let random_loop_restricted ~seed ~rels ~rules =
  if rels < 1 || rules < 1 then
    invalid_arg "Generators.random_loop_restricted: need rels, rules >= 1";
  let state = Random.State.make [| seed + 514_229; rels; rules |] in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let rule i =
    let level = Random.State.int state rels in
    let top = level = rels - 1 in
    if top || Random.State.bool state then
      (* Same-level linear Datalog: the only rules allowed on cycles. *)
      let lv = rel_symbol level in
      let head =
        match Random.State.int state 3 with
        | 0 -> Atom.make lv [ y; x ]
        | 1 -> Atom.make lv [ x; x ]
        | _ -> Atom.make lv [ y; y ]
      in
      Tgd.make
        ~name:(Printf.sprintf "lr%d" i)
        ~body:[ Atom.make lv [ x; y ] ]
        ~head:[ head ] ()
    else
      (* Strictly level-increasing: existentials and joins point upward,
         so they can never close a cycle. *)
      let lv = rel_symbol level in
      let up =
        rel_symbol (level + 1 + Random.State.int state (rels - level - 1))
      in
      match Random.State.int state 3 with
      | 0 ->
          Tgd.make
            ~name:(Printf.sprintf "lr%d" i)
            ~body:[ Atom.make lv [ x; y ] ]
            ~head:[ Atom.make up [ y; z ] ]
            ()
      | 1 ->
          Tgd.make
            ~name:(Printf.sprintf "lr%d" i)
            ~body:[ Atom.make lv [ x; y ]; Atom.make lv [ y; z ] ]
            ~head:[ Atom.make up [ x; z ] ]
            ()
      | _ ->
          Tgd.make
            ~name:(Printf.sprintf "lr%d" i)
            ~body:[ Atom.make lv [ x; y ] ]
            ~head:[ Atom.make up [ x; y ] ]
            ()
  in
  Theory.make
    ~name:(Printf.sprintf "loop-restricted[%d]" seed)
    (List.init rules rule)

let random_instance_for ~seed theory ~nodes ~facts =
  let arity_rels k =
    Symbol.Set.elements
      (Symbol.Set.filter
         (fun s -> Symbol.arity s = k)
         (Theory.signature theory))
  in
  let binary =
    match arity_rels 2 with
    | [] -> Fact_set.empty
    | rels -> Instances.random_binary ~seed ~rels ~nodes ~facts
  in
  (* Unary relations (the guarded generator's side atoms) get their own
     facts from an offset state, so binary-only theories keep the exact
     instances they always produced. *)
  match arity_rels 1 with
  | [] -> binary
  | unary ->
      let state = Random.State.make [| seed + 15_485_863 |] in
      let node () =
        Instances.const (Printf.sprintf "n%d" (Random.State.int state nodes))
      in
      let rel () =
        List.nth unary (Random.State.int state (List.length unary))
      in
      let count = max 1 (facts / 2) in
      Fact_set.union binary
        (Fact_set.of_list
           (List.init count (fun _ -> Atom.make (rel ()) [ node () ])))

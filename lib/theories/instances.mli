(** Instance families used throughout the paper's examples and our
    experiments. *)

open Logic

val const : string -> Term.t

val path : Symbol.t -> ?prefix:string -> int -> Term.t * Term.t * Fact_set.t
(** [path rel n]: facts [rel(a0,a1) ... rel(a_{n-1}, a_n)]; returns the two
    endpoints. [G^n(a, b)] of Section 10 is [path Zoo.g2 n]. *)

val cycle : Symbol.t -> ?prefix:string -> int -> Fact_set.t
(** [cycle rel n]: the instance [D_n] of Example 42 — an [n]-cycle. *)

val grid : Symbol.t -> Symbol.t -> width:int -> height:int -> Fact_set.t
(** A [width x height] grid: [right]-edges along rows, [down]-edges along
    columns — a bounded-degree instance family with many joins, useful for
    stressing the locality analyzers away from paths and cycles. *)

val sticky_star : int -> Fact_set.t
(** Example 39's witness: [E4(a, b1, b2, c1)] plus [R(a, c_i)] for
    [1 <= i <= l] — the observer [a] sees one edge and believes [l]
    colours. *)

val ex66_instance : int -> Fact_set.t
(** Example 66's witness: [E(a0, a1)] plus [P(b_i)] for [1 <= i <= m]. *)

val e28_start : int -> Fact_set.t
(** A single fact [E_n(a, b)] — chase then walks all the way down to
    [E_0]. *)

val human_abel : Fact_set.t
(** Example 1's [{Human(Abel)}]. *)

val single_edge : Symbol.t -> Fact_set.t
(** One binary fact [rel(a, b)]. *)

val random_binary :
  seed:int -> rels:Symbol.t list -> nodes:int -> facts:int -> Fact_set.t
(** A pseudo-random instance over binary relations: [facts] edges drawn
    uniformly over [nodes] named constants. Deterministic in [seed]. *)

val nonbdd_chain : int -> Fact_set.t
(** For Example 41: [E3(a_i, a_{i+1}, c)] for [i < n] plus [R(a_0, c)]:
    the [R]-atom must travel the whole chain, showing non-BDD behaviour. *)

val erdos_renyi :
  Symbol.t -> seed:int -> nodes:int -> edges:int -> Fact_set.t
(** An Erdős–Rényi-style G(n, m) digraph over one binary relation:
    [edges] edges drawn uniformly (with replacement — parallel duplicates
    collapse in the fact set) over [nodes] named constants [v0..].
    Deterministic in [seed]; sized for the million-fact evaluation
    experiments. *)

val barabasi_albert : Symbol.t -> seed:int -> nodes:int -> m:int -> Fact_set.t
(** A Barabási–Albert preferential-attachment digraph: each arriving
    vertex [v] attaches [min v m] edges to existing vertices sampled
    proportionally to degree (endpoint-multiset trick). The resulting
    heavy-tailed degree skew is the worst case separating the leapfrog
    join from nested-loop matching. Deterministic in [seed]. *)

open Logic

let set_eval = Eval_hook.set_eval
let eval_enabled = Eval_hook.eval_enabled

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type counters = { plans : int; seeks : int; gallops : int; emitted : int }

let c_plans = Atomic.make 0
let c_seeks = Atomic.make 0
let c_gallops = Atomic.make 0
let c_emitted = Atomic.make 0

let counters () =
  {
    plans = Atomic.get c_plans;
    seeks = Atomic.get c_seeks;
    gallops = Atomic.get c_gallops;
    emitted = Atomic.get c_emitted;
  }

let reset_counters () =
  Atomic.set c_plans 0;
  Atomic.set c_seeks 0;
  Atomic.set c_gallops 0;
  Atomic.set c_emitted 0

let tuple_compare = List.compare Term.compare

(* ------------------------------------------------------------------ *)
(* Plan compilation                                                    *)
(* ------------------------------------------------------------------ *)

(* A compiled pattern atom: the key order [kpos] is a permutation of the
   argument positions — rigid slots (constants, init-bound variables,
   closed functional terms) first, then variable slots by elimination
   level. Rows of the relation, sorted lexicographically along [kpos],
   make every frontier of the join a contiguous range. *)
type patom = {
  rel : Symbol.t;
  arity : int;
  kpos : int array;
  klev : int array;  (* level bound at key column k; -1 = rigid *)
  kid : int array;  (* term id expected at rigid key columns; -1 else *)
}

type compiled = {
  nfree : int;
  out_levels : int array;  (* answer slot -> its level in the order *)
  nvars : int;
  order : Term.t array;  (* level -> variable *)
  patoms : patom array;
  parts : int array array;  (* level -> indices of atoms binding it *)
}

(* A plan always keeps the pieces the legacy boxed engine needs, so the
   [set_eval] A/B toggle (and queries the leapfrog engine declines) can
   fall back without recompiling. *)
type plan = {
  p_init : Term.t Term.Map.t;
  p_flexible : Term.Set.t;
  p_pattern : Atom.t list;
  p_out : Term.t list;  (* unbound answer variables, emission order *)
  p_compiled : compiled option;
}

exception Not_compilable

let compile_body ~init ~flexible ~out atoms =
  try
    if atoms = [] then raise Not_compilable;
    (* Classify each argument once: [`Rigid id] matches by hash-consed
       identity, [`Var v] binds at [v]'s level. An argument that is
       neither (a functional term with a bindable variable inside) needs
       structural matching the sorted join cannot do — decline. *)
    let classify (t : Term.t) =
      match Term.Map.find_opt t init with
      | Some image -> `Rigid image.Term.id
      | None ->
          if Term.Set.mem t flexible then `Var t
          else if
            List.exists (fun v -> Term.Set.mem v flexible) (Term.vars t)
          then raise Not_compilable
          else `Rigid t.Term.id
    in
    let classified =
      List.map
        (fun a -> (a, List.map classify (Atom.args a)))
        atoms
    in
    (* Occurrence stats (count, first occurrence) per variable, plus the
       atoms each variable appears in, for the connectivity heuristic. *)
    let occ : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
    let var_atoms : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let tick = ref 0 in
    List.iteri
      (fun ai (_, args) ->
        List.iter
          (function
            | `Var (v : Term.t) ->
                incr tick;
                let n, first =
                  Option.value ~default:(0, !tick)
                    (Hashtbl.find_opt occ v.Term.id)
                in
                Hashtbl.replace occ v.Term.id (n + 1, first);
                let atoms_of =
                  Option.value ~default:[]
                    (Hashtbl.find_opt var_atoms v.Term.id)
                in
                if not (List.mem ai atoms_of) then
                  Hashtbl.replace var_atoms v.Term.id (ai :: atoms_of)
            | `Rigid _ -> ())
          args)
      classified;
    (* An answer variable that never occurs as a direct argument is not
       coverable by the join. *)
    List.iter
      (fun (v : Term.t) ->
        if not (Hashtbl.mem occ v.Term.id) then raise Not_compilable)
      out;
    let all_vars =
      List.concat_map
        (fun (_, args) ->
          List.filter_map
            (function `Var (v : Term.t) -> Some v | `Rigid _ -> None)
            args)
        classified
      |> List.sort_uniq Term.compare
    in
    (* Connectivity-greedy elimination order: start from the
       most-occurring variable, then always pick a variable sharing an
       atom with the already-ordered prefix (most shared atoms first,
       then occurrence count, then first occurrence). An order that
       chased answer variables first instead would enumerate cross
       products of unconnected candidates — |V|^2 work on a two-step
       path query whose join has |E| rows. *)
    let chosen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    let touched : (int, unit) Hashtbl.t = Hashtbl.create 16 in
    (* atom index -> touched once one of its variables is ordered *)
    let shared (v : Term.t) =
      List.fold_left
        (fun n ai -> if Hashtbl.mem touched ai then n + 1 else n)
        0
        (Hashtbl.find var_atoms v.Term.id)
    in
    let pick () =
      let best = ref None in
      List.iter
        (fun (v : Term.t) ->
          if not (Hashtbl.mem chosen v.Term.id) then begin
            let n, first = Hashtbl.find occ v.Term.id in
            let key = (shared v, n, -first) in
            match !best with
            | Some (bkey, _) when compare key bkey <= 0 -> ()
            | _ -> best := Some (key, v)
          end)
        all_vars;
      match !best with
      | Some (_, v) ->
          Hashtbl.replace chosen v.Term.id ();
          List.iter
            (fun ai -> Hashtbl.replace touched ai ())
            (Hashtbl.find var_atoms v.Term.id);
          v
      | None -> assert false
    in
    let order = Array.init (List.length all_vars) (fun _ -> pick ()) in
    let nvars = Array.length order in
    let nfree = List.length out in
    let level : (int, int) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri
      (fun i (v : Term.t) -> Hashtbl.replace level v.Term.id i)
      order;
    let patoms =
      Array.of_list
        (List.map
           (fun (a, args) ->
             let arity = Atom.arity a in
             let args = Array.of_list args in
             let keys =
               Array.init arity (fun pos ->
                   match args.(pos) with
                   | `Rigid id -> (-1, pos, id)
                   | `Var (v : Term.t) ->
                       (Hashtbl.find level v.Term.id, pos, -1))
             in
             Array.sort
               (fun (l1, p1, _) (l2, p2, _) ->
                 if l1 <> l2 then Int.compare l1 l2 else Int.compare p1 p2)
               keys;
             {
               rel = Atom.rel a;
               arity;
               kpos = Array.map (fun (_, p, _) -> p) keys;
               klev = Array.map (fun (l, _, _) -> l) keys;
               kid = Array.map (fun (_, _, id) -> id) keys;
             })
           classified)
    in
    let parts =
      Array.init nvars (fun lev ->
          let ps = ref [] in
          Array.iteri
            (fun i pa ->
              if Array.exists (fun l -> l = lev) pa.klev then
                ps := i :: !ps)
            patoms;
          Array.of_list (List.rev !ps))
    in
    if Array.exists (fun ps -> Array.length ps = 0) parts then
      raise Not_compilable;
    let out_levels =
      Array.of_list
        (List.map (fun (v : Term.t) -> Hashtbl.find level v.Term.id) out)
    in
    Some { nfree; out_levels; nvars; order; patoms; parts }
  with Not_compilable -> None

let compile_pieces ~init ~flexible ~free atoms =
  let out = List.filter (fun v -> not (Term.Map.mem v init)) free in
  {
    p_init = init;
    p_flexible = flexible;
    p_pattern = atoms;
    p_out = out;
    p_compiled = compile_body ~init ~flexible ~out atoms;
  }

module Plan = struct
  type t = plan

  let compile ?(init = Term.Map.empty) q =
    compile_pieces ~init ~flexible:(Cq.var_set q) ~free:(Cq.free q)
      (Cq.atoms q)

  let compiled p = p.p_compiled <> None

  let order p =
    match p.p_compiled with
    | Some c -> Array.to_list c.order
    | None -> []

  let pp ppf p =
    match p.p_compiled with
    | None -> Fmt.pf ppf "<legacy plan: %d atoms>" (List.length p.p_pattern)
    | Some c ->
        Fmt.pf ppf "<leapfrog plan: %d atoms, order [%a], %d answer slots>"
          (Array.length c.patoms)
          Fmt.(array ~sep:(any " ") Term.pp)
          c.order c.nfree
end

(* ------------------------------------------------------------------ *)
(* Prepared instances: sorted column views                             *)
(* ------------------------------------------------------------------ *)

module Prepared = struct
  type rel_rows = { nrows : int; ids : int array (* row-major *) }

  type t = {
    fs : Fact_set.t;
    lock : Mutex.t;
        (* serializes the lazy builds below, so one view can be shared
           across pool workers; the finished arrays are read-only *)
    rows : (int, rel_rows) Hashtbl.t;  (* Symbol.id -> matrix *)
    orders : (string, int array) Hashtbl.t;
        (* (Symbol.id, kpos) -> row permutation sorted along kpos *)
  }

  let make fs =
    {
      fs;
      lock = Mutex.create ();
      rows = Hashtbl.create 16;
      orders = Hashtbl.create 16;
    }

  let fact_set t = t.fs

  let rel_rows_unlocked t rel arity =
    let key = Symbol.id rel in
    match Hashtbl.find_opt t.rows key with
    | Some r -> r
    | None ->
        let buf = ref (Array.make 1024 0) in
        let n = ref 0 in
        let push id =
          if !n = Array.length !buf then begin
            let bigger = Array.make (2 * !n) 0 in
            Array.blit !buf 0 bigger 0 !n;
            buf := bigger
          end;
          !buf.(!n) <- id;
          incr n
        in
        Fact_set.iter_candidate_rows t.fs rel ~bound:[]
          (fun _atoms ids row ->
            if arity = 0 then push 0
            else
              for p = 0 to arity - 1 do
                push ids.((row * arity) + p)
              done);
        let width = max arity 1 in
        let r = { nrows = !n / width; ids = Array.sub !buf 0 !n } in
        Hashtbl.replace t.rows key r;
        r

  let rel_rows t rel arity =
    Mutex.protect t.lock (fun () -> rel_rows_unlocked t rel arity)

  let order t rel arity kpos =
    let key =
      String.concat ","
        (string_of_int (Symbol.id rel)
        :: Array.to_list (Array.map string_of_int kpos))
    in
    Mutex.protect t.lock @@ fun () ->
    match Hashtbl.find_opt t.orders key with
    | Some o -> o
    | None ->
        let { nrows; ids } = rel_rows_unlocked t rel arity in
        let ord = Array.init nrows Fun.id in
        let nk = Array.length kpos in
        Array.sort
          (fun a b ->
            let rec go k =
              if k = nk then Int.compare a b
              else
                let c =
                  Int.compare
                    ids.((a * arity) + kpos.(k))
                    ids.((b * arity) + kpos.(k))
                in
                if c <> 0 then c else go (k + 1)
            in
            go 0)
          ord;
        Hashtbl.replace t.orders key ord;
        ord
end

(* Prepared views are cached per fact set (physical identity, a small
   move-to-front LRU): repeated queries against one instance — the
   answer pipeline's evaluate-then-compare passes, repeated CQ calls on
   a chase result, the benchmark's A/B reps — amortize the sorted-view
   build exactly as the boxed engine amortizes its join index inside
   [Fact_set]. Small sets skip the cache: their build is cheaper than
   the eviction pressure they would put on the million-fact entries
   (containment probes churn through thousands of tiny targets). *)
let prepared_cache_max = 4
let prepared_cache_min_facts = 4096
let prepared_cache : (Fact_set.t * Prepared.t) list ref = ref []
let prepared_lock = Mutex.create ()

let prepared_for fs =
  if Fact_set.cardinal fs < prepared_cache_min_facts then Prepared.make fs
  else
    Mutex.protect prepared_lock (fun () ->
        match List.find_opt (fun (k, _) -> k == fs) !prepared_cache with
        | Some (_, p) ->
            prepared_cache :=
              (fs, p) :: List.filter (fun (k, _) -> k != fs) !prepared_cache;
            p
        | None ->
            let p = Prepared.make fs in
            prepared_cache :=
              (fs, p)
              :: List.filteri
                   (fun i _ -> i < prepared_cache_max - 1)
                   !prepared_cache;
            p)

(* ------------------------------------------------------------------ *)
(* The leapfrog join                                                   *)
(* ------------------------------------------------------------------ *)

exception Trip
exception Limit

type cursor = {
  c_ids : int array;
  c_arity : int;
  c_ord : int array;
  c_kpos : int array;
  c_klev : int array;
  c_kid : int array;
  c_nk : int;
  mutable lo : int;
  mutable hi : int;  (* current frontier: rows c_ord.(lo..hi-1) *)
  mutable depth : int;  (* key columns consumed by outer levels *)
}

type rt = {
  guard : Guard.t option;
  mutable steps : int;
  mutable gallops : int;
  mutable emitted : int;
}

let cval cur k r = cur.c_ids.((cur.c_ord.(r) * cur.c_arity) + cur.c_kpos.(k))

(* First index in [cur.lo, cur.hi) whose column-[k] value is >= x:
   exponential probe from the left edge, then binary search inside the
   overshot octave. This is the only data access of the join. *)
let seek rt cur k x =
  rt.steps <- rt.steps + 1;
  if rt.steps land Guard.poll_mask = 0 then
    (match rt.guard with
    | Some g -> if Guard.check g <> None then raise Trip
    | None -> ());
  let lo = cur.lo and hi = cur.hi in
  if lo >= hi || cval cur k lo >= x then lo
  else begin
    let step = ref 1 in
    while lo + !step < hi && cval cur k (lo + !step) < x do
      rt.gallops <- rt.gallops + 1;
      step := !step lsl 1
    done;
    let l = ref (lo + (!step lsr 1)) and h = ref (min hi (lo + !step)) in
    (* invariant: cval !l < x; !h = hi or cval !h >= x *)
    while !h - !l > 1 do
      let m = (!l + !h) / 2 in
      if cval cur k m < x then l := m else h := m
    done;
    !h
  end

(* Consume the rigid key prefix; false when the atom has no matching
   rows (a constant absent from the instance, or an empty relation). *)
let narrow_rigid rt cur =
  let ok = ref (cur.lo < cur.hi) in
  while !ok && cur.depth < cur.c_nk && cur.c_klev.(cur.depth) = -1 do
    let x = cur.c_kid.(cur.depth) in
    let l = seek rt cur cur.depth x in
    cur.lo <- l;
    if l < cur.hi && cval cur cur.depth l = x then begin
      cur.hi <- seek rt cur cur.depth (x + 1);
      cur.depth <- cur.depth + 1
    end
    else ok := false
  done;
  !ok && cur.lo < cur.hi

(* Leapfrog one level: intersect the participating atoms' frontiers on
   their current key column, and for each common value [x] narrow every
   participant through all its columns at this level (a variable
   repeated inside an atom adds extra columns) before running [k].
   [k] returning true stops the enumeration (the existential suffix
   needs one witness); the caller's frontiers are restored either way. *)
let join_level rt cursors parts lev vals k =
  let ps : int array = parts.(lev) in
  let np = Array.length ps in
  let save_lo = Array.map (fun i -> cursors.(i).lo) ps in
  let save_hi = Array.map (fun i -> cursors.(i).hi) ps in
  let save_depth = Array.map (fun i -> cursors.(i).depth) ps in
  let stop = ref false in
  let exhausted = ref false in
  Array.iter
    (fun i -> if cursors.(i).lo >= cursors.(i).hi then exhausted := true)
    ps;
  while (not !stop) && not !exhausted do
    (* find the next common value across the np frontiers *)
    let c0 = cursors.(ps.(0)) in
    if c0.lo >= c0.hi then exhausted := true
    else begin
      let x = ref (cval c0 c0.depth c0.lo) in
      let matched = ref 1 and idx = ref (1 mod np) in
      while !matched < np && not !exhausted do
        let cur = cursors.(ps.(!idx)) in
        let r = seek rt cur cur.depth !x in
        cur.lo <- r;
        if r >= cur.hi then exhausted := true
        else begin
          let v = cval cur cur.depth r in
          if v = !x then incr matched
          else begin
            x := v;
            matched := 1
          end
        end;
        idx := (!idx + 1) mod np
      done;
      if not !exhausted then begin
        let x = !x in
        (* narrow every participant through its columns at this level *)
        let ok = ref true in
        let i = ref 0 in
        while !ok && !i < np do
          let cur = cursors.(ps.(!i)) in
          while
            !ok
            && cur.depth < cur.c_nk
            && cur.c_klev.(cur.depth) = lev
          do
            let l = seek rt cur cur.depth x in
            cur.lo <- l;
            if l < cur.hi && cval cur cur.depth l = x then begin
              cur.hi <- seek rt cur cur.depth (x + 1);
              cur.depth <- cur.depth + 1
            end
            else ok := false
          done;
          incr i
        done;
        if !ok then begin
          vals.(lev) <- x;
          if k () then stop := true
        end;
        (* rewind the level's narrowing and advance past x *)
        Array.iteri
          (fun j i ->
            let cur = cursors.(i) in
            cur.depth <- save_depth.(j);
            cur.hi <- save_hi.(j);
            if not !stop then cur.lo <- seek rt cur cur.depth (x + 1))
          ps
      end
    end
  done;
  Array.iteri
    (fun j i ->
      let cur = cursors.(i) in
      cur.lo <- save_lo.(j);
      cur.hi <- save_hi.(j);
      cur.depth <- save_depth.(j))
    ps;
  !stop

(* Run a compiled plan: enumerate the full join in elimination order and
   project each row onto the answer slots, deduplicating as rows arrive
   (the elimination order is chosen for join locality, not for emission
   grouping, so the same projection can recur). [limit] stops the
   enumeration after that many distinct tuples — existence checks pass 1
   and stop at the first join row. One fuel unit is drawn per distinct
   tuple; the seek counter polls the guard for deadline/cancellation.
   Tuples are sorted at the end — the same sorted-distinct contract as
   [Cq.answers]. *)
let run_compiled ?guard ?limit c prepared =
  Atomic.incr c_plans;
  let rt = { guard; steps = 0; gallops = 0; emitted = 0 } in
  let acc = ref [] in
  let finish tripped =
    Atomic.set c_seeks (Atomic.get c_seeks + rt.steps);
    Atomic.set c_gallops (Atomic.get c_gallops + rt.gallops);
    Atomic.set c_emitted (Atomic.get c_emitted + rt.emitted);
    (List.sort_uniq tuple_compare !acc, tripped)
  in
  try
    let cursors =
      Array.map
        (fun pa ->
          let rows = Prepared.rel_rows prepared pa.rel pa.arity in
          let ord = Prepared.order prepared pa.rel pa.arity pa.kpos in
          {
            c_ids = rows.Prepared.ids;
            c_arity = max pa.arity 1;
            c_ord = ord;
            c_kpos = pa.kpos;
            c_klev = pa.klev;
            c_kid = pa.kid;
            c_nk = Array.length pa.kpos;
            lo = 0;
            hi = Array.length ord;
            depth = 0;
          })
        c.patoms
    in
    if not (Array.for_all (fun cur -> narrow_rigid rt cur) cursors) then
      finish false
    else begin
      let vals = Array.make (max 1 c.nvars) 0 in
      let seen : (int list, unit) Hashtbl.t = Hashtbl.create 64 in
      let emit () =
        let key =
          Array.to_list (Array.map (fun lev -> vals.(lev)) c.out_levels)
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          rt.emitted <- rt.emitted + 1;
          (match guard with
          | Some g -> ignore (Guard.spend g 1)
          | None -> ());
          acc := List.map Term.of_id key :: !acc;
          match limit with
          | Some l when rt.emitted >= l -> raise Limit
          | _ -> ()
        end
      in
      (* Levels past the last answer variable are purely existential:
         one witness settles them, so the join at those levels stops at
         its first completed row instead of enumerating them all. *)
      let suffix_start =
        Array.fold_left (fun m lev -> max m (lev + 1)) 0 c.out_levels
      in
      (* [go lev] returns whether its subtree completed at least one
         row; a level inside the suffix stops iterating its values as
         soon as one of them completed a row. *)
      let rec go lev =
        if lev >= c.nvars then begin
          emit ();
          true
        end
        else
          join_level rt cursors c.parts lev vals (fun () ->
              go (lev + 1) && lev >= suffix_start)
      in
      ignore (go 0);
      finish false
    end
  with
  | Trip -> finish true
  | Limit -> finish false

(* ------------------------------------------------------------------ *)
(* Legacy (boxed) execution — the [set_eval false] reference           *)
(* ------------------------------------------------------------------ *)

let legacy_problem p target =
  Homomorphism.make ~init:p.p_init ~flexible:p.p_flexible
    ~pattern:p.p_pattern ~target ()

let run_legacy ?guard p prepared =
  let seen = ref 0 in
  let acc = ref [] in
  let tripped = ref false in
  (try
     Homomorphism.iter (legacy_problem p (Prepared.fact_set prepared))
       (fun m ->
         incr seen;
         (match guard with
         | Some g ->
             if !seen land Guard.poll_mask = 0 && Guard.check g <> None
             then raise Trip
         | None -> ());
         acc := List.map (fun v -> Term.Map.find v m) p.p_out :: !acc)
   with Trip -> tripped := true);
  (List.sort_uniq tuple_compare !acc, !tripped)

let run_plan ?guard ?limit p prepared =
  match p.p_compiled with
  | Some c when eval_enabled () -> run_compiled ?guard ?limit c prepared
  | _ -> run_legacy ?guard p prepared

let outcome_of ?guard tuples =
  match guard with
  | Some g -> Guard.outcome g ~complete:tuples ~partial:tuples
  | None -> Guard.Complete tuples

let run ?guard p prepared =
  let tuples, _ = run_plan ?guard p prepared in
  outcome_of ?guard tuples

(* Boolean existence: an empty answer prefix and a tuple limit of one,
   so the join stops at the first witness. The legacy arm uses the
   engine's own early-exit [exists]. *)
let exists_pieces ~init ~flexible atoms prepared =
  let p = compile_pieces ~init ~flexible ~free:[] atoms in
  match p.p_compiled with
  | Some c when eval_enabled () ->
      let tuples, _ = run_compiled ~limit:1 c prepared in
      tuples <> []
  | _ -> Homomorphism.exists (legacy_problem p (Prepared.fact_set prepared))

(* ------------------------------------------------------------------ *)
(* CQ / UCQ entry points                                               *)
(* ------------------------------------------------------------------ *)

let answers_outcome ?guard q f =
  run ?guard (Plan.compile q) (prepared_for f)

let answers ?guard q f =
  match answers_outcome ?guard q f with
  | Guard.Complete ts -> ts
  | Guard.Exhausted { partial; _ } -> partial

let holds q f tuple =
  if List.length tuple <> List.length (Cq.free q) then
    invalid_arg "Eval.holds: answer tuple arity mismatch";
  let init =
    List.fold_left2
      (fun m v a -> Term.Map.add v a m)
      Term.Map.empty (Cq.free q) tuple
  in
  exists_pieces ~init ~flexible:(Cq.var_set q) (Cq.atoms q)
    (prepared_for f)

let boolean_holds q f =
  exists_pieces ~init:Term.Map.empty ~flexible:(Cq.var_set q) (Cq.atoms q)
    (prepared_for f)

let ucq_answers_outcome ?guard u f =
  let prepared = prepared_for f in
  let seen : (int list, unit) Hashtbl.t = Hashtbl.create 256 in
  let acc = ref [] in
  List.iter
    (fun d ->
      let tuples, _ = run_plan ?guard (Plan.compile d) prepared in
      List.iter
        (fun tuple ->
          let key = List.map (fun (t : Term.t) -> t.Term.id) tuple in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            acc := tuple :: !acc
          end)
        tuples)
    (Ucq.disjuncts u);
  outcome_of ?guard (List.sort tuple_compare !acc)

let ucq_answers ?guard u f =
  match ucq_answers_outcome ?guard u f with
  | Guard.Complete ts -> ts
  | Guard.Exhausted { partial; _ } -> partial

let ucq_holds u f tuple =
  let prepared = prepared_for f in
  Ucq.exists
    (fun d ->
      List.length tuple = List.length (Cq.free d)
      &&
      let init =
        List.fold_left2
          (fun m v a -> Term.Map.add v a m)
          Term.Map.empty (Cq.free d) tuple
      in
      exists_pieces ~init ~flexible:(Cq.var_set d) (Cq.atoms d) prepared)
    u

let ucq_boolean_holds u f =
  let prepared = prepared_for f in
  Ucq.exists
    (fun d ->
      exists_pieces ~init:Term.Map.empty ~flexible:(Cq.var_set d)
        (Cq.atoms d) prepared)
    u

(* ------------------------------------------------------------------ *)
(* Chase trigger matching (moved verbatim from Chase.Engine)           *)
(* ------------------------------------------------------------------ *)

module Match = struct
  (* The semi-naive trigger enumeration of a rule splits into independent
     rounds: one per body-atom position seeded by a delta fact, one per
     domain-variable position seeded by a new domain element, plus the
     one-shot firing of fully ground rules. Each round is a self-contained
     homomorphism search over read-only fact sets, which is exactly the
     unit of work the parallel engine distributes across domains. *)
  type part = Delta_seed of int | Dom_seed of int | Ground

  let rule_parts rule ~old_is_empty =
    let m = List.length (Tgd.body rule) in
    let d = List.length (Tgd.dom_vars rule) in
    let delta_parts = List.init m (fun k -> Delta_seed k) in
    if d > 0 then delta_parts @ List.init d (fun i -> Dom_seed i)
    else if m = 0 && old_is_empty then
      (* A fully ground rule like (loop): fires exactly once, at stage 1. *)
      delta_parts @ [ Ground ]
    else delta_parts

  (* Enumerate one round of the triggers of [rule] that use at least one
     "new" ingredient: a body atom in [delta], or a domain-variable binding
     to a new domain element. The partition (first delta body atom / first
     new domain element) makes the enumeration exact, without duplicates.
     NB: the production order names fresh nulls — these searches stay on
     the register-machine engine whose order the differentials pin. *)
  let part_triggers rule part ~old_facts ~delta ~full ~old_dom_list
      ~new_dom_list ~full_dom_list f =
    let body = Array.of_list (Tgd.body rule) in
    let m = Array.length body in
    let dom_vars = Tgd.dom_vars rule in
    let flexible = Term.Set.of_list (Tgd.body_vars rule) in
    match part with
    | Delta_seed k ->
        let pattern =
          List.init m (fun j ->
              let target =
                if j = k then delta else if j < k then old_facts else full
              in
              (body.(j), target))
        in
        let domain_bindings =
          List.map (fun v -> (v, full_dom_list)) dom_vars
        in
        Homomorphism.iter_multi ~flexible ~pattern ~domain_bindings f
    | Dom_seed i ->
        let pattern =
          Array.to_list (Array.map (fun a -> (a, old_facts)) body)
        in
        let domain_bindings =
          List.mapi
            (fun j v ->
              let pool =
                if j = i then new_dom_list
                else if j < i then old_dom_list
                else full_dom_list
              in
              (v, pool))
            dom_vars
        in
        Homomorphism.iter_multi ~flexible ~pattern ~domain_bindings f
    | Ground -> f Term.Map.empty
end

(* ------------------------------------------------------------------ *)
(* Containment probe registration                                      *)
(* ------------------------------------------------------------------ *)

(* Plan-time engine selection for boolean existence probes: below this
   target size the sorted-view build costs more than the whole
   register-machine search (containment targets are query bodies of a
   few dozen atoms), so the plan delegates; at or above it the leapfrog
   join runs. Either engine decides the same verdict. *)
let probe_leapfrog_min = 64

let () =
  Eval_hook.register (fun ~init ~flexible ~pattern ~target ->
      if not (Eval_hook.eval_enabled ()) then None
      else
        let p = compile_pieces ~init ~flexible ~free:[] pattern in
        match p.p_compiled with
        | None -> None
        | Some c ->
            if Fact_set.cardinal target < probe_leapfrog_min then
              Some (Homomorphism.exists (legacy_problem p target))
            else
              let tuples, _ =
                run_compiled ~limit:1 c (prepared_for target)
              in
              Some (tuples <> []))

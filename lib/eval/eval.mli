(** The unified executable-plan evaluation layer.

    Rewriting turns an ontology-mediated query into a UCQ; this module
    is the half that {e executes} the result against data. A CQ compiles
    into a worst-case-optimal, leapfrog-style multiway join over sorted
    per-column views of the fact set's arena rows: one global variable
    elimination order (connectivity-greedy — each next variable shares
    an atom with the ordered prefix whenever possible), per-atom
    key-column permutations fixed
    at plan time (bound/rigid slots first), and per-variable iterator
    frontiers intersected with galloping (exponential-probe) seeks. A
    [Ucq.t] evaluates as a union of plans sharing one dedup table, so a
    tuple produced by an early disjunct is never re-emitted.

    The same module is the single entry point for every other matcher in
    the codebase: {!Match} hosts the order-pinned trigger enumeration
    the chase engine uses (delegating to the register-machine engine —
    trigger {e order} names fresh nulls, so it must stay bit-identical),
    and at module initialization an existence probe is registered in
    {!Eval_hook} for the containment solver. The legacy boxed paths
    remain reachable only through the {!set_eval} A/B toggle. *)

open Logic

val set_eval : bool -> unit
(** A/B switch (same pattern as {!Fact_set.set_arena}): [false] routes
    {!answers}, {!holds}, the UCQ evaluators and the containment probe
    back onto the legacy boxed enumeration. Defaults to [true]. *)

val eval_enabled : unit -> bool

(** {1 Plans} *)

module Plan : sig
  type t

  val compile : ?init:Term.t Term.Map.t -> Cq.t -> t
  (** Compile [q] (with the [init]-bound variables frozen to their
      images) into an executable plan. Queries the leapfrog engine
      cannot represent (an argument that is neither a bindable variable
      nor a closed term) compile to a legacy-engine plan instead —
      {!compiled} tells them apart. *)

  val compiled : t -> bool
  (** [true]: the plan runs on the leapfrog join; [false]: it delegates
      to the boxed homomorphism enumeration. *)

  val order : t -> Term.t list
  (** The global variable elimination order: connectivity-greedy from
      the most-occurring variable, so each level's frontier is
      constrained by the levels above it. Answer tuples are projections
      of the full join, deduplicated as rows are emitted. Empty for
      legacy plans. *)

  val pp : t Fmt.t
end

(** A fact set prepared for repeated plan runs: per-relation row-major
    argument-id matrices plus sorted row permutations, built lazily per
    (relation, key order) under a per-view mutex, so pool workers can
    share one view. The CQ/UCQ entry points below cache views per fact
    set (physical identity, small LRU) — repeated queries against one
    instance amortize the sort the same way the boxed engine amortizes
    its join index. *)
module Prepared : sig
  type t

  val make : Fact_set.t -> t
  val fact_set : t -> Fact_set.t
end

val run :
  ?guard:Guard.t ->
  Plan.t ->
  Prepared.t ->
  (Term.t list list, Term.t list list) Guard.outcome
(** Execute a plan: the distinct tuples of values of the plan's unbound
    answer variables (in [Cq.free] order), sorted as {!Cq.answers}
    sorts. Guard checkpoints run at {!Guard.poll_mask} spacing on the
    seek counter and one fuel unit is drawn per emitted tuple; a trip
    salvages the tuples found so far — every one is a real answer
    (sound, possibly incomplete). *)

(** {1 CQ / UCQ evaluation}

    Drop-in equivalents of [Cq.holds]/[Cq.answers]/[Ucq.boolean_holds],
    executing through plans (or through the legacy engine when
    {!eval_enabled} is off — results are identical either way). *)

val answers : ?guard:Guard.t -> Cq.t -> Fact_set.t -> Term.t list list
(** All distinct answer tuples, like {!Cq.answers}. On a guard trip the
    partial (sound) tuple list is returned; use {!answers_outcome} to
    observe the trip. *)

val answers_outcome :
  ?guard:Guard.t ->
  Cq.t ->
  Fact_set.t ->
  (Term.t list list, Term.t list list) Guard.outcome

val holds : Cq.t -> Fact_set.t -> Term.t list -> bool
(** [holds q f tuple], like {!Cq.holds}. Raises [Invalid_argument] on an
    arity mismatch. *)

val boolean_holds : Cq.t -> Fact_set.t -> bool

val ucq_answers : ?guard:Guard.t -> Ucq.t -> Fact_set.t -> Term.t list list
(** Distinct answers of the union, evaluated disjunct by disjunct over
    one shared {!Prepared} view with early cross-disjunct dedup. *)

val ucq_answers_outcome :
  ?guard:Guard.t ->
  Ucq.t ->
  Fact_set.t ->
  (Term.t list list, Term.t list list) Guard.outcome

val ucq_holds : Ucq.t -> Fact_set.t -> Term.t list -> bool
val ucq_boolean_holds : Ucq.t -> Fact_set.t -> bool

(** {1 Chase trigger matching}

    The semi-naive trigger enumeration, moved verbatim from the chase
    engine: the {e order} in which triggers are produced names the fresh
    nulls of Definition 4, so these searches are pinned to the
    register-machine engine ({!Homomorphism.iter_multi}) whose
    enumeration order the QCheck differentials fix — the leapfrog join
    visits solutions in sorted-id order instead and must never be used
    here. Centralizing them in the plan layer retires the last matcher
    that lived outside it. *)
module Match : sig
  (** One independent round of a rule's semi-naive trigger enumeration:
      seeded by a delta fact at body position [k], by a new domain
      element at domain-variable position [i], or the one-shot firing of
      a fully ground rule. *)
  type part = Delta_seed of int | Dom_seed of int | Ground

  val rule_parts : Tgd.t -> old_is_empty:bool -> part list

  val part_triggers :
    Tgd.t ->
    part ->
    old_facts:Fact_set.t ->
    delta:Fact_set.t ->
    full:Fact_set.t ->
    old_dom_list:Term.t list ->
    new_dom_list:Term.t list ->
    full_dom_list:Term.t list ->
    (Homomorphism.mapping -> unit) ->
    unit
  (** Enumerate the triggers of [rule] in [part] that use at least one
      new ingredient, in the exact order the sequential engine fires
      them (no duplicates across parts). *)
end

(** {1 Instrumentation}

    Process-wide counters of leapfrog work, surfaced through the CLI's
    [--stats] plumbing next to the register-machine and posting
    counters. Thread-safe. *)

type counters = {
  plans : int;  (** leapfrog plans executed *)
  seeks : int;  (** iterator seek operations *)
  gallops : int;  (** exponential-probe doubling steps inside seeks *)
  emitted : int;  (** answer tuples emitted (pre-dedup) *)
}

val counters : unit -> counters
val reset_counters : unit -> unit

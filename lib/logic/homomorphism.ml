type mapping = Term.t Term.Map.t

type problem = {
  init : mapping;
  image_ok : Term.t -> Term.t -> bool;
  prefer : (Atom.t -> int) option;
  domain_vars : Term.t list;
  flexible : Term.Set.t;
  pattern : Atom.t list;
  target : Fact_set.t;
}

(* The default image filter, by name: the compiled engine skips the
   per-binding [image_ok] call entirely when the caller passed nothing
   (detected by physical equality), keeping the common chase path free
   of closure calls. *)
let default_image_ok (_ : Term.t) (_ : Term.t) = true

let make ?(init = Term.Map.empty) ?(image_ok = default_image_ok) ?prefer
    ?(domain_vars = []) ~flexible ~pattern ~target () =
  { init; image_ok; prefer; domain_vars; flexible; pattern; target }

exception Stop

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type counters = {
  searches : int;  (** compiled-engine invocations *)
  nodes : int;  (** search nodes (seed selections) *)
  reg_ops : int;  (** register-machine slot checks *)
  solutions : int;  (** homomorphisms enumerated by the compiled engine *)
}

let c_searches = Atomic.make 0
let c_nodes = Atomic.make 0
let c_reg_ops = Atomic.make 0
let c_solutions = Atomic.make 0

let counters () =
  {
    searches = Atomic.get c_searches;
    nodes = Atomic.get c_nodes;
    reg_ops = Atomic.get c_reg_ops;
    solutions = Atomic.get c_solutions;
  }

let reset_counters () =
  Atomic.set c_searches 0;
  Atomic.set c_nodes 0;
  Atomic.set c_reg_ops 0;
  Atomic.set c_solutions 0

(* ------------------------------------------------------------------ *)
(* Boxed engine                                                        *)
(* ------------------------------------------------------------------ *)

(* Generic engine: each pattern atom carries its own target fact set (the
   semi-naive chase partitions body atoms between "old", "delta" and "full"
   stages), and each domain-bound variable carries its own candidate pool.

   This is the original map-and-set backtracking search, kept as the
   [prefer]-steered path (the core search reorders candidates, which the
   compiled engine deliberately does not support) and as the boxed arm of
   the arena A/B toggle. The compiled engine below must enumerate
   homomorphisms in {e exactly} this engine's order. *)
let iter_multi_boxed ~init ~image_ok ~prefer ~tie_break ~injective ~flexible
    ~pattern ~domain_bindings f =
  (* Per-search-node match plan: the flexibility of each argument
     position and the current assignment are fixed while the candidates
     of one atom are scanned, so they are resolved once into an array of
     slot actions and the per-candidate check is a plain array walk —
     no set membership or map lookup per argument per fact. *)
  let module Slot = struct
    type t =
      | Rigid of Term.t (* constant, or flexible term already assigned *)
      | Free of Term.t (* unassigned flexible term, first occurrence *)
      | Dup of int (* repeat of the [Free] at this earlier position *)
  end in
  let compile_plan assignment atom =
    let args = Array.of_list (Atom.args atom) in
    Array.mapi
      (fun pos t ->
        if Term.Set.mem t flexible then
          match Term.Map.find_opt t assignment with
          | Some image -> Slot.Rigid image
          | None ->
              let rec first_occ p =
                if p >= pos then Slot.Free t
                else if Term.equal args.(p) t then Slot.Dup p
                else first_occ (p + 1)
              in
              first_occ 0
        else Slot.Rigid t)
      args
  in
  (* [used] is the image set of the current assignment, maintained only
     in injective mode (the extra argument is dead weight otherwise): a
     candidate binding whose image is already taken fails immediately,
     pruning the search instead of filtering complete mappings. *)
  let match_plan assignment used plan fact =
    let n = Array.length plan in
    let rec go assignment used pos =
      if pos >= n then Some (assignment, used)
      else
        let u = Atom.arg fact pos in
        match plan.(pos) with
        | Slot.Rigid t ->
            if Term.equal t u then go assignment used (pos + 1) else None
        | Slot.Free v ->
            if
              image_ok v u
              && not (injective && Term.Set.mem u used)
            then
              go (Term.Map.add v u assignment)
                (if injective then Term.Set.add u used else used)
                (pos + 1)
            else None
        | Slot.Dup p ->
            if Term.equal u (Atom.arg fact p) then
              go assignment used (pos + 1)
            else None
    in
    go assignment used 0
  in
  let rec bind_domain assignment used = function
    | [] -> f assignment
    | (v, pool) :: rest -> (
        match Term.Map.find_opt v assignment with
        | Some u ->
            (* Pre-bound (e.g. by a body atom): still honour the pool. *)
            if List.exists (Term.equal u) pool then
              bind_domain assignment used rest
        | None ->
            List.iter
              (fun u ->
                if image_ok v u && not (injective && Term.Set.mem u used)
                then
                  bind_domain
                    (Term.Map.add v u assignment)
                    (if injective then Term.Set.add u used else used)
                    rest)
              pool)
  in
  let bound_count assignment atom =
    (* [List.length (bound_positions assignment atom)] without building
       the list — seed scoring runs at every search node. *)
    let n = ref 0 in
    List.iter
      (fun t ->
        if Term.Set.mem t flexible then begin
          if Term.Map.mem t assignment then incr n
        end
        else incr n)
      (Atom.args atom);
    !n
  in
  let rec solve assignment used remaining =
    match remaining with
    | [] -> bind_domain assignment used domain_bindings
    | ((a0, _) as e0) :: others ->
        (* Most-bound-first seed selection; [tie_break] (higher first)
           settles ties — the containment solver feeds it static
           connectivity weights so that, at equal bound counts, the
           atom most entangled with the rest of the pattern is matched
           next. It permutes the enumeration order, never the verdict. *)
        let tb =
          match tie_break with None -> fun _ -> 0 | Some f -> f
        in
        let (best_atom, best_target), _, _ =
          List.fold_left
            (fun ((_, bn, bt) as best) ((a, _) as cur) ->
              let n = bound_count assignment a in
              if n > bn then (cur, n, tb a)
              else if n = bn then begin
                let t = tb a in
                if t > bt then (cur, n, t) else best
              end
              else best)
            (e0, bound_count assignment a0, tb a0)
            others
        in
        let plan = compile_plan assignment best_atom in
        let bound = ref [] in
        Array.iteri
          (fun pos slot ->
            match slot with
            | Slot.Rigid t -> bound := (pos, t) :: !bound
            | Slot.Free _ | Slot.Dup _ -> ())
          plan;
        let bound = !bound in
        let rest =
          List.filter (fun (a, _) -> not (a == best_atom)) remaining
        in
        let try_fact fact =
          match match_plan assignment used plan fact with
          | Some (assignment', used') -> solve assignment' used' rest
          | None -> ()
        in
        (match prefer with
        | None ->
            (* Hot path: enumerate raw index rows and reject on the flat
               argument-id arena before touching any [Atom.t]. The plan
               compiles to one int per position — a rigid slot's term id,
               [-1] for a free slot, [-2 - p] for a duplicate of position
               [p] — so the dominant no-match case is a short scan over
               two contiguous int arrays with no pointer chasing.
               Survivors go through [match_plan] unchanged (it re-checks
               rigid/dup cheaply and performs the actual binding), so
               accepted facts, enumeration order, and verdicts are
               identical to the unfiltered path. *)
            let arity = Array.length plan in
            let iplan =
              Array.map
                (function
                  | Slot.Rigid (t : Term.t) -> t.Term.id
                  | Slot.Free _ -> -1
                  | Slot.Dup p -> -2 - p)
                plan
            in
            let row_matches (ids : int array) base =
              let rec go pos =
                pos >= arity
                ||
                let c = Array.unsafe_get iplan pos in
                (if c = -1 then true
                 else if c >= 0 then Array.unsafe_get ids (base + pos) = c
                 else
                   Array.unsafe_get ids (base + pos)
                   = Array.unsafe_get ids (base + (-2 - c)))
                && go (pos + 1)
              in
              go 0
            in
            Fact_set.iter_candidate_rows best_target (Atom.rel best_atom)
              ~bound (fun atoms ids row ->
                if row_matches ids (row * arity) then try_fact atoms.(row))
        | Some rank ->
            (* Candidate preference steers which homomorphism is found
               first (e.g. the core search prefers folding onto original
               constants); it never prunes. *)
            let cands =
              Fact_set.candidates best_target (Atom.rel best_atom) ~bound
            in
            List.iter try_fact
              (List.stable_sort
                 (fun a b -> Int.compare (rank a) (rank b))
                 cands))
  in
  if Term.Map.for_all (fun v u -> image_ok v u) init then begin
    let used0 =
      if injective then
        Term.Map.fold (fun _ u s -> Term.Set.add u s) init Term.Set.empty
      else Term.Set.empty
    in
    (* An init with a repeated image admits no injective extension. *)
    if
      (not injective)
      || Term.Set.cardinal used0 = Term.Map.cardinal init
    then solve init used0 pattern
  end

(* ------------------------------------------------------------------ *)
(* Compiled engine                                                     *)
(* ------------------------------------------------------------------ *)

(* The flat-arena register machine. The whole search runs on bare ints:
   flexible terms become *registers* (an [int array] of bound term ids,
   [-1] when free), each pattern atom compiles to a slot array — one int
   per position, a rigid term id [>= 1] or [-(r + 1)] for register [r];
   a repeated variable is simply the same register, so the boxed plan's
   Rigid/Free/Dup trichotomy falls out of the register state — and
   candidate rows stream off {!Fact_set.iter_join_candidates}'s packed
   id slabs. Backtracking pops a trail of register indices; nothing is
   allocated per node or per candidate, and a [Term.t] is rematerialized
   (via {!Term.of_id}) only when a complete homomorphism reaches the
   caller.

   Order contract: this engine enumerates homomorphisms in {e exactly}
   the boxed engine's order. The dynamic most-bound-first seed selection
   (first maximum, [tie_break] higher-first on ties) is replicated over
   an [alive] mask in original pattern order; candidate rows arrive in
   the canonical per-layer order whatever seed constraint the index
   picks, because every position is re-checked here (see
   [Fact_set.iter_join_candidates]). The QCheck differentials pin this
   equivalence against the boxed engine on random theories. *)
let iter_multi_compiled ~init ~image_ok ~tie_break ~injective ~flexible
    ~pattern ~domain_bindings f =
  (* -- compile: registers, slot arrays, pools ---------------------- *)
  let reg_of : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let reg_vars = ref [] in
  let nregs_ref = ref 0 in
  let reg_for (t : Term.t) =
    match Hashtbl.find_opt reg_of t.Term.id with
    | Some r -> r
    | None ->
        let r = !nregs_ref in
        incr nregs_ref;
        Hashtbl.add reg_of t.Term.id r;
        reg_vars := t :: !reg_vars;
        r
  in
  let entries = Array.of_list pattern in
  let m = Array.length entries in
  let patoms = Array.map fst entries in
  let targets = Array.map snd entries in
  let rels = Array.map Atom.rel patoms in
  let slots =
    Array.map
      (fun (a : Atom.t) ->
        Array.map
          (fun (t : Term.t) ->
            if Term.Set.mem t flexible then -(reg_for t) - 1 else t.Term.id)
          a.Atom.args)
      patoms
  in
  let tb_arr =
    match tie_break with
    | None -> Array.make (max 1 m) 0
    | Some tb -> Array.map tb patoms
  in
  let dentries = Array.of_list domain_bindings in
  let nd = Array.length dentries in
  let d_var = Array.map fst dentries in
  let d_reg = Array.map (fun (v, _) -> reg_for v) dentries in
  let d_pool_terms = Array.map (fun (_, pool) -> Array.of_list pool) dentries in
  let d_pool_ids =
    Array.map (Array.map (fun (t : Term.t) -> t.Term.id)) d_pool_terms
  in
  let nregs = !nregs_ref in
  let reg_var = Array.of_list (List.rev !reg_vars) in
  let reg_val = Array.make (max 1 nregs) (-1) in
  let trail = Array.make (max 1 nregs) 0 in
  let sp = ref 0 in
  let max_arity = Array.fold_left (fun acc s -> max acc (Array.length s)) 0 slots in
  (* One scratch row per search depth: [iter_join_candidates] re-reads
     its bound arrays between callback invocations (once per index
     layer), and the recursive [solve] inside the callback fills its own
     node's constraints — a shared row would be clobbered mid-iteration. *)
  let bound_pos = Array.make_matrix (max 1 m) (max 1 max_arity) 0 in
  let bound_ids = Array.make_matrix (max 1 m) (max 1 max_arity) 0 in
  let alive = Array.make (max 1 m) true in
  (* Along one search path each atom is removed at most once, so a stack
     of [m] indices covers every level's removals. *)
  let removed = Array.make (max 1 m) 0 in
  let rsp = ref 0 in
  let has_image_ok = not (image_ok == default_image_ok) in
  (* -- init: preload registers, injectivity base ------------------- *)
  let init_ids =
    if injective then
      Array.of_list
        (Term.Map.fold (fun _ (u : Term.t) acc -> u.Term.id :: acc) init [])
    else [||]
  in
  let n_init_ids = Array.length init_ids in
  Term.Map.iter
    (fun (v : Term.t) (u : Term.t) ->
      match Hashtbl.find_opt reg_of v.Term.id with
      | Some r -> reg_val.(r) <- u.Term.id
      | None -> ())
    init;
  (* Is [uid] already an image — of [init] or of a bound register? *)
  let inj_clash uid =
    let rec scan_init i =
      i < n_init_ids && (Array.unsafe_get init_ids i = uid || scan_init (i + 1))
    in
    let rec scan_reg r =
      r < nregs && (Array.unsafe_get reg_val r = uid || scan_reg (r + 1))
    in
    scan_init 0 || scan_reg 0
  in
  let ops = ref 0 and nodes = ref 0 and sols = ref 0 in
  let emit () =
    incr sols;
    let mapping = ref init in
    for r = 0 to nregs - 1 do
      let v = reg_val.(r) in
      if v >= 0 then mapping := Term.Map.add reg_var.(r) (Term.of_id v) !mapping
    done;
    f !mapping
  in
  let rec bind_domain k =
    if k >= nd then emit ()
    else begin
      let r = d_reg.(k) in
      let v = reg_val.(r) in
      let ids = d_pool_ids.(k) in
      if v >= 0 then begin
        (* Pre-bound (e.g. by a body atom): still honour the pool. *)
        let rec memb i =
          i < Array.length ids && (ids.(i) = v || memb (i + 1))
        in
        if memb 0 then bind_domain (k + 1)
      end
      else
        let terms = d_pool_terms.(k) in
        for i = 0 to Array.length ids - 1 do
          let uid = ids.(i) in
          if
            ((not has_image_ok) || image_ok d_var.(k) terms.(i))
            && not (injective && inj_clash uid)
          then begin
            reg_val.(r) <- uid;
            bind_domain (k + 1);
            reg_val.(r) <- -1
          end
        done
    end
  in
  let rec solve remaining_n =
    if remaining_n = 0 then bind_domain 0
    else begin
      incr nodes;
      (* Most-bound-first seed: first maximum in pattern order, ties to
         the higher [tie_break] — the boxed fold, over the alive mask. *)
      let best = ref (-1) and bn = ref (-1) and bt = ref min_int in
      for j = 0 to m - 1 do
        if alive.(j) then begin
          let sl = slots.(j) in
          let n = ref 0 in
          for pos = 0 to Array.length sl - 1 do
            let c = Array.unsafe_get sl pos in
            if c >= 0 || Array.unsafe_get reg_val (-c - 1) >= 0 then incr n
          done;
          if !n > !bn || (!n = !bn && tb_arr.(j) > !bt) then begin
            best := j;
            bn := !n;
            bt := tb_arr.(j)
          end
        end
      done;
      let j = !best in
      let sl = slots.(j) in
      let arity = Array.length sl in
      (* Bound constraints: every position with a known id (rigid slot or
         bound register), highest position first — mirroring the boxed
         path's bound list. *)
      let depth = m - remaining_n in
      let bound_pos = bound_pos.(depth) and bound_ids = bound_ids.(depth) in
      let nb = ref 0 in
      for pos = arity - 1 downto 0 do
        let c = sl.(pos) in
        let id = if c >= 0 then c else reg_val.(-c - 1) in
        if id >= 0 then begin
          bound_pos.(!nb) <- pos;
          bound_ids.(!nb) <- id;
          incr nb
        end
      done;
      (* Retire the chosen atom — and, as in the boxed engine, any alive
         entry sharing the same physical atom. *)
      let rmark = !rsp in
      let a_j = patoms.(j) in
      for k = 0 to m - 1 do
        if alive.(k) && patoms.(k) == a_j then begin
          alive.(k) <- false;
          removed.(!rsp) <- k;
          incr rsp
        end
      done;
      let nrem = remaining_n - (!rsp - rmark) in
      Fact_set.iter_join_candidates targets.(j) rels.(j) ~bound_pos ~bound_ids
        ~nb:!nb (fun atoms ids row ->
          let base = row * arity in
          let mark = !sp in
          let rec go pos =
            pos >= arity
            ||
            begin
              incr ops;
              let c = Array.unsafe_get sl pos in
              let uid = Array.unsafe_get ids (base + pos) in
              if c >= 0 then uid = c && go (pos + 1)
              else
                let r = -c - 1 in
                let v = Array.unsafe_get reg_val r in
                if v >= 0 then v = uid && go (pos + 1)
                else if
                  (has_image_ok
                  && not
                       (image_ok reg_var.(r)
                          (Array.unsafe_get atoms row).Atom.args.(pos)))
                  || (injective && inj_clash uid)
                then false
                else begin
                  reg_val.(r) <- uid;
                  trail.(!sp) <- r;
                  incr sp;
                  go (pos + 1)
                end
            end
          in
          if go 0 then solve nrem;
          while !sp > mark do
            decr sp;
            reg_val.(trail.(!sp)) <- -1
          done);
      while !rsp > rmark do
        decr rsp;
        alive.(removed.(!rsp)) <- true
      done
    end
  in
  let flush () =
    Atomic.incr c_searches;
    ignore (Atomic.fetch_and_add c_nodes !nodes);
    ignore (Atomic.fetch_and_add c_reg_ops !ops);
    ignore (Atomic.fetch_and_add c_solutions !sols)
  in
  if Term.Map.for_all (fun v u -> image_ok v u) init then begin
    let distinct_ok =
      (not injective)
      || Term.Set.cardinal
           (Term.Map.fold (fun _ u s -> Term.Set.add u s) init Term.Set.empty)
         = Term.Map.cardinal init
    in
    if distinct_ok then
      (* [Stop] (and any caller exception) must not lose the counters. *)
      Fun.protect ~finally:flush (fun () -> solve m)
  end

let iter_multi ?(init = Term.Map.empty) ?(image_ok = default_image_ok)
    ?prefer ?tie_break ?(injective = false) ~flexible ~pattern
    ~domain_bindings f =
  match prefer with
  | None when Fact_set.arena_enabled () ->
      iter_multi_compiled ~init ~image_ok ~tie_break ~injective ~flexible
        ~pattern ~domain_bindings f
  | _ ->
      iter_multi_boxed ~init ~image_ok ~prefer ~tie_break ~injective ~flexible
        ~pattern ~domain_bindings f

let iter p f =
  let pool =
    lazy (Term.Set.elements (Fact_set.domain p.target))
  in
  let domain_bindings =
    List.map (fun v -> (v, Lazy.force pool)) p.domain_vars
  in
  iter_multi ~init:p.init ~image_ok:p.image_ok ?prefer:p.prefer
    ~flexible:p.flexible
    ~pattern:(List.map (fun a -> (a, p.target)) p.pattern)
    ~domain_bindings f

let find p =
  let result = ref None in
  (try
     iter p (fun m ->
         result := Some m;
         raise Stop)
   with Stop -> ());
  !result

let exists p = find p <> None

let count p =
  let n = ref 0 in
  iter p (fun _ -> incr n);
  !n

let apply mapping ~flexible atom =
  let image t =
    if Term.Set.mem t flexible then
      match Term.Map.find_opt t mapping with
      | Some u -> u
      | None -> invalid_arg "Homomorphism.apply: unmapped flexible term"
    else t
  in
  Atom.map_args image atom

type mapping = Term.t Term.Map.t

type problem = {
  init : mapping;
  image_ok : Term.t -> Term.t -> bool;
  prefer : (Atom.t -> int) option;
  domain_vars : Term.t list;
  flexible : Term.Set.t;
  pattern : Atom.t list;
  target : Fact_set.t;
}

let make ?(init = Term.Map.empty) ?(image_ok = fun _ _ -> true) ?prefer
    ?(domain_vars = []) ~flexible ~pattern ~target () =
  { init; image_ok; prefer; domain_vars; flexible; pattern; target }

exception Stop

(* Generic engine: each pattern atom carries its own target fact set (the
   semi-naive chase partitions body atoms between "old", "delta" and "full"
   stages), and each domain-bound variable carries its own candidate pool. *)
let iter_multi ?(init = Term.Map.empty) ?(image_ok = fun _ _ -> true)
    ?prefer ?tie_break ?(injective = false) ~flexible ~pattern
    ~domain_bindings f =
  (* Per-search-node match plan: the flexibility of each argument
     position and the current assignment are fixed while the candidates
     of one atom are scanned, so they are resolved once into an array of
     slot actions and the per-candidate check is a plain array walk —
     no set membership or map lookup per argument per fact. *)
  let module Slot = struct
    type t =
      | Rigid of Term.t (* constant, or flexible term already assigned *)
      | Free of Term.t (* unassigned flexible term, first occurrence *)
      | Dup of int (* repeat of the [Free] at this earlier position *)
  end in
  let compile_plan assignment atom =
    let args = Array.of_list (Atom.args atom) in
    Array.mapi
      (fun pos t ->
        if Term.Set.mem t flexible then
          match Term.Map.find_opt t assignment with
          | Some image -> Slot.Rigid image
          | None ->
              let rec first_occ p =
                if p >= pos then Slot.Free t
                else if Term.equal args.(p) t then Slot.Dup p
                else first_occ (p + 1)
              in
              first_occ 0
        else Slot.Rigid t)
      args
  in
  (* [used] is the image set of the current assignment, maintained only
     in injective mode (the extra argument is dead weight otherwise): a
     candidate binding whose image is already taken fails immediately,
     pruning the search instead of filtering complete mappings. *)
  let match_plan assignment used plan fact =
    let n = Array.length plan in
    let rec go assignment used pos =
      if pos >= n then Some (assignment, used)
      else
        let u = Atom.arg fact pos in
        match plan.(pos) with
        | Slot.Rigid t ->
            if Term.equal t u then go assignment used (pos + 1) else None
        | Slot.Free v ->
            if
              image_ok v u
              && not (injective && Term.Set.mem u used)
            then
              go (Term.Map.add v u assignment)
                (if injective then Term.Set.add u used else used)
                (pos + 1)
            else None
        | Slot.Dup p ->
            if Term.equal u (Atom.arg fact p) then
              go assignment used (pos + 1)
            else None
    in
    go assignment used 0
  in
  let rec bind_domain assignment used = function
    | [] -> f assignment
    | (v, pool) :: rest -> (
        match Term.Map.find_opt v assignment with
        | Some u ->
            (* Pre-bound (e.g. by a body atom): still honour the pool. *)
            if List.exists (Term.equal u) pool then
              bind_domain assignment used rest
        | None ->
            List.iter
              (fun u ->
                if image_ok v u && not (injective && Term.Set.mem u used)
                then
                  bind_domain
                    (Term.Map.add v u assignment)
                    (if injective then Term.Set.add u used else used)
                    rest)
              pool)
  in
  let bound_count assignment atom =
    (* [List.length (bound_positions assignment atom)] without building
       the list — seed scoring runs at every search node. *)
    let n = ref 0 in
    List.iter
      (fun t ->
        if Term.Set.mem t flexible then begin
          if Term.Map.mem t assignment then incr n
        end
        else incr n)
      (Atom.args atom);
    !n
  in
  let rec solve assignment used remaining =
    match remaining with
    | [] -> bind_domain assignment used domain_bindings
    | ((a0, _) as e0) :: others ->
        (* Most-bound-first seed selection; [tie_break] (higher first)
           settles ties — the containment solver feeds it static
           connectivity weights so that, at equal bound counts, the
           atom most entangled with the rest of the pattern is matched
           next. It permutes the enumeration order, never the verdict. *)
        let tb =
          match tie_break with None -> fun _ -> 0 | Some f -> f
        in
        let (best_atom, best_target), _, _ =
          List.fold_left
            (fun ((_, bn, bt) as best) ((a, _) as cur) ->
              let n = bound_count assignment a in
              if n > bn then (cur, n, tb a)
              else if n = bn then begin
                let t = tb a in
                if t > bt then (cur, n, t) else best
              end
              else best)
            (e0, bound_count assignment a0, tb a0)
            others
        in
        let plan = compile_plan assignment best_atom in
        let bound = ref [] in
        Array.iteri
          (fun pos slot ->
            match slot with
            | Slot.Rigid t -> bound := (pos, t) :: !bound
            | Slot.Free _ | Slot.Dup _ -> ())
          plan;
        let bound = !bound in
        let rest =
          List.filter (fun (a, _) -> not (a == best_atom)) remaining
        in
        let try_fact fact =
          match match_plan assignment used plan fact with
          | Some (assignment', used') -> solve assignment' used' rest
          | None -> ()
        in
        (match prefer with
        | None ->
            (* Hot path: enumerate raw index rows and reject on the flat
               argument-id arena before touching any [Atom.t]. The plan
               compiles to one int per position — a rigid slot's term id,
               [-1] for a free slot, [-2 - p] for a duplicate of position
               [p] — so the dominant no-match case is a short scan over
               two contiguous int arrays with no pointer chasing.
               Survivors go through [match_plan] unchanged (it re-checks
               rigid/dup cheaply and performs the actual binding), so
               accepted facts, enumeration order, and verdicts are
               identical to the unfiltered path. *)
            let arity = Array.length plan in
            let iplan =
              Array.map
                (function
                  | Slot.Rigid (t : Term.t) -> t.Term.id
                  | Slot.Free _ -> -1
                  | Slot.Dup p -> -2 - p)
                plan
            in
            let row_matches (ids : int array) base =
              let rec go pos =
                pos >= arity
                ||
                let c = Array.unsafe_get iplan pos in
                (if c = -1 then true
                 else if c >= 0 then Array.unsafe_get ids (base + pos) = c
                 else
                   Array.unsafe_get ids (base + pos)
                   = Array.unsafe_get ids (base + (-2 - c)))
                && go (pos + 1)
              in
              go 0
            in
            Fact_set.iter_candidate_rows best_target (Atom.rel best_atom)
              ~bound (fun atoms ids row ->
                if row_matches ids (row * arity) then try_fact atoms.(row))
        | Some rank ->
            (* Candidate preference steers which homomorphism is found
               first (e.g. the core search prefers folding onto original
               constants); it never prunes. *)
            let cands =
              Fact_set.candidates best_target (Atom.rel best_atom) ~bound
            in
            List.iter try_fact
              (List.stable_sort
                 (fun a b -> Int.compare (rank a) (rank b))
                 cands))
  in
  if Term.Map.for_all (fun v u -> image_ok v u) init then begin
    let used0 =
      if injective then
        Term.Map.fold (fun _ u s -> Term.Set.add u s) init Term.Set.empty
      else Term.Set.empty
    in
    (* An init with a repeated image admits no injective extension. *)
    if
      (not injective)
      || Term.Set.cardinal used0 = Term.Map.cardinal init
    then solve init used0 pattern
  end

let iter p f =
  let pool =
    lazy (Term.Set.elements (Fact_set.domain p.target))
  in
  let domain_bindings =
    List.map (fun v -> (v, Lazy.force pool)) p.domain_vars
  in
  iter_multi ~init:p.init ~image_ok:p.image_ok ?prefer:p.prefer
    ~flexible:p.flexible
    ~pattern:(List.map (fun a -> (a, p.target)) p.pattern)
    ~domain_bindings f

let find p =
  let result = ref None in
  (try
     iter p (fun m ->
         result := Some m;
         raise Stop)
   with Stop -> ());
  !result

let exists p = find p <> None

let count p =
  let n = ref 0 in
  iter p (fun _ -> incr n);
  !n

let apply mapping ~flexible atom =
  let image t =
    if Term.Set.mem t flexible then
      match Term.Map.find_opt t mapping with
      | Some u -> u
      | None -> invalid_arg "Homomorphism.apply: unmapped flexible term"
    else t
  in
  Atom.map_args image atom

(* Subsumption index over the disjuncts of an evolving UCQ.

   The rewriting saturation and [Ucq.of_list] spend their time asking,
   for a candidate disjunct [q], "which stored disjuncts could subsume
   [q]?" and "which could [q] subsume?". Both are homomorphism
   existence questions, so every stored disjunct is indexed by cheap
   homomorphism-invariant keys — the signature fingerprint
   [Cq.sig_mask], the exact per-predicate occurrence vector (its
   support refines the hashed mask; the counts themselves are compared
   only for equality probes, because a homomorphism may collapse atoms
   and therefore bounds no count of its target), and the anchor- and
   distance-profiles of [Cq.hom_feasible] — and a candidate pair
   reaches the backtracking solver only when the probe fails to refute
   it.

   Entries live in insertion order with a tombstone flag; reading the
   live entries newest-first reproduces exactly the disjunct order the
   unindexed reference engine maintains ([q :: kept]), so the indexed
   and reference engines can produce identical UCQs, not merely
   equivalent ones. *)

type entry = {
  q : Cq.t;
  occ : int array;
      (* sorted [(Symbol.id lsl 20) lor count] per body relation *)
  mutable live : bool;
}

type t = {
  mutable entries : entry array;
  mutable n : int;  (* used slots, dead or alive *)
  mutable n_live : int;
}

(* A/B switch, following the [Fact_set.set_incremental] /
   [Containment.set_memoization] convention. *)
let indexing = Atomic.make true
let set_indexing b = Atomic.set indexing b
let indexing_enabled () = Atomic.get indexing

(* Process-wide probe instrumentation (for [--stats] and the bench
   harness). *)
type stats = { pairs : int; pruned : int }

let c_pairs = Atomic.make 0
let c_pruned = Atomic.make 0

let stats () = { pairs = Atomic.get c_pairs; pruned = Atomic.get c_pruned }

let reset_stats () =
  Atomic.set c_pairs 0;
  Atomic.set c_pruned 0

let occ_vector q =
  let tbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let sid = Symbol.id (Atom.rel a) in
      Hashtbl.replace tbl sid
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl sid)))
    (Cq.atoms q);
  let v =
    Array.of_seq
      (Seq.map
         (fun (sid, n) -> (sid lsl 20) lor min n 0xFFFFF)
         (Hashtbl.to_seq tbl))
  in
  Array.sort compare v;
  v

(* Relation support of [from] within [into]: every predicate of [from]
   must occur in [into] (with any multiplicity — see the collapse
   caveat above). Exact, unlike the 61-bit hashed [Cq.sig_mask]. *)
let occ_supported ~from ~into =
  let nf = Array.length from and ni = Array.length into in
  let rec go i j =
    j >= nf
    || (i < ni
       &&
       let ki = into.(i) lsr 20 and kj = from.(j) lsr 20 in
       if ki < kj then go (i + 1) j
       else ki = kj && go (i + 1) (j + 1))
  in
  go 0 0

let create () = { entries = [||]; n = 0; n_live = 0 }

let cardinal idx = idx.n_live

let add idx q =
  if idx.n = Array.length idx.entries then begin
    let cap = max 16 (2 * idx.n) in
    let entries =
      Array.init cap (fun i ->
          if i < idx.n then idx.entries.(i)
          else { q; occ = [||]; live = false } (* placeholder *))
    in
    idx.entries <- entries
  end;
  idx.entries.(idx.n) <- { q; occ = occ_vector q; live = true };
  idx.n <- idx.n + 1;
  idx.n_live <- idx.n_live + 1

(* Live disjuncts, newest first — the reference engine's order. *)
let disjuncts idx =
  let acc = ref [] in
  for i = 0 to idx.n - 1 do
    let e = idx.entries.(i) in
    if e.live then acc := e.q :: !acc
  done;
  !acc

(* Could stored disjunct [d] subsume candidate [q], i.e. could
   [Containment.implies q d] (a homomorphism [d -> q]) hold? *)
let feasible_subsumer ~(d : entry) ~(q : Cq.t) ~qocc =
  occ_supported ~from:d.occ ~into:qocc && Cq.hom_feasible ~from:d.q ~into:q

(* ...and the converse direction, [Containment.implies d q]. *)
let feasible_victim ~(d : entry) ~(q : Cq.t) ~qocc =
  occ_supported ~from:qocc ~into:d.occ && Cq.hom_feasible ~from:q ~into:d.q

(* [covered idx q ~implies]: is [q] subsumed by some live disjunct?
   Probes newest-first, like the reference list scan. *)
let covered idx q ~implies =
  let qocc = occ_vector q in
  let rec scan i =
    i >= 0
    &&
    let e = idx.entries.(i) in
    (e.live
    && begin
         Atomic.incr c_pairs;
         if feasible_subsumer ~d:e ~q ~qocc then implies q e.q
         else begin
           Atomic.incr c_pruned;
           false
         end
       end)
    || scan (i - 1)
  in
  scan (idx.n - 1)

(* Kill every live disjunct that [q] subsumes. *)
let drop_subsumed idx q ~implies =
  let qocc = occ_vector q in
  for i = 0 to idx.n - 1 do
    let e = idx.entries.(i) in
    if e.live then begin
      Atomic.incr c_pairs;
      if feasible_victim ~d:e ~q ~qocc then begin
        if implies e.q q then begin
          e.live <- false;
          idx.n_live <- idx.n_live - 1
        end
      end
      else Atomic.incr c_pruned
    end
  done

let insert_minimal idx q ~implies =
  if covered idx q ~implies then `Subsumed
  else begin
    drop_subsumed idx q ~implies;
    add idx q;
    `Added
  end

(* Candidate lists for callers that fan the surviving containment
   checks out across a pool: the entries the probes could not refute,
   in the same scan order as [covered] / [drop_subsumed]. *)
let subsumer_candidates idx q =
  let qocc = occ_vector q in
  let acc = ref [] in
  for i = 0 to idx.n - 1 do
    let e = idx.entries.(i) in
    if e.live then begin
      Atomic.incr c_pairs;
      if feasible_subsumer ~d:e ~q ~qocc then acc := e.q :: !acc
      else Atomic.incr c_pruned
    end
  done;
  !acc (* newest first *)

let victim_candidates idx q =
  let qocc = occ_vector q in
  let acc = ref [] in
  for i = idx.n - 1 downto 0 do
    let e = idx.entries.(i) in
    if e.live then begin
      Atomic.incr c_pairs;
      if feasible_victim ~d:e ~q ~qocc then acc := (i, e.q) :: !acc
      else Atomic.incr c_pruned
    end
  done;
  !acc (* oldest first *)

let kill idx i =
  let e = idx.entries.(i) in
  if e.live then begin
    e.live <- false;
    idx.n_live <- idx.n_live - 1
  end

(* One-shot pair filter for list-based callers ([Ucq.covers] /
   [Ucq.add_minimal]) that have no persistent index: same invariants,
   same counters, fingerprints served from the [Cq] caches. *)
let pair_feasible ~from ~into =
  Atomic.incr c_pairs;
  if Cq.hom_feasible ~from ~into then true
  else begin
    Atomic.incr c_pruned;
    false
  end

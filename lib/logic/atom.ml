type t = { rel : Symbol.t; args : Term.t array }

let make rel args =
  if List.length args <> Symbol.arity rel then
    invalid_arg
      (Printf.sprintf "Atom.make: %s expects arity %d, got %d"
         (Symbol.name rel) (Symbol.arity rel) (List.length args));
  { rel; args = Array.of_list args }

let rel a = a.rel
let args a = Array.to_list a.args
let arg a i = a.args.(i)
let arity a = Array.length a.args

let compare a b =
  let c = Symbol.compare a.rel b.rel in
  if c <> 0 then c
  else
    let n = Array.length a.args in
    let rec go i =
      if i >= n then 0
      else
        let c = Term.compare a.args.(i) b.args.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = a == b || compare a b = 0

let hash a =
  Array.fold_left
    (fun acc t -> (acc * 31) + Term.hash t)
    (Symbol.id a.rel) a.args

let dedup_preserving_order items =
  let _, rev =
    List.fold_left
      (fun (seen, acc) t ->
        if Term.Set.mem t seen then (seen, acc)
        else (Term.Set.add t seen, t :: acc))
      (Term.Set.empty, []) items
  in
  List.rev rev

let terms a = dedup_preserving_order (Array.to_list a.args)
let vars a = dedup_preserving_order (List.concat_map Term.vars (Array.to_list a.args))

let is_ground a = vars a = []
let subst m a = { a with args = Array.map (Term.subst m) a.args }

(* Arity is preserved by construction, so this skips [make]'s validation
   and the list round-trip — it is the constructor of the chase's hot
   loop (imaging rule heads through a trigger). *)
let map_args f a = { a with args = Array.map f a.args }

let pp ppf a =
  Fmt.pf ppf "%a(%a)" Symbol.pp a.rel
    (Fmt.array ~sep:(Fmt.any ",") Term.pp)
    a.args

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

type t = {
  name : string;
  body : Atom.t list;
  dom_vars : Term.t list;
  head : Atom.t list;
  frontier : Term.t list;
  exist_vars : Term.t list;
  skolemized_head : Atom.t list;
}

let dedup_terms l =
  let _, rev =
    List.fold_left
      (fun (seen, acc) x ->
        if Term.Set.mem x seen then (seen, acc)
        else (Term.Set.add x seen, x :: acc))
      (Term.Set.empty, []) l
  in
  List.rev rev

let atom_list_vars atoms = dedup_terms (List.concat_map Atom.vars atoms)

let check_flat_atom what a =
  List.iter
    (fun t ->
      match t.Term.view with
      | Term.Var _ | Term.Const _ -> ()
      | Term.App _ ->
          invalid_arg
            (Fmt.str "Tgd.make: %s atom %a contains a functional term" what
               Atom.pp a))
    (Atom.args a)

(* Canonical form of the head: the isomorphism type of Definition 3,
   extended to multi-atom heads. Frontier variables are numbered by first
   occurrence in the head ("y_i"), existential variables likewise ("w_j"). *)
let head_isomorphism_type ~frontier_set head =
  let head_occurrence_order =
    dedup_terms
      (List.concat_map (fun a -> List.filter Term.is_var (Atom.args a)) head)
  in
  let frontier_order =
    List.filter (fun v -> Term.Set.mem v frontier_set) head_occurrence_order
  in
  let exist_order =
    List.filter
      (fun v -> not (Term.Set.mem v frontier_set))
      head_occurrence_order
  in
  let tag t =
    match t.Term.view with
    | Term.Const c -> "c:" ^ c
    | Term.App _ -> assert false
    | Term.Var _ -> (
        match List.find_index (Term.equal t) frontier_order with
        | Some i -> "y" ^ string_of_int i
        | None -> (
            match List.find_index (Term.equal t) exist_order with
            | Some j -> "w" ^ string_of_int j
            | None -> assert false))
  in
  let atom_str a =
    Fmt.str "%s/%d(%s)"
      (Symbol.name (Atom.rel a))
      (Atom.arity a)
      (String.concat "," (List.map tag (Atom.args a)))
  in
  let canon = String.concat ";" (List.map atom_str head) in
  (canon, frontier_order, exist_order)

let make ?(name = "") ?(dom_vars = []) ~body ~head () =
  if head = [] then invalid_arg "Tgd.make: empty head";
  List.iter (check_flat_atom "body") body;
  List.iter (check_flat_atom "head") head;
  List.iter
    (fun v ->
      if not (Term.is_var v) then
        invalid_arg "Tgd.make: domain variable must be a variable")
    dom_vars;
  let body_atom_vars = atom_list_vars body in
  List.iter
    (fun v ->
      if List.exists (Term.equal v) body_atom_vars then
        invalid_arg
          (Fmt.str
             "Tgd.make: domain variable %a also occurs in a body atom"
             Term.pp v))
    dom_vars;
  let universe = dedup_terms (body_atom_vars @ dom_vars) in
  let universe_set = Term.Set.of_list universe in
  let head_vars = atom_list_vars head in
  let frontier_set =
    Term.Set.of_list
      (List.filter (fun v -> Term.Set.mem v universe_set) head_vars)
  in
  let canon, frontier_order, exist_order =
    head_isomorphism_type ~frontier_set head
  in
  let exist_vars = exist_order in
  let skolem_subst =
    Term.subst_of_bindings
      (List.mapi
         (fun j w ->
           let fn = Printf.sprintf "f%d[%s]" j canon in
           (w, Term.app fn frontier_order))
         exist_vars)
  in
  let skolemized_head = List.map (Atom.subst skolem_subst) head in
  {
    name;
    body;
    dom_vars;
    head;
    frontier = frontier_order;
    exist_vars;
    skolemized_head;
  }

let name r = r.name
let body r = r.body
let head r = r.head
let dom_vars r = r.dom_vars
let frontier r = r.frontier
let exist_vars r = r.exist_vars
let body_vars r = dedup_terms (atom_list_vars r.body @ r.dom_vars)

let signature r =
  List.fold_left
    (fun acc a -> Symbol.Set.add (Atom.rel a) acc)
    Symbol.Set.empty (r.body @ r.head)

let max_arity r =
  Symbol.Set.fold (fun s acc -> max acc (Symbol.arity s)) (signature r) 0

let is_datalog r = r.exist_vars = []
let is_linear r = List.length r.body <= 1 && r.dom_vars = []
let is_detached r = r.frontier = []

let is_guarded r =
  let bv = Term.Set.of_list (body_vars r) in
  r.body = [] && r.dom_vars = []
  || List.exists
       (fun a -> Term.Set.subset bv (Term.Set.of_list (Atom.vars a)))
       r.body

let is_connected r =
  let g = Gaifman.of_atoms r.body in
  let isolated_dom_vars = List.length r.dom_vars in
  match (r.body, isolated_dom_vars) with
  | [], 0 | [], 1 -> true
  | [], _ -> false
  | _ :: _, 0 -> Gaifman.connected g
  | _ :: _, _ -> false

let is_single_head r = List.length r.head = 1
let is_frontier_one r = List.length r.frontier <= 1

let triggers r target f =
  let flexible = Term.Set.of_list (body_vars r) in
  Homomorphism.iter
    (Homomorphism.make ~domain_vars:r.dom_vars ~flexible ~pattern:r.body
       ~target ())
    f

(* Applying a trigger is the chase's innermost loop: image head terms
   directly through the (small) mapping rather than converting it to a
   generic substitution, which would rebuild an intermediate map and pay a
   memo table per substituted term. Head atoms are flat modulo Skolem
   terms, whose arguments are frontier variables. *)
let rec image sigma t =
  match t.Term.view with
  | Term.Var _ -> (
      match Term.Map.find_opt t sigma with Some u -> u | None -> t)
  | Term.Const _ -> t
  | Term.App { fn; args } -> Term.app fn (List.map (image sigma) args)

let subst_atoms sigma =
  List.map (fun a -> Atom.map_args (image sigma) a)

let apply r sigma = subst_atoms sigma r.skolemized_head

let head_witness_exists r sigma target =
  let head' = subst_atoms sigma r.head in
  Homomorphism.exists
    (Homomorphism.make
       ~flexible:(Term.Set.of_list r.exist_vars)
       ~pattern:head' ~target ())

exception Violation of Homomorphism.mapping

let violating_trigger r target =
  try
    triggers r target (fun sigma ->
        if not (head_witness_exists r sigma target) then
          raise (Violation sigma));
    None
  with Violation sigma -> Some sigma

let satisfied_in r target = violating_trigger r target = None

let refresh r =
  let all_vars =
    dedup_terms (body_vars r @ atom_list_vars r.head)
  in
  let renaming =
    Term.subst_of_bindings
      (List.map (fun v -> (v, Cq.fresh_var ~prefix:"u" ())) all_vars)
  in
  make ~name:r.name
    ~dom_vars:(List.map (Term.subst renaming) r.dom_vars)
    ~body:(List.map (Atom.subst renaming) r.body)
    ~head:(List.map (Atom.subst renaming) r.head)
    ()

let body_cq r =
  match (r.body, r.dom_vars) with
  | [], _ | _, _ :: _ -> None
  | _ :: _, [] ->
      let body_var_set = Term.Set.of_list (atom_list_vars r.body) in
      let free =
        List.filter (fun v -> Term.Set.mem v body_var_set) r.frontier
      in
      Some (Cq.make ~free r.body)

let pp ppf r =
  let pp_atoms = Fmt.list ~sep:(Fmt.any ", ") Atom.pp in
  let pp_body ppf () =
    match (r.body, r.dom_vars) with
    | [], [] -> Fmt.string ppf "true"
    | [], dv ->
        Fmt.pf ppf "dom(%a)" (Fmt.list ~sep:(Fmt.any ",") Term.pp) dv
    | atoms, [] -> pp_atoms ppf atoms
    | atoms, dv ->
        Fmt.pf ppf "%a, dom(%a)" pp_atoms atoms
          (Fmt.list ~sep:(Fmt.any ",") Term.pp)
          dv
  in
  match r.exist_vars with
  | [] -> Fmt.pf ppf "%a -> %a" pp_body () pp_atoms r.head
  | ev ->
      Fmt.pf ppf "%a -> exists %a. %a" pp_body ()
        (Fmt.list ~sep:(Fmt.any " ") Term.pp)
        ev pp_atoms r.head

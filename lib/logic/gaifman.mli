(** Gaifman graphs of fact sets (and, via the atoms of a query body, of
    conjunctive queries).

    Vertices are active-domain terms; two vertices are adjacent iff they
    co-occur in some fact (Section 2). Distances feed the distancing
    analyzer (Definition 43), degrees the bd-locality analyzer
    (Definition 40). *)

type t

val of_fact_set : Fact_set.t -> t

val of_terms_per_atom : Term.t list list -> t
(** Gaifman graph whose vertices are exactly the given terms, adjacent iff
    they share a list (one list per atom). [of_fact_set] passes all terms,
    [of_atoms] only the variables. *)

val of_atoms : Atom.t list -> t
(** Gaifman graph over the *variables* of the atoms — the query Gaifman
    graph of Section 2 ("Connected queries"). Constants are ignored. *)

val vertices : t -> Term.Set.t
val neighbours : t -> Term.t -> Term.Set.t
val degree : t -> Term.t -> int
val max_degree : t -> int

val distance : t -> Term.t -> Term.t -> int option
(** BFS distance; [None] when disconnected or a vertex is absent. *)

val distances_from : t -> Term.t -> int Term.Map.t
val connected : t -> bool
val components : t -> Term.Set.t list
val same_component : t -> Term.t -> Term.t -> bool

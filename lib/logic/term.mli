(** Hash-consed first-order terms.

    Terms are constants, variables, or Skolem-function applications
    (Definition 4). Hash-consing is essential here: under the (grid) rule of
    [T_d] the *tree* size of a Skolem term doubles at every chase level, but
    the number of distinct subterms stays small; with hash-consing, equality
    and comparison are O(1) and the chase stays polynomial in the number of
    distinct terms.

    Because terms are globally hash-consed, structurally equal terms built
    anywhere in the program are physically equal — this is what makes
    Observation 8 ("Ch(T, F) = Ch(T, D)" literally, as sets) hold in code,
    which the locality analyzers rely on. *)

type t = private { id : int; view : view }

and view =
  | Const of string
  | Var of string
  | App of { fn : string; args : t list }
      (** A Skolem term: [fn] is the canonical Skolem-function name derived
          from the head isomorphism type (Definition 4), [args] the frontier
          images. *)

val const : string -> t
val var : string -> t
val app : string -> t list -> t

val compare : t -> t -> int
(** Total order by hash-consing id: O(1), consistent within a run. *)

val equal : t -> t -> bool
val hash : t -> int

val of_id : int -> t
(** The term whose hash-consing id is [id] — the inverse of [hash] /
    [t.id], in O(1). The flat-arena join engine carries bare term ids
    through its registers and only rematerializes terms for surviving
    solutions. Raises [Invalid_argument] on an id no term was ever
    interned with. *)

val is_var : t -> bool
val is_const : t -> bool
val is_functional : t -> bool
(** True exactly for [App] terms, i.e. chase-invented (Skolem) terms. *)

val depth : t -> int
(** Skolem-nesting depth: constants and variables have depth 0. Memoized. *)

val dag_size : t -> int
(** Number of distinct subterms (the honest size of a hash-consed term). *)

val vars : t -> t list
(** The variables occurring in the term, each once, in first-occurrence
    order. *)

module Int_map : Map.S with type key = int

val subst : t Int_map.t -> t -> t
(** [subst m t] replaces every subterm whose id is bound in [m] (in
    practice: variables) by its image, sharing-aware (memoized per call). *)

val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val subst_of_bindings : (t * t) list -> t Int_map.t
(** Convenience: build a substitution keyed by term id from
    [(variable, image)] pairs. *)

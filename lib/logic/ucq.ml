type t = { disjuncts : Cq.t list }

let empty = { disjuncts = [] }
let disjuncts u = u.disjuncts
let cardinal u = List.length u.disjuncts
let is_empty u = u.disjuncts = []

(* With indexing on, every disjunct pair is probed against the cheap
   homomorphism-invariant fingerprints before the containment search
   runs; a refuted pair costs a few integer compares. The fingerprints
   are cached on the [Cq]s, so even these one-shot list scans benefit.
   The verdicts — and hence the disjunct lists — are identical either
   way. *)
let covers u q =
  if Ucq_index.indexing_enabled () then
    List.exists
      (fun q' ->
        Ucq_index.pair_feasible ~from:q' ~into:q
        && Containment.implies q q')
      u.disjuncts
  else List.exists (fun q' -> Containment.implies q q') u.disjuncts

let add_minimal u q =
  if covers u q then (u, `Subsumed)
  else
    let kept =
      if Ucq_index.indexing_enabled () then
        List.filter
          (fun q' ->
            not
              (Ucq_index.pair_feasible ~from:q ~into:q'
              && Containment.implies q' q))
          u.disjuncts
      else
        List.filter (fun q' -> not (Containment.implies q' q)) u.disjuncts
    in
    ({ disjuncts = q :: kept }, `Added)

let of_list qs =
  (* The quadratic minimization: with indexing on, build a transient
     subsumption index so the pair probes are fingerprint-first and the
     containment verdicts go through the memo table. Reading the index
     newest-first reproduces the reference fold's disjunct order
     exactly. *)
  if Ucq_index.indexing_enabled () then begin
    let idx = Ucq_index.create () in
    List.iter
      (fun q ->
        ignore
          (Ucq_index.insert_minimal idx q
             ~implies:Containment.implies_memo))
      qs;
    { disjuncts = Ucq_index.disjuncts idx }
  end
  else List.fold_left (fun u q -> fst (add_minimal u q)) empty qs

let of_disjuncts_unchecked disjuncts = { disjuncts }

let equivalent a b =
  List.for_all (covers b) a.disjuncts && List.for_all (covers a) b.disjuncts

let union a b = List.fold_left (fun u q -> fst (add_minimal u q)) a b.disjuncts

let max_disjunct_size u =
  List.fold_left (fun acc q -> max acc (Cq.size q)) 0 u.disjuncts

let holds u f tuple = List.exists (fun q -> Cq.holds q f tuple) u.disjuncts
let boolean_holds u f = List.exists (fun q -> Cq.boolean_holds q f) u.disjuncts
let exists p u = List.exists p u.disjuncts
let find_opt p u = List.find_opt p u.disjuncts

let pp ppf u =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:(Fmt.any "@,or ") Cq.pp)
    u.disjuncts

type t = { disjuncts : Cq.t list }

let empty = { disjuncts = [] }
let disjuncts u = u.disjuncts
let cardinal u = List.length u.disjuncts
let is_empty u = u.disjuncts = []

let covers u q =
  List.exists (fun q' -> Containment.implies q q') u.disjuncts

let add_minimal u q =
  if covers u q then (u, `Subsumed)
  else
    let kept =
      List.filter (fun q' -> not (Containment.implies q' q)) u.disjuncts
    in
    ({ disjuncts = q :: kept }, `Added)

let of_list qs =
  List.fold_left (fun u q -> fst (add_minimal u q)) empty qs

let of_disjuncts_unchecked disjuncts = { disjuncts }

let equivalent a b =
  List.for_all (covers b) a.disjuncts && List.for_all (covers a) b.disjuncts

let union a b = List.fold_left (fun u q -> fst (add_minimal u q)) a b.disjuncts

let max_disjunct_size u =
  List.fold_left (fun acc q -> max acc (Cq.size q)) 0 u.disjuncts

let holds u f tuple = List.exists (fun q -> Cq.holds q f tuple) u.disjuncts
let boolean_holds u f = List.exists (fun q -> Cq.boolean_holds q f) u.disjuncts
let exists p u = List.exists p u.disjuncts
let find_opt p u = List.find_opt p u.disjuncts

let pp ppf u =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:(Fmt.any "@,or ") Cq.pp)
    u.disjuncts

(** Fact sets: database instances and (finite prefixes of) chase structures.

    A fact set is an immutable set of atoms together with indexes used by
    the homomorphism engine: a per-relation index and a
    (relation, position, term) index for selective joins, the latter keyed
    exactly by the hash-consed term id.

    Indexes are maintained {e incrementally}: the index is a persistent
    stack of frozen (immutable after construction) hash-table layers,
    structurally shared between a set and the sets derived from it. [add]
    and [union] cons a layer holding just the delta onto the parent's
    stack and small [diff]s rebuild only the layers containing removed
    atoms, so a chase whose [full] set grows stage by stage pays
    O(|delta|) indexing per stage. Operations that churn most of the set
    (filter, inter, large diffs) return an unindexed set whose index is
    lazily rebuilt on first use.

    Index layers come in two interchangeable representations (selected by
    {!set_arena} when a layer is built; stacks may mix them): the default
    {e arena} layout stores each fact once per relation — interned into
    the process-wide {!Arena} — with sorted row {e postings} per
    (position, term), while the {e boxed} layout duplicates facts into
    one bucket per (position, term). Candidate enumeration order is
    identical in both, so flipping the toggle never changes chase
    results, stage shapes, or rewriting outputs. *)

type t

val empty : t
val of_list : Atom.t list -> t
val of_set : Atom.Set.t -> t
val to_set : t -> Atom.Set.t
val atoms : t -> Atom.t list
val cardinal : t -> int
val is_empty : t -> bool
val mem : Atom.t -> t -> bool
val add : Atom.t -> t -> t
val remove : Atom.t -> t -> t
val union : t -> t -> t

val union_disjoint : t -> t -> t
(** [union], for callers that already know the operands share no atom
    (e.g. a chase stage's freshly-derived delta): skips the disjointness
    walk that [union] performs before sharing index layers wholesale.
    The precondition is not checked. *)

val diff : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val filter : (Atom.t -> bool) -> t -> t

val domain : t -> Term.Set.t
(** The active domain [dom(F)]: every term appearing in some fact. Terms are
    treated atomically (a Skolem term is one element; its subterms are not
    domain members unless they appear in argument position themselves). *)

val signature : t -> Symbol.Set.t

val by_rel : t -> Symbol.t -> Atom.t list
(** All facts with the given relation symbol. *)

val candidates : t -> Symbol.t -> bound:(int * Term.t) list -> Atom.t list
(** Facts with relation [rel] agreeing with every [(position, term)]
    constraint in [bound]; uses the most selective available index, then
    filters. *)

val iter_candidates :
  t -> Symbol.t -> bound:(int * Term.t) list -> (Atom.t -> unit) -> unit
(** [iter_candidates t rel ~bound f] applies [f] to exactly the atoms
    [candidates t rel ~bound] would return, in the same order, without
    materializing the list — the homomorphism join's inner loop. *)

val iter_candidate_rows :
  t ->
  Symbol.t ->
  bound:(int * Term.t) list ->
  (Atom.t array -> int array -> int -> unit) ->
  unit
(** The flat-arena view of {!iter_candidates} for callers that filter on
    term ids themselves: [f atoms ids row] is called for every row of
    the most selective index segments, {e without} the [bound] filter
    applied (the visited rows are a superset of the candidates; exactly
    the candidates when [bound] has at most one constraint). [atoms] is
    the segment's fact array and [ids] its row-major argument-id arena —
    [ids.(row * arity + pos)] is the hash-consed id of argument [pos] of
    [atoms.(row)]. The arrays are the index's own frozen storage: do not
    mutate them. Visit order extends the {!iter_candidates} order. *)

val iter_join_candidates :
  t ->
  Symbol.t ->
  bound_pos:int array ->
  bound_ids:int array ->
  nb:int ->
  (Atom.t array -> int array -> int -> unit) ->
  unit
(** The compiled join engine's candidate enumeration: like
    {!iter_candidate_rows} with [nb] constraints
    [(bound_pos.(i), bound_ids.(i))] for [i < nb] given as bare
    (position, term id) pairs in caller-owned scratch arrays — no
    per-probe allocation. Rows are visited without the bound filter
    (callers re-check every position on the [ids] slab), in exactly the
    order {!iter_candidate_rows} produces for the same constraints. On
    arena-mode layers with two or more constraints and a large enough
    seed, the two smallest sorted postings are merge-intersected before
    rows reach the callback. *)

val atoms_with_term : t -> Term.t -> Atom.t list
(** Every atom with the given term in some argument position, in the
    same order a [List.filter] over [atoms] would produce. Answered from
    the (relation, position, term) join index — one bucket probe per
    (layer, relation, position) instead of a scan of the whole set.
    Forces the index. *)

val is_indexed : t -> bool
(** Whether the set's index has (or shares) a built form — lets callers
    choose between index-driven lookups and a plain scan without
    triggering a from-scratch index build. *)

val restrict : t -> Term.Set.t -> t
(** The induced substructure on the given terms: keep the atoms whose every
    argument is in the set (Definition 36's "ban the other terms"). *)

val pp : t Fmt.t

(** {1 Index instrumentation}

    Process-wide counters of index maintenance work, for the chase engines'
    [stage_stats] and the bench harness. Thread-safe. *)

type counters = {
  builds : int;  (** full index constructions *)
  built_atoms : int;  (** atoms indexed by full builds *)
  extends : int;  (** incremental index extensions *)
  delta_atoms : int;  (** atoms added to an existing index *)
  shrinks : int;  (** incremental index removals *)
  removed_atoms : int;  (** atoms removed from an existing index *)
  posting_probes : int;  (** join-index lookups (per layer, per constraint) *)
  posting_intersections : int;
      (** sorted-posting merge-intersections in {!iter_join_candidates} *)
}

val counters : unit -> counters
val reset_counters : unit -> unit

val set_incremental : bool -> unit
(** A/B switch for benchmarking: [set_incremental false] makes every
    operation return an unindexed set, restoring the pre-incremental
    rebuild-on-demand cost model. Defaults to [true]. *)

val set_arena : bool -> unit
(** A/B switch between the arena layer layout (default, [true]) and the
    boxed pre-arena layout. Takes effect for layers built after the
    call; existing layers keep their representation (readers handle
    mixed stacks). Candidate order — and therefore every chase and
    rewriting result — is unaffected. *)

val arena_enabled : unit -> bool

type t = { id : int; view : view }

and view =
  | Const of string
  | Var of string
  | App of { fn : string; args : t list }

(* Hash-consing: one global table keyed by a structural key in which
   subterms are represented by their ids. The table is shared by every
   domain (the chase derives Skolem terms from worker domains), so all
   access goes through one mutex; uncontended, the lock costs a few tens
   of nanoseconds per term construction, and term *comparison* — the hot
   operation — never touches it. *)
type key = KConst of string | KVar of string | KApp of string * int list

let table : (key, t) Hashtbl.t = Hashtbl.create 4096
let counter = ref 0
let table_lock = Mutex.create ()

(* Reverse map: id -> term, a growable array indexed directly by the
   dense interning counter. The flat-arena join engine works on bare
   term ids and only rematerializes a [Term.t] when a binding survives
   to a solution, so the lookup must be O(1) and allocation-free. Reads
   are lock-free: slot [id] is written (under [table_lock]) before the
   term's id ever escapes the intern call, and the array reference is
   republished on growth, so a reader holding a valid id always finds
   its term in whichever array it loads. *)
let by_id : t option array ref = ref (Array.make 4096 None)

let intern key view =
  Mutex.protect table_lock (fun () ->
      match Hashtbl.find_opt table key with
      | Some t -> t
      | None ->
          incr counter;
          let t = { id = !counter; view } in
          Hashtbl.add table key t;
          let arr = !by_id in
          let n = Array.length arr in
          if t.id >= n then begin
            let arr' = Array.make (2 * max n t.id) None in
            Array.blit arr 0 arr' 0 n;
            arr'.(t.id) <- Some t;
            by_id := arr'
          end
          else arr.(t.id) <- Some t;
          t)

let of_id id =
  let arr = !by_id in
  if id < 1 || id >= Array.length arr then
    invalid_arg "Term.of_id: unknown term id"
  else
    match Array.unsafe_get arr id with
    | Some t -> t
    | None -> invalid_arg "Term.of_id: unknown term id"

let const name = intern (KConst name) (Const name)
let var name = intern (KVar name) (Var name)

let app fn args =
  intern (KApp (fn, List.map (fun a -> a.id) args)) (App { fn; args })

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let hash t = t.id

let is_var t = match t.view with Var _ -> true | Const _ | App _ -> false
let is_const t = match t.view with Const _ -> true | Var _ | App _ -> false

let is_functional t =
  match t.view with App _ -> true | Const _ | Var _ -> false

module Int_map = Map.Make (Int)

let depth_cache : (int, int) Hashtbl.t = Hashtbl.create 1024
let depth_lock = Mutex.create ()

(* The memo table is consulted and updated under a lock, but the recursive
   computation runs outside it: two domains may race to compute the same
   depth, which is harmless (they agree), while the table itself stays
   uncorrupted. *)
let rec depth t =
  match
    Mutex.protect depth_lock (fun () -> Hashtbl.find_opt depth_cache t.id)
  with
  | Some d -> d
  | None ->
      let d =
        match t.view with
        | Const _ | Var _ -> 0
        | App { args; _ } ->
            1 + List.fold_left (fun acc a -> max acc (depth a)) 0 args
      in
      Mutex.protect depth_lock (fun () ->
          Hashtbl.replace depth_cache t.id d);
      d

let dag_size t =
  let seen = Hashtbl.create 16 in
  let rec go t =
    if Hashtbl.mem seen t.id then ()
    else begin
      Hashtbl.add seen t.id ();
      match t.view with
      | Const _ | Var _ -> ()
      | App { args; _ } -> List.iter go args
    end
  in
  go t;
  Hashtbl.length seen

let vars t =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      match t.view with
      | Var _ -> acc := t :: !acc
      | Const _ -> ()
      | App { args; _ } -> List.iter go args
    end
  in
  go t;
  List.rev !acc

let subst m t =
  let memo = Hashtbl.create 16 in
  let rec go t =
    match Int_map.find_opt t.id m with
    | Some image -> image
    | None -> (
        match t.view with
        | Const _ | Var _ -> t
        | App { fn; args } -> (
            match Hashtbl.find_opt memo t.id with
            | Some t' -> t'
            | None ->
                let args' = List.map go args in
                let t' =
                  if List.for_all2 equal args args' then t else app fn args'
                in
                Hashtbl.add memo t.id t';
                t'))
  in
  go t

let rec pp ppf t =
  match t.view with
  | Const name -> Fmt.string ppf name
  | Var name -> Fmt.pf ppf "%s" name
  | App { fn; args } ->
      Fmt.pf ppf "%s(%a)" fn (Fmt.list ~sep:(Fmt.any ",") pp) args

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let subst_of_bindings bindings =
  List.fold_left (fun m (v, image) -> Int_map.add v.id image m) Int_map.empty
    bindings

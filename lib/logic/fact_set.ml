(* Fact sets with incrementally-maintained indexes.

   The index is a persistent stack of *frozen layers*, LSM-style: each
   layer is an immutable pair of hash tables (per-relation facts and a
   (relation, position, term) join index) that is never mutated after
   construction, so layers are structurally shared between a set and the
   sets derived from it. [add] and [union] cons a layer holding just the
   delta onto the parent's stack, making the indexing cost of a growing
   chase O(|delta|) per stage; lookups probe every layer (the stack is
   kept shallow by deterministically merging the smallest adjacent pair
   when it grows past a bound). Small [diff]s rebuild only the layers
   that contain removed atoms and share the rest. Operations that churn
   most of the set (filter, inter, large diffs) return an unindexed set
   whose index is rebuilt lazily on first use.

   The join index is keyed by (Symbol.id, term.id * arity + pos) — exact
   on the hash-consed ids, not a structural hash — so a bucket contains
   precisely the facts with [term] at [pos] and single-constraint
   [candidates] lookups need no post-filtering. *)

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type counters = {
  builds : int;
  built_atoms : int;
  extends : int;
  delta_atoms : int;
  shrinks : int;
  removed_atoms : int;
}

let c_builds = Atomic.make 0
let c_built_atoms = Atomic.make 0
let c_extends = Atomic.make 0
let c_delta_atoms = Atomic.make 0
let c_shrinks = Atomic.make 0
let c_removed_atoms = Atomic.make 0

let counters () =
  {
    builds = Atomic.get c_builds;
    built_atoms = Atomic.get c_built_atoms;
    extends = Atomic.get c_extends;
    delta_atoms = Atomic.get c_delta_atoms;
    shrinks = Atomic.get c_shrinks;
    removed_atoms = Atomic.get c_removed_atoms;
  }

let reset_counters () =
  Atomic.set c_builds 0;
  Atomic.set c_built_atoms 0;
  Atomic.set c_extends 0;
  Atomic.set c_delta_atoms 0;
  Atomic.set c_shrinks 0;
  Atomic.set c_removed_atoms 0

(* Kill switch for A/B benchmarking: with incremental maintenance off,
   every operation returns an unindexed set (pre-incremental behaviour:
   the index of each derived set is rebuilt from scratch on demand). *)
let incremental = Atomic.make true
let set_incremental b = Atomic.set incremental b

(* ------------------------------------------------------------------ *)
(* Layers                                                              *)
(* ------------------------------------------------------------------ *)

(* Buckets are flat int-packed arenas: the facts of one (layer, key)
   as an [Atom.t array] plus a parallel row-major [int array] of their
   hash-consed argument-term ids ([ids.(row * arity + pos)]). The join
   inner loop — reject a candidate fact because some argument does not
   match — then runs entirely over the contiguous [ids] arena (one int
   compare per constraint, cache-line friendly) instead of chasing
   [Atom.t -> Term.t] pointers per position per fact. [n] is cached:
   seed selection in [candidates] compares bucket sizes, which must not
   cost anything. *)
type bucket = { n : int; atoms : Atom.t array; ids : int array }

type layer = {
  lsize : int;  (* atoms in this layer *)
  l_syms : Symbol.t list;  (* distinct relation symbols in this layer *)
  l_rel : (int, bucket) Hashtbl.t;  (* Symbol.id -> facts *)
  l_pos : (int * int, bucket) Hashtbl.t;
      (* (Symbol.id, term.id * arity + pos) -> facts with term at pos *)
}

(* Frozen after construction: every mutation of [l_rel]/[l_pos] happens
   inside the [layer_of_*] / [merge_layers] builders below. *)

(* Mutable accumulator used only while a layer is being built; frozen
   into a packed [bucket] at the end. [pitems] is newest-first — the
   bucket probe order the rest of the engine depends on. *)
type proto = { mutable pn : int; mutable pitems : Atom.t list }

let proto_cons tbl key atom =
  match Hashtbl.find_opt tbl key with
  | None -> Hashtbl.replace tbl key { pn = 1; pitems = [ atom ] }
  | Some p ->
      p.pn <- p.pn + 1;
      p.pitems <- atom :: p.pitems

let pack_bucket arity p =
  let n = p.pn in
  let atoms = Array.make n (List.hd p.pitems) in
  let ids = Array.make (n * arity) 0 in
  List.iteri
    (fun row (a : Atom.t) ->
      atoms.(row) <- a;
      let args = a.Atom.args in
      for pos = 0 to arity - 1 do
        ids.((row * arity) + pos) <- args.(pos).Term.id
      done)
    p.pitems;
  { n; atoms; ids }

let layer_of_iter ~size iter =
  let p_rel : (int, proto) Hashtbl.t = Hashtbl.create ((size / 4) + 8) in
  let p_pos : (int * int, proto) Hashtbl.t =
    Hashtbl.create ((2 * size) + 8)
  in
  let arities : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let syms = ref [] in
  iter (fun atom ->
      let rel = Atom.rel atom in
      let sid = Symbol.id rel in
      let arity = Symbol.arity rel in
      if not (Hashtbl.mem arities sid) then begin
        syms := rel :: !syms;
        Hashtbl.replace arities sid arity
      end;
      proto_cons p_rel sid atom;
      List.iteri
        (fun pos (term : Term.t) ->
          proto_cons p_pos (sid, (term.Term.id * arity) + pos) atom)
        (Atom.args atom));
  let l_rel = Hashtbl.create (Hashtbl.length p_rel + 1) in
  Hashtbl.iter
    (fun sid p ->
      Hashtbl.replace l_rel sid (pack_bucket (Hashtbl.find arities sid) p))
    p_rel;
  let l_pos = Hashtbl.create (Hashtbl.length p_pos + 1) in
  Hashtbl.iter
    (fun ((sid, _) as key) p ->
      Hashtbl.replace l_pos key (pack_bucket (Hashtbl.find arities sid) p))
    p_pos;
  { lsize = size; l_syms = !syms; l_rel; l_pos }

let layer_of_list atoms n = layer_of_iter ~size:n (fun f -> List.iter f atoms)

let layer_of_set set =
  layer_of_iter ~size:(Atom.Set.cardinal set) (fun f -> Atom.Set.iter f set)

(* Merge [newer] onto [older]: bucket items of the newer layer stay in
   front, preserving the probe order of the unmerged stack. *)
let merge_layers newer older =
  Atomic.incr c_builds;
  ignore (Atomic.fetch_and_add c_built_atoms (newer.lsize + older.lsize));
  let merge_tbl a b =
    let tbl = Hashtbl.create (Hashtbl.length a + Hashtbl.length b) in
    Hashtbl.iter (Hashtbl.replace tbl) b;
    Hashtbl.iter
      (fun k (v : bucket) ->
        match Hashtbl.find_opt tbl k with
        | None -> Hashtbl.replace tbl k v
        | Some old ->
            Hashtbl.replace tbl k
              {
                n = v.n + old.n;
                atoms = Array.append v.atoms old.atoms;
                ids = Array.append v.ids old.ids;
              })
      a;
    tbl
  in
  let l_syms =
    older.l_syms
    @ List.filter
        (fun s -> not (Hashtbl.mem older.l_rel (Symbol.id s)))
        newer.l_syms
  in
  {
    lsize = newer.lsize + older.lsize;
    l_syms;
    l_rel = merge_tbl newer.l_rel older.l_rel;
    l_pos = merge_tbl newer.l_pos older.l_pos;
  }

(* ------------------------------------------------------------------ *)
(* Indexes: layer stacks + the active domain                           *)
(* ------------------------------------------------------------------ *)

type index = {
  layers : layer list;  (* newest first *)
  n_layers : int;
  domain : Term.Set.t;
}

(* Lookups probe every layer, so the stack is kept shallow: past
   [max_layers] the adjacent pair with the smallest combined size is
   merged (deterministic, and amortized O(log n) per atom under streams
   of small adds — the geometric layer sizes of a doubling chase make the
   smallest-pair merge cheap relative to the stage's own delta). The
   bound is deliberately tight: every join probe pays one hash lookup
   per layer, and the chase hot loop issues several probes per trigger,
   so a deep stack taxes reads far more than compaction taxes writes. *)
let max_layers = 4

let rec rebalance layers n =
  if n <= max_layers then (layers, n)
  else
    let arr = Array.of_list layers in
    let best = ref 0 and best_size = ref max_int in
    for i = 0 to Array.length arr - 2 do
      let s = arr.(i).lsize + arr.(i + 1).lsize in
      if s < !best_size then begin
        best := i;
        best_size := s
      end
    done;
    let merged = merge_layers arr.(!best) arr.(!best + 1) in
    let layers' =
      List.concat
        [
          Array.to_list (Array.sub arr 0 !best);
          [ merged ];
          Array.to_list
            (Array.sub arr (!best + 2) (Array.length arr - !best - 2));
        ]
    in
    rebalance layers' (n - 1)

let cons_layer idx layer domain =
  if layer.lsize = 0 then { idx with domain }
  else
    let layers, n_layers = rebalance (layer :: idx.layers) (idx.n_layers + 1) in
    { layers; n_layers; domain }

let domain_add_atom dom atom =
  (* Set.add returns the set itself (physically) when the element is
     already present, so the common rediscovered-term case is alloc-free. *)
  List.fold_left (fun d t -> Term.Set.add t d) dom (Atom.args atom)

let empty_index = { layers = []; n_layers = 0; domain = Term.Set.empty }

let index_of_set set =
  if Atom.Set.is_empty set then empty_index
  else begin
    Atomic.incr c_builds;
    ignore (Atomic.fetch_and_add c_built_atoms (Atom.Set.cardinal set));
    let layer = layer_of_set set in
    let domain = Atom.Set.fold (fun a d -> domain_add_atom d a) set Term.Set.empty in
    { layers = [ layer ]; n_layers = 1; domain }
  end

(* Layer lookups. [n_layers] is small, so per-constraint totals are a
   short list walk over cached bucket lengths. *)

let rel_buckets idx sid =
  List.filter_map (fun l -> Hashtbl.find_opt l.l_rel sid) idx.layers

let pos_buckets idx key =
  List.filter_map (fun l -> Hashtbl.find_opt l.l_pos key) idx.layers

let buckets_total bs = List.fold_left (fun acc b -> acc + b.n) 0 bs

let buckets_items = function
  | [] -> []
  | bs ->
      List.concat_map (fun (b : bucket) -> Array.to_list b.atoms) bs

(* Does row [row] of [b] hold exactly [atom]'s arguments? All atoms of a
   bucket share [atom]'s relation (the key includes the symbol id), so
   full id-row equality certifies [Atom.equal] — a contiguous int scan,
   no pointer chasing. *)
let row_is arity (b : bucket) row (atom : Atom.t) =
  let args = atom.Atom.args in
  let base = row * arity in
  let rec go pos =
    pos >= arity
    || (b.ids.(base + pos) = args.(pos).Term.id && go (pos + 1))
  in
  go 0

let layer_mem l atom =
  let rel = Atom.rel atom in
  let sid = Symbol.id rel in
  let arity = Symbol.arity rel in
  if arity = 0 then Hashtbl.mem l.l_rel sid
  else
    let a0 = (Atom.arg atom 0 : Term.t) in
    match Hashtbl.find_opt l.l_pos (sid, a0.Term.id * arity) with
    | None -> false
    | Some b ->
        let rec probe row =
          row < b.n && (row_is arity b row atom || probe (row + 1))
        in
        probe 0

(* Does [term] occur (in any position of any fact) under these layers?
   Cold path, used only to maintain [domain] across removals. *)
let term_occurs layers (term : Term.t) =
  List.exists
    (fun l ->
      List.exists
        (fun sym ->
          let sid = Symbol.id sym in
          let arity = Symbol.arity sym in
          let rec probe pos =
            pos < arity
            && (Hashtbl.mem l.l_pos (sid, (term.Term.id * arity) + pos)
               || probe (pos + 1))
          in
          probe 0)
        l.l_syms)
    layers

(* ------------------------------------------------------------------ *)
(* Fact sets                                                           *)
(* ------------------------------------------------------------------ *)

type t = { set : Atom.Set.t; mutable index : index_state }

and index_state =
  | Unbuilt
  | Built of index
  | Lazy_extend of { base : t; other : t }
      (* Pending disjoint union [base ∪ other]: forced by concatenating
         the two sides' layer stacks, so the delta side's layers are
         built once and shared — and never built at all if this set's
         index is never needed (e.g. a chase's final stage). *)

let of_set set = { set; index = Unbuilt }
let empty = of_set Atom.Set.empty
let of_list l = of_set (Atom.Set.of_list l)
let to_set t = t.set
let atoms t = Atom.Set.elements t.set
let cardinal t = Atom.Set.cardinal t.set
let is_empty t = Atom.Set.is_empty t.set
let mem a t = Atom.Set.mem a t.set

let is_indexed t = match t.index with Unbuilt -> false | _ -> true

let rec index t =
  match t.index with
  | Built i -> i
  | Unbuilt ->
      (* Benign race: concurrent forcing computes equal indexes and one
         single-word write wins. The chase engines pre-force indexes of
         shared sets before fanning out, so in practice this runs in the
         coordinator. *)
      let i = index_of_set t.set in
      t.index <- Built i;
      i
  | Lazy_extend { base; other } ->
      let bidx = index base in
      let oidx = index other in
      Atomic.incr c_extends;
      ignore (Atomic.fetch_and_add c_delta_atoms (Atom.Set.cardinal other.set));
      let layers, n_layers =
        rebalance (oidx.layers @ bidx.layers) (oidx.n_layers + bidx.n_layers)
      in
      let i =
        { layers; n_layers; domain = Term.Set.union bidx.domain oidx.domain }
      in
      t.index <- Built i;
      i

(* [derive ~delta ~ndelta parent set'] : the fact set [set'], with its
   index extended from [parent]'s by consing a frozen layer of the
   [delta] atoms (when the parent is indexed and incremental maintenance
   is on). *)
let derive ~delta ~ndelta parent set' =
  if is_indexed parent && Atomic.get incremental then begin
    let idx = index parent in
    Atomic.incr c_extends;
    ignore (Atomic.fetch_and_add c_delta_atoms ndelta);
    let layer = layer_of_list delta ndelta in
    let domain = List.fold_left domain_add_atom idx.domain delta in
    { set = set'; index = Built (cons_layer idx layer domain) }
  end
  else of_set set'

let add a t =
  if Atom.Set.mem a t.set then t
  else derive ~delta:[ a ] ~ndelta:1 t (Atom.Set.add a t.set)

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else if not (Atomic.get incremental) then of_set (Atom.Set.union a.set b.set)
  else
    (* Extend the indexed (preferring the larger) side by the other's
       delta; with no index on either side, stay lazy. *)
    let base, other =
      match (is_indexed a, is_indexed b) with
      | true, false -> (a, b)
      | false, true -> (b, a)
      | true, true | false, false ->
          if Atom.Set.cardinal a.set >= Atom.Set.cardinal b.set then (a, b)
          else (b, a)
    in
    if not (is_indexed base) then of_set (Atom.Set.union a.set b.set)
    else if Atom.Set.disjoint a.set b.set then
      (* Disjoint union: share the delta side's layers wholesale, and
         lazily — each delta atom is indexed at most once per chase, and
         not at all when the union's index is never consulted (a chase's
         final stage). *)
      {
        set = Atom.Set.union base.set other.set;
        index = Lazy_extend { base; other };
      }
    else
      let delta = Atom.Set.elements (Atom.Set.diff other.set base.set) in
      if delta = [] then base
      else
        derive ~delta ~ndelta:(List.length delta) base
          (Atom.Set.union base.set other.set)

(* [union] for callers that know the operands share no atom (the chase
   engine's freshly-derived delta): skips the disjointness walk. The
   precondition is not checked — a violation would double atoms inside
   index buckets (the [set] itself stays correct). *)
let union_disjoint a b =
  if is_empty a then b
  else if is_empty b then a
  else if not (Atomic.get incremental) then of_set (Atom.Set.union a.set b.set)
  else
    let base, other =
      match (is_indexed a, is_indexed b) with
      | true, false -> (a, b)
      | false, true -> (b, a)
      | true, true | false, false ->
          if Atom.Set.cardinal a.set >= Atom.Set.cardinal b.set then (a, b)
          else (b, a)
    in
    if not (is_indexed base) then of_set (Atom.Set.union a.set b.set)
    else
      {
        set = Atom.Set.union base.set other.set;
        index = Lazy_extend { base; other };
      }

let diff a b =
  let plain () = of_set (Atom.Set.diff a.set b.set) in
  if not (is_indexed a && Atomic.get incremental) then plain ()
  else
    let idx = index a in
    (
      let removed = Atom.Set.inter a.set b.set in
      let n_removed = Atom.Set.cardinal removed in
      (* Filtering most of the layers costs more than one lazy rebuild of
         the (small) result: only shrink small deltas. *)
      if n_removed = 0 then a
      else if 4 * n_removed > Atom.Set.cardinal a.set then plain ()
      else begin
        Atomic.incr c_shrinks;
        ignore (Atomic.fetch_and_add c_removed_atoms n_removed);
        (* Rebuild exactly the layers that contain removed atoms; the
           others are shared untouched. *)
        let layers =
          List.filter_map
            (fun l ->
              if not (Atom.Set.exists (fun x -> layer_mem l x) removed) then
                Some l
              else
                let kept =
                  Hashtbl.fold
                    (fun _ (b : bucket) acc ->
                      Array.fold_left
                        (fun acc atom ->
                          if Atom.Set.mem atom removed then acc
                          else atom :: acc)
                        acc b.atoms)
                    l.l_rel []
                in
                match kept with
                | [] -> None
                | _ -> Some (layer_of_list kept (List.length kept)))
            idx.layers
        in
        let domain =
          Atom.Set.fold
            (fun atom dom ->
              List.fold_left
                (fun dom term ->
                  if term_occurs layers term then dom
                  else Term.Set.remove term dom)
                dom (Atom.args atom))
            removed idx.domain
        in
        {
          set = Atom.Set.diff a.set b.set;
          index = Built { layers; n_layers = List.length layers; domain };
        }
      end)

let remove a t =
  if not (Atom.Set.mem a t.set) then t
  else diff t { set = Atom.Set.singleton a; index = Unbuilt }

let inter a b = of_set (Atom.Set.inter a.set b.set)
let subset a b = Atom.Set.subset a.set b.set
let equal a b = Atom.Set.equal a.set b.set
let filter f t = of_set (Atom.Set.filter f t.set)
let domain t = (index t).domain

let signature t =
  Atom.Set.fold (fun a acc -> Symbol.Set.add (Atom.rel a) acc) t.set
    Symbol.Set.empty

let by_rel t rel = buckets_items (rel_buckets (index t) (Symbol.id rel))

let candidates t rel ~bound =
  let idx = index t in
  let sid = Symbol.id rel in
  let arity = Symbol.arity rel in
  let segs_of (pos, (term : Term.t)) =
    pos_buckets idx (sid, (term.Term.id * arity) + pos)
  in
  match bound with
  | [] -> buckets_items (rel_buckets idx sid)
  | [ c ] ->
      (* The term-id key is exact: a single-constraint lookup needs no
         post-filtering. *)
      buckets_items (segs_of c)
  | c0 :: rest ->
      let seed0 = segs_of c0 in
      let seed, seed_n =
        List.fold_left
          (fun ((_, best_n) as best) c ->
            let segs = segs_of c in
            let n = buckets_total segs in
            if n < best_n then (segs, n) else best)
          (seed0, buckets_total seed0)
          rest
      in
      if seed_n = 0 then []
      else
        (* Constraint rejection runs on the flat id arena. *)
        let matches (b : bucket) row =
          List.for_all
            (fun (pos, (term : Term.t)) ->
              b.ids.((row * arity) + pos) = term.Term.id)
            bound
        in
        List.concat_map
          (fun (b : bucket) ->
            let out = ref [] in
            for row = b.n - 1 downto 0 do
              if matches b row then out := b.atoms.(row) :: !out
            done;
            !out)
          seed

(* Allocation-free variant of [candidates] for the join inner loop: the
   segments are iterated in place instead of being concatenated into a
   fresh list per probe. The enumeration order is exactly the order of
   [candidates]. *)
let iter_candidates t rel ~bound f =
  let idx = index t in
  let sid = Symbol.id rel in
  let arity = Symbol.arity rel in
  let segs_of (pos, (term : Term.t)) =
    pos_buckets idx (sid, (term.Term.id * arity) + pos)
  in
  let iter_segs segs =
    List.iter (fun (b : bucket) -> Array.iter f b.atoms) segs
  in
  match bound with
  | [] -> iter_segs (rel_buckets idx sid)
  | [ c ] -> iter_segs (segs_of c)
  | c0 :: rest ->
      let seed0 = segs_of c0 in
      let seed, seed_n =
        List.fold_left
          (fun ((_, best_n) as best) c ->
            let segs = segs_of c in
            let n = buckets_total segs in
            if n < best_n then (segs, n) else best)
          (seed0, buckets_total seed0)
          rest
      in
      if seed_n > 0 then
        let matches (b : bucket) row =
          List.for_all
            (fun (pos, (term : Term.t)) ->
              b.ids.((row * arity) + pos) = term.Term.id)
            bound
        in
        List.iter
          (fun (b : bucket) ->
            for row = 0 to b.n - 1 do
              if matches b row then f b.atoms.(row)
            done)
          seed

(* The raw-arena variant for the homomorphism engine: enumerate the rows
   of the most selective seed segments {e without} applying the [bound]
   filter — the caller's compiled slot plan re-checks every position on
   the [ids] arena anyway, so filtering here would test each constraint
   twice. The rows visited are a superset of [candidates t rel ~bound]
   (exactly the candidate set when [bound] has at most one constraint),
   in the same segment order. *)
let iter_candidate_rows t rel ~bound f =
  let idx = index t in
  let sid = Symbol.id rel in
  let arity = Symbol.arity rel in
  let segs_of (pos, (term : Term.t)) =
    pos_buckets idx (sid, (term.Term.id * arity) + pos)
  in
  let iter_segs segs =
    List.iter
      (fun (b : bucket) ->
        for row = 0 to b.n - 1 do
          f b.atoms b.ids row
        done)
      segs
  in
  match bound with
  | [] -> iter_segs (rel_buckets idx sid)
  | [ c ] -> iter_segs (segs_of c)
  | c0 :: rest ->
      let seed0 = segs_of c0 in
      let seed, seed_n =
        List.fold_left
          (fun ((_, best_n) as best) c ->
            let segs = segs_of c in
            let n = buckets_total segs in
            if n < best_n then (segs, n) else best)
          (seed0, buckets_total seed0)
          rest
      in
      if seed_n > 0 then iter_segs seed

(* Every atom with [term] in some argument position, in [Atom.Set]
   order (the order a filter over [atoms] would produce). One bucket
   probe per (layer, relation, position) replaces the full scan callers
   like [Engine.birth_atom] used to pay per term. *)
let atoms_with_term t (term : Term.t) =
  let idx = index t in
  let acc = ref Atom.Set.empty in
  List.iter
    (fun l ->
      List.iter
        (fun sym ->
          let sid = Symbol.id sym in
          let arity = Symbol.arity sym in
          for pos = 0 to arity - 1 do
            match Hashtbl.find_opt l.l_pos (sid, (term.Term.id * arity) + pos) with
            | None -> ()
            | Some b ->
                Array.iter (fun a -> acc := Atom.Set.add a !acc) b.atoms
          done)
        l.l_syms)
    idx.layers;
  Atom.Set.elements !acc

let restrict t allowed =
  filter
    (fun a -> List.for_all (fun term -> Term.Set.mem term allowed) (Atom.args a))
    t

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Atom.pp) (atoms t)

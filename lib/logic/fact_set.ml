(* Fact sets with incrementally-maintained indexes.

   The index is a persistent stack of *frozen layers*, LSM-style: each
   layer is an immutable set of hash tables (per-relation facts and a
   (relation, position, term) join index) that is never mutated after
   construction, so layers are structurally shared between a set and the
   sets derived from it. [add] and [union] cons a layer holding just the
   delta onto the parent's stack, making the indexing cost of a growing
   chase O(|delta|) per stage; lookups probe every layer (the stack is
   kept shallow by deterministically merging the smallest adjacent pair
   when it grows past a bound). Small [diff]s rebuild only the layers
   that contain removed atoms and share the rest. Operations that churn
   most of the set (filter, inter, large diffs) return an unindexed set
   whose index is rebuilt lazily on first use.

   Layers come in two representations, selected by [set_arena] at build
   time (a stack may mix them across a toggle flip; every reader
   branches per layer):

   - *Boxed* (the pre-arena layout): the join index is a hash table
     keyed by (Symbol.id, term.id * arity + pos) whose buckets each
     duplicate the matching facts — an [Atom.t array] plus a row-major
     [int array] of argument-term ids. Exact single-constraint lookups,
     but every fact is stored once per argument position.

   - *Arena* (the default): each fact is interned once into the global
     {!Arena} (one flat int span per atom, process-wide), the layer
     keeps a single packed table per relation ([atoms], the contiguous
     [ids] slab projected from the arena spans, and the arena ids
     [arows]), and the join index is a table of *postings* — ascending
     [int array]s of rows into the relation table. A posting costs one
     int per (fact, position) instead of a duplicated fact, and
     multi-constraint joins can intersect two sorted postings instead
     of scanning and filtering.

   Both join indexes are keyed exactly on the hash-consed term id, so a
   single-constraint lookup needs no post-filtering. Enumeration order
   is representation-independent: a relation table lists a layer's facts
   newest-first, each posting (or duplicated bucket) visits matching
   facts in that same relative order, so the filtered candidate
   sequence is identical in both modes — which is what keeps chase
   stages bit-identical under the arena A/B toggle. *)

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type counters = {
  builds : int;
  built_atoms : int;
  extends : int;
  delta_atoms : int;
  shrinks : int;
  removed_atoms : int;
  posting_probes : int;
  posting_intersections : int;
}

let c_builds = Atomic.make 0
let c_built_atoms = Atomic.make 0
let c_extends = Atomic.make 0
let c_delta_atoms = Atomic.make 0
let c_shrinks = Atomic.make 0
let c_removed_atoms = Atomic.make 0
let c_posting_probes = Atomic.make 0
let c_posting_intersections = Atomic.make 0

let counters () =
  {
    builds = Atomic.get c_builds;
    built_atoms = Atomic.get c_built_atoms;
    extends = Atomic.get c_extends;
    delta_atoms = Atomic.get c_delta_atoms;
    shrinks = Atomic.get c_shrinks;
    removed_atoms = Atomic.get c_removed_atoms;
    posting_probes = Atomic.get c_posting_probes;
    posting_intersections = Atomic.get c_posting_intersections;
  }

let reset_counters () =
  Atomic.set c_builds 0;
  Atomic.set c_built_atoms 0;
  Atomic.set c_extends 0;
  Atomic.set c_delta_atoms 0;
  Atomic.set c_shrinks 0;
  Atomic.set c_removed_atoms 0;
  Atomic.set c_posting_probes 0;
  Atomic.set c_posting_intersections 0

(* Kill switch for A/B benchmarking: with incremental maintenance off,
   every operation returns an unindexed set (pre-incremental behaviour:
   the index of each derived set is rebuilt from scratch on demand). *)
let incremental = Atomic.make true
let set_incremental b = Atomic.set incremental b

(* A/B switch between the arena layer layout (default) and the boxed
   pre-arena layout. Checked when a layer is built; already-built layers
   keep their representation. *)
let arena_mode = Atomic.make true
let set_arena b = Atomic.set arena_mode b
let arena_enabled () = Atomic.get arena_mode

(* ------------------------------------------------------------------ *)
(* Layers                                                              *)
(* ------------------------------------------------------------------ *)

(* A packed bucket: the facts of one (layer, key) as an [Atom.t array]
   plus a parallel row-major [int array] of their hash-consed
   argument-term ids ([ids.(row * arity + pos)]). The join inner loop —
   reject a candidate fact because some argument does not match — runs
   entirely over the contiguous [ids] slab (one int compare per
   constraint, cache-line friendly) instead of chasing
   [Atom.t -> Term.t] pointers per position per fact. In arena mode,
   [arows.(row)] is the row's atom id in {!Arena.global} (the [ids]
   slab is exactly the concatenation of those spans' argument slots);
   in boxed mode [arows] is empty. [n] is cached: seed selection
   compares bucket sizes, which must not cost anything. *)
type bucket = { n : int; atoms : Atom.t array; ids : int array; arows : int array }

type layer = {
  lsize : int;  (* atoms in this layer *)
  l_arena : bool;  (* which join index this layer carries *)
  l_syms : Symbol.t list;  (* distinct relation symbols in this layer *)
  l_rel : (int, bucket) Hashtbl.t;  (* Symbol.id -> facts *)
  l_pos : (int * int, bucket) Hashtbl.t;
      (* boxed join index:
         (Symbol.id, term.id * arity + pos) -> facts with term at pos *)
  l_posts : (int * int, int array) Hashtbl.t;
      (* arena join index: same key -> ascending rows of the relation's
         [l_rel] bucket *)
}

(* Frozen after construction: every mutation of [l_rel]/[l_pos]/[l_posts]
   happens inside the [layer_of_*] / [merge_layers] builders below. *)

(* Mutable accumulator used only while a layer is being built; frozen
   into a packed [bucket] at the end. [pitems] is newest-first — packing
   reverses it, so bucket row 0 is the newest fact: the probe order the
   rest of the engine depends on. *)
type proto = { mutable pn : int; mutable pitems : Atom.t list }

let proto_cons tbl key atom =
  match Hashtbl.find_opt tbl key with
  | None -> Hashtbl.replace tbl key { pn = 1; pitems = [ atom ] }
  | Some p ->
      p.pn <- p.pn + 1;
      p.pitems <- atom :: p.pitems

let pack_bucket ~arena arity p =
  let n = p.pn in
  let atoms = Array.make n (List.hd p.pitems) in
  let ids = Array.make (n * arity) 0 in
  let arows = if arena then Array.make n 0 else [||] in
  List.iteri
    (fun row (a : Atom.t) ->
      atoms.(row) <- a;
      if arena then arows.(row) <- Arena.intern Arena.global a;
      let args = a.Atom.args in
      for pos = 0 to arity - 1 do
        ids.((row * arity) + pos) <- args.(pos).Term.id
      done)
    p.pitems;
  { n; atoms; ids; arows }

(* The arena-mode join index of one relation bucket: ascending row
   postings per (term, position), read straight off the packed [ids]
   slab. *)
let postings_of_bucket l_posts sid arity (b : bucket) =
  if arity > 0 then begin
    let acc : (int, int list) Hashtbl.t = Hashtbl.create (2 * b.n) in
    for row = b.n - 1 downto 0 do
      for pos = 0 to arity - 1 do
        let key = (b.ids.((row * arity) + pos) * arity) + pos in
        match Hashtbl.find_opt acc key with
        | Some (r :: _ as l) when r = row -> ignore l (* dup position, same row *)
        | Some l -> Hashtbl.replace acc key (row :: l)
        | None -> Hashtbl.replace acc key [ row ]
      done
    done;
    Hashtbl.iter
      (fun key rows ->
        Hashtbl.replace l_posts (sid, key) (Array.of_list rows))
      acc
  end

let layer_of_iter ~size iter =
  let arena = arena_enabled () in
  let p_rel : (int, proto) Hashtbl.t = Hashtbl.create ((size / 4) + 8) in
  let p_pos : (int * int, proto) Hashtbl.t =
    if arena then Hashtbl.create 1 else Hashtbl.create ((2 * size) + 8)
  in
  let arities : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let syms = ref [] in
  iter (fun atom ->
      let rel = Atom.rel atom in
      let sid = Symbol.id rel in
      let arity = Symbol.arity rel in
      if not (Hashtbl.mem arities sid) then begin
        syms := rel :: !syms;
        Hashtbl.replace arities sid arity
      end;
      proto_cons p_rel sid atom;
      if not arena then
        List.iteri
          (fun pos (term : Term.t) ->
            proto_cons p_pos (sid, (term.Term.id * arity) + pos) atom)
          (Atom.args atom));
  let l_rel = Hashtbl.create (Hashtbl.length p_rel + 1) in
  Hashtbl.iter
    (fun sid p ->
      Hashtbl.replace l_rel sid
        (pack_bucket ~arena (Hashtbl.find arities sid) p))
    p_rel;
  let l_pos = Hashtbl.create (if arena then 1 else Hashtbl.length p_pos + 1) in
  if not arena then
    Hashtbl.iter
      (fun ((sid, _) as key) p ->
        Hashtbl.replace l_pos key
          (pack_bucket ~arena:false (Hashtbl.find arities sid) p))
      p_pos;
  let l_posts = Hashtbl.create (if arena then (2 * size) + 8 else 1) in
  if arena then
    Hashtbl.iter
      (fun sid b -> postings_of_bucket l_posts sid (Hashtbl.find arities sid) b)
      l_rel;
  { lsize = size; l_arena = arena; l_syms = !syms; l_rel; l_pos; l_posts }

let layer_of_list atoms n = layer_of_iter ~size:n (fun f -> List.iter f atoms)

let layer_of_set set =
  layer_of_iter ~size:(Atom.Set.cardinal set) (fun f -> Atom.Set.iter f set)

(* Merge [newer] onto [older]: bucket items of the newer layer stay in
   front, preserving the probe order of the unmerged stack. Same-mode
   stacks merge structurally; a mixed pair (only possible across a
   [set_arena] flip) is rebuilt from scratch in the current mode. *)
let merge_append (v : bucket) (old : bucket) =
  {
    n = v.n + old.n;
    atoms = Array.append v.atoms old.atoms;
    ids = Array.append v.ids old.ids;
    arows =
      (if Array.length v.arows = v.n && Array.length old.arows = old.n then
         Array.append v.arows old.arows
       else [||]);
  }

let merge_layers newer older =
  Atomic.incr c_builds;
  ignore (Atomic.fetch_and_add c_built_atoms (newer.lsize + older.lsize));
  if newer.l_arena <> older.l_arena then begin
    (* Mode boundary: rebuild the merged layer wholesale (rare — only
       the layers straddling a toggle flip). Newest-first item order is
       preserved by emitting the newer layer's buckets first. *)
    let items = ref [] in
    let collect l =
      List.iter
        (fun sym ->
          match Hashtbl.find_opt l.l_rel (Symbol.id sym) with
          | None -> ()
          | Some b ->
              for row = b.n - 1 downto 0 do
                items := b.atoms.(row) :: !items
              done)
        (List.rev l.l_syms)
    in
    collect older;
    collect newer;
    layer_of_list !items (newer.lsize + older.lsize)
  end
  else begin
    let merge_tbl a b =
      let tbl = Hashtbl.create (Hashtbl.length a + Hashtbl.length b) in
      Hashtbl.iter (Hashtbl.replace tbl) b;
      Hashtbl.iter
        (fun k (v : bucket) ->
          match Hashtbl.find_opt tbl k with
          | None -> Hashtbl.replace tbl k v
          | Some old -> Hashtbl.replace tbl k (merge_append v old))
        a;
      tbl
    in
    (* Postings of the merged relation table: the newer layer's rows keep
       their indices, the older layer's shift up by the newer relation
       bucket's row count — both sides ascending, so concatenation stays
       ascending. *)
    let merge_posts () =
      let tbl =
        Hashtbl.create
          (Hashtbl.length newer.l_posts + Hashtbl.length older.l_posts)
      in
      Hashtbl.iter
        (fun ((sid, _) as key) old_rows ->
          let off =
            match Hashtbl.find_opt newer.l_rel sid with
            | Some b -> b.n
            | None -> 0
          in
          let shifted =
            if off = 0 then old_rows else Array.map (fun r -> r + off) old_rows
          in
          match Hashtbl.find_opt newer.l_posts key with
          | None -> Hashtbl.replace tbl key shifted
          | Some new_rows -> Hashtbl.replace tbl key (Array.append new_rows shifted))
        older.l_posts;
      Hashtbl.iter
        (fun key new_rows ->
          if not (Hashtbl.mem older.l_posts key) then
            Hashtbl.replace tbl key new_rows)
        newer.l_posts;
      tbl
    in
    let l_syms =
      older.l_syms
      @ List.filter
          (fun s -> not (Hashtbl.mem older.l_rel (Symbol.id s)))
          newer.l_syms
    in
    {
      lsize = newer.lsize + older.lsize;
      l_arena = newer.l_arena;
      l_syms;
      l_rel = merge_tbl newer.l_rel older.l_rel;
      l_pos =
        (if newer.l_arena then Hashtbl.create 1
         else merge_tbl newer.l_pos older.l_pos);
      l_posts = (if newer.l_arena then merge_posts () else Hashtbl.create 1);
    }
  end

(* ------------------------------------------------------------------ *)
(* Indexes: layer stacks + the active domain                           *)
(* ------------------------------------------------------------------ *)

type index = {
  layers : layer list;  (* newest first *)
  n_layers : int;
  domain : Term.Set.t;
}

(* Lookups probe every layer, so the stack is kept shallow: past
   [max_layers] the adjacent pair with the smallest combined size is
   merged (deterministic, and amortized O(log n) per atom under streams
   of small adds — the geometric layer sizes of a doubling chase make the
   smallest-pair merge cheap relative to the stage's own delta). The
   bound is deliberately tight: every join probe pays one hash lookup
   per layer, and the chase hot loop issues several probes per trigger,
   so a deep stack taxes reads far more than compaction taxes writes. *)
let max_layers = 4

let rec rebalance layers n =
  if n <= max_layers then (layers, n)
  else
    let arr = Array.of_list layers in
    let best = ref 0 and best_size = ref max_int in
    for i = 0 to Array.length arr - 2 do
      let s = arr.(i).lsize + arr.(i + 1).lsize in
      if s < !best_size then begin
        best := i;
        best_size := s
      end
    done;
    let merged = merge_layers arr.(!best) arr.(!best + 1) in
    let layers' =
      List.concat
        [
          Array.to_list (Array.sub arr 0 !best);
          [ merged ];
          Array.to_list
            (Array.sub arr (!best + 2) (Array.length arr - !best - 2));
        ]
    in
    rebalance layers' (n - 1)

let cons_layer idx layer domain =
  if layer.lsize = 0 then { idx with domain }
  else
    let layers, n_layers = rebalance (layer :: idx.layers) (idx.n_layers + 1) in
    { layers; n_layers; domain }

let domain_add_atom dom atom =
  (* Set.add returns the set itself (physically) when the element is
     already present, so the common rediscovered-term case is alloc-free. *)
  List.fold_left (fun d t -> Term.Set.add t d) dom (Atom.args atom)

let empty_index = { layers = []; n_layers = 0; domain = Term.Set.empty }

let index_of_set set =
  if Atom.Set.is_empty set then empty_index
  else begin
    Atomic.incr c_builds;
    ignore (Atomic.fetch_and_add c_built_atoms (Atom.Set.cardinal set));
    let layer = layer_of_set set in
    let domain = Atom.Set.fold (fun a d -> domain_add_atom d a) set Term.Set.empty in
    { layers = [ layer ]; n_layers = 1; domain }
  end

(* Layer lookups. [n_layers] is small, so per-constraint totals are a
   short list walk over cached bucket lengths.

   A segment is one layer's worth of candidate rows: either a whole
   packed bucket ([Dense]) or a posting into the layer's relation table
   ([Rows]). Candidate enumeration is segment order (newest layer
   first), rows in index order within a segment — which both
   representations agree on (see the header comment). *)

type seg = Dense of bucket | Rows of bucket * int array

let seg_n = function Dense b -> b.n | Rows (_, rows) -> Array.length rows

let seg_iter_atoms seg f =
  match seg with
  | Dense b -> Array.iter f b.atoms
  | Rows (b, rows) -> Array.iter (fun row -> f b.atoms.(row)) rows

let rel_buckets idx sid =
  List.filter_map (fun l -> Hashtbl.find_opt l.l_rel sid) idx.layers

(* The segments matching one (position, term) constraint, per layer. *)
let pos_segs idx sid key =
  let probes = ref 0 in
  let segs =
    List.filter_map
      (fun l ->
        incr probes;
        if l.l_arena then
          match Hashtbl.find_opt l.l_posts key with
          | None -> None
          | Some rows -> (
              match Hashtbl.find_opt l.l_rel sid with
              | None -> None
              | Some b -> Some (Rows (b, rows)))
        else
          match Hashtbl.find_opt l.l_pos key with
          | None -> None
          | Some b -> Some (Dense b))
      idx.layers
  in
  ignore (Atomic.fetch_and_add c_posting_probes !probes);
  segs

let segs_total segs = List.fold_left (fun acc s -> acc + seg_n s) 0 segs

let segs_items segs =
  List.concat_map
    (fun seg ->
      match seg with
      | Dense b -> Array.to_list b.atoms
      | Rows (b, rows) ->
          Array.to_list (Array.map (fun row -> b.atoms.(row)) rows))
    segs

let buckets_items bs =
  List.concat_map (fun (b : bucket) -> Array.to_list b.atoms) bs

(* Does row [row] of [b] hold exactly [atom]'s arguments? All atoms of a
   bucket share [atom]'s relation (the key includes the symbol id), so
   full id-row equality certifies [Atom.equal] — a contiguous int scan,
   no pointer chasing. *)
let row_is arity (b : bucket) row (atom : Atom.t) =
  let args = atom.Atom.args in
  let base = row * arity in
  let rec go pos =
    pos >= arity
    || (b.ids.(base + pos) = args.(pos).Term.id && go (pos + 1))
  in
  go 0

let layer_mem l atom =
  let rel = Atom.rel atom in
  let sid = Symbol.id rel in
  let arity = Symbol.arity rel in
  if arity = 0 then Hashtbl.mem l.l_rel sid
  else
    let a0 = (Atom.arg atom 0 : Term.t) in
    let key = (sid, a0.Term.id * arity) in
    if l.l_arena then
      match Hashtbl.find_opt l.l_posts key with
      | None -> false
      | Some rows -> (
          match Hashtbl.find_opt l.l_rel sid with
          | None -> false
          | Some b -> Array.exists (fun row -> row_is arity b row atom) rows)
    else
      match Hashtbl.find_opt l.l_pos key with
      | None -> false
      | Some b ->
          let rec probe row =
            row < b.n && (row_is arity b row atom || probe (row + 1))
          in
          probe 0

(* Does [term] occur (in any position of any fact) under these layers?
   Cold path, used only to maintain [domain] across removals. *)
let term_occurs layers (term : Term.t) =
  List.exists
    (fun l ->
      let probe_tbl : (int * int) -> bool =
        if l.l_arena then Hashtbl.mem l.l_posts else Hashtbl.mem l.l_pos
      in
      List.exists
        (fun sym ->
          let sid = Symbol.id sym in
          let arity = Symbol.arity sym in
          let rec probe pos =
            pos < arity
            && (probe_tbl (sid, (term.Term.id * arity) + pos)
               || probe (pos + 1))
          in
          probe 0)
        l.l_syms)
    layers

(* ------------------------------------------------------------------ *)
(* Fact sets                                                           *)
(* ------------------------------------------------------------------ *)

type t = { set : Atom.Set.t; mutable index : index_state }

and index_state =
  | Unbuilt
  | Built of index
  | Lazy_extend of { base : t; other : t }
      (* Pending disjoint union [base ∪ other]: forced by concatenating
         the two sides' layer stacks, so the delta side's layers are
         built once and shared — and never built at all if this set's
         index is never needed (e.g. a chase's final stage). *)

let of_set set = { set; index = Unbuilt }
let empty = of_set Atom.Set.empty
let of_list l = of_set (Atom.Set.of_list l)
let to_set t = t.set
let atoms t = Atom.Set.elements t.set
let cardinal t = Atom.Set.cardinal t.set
let is_empty t = Atom.Set.is_empty t.set
let mem a t = Atom.Set.mem a t.set

let is_indexed t = match t.index with Unbuilt -> false | _ -> true

let rec index t =
  match t.index with
  | Built i -> i
  | Unbuilt ->
      (* Benign race: concurrent forcing computes equal indexes and one
         single-word write wins. The chase engines pre-force indexes of
         shared sets before fanning out, so in practice this runs in the
         coordinator. *)
      let i = index_of_set t.set in
      t.index <- Built i;
      i
  | Lazy_extend { base; other } ->
      let bidx = index base in
      let oidx = index other in
      Atomic.incr c_extends;
      ignore (Atomic.fetch_and_add c_delta_atoms (Atom.Set.cardinal other.set));
      let layers, n_layers =
        rebalance (oidx.layers @ bidx.layers) (oidx.n_layers + bidx.n_layers)
      in
      let i =
        { layers; n_layers; domain = Term.Set.union bidx.domain oidx.domain }
      in
      t.index <- Built i;
      i

(* [derive ~delta ~ndelta parent set'] : the fact set [set'], with its
   index extended from [parent]'s by consing a frozen layer of the
   [delta] atoms (when the parent is indexed and incremental maintenance
   is on). *)
let derive ~delta ~ndelta parent set' =
  if is_indexed parent && Atomic.get incremental then begin
    let idx = index parent in
    Atomic.incr c_extends;
    ignore (Atomic.fetch_and_add c_delta_atoms ndelta);
    let layer = layer_of_list delta ndelta in
    let domain = List.fold_left domain_add_atom idx.domain delta in
    { set = set'; index = Built (cons_layer idx layer domain) }
  end
  else of_set set'

let add a t =
  if Atom.Set.mem a t.set then t
  else derive ~delta:[ a ] ~ndelta:1 t (Atom.Set.add a t.set)

let union a b =
  if is_empty a then b
  else if is_empty b then a
  else if not (Atomic.get incremental) then of_set (Atom.Set.union a.set b.set)
  else
    (* Extend the indexed (preferring the larger) side by the other's
       delta; with no index on either side, stay lazy. *)
    let base, other =
      match (is_indexed a, is_indexed b) with
      | true, false -> (a, b)
      | false, true -> (b, a)
      | true, true | false, false ->
          if Atom.Set.cardinal a.set >= Atom.Set.cardinal b.set then (a, b)
          else (b, a)
    in
    if not (is_indexed base) then of_set (Atom.Set.union a.set b.set)
    else if Atom.Set.disjoint a.set b.set then
      (* Disjoint union: share the delta side's layers wholesale, and
         lazily — each delta atom is indexed at most once per chase, and
         not at all when the union's index is never consulted (a chase's
         final stage). *)
      {
        set = Atom.Set.union base.set other.set;
        index = Lazy_extend { base; other };
      }
    else
      let delta = Atom.Set.elements (Atom.Set.diff other.set base.set) in
      if delta = [] then base
      else
        derive ~delta ~ndelta:(List.length delta) base
          (Atom.Set.union base.set other.set)

(* [union] for callers that know the operands share no atom (the chase
   engine's freshly-derived delta): skips the disjointness walk. The
   precondition is not checked — a violation would double atoms inside
   index buckets (the [set] itself stays correct). *)
let union_disjoint a b =
  if is_empty a then b
  else if is_empty b then a
  else if not (Atomic.get incremental) then of_set (Atom.Set.union a.set b.set)
  else
    let base, other =
      match (is_indexed a, is_indexed b) with
      | true, false -> (a, b)
      | false, true -> (b, a)
      | true, true | false, false ->
          if Atom.Set.cardinal a.set >= Atom.Set.cardinal b.set then (a, b)
          else (b, a)
    in
    if not (is_indexed base) then of_set (Atom.Set.union a.set b.set)
    else
      {
        set = Atom.Set.union base.set other.set;
        index = Lazy_extend { base; other };
      }

let diff a b =
  let plain () = of_set (Atom.Set.diff a.set b.set) in
  if not (is_indexed a && Atomic.get incremental) then plain ()
  else
    let idx = index a in
    (
      let removed = Atom.Set.inter a.set b.set in
      let n_removed = Atom.Set.cardinal removed in
      (* Filtering most of the layers costs more than one lazy rebuild of
         the (small) result: only shrink small deltas. *)
      if n_removed = 0 then a
      else if 4 * n_removed > Atom.Set.cardinal a.set then plain ()
      else begin
        Atomic.incr c_shrinks;
        ignore (Atomic.fetch_and_add c_removed_atoms n_removed);
        (* Rebuild exactly the layers that contain removed atoms; the
           others are shared untouched. *)
        let layers =
          List.filter_map
            (fun l ->
              if not (Atom.Set.exists (fun x -> layer_mem l x) removed) then
                Some l
              else
                let kept =
                  Hashtbl.fold
                    (fun _ (b : bucket) acc ->
                      Array.fold_left
                        (fun acc atom ->
                          if Atom.Set.mem atom removed then acc
                          else atom :: acc)
                        acc b.atoms)
                    l.l_rel []
                in
                match kept with
                | [] -> None
                | _ -> Some (layer_of_list kept (List.length kept)))
            idx.layers
        in
        let domain =
          Atom.Set.fold
            (fun atom dom ->
              List.fold_left
                (fun dom term ->
                  if term_occurs layers term then dom
                  else Term.Set.remove term dom)
                dom (Atom.args atom))
            removed idx.domain
        in
        {
          set = Atom.Set.diff a.set b.set;
          index = Built { layers; n_layers = List.length layers; domain };
        }
      end)

let remove a t =
  if not (Atom.Set.mem a t.set) then t
  else diff t { set = Atom.Set.singleton a; index = Unbuilt }

let inter a b = of_set (Atom.Set.inter a.set b.set)
let subset a b = Atom.Set.subset a.set b.set
let equal a b = Atom.Set.equal a.set b.set
let filter f t = of_set (Atom.Set.filter f t.set)
let domain t = (index t).domain

let signature t =
  Atom.Set.fold (fun a acc -> Symbol.Set.add (Atom.rel a) acc) t.set
    Symbol.Set.empty

let by_rel t rel = buckets_items (rel_buckets (index t) (Symbol.id rel))

let candidates t rel ~bound =
  let idx = index t in
  let sid = Symbol.id rel in
  let arity = Symbol.arity rel in
  let segs_of (pos, (term : Term.t)) =
    pos_segs idx sid (sid, (term.Term.id * arity) + pos)
  in
  match bound with
  | [] -> buckets_items (rel_buckets idx sid)
  | [ c ] ->
      (* The term-id key is exact: a single-constraint lookup needs no
         post-filtering. *)
      segs_items (segs_of c)
  | c0 :: rest ->
      let seed0 = segs_of c0 in
      let seed, seed_n =
        List.fold_left
          (fun ((_, best_n) as best) c ->
            let segs = segs_of c in
            let n = segs_total segs in
            if n < best_n then (segs, n) else best)
          (seed0, segs_total seed0)
          rest
      in
      if seed_n = 0 then []
      else
        (* Constraint rejection runs on the flat id slab. *)
        let matches (b : bucket) row =
          List.for_all
            (fun (pos, (term : Term.t)) ->
              b.ids.((row * arity) + pos) = term.Term.id)
            bound
        in
        List.concat_map
          (fun seg ->
            let out = ref [] in
            (match seg with
            | Dense b ->
                for row = b.n - 1 downto 0 do
                  if matches b row then out := b.atoms.(row) :: !out
                done
            | Rows (b, rows) ->
                for k = Array.length rows - 1 downto 0 do
                  let row = rows.(k) in
                  if matches b row then out := b.atoms.(row) :: !out
                done);
            !out)
          seed

(* Allocation-free variant of [candidates] for the join inner loop: the
   segments are iterated in place instead of being concatenated into a
   fresh list per probe. The enumeration order is exactly the order of
   [candidates]. *)
let iter_candidates t rel ~bound f =
  let idx = index t in
  let sid = Symbol.id rel in
  let arity = Symbol.arity rel in
  let segs_of (pos, (term : Term.t)) =
    pos_segs idx sid (sid, (term.Term.id * arity) + pos)
  in
  let iter_segs segs = List.iter (fun seg -> seg_iter_atoms seg f) segs in
  match bound with
  | [] ->
      List.iter
        (fun (b : bucket) -> Array.iter f b.atoms)
        (rel_buckets idx sid)
  | [ c ] -> iter_segs (segs_of c)
  | c0 :: rest ->
      let seed0 = segs_of c0 in
      let seed, seed_n =
        List.fold_left
          (fun ((_, best_n) as best) c ->
            let segs = segs_of c in
            let n = segs_total segs in
            if n < best_n then (segs, n) else best)
          (seed0, segs_total seed0)
          rest
      in
      if seed_n > 0 then
        let matches (b : bucket) row =
          List.for_all
            (fun (pos, (term : Term.t)) ->
              b.ids.((row * arity) + pos) = term.Term.id)
            bound
        in
        List.iter
          (fun seg ->
            match seg with
            | Dense b ->
                for row = 0 to b.n - 1 do
                  if matches b row then f b.atoms.(row)
                done
            | Rows (b, rows) ->
                Array.iter
                  (fun row -> if matches b row then f b.atoms.(row))
                  rows)
          seed

(* The raw-slab variant for the homomorphism engine: enumerate the rows
   of the most selective seed segments {e without} applying the [bound]
   filter — the caller's compiled slot plan re-checks every position on
   the [ids] slab anyway, so filtering here would test each constraint
   twice. The rows visited are a superset of [candidates t rel ~bound]
   (exactly the candidate set when [bound] has at most one constraint),
   in the same segment order. *)
let iter_candidate_rows t rel ~bound f =
  let idx = index t in
  let sid = Symbol.id rel in
  let arity = Symbol.arity rel in
  let segs_of (pos, (term : Term.t)) =
    pos_segs idx sid (sid, (term.Term.id * arity) + pos)
  in
  let iter_segs segs =
    List.iter
      (fun seg ->
        match seg with
        | Dense b ->
            for row = 0 to b.n - 1 do
              f b.atoms b.ids row
            done
        | Rows (b, rows) -> Array.iter (fun row -> f b.atoms b.ids row) rows)
      segs
  in
  match bound with
  | [] ->
      List.iter
        (fun (b : bucket) ->
          for row = 0 to b.n - 1 do
            f b.atoms b.ids row
          done)
        (rel_buckets idx sid)
  | [ c ] -> iter_segs (segs_of c)
  | c0 :: rest ->
      let seed0 = segs_of c0 in
      let seed, seed_n =
        List.fold_left
          (fun ((_, best_n) as best) c ->
            let segs = segs_of c in
            let n = segs_total segs in
            if n < best_n then (segs, n) else best)
          (seed0, segs_total seed0)
          rest
      in
      if seed_n > 0 then iter_segs seed

(* The compiled join's candidate enumeration: [bound_pos]/[bound_ids]
   hold [nb] (position, term id) constraints in caller-owned scratch
   arrays — no per-node allocation. Rows are visited without the bound
   filter (the caller's register machine re-checks every position), in
   exactly the order [iter_candidate_rows] would produce; the seed
   constraint is chosen *per layer* (each layer's filtered candidate
   order is canonical, so per-layer seeds never permute the final
   enumeration). On arena layers with at least two constraints and a
   non-trivial seed posting, the two smallest postings are merge-
   intersected — ascending row walks, zero allocation — before the rows
   reach the caller. *)
let intersect_min = 8

let iter_join_candidates t rel ~bound_pos ~bound_ids ~nb f =
  let idx = index t in
  let sid = Symbol.id rel in
  let arity = Symbol.arity rel in
  if nb = 0 then
    List.iter
      (fun (b : bucket) ->
        for row = 0 to b.n - 1 do
          f b.atoms b.ids row
        done)
      (rel_buckets idx sid)
  else begin
    let probes = ref 0 in
    List.iter
      (fun l ->
        if l.l_arena then begin
          match Hashtbl.find_opt l.l_rel sid with
          | None -> ()
          | Some b ->
              (* Find the two smallest postings among the constraints; a
                 missing posting means the layer has no matching fact. *)
              let seed = ref ([||] : int array)
              and second = ref ([||] : int array)
              and sn = ref max_int
              and sn2 = ref max_int
              and dead = ref false in
              for c = 0 to nb - 1 do
                if not !dead then begin
                  incr probes;
                  match
                    Hashtbl.find_opt l.l_posts
                      (sid, (bound_ids.(c) * arity) + bound_pos.(c))
                  with
                  | None -> dead := true
                  | Some rows ->
                      let n = Array.length rows in
                      if n < !sn then begin
                        second := !seed;
                        sn2 := !sn;
                        seed := rows;
                        sn := n
                      end
                      else if n < !sn2 then begin
                        second := rows;
                        sn2 := n
                      end
                end
              done;
              if not !dead then
                if nb >= 2 && !sn >= intersect_min then begin
                  (* Merge-intersect the two smallest ascending postings;
                     survivors come out in ascending row order — the
                     canonical per-layer order. *)
                  Atomic.incr c_posting_intersections;
                  let a = !seed and b2 = !second in
                  let na = Array.length a and nb2 = Array.length b2 in
                  let i = ref 0 and j = ref 0 in
                  while !i < na && !j < nb2 do
                    let ra = Array.unsafe_get a !i
                    and rb = Array.unsafe_get b2 !j in
                    if ra < rb then incr i
                    else if rb < ra then incr j
                    else begin
                      f b.atoms b.ids ra;
                      incr i;
                      incr j
                    end
                  done
                end
                else Array.iter (fun row -> f b.atoms b.ids row) !seed
        end
        else begin
          (* Boxed layer: the smallest duplicated (pos, term) bucket. *)
          let seed = ref (None : bucket option) and sn = ref max_int in
          let dead = ref false in
          for c = 0 to nb - 1 do
            if not !dead then begin
              incr probes;
              match
                Hashtbl.find_opt l.l_pos
                  (sid, (bound_ids.(c) * arity) + bound_pos.(c))
              with
              | None -> dead := true
              | Some b ->
                  if b.n < !sn then begin
                    seed := Some b;
                    sn := b.n
                  end
            end
          done;
          if not !dead then
            match !seed with
            | None -> ()
            | Some b ->
                for row = 0 to b.n - 1 do
                  f b.atoms b.ids row
                done
        end)
      idx.layers;
    ignore (Atomic.fetch_and_add c_posting_probes !probes)
  end

(* Every atom with [term] in some argument position, in [Atom.Set]
   order (the order a filter over [atoms] would produce). One index
   probe per (layer, relation, position) replaces the full scan callers
   like [Engine.birth_atom] used to pay per term. *)
let atoms_with_term t (term : Term.t) =
  let idx = index t in
  let acc = ref Atom.Set.empty in
  List.iter
    (fun l ->
      List.iter
        (fun sym ->
          let sid = Symbol.id sym in
          let arity = Symbol.arity sym in
          for pos = 0 to arity - 1 do
            let key = (sid, (term.Term.id * arity) + pos) in
            if l.l_arena then
              match Hashtbl.find_opt l.l_posts key with
              | None -> ()
              | Some rows -> (
                  match Hashtbl.find_opt l.l_rel sid with
                  | None -> ()
                  | Some b ->
                      Array.iter
                        (fun row -> acc := Atom.Set.add b.atoms.(row) !acc)
                        rows)
            else
              match Hashtbl.find_opt l.l_pos key with
              | None -> ()
              | Some b ->
                  Array.iter (fun a -> acc := Atom.Set.add a !acc) b.atoms
          done)
        l.l_syms)
    idx.layers;
  Atom.Set.elements !acc

let restrict t allowed =
  filter
    (fun a -> List.for_all (fun term -> Term.Set.mem term allowed) (Atom.args a))
    t

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Atom.pp) (atoms t)

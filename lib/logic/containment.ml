let hom_problem ~from ~into ~extra_ok =
  (* A homomorphism from query [from] to query [into], mapping answer
     variables positionally. *)
  if List.length (Cq.free from) <> List.length (Cq.free into) then None
  else
    let init =
      List.fold_left2
        (fun m v w -> Term.Map.add v w m)
        Term.Map.empty (Cq.free from) (Cq.free into)
    in
    Some
      (Homomorphism.make ~init ~image_ok:extra_ok
         ~flexible:(Cq.var_set from)
         ~pattern:(Cq.atoms from)
         ~target:(Cq.as_fact_set into) ())

(* ------------------------------------------------------------------ *)
(* Decomposed solving                                                  *)
(* ------------------------------------------------------------------ *)

(* A/B switch over the solver-side accelerations: the
   fingerprint prescreen ([Cq.hom_feasible]), the component
   decomposition of the pattern, and the connectivity tie-break in the
   search plan. Off restores the monolithic engine verbatim. *)
let decomp_on = Atomic.make true
let set_decomposition b = Atomic.set decomp_on b
let decomposition_enabled () = Atomic.get decomp_on

type solver_stats = { splits : int; prescreened : int }

let c_splits = Atomic.make 0
let c_prescreened = Atomic.make 0

let solver_stats () =
  { splits = Atomic.get c_splits; prescreened = Atomic.get c_prescreened }

let reset_solver_stats () =
  Atomic.set c_splits 0;
  Atomic.set c_prescreened 0

exception Found

(* Static connectivity weights for the seed-selection tie-break: an
   atom scores the total occurrence count (over the whole pattern) of
   the existential variables it binds, so at equal bound counts the
   search extends through the most shared variables first. *)
let connectivity_tie_break ~free atoms =
  let occ : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun a ->
      List.iter
        (fun (t : Term.t) ->
          if Term.is_var t && not (Term.Set.mem t free) then
            Hashtbl.replace occ t.Term.id
              (1 + Option.value ~default:0 (Hashtbl.find_opt occ t.Term.id)))
        (Atom.args a))
    atoms;
  let weights : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let w =
        List.fold_left
          (fun acc (t : Term.t) ->
            if Term.is_var t && not (Term.Set.mem t free) then
              acc + Option.value ~default:0 (Hashtbl.find_opt occ t.Term.id)
            else acc)
          0 (Atom.args a)
      in
      Hashtbl.replace weights (Atom.hash a) w)
    atoms;
  fun a -> Option.value ~default:0 (Hashtbl.find_opt weights (Atom.hash a))

(* Solve the containment homomorphism [from -> into] one connected
   component of [from]'s body at a time: components share no bindable
   variable (answer variables are pre-bound, constants and functional
   terms rigid), so the conjunction holds iff each component embeds
   independently — a product of small searches with early exit instead
   of one deep one. Components are tried smallest-first. *)
let exists_decomposed ~from ~into ~init =
  let flexible = Cq.var_set from in
  let target = Cq.as_fact_set into in
  let free = Term.Set.of_list (Cq.free from) in
  let exists_component atoms =
    (* The plan layer (lib/eval) registers an existence probe at link
       time; it answers with its own engine selection, or declines
       ([None]) problems it cannot compile — then, and in programs that
       never link the plan layer, the in-library search runs. *)
    let planned =
      if Eval_hook.eval_enabled () then
        match Eval_hook.probe () with
        | Some probe -> probe ~init ~flexible ~pattern:atoms ~target
        | None -> None
      else None
    in
    match planned with
    | Some verdict -> verdict
    | None -> (
        let tie_break = connectivity_tie_break ~free atoms in
        try
          Homomorphism.iter_multi ~init ~tie_break ~flexible
            ~pattern:(List.map (fun a -> (a, target)) atoms)
            ~domain_bindings:[]
            (fun _ -> raise Found);
          false
        with Found -> true)
  in
  match Cq.body_components from with
  | [ _ ] -> exists_component (Cq.atoms from)
  | comps ->
      Atomic.incr c_splits;
      let by_size =
        List.stable_sort
          (fun a b -> Int.compare (List.length a) (List.length b))
          comps
      in
      List.for_all exists_component by_size

let implies q1 q2 =
  (* Necessary condition first: a homomorphism [q2 -> q1] maps each atom
     to an atom with the same relation, so every relation of [q2] must
     occur in [q1]. One [land] on cached signature fingerprints rejects
     most negative checks before any search. *)
  Cq.sig_mask q2 land lnot (Cq.sig_mask q1) = 0
  &&
  if Atomic.get decomp_on then
    if List.length (Cq.free q2) <> List.length (Cq.free q1) then false
    else if not (Cq.hom_feasible ~from:q2 ~into:q1) then begin
      (* Anchor or distance-profile refutation: no search at all. *)
      Atomic.incr c_prescreened;
      false
    end
    else
      let init =
        List.fold_left2
          (fun m v w -> Term.Map.add v w m)
          Term.Map.empty (Cq.free q2) (Cq.free q1)
      in
      exists_decomposed ~from:q2 ~into:q1 ~init
  else
    match hom_problem ~from:q2 ~into:q1 ~extra_ok:(fun _ _ -> true) with
    | None -> false
    | Some p -> Homomorphism.exists p

(* ------------------------------------------------------------------ *)
(* Memoized containment                                                *)
(* ------------------------------------------------------------------ *)

(* Verdicts of [implies] are cached under pairs of canonical query ids
   ([Cq.canon_id] — sound: equal ids certify isomorphism, and containment
   is isomorphism-invariant). The cache is a lock-free direct-mapped
   table: the triple [(k1, k2, verdict)] is packed into one immediate
   OCaml int (31 + 31 + 1 bits), so a probe is a single atomic array
   read and a store a single atomic write — key and verdict can never
   tear apart, racing domains at worst overwrite each other's slot, and
   a memo round-trip costs tens of nanoseconds (it must stay well under
   the ~1us of a recomputed verdict to be worth anything). Collisions
   evict (bounded memory, no locks, no generations). *)

type memo_stats = { hits : int; misses : int; entries : int }

let memo_on = Atomic.make true
let set_memoization b = Atomic.set memo_on b
let memoization_enabled () = Atomic.get memo_on
let m_hits = Atomic.make 0
let m_misses = Atomic.make 0

(* Occupied-slot count, maintained on store (a write over an empty slot
   gains an entry; a collision evicts one and installs another, net
   zero). Replaces the full-table sweep [memo_stats] used to pay per
   call — [Rewrite.finalize] reads the stats on every rewriting run.
   Racing domains claiming the same empty slot may overcount by one;
   the counter is instrumentation, not a correctness input. *)
let m_entries = Atomic.make 0
let memo_bits = 16
let memo_size = 1 lsl memo_bits

(* 0 is a safe "empty" sentinel: entries are only stored for [k1 <> k2]
   (equal ids short-circuit to [true] before the cache), and any packed
   entry with [k1 <> k2] is nonzero. *)
let memo_table = Array.make memo_size 0

let memo_slot k1 k2 = (((k1 * 0x9e3779b1) lxor k2) * 0x85ebca6b) land (memo_size - 1)
let memo_pack k1 k2 v = (((k1 lsl 31) lor k2) lsl 1) lor (if v then 1 else 0)

let memo_stats () =
  {
    hits = Atomic.get m_hits;
    misses = Atomic.get m_misses;
    entries = Atomic.get m_entries;
  }

let reset_memo () =
  Array.fill memo_table 0 memo_size 0;
  Atomic.set m_hits 0;
  Atomic.set m_misses 0;
  Atomic.set m_entries 0

let implies_memo q1 q2 =
  if q1 == q2 then true
  else if List.length (Cq.free q1) <> List.length (Cq.free q2) then false
  else if not (Atomic.get memo_on) then implies q1 q2
  else
    let k1 = Cq.canon_id q1 and k2 = Cq.canon_id q2 in
    if k1 = k2 then true (* isomorphic, hence mutually containing *)
    else if (k1 lor k2) lsr 31 <> 0 then
      (* Ids beyond 31 bits do not fit the packing; compute unmemoized
         (practically unreachable). *)
      implies q1 q2
    else begin
      let slot = memo_slot k1 k2 in
      let entry = Array.unsafe_get memo_table slot in
      if entry <> 0 && entry lsr 1 = (k1 lsl 31) lor k2 then begin
        Atomic.incr m_hits;
        entry land 1 = 1
      end
      else begin
        Atomic.incr m_misses;
        let v = implies q1 q2 in
        if Array.unsafe_get memo_table slot = 0 then Atomic.incr m_entries;
        Array.unsafe_set memo_table slot (memo_pack k1 k2 v);
        v
      end
    end

(* A pure peek: resolve the pair from [implies_memo]'s fast paths (physical
   equality, free-arity mismatch, equal canonical ids, a live cache entry)
   or answer [None] — never computes a verdict. This is the coordinator's
   batch prepass in the rewriting store: pairs decided here skip the pool
   fan-out entirely. *)
let memo_probe q1 q2 =
  if q1 == q2 then Some true
  else if List.length (Cq.free q1) <> List.length (Cq.free q2) then
    Some false
  else if not (Atomic.get memo_on) then None
  else
    let k1 = Cq.canon_id q1 and k2 = Cq.canon_id q2 in
    if k1 = k2 then Some true (* isomorphic, hence mutually containing *)
    else if (k1 lor k2) lsr 31 <> 0 then None
    else
      let entry = Array.unsafe_get memo_table (memo_slot k1 k2) in
      if entry <> 0 && entry lsr 1 = (k1 lsl 31) lor k2 then begin
        Atomic.incr m_hits;
        Some (entry land 1 = 1)
      end
      else None

let equivalent q1 q2 = implies q1 q2 && implies q2 q1

(* NB: [isomorphic] stays monolithic even with decomposition on — the
   injectivity requirement couples components, so they cannot be solved
   independently. Invariants still apply as *prescreens*: the 1-WL
   color-refinement arrays must agree (this is what separates same-shape
   queries that differ only in which symmetric node carries a
   distinguishing atom — the dominant refutation case when classifying
   markings), and an isomorphism is in particular a homomorphism each
   way, so both directions must be hom-feasible. With the toggle on the
   search itself then runs in injective mode, failing a clashing binding
   the moment it is attempted instead of enumerating every (mostly
   non-injective) homomorphism and filtering afterwards. *)
let isomorphic q1 q2 =
  Cq.size q1 = Cq.size q2
  && List.length (Cq.vars q1) = List.length (Cq.vars q2)
  && String.equal (Cq.iso_key q1) (Cq.iso_key q2)
  &&
  if Atomic.get decomp_on then
    List.length (Cq.free q1) = List.length (Cq.free q2)
    && Cq.wl_equal q1 q2
    && Cq.hom_feasible ~from:q1 ~into:q2
    && Cq.hom_feasible ~from:q2 ~into:q1
    &&
    let init =
      List.fold_left2
        (fun m v w -> Term.Map.add v w m)
        Term.Map.empty (Cq.free q1) (Cq.free q2)
    in
    let target = Cq.as_fact_set q2 in
    let free = Term.Set.of_list (Cq.free q1) in
    let tie_break = connectivity_tie_break ~free (Cq.atoms q1) in
    (try
       Homomorphism.iter_multi ~init ~tie_break ~injective:true
         ~flexible:(Cq.var_set q1)
         ~pattern:(List.map (fun a -> (a, target)) (Cq.atoms q1))
         ~domain_bindings:[]
         (fun _ -> raise Found);
       false
     with Found -> true)
  else
    match hom_problem ~from:q1 ~into:q2 ~extra_ok:(fun _ _ -> true) with
    | None -> false
    | Some p -> (
        let injective m =
          let images = Term.Map.fold (fun _ u acc -> u :: acc) m [] in
          List.length images
          = Term.Set.cardinal (Term.Set.of_list images)
        in
        try
          Homomorphism.iter p (fun m -> if injective m then raise Found);
          false
        with Found -> true)

let core_of_query q =
  let redundant q atom =
    match
      List.filter (fun a -> not (Atom.equal a atom)) (Cq.atoms q)
    with
    | [] -> None
    | smaller_atoms ->
        let smaller = Cq.make ~free:(Cq.free q) smaller_atoms in
        (* [atom] is redundant iff the full query maps into the smaller
           one fixing the answer variables — i.e. the smaller query
           implies the full one (memoized: the shrink loop re-tests many
           isomorphic subquery pairs). The subsumption-index fingerprint
           probe refutes most non-redundant candidates before even the
           memo table is consulted. *)
        if
          decomposition_enabled ()
          && not (Ucq_index.pair_feasible ~from:q ~into:smaller)
        then None
        else if implies_memo smaller q then Some smaller
        else None
  in
  let rec shrink q =
    let rec try_each = function
      | [] -> q
      | atom :: rest -> (
          (* Free variables must keep occurring in the body. *)
          match redundant q atom with
          | Some smaller -> shrink smaller
          | None -> try_each rest
          | exception Invalid_argument _ -> try_each rest)
    in
    try_each (Cq.atoms q)
  in
  shrink q

let hom_problem ~from ~into ~extra_ok =
  (* A homomorphism from query [from] to query [into], mapping answer
     variables positionally. *)
  if List.length (Cq.free from) <> List.length (Cq.free into) then None
  else
    let init =
      List.fold_left2
        (fun m v w -> Term.Map.add v w m)
        Term.Map.empty (Cq.free from) (Cq.free into)
    in
    Some
      (Homomorphism.make ~init ~image_ok:extra_ok
         ~flexible:(Cq.var_set from)
         ~pattern:(Cq.atoms from)
         ~target:(Cq.as_fact_set into) ())

let implies q1 q2 =
  (* Necessary condition first: a homomorphism [q2 -> q1] maps each atom
     to an atom with the same relation, so every relation of [q2] must
     occur in [q1]. One [land] on cached signature fingerprints rejects
     most negative checks before any search. *)
  Cq.sig_mask q2 land lnot (Cq.sig_mask q1) = 0
  &&
  match hom_problem ~from:q2 ~into:q1 ~extra_ok:(fun _ _ -> true) with
  | None -> false
  | Some p -> Homomorphism.exists p

(* ------------------------------------------------------------------ *)
(* Memoized containment                                                *)
(* ------------------------------------------------------------------ *)

(* Verdicts of [implies] are cached under pairs of canonical query ids
   ([Cq.canon_id] — sound: equal ids certify isomorphism, and containment
   is isomorphism-invariant). The cache is a lock-free direct-mapped
   table: the triple [(k1, k2, verdict)] is packed into one immediate
   OCaml int (31 + 31 + 1 bits), so a probe is a single atomic array
   read and a store a single atomic write — key and verdict can never
   tear apart, racing domains at worst overwrite each other's slot, and
   a memo round-trip costs tens of nanoseconds (it must stay well under
   the ~1us of a recomputed verdict to be worth anything). Collisions
   evict (bounded memory, no locks, no generations). *)

type memo_stats = { hits : int; misses : int; entries : int }

let memo_on = Atomic.make true
let set_memoization b = Atomic.set memo_on b
let memoization_enabled () = Atomic.get memo_on
let m_hits = Atomic.make 0
let m_misses = Atomic.make 0
let memo_bits = 16
let memo_size = 1 lsl memo_bits

(* 0 is a safe "empty" sentinel: entries are only stored for [k1 <> k2]
   (equal ids short-circuit to [true] before the cache), and any packed
   entry with [k1 <> k2] is nonzero. *)
let memo_table = Array.make memo_size 0

let memo_slot k1 k2 = (((k1 * 0x9e3779b1) lxor k2) * 0x85ebca6b) land (memo_size - 1)
let memo_pack k1 k2 v = (((k1 lsl 31) lor k2) lsl 1) lor (if v then 1 else 0)

let memo_stats () =
  let entries = ref 0 in
  Array.iter (fun e -> if e <> 0 then incr entries) memo_table;
  {
    hits = Atomic.get m_hits;
    misses = Atomic.get m_misses;
    entries = !entries;
  }

let reset_memo () =
  Array.fill memo_table 0 memo_size 0;
  Atomic.set m_hits 0;
  Atomic.set m_misses 0

let implies_memo q1 q2 =
  if q1 == q2 then true
  else if List.length (Cq.free q1) <> List.length (Cq.free q2) then false
  else if not (Atomic.get memo_on) then implies q1 q2
  else
    let k1 = Cq.canon_id q1 and k2 = Cq.canon_id q2 in
    if k1 = k2 then true (* isomorphic, hence mutually containing *)
    else if (k1 lor k2) lsr 31 <> 0 then
      (* Ids beyond 31 bits do not fit the packing; compute unmemoized
         (practically unreachable). *)
      implies q1 q2
    else begin
      let slot = memo_slot k1 k2 in
      let entry = Array.unsafe_get memo_table slot in
      if entry <> 0 && entry lsr 1 = (k1 lsl 31) lor k2 then begin
        Atomic.incr m_hits;
        entry land 1 = 1
      end
      else begin
        Atomic.incr m_misses;
        let v = implies q1 q2 in
        Array.unsafe_set memo_table slot (memo_pack k1 k2 v);
        v
      end
    end

let equivalent q1 q2 = implies q1 q2 && implies q2 q1

exception Found

let isomorphic q1 q2 =
  Cq.size q1 = Cq.size q2
  && List.length (Cq.vars q1) = List.length (Cq.vars q2)
  && String.equal (Cq.iso_key q1) (Cq.iso_key q2)
  &&
  match hom_problem ~from:q1 ~into:q2 ~extra_ok:(fun _ _ -> true) with
  | None -> false
  | Some p -> (
      let injective m =
        let images = Term.Map.fold (fun _ u acc -> u :: acc) m [] in
        List.length images
        = Term.Set.cardinal (Term.Set.of_list images)
      in
      try
        Homomorphism.iter p (fun m -> if injective m then raise Found);
        false
      with Found -> true)

let core_of_query q =
  let redundant q atom =
    match
      List.filter (fun a -> not (Atom.equal a atom)) (Cq.atoms q)
    with
    | [] -> None
    | smaller_atoms ->
        let smaller = Cq.make ~free:(Cq.free q) smaller_atoms in
        (* [atom] is redundant iff the full query maps into the smaller
           one fixing the answer variables — i.e. the smaller query
           implies the full one (memoized: the shrink loop re-tests many
           isomorphic subquery pairs). *)
        if implies_memo smaller q then Some smaller else None
  in
  let rec shrink q =
    let rec try_each = function
      | [] -> q
      | atom :: rest -> (
          (* Free variables must keep occurring in the body. *)
          match redundant q atom with
          | Some smaller -> shrink smaller
          | None -> try_each rest
          | exception Invalid_argument _ -> try_each rest)
    in
    try_each (Cq.atoms q)
  in
  shrink q

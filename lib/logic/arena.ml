(* The flat atom arena: an append-only, Bigarray-backed store in which
   every interned atom lives as one contiguous *span* of a flat [int]
   array — [sym_id; arity; arg0_id; ...; arg(k-1)_id] — with O(1)
   id <-> span lookup in both directions. Atom ids are dense (0, 1, 2,
   ...in interning order), so a fact-set table can store plain [int
   array]s of atom ids and the join engine can decode any argument with
   two array reads, never touching a boxed [Atom.t]. The boxed atom is
   kept in a parallel id-indexed table for the moments a solution
   escapes the int world (handing a matched fact to a callback).

   One arena per process ([global]) is the normal mode — interning is
   hash-consing, so sharing maximizes hits — but arenas are first-class
   ([create]) so the unit tests can exercise growth and decoding from a
   known-empty state.

   Concurrency: interning takes the arena's mutex (the chase interns
   from the coordinator while building index layers, so the lock is
   effectively uncontended). Readers are lock-free: a span is fully
   written before its id escapes the intern call, growth republishes a
   fresh storage array rather than resizing in place, and ids travel to
   other domains only inside structures handed through the pool's job
   barrier. *)

type big = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let big_create n : big = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout n

type t = {
  lock : Mutex.t;
  mutable data : big;  (* concatenated spans *)
  mutable used : int;  (* ints of [data] in use *)
  mutable offs : big;  (* atom id -> span base offset in [data] *)
  mutable atoms : Atom.t option array;  (* atom id -> boxed atom *)
  mutable n : int;  (* interned atoms; ids are [0, n) *)
  index : (int, int list) Hashtbl.t;  (* span hash -> candidate atom ids *)
}

let create ?(initial = 1024) () =
  let initial = max 16 initial in
  {
    lock = Mutex.create ();
    data = big_create initial;
    used = 0;
    offs = big_create (max 16 (initial / 4));
    atoms = Array.make (max 16 (initial / 4)) None;
    n = 0;
    index = Hashtbl.create 1024;
  }

let global = create ~initial:(1 lsl 16) ()

(* FNV-style fold over the relation id and argument term ids — the same
   ingredients the span stores, so equal spans always collide. *)
let span_hash sid (args : Term.t array) =
  Array.fold_left
    (fun h (t : Term.t) -> (h * 0x01000193) lxor t.Term.id)
    (0x811c9dc5 lxor sid) args
  land max_int

let spans a = a.n
let ints a = a.used

type stats = { spans : int; ints : int; bytes : int }

let stats a = { spans = a.n; ints = a.used; bytes = a.used * 8 }

let base a id = Bigarray.Array1.unsafe_get a.offs id
let rel_id a id = Bigarray.Array1.unsafe_get a.data (base a id)
let arity a id = Bigarray.Array1.unsafe_get a.data (base a id + 1)
let arg a id pos = Bigarray.Array1.unsafe_get a.data (base a id + 2 + pos)

let to_atom a id =
  if id < 0 || id >= a.n then invalid_arg "Arena.to_atom: unknown atom id"
  else
    match a.atoms.(id) with
    | Some atom -> atom
    | None -> invalid_arg "Arena.to_atom: unknown atom id"

(* Does span [id] hold exactly (sid, args)? Contiguous int compares. *)
let span_is a id sid (args : Term.t array) =
  let k = Array.length args in
  let b = base a id in
  let data = a.data in
  Bigarray.Array1.unsafe_get data b = sid
  && Bigarray.Array1.unsafe_get data (b + 1) = k
  &&
  let rec go pos =
    pos >= k
    || Bigarray.Array1.unsafe_get data (b + 2 + pos)
       = args.(pos).Term.id
       && go (pos + 1)
  in
  go 0

let grow_data a need =
  if a.used + need > Bigarray.Array1.dim a.data then begin
    let cap = max (2 * Bigarray.Array1.dim a.data) (a.used + need) in
    let data' = big_create cap in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub a.data 0 a.used)
      (Bigarray.Array1.sub data' 0 a.used);
    a.data <- data'
  end

let grow_meta a =
  if a.n >= Bigarray.Array1.dim a.offs then begin
    let cap = 2 * Bigarray.Array1.dim a.offs in
    let offs' = big_create cap in
    Bigarray.Array1.blit a.offs (Bigarray.Array1.sub offs' 0 a.n);
    a.offs <- offs'
  end;
  if a.n >= Array.length a.atoms then begin
    let atoms' = Array.make (2 * Array.length a.atoms) None in
    Array.blit a.atoms 0 atoms' 0 a.n;
    a.atoms <- atoms'
  end

let intern a (atom : Atom.t) =
  let sid = Symbol.id atom.Atom.rel in
  let args = atom.Atom.args in
  let h = span_hash sid args in
  Mutex.protect a.lock (fun () ->
      let candidates =
        match Hashtbl.find_opt a.index h with Some l -> l | None -> []
      in
      match List.find_opt (fun id -> span_is a id sid args) candidates with
      | Some id -> id
      | None ->
          let k = Array.length args in
          grow_data a (k + 2);
          grow_meta a;
          let id = a.n and b = a.used in
          let data = a.data in
          Bigarray.Array1.unsafe_set data b sid;
          Bigarray.Array1.unsafe_set data (b + 1) k;
          for pos = 0 to k - 1 do
            Bigarray.Array1.unsafe_set data (b + 2 + pos)
              args.(pos).Term.id
          done;
          Bigarray.Array1.unsafe_set a.offs id b;
          a.atoms.(id) <- Some atom;
          a.used <- b + k + 2;
          a.n <- id + 1;
          Hashtbl.replace a.index h (id :: candidates);
          id)

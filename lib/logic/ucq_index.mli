(** Subsumption index over the disjuncts of an evolving UCQ.

    Stored disjuncts are keyed by cheap homomorphism-invariants — the
    signature fingerprint {!Cq.sig_mask}, the exact per-predicate
    occurrence vector (compared as a {e support}: a homomorphism may
    collapse atoms, so occurrence counts never bound the target's), and
    the anchor/distance profiles of {!Cq.hom_feasible} — so that "which
    stored disjuncts could subsume candidate [q]" and "which could [q]
    subsume" are answered by fingerprint probes before any backtracking
    search runs.

    Entries are kept in insertion order with a tombstone flag; the live
    disjuncts read newest-first reproduce exactly the disjunct order of
    the unindexed reference engine, so both engines produce identical
    UCQs.

    The containment test itself is passed in as [~implies] (the caller
    chooses raw, memoized or instrumented), keeping this module
    independent of {!Containment}. *)

type t

val create : unit -> t
val cardinal : t -> int
(** Number of live disjuncts. *)

val disjuncts : t -> Cq.t list
(** Live disjuncts, newest first — the reference engine's order. *)

val insert_minimal :
  t -> Cq.t -> implies:(Cq.t -> Cq.t -> bool) -> [ `Added | `Subsumed ]
(** The indexed {!Ucq.add_minimal}: [`Subsumed] when a live disjunct
    covers [q] (index untouched); otherwise kills every disjunct [q]
    covers, appends [q], and returns [`Added]. Only fingerprint-feasible
    pairs reach [implies]. *)

val covered : t -> Cq.t -> implies:(Cq.t -> Cq.t -> bool) -> bool
(** Is [q] subsumed by some live disjunct? (Newest-first probe order.) *)

val drop_subsumed : t -> Cq.t -> implies:(Cq.t -> Cq.t -> bool) -> unit
(** Kill every live disjunct that [q] subsumes. *)

val add : t -> Cq.t -> unit
(** Append a disjunct unconditionally (the caller has already
    established minimality). *)

val subsumer_candidates : t -> Cq.t -> Cq.t list
(** Live disjuncts the fingerprints could not rule out as subsumers of
    [q], newest first — for callers that fan the surviving [implies]
    checks out across a pool. *)

val victim_candidates : t -> Cq.t -> (int * Cq.t) list
(** Live disjuncts the fingerprints could not rule out as subsumed by
    [q], oldest first, with their slots (see {!kill}). *)

val kill : t -> int -> unit
(** Tombstone the disjunct in the given slot (idempotent). *)

val pair_feasible : from:Cq.t -> into:Cq.t -> bool
(** {!Cq.hom_feasible} with the index's probe counters: the one-shot
    pair filter for list-based callers without a persistent index. *)

(** {1 A/B toggle and instrumentation} *)

val set_indexing : bool -> unit
(** A/B switch in the style of [Fact_set.set_incremental]:
    [set_indexing false] restores the unindexed reference engines
    (linear scans, no fingerprint pruning) in every caller that consults
    this toggle. Defaults to [true]. *)

val indexing_enabled : unit -> bool

type stats = {
  pairs : int;  (** disjunct pairs considered by index probes *)
  pruned : int;  (** pairs refuted by fingerprints alone *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

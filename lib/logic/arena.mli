(** The flat atom arena: a Bigarray-backed, append-only int-packed store
    in which every interned atom is one contiguous span of a flat [int]
    array — [sym_id; arity; arg term ids...] — with O(1) id↔span lookup
    both ways. Fact-set tables built in arena mode
    ({!Fact_set.set_arena}) store plain atom-id rows into this store,
    and the compiled homomorphism join decodes arguments with two array
    reads instead of chasing [Atom.t]/[Term.t] pointers.

    Atom ids are dense interning indices (0, 1, ... in first-intern
    order), valid for the arena's lifetime; the store never shrinks.
    Interning is mutex-protected; decoding is lock-free. *)

type t

val create : ?initial:int -> unit -> t
(** A fresh, empty arena ([initial] is the initial capacity in ints).
    Mainly for tests; production code shares {!global}. *)

val global : t
(** The process-wide arena used by {!Fact_set}'s arena-mode layers. *)

val intern : t -> Atom.t -> int
(** The arena id of [atom], appending a new span on first sight —
    hash-consing at the atom level (equal atoms get equal ids). *)

val to_atom : t -> int -> Atom.t
(** The boxed atom of an arena id, O(1). Raises [Invalid_argument] on an
    id this arena never issued. *)

val base : t -> int -> int
(** Span base offset of an atom id (the [sym_id] slot's index). *)

val rel_id : t -> int -> int
(** [Symbol.id] of the atom's relation: first slot of the span. *)

val arity : t -> int -> int
(** Argument count: second slot of the span. *)

val arg : t -> int -> int -> int
(** [arg a id pos] is the hash-consed term id of argument [pos]. No
    bounds check beyond the Bigarray's own; [pos] must be < arity. *)

val spans : t -> int
(** Number of interned atoms. *)

val ints : t -> int
(** Total ints of span storage in use. *)

type stats = { spans : int; ints : int; bytes : int }

val stats : t -> stats
(** Snapshot of the arena's size — surfaced by [--stats] and the bench
    stage tables. *)

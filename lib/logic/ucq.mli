(** Unions of conjunctive queries, kept minimal in the sense of Theorem 1:
    no disjunct is implied by (redundant w.r.t.) another disjunct. *)

type t

val empty : t
val of_list : Cq.t list -> t
(** Builds the minimal equivalent UCQ: drops every disjunct whose answers
    are covered by another disjunct, and collapses equivalent disjuncts. *)

val disjuncts : t -> Cq.t list
val cardinal : t -> int
val is_empty : t -> bool

val max_disjunct_size : t -> int
(** [rs] of Section 7: the maximal number of atoms of a disjunct. *)

val add_minimal : t -> Cq.t -> t * [ `Added | `Subsumed ]
(** Insert a disjunct, maintaining minimality: returns [`Subsumed] (and the
    unchanged UCQ) when an existing disjunct already covers it; otherwise
    removes the disjuncts it covers and adds it. *)

val covers : t -> Cq.t -> bool
(** Is the disjunct redundant w.r.t. the union (covered by some element)? *)

val of_disjuncts_unchecked : Cq.t list -> t
(** Wrap an already-minimal disjunct list without re-running the quadratic
    minimization. The caller vouches for minimality (used by the parallel
    rewriting saturation, which performs its own containment pruning). *)

val equivalent : t -> t -> bool
(** Mutual containment of the unions: every disjunct of each side is
    covered by some disjunct of the other. This is semantic UCQ
    equivalence, the right notion for comparing rewritings produced by
    different saturation orders. *)

val holds : t -> Fact_set.t -> Term.t list -> bool
val boolean_holds : t -> Fact_set.t -> bool
val union : t -> t -> t
val exists : (Cq.t -> bool) -> t -> bool
val find_opt : (Cq.t -> bool) -> t -> Cq.t option
val pp : t Fmt.t

(* Relation symbols are hash-consed: [make] returns the unique symbol for
   a (name, arity) pair, carrying a dense integer [id] used as a packed
   hash-table key by the fact-set indexes. The table is shared by every
   domain, hence the lock. *)

type t = { id : int; name : string; arity : int }

let table : (string * int, t) Hashtbl.t = Hashtbl.create 256
let table_lock = Mutex.create ()
let next_id = ref 0

let make name ~arity =
  if arity < 0 then invalid_arg "Symbol.make: negative arity";
  Mutex.protect table_lock (fun () ->
      match Hashtbl.find_opt table (name, arity) with
      | Some s -> s
      | None ->
          let s = { id = !next_id; name; arity } in
          incr next_id;
          Hashtbl.add table (name, arity) s;
          s)

let id s = s.id
let name s = s.name
let arity s = s.arity

(* Order by name (then arity) — not by id — so that [Set]/[Map] listings
   stay alphabetical and independent of symbol creation order. Hash-consing
   makes equal symbols physically equal, so the common same-symbol case
   (every comparison inside a single-relation [Atom.Set] subtree) skips the
   string comparison. *)
let compare a b =
  if a == b then 0
  else
    let c = String.compare a.name b.name in
    if c <> 0 then c else Int.compare a.arity b.arity

let equal a b = a.id = b.id
let pp ppf s = Fmt.string ppf s.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

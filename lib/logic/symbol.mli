(** Relation symbols of a signature (schema).

    A symbol is a name paired with an arity; two symbols with the same name
    but different arities are distinct (the paper never overloads names, but
    generated signatures such as the [T_NF] nullary predicates are easier to
    produce when the invariant is local to the symbol).

    Symbols are hash-consed: [make] returns the unique symbol for each
    (name, arity) pair, so [equal] is an integer comparison and [id] is a
    dense process-wide identifier suitable for packed index keys. [compare]
    still orders by name (then arity) to keep [Set]/[Map] traversals
    alphabetical. *)

type t = private { id : int; name : string; arity : int }

val make : string -> arity:int -> t
val id : t -> int
val name : t -> string
val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** Conjunctive queries [phi(ybar) = exists xbar. beta(xbar, ybar)].

    The body is a *set* of atoms (duplicates are collapsed); the size
    [|phi|] is the number of body atoms (Section 2). Free variables are the
    answer variables [ybar]; every other variable is implicitly
    existentially quantified. *)

type t = private {
  free : Term.t list;
  atoms : Atom.t list;
  mutable canon_id : int;  (** see [canon_id]; [-1] until first computed *)
  mutable fs : Fact_set.t option;  (** cached [as_fact_set] view *)
  mutable vset : Term.Set.t option;  (** cached [var_set] *)
  mutable sig_mask : int;  (** cached [sig_mask]; [0] until first computed *)
}

val make : free:Term.t list -> Atom.t list -> t
(** Raises [Invalid_argument] if a free "variable" is not a [Term.var], if
    the body is empty, or if a free variable does not occur in the body. *)

val free : t -> Term.t list
val atoms : t -> Atom.t list
val size : t -> int
(** Number of body atoms ([|phi(ybar)|] in the paper). *)

val vars : t -> Term.t list
(** All variables of the query, free first, in deterministic order. *)

val var_set : t -> Term.Set.t
(** [vars] as a set, computed once per query and cached — the containment
    hot path needs it on every homomorphism problem. *)

val sig_mask : t -> int
(** A 61-bit fingerprint of the body's relation symbols (bit
    [Symbol.id mod 61]). If [sig_mask q land lnot (sig_mask q') <> 0] then
    some relation of [q] does not occur in [q'], so no homomorphism
    [q -> q'] exists — an O(1) necessary condition for containment.
    Cached. *)

val exist_vars : t -> Term.t list
val is_boolean : t -> bool
val gaifman : t -> Gaifman.t
val is_connected : t -> bool

val as_fact_set : t -> Fact_set.t
(** The body "seen as a structure" (footnote 12): variables as domain
    elements. The view (and its lazily built join index) is computed once
    per query and cached. *)

val holds : t -> Fact_set.t -> Term.t list -> bool
(** [holds q f tuple]: does [f |= q(tuple)]? The tuple instantiates the free
    variables positionally. *)

val boolean_holds : t -> Fact_set.t -> bool
(** Satisfaction with the free variables (if any) also treated as
    existential — used when the paper evaluates [phi(abar)] with [abar]
    already substituted into the body. *)

val answers : t -> Fact_set.t -> Term.t list list
(** All distinct answer tuples over the active domain of [f]. *)

val subst : Term.t Term.Int_map.t -> t -> t
(** Apply a substitution to body and free variables; a free variable mapped
    to a non-variable is dropped from the free list (it became a constant
    answer position), mirroring the instantiation [phi(abar)]. *)

val refresh : ?prefix:string -> t -> t * Term.t Term.Int_map.t
(** Rename every variable (free and existential) to a fresh name; returns
    the renaming. Used to avoid capture in the rewriting engine. *)

val refresh_exist : ?prefix:string -> t -> t
(** Rename only the existential variables (free variables are shared
    interface and must stay). *)

val iso_key : t -> string
(** A cheap isomorphism-invariant fingerprint: equal for isomorphic queries,
    used to bucket before expensive isomorphism checks. The converse fails:
    non-isomorphic queries may share a fingerprint. *)

val canon_id : t -> int
(** The interned id of a canonical rendering of the query. Sound as an
    identity: [canon_id q1 = canon_id q2] certifies that [q1] and [q2] are
    isomorphic (equal up to renaming of bound variables, free variables
    positional) — which makes the id a safe key for memoizing containment
    verdicts. Not complete: isomorphic queries whose canonical traversals
    tie-break differently may get distinct ids (a cache miss, never a wrong
    answer). Computed lazily and cached on the query. *)

val pp : t Fmt.t

val fresh_var : ?prefix:string -> unit -> Term.t
(** A globally fresh variable. *)

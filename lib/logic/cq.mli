(** Conjunctive queries [phi(ybar) = exists xbar. beta(xbar, ybar)].

    The body is a *set* of atoms (duplicates are collapsed); the size
    [|phi|] is the number of body atoms (Section 2). Free variables are the
    answer variables [ybar]; every other variable is implicitly
    existentially quantified. *)

type t = private {
  free : Term.t list;
  atoms : Atom.t list;
  mutable canon_id : int;  (** see [canon_id]; [-1] until first computed *)
  mutable fs : Fact_set.t option;  (** cached [as_fact_set] view *)
  mutable vset : Term.Set.t option;  (** cached [var_set] *)
  mutable sig_mask : int;  (** cached [sig_mask]; [0] until first computed *)
  mutable anchors : int;  (** cached [anchor_mask]; [-1] until computed *)
  mutable profile : int array option;  (** cached [hom_profile] *)
  mutable ecomps : Atom.t list list option;
      (** cached [body_components] *)
  mutable wl : int array option;  (** cached [wl_colors] *)
}

val make : free:Term.t list -> Atom.t list -> t
(** Raises [Invalid_argument] if a free "variable" is not a [Term.var], if
    the body is empty, or if a free variable does not occur in the body. *)

val free : t -> Term.t list
val atoms : t -> Atom.t list
val size : t -> int
(** Number of body atoms ([|phi(ybar)|] in the paper). *)

val vars : t -> Term.t list
(** All variables of the query, free first, in deterministic order. *)

val var_set : t -> Term.Set.t
(** [vars] as a set, computed once per query and cached — the containment
    hot path needs it on every homomorphism problem. *)

val sig_mask : t -> int
(** A 61-bit fingerprint of the body's relation symbols (bit
    [Symbol.id mod 61]). If [sig_mask q land lnot (sig_mask q') <> 0] then
    some relation of [q] does not occur in [q'], so no homomorphism
    [q -> q'] exists — an O(1) necessary condition for containment.
    Cached. *)

val anchor_mask : t -> int
(** A 61-bit fingerprint of the body's {e anchors}: rigid terms
    (constants, functional terms, answer variables — the latter tagged by
    their position in the free list) at their (relation, position) slots.
    A homomorphism fixing answer variables positionally maps every anchor
    of its pattern to the identical anchor in its target, so
    [anchor_mask from land lnot (anchor_mask into) <> 0] refutes any
    homomorphism [from -> into]. Cached. *)

val hom_profile : t -> int array
(** Sorted packed Gaifman-distance profile of the body: for each answer
    variable, its minimal distance (in the graph over all body terms) to
    each (relation, position) slot, plus the pairwise distances between
    answer variables. See [hom_feasible]. Cached. *)

val hom_feasible : from:t -> into:t -> bool
(** Conjunction of O(1)/near-linear necessary conditions for a
    homomorphism [from -> into] fixing answer variables positionally
    (the test [Containment.implies into from] performs): relation
    support ([sig_mask]), anchors ([anchor_mask]) and distance-profile
    domination — homomorphisms map Gaifman edges to edges, so no
    distance may grow. [false] certifies there is no homomorphism;
    [true] says nothing. Note that atom and per-predicate occurrence
    {e counts} are deliberately not compared: a homomorphism may collapse
    atoms, so counts of [from] bound nothing in [into]. *)

val wl_colors : t -> int array
(** Sorted stable colors of a 1-Weisfeiler-Leman refinement over the
    body's direct-argument terms (edges labeled by relation and argument
    positions; answer variables colored by position, ground terms by
    identity, bound variables by their occurrence slots, non-ground
    functional terms coarsely by head symbol and arity). Equal for
    isomorphic queries; unlike the extremal-statistics fingerprints it
    separates queries that differ only in which of several symmetric
    nodes carries a distinguishing atom. Cached. *)

val wl_hash : t -> int
(** [wl_colors] folded to one int — an isomorphism-invariant hash
    suitable for bucketing (collisions possible, never unequal hashes on
    isomorphic queries). *)

val wl_equal : t -> t -> bool
(** Equality of [wl_colors]: a necessary condition for isomorphism. *)

val body_components : t -> Atom.t list list
(** Connected components of the body atoms under shared existential
    variables in argument position (answer variables, constants and
    functional terms are rigid for the match and do not couple atoms).
    Atoms keep their body order inside each component; components are
    ordered by first atom. A homomorphism fixing the rigid terms exists
    iff one exists per component independently. Cached. *)

val exist_vars : t -> Term.t list
val is_boolean : t -> bool
val gaifman : t -> Gaifman.t
val is_connected : t -> bool

val as_fact_set : t -> Fact_set.t
(** The body "seen as a structure" (footnote 12): variables as domain
    elements. The view (and its lazily built join index) is computed once
    per query and cached. *)

val holds : t -> Fact_set.t -> Term.t list -> bool
(** [holds q f tuple]: does [f |= q(tuple)]? The tuple instantiates the free
    variables positionally. *)

val boolean_holds : t -> Fact_set.t -> bool
(** Satisfaction with the free variables (if any) also treated as
    existential — used when the paper evaluates [phi(abar)] with [abar]
    already substituted into the body. *)

val answers : t -> Fact_set.t -> Term.t list list
(** All distinct answer tuples over the active domain of [f]. *)

val subst : Term.t Term.Int_map.t -> t -> t
(** Apply a substitution to body and free variables; a free variable mapped
    to a non-variable is dropped from the free list (it became a constant
    answer position), mirroring the instantiation [phi(abar)]. *)

val refresh : ?prefix:string -> t -> t * Term.t Term.Int_map.t
(** Rename every variable (free and existential) to a fresh name; returns
    the renaming. Used to avoid capture in the rewriting engine. *)

val refresh_exist : ?prefix:string -> t -> t
(** Rename only the existential variables (free variables are shared
    interface and must stay). *)

val iso_key : t -> string
(** A cheap isomorphism-invariant fingerprint: equal for isomorphic queries,
    used to bucket before expensive isomorphism checks. The converse fails:
    non-isomorphic queries may share a fingerprint. *)

val canon_id : t -> int
(** The interned id of a canonical rendering of the query. Sound as an
    identity: [canon_id q1 = canon_id q2] certifies that [q1] and [q2] are
    isomorphic (equal up to renaming of bound variables, free variables
    positional) — which makes the id a safe key for memoizing containment
    verdicts. Not complete: isomorphic queries whose canonical traversals
    tie-break differently may get distinct ids (a cache miss, never a wrong
    answer). Computed lazily and cached on the query. *)

val pp : t Fmt.t

val fresh_var : ?prefix:string -> unit -> Term.t
(** A globally fresh variable. *)

val reserve_fresh : int -> unit
(** Advance the fresh-variable counter to at least [n]: every later
    {!fresh_var} name uses a number strictly greater than [n]. Snapshot
    decoding calls this for each re-interned [prefix#n] variable, so a
    resumed saturation can never mint a "fresh" variable that collides
    with (and silently captures) one carried in from the interrupted
    process's state. *)

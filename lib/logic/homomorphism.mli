(** Homomorphism search.

    One engine serves every use in the paper: rule-body matching for the
    chase ([Hom(rho, F)] of Definition 5), conjunctive-query evaluation,
    CQ containment (Chandra-Merlin), retract search for cores, and the
    marked-query satisfaction of Definition 48 (via the [image_ok]
    filter).

    A problem maps the [flexible] terms of [pattern] into the active domain
    of [target]; all other pattern terms are fixed and must match literally.
    Terms are matched *atomically* — a Skolem term is a single domain
    element, never decomposed — which is the homomorphism notion of
    Section 2. *)

type mapping = Term.t Term.Map.t

type problem

val make :
  ?init:mapping ->
  ?image_ok:(Term.t -> Term.t -> bool) ->
  ?prefer:(Atom.t -> int) ->
  ?domain_vars:Term.t list ->
  flexible:Term.Set.t ->
  pattern:Atom.t list ->
  target:Fact_set.t ->
  unit ->
  problem
(** [image_ok v t] filters admissible images of flexible term [v];
    [domain_vars] are flexible terms that need not occur in [pattern] and
    are bound to arbitrary active-domain elements (the [dom(x)] pseudo-body
    of rules like (pins)). [init] pre-binds flexible terms (e.g. answer
    variables to an answer tuple). [prefer] ranks candidate facts (lower
    first) to steer which homomorphism is enumerated first — it biases the
    search order but never prunes. *)

val find : problem -> mapping option
val exists : problem -> bool
val iter : problem -> (mapping -> unit) -> unit
(** Enumerates every homomorphism (each total on flexible terms occurring in
    the pattern and on [domain_vars]). *)

val count : problem -> int

val iter_multi :
  ?init:mapping ->
  ?image_ok:(Term.t -> Term.t -> bool) ->
  ?prefer:(Atom.t -> int) ->
  ?tie_break:(Atom.t -> int) ->
  ?injective:bool ->
  flexible:Term.Set.t ->
  pattern:(Atom.t * Fact_set.t) list ->
  domain_bindings:(Term.t * Term.t list) list ->
  (mapping -> unit) ->
  unit
(** Generalized engine: each pattern atom carries its own target (the
    semi-naive chase partitions body atoms between old/delta/full stages)
    and each domain variable its own candidate pool. [tie_break] ranks
    pattern atoms (higher first) when the dynamic most-bound-first seed
    selection ties — e.g. by static connectivity, so the atom most
    entangled with the rest of the pattern is matched next. It permutes
    the enumeration order of homomorphisms but never changes which
    mappings exist. [injective] (default false) restricts the
    enumeration to mappings with pairwise-distinct images ([init]
    included), pruning a clashing binding the moment it is attempted —
    the same mappings a post-hoc injectivity filter would keep, without
    exhausting the non-injective search space first. *)

val apply : mapping -> flexible:Term.Set.t -> Atom.t -> Atom.t
(** Apply a mapping to an atom, positionally and atomically: each argument
    that is flexible is replaced by its (required) image. *)

(** {1 Engine instrumentation}

    With {!Fact_set.arena_enabled} (the default) and no [prefer], the
    search runs on a compiled register machine: flexible terms become
    int registers, pattern atoms compile to int slot arrays, candidates
    stream off the fact set's packed id slabs, and backtracking pops a
    trail — no allocation per search node, terms rematerialized only for
    complete homomorphisms. It enumerates mappings in exactly the boxed
    engine's order (pinned by the QCheck differentials). These process-
    wide counters measure that engine; thread-safe. *)

type counters = {
  searches : int;  (** compiled-engine invocations *)
  nodes : int;  (** search nodes (seed selections) *)
  reg_ops : int;  (** register-machine slot checks *)
  solutions : int;  (** homomorphisms enumerated by the compiled engine *)
}

val counters : unit -> counters
val reset_counters : unit -> unit

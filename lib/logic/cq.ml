type t = { free : Term.t list; atoms : Atom.t list }

(* Atomic: fresh variables are minted from worker domains during parallel
   rewriting saturation. *)
let gensym = Atomic.make 0

let fresh_var ?(prefix = "v") () =
  Term.var (Printf.sprintf "%s#%d" prefix (1 + Atomic.fetch_and_add gensym 1))

let dedup_terms l =
  let _, rev =
    List.fold_left
      (fun (seen, acc) x ->
        if Term.Set.mem x seen then (seen, acc)
        else (Term.Set.add x seen, x :: acc))
      (Term.Set.empty, []) l
  in
  List.rev rev

let body_vars atoms = dedup_terms (List.concat_map Atom.vars atoms)

let make ~free atoms =
  if atoms = [] then invalid_arg "Cq.make: empty body";
  List.iter
    (fun v ->
      if not (Term.is_var v) then
        invalid_arg "Cq.make: free answer position must be a variable")
    free;
  let atoms = Atom.Set.elements (Atom.Set.of_list atoms) in
  let bv = Term.Set.of_list (body_vars atoms) in
  List.iter
    (fun v ->
      if not (Term.Set.mem v bv) then
        invalid_arg
          (Fmt.str "Cq.make: free variable %a does not occur in the body"
             Term.pp v))
    free;
  { free = dedup_terms free; atoms }

let free q = q.free
let atoms q = q.atoms
let size q = List.length q.atoms

let vars q =
  dedup_terms (q.free @ body_vars q.atoms)

let exist_vars q =
  let fv = Term.Set.of_list q.free in
  List.filter (fun v -> not (Term.Set.mem v fv)) (body_vars q.atoms)

let is_boolean q = q.free = []
let gaifman q = Gaifman.of_atoms q.atoms
let is_connected q = Gaifman.connected (gaifman q)
let as_fact_set q = Fact_set.of_list q.atoms

let holds q target tuple =
  if List.length tuple <> List.length q.free then
    invalid_arg "Cq.holds: answer tuple arity mismatch";
  let init =
    List.fold_left2
      (fun m v a -> Term.Map.add v a m)
      Term.Map.empty q.free tuple
  in
  Homomorphism.exists
    (Homomorphism.make ~init
       ~flexible:(Term.Set.of_list (vars q))
       ~pattern:q.atoms ~target ())

let boolean_holds q target =
  Homomorphism.exists
    (Homomorphism.make
       ~flexible:(Term.Set.of_list (vars q))
       ~pattern:q.atoms ~target ())

module Tuple_set = Set.Make (struct
  type t = Term.t list

  let compare = List.compare Term.compare
end)

let answers q target =
  let results = ref Tuple_set.empty in
  Homomorphism.iter
    (Homomorphism.make
       ~flexible:(Term.Set.of_list (vars q))
       ~pattern:q.atoms ~target ())
    (fun m ->
      let tuple = List.map (fun v -> Term.Map.find v m) q.free in
      results := Tuple_set.add tuple !results);
  Tuple_set.elements !results

let subst m q =
  let atoms = List.map (Atom.subst m) q.atoms in
  let free =
    List.filter_map
      (fun v ->
        let v' = Term.subst m v in
        if Term.is_var v' then Some v' else None)
      q.free
  in
  make ~free atoms

let refresh ?(prefix = "r") q =
  let renaming =
    Term.subst_of_bindings
      (List.map (fun v -> (v, fresh_var ~prefix ())) (vars q))
  in
  (subst renaming q, renaming)

let refresh_exist ?(prefix = "e") q =
  let renaming =
    Term.subst_of_bindings
      (List.map (fun v -> (v, fresh_var ~prefix ())) (exist_vars q))
  in
  subst renaming q

let iso_key q =
  (* Invariant under renaming of bound variables: free variables are
     identified by their position in the free list, bound variables by their
     total occurrence count in the body. *)
  let free_index = List.mapi (fun i v -> (v, i)) q.free in
  let occurrences v =
    List.fold_left
      (fun acc a ->
        acc
        + List.length (List.filter (Term.equal v) (Atom.args a)))
      0 q.atoms
  in
  let term_tag t =
    match t.Term.view with
    | Term.Const name -> "c:" ^ name
    | Term.App _ -> Fmt.str "t:%a" Term.pp t
    | Term.Var _ -> (
        match List.assoc_opt t free_index with
        | Some i -> "f" ^ string_of_int i
        | None -> "b" ^ string_of_int (occurrences t))
  in
  let atom_key a =
    Symbol.name (Atom.rel a)
    ^ "("
    ^ String.concat "," (List.map term_tag (Atom.args a))
    ^ ")"
  in
  String.concat ";" (List.sort String.compare (List.map atom_key q.atoms))

let pp ppf q =
  let pp_atoms = Fmt.list ~sep:(Fmt.any ", ") Atom.pp in
  match (q.free, exist_vars q) with
  | [], ev ->
      Fmt.pf ppf "{exists %a. %a}"
        (Fmt.list ~sep:(Fmt.any " ") Term.pp)
        ev pp_atoms q.atoms
  | fv, [] ->
      Fmt.pf ppf "{(%a). %a}" (Fmt.list ~sep:(Fmt.any ",") Term.pp) fv pp_atoms
        q.atoms
  | fv, ev ->
      Fmt.pf ppf "{(%a). exists %a. %a}"
        (Fmt.list ~sep:(Fmt.any ",") Term.pp)
        fv
        (Fmt.list ~sep:(Fmt.any " ") Term.pp)
        ev pp_atoms q.atoms

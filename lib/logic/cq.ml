type t = {
  free : Term.t list;
  atoms : Atom.t list;
  mutable canon_id : int;  (* interned canonical-form id; -1 = not yet computed *)
  mutable fs : Fact_set.t option;  (* cached [as_fact_set] view *)
  mutable vset : Term.Set.t option;  (* cached [var_set] *)
  mutable sig_mask : int;  (* cached signature fingerprint; 0 = not yet *)
  mutable anchors : int;  (* cached anchor fingerprint; -1 = not yet *)
  mutable profile : int array option;  (* cached distance profile *)
  mutable ecomps : Atom.t list list option;
      (* cached existential-connectivity components of the body *)
  mutable wl : int array option;  (* cached [wl_colors] *)
}

(* Atomic: fresh variables are minted from worker domains during parallel
   rewriting saturation. *)
let gensym = Atomic.make 0

let fresh_var ?(prefix = "v") () =
  Term.var (Printf.sprintf "%s#%d" prefix (1 + Atomic.fetch_and_add gensym 1))

let reserve_fresh n =
  let rec go () =
    let cur = Atomic.get gensym in
    if cur >= n || Atomic.compare_and_set gensym cur n then () else go ()
  in
  go ()

let dedup_terms l =
  let _, rev =
    List.fold_left
      (fun (seen, acc) x ->
        if Term.Set.mem x seen then (seen, acc)
        else (Term.Set.add x seen, x :: acc))
      (Term.Set.empty, []) l
  in
  List.rev rev

let body_vars atoms = dedup_terms (List.concat_map Atom.vars atoms)

let make ~free atoms =
  if atoms = [] then invalid_arg "Cq.make: empty body";
  List.iter
    (fun v ->
      if not (Term.is_var v) then
        invalid_arg "Cq.make: free answer position must be a variable")
    free;
  let atoms = Atom.Set.elements (Atom.Set.of_list atoms) in
  let bv = Term.Set.of_list (body_vars atoms) in
  List.iter
    (fun v ->
      if not (Term.Set.mem v bv) then
        invalid_arg
          (Fmt.str "Cq.make: free variable %a does not occur in the body"
             Term.pp v))
    free;
  {
    free = dedup_terms free;
    atoms;
    canon_id = -1;
    fs = None;
    vset = None;
    sig_mask = 0;
    anchors = -1;
    profile = None;
    ecomps = None;
    wl = None;
  }

let free q = q.free
let atoms q = q.atoms
let size q = List.length q.atoms

let vars q =
  dedup_terms (q.free @ body_vars q.atoms)

let var_set q =
  (* Cached (benign race, as for [as_fact_set]): the containment hot path
     builds a homomorphism problem per check and needs the flexible set
     every time. *)
  match q.vset with
  | Some s -> s
  | None ->
      let s = Term.Set.of_list (vars q) in
      q.vset <- Some s;
      s

let sig_mask q =
  if q.sig_mask <> 0 then q.sig_mask
  else begin
    let m =
      List.fold_left
        (fun acc a -> acc lor (1 lsl (Symbol.id (Atom.rel a) mod 61)))
        0 q.atoms
    in
    q.sig_mask <- m;
    m
  end

(* ------------------------------------------------------------------ *)
(* Homomorphism-invariant fingerprints                                 *)
(* ------------------------------------------------------------------ *)

(* Cheap necessary conditions for the existence of a homomorphism
   [from -> into] that fixes answer variables positionally (the test
   behind CQ containment). Care is needed about which body statistics
   are actually invariant: a homomorphism may *collapse* atoms — e.g.
   {P(x,y), P(y,z)} maps onto {P(u,u)} — so atom counts and
   per-predicate occurrence counts of [from] bound nothing in [into]
   and must not prune. What does survive every homomorphism:

   - relation support: each atom maps to an atom with the same relation
     ([sig_mask], refined exactly by the occurrence-vector support check
     in [Ucq_index]);
   - anchors: a *rigid* term (constant, functional term, or answer
     variable — the latter mapped positionally) at argument position
     [pos] of a [rel]-atom of [from] must appear identically at
     [(rel, pos)] in [into];
   - distances: edges of the Gaifman graph over *all* terms map to
     edges, so paths map to paths and
     [d_into(y_i, h(t)) <= d_from(y_i, t)] for every answer variable
     [y_i] and body term [t]. Minimizing per [(rel, pos)] gives a
     profile that must be pointwise dominated, and the pairwise
     distances between answer variables must not grow. *)

(* Anchor fingerprint: one bit per (relation, position, rigid term),
   hashed into 61 bits. A set bit of [from] missing in [into] refutes
   the homomorphism; collisions only weaken the filter, never lie. *)
let anchor_mask q =
  if q.anchors >= 0 then q.anchors
  else begin
    let free_index : (int, int) Hashtbl.t = Hashtbl.create 8 in
    List.iteri (fun i v -> Hashtbl.replace free_index v.Term.id i) q.free;
    let m =
      List.fold_left
        (fun acc a ->
          let rel = Symbol.id (Atom.rel a) in
          snd
            (List.fold_left
               (fun (pos, acc) (t : Term.t) ->
                 let tag =
                   match t.Term.view with
                   | Term.Var _ -> (
                       match Hashtbl.find_opt free_index t.Term.id with
                       | Some i -> Some ((2 * i) + 1)
                       | None -> None (* existential: not rigid *))
                   | Term.Const _ | Term.App _ -> Some (2 * t.Term.id)
                 in
                 ( pos + 1,
                   match tag with
                   | None -> acc
                   | Some tag ->
                       acc
                       lor (1 lsl ((((rel * 31) + pos) * 131 + tag) mod 61))
                 ))
               (0, acc) (Atom.args a)))
        0 q.atoms
    in
    q.anchors <- m;
    m
  end

(* Distance profile: a sorted array of packed [(key, dist)] entries,
   [key] identifying either (relation, position, answer-variable index)
   — even tags — or an (i, j) pair of answer variables — odd tags.
   Positions and answer indexes beyond 15 are skipped (both sides skip
   them identically, so the filter just loses precision). *)
let dist_cap = 1022

let hom_profile q =
  match q.profile with
  | Some p -> p
  | None ->
      let free = Array.of_list q.free in
      let nfree = min (Array.length free) 16 in
      let acc : (int, int) Hashtbl.t = Hashtbl.create 32 in
      let note key d =
        match Hashtbl.find_opt acc key with
        | Some d' when d' <= d -> ()
        | Some _ | None -> Hashtbl.replace acc key d
      in
      if nfree > 0 then begin
        let g = Gaifman.of_terms_per_atom (List.map Atom.terms q.atoms) in
        for i = 0 to nfree - 1 do
          let dist = Gaifman.distances_from g free.(i) in
          List.iter
            (fun a ->
              let rel = Symbol.id (Atom.rel a) in
              List.iteri
                (fun pos t ->
                  if pos < 16 then
                    match Term.Map.find_opt t dist with
                    | Some d ->
                        note
                          (((((rel * 16) + pos) * 16) + i) * 2)
                          (min d dist_cap)
                    | None -> ())
                (Atom.args a))
            q.atoms;
          for j = i + 1 to nfree - 1 do
            match Term.Map.find_opt free.(j) dist with
            | Some d -> note ((((i * 16) + j) * 2) + 1) (min d dist_cap)
            | None -> ()
          done
        done
      end;
      let p =
        Array.of_seq
          (Seq.map
             (fun (k, d) -> (k lsl 10) lor d)
             (Hashtbl.to_seq acc))
      in
      Array.sort compare p;
      q.profile <- Some p;
      p

(* [into]'s profile must contain every key of [from]'s with a distance
   that is no larger: a key of [from] records a finite distance that the
   homomorphic image realizes in [into]; a missing key in [into] means
   that distance is infinite there. Both arrays are sorted by key (keys
   are unique per query, so sorting the packed ints sorts the keys). *)
let profile_dominated ~from ~into =
  let pf = hom_profile from and pi = hom_profile into in
  let nf = Array.length pf and ni = Array.length pi in
  let rec go i j =
    j >= nf
    || (i < ni
       &&
       let ki = pi.(i) lsr 10 and kj = pf.(j) lsr 10 in
       if ki < kj then go (i + 1) j
       else
         ki = kj
         && pi.(i) land 1023 <= pf.(j) land 1023
         && go (i + 1) (j + 1))
  in
  go 0 0

let hom_feasible ~from ~into =
  sig_mask from land lnot (sig_mask into) = 0
  && anchor_mask from land lnot (anchor_mask into) = 0
  && profile_dominated ~from ~into

(* ------------------------------------------------------------------ *)
(* Isomorphism invariant: 1-WL color refinement                        *)
(* ------------------------------------------------------------------ *)

(* The fingerprints above are necessary conditions for a *homomorphism*
   and keep only extremal statistics (minimal distances), so they cannot
   tell apart queries that differ in which of several interchangeable
   atoms sits where — e.g. two markings of symmetric branches. One round
   of Weisfeiler-Leman color refinement per node does: every node keeps
   its own joint view of relation, position and neighborhood, and the
   positionally distinct colors of the answer variables propagate
   outward, separating the branches.

   Nodes are the direct-argument terms of the body; edges connect the
   co-arguments of each atom, labeled by (relation, position, position).
   Initial colors are isomorphism-invariant under the engine's notion
   (bound variables renamable, free variables positional, ground terms
   literal): answer variables by position, ground terms by hash-consed
   id, bound variables by their multiset of (relation, position)
   occurrence slots, and non-ground functional terms coarsely by head
   symbol and arity (their bound arguments are renamable, so their ids
   must not leak in). Refinement folds the old color with the sorted
   neighbor signatures; since the old color is folded in, the partition
   only ever splits, so it is stable as soon as the number of distinct
   colors stops growing — isomorphic queries then traverse identical
   trajectories and end on the identical sorted color array, while
   colliding arrays on non-isomorphic queries merely weaken the filter
   (never lie). *)
let wl_mix h x = ((h * 0x01000193) lxor x) land max_int

let wl_colors q =
  match q.wl with
  | Some c -> c
  | None ->
      let free_index : (int, int) Hashtbl.t = Hashtbl.create 8 in
      List.iteri
        (fun i (v : Term.t) -> Hashtbl.replace free_index v.Term.id i)
        q.free;
      let index : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let rev_nodes = ref [] in
      let node_of (t : Term.t) =
        match Hashtbl.find_opt index t.Term.id with
        | Some i -> i
        | None ->
            let i = Hashtbl.length index in
            Hashtbl.add index t.Term.id i;
            rev_nodes := t :: !rev_nodes;
            i
      in
      List.iter
        (fun a -> List.iter (fun t -> ignore (node_of t)) (Atom.args a))
        q.atoms;
      let n = Hashtbl.length index in
      let nodes = Array.of_list (List.rev !rev_nodes) in
      let tokens = Array.make n [] in
      let adj = Array.make n [] in
      List.iter
        (fun a ->
          let rel = Symbol.id (Atom.rel a) in
          let args = Array.of_list (Atom.args a) in
          Array.iteri
            (fun i t ->
              let vi = node_of t in
              tokens.(vi) <- ((rel * 131) + i) :: tokens.(vi);
              Array.iteri
                (fun j u ->
                  if j <> i then
                    adj.(vi) <-
                      ((((rel * 131) + i) * 131) + j, node_of u)
                      :: adj.(vi))
                args)
            args)
        q.atoms;
      let color = Array.make n 0 in
      Array.iteri
        (fun i (t : Term.t) ->
          color.(i) <-
            (match t.Term.view with
            | Term.Var _ -> (
                match Hashtbl.find_opt free_index t.Term.id with
                | Some pos -> wl_mix 0x9e3779b1 ((2 * pos) + 1)
                | None ->
                    List.fold_left wl_mix 0x85ebca6b
                      (List.sort Int.compare tokens.(i)))
            | Term.Const _ -> wl_mix 0x27220a95 (2 * t.Term.id)
            | Term.App { fn; args } ->
                if Term.vars t = [] then wl_mix 0x27220a95 (2 * t.Term.id)
                else
                  wl_mix
                    (wl_mix 0x165667b1 (Hashtbl.hash fn))
                    (List.length args)))
        nodes;
      let distinct () =
        let s : (int, unit) Hashtbl.t = Hashtbl.create 16 in
        Array.iter (fun c -> Hashtbl.replace s c ()) color;
        Hashtbl.length s
      in
      let rec refine rounds cnt =
        if rounds < n && cnt < n then begin
          let color' =
            Array.mapi
              (fun i c ->
                List.fold_left wl_mix (wl_mix 0x2545f491 c)
                  (List.sort Int.compare
                     (List.map
                        (fun (lbl, j) -> wl_mix lbl color.(j))
                        adj.(i))))
              color
          in
          Array.blit color' 0 color 0 n;
          let cnt' = distinct () in
          if cnt' > cnt then refine (rounds + 1) cnt'
        end
      in
      refine 0 (distinct ());
      Array.sort Int.compare color;
      q.wl <- Some color;
      color

let wl_hash q = Array.fold_left wl_mix 0x1fd3 (wl_colors q)

let wl_equal q1 q2 =
  let c1 = wl_colors q1 and c2 = wl_colors q2 in
  Array.length c1 = Array.length c2 && Array.for_all2 Int.equal c1 c2

(* Connected components of the body under *shared existential
   variables in argument position* — exactly the coupling the search
   engine sees: answer variables are pre-bound (rigid), constants and
   functional terms are matched literally, and a variable occurring
   only inside a functional term never receives a binding from that
   argument slot. Two atoms in different components constrain disjoint
   sets of bindable variables, so a conjunctive match exists iff each
   component matches independently. *)
let body_components q =
  match q.ecomps with
  | Some c -> c
  | None ->
      let fv = Term.Set.of_list q.free in
      let atoms = Array.of_list q.atoms in
      let n = Array.length atoms in
      let parent = Array.init n Fun.id in
      let rec find i =
        if parent.(i) = i then i
        else begin
          let r = find parent.(i) in
          parent.(i) <- r;
          r
        end
      in
      let union i j =
        let ri = find i and rj = find j in
        if ri <> rj then parent.(ri) <- rj
      in
      let last : (int, int) Hashtbl.t = Hashtbl.create 16 in
      Array.iteri
        (fun i a ->
          List.iter
            (fun (t : Term.t) ->
              if Term.is_var t && not (Term.Set.mem t fv) then begin
                (match Hashtbl.find_opt last t.Term.id with
                | Some j -> union i j
                | None -> ());
                Hashtbl.replace last t.Term.id i
              end)
            (Atom.args a))
        atoms;
      let groups : (int, Atom.t list) Hashtbl.t = Hashtbl.create 8 in
      let order = ref [] in
      Array.iteri
        (fun i a ->
          let r = find i in
          match Hashtbl.find_opt groups r with
          | Some l -> Hashtbl.replace groups r (a :: l)
          | None ->
              order := r :: !order;
              Hashtbl.replace groups r [ a ])
        atoms;
      let comps =
        List.rev_map
          (fun r -> List.rev (Hashtbl.find groups r))
          !order
      in
      q.ecomps <- Some comps;
      comps

let exist_vars q =
  let fv = Term.Set.of_list q.free in
  List.filter (fun v -> not (Term.Set.mem v fv)) (body_vars q.atoms)

let is_boolean q = q.free = []
let gaifman q = Gaifman.of_atoms q.atoms
let is_connected q = Gaifman.connected (gaifman q)
let as_fact_set q =
  (* Cached: containment checks repeatedly target the same query body, and
     the fact set carries the (lazily built) join index. Benign race: two
     domains may build equal views and one write wins. *)
  match q.fs with
  | Some f -> f
  | None ->
      let f = Fact_set.of_list q.atoms in
      q.fs <- Some f;
      f

let holds q target tuple =
  if List.length tuple <> List.length q.free then
    invalid_arg "Cq.holds: answer tuple arity mismatch";
  let init =
    List.fold_left2
      (fun m v a -> Term.Map.add v a m)
      Term.Map.empty q.free tuple
  in
  Homomorphism.exists
    (Homomorphism.make ~init
       ~flexible:(Term.Set.of_list (vars q))
       ~pattern:q.atoms ~target ())

let boolean_holds q target =
  Homomorphism.exists
    (Homomorphism.make
       ~flexible:(Term.Set.of_list (vars q))
       ~pattern:q.atoms ~target ())

module Tuple_set = Set.Make (struct
  type t = Term.t list

  let compare = List.compare Term.compare
end)

let answers q target =
  let results = ref Tuple_set.empty in
  Homomorphism.iter
    (Homomorphism.make
       ~flexible:(Term.Set.of_list (vars q))
       ~pattern:q.atoms ~target ())
    (fun m ->
      let tuple = List.map (fun v -> Term.Map.find v m) q.free in
      results := Tuple_set.add tuple !results);
  Tuple_set.elements !results

let subst m q =
  let atoms = List.map (Atom.subst m) q.atoms in
  let free =
    List.filter_map
      (fun v ->
        let v' = Term.subst m v in
        if Term.is_var v' then Some v' else None)
      q.free
  in
  make ~free atoms

let refresh ?(prefix = "r") q =
  let renaming =
    Term.subst_of_bindings
      (List.map (fun v -> (v, fresh_var ~prefix ())) (vars q))
  in
  (subst renaming q, renaming)

let refresh_exist ?(prefix = "e") q =
  let renaming =
    Term.subst_of_bindings
      (List.map (fun v -> (v, fresh_var ~prefix ())) (exist_vars q))
  in
  subst renaming q

let iso_key q =
  (* Invariant under renaming of bound variables: free variables are
     identified by their position in the free list, bound variables by their
     total occurrence count in the body (counted in one pass over the
     body, not per variable — the per-variable scan made this quadratic
     in the body size). *)
  let free_index = List.mapi (fun i v -> (v, i)) q.free in
  let occ : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun a ->
      List.iter
        (fun (t : Term.t) ->
          if Term.is_var t then
            Hashtbl.replace occ t.Term.id
              (1 + Option.value ~default:0 (Hashtbl.find_opt occ t.Term.id)))
        (Atom.args a))
    q.atoms;
  let term_tag (t : Term.t) =
    match t.Term.view with
    | Term.Const name -> "c:" ^ name
    | Term.App _ -> Fmt.str "t:%a" Term.pp t
    | Term.Var _ -> (
        match List.assoc_opt t free_index with
        | Some i -> "f" ^ string_of_int i
        | None ->
            "b"
            ^ string_of_int
                (Option.value ~default:0 (Hashtbl.find_opt occ t.Term.id)))
  in
  let atom_key a =
    Symbol.name (Atom.rel a)
    ^ "("
    ^ String.concat "," (List.map term_tag (Atom.args a))
    ^ ")"
  in
  String.concat ";" (List.sort String.compare (List.map atom_key q.atoms))

(* ------------------------------------------------------------------ *)
(* Canonical identities                                                *)
(* ------------------------------------------------------------------ *)

(* A canonical *code* that determines the query up to renaming of bound
   variables (free variables correspond positionally): an int-list
   encoding of the atoms with ground terms represented by their
   hash-consed ids, free variables tagged by position and bound variables
   numbered by first occurrence along a deterministic traversal. Equal
   codes therefore certify genuine isomorphism — unlike [iso_key], which
   is only an invariant fingerprint and may collide — so the code can be
   interned and the resulting id used as a sound memoization key.

   Encoded as ints rather than a string rendering because the rewriting
   hot path canonizes every generated candidate: int conses are an order
   of magnitude cheaper than string concatenation. Each term code is
   self-delimiting (the tag determines its length, applications carry an
   explicit argument count), so concatenated codes stay uniquely
   decodable.

   The traversal order starts from an isomorphism-invariant pre-sort (so
   that many — not all — renamings of the same query agree on the code;
   misses only cost a cache entry, never a wrong answer). *)

(* Function symbols of non-ground applications, numbered process-wide so
   that codes of distinct queries are comparable. Cold path: queries
   rarely contain non-ground functional terms. *)
let fn_codes : (string, int) Hashtbl.t = Hashtbl.create 16
let fn_lock = Mutex.create ()

let fn_code fn =
  Mutex.protect fn_lock (fun () ->
      match Hashtbl.find_opt fn_codes fn with
      | Some c -> c
      | None ->
          let c = Hashtbl.length fn_codes in
          Hashtbl.add fn_codes fn c;
          c)

let canon_key q =
  let free_index : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i v -> Hashtbl.replace free_index v.Term.id i)
    q.free;
  (* Occurrence counts of bound variables, for the iso-invariant pre-sort. *)
  let occ : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec count t =
    match t.Term.view with
    | Term.Const _ -> ()
    | Term.Var _ ->
        if not (Hashtbl.mem free_index t.Term.id) then
          Hashtbl.replace occ t.Term.id
            (1 + Option.value ~default:0 (Hashtbl.find_opt occ t.Term.id))
    | Term.App { args; _ } -> List.iter count args
  in
  List.iter (fun a -> List.iter count (Atom.args a)) q.atoms;
  (* Term codes: ground -> (0, hash-consed id); free var -> (1, position);
     bound var -> (2, occurrence count [pre] / first-occurrence number
     [final]); non-ground application -> (3, fn, #args, arg codes...). *)
  let code_term var_code =
    let rec go acc t =
      match t.Term.view with
      | Term.Const _ -> 0 :: t.Term.id :: acc
      | Term.Var _ -> (
          match Hashtbl.find_opt free_index t.Term.id with
          | Some i -> 1 :: i :: acc
          | None -> 2 :: var_code t.Term.id :: acc)
      | Term.App { fn; args } ->
          if Term.vars t = [] then 0 :: t.Term.id :: acc
          else
            3 :: fn_code fn :: List.length args
            :: List.fold_right (fun a acc -> go acc a) args acc
    in
    go
  in
  let code_atom var_code a =
    Symbol.id (Atom.rel a)
    :: Atom.arity a
    :: List.fold_right
         (fun t acc -> code_term var_code acc t)
         (Atom.args a) []
  in
  let ordered =
    List.map snd
      (List.stable_sort
         (fun (ka, _) (kb, _) -> List.compare Int.compare ka kb)
         (List.map
            (fun a -> (code_atom (fun id -> Hashtbl.find occ id) a, a))
            q.atoms))
  in
  let numbering : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let number id =
    match Hashtbl.find_opt numbering id with
    | Some n -> n
    | None ->
        let n = Hashtbl.length numbering in
        Hashtbl.add numbering id n;
        n
  in
  List.concat_map (code_atom number) ordered

(* Interning canonical codes gives each isomorphism class (up to the
   traversal-order caveat above) a process-wide integer identity. *)
let canon_table : (int list, int) Hashtbl.t = Hashtbl.create 1024
let canon_lock = Mutex.create ()
let canon_next = ref 0

let canon_id q =
  if q.canon_id >= 0 then q.canon_id
  else
    let key = canon_key q in
    let id =
      Mutex.protect canon_lock (fun () ->
          match Hashtbl.find_opt canon_table key with
          | Some id -> id
          | None ->
              let id = !canon_next in
              incr canon_next;
              Hashtbl.add canon_table key id;
              id)
    in
    q.canon_id <- id;
    id

let pp ppf q =
  let pp_atoms = Fmt.list ~sep:(Fmt.any ", ") Atom.pp in
  match (q.free, exist_vars q) with
  | [], ev ->
      Fmt.pf ppf "{exists %a. %a}"
        (Fmt.list ~sep:(Fmt.any " ") Term.pp)
        ev pp_atoms q.atoms
  | fv, [] ->
      Fmt.pf ppf "{(%a). %a}" (Fmt.list ~sep:(Fmt.any ",") Term.pp) fv pp_atoms
        q.atoms
  | fv, ev ->
      Fmt.pf ppf "{(%a). exists %a. %a}"
        (Fmt.list ~sep:(Fmt.any ",") Term.pp)
        fv
        (Fmt.list ~sep:(Fmt.any " ") Term.pp)
        ev pp_atoms q.atoms

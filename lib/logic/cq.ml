type t = {
  free : Term.t list;
  atoms : Atom.t list;
  mutable canon_id : int;  (* interned canonical-form id; -1 = not yet computed *)
  mutable fs : Fact_set.t option;  (* cached [as_fact_set] view *)
  mutable vset : Term.Set.t option;  (* cached [var_set] *)
  mutable sig_mask : int;  (* cached signature fingerprint; 0 = not yet *)
}

(* Atomic: fresh variables are minted from worker domains during parallel
   rewriting saturation. *)
let gensym = Atomic.make 0

let fresh_var ?(prefix = "v") () =
  Term.var (Printf.sprintf "%s#%d" prefix (1 + Atomic.fetch_and_add gensym 1))

let dedup_terms l =
  let _, rev =
    List.fold_left
      (fun (seen, acc) x ->
        if Term.Set.mem x seen then (seen, acc)
        else (Term.Set.add x seen, x :: acc))
      (Term.Set.empty, []) l
  in
  List.rev rev

let body_vars atoms = dedup_terms (List.concat_map Atom.vars atoms)

let make ~free atoms =
  if atoms = [] then invalid_arg "Cq.make: empty body";
  List.iter
    (fun v ->
      if not (Term.is_var v) then
        invalid_arg "Cq.make: free answer position must be a variable")
    free;
  let atoms = Atom.Set.elements (Atom.Set.of_list atoms) in
  let bv = Term.Set.of_list (body_vars atoms) in
  List.iter
    (fun v ->
      if not (Term.Set.mem v bv) then
        invalid_arg
          (Fmt.str "Cq.make: free variable %a does not occur in the body"
             Term.pp v))
    free;
  {
    free = dedup_terms free;
    atoms;
    canon_id = -1;
    fs = None;
    vset = None;
    sig_mask = 0;
  }

let free q = q.free
let atoms q = q.atoms
let size q = List.length q.atoms

let vars q =
  dedup_terms (q.free @ body_vars q.atoms)

let var_set q =
  (* Cached (benign race, as for [as_fact_set]): the containment hot path
     builds a homomorphism problem per check and needs the flexible set
     every time. *)
  match q.vset with
  | Some s -> s
  | None ->
      let s = Term.Set.of_list (vars q) in
      q.vset <- Some s;
      s

let sig_mask q =
  if q.sig_mask <> 0 then q.sig_mask
  else begin
    let m =
      List.fold_left
        (fun acc a -> acc lor (1 lsl (Symbol.id (Atom.rel a) mod 61)))
        0 q.atoms
    in
    q.sig_mask <- m;
    m
  end

let exist_vars q =
  let fv = Term.Set.of_list q.free in
  List.filter (fun v -> not (Term.Set.mem v fv)) (body_vars q.atoms)

let is_boolean q = q.free = []
let gaifman q = Gaifman.of_atoms q.atoms
let is_connected q = Gaifman.connected (gaifman q)
let as_fact_set q =
  (* Cached: containment checks repeatedly target the same query body, and
     the fact set carries the (lazily built) join index. Benign race: two
     domains may build equal views and one write wins. *)
  match q.fs with
  | Some f -> f
  | None ->
      let f = Fact_set.of_list q.atoms in
      q.fs <- Some f;
      f

let holds q target tuple =
  if List.length tuple <> List.length q.free then
    invalid_arg "Cq.holds: answer tuple arity mismatch";
  let init =
    List.fold_left2
      (fun m v a -> Term.Map.add v a m)
      Term.Map.empty q.free tuple
  in
  Homomorphism.exists
    (Homomorphism.make ~init
       ~flexible:(Term.Set.of_list (vars q))
       ~pattern:q.atoms ~target ())

let boolean_holds q target =
  Homomorphism.exists
    (Homomorphism.make
       ~flexible:(Term.Set.of_list (vars q))
       ~pattern:q.atoms ~target ())

module Tuple_set = Set.Make (struct
  type t = Term.t list

  let compare = List.compare Term.compare
end)

let answers q target =
  let results = ref Tuple_set.empty in
  Homomorphism.iter
    (Homomorphism.make
       ~flexible:(Term.Set.of_list (vars q))
       ~pattern:q.atoms ~target ())
    (fun m ->
      let tuple = List.map (fun v -> Term.Map.find v m) q.free in
      results := Tuple_set.add tuple !results);
  Tuple_set.elements !results

let subst m q =
  let atoms = List.map (Atom.subst m) q.atoms in
  let free =
    List.filter_map
      (fun v ->
        let v' = Term.subst m v in
        if Term.is_var v' then Some v' else None)
      q.free
  in
  make ~free atoms

let refresh ?(prefix = "r") q =
  let renaming =
    Term.subst_of_bindings
      (List.map (fun v -> (v, fresh_var ~prefix ())) (vars q))
  in
  (subst renaming q, renaming)

let refresh_exist ?(prefix = "e") q =
  let renaming =
    Term.subst_of_bindings
      (List.map (fun v -> (v, fresh_var ~prefix ())) (exist_vars q))
  in
  subst renaming q

let iso_key q =
  (* Invariant under renaming of bound variables: free variables are
     identified by their position in the free list, bound variables by their
     total occurrence count in the body. *)
  let free_index = List.mapi (fun i v -> (v, i)) q.free in
  let occurrences v =
    List.fold_left
      (fun acc a ->
        acc
        + List.length (List.filter (Term.equal v) (Atom.args a)))
      0 q.atoms
  in
  let term_tag t =
    match t.Term.view with
    | Term.Const name -> "c:" ^ name
    | Term.App _ -> Fmt.str "t:%a" Term.pp t
    | Term.Var _ -> (
        match List.assoc_opt t free_index with
        | Some i -> "f" ^ string_of_int i
        | None -> "b" ^ string_of_int (occurrences t))
  in
  let atom_key a =
    Symbol.name (Atom.rel a)
    ^ "("
    ^ String.concat "," (List.map term_tag (Atom.args a))
    ^ ")"
  in
  String.concat ";" (List.sort String.compare (List.map atom_key q.atoms))

(* ------------------------------------------------------------------ *)
(* Canonical identities                                                *)
(* ------------------------------------------------------------------ *)

(* A canonical *code* that determines the query up to renaming of bound
   variables (free variables correspond positionally): an int-list
   encoding of the atoms with ground terms represented by their
   hash-consed ids, free variables tagged by position and bound variables
   numbered by first occurrence along a deterministic traversal. Equal
   codes therefore certify genuine isomorphism — unlike [iso_key], which
   is only an invariant fingerprint and may collide — so the code can be
   interned and the resulting id used as a sound memoization key.

   Encoded as ints rather than a string rendering because the rewriting
   hot path canonizes every generated candidate: int conses are an order
   of magnitude cheaper than string concatenation. Each term code is
   self-delimiting (the tag determines its length, applications carry an
   explicit argument count), so concatenated codes stay uniquely
   decodable.

   The traversal order starts from an isomorphism-invariant pre-sort (so
   that many — not all — renamings of the same query agree on the code;
   misses only cost a cache entry, never a wrong answer). *)

(* Function symbols of non-ground applications, numbered process-wide so
   that codes of distinct queries are comparable. Cold path: queries
   rarely contain non-ground functional terms. *)
let fn_codes : (string, int) Hashtbl.t = Hashtbl.create 16
let fn_lock = Mutex.create ()

let fn_code fn =
  Mutex.protect fn_lock (fun () ->
      match Hashtbl.find_opt fn_codes fn with
      | Some c -> c
      | None ->
          let c = Hashtbl.length fn_codes in
          Hashtbl.add fn_codes fn c;
          c)

let canon_key q =
  let free_index : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iteri
    (fun i v -> Hashtbl.replace free_index v.Term.id i)
    q.free;
  (* Occurrence counts of bound variables, for the iso-invariant pre-sort. *)
  let occ : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let rec count t =
    match t.Term.view with
    | Term.Const _ -> ()
    | Term.Var _ ->
        if not (Hashtbl.mem free_index t.Term.id) then
          Hashtbl.replace occ t.Term.id
            (1 + Option.value ~default:0 (Hashtbl.find_opt occ t.Term.id))
    | Term.App { args; _ } -> List.iter count args
  in
  List.iter (fun a -> List.iter count (Atom.args a)) q.atoms;
  (* Term codes: ground -> (0, hash-consed id); free var -> (1, position);
     bound var -> (2, occurrence count [pre] / first-occurrence number
     [final]); non-ground application -> (3, fn, #args, arg codes...). *)
  let code_term var_code =
    let rec go acc t =
      match t.Term.view with
      | Term.Const _ -> 0 :: t.Term.id :: acc
      | Term.Var _ -> (
          match Hashtbl.find_opt free_index t.Term.id with
          | Some i -> 1 :: i :: acc
          | None -> 2 :: var_code t.Term.id :: acc)
      | Term.App { fn; args } ->
          if Term.vars t = [] then 0 :: t.Term.id :: acc
          else
            3 :: fn_code fn :: List.length args
            :: List.fold_right (fun a acc -> go acc a) args acc
    in
    go
  in
  let code_atom var_code a =
    Symbol.id (Atom.rel a)
    :: Atom.arity a
    :: List.fold_right
         (fun t acc -> code_term var_code acc t)
         (Atom.args a) []
  in
  let ordered =
    List.map snd
      (List.stable_sort
         (fun (ka, _) (kb, _) -> List.compare Int.compare ka kb)
         (List.map
            (fun a -> (code_atom (fun id -> Hashtbl.find occ id) a, a))
            q.atoms))
  in
  let numbering : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let number id =
    match Hashtbl.find_opt numbering id with
    | Some n -> n
    | None ->
        let n = Hashtbl.length numbering in
        Hashtbl.add numbering id n;
        n
  in
  List.concat_map (code_atom number) ordered

(* Interning canonical codes gives each isomorphism class (up to the
   traversal-order caveat above) a process-wide integer identity. *)
let canon_table : (int list, int) Hashtbl.t = Hashtbl.create 1024
let canon_lock = Mutex.create ()
let canon_next = ref 0

let canon_id q =
  if q.canon_id >= 0 then q.canon_id
  else
    let key = canon_key q in
    let id =
      Mutex.protect canon_lock (fun () ->
          match Hashtbl.find_opt canon_table key with
          | Some id -> id
          | None ->
              let id = !canon_next in
              incr canon_next;
              Hashtbl.add canon_table key id;
              id)
    in
    q.canon_id <- id;
    id

let pp ppf q =
  let pp_atoms = Fmt.list ~sep:(Fmt.any ", ") Atom.pp in
  match (q.free, exist_vars q) with
  | [], ev ->
      Fmt.pf ppf "{exists %a. %a}"
        (Fmt.list ~sep:(Fmt.any " ") Term.pp)
        ev pp_atoms q.atoms
  | fv, [] ->
      Fmt.pf ppf "{(%a). %a}" (Fmt.list ~sep:(Fmt.any ",") Term.pp) fv pp_atoms
        q.atoms
  | fv, ev ->
      Fmt.pf ppf "{(%a). exists %a. %a}"
        (Fmt.list ~sep:(Fmt.any ",") Term.pp)
        fv
        (Fmt.list ~sep:(Fmt.any " ") Term.pp)
        ev pp_atoms q.atoms

let enabled = Atomic.make true
let set_eval b = Atomic.set enabled b
let eval_enabled () = Atomic.get enabled

type probe =
  init:Term.t Term.Map.t ->
  flexible:Term.Set.t ->
  pattern:Atom.t list ->
  target:Fact_set.t ->
  bool option

let installed : probe option Atomic.t = Atomic.make None
let register p = Atomic.set installed (Some p)
let probe () = Atomic.get installed

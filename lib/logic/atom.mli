(** Atomic formulas [R(t1, ..., tk)] over arbitrary terms.

    An atom over constants/Skolem terms is a fact; an atom over variables is
    a query or rule-body atom. The same representation serves both, which is
    what lets query bodies be "seen as structures" (footnote 12 of the
    paper) without conversion. *)

type t = private { rel : Symbol.t; args : Term.t array }

val make : Symbol.t -> Term.t list -> t
(** Raises [Invalid_argument] on arity mismatch. *)

val rel : t -> Symbol.t
val args : t -> Term.t list
val arg : t -> int -> Term.t
val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val terms : t -> Term.t list
(** Argument terms, each once, in positional order. *)

val vars : t -> Term.t list
(** Variables occurring (recursively) in the arguments, each once. *)

val is_ground : t -> bool
(** No variables occur. *)

val subst : Term.t Term.Int_map.t -> t -> t

val map_args : (Term.t -> Term.t) -> t -> t
(** Rebuild the atom with each argument imaged through [f]. Arity is
    preserved by construction, so no validation happens — this is the
    constructor of the chase's innermost loop. *)

val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** Registration point for the executable-plan evaluation layer.

    [lib/eval] sits above [logic] in the library graph, but the
    containment solver (inside [logic]) wants to route its boolean
    homomorphism probes through the plan layer. This module breaks the
    cycle: [Eval] registers a probe closure here at module
    initialization, and [Containment] consults it — falling back to the
    in-library engine when nothing is registered (a program that never
    links [eval]) or when the A/B toggle is off.

    The toggle itself also lives here so that both sides of the layer
    boundary observe one switch: [Eval.set_eval] is this [set_eval]. *)

val set_eval : bool -> unit
(** A/B switch (same pattern as {!Fact_set.set_arena}): [false] restores
    the legacy boxed/register-machine matching everywhere the plan layer
    would otherwise run. Defaults to [true]. *)

val eval_enabled : unit -> bool

type probe =
  init:Term.t Term.Map.t ->
  flexible:Term.Set.t ->
  pattern:Atom.t list ->
  target:Fact_set.t ->
  bool option
(** A boolean existence probe: is there a homomorphism of [pattern] into
    [target] extending [init] on the [flexible] terms? [None] means the
    plan layer declines the problem (e.g. a pattern argument it cannot
    compile) and the caller must use its legacy engine. *)

val register : probe -> unit
(** Install the plan layer's probe (last registration wins). *)

val probe : unit -> probe option

(** CQ containment, equivalence, isomorphism, and query cores
    (Chandra-Merlin).

    Terminology note: the paper's "phi contains psi" is logical implication
    of answers. To avoid direction confusion we expose [implies]:
    [implies q1 q2] holds iff every answer of [q1] (over every structure) is
    an answer of [q2] — certified by a homomorphism from [q2] to [q1] that
    is the identity (positionally) on answer variables. *)

val implies : Cq.t -> Cq.t -> bool
(** [implies q1 q2]: answers(q1) is a subset of answers(q2) on every
    structure. Requires equally long free-variable lists.

    With {!set_decomposition} on (the default), the certifying
    homomorphism search is prescreened by the fingerprint battery of
    {!Cq.hom_feasible}, decomposed into the connected components of the
    pattern's Gaifman graph (solved independently, smallest first, with
    early exit on the first failing component) and seeded with a
    connectivity-driven tie-break in the compiled search plan. The
    verdict is identical either way. *)

val implies_memo : Cq.t -> Cq.t -> bool
(** [implies] with the verdict memoized under the pair of canonical query
    ids ([Cq.canon_id] — sound by construction). Lock-free direct-mapped
    cache of packed [(id, id, verdict)] ints: safe and cheap to call from
    parallel rewriting domains. Semantically identical to [implies]. *)

val memo_probe : Cq.t -> Cq.t -> bool option
(** [memo_probe q1 q2] answers [implies q1 q2] {e only} when it can do so
    without search: physical equality, free-arity mismatch, equal
    canonical ids, or a live containment-cache entry. [None] means
    "unknown — compute it". Never runs the homomorphism solver and never
    writes the cache, so it is safe (and cheap) to call on every pair of
    a batch before fanning the residue out to a pool. Counts a cache hit
    when it answers from the table. *)

val equivalent : Cq.t -> Cq.t -> bool

val isomorphic : Cq.t -> Cq.t -> bool
(** Equality up to renaming of bound variables (free variables correspond
    positionally). *)

val core_of_query : Cq.t -> Cq.t
(** Remove redundant body atoms until none is redundant: the core of the
    query, equivalent to the input. *)

(** {1 Memoization instrumentation} *)

type memo_stats = { hits : int; misses : int; entries : int }

val memo_stats : unit -> memo_stats
val reset_memo : unit -> unit
(** Empty the containment cache and zero the hit/miss counters. *)

val set_memoization : bool -> unit
(** A/B switch for benchmarking: [set_memoization false] makes
    [implies_memo] recompute every verdict (the cache is neither read nor
    written). Defaults to [true]. *)

val memoization_enabled : unit -> bool
(** Current state of the {!set_memoization} switch — lets dependent caches
    (e.g. the rewriting engines' candidate dedup) follow the same A/B
    toggle. *)

(** {1 Decomposed solving} *)

val set_decomposition : bool -> unit
(** A/B switch over the solver-side accelerations of {!implies}: the
    fingerprint prescreen, the Gaifman-component decomposition of the
    pattern and the connectivity tie-break in the search plan.
    [set_decomposition false] restores the monolithic PR 2 solver
    verbatim. Defaults to [true]. Verdicts are identical either way —
    the property the differential suite checks. *)

val decomposition_enabled : unit -> bool

type solver_stats = {
  splits : int;
      (** [implies] calls whose pattern split into >= 2 components *)
  prescreened : int;
      (** [implies] calls refuted by anchor/distance fingerprints alone
          (beyond the [sig_mask] test the monolithic path also has) *)
}

val solver_stats : unit -> solver_stats
val reset_solver_stats : unit -> unit

(** CQ containment, equivalence, isomorphism, and query cores
    (Chandra-Merlin).

    Terminology note: the paper's "phi contains psi" is logical implication
    of answers. To avoid direction confusion we expose [implies]:
    [implies q1 q2] holds iff every answer of [q1] (over every structure) is
    an answer of [q2] — certified by a homomorphism from [q2] to [q1] that
    is the identity (positionally) on answer variables. *)

val implies : Cq.t -> Cq.t -> bool
(** [implies q1 q2]: answers(q1) is a subset of answers(q2) on every
    structure. Requires equally long free-variable lists. *)

val implies_memo : Cq.t -> Cq.t -> bool
(** [implies] with the verdict memoized under the pair of canonical query
    ids ([Cq.canon_id] — sound by construction). Lock-free direct-mapped
    cache of packed [(id, id, verdict)] ints: safe and cheap to call from
    parallel rewriting domains. Semantically identical to [implies]. *)

val equivalent : Cq.t -> Cq.t -> bool

val isomorphic : Cq.t -> Cq.t -> bool
(** Equality up to renaming of bound variables (free variables correspond
    positionally). *)

val core_of_query : Cq.t -> Cq.t
(** Remove redundant body atoms until none is redundant: the core of the
    query, equivalent to the input. *)

(** {1 Memoization instrumentation} *)

type memo_stats = { hits : int; misses : int; entries : int }

val memo_stats : unit -> memo_stats
val reset_memo : unit -> unit
(** Empty the containment cache and zero the hit/miss counters. *)

val set_memoization : bool -> unit
(** A/B switch for benchmarking: [set_memoization false] makes
    [implies_memo] recompute every verdict (the cache is neither read nor
    written). Defaults to [true]. *)

val memoization_enabled : unit -> bool
(** Current state of the {!set_memoization} switch — lets dependent caches
    (e.g. the rewriting engines' candidate dedup) follow the same A/B
    toggle. *)

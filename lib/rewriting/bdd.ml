open Logic

type probe = { query : Cq.t; result : Rewrite.result }

let probe ?guard ?budget theory queries =
  List.map
    (fun q -> { query = q; result = Rewrite.rewrite ?guard ?budget theory q })
    queries

let depth_profile ?guard ?max_depth ?max_atoms theory q _tuple_opt cases =
  List.map
    (fun (d, tuple) ->
      let run = Chase.Engine.run ?guard ?max_depth ?max_atoms theory d in
      (Fact_set.cardinal d, Chase.Entailment.needed_depth run q tuple))
    cases

let repeated_bound_vars q =
  let free = Term.Set.of_list (Cq.free q) in
  let occurrences v =
    List.fold_left
      (fun acc a ->
        acc + List.length (List.filter (Term.equal v) (Atom.args a)))
      0 (Cq.atoms q)
  in
  List.filter
    (fun v -> (not (Term.Set.mem v free)) && occurrences v > 1)
    (Cq.vars q)

let backward_shy_rewriting _q ucq =
  List.for_all
    (fun disjunct -> repeated_bound_vars disjunct = [])
    (Ucq.disjuncts ucq)

let rewriting_certifies ?budget ?max_depth ?max_atoms theory q instances =
  let r = Rewrite.rewrite ?budget theory q in
  r.Rewrite.outcome = Rewrite.Complete
  && List.for_all
       (fun d ->
         let run = Chase.Engine.run ?max_depth ?max_atoms theory d in
         List.for_all
           (fun tuple ->
             let chase_says =
               match Chase.Entailment.entails_run run q tuple with
               | Chase.Entailment.Entailed _ -> Some true
               | Chase.Entailment.Not_entailed -> Some false
               | Chase.Entailment.Unknown -> None
             in
             match chase_says with
             | None -> true (* chase budget insufficient: skip the tuple *)
             | Some expected ->
                 Bool.equal (Ucq.holds r.Rewrite.ucq d tuple) expected)
           (Chase.Entailment.all_tuples d (List.length (Cq.free q))))
       instances

open Logic

(* Union-find over terms, by hash-consing id. *)
module Uf = struct
  type t = (int, Term.t) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let rec find (uf : t) x =
    match Hashtbl.find_opt uf (Term.hash x) with
    | None -> x
    | Some p ->
        let root = find uf p in
        if not (Term.equal root p) then Hashtbl.replace uf (Term.hash x) root;
        root

  let union uf x y =
    let rx = find uf x and ry = find uf y in
    if not (Term.equal rx ry) then Hashtbl.replace uf (Term.hash rx) ry
end

type var_kind =
  | Constant
  | Answer_var
  | Exist_var
  | Frontier_var
  | Query_var

let one_step q rule0 =
  if
    (not (Tgd.is_single_head rule0))
    || Tgd.dom_vars rule0 <> []
    || Tgd.body rule0 = []
  then []
  else begin
    (* Prefilter on the head relation before [Tgd.refresh]: refreshing
       allocates a fresh variable per rule variable, and in a theory
       sweep most rules' heads name a relation the query never mentions.
       Refresh only renames variables, so the relation symbol is the
       same before and after. *)
    let head_rel = Atom.rel (List.hd (Tgd.head rule0)) in
    let candidates =
      List.filter (fun a -> Symbol.equal (Atom.rel a) head_rel) (Cq.atoms q)
    in
    if candidates = [] then []
    else begin
    let rule = Tgd.refresh rule0 in
    let head = List.hd (Tgd.head rule) in
    let answer_vars = Term.Set.of_list (Cq.free q) in
    let exist_vars = Term.Set.of_list (Tgd.exist_vars rule) in
    let frontier_vars = Term.Set.of_list (Tgd.frontier rule) in
    let kind t =
      if Term.is_const t then Constant
      else if Term.Set.mem t answer_vars then Answer_var
      else if Term.Set.mem t exist_vars then Exist_var
      else if Term.Set.mem t frontier_vars then Frontier_var
      else Query_var
    in
    let m = List.length candidates in
    (* Enumerate non-empty subsets A of the candidate atoms. Query sizes in
       this codebase are small; cap the enumeration defensively. *)
    let subsets =
      if m = 0 then []
      else if m <= 14 then
        List.init
          ((1 lsl m) - 1)
          (fun mask0 ->
            let mask = mask0 + 1 in
            List.filteri (fun i _ -> mask land (1 lsl i) <> 0) candidates)
      else List.map (fun a -> [ a ]) candidates
    in
    let try_subset piece =
      let uf = Uf.create () in
      let ok = ref true in
      List.iter
        (fun a ->
          List.iter2
            (fun qa ha -> Uf.union uf qa ha)
            (Atom.args a) (Atom.args head))
        piece;
      (* Collect classes. *)
      let piece_set = Atom.Set.of_list piece in
      let outside_atoms =
        List.filter (fun a -> not (Atom.Set.mem a piece_set)) (Cq.atoms q)
      in
      let outside_vars =
        Term.Set.of_list (List.concat_map Atom.vars outside_atoms)
      in
      let class_members = Hashtbl.create 16 in
      let note t =
        let root = Uf.find uf t in
        let prev =
          Option.value ~default:[]
            (Hashtbl.find_opt class_members (Term.hash root))
        in
        if not (List.exists (Term.equal t) prev) then
          Hashtbl.replace class_members (Term.hash root) (t :: prev)
      in
      List.iter
        (fun a ->
          List.iter note (Atom.args a);
          List.iter note (Atom.args head))
        piece;
      (* Admissibility per class, and representative selection. *)
      let rep_of_class members =
        let consts = List.filter (fun t -> kind t = Constant) members in
        let answers = List.filter (fun t -> kind t = Answer_var) members in
        let exists_ = List.filter (fun t -> kind t = Exist_var) members in
        (match consts with
        | _ :: _ :: _ -> ok := false
        | _ -> ());
        (match answers with
        | _ :: _ :: _ -> ok := false (* two answer vars forced equal *)
        | [ _ ] when consts <> [] -> ok := false
        | _ -> ());
        (match exists_ with
        | _ :: _ :: _ -> ok := false (* distinct Skolem terms never equal *)
        | [ _ ] ->
            if
              consts <> []
              || answers <> []
              || List.exists (fun t -> kind t = Frontier_var) members
              || List.exists
                   (fun t ->
                     kind t = Query_var && Term.Set.mem t outside_vars)
                   members
            then ok := false
        | [] -> ());
        if not !ok then None
        else
          match (consts, answers) with
          | c :: _, _ -> Some c
          | [], a :: _ -> Some a
          | [], [] -> (
              (* Prefer a non-existential member so the existential class
                 vanishes naturally; otherwise any member. *)
              match List.filter (fun t -> kind t <> Exist_var) members with
              | t :: _ -> Some t
              | [] -> Some (List.hd members))
      in
      let substitution = ref Term.Int_map.empty in
      Hashtbl.iter
        (fun _root members ->
          match rep_of_class members with
          | Some rep ->
              List.iter
                (fun t ->
                  if not (Term.equal t rep) then
                    substitution := Term.Int_map.add (Term.hash t) rep !substitution)
                members
          | None -> ())
        class_members;
      if not !ok then None
      else begin
        let s = !substitution in
        let rewritten_atoms =
          List.map (Atom.subst s) (Tgd.body rule)
          @ List.map (Atom.subst s) outside_atoms
        in
        match Cq.make ~free:(Cq.free q) rewritten_atoms with
        | q' -> Some (Containment.core_of_query q')
        | exception Invalid_argument _ -> None
      end
    in
    List.filter_map try_subset subsets
    end
  end

let one_step_theory q theory =
  List.concat_map (one_step q) (Theory.rules theory)

(** UCQ rewriting by saturation (Theorem 1).

    Starting from the input query, repeatedly apply one-step piece
    rewritings through every rule, keeping the set minimal (no disjunct
    implied by another). If saturation completes, the result is the unique
    minimal [rew(q)] of Exercise 14 and certifies bounded derivation depth
    *for this query*; running out of budget is the experimental signature of
    a non-BDD theory (or an undersized budget — the verdict says which
    resource was exhausted). *)

open Logic

type budget = {
  max_disjuncts : int;
  max_atoms_per_disjunct : int;
  max_steps : int;  (** worklist pops *)
}

val default_budget : budget

type outcome =
  | Complete
      (** Saturation reached a fixpoint: the UCQ is the full rewriting. *)
  | Disjunct_budget
  | Size_budget  (** Some disjunct exceeded [max_atoms_per_disjunct]. *)
  | Step_budget
  | Guard_exhausted of Guard.cause
      (** The run's {!Guard.t} tripped (deadline, fuel, memory ceiling,
          or cancellation). The UCQ is still sound: every disjunct was
          produced by piece-rewriting steps, so the partial rewriting is
          entailed by the full one. The three [_budget] constructors are
          the legacy per-resource flags; new code should treat all four
          non-[Complete] cases through {!outcome_of_result}. *)

type result = {
  ucq : Ucq.t;
  outcome : outcome;
  steps : int;
  generated : int;  (** one-step rewritings produced, pre-minimization *)
  containment_checks : int;
      (** CQ-implication tests spent on minimization (the quadratic part) *)
  cache_hits : int;
      (** containment verdicts answered by memoization during this run —
          the CQ-pair cache plus whole-candidate short-circuits by the
          run-local canonical-form dedup (each skipped duplicate counts
          once, though it saves up to [|ucq|] checks) *)
  cache_misses : int;
      (** containment verdicts this run computed and cached *)
  index_pruned : int;
      (** disjunct pairs (and core-shrink candidates) refuted during this
          run by the subsumption-index fingerprints — anchor masks,
          occurrence-vector support, distance profiles — without running
          any containment search (0 when [Ucq_index.set_indexing] and
          [Containment.set_decomposition] are both off) *)
  component_splits : int;
      (** containment checks this run whose pattern split into two or
          more Gaifman components and were solved per component (0 when
          [Containment.set_decomposition] is off) *)
  kernel_stats : Saturation.Stats.t;
      (** the saturation kernel's counters for the run ([expanded] =
          frontier disjuncts expanded, i.e. [steps]; [admitted] =
          disjuncts that entered the store); per-round entries are
          recorded only for pools of size > 1, where rounds are
          batch-synchronous sweeps *)
}

val rewrite :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t -> ?budget:budget ->
  ?checkpoint:Checkpoint.sink ->
  Theory.t -> Cq.t -> result
(** Multi-head rules are compiled via {!Single_head.compile}; auxiliary
    disjuncts are dropped from the final UCQ (kept during saturation).
    Rules with empty bodies or domain variables are skipped by the piece
    rewriter — for [T_d]-style theories use the marked-query engine.

    The saturation is one {!Saturation.run} instance whose batch size is
    set by the pool: a size-1 pool expands one live disjunct per kernel
    round (the sequential worklist-pop reference semantics), a pool of
    size > 1 expands the whole live frontier batch-synchronously, with
    the piece-unifier expansions and the per-candidate containment checks
    fanned out across the pool and candidates merged in a fixed frontier
    order. The result is independent of the domain count and
    {!Ucq.equivalent} to the sequential rewriting (on [Complete] both
    are the unique minimal rewriting up to equivalence), though disjunct
    order and budget-tripping points may differ.

    The guard is checkpointed at every kernel round boundary and charged
    one fuel unit per expanded live disjunct, and polled every
    {!Guard.poll_mask}+1 containment checks inside the minimization, so
    deadline and memory trips surface promptly even when individual
    steps are containment-heavy.

    With [checkpoint], the saturation state (theory, query, store
    disjuncts, frontier) is snapshotted into the sink's directory at its
    round cadence and at any non-complete finish — see {!resume}. *)

val checkpoint_kind : string
(** The [Checkpoint.Snapshot.kind] tag rewriting snapshots carry:
    ["rewrite"]. *)

val resume :
  ?pool:Parallel.Pool.t ->
  ?guard:Guard.t -> ?budget:budget ->
  ?checkpoint:Checkpoint.sink ->
  Checkpoint.Snapshot.t -> result
(** Continue a rewriting saturation from a (validated) snapshot. The
    store is preloaded without containment checks (a checkpointed store
    is already pairwise non-subsuming and minimization is monotone), the
    budget defaults to the snapshot's recorded one, and [steps] counting
    continues from the snapshot. The resumed run's completed UCQ is
    {!Ucq.equivalent} to an uninterrupted run's — not necessarily
    syntactically identical: canonical CQ ids are process-local, so the
    candidate dedup reseeds from the decoded store and frontier and some
    duplicate candidates take the (verdict-identical) containment path
    instead; [steps]/cache counter totals may differ accordingly.

    Raises [Invalid_argument] on a snapshot of a different kind and
    [Checkpoint.Codec.Error] on undecodable content. *)

val outcome_of_result : result -> guard:Guard.t -> (result, result) Guard.outcome
(** The unified verdict for a finished run: [Complete] on saturation,
    otherwise [Exhausted] carrying the same result as partial output, the
    trip cause (the legacy [_budget] outcomes map to {!Guard.Fuel}), and
    the guard's progress counters. *)

val rs : ?pool:Parallel.Pool.t -> ?budget:budget -> Theory.t -> Cq.t -> int option
(** [rs_T(q)] of Section 7: the maximal disjunct size of the full rewriting;
    [None] when the rewriting did not complete within budget. *)

val split_batch : int -> 'a list -> 'a list * 'a list
(** [split_batch n l = (first n elements of l, the rest)], both in order.
    Tail-recursive — safe on frontiers of arbitrary length. Exposed for
    testing. *)

(** BDD probing (Definition 11): per-query rewriting certificates and
    empirical derivation-depth profiles over instance families.

    BDD is undecidable; what can be produced mechanically is (a) a complete
    rewriting for a given query — a *certificate* that this query has
    bounded derivation depth — or (b) a divergence signal: the needed chase
    depth for a fixed query grows along an instance family, the
    experimental signature of a non-BDD theory (Example 41). *)

open Logic

type probe = { query : Cq.t; result : Rewrite.result }

val probe :
  ?guard:Guard.t -> ?budget:Rewrite.budget -> Theory.t -> Cq.t list -> probe list
(** Rewrite each query; [result.outcome = Complete] certifies bounded
    derivation depth for that query. A shared guard bounds the whole
    probe sweep: once it trips, the remaining queries come back
    [Guard_exhausted] immediately (their partial UCQs still sound). *)

val depth_profile :
  ?guard:Guard.t ->
  ?max_depth:int -> ?max_atoms:int ->
  Theory.t -> Cq.t -> Term.t list option ->
  (Fact_set.t * Term.t list) list -> (int * int option) list
(** [depth_profile t q tuple_opt cases]: for each [(instance, tuple)], the
    minimal chase depth at which [q(tuple)] becomes true ([None]: not
    entailed within budget). A bounded profile across a growing family is
    BDD-consistent; a growing profile refutes [Enough(n, q, _)] for every
    fixed [n]. The first component is the instance size. *)

val backward_shy_rewriting : Cq.t -> Ucq.t -> bool
(** Footnote 30: a theory is *backward shy* when in every disjunct of every
    rewriting only answer variables occur more than once. This checks one
    computed rewriting for that shape: sticky theories pass (they are
    backward shy), [T_d]'s exponential path disjuncts fail (their interior
    variables repeat). *)

val repeated_bound_vars : Cq.t -> Logic.Term.t list
(** The non-answer variables occurring more than once in the body. *)

val rewriting_certifies :
  ?budget:Rewrite.budget ->
  ?max_depth:int -> ?max_atoms:int ->
  Theory.t -> Cq.t -> Fact_set.t list -> bool
(** Cross-validation used by the test suite: rewrite the query, then check
    on every instance that the UCQ evaluated over [D] agrees with chase
    entailment, for every answer tuple. Returns false when the rewriting
    did not complete or some instance disagrees. *)

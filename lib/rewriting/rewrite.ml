open Logic

type budget = {
  max_disjuncts : int;
  max_atoms_per_disjunct : int;
  max_steps : int;
}

let default_budget =
  { max_disjuncts = 2_000; max_atoms_per_disjunct = 40; max_steps = 5_000 }

type outcome =
  | Complete
  | Disjunct_budget
  | Size_budget
  | Step_budget
  | Guard_exhausted of Guard.cause

type result = {
  ucq : Ucq.t;
  outcome : outcome;
  steps : int;
  generated : int;
  containment_checks : int;
  cache_hits : int;
  cache_misses : int;
  index_pruned : int;
  component_splits : int;
  kernel_stats : Saturation.Stats.t;
}

(* The saturation shares the containment-based minimization of
   Ucq.add_minimal, reimplemented here so the pairwise implication checks
   can be counted and fanned out per existing disjunct. The decisions (and
   the disjunct order of the result) are exactly those of Ucq.add_minimal —
   containment verdicts go through the process-wide memo cache
   ([Containment.implies_memo]), which never changes a verdict, only its
   cost. *)

(* Candidate dedup: subsumption against the evolving UCQ is *monotone* —
   [add_minimal] only ever replaces disjuncts by strictly more general
   ones, so once a candidate is covered (whether it was added or
   subsumed), every later candidate with the same canonical form is
   covered too and can be dropped without any containment checks. The
   table is run-local (keyed on [Cq.canon_id]) and follows the
   memoization A/B toggle so that switching the cache off restores the
   unmemoized engine exactly. *)
let make_dedup () =
  let seen = Hashtbl.create 512 in
  fun q' ->
    Containment.memoization_enabled ()
    &&
    let k = Cq.canon_id q' in
    Hashtbl.mem seen k
    || begin
         Hashtbl.add seen k ();
         false
       end

let finalize ~aux ~ucq ~outcome ~steps ~generated ~containment_checks
    ~dedup_hits ~kernel_stats ~(memo0 : Containment.memo_stats)
    ~(ix0 : Ucq_index.stats) ~(solver0 : Containment.solver_stats) =
  let memo1 = Containment.memo_stats () in
  let visible =
    List.filter
      (fun d -> not (Single_head.mentions_aux aux d))
      (Ucq.disjuncts ucq)
  in
  let ucq = Ucq.of_list visible in
  let ix1 = Ucq_index.stats () in
  let solver1 = Containment.solver_stats () in
  {
    ucq;
    outcome;
    steps;
    generated;
    containment_checks;
    cache_hits = (memo1.hits - memo0.hits) + dedup_hits;
    cache_misses = memo1.misses - memo0.misses;
    index_pruned =
      ix1.pruned - ix0.pruned
      + (solver1.prescreened - solver0.prescreened);
    component_splits = solver1.splits - solver0.splits;
    kernel_stats;
  }

let split_batch = Saturation.split_batch

(* The evolving minimal UCQ, behind the [Ucq_index.set_indexing] A/B
   toggle: the indexed store probes homomorphism-invariant fingerprints
   before any containment search, the reference store is the PR 2
   linear scan. Both expose the same three operations, make the same
   [implies] calls succeed, and keep the disjuncts in the same
   (newest-first) order — the engines produce identical UCQs.

   The surviving containment checks of an insertion fan out across the
   pool ([Ucq_index.subsumer_candidates] probes in the same newest-first
   order as [Ucq_index.covered], so a size-1 pool reproduces the
   sequential engine's verdicts); all store mutation happens on the
   coordinator.

   Both stores also maintain the canonical ids of the currently live
   disjuncts, so the worklist's "was this disjunct subsumed since it
   was enqueued?" probe is one hash lookup instead of the O(frontier)
   scan it used to be. The probe is exact: two live disjuncts never
   share a canonical id (an isomorphic candidate is subsumed at
   insertion), and a killed disjunct's class can never re-enter the
   store (its killer — or, transitively, the killer's killer — still
   covers every isomorphic copy). *)
type store = {
  insert : Cq.t -> [ `Added | `Subsumed ];
  cardinal : unit -> int;
  to_ucq : unit -> Ucq.t;
  is_live : Cq.t -> bool;
  preload : Cq.t list -> unit;
      (* install snapshot disjuncts (given newest-first) verbatim, no
         containment checks: a checkpointed store is already pairwise
         non-subsuming, and [add_minimal]'s monotonicity means nothing
         later in the run can make a preloaded disjunct wrong — only
         subsume it, which the ordinary insert path handles *)
}

(* Resolve [implies q' d] over a candidate list in two phases: a
   coordinator prepass answers every pair the containment memo (or a
   trivial fast path) already decides — [`Subsumed] short-circuits
   without waking the pool — and only the unresolved residue fans out.
   On warm stores most pairs are memo-resolved, so a typical insertion
   costs zero pool dispatches. *)
let subsumed_by ~pool ~probe ~implies q' candidates =
  let known = ref false in
  let unknown =
    List.filter
      (fun d ->
        (not !known)
        &&
        match probe q' d with
        | Some true ->
            known := true;
            false
        | Some false -> false
        | None -> true)
      candidates
  in
  !known
  || Parallel.Pool.exists pool
       (fun d -> implies q' d)
       (Array.of_list unknown)

(* The victim direction: per-candidate verdicts [implies d q'], memo
   prepass first, pool only for the unresolved pairs (their verdicts are
   scattered back into candidate order, so the result is exactly
   [List.map (fun d -> implies d q') candidates]). *)
let verdicts_against ~pool ~probe ~implies q' candidates =
  let cands = Array.of_list candidates in
  let pre = Array.map (fun d -> probe d q') cands in
  let unresolved = ref [] in
  Array.iteri
    (fun i v -> if v = None then unresolved := i :: !unresolved)
    pre;
  let unresolved = Array.of_list (List.rev !unresolved) in
  let computed =
    Parallel.Pool.map_array pool
      (fun i -> implies cands.(i) q')
      unresolved
  in
  Array.iteri (fun k i -> pre.(i) <- Some computed.(k)) unresolved;
  Array.to_list
    (Array.map (function Some v -> v | None -> assert false) pre)

let make_store ~pool ~probe ~implies =
  let live : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let is_live q = Hashtbl.mem live (Cq.canon_id q) in
  if Ucq_index.indexing_enabled () then begin
    let idx = Ucq_index.create () in
    let insert q' =
      let subsumers = Ucq_index.subsumer_candidates idx q' in
      if subsumed_by ~pool ~probe ~implies q' subsumers then `Subsumed
      else begin
        let victims = Ucq_index.victim_candidates idx q' in
        let verdicts =
          verdicts_against ~pool ~probe ~implies q'
            (List.map snd victims)
        in
        List.iter2
          (fun (slot, d) dropped ->
            if dropped then begin
              Ucq_index.kill idx slot;
              Hashtbl.remove live (Cq.canon_id d)
            end)
          victims verdicts;
        Ucq_index.add idx q';
        Hashtbl.replace live (Cq.canon_id q') ();
        `Added
      end
    in
    {
      insert;
      cardinal = (fun () -> Ucq_index.cardinal idx);
      to_ucq =
        (fun () -> Ucq.of_disjuncts_unchecked (Ucq_index.disjuncts idx));
      is_live;
      preload =
        (fun disj ->
          (* [Ucq_index.disjuncts] reads newest-first, so install
             oldest-first to land in the checkpointed order. *)
          List.iter
            (fun d ->
              Ucq_index.add idx d;
              Hashtbl.replace live (Cq.canon_id d) ())
            (List.rev disj));
    }
  end
  else begin
    let disjuncts = ref [] in
    let insert q' =
      if subsumed_by ~pool ~probe ~implies q' !disjuncts then `Subsumed
      else begin
        let verdicts =
          verdicts_against ~pool ~probe ~implies q' !disjuncts
        in
        let kept =
          List.fold_right2
            (fun d dropped acc ->
              if dropped then begin
                Hashtbl.remove live (Cq.canon_id d);
                acc
              end
              else d :: acc)
            !disjuncts verdicts []
        in
        disjuncts := q' :: kept;
        Hashtbl.replace live (Cq.canon_id q') ();
        `Added
      end
    in
    {
      insert;
      cardinal = (fun () -> List.length !disjuncts);
      to_ucq = (fun () -> Ucq.of_disjuncts_unchecked !disjuncts);
      is_live;
      preload =
        (fun disj ->
          disjuncts := disj;
          List.iter
            (fun d -> Hashtbl.replace live (Cq.canon_id d) ())
            disj);
    }
  end

let checkpoint_kind = "rewrite"

(* A rewriting snapshot holds the *uncompiled* theory (Single_head aux
   naming is deterministic per theory, so resume recompiles to identical
   aux symbols), the original query, the store disjuncts in store order
   (auxiliary-mentioning ones included — they are live saturation
   state), and the kernel frontier. Canonical CQ ids are process-local
   and never serialized; the run-local dedup table is reseeded from the
   decoded disjuncts, which is a subset of the ids the interrupted run
   had seen — the missing ones only cost re-checks through the insert
   path, never a different UCQ (subsumption against the store is
   monotone). Hence the resumed result is UCQ-{e equivalent}, not
   bit-identical: the contract the differential suite checks. *)
let encode_state ~round ~theory ~q ~budget ~steps ~store_disjuncts ~frontier
    =
  let module Codec = Checkpoint.Codec in
  {
    Checkpoint.Snapshot.kind = checkpoint_kind;
    round;
    meta =
      [
        ("steps", string_of_int steps);
        ("max_disjuncts", string_of_int budget.max_disjuncts);
        ( "max_atoms_per_disjunct",
          string_of_int budget.max_atoms_per_disjunct );
        ("max_steps", string_of_int budget.max_steps);
      ];
    sections =
      [
        ("theory", Codec.theory_to_lines theory);
        ("query", [ Codec.cq_to_string q ]);
        ("store", List.map Codec.cq_to_string store_disjuncts);
        ( "frontier",
          List.map Codec.cq_to_string (Array.to_list frontier) );
      ];
  }

type restart = {
  store0 : Cq.t list;  (* newest-first, the checkpointed store order *)
  frontier0 : Cq.t list;  (* queue order *)
  steps0 : int;
  round0 : int;
}

(* The one saturation, sequential and batch-synchronous at once: a
   kernel round expands a batch of live frontier disjuncts (one worklist
   pop at a size-1 pool — the reference semantics; the whole live
   frontier at -j N — every ordering that influences the result is fixed
   before work is distributed), then folds the candidates into the
   containment-minimal store in a fixed frontier order on the
   coordinator. The produced UCQ does not depend on the domain count; a
   parallel run may differ *syntactically* from the sequential result (a
   subsumed frontier entry is still expanded if it died within its own
   batch), but on completion both are equivalent UCQs — the property the
   differential test suite checks. *)
let rewrite_from ?(pool = Parallel.Pool.sequential) ?guard
    ?(budget = default_budget) ?checkpoint:checkpoint_sink ~restart theory q
    =
  let guard = match guard with Some g -> g | None -> Guard.unlimited () in
  let jobs = Parallel.Pool.size pool in
  let compiled, aux = Single_head.compile theory in
  let memo0 = Containment.memo_stats () in
  let ix0 = Ucq_index.stats () in
  let solver0 = Containment.solver_stats () in
  let checks = Atomic.make 0 in
  let implies a b =
    (* Poll inside the quadratic part so deadline/memory trips are
       observed between containment searches, not only at round
       boundaries (workers poll too — Guard is domain-safe); the
       saturation reacts at the kernel's next checkpoint. *)
    if Atomic.fetch_and_add checks 1 land Guard.poll_mask = 0 then
      ignore (Guard.check guard);
    Containment.implies_memo a b
  in
  (* The coordinator's memo prepass: a probe that answers counts as a
     containment check (it replaced one), so the reported check totals
     stay comparable with the pre-batching engine. *)
  let probe a b =
    match Containment.memo_probe a b with
    | Some _ as v ->
        ignore (Atomic.fetch_and_add checks 1);
        v
    | None -> None
  in
  let store = make_store ~pool ~probe ~implies in
  let q0 = Containment.core_of_query q in
  let seen_before = make_dedup () in
  let dedup_hits = ref 0 in
  let steps = ref 0 in
  let init, base_round =
    match restart with
    | None ->
        ignore (seen_before q0);
        ignore (store.insert q0);
        ([ q0 ], 0)
    | Some { store0; frontier0; steps0; round0 } ->
        store.preload store0;
        ignore (seen_before q0);
        List.iter (fun d -> ignore (seen_before d)) store0;
        List.iter (fun d -> ignore (seen_before d)) frontier0;
        steps := steps0;
        (frontier0, round0)
  in
  let outcome = ref Complete in
  (* Per-disjunct expansion cost from the previous round, feeding the
     dispatch gate's [?est_s] hint: rewriting rounds expand queries of
     slowly-drifting size, so the running per-item average is a solid
     predictor (0. = no history yet, the gate probes). *)
  let expand_item_s = ref 0. in
  let exception Budget_hit in
  let step (ctx : Saturation.ctx) batch =
    (* Disjuncts subsumed since they were enqueued need not expand. *)
    let live = List.filter store.is_live (Array.to_list batch) in
    if live = [] then
      {
        Saturation.next = [];
        tally = Saturation.Stats.zero;
        stop = false;
        commit = true;
      }
    else
      (* One fuel unit per expanded disjunct, drawn before the fan-out;
         a trip discards nothing — the store already holds only sound
         rewritings — it just stops the saturation here. *)
      match Guard.spend guard (List.length live) with
      | Some cause ->
          outcome := Guard_exhausted cause;
          {
            Saturation.next = [];
            tally = Saturation.Stats.zero;
            stop = true;
            commit = false;
          }
      | None -> (
          let n_live = List.length live in
          let t_expand = Unix.gettimeofday () in
          let est = !expand_item_s *. float_of_int n_live in
          let expansions =
            Parallel.Pool.map_list ~guard
              ?est_s:(if est > 0. then Some est else None)
              ctx.Saturation.pool
              (fun q' -> Piece_unifier.one_step_theory q' compiled)
              live
          in
          expand_item_s :=
            (Unix.gettimeofday () -. t_expand) /. float_of_int n_live;
          let expanded = n_live in
          steps := !steps + expanded;
          match Guard.status guard with
          | Some cause ->
              (* The fan-out observed a trip: keep the store (all its
                 disjuncts are sound) but skip the merge. The batch goes
                 back on the frontier — its expansions are discarded, so
                 a resumed run must re-expand these disjuncts. *)
              outcome := Guard_exhausted cause;
              {
                Saturation.next = live;
                tally = Saturation.Stats.tally ~expanded ();
                stop = true;
                commit = true;
              }
          | None ->
              (* The merge runs on the coordinator (so the dedup's plain
                 hash table is safe), folding candidates in the fixed
                 frontier order. *)
              let added = ref [] in
              let generated = ref 0 in
              let admitted = ref 0 in
              let deduped = ref 0 in
              let stop = ref false in
              (try
                 List.iter
                   (List.iter (fun q' ->
                        incr generated;
                        if Cq.size q' > budget.max_atoms_per_disjunct
                        then begin
                          outcome := Size_budget;
                          raise Budget_hit
                        end;
                        if seen_before q' then begin
                          incr dedup_hits;
                          incr deduped
                        end
                        else
                          match store.insert q' with
                          | `Added ->
                              incr admitted;
                              added := q' :: !added;
                              if store.cardinal () > budget.max_disjuncts
                              then begin
                                outcome := Disjunct_budget;
                                raise Budget_hit
                              end
                          | `Subsumed -> incr deduped))
                   expansions
               with Budget_hit -> stop := true);
              {
                Saturation.next = List.rev !added;
                tally =
                  Saturation.Stats.tally ~expanded ~generated:!generated
                    ~admitted:!admitted ~deduped:!deduped ();
                stop = !stop;
                commit = true;
              })
  in
  let checkpoint =
    Option.map
      (fun sink ->
        {
          Saturation.every = sink.Checkpoint.every;
          min_interval_s = sink.Checkpoint.min_interval_s;
          save =
            (fun ~round ~final:_ frontier ->
              Checkpoint.save_to sink
                (encode_state ~round ~theory ~q ~budget ~steps:!steps
                   ~store_disjuncts:(Ucq.disjuncts (store.to_ucq ()))
                   ~frontier));
        })
      checkpoint_sink
  in
  let verdict, kernel_stats =
    Saturation.run ~pool ~guard
      ~drain:
        (Saturation.At_most
           (fun () ->
             (* The remaining step budget bounds the batch; at effective
                parallelism 1 (a size-1 pool, or any pool whose workers
                the machine cannot actually run in parallel) expand one
                disjunct per round — exactly the sequential worklist-pop
                semantics, avoiding the coarser batch-synchronous
                schedule's extra containment work when it cannot pay. *)
             let r = budget.max_steps - !steps in
             if jobs = 1 || Parallel.Pool.effective_size pool <= 1 then
               min 1 r
             else r))
      ~record_rounds:(jobs > 1) ~base_round ?checkpoint ~init ~step ()
  in
  let outcome =
    match verdict with
    | Saturation.Saturated -> !outcome (* Complete *)
    | Saturation.Stopped ->
        if !outcome = Complete then Step_budget else !outcome
    | Saturation.Tripped cause ->
        if !outcome = Complete then Guard_exhausted cause else !outcome
  in
  finalize ~aux ~ucq:(store.to_ucq ()) ~outcome ~steps:!steps
    ~generated:kernel_stats.Saturation.Stats.totals.Saturation.Stats.generated
    ~containment_checks:(Atomic.get checks)
    ~dedup_hits:!dedup_hits ~kernel_stats ~memo0 ~ix0 ~solver0

let rewrite ?pool ?guard ?budget ?checkpoint theory q =
  rewrite_from ?pool ?guard ?budget ?checkpoint ~restart:None theory q

let decode_snapshot snap =
  let module S = Checkpoint.Snapshot in
  let module Codec = Checkpoint.Codec in
  if snap.S.kind <> checkpoint_kind then
    invalid_arg
      (Printf.sprintf "Rewrite.resume: %S snapshot, expected %S" snap.S.kind
         checkpoint_kind);
  let theory = Codec.theory_of_lines (S.section snap "theory") in
  let q =
    match S.section snap "query" with
    | [ line ] -> Codec.cq_of_string line
    | _ -> raise (Codec.Error "expected a one-line query section")
  in
  let store0 = List.map Codec.cq_of_string (S.section snap "store") in
  let frontier0 = List.map Codec.cq_of_string (S.section snap "frontier") in
  let steps0 = Option.value ~default:0 (S.meta_int snap "steps") in
  let snap_budget =
    match
      ( S.meta_int snap "max_disjuncts",
        S.meta_int snap "max_atoms_per_disjunct",
        S.meta_int snap "max_steps" )
    with
    | Some d, Some a, Some s ->
        Some
          { max_disjuncts = d; max_atoms_per_disjunct = a; max_steps = s }
    | _ -> None
  in
  ( theory,
    q,
    { store0; frontier0; steps0; round0 = snap.S.round },
    snap_budget )

let resume ?pool ?guard ?budget ?checkpoint snap =
  let theory, q, restart, snap_budget = decode_snapshot snap in
  let budget =
    match budget with
    | Some b -> b
    | None -> Option.value ~default:default_budget snap_budget
  in
  rewrite_from ?pool ?guard ~budget ?checkpoint ~restart:(Some restart)
    theory q

let outcome_of_result r ~(guard : Guard.t) =
  match r.outcome with
  | Complete -> Guard.Complete r
  | Guard_exhausted cause ->
      Guard.Exhausted { partial = r; cause; progress = Guard.progress guard }
  | Disjunct_budget | Size_budget | Step_budget ->
      Guard.Exhausted
        { partial = r; cause = Guard.Fuel; progress = Guard.progress guard }

let rs ?pool ?budget theory q =
  let r = rewrite ?pool ?budget theory q in
  match r.outcome with
  | Complete -> Some (Ucq.max_disjunct_size r.ucq)
  | Disjunct_budget | Size_budget | Step_budget | Guard_exhausted _ -> None

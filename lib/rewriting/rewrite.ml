open Logic

type budget = {
  max_disjuncts : int;
  max_atoms_per_disjunct : int;
  max_steps : int;
}

let default_budget =
  { max_disjuncts = 2_000; max_atoms_per_disjunct = 40; max_steps = 5_000 }

type outcome =
  | Complete
  | Disjunct_budget
  | Size_budget
  | Step_budget
  | Guard_exhausted of Guard.cause

type result = {
  ucq : Ucq.t;
  outcome : outcome;
  steps : int;
  generated : int;
  containment_checks : int;
  cache_hits : int;
  cache_misses : int;
  index_pruned : int;
  component_splits : int;
}

(* Both saturation strategies share the containment-based minimization of
   Ucq.add_minimal, reimplemented here so the pairwise implication checks
   can be counted and, in the parallel strategy, fanned out per existing
   disjunct. The decisions (and the disjunct order of the result) are
   exactly those of Ucq.add_minimal — containment verdicts go through the
   process-wide memo cache ([Containment.implies_memo]), which never
   changes a verdict, only its cost. *)

(* Candidate dedup: subsumption against the evolving UCQ is *monotone* —
   [add_minimal] only ever replaces disjuncts by strictly more general
   ones, so once a candidate is covered (whether it was added or
   subsumed), every later candidate with the same canonical form is
   covered too and can be dropped without any containment checks. The
   table is run-local (keyed on [Cq.canon_id]) and follows the
   memoization A/B toggle so that switching the cache off restores the
   unmemoized engine exactly. *)
let make_dedup () =
  let seen = Hashtbl.create 512 in
  fun q' ->
    Containment.memoization_enabled ()
    &&
    let k = Cq.canon_id q' in
    Hashtbl.mem seen k
    || begin
         Hashtbl.add seen k ();
         false
       end

let finalize ~aux ~ucq ~outcome ~steps ~generated ~containment_checks
    ~dedup_hits ~(memo0 : Containment.memo_stats)
    ~(ix0 : Ucq_index.stats) ~(solver0 : Containment.solver_stats) =
  let memo1 = Containment.memo_stats () in
  let visible =
    List.filter
      (fun d -> not (Single_head.mentions_aux aux d))
      (Ucq.disjuncts ucq)
  in
  let ucq = Ucq.of_list visible in
  let ix1 = Ucq_index.stats () in
  let solver1 = Containment.solver_stats () in
  {
    ucq;
    outcome;
    steps;
    generated;
    containment_checks;
    cache_hits = (memo1.hits - memo0.hits) + dedup_hits;
    cache_misses = memo1.misses - memo0.misses;
    index_pruned =
      ix1.pruned - ix0.pruned
      + (solver1.prescreened - solver0.prescreened);
    component_splits = solver1.splits - solver0.splits;
  }

(* Tail-recursive frontier split: [split_batch n l] is [(first n, rest)]
   in order. The frontier of a budget-bounded saturation can hold tens of
   thousands of disjuncts, too deep for non-tail recursion. *)
let split_batch n l =
  let rec go n acc = function
    | [] -> (List.rev acc, [])
    | rest when n <= 0 -> (List.rev acc, rest)
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

(* ------------------------------------------------------------------ *)
(* Sequential saturation (the reference semantics)                     *)
(* ------------------------------------------------------------------ *)

(* The evolving minimal UCQ, behind the [Ucq_index.set_indexing] A/B
   toggle: the indexed store probes homomorphism-invariant fingerprints
   before any containment search, the reference store is the PR 2
   linear scan. Both expose the same three operations, make the same
   [implies] calls succeed, and keep the disjuncts in the same
   (newest-first) order — the engines produce identical UCQs.

   Both stores also maintain the canonical ids of the currently live
   disjuncts, so the worklist's "was this disjunct subsumed since it
   was enqueued?" probe is one hash lookup instead of the O(frontier)
   scan it used to be. The probe is exact: two live disjuncts never
   share a canonical id (an isomorphic candidate is subsumed at
   insertion), and a killed disjunct's class can never re-enter the
   store (its killer — or, transitively, the killer's killer — still
   covers every isomorphic copy). *)
type store = {
  insert : Cq.t -> [ `Added | `Subsumed ];
  cardinal : unit -> int;
  to_ucq : unit -> Ucq.t;
  is_live : Cq.t -> bool;
}

let make_store ~implies =
  let live : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let is_live q = Hashtbl.mem live (Cq.canon_id q) in
  if Ucq_index.indexing_enabled () then begin
    let idx = Ucq_index.create () in
    let insert q' =
      if Ucq_index.covered idx q' ~implies then `Subsumed
      else begin
        List.iter
          (fun (slot, d) ->
            if implies d q' then begin
              Ucq_index.kill idx slot;
              Hashtbl.remove live (Cq.canon_id d)
            end)
          (Ucq_index.victim_candidates idx q');
        Ucq_index.add idx q';
        Hashtbl.replace live (Cq.canon_id q') ();
        `Added
      end
    in
    {
      insert;
      cardinal = (fun () -> Ucq_index.cardinal idx);
      to_ucq =
        (fun () -> Ucq.of_disjuncts_unchecked (Ucq_index.disjuncts idx));
      is_live;
    }
  end
  else begin
    let disjuncts = ref [] in
    let insert q' =
      if List.exists (fun d -> implies q' d) !disjuncts then `Subsumed
      else begin
        let kept =
          List.filter
            (fun d ->
              if implies d q' then begin
                Hashtbl.remove live (Cq.canon_id d);
                false
              end
              else true)
            !disjuncts
        in
        disjuncts := q' :: kept;
        Hashtbl.replace live (Cq.canon_id q') ();
        `Added
      end
    in
    {
      insert;
      cardinal = (fun () -> List.length !disjuncts);
      to_ucq = (fun () -> Ucq.of_disjuncts_unchecked !disjuncts);
      is_live;
    }
  end

let rewrite_sequential ~guard ~budget theory q =
  let compiled, aux = Single_head.compile theory in
  let memo0 = Containment.memo_stats () in
  let ix0 = Ucq_index.stats () in
  let solver0 = Containment.solver_stats () in
  let checks = ref 0 in
  let implies a b =
    incr checks;
    (* Poll inside the quadratic part so deadline/memory trips are
       observed between containment searches, not only at step
       boundaries; the worklist reacts at its next pop. *)
    if !checks land Guard.poll_mask = 0 then ignore (Guard.check guard);
    Containment.implies_memo a b
  in
  let store = make_store ~implies in
  let q0 = Containment.core_of_query q in
  let seen_before = make_dedup () in
  let dedup_hits = ref 0 in
  ignore (seen_before q0);
  ignore (store.insert q0);
  let worklist = Queue.create () in
  Queue.add q0 worklist;
  let steps = ref 0 in
  let generated = ref 0 in
  let outcome = ref Complete in
  (try
     while not (Queue.is_empty worklist) do
       if !steps >= budget.max_steps then begin
         outcome := Step_budget;
         raise Exit
       end;
       (* One checkpoint and one fuel unit per worklist pop. A trip
          leaves the store as-is: every disjunct already inserted was
          produced by sound piece-rewriting steps, so the partial UCQ
          is entailed by the full rewriting. *)
       (match Guard.spend guard 1 with
       | Some cause ->
           outcome := Guard_exhausted cause;
           raise Exit
       | None -> ());
       let current = Queue.pop worklist in
       (* A query subsumed since it was enqueued need not be expanded. *)
       if store.is_live current then begin
         incr steps;
         List.iter
           (fun q' ->
             incr generated;
             if Cq.size q' > budget.max_atoms_per_disjunct then begin
               outcome := Size_budget;
               raise Exit
             end;
             if seen_before q' then incr dedup_hits
             else
               match store.insert q' with
               | `Added ->
                   Queue.add q' worklist;
                   if store.cardinal () > budget.max_disjuncts then begin
                     outcome := Disjunct_budget;
                     raise Exit
                   end
               | `Subsumed -> ())
           (Piece_unifier.one_step_theory current compiled)
       end
     done
   with Exit -> ());
  finalize ~aux ~ucq:(store.to_ucq ()) ~outcome:!outcome ~steps:!steps
    ~generated:!generated ~containment_checks:!checks
    ~dedup_hits:!dedup_hits ~memo0 ~ix0 ~solver0

(* ------------------------------------------------------------------ *)
(* Parallel saturation                                                 *)
(* ------------------------------------------------------------------ *)

(* Batch-synchronous variant of the same worklist saturation: the whole
   live frontier is expanded at once (one piece-unifier task per frontier
   disjunct), the candidate lists are concatenated in frontier order, and
   the containment-based minimization then folds over the candidates in
   that fixed order — with the per-candidate coverage and subsumption
   checks fanned out across the pool. Every ordering that influences the
   result is fixed before work is distributed, so the produced UCQ does
   not depend on the domain count; it may differ *syntactically* from the
   sequential result (a subsumed frontier entry is still expanded if it
   died within its own batch), but on completion both are equivalent
   UCQs — the property the differential test suite checks. *)
let rewrite_parallel ~pool ~guard ~budget theory q =
  let compiled, aux = Single_head.compile theory in
  let memo0 = Containment.memo_stats () in
  let ix0 = Ucq_index.stats () in
  let solver0 = Containment.solver_stats () in
  let checks = Atomic.make 0 in
  let implies a b =
    (* Workers poll too (Guard is domain-safe); the coordinator reacts
       at the next batch boundary. *)
    if Atomic.fetch_and_add checks 1 land Guard.poll_mask = 0 then
      ignore (Guard.check guard);
    Containment.implies_memo a b
  in
  (* Same store abstraction as the sequential engine (including the
     O(1) canonical-id liveness set — see [make_store]), with the
     surviving containment checks of each insertion fanned out across
     the pool. All store mutation happens on the coordinator. *)
  let live_set : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let is_live q' = Hashtbl.mem live_set (Cq.canon_id q') in
  let store =
    if Ucq_index.indexing_enabled () then begin
      let idx = Ucq_index.create () in
      let insert q' =
        let subsumers = Ucq_index.subsumer_candidates idx q' in
        if
          Parallel.Pool.exists pool
            (fun d -> implies q' d)
            (Array.of_list subsumers)
        then `Subsumed
        else begin
          let victims = Ucq_index.victim_candidates idx q' in
          let verdicts =
            Parallel.Pool.map_list pool
              (fun (_, d) -> implies d q')
              victims
          in
          List.iter2
            (fun (slot, d) dropped ->
              if dropped then begin
                Ucq_index.kill idx slot;
                Hashtbl.remove live_set (Cq.canon_id d)
              end)
            victims verdicts;
          Ucq_index.add idx q';
          Hashtbl.replace live_set (Cq.canon_id q') ();
          `Added
        end
      in
      {
        insert;
        cardinal = (fun () -> Ucq_index.cardinal idx);
        to_ucq =
          (fun () -> Ucq.of_disjuncts_unchecked (Ucq_index.disjuncts idx));
        is_live;
      }
    end
    else begin
      let disjuncts = ref [] in
      let insert q' =
        if
          Parallel.Pool.exists pool
            (fun d -> implies q' d)
            (Array.of_list !disjuncts)
        then `Subsumed
        else begin
          let verdicts =
            Parallel.Pool.map_list pool (fun d -> implies d q') !disjuncts
          in
          let kept =
            List.fold_right2
              (fun d dropped acc ->
                if dropped then begin
                  Hashtbl.remove live_set (Cq.canon_id d);
                  acc
                end
                else d :: acc)
              !disjuncts verdicts []
          in
          disjuncts := q' :: kept;
          Hashtbl.replace live_set (Cq.canon_id q') ();
          `Added
        end
      in
      {
        insert;
        cardinal = (fun () -> List.length !disjuncts);
        to_ucq = (fun () -> Ucq.of_disjuncts_unchecked !disjuncts);
        is_live;
      }
    end
  in
  let q0 = Containment.core_of_query q in
  let seen_before = make_dedup () in
  let dedup_hits = ref 0 in
  ignore (seen_before q0);
  ignore (store.insert q0);
  let steps = ref 0 in
  let generated = ref 0 in
  let outcome = ref Complete in
  let frontier = ref [ q0 ] in
  (try
     while !frontier <> [] do
       if !steps >= budget.max_steps then begin
         outcome := Step_budget;
         raise Exit
       end;
       (* Disjuncts subsumed since they were enqueued need not expand. *)
       let live = List.filter store.is_live !frontier in
       let batch, deferred = split_batch (budget.max_steps - !steps) live in
       (* One fuel unit per expanded disjunct, drawn before the fan-out;
          a trip discards nothing — the store already holds only sound
          rewritings — it just stops the saturation here. *)
       (match Guard.spend guard (List.length batch) with
       | Some cause ->
           outcome := Guard_exhausted cause;
           raise Exit
       | None -> ());
       let expansions =
         Parallel.Pool.map_list ~guard pool
           (fun q' -> Piece_unifier.one_step_theory q' compiled)
           batch
       in
       steps := !steps + List.length batch;
       (match Guard.status guard with
       | Some cause ->
           outcome := Guard_exhausted cause;
           raise Exit
       | None -> ());
       let added = ref [] in
       List.iter
         (List.iter (fun q' ->
              incr generated;
              if Cq.size q' > budget.max_atoms_per_disjunct then begin
                outcome := Size_budget;
                raise Exit
              end;
              (* The dedup runs on the coordinator (the merge loop is
                 sequential), so the plain hash table is safe. *)
              if seen_before q' then incr dedup_hits
              else
                match store.insert q' with
                | `Added ->
                    added := q' :: !added;
                    if store.cardinal () > budget.max_disjuncts then begin
                      outcome := Disjunct_budget;
                      raise Exit
                    end
                | `Subsumed -> ()))
         expansions;
       frontier := deferred @ List.rev !added
     done
   with Exit -> ());
  finalize ~aux ~ucq:(store.to_ucq ()) ~outcome:!outcome ~steps:!steps
    ~generated:!generated
    ~containment_checks:(Atomic.get checks)
    ~dedup_hits:!dedup_hits ~memo0 ~ix0 ~solver0

let rewrite ?pool ?guard ?(budget = default_budget) theory q =
  let guard = match guard with Some g -> g | None -> Guard.unlimited () in
  match pool with
  | Some p when Parallel.Pool.size p > 1 ->
      rewrite_parallel ~pool:p ~guard ~budget theory q
  | Some _ | None -> rewrite_sequential ~guard ~budget theory q

let outcome_of_result r ~(guard : Guard.t) =
  match r.outcome with
  | Complete -> Guard.Complete r
  | Guard_exhausted cause ->
      Guard.Exhausted { partial = r; cause; progress = Guard.progress guard }
  | Disjunct_budget | Size_budget | Step_budget ->
      Guard.Exhausted
        { partial = r; cause = Guard.Fuel; progress = Guard.progress guard }

let rs ?pool ?budget theory q =
  let r = rewrite ?pool ?budget theory q in
  match r.outcome with
  | Complete -> Some (Ucq.max_disjunct_size r.ucq)
  | Disjunct_budget | Size_budget | Step_budget | Guard_exhausted _ -> None

(* A persistent pool of worker domains fed through a single shared job
   cell. A job is an array of tasks; workers (and the coordinator) claim
   indices with [Atomic.fetch_and_add], so load balancing is automatic:
   a domain that finishes its task immediately steals the next undone
   index. Results live in per-index slots, which fixes the merge order
   once and for all — the caller's task order — independently of
   scheduling. *)

type job = {
  run : int -> unit;  (* run task [i]; must not raise *)
  n : int;
  next : int Atomic.t;
  mutable completed : int;  (* tasks finished; protected by the pool mutex *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;  (* workers: a new job was posted *)
  finished : Condition.t;  (* coordinator: all tasks of the job are done *)
  mutable job : job option;
  mutable generation : int;  (* bumped per job; workers join each job once *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  busy : float array;  (* cumulative busy seconds per worker *)
}

let now () = Unix.gettimeofday ()

(* Claim and run tasks until the job is drained, then report how many this
   worker completed. The completion count (not a per-worker barrier) is
   what the coordinator waits on, so it never matters which workers ever
   woke up for a given job. *)
let drain pool job worker =
  let t0 = now () in
  let rec loop done_count =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      job.run i;
      loop (done_count + 1)
    end
    else done_count
  in
  let did = loop 0 in
  let dt = now () -. t0 in
  Mutex.lock pool.mutex;
  pool.busy.(worker) <- pool.busy.(worker) +. dt;
  job.completed <- job.completed + did;
  if job.completed = job.n then Condition.broadcast pool.finished;
  Mutex.unlock pool.mutex

let worker_loop pool worker =
  let last_generation = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while
      (not pool.stop)
      && (pool.job = None || pool.generation = !last_generation)
    do
      Condition.wait pool.work pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      let job = Option.get pool.job in
      last_generation := pool.generation;
      Mutex.unlock pool.mutex;
      drain pool job worker
    end
  done

let make_pool size =
  {
    size;
    mutex = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    job = None;
    generation = 0;
    stop = false;
    domains = [];
    busy = Array.make size 0.;
  }

let sequential = make_pool 1

let create requested =
  let size = max 1 requested in
  let pool = make_pool size in
  pool.domains <-
    List.init (size - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop pool (k + 1)));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let map_array (type a b) pool (f : a -> b) (tasks : a array) : b array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if pool.size = 1 || n = 1 then begin
    let t0 = now () in
    let results = Array.map f tasks in
    pool.busy.(0) <- pool.busy.(0) +. (now () -. t0);
    results
  end
  else begin
    let results : b option array = Array.make n None in
    let error = Atomic.make None in
    let run i =
      match f tasks.(i) with
      | r -> results.(i) <- Some r
      | exception e ->
          ignore (Atomic.compare_and_set error None (Some e))
    in
    let job = { run; n; next = Atomic.make 0; completed = 0 } in
    Mutex.lock pool.mutex;
    pool.job <- Some job;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    (* The coordinator is worker 0: it drains alongside the domains. *)
    drain pool job 0;
    Mutex.lock pool.mutex;
    while job.completed < job.n do
      Condition.wait pool.finished pool.mutex
    done;
    pool.job <- None;
    Mutex.unlock pool.mutex;
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some r -> r | None -> assert false) results
  end

let map_list pool f l = Array.to_list (map_array pool f (Array.of_list l))

let exists pool pred tasks =
  if pool.size = 1 || Array.length tasks < 2 then Array.exists pred tasks
  else begin
    let found = Atomic.make false in
    ignore
      (map_array pool
         (fun x ->
           if (not (Atomic.get found)) && pred x then Atomic.set found true)
         tasks);
    Atomic.get found
  end

let filter_list pool pred l =
  if pool.size = 1 then List.filter pred l
  else
    let arr = Array.of_list l in
    let keep = map_array pool pred arr in
    let out = ref [] in
    for i = Array.length arr - 1 downto 0 do
      if keep.(i) then out := arr.(i) :: !out
    done;
    !out

let busy_times pool =
  Mutex.lock pool.mutex;
  let copy = Array.copy pool.busy in
  Mutex.unlock pool.mutex;
  copy

let reset_busy pool =
  Mutex.lock pool.mutex;
  Array.fill pool.busy 0 (Array.length pool.busy) 0.;
  Mutex.unlock pool.mutex

(* ------------------------------------------------------------------ *)
(* Default pool plumbing (-j N / FRONTIER_JOBS)                        *)
(* ------------------------------------------------------------------ *)

let jobs_from_env () =
  match Sys.getenv_opt "FRONTIER_JOBS" with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)

let default_size = ref None
let default_pool = ref None

let default_jobs () =
  match !default_size with
  | Some n -> n
  | None ->
      let n = jobs_from_env () in
      default_size := Some n;
      n

let set_default_jobs n =
  let n = max 1 n in
  (match !default_pool with Some p -> shutdown p | None -> ());
  default_pool := None;
  default_size := Some n

let get_default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create (default_jobs ()) in
      default_pool := Some p;
      p

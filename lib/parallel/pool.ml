(* A persistent pool of worker domains fed through sharded per-worker
   claim ranges with work stealing. A job is an array of tasks, sliced
   into one contiguous shard per worker; each worker drains its own
   shard through a private atomic cursor and only touches other shards
   when its own runs dry, stealing round-robin from the next live
   victim. The hot claim path is therefore an uncontended
   [Atomic.fetch_and_add] on a per-shard cursor — the single shared
   counter every domain used to hammer is gone — while the steal path
   preserves the old guarantee that no index is ever left behind: a
   shard's cursor only moves forward, so "all shards dry" is a stable
   exit condition, and a dead worker's unclaimed range is simply stolen
   like any other. Results live in per-index slots, which fixes the
   merge order once and for all — the caller's task order —
   independently of scheduling.

   Degraded-mode hardening: per-index slots hold [Ok]/[Error] results, a
   task exception never poisons the batch (all failures are aggregated
   into [Task_errors] with their backtraces after one inline retry), a
   worker that dies mid-job (fault injection's [`Die] fate) leaves its
   single claimed index to the coordinator's rescue pass — the rest of
   its shard is drained by thieves — and guard cancellation stops
   workers from claiming further tasks: the coordinator alone finishes
   the job, with guard-aware task bodies early-exiting at their own
   checkpoints. *)

exception
  Task_errors of (int * exn * Printexc.raw_backtrace) list
    (* (task index, exception, backtrace), sorted by index; every entry
       failed twice: once in its claiming domain and once in the
       coordinator's inline retry *)

let () =
  Printexc.register_printer (function
    | Task_errors errors ->
        Some
          (Printf.sprintf "Pool.Task_errors [%s]"
             (String.concat "; "
                (List.map
                   (fun (i, e, _) ->
                     Printf.sprintf "task %d: %s" i (Printexc.to_string e))
                   errors)))
    | _ -> None)

(* One worker's contiguous slice [lo, hi) of the task indices, drained
   through [next]. The cursor only increases, and claims past [hi] are
   harmless (the claimer just sees an empty shard), so no synchronization
   beyond the single fetch-and-add is needed. *)
type shard = { hi : int; next : int Atomic.t }

type job = {
  run : int -> fate:[ `Run | `Raise of int ] -> unit;
      (* execute task [i] (or record its injected failure); never raises *)
  n : int;
  shards : shard array;
  cancelled : unit -> bool;  (* workers stop claiming once true *)
  early_stop : unit -> bool;
      (* the job's answer is already decided (e.g. [exists] found a
         witness); remaining claims become no-ops via [skip] *)
  skip : (int -> unit) option;
      (* fill index [i]'s slot without running the task; present iff the
         caller opted into early-stop semantics *)
  mutable completed : int;  (* tasks finished; protected by the pool mutex *)
  mutable orphans : int list;
      (* indices claimed and then abandoned by a dying worker, awaiting
         the coordinator's rescue pass; protected by the pool mutex *)
}

type t = {
  size : int;
  eff : int;
      (* effective parallelism: [min size (recommended_domain_count ())].
         A pool oversubscribing a small machine can still *run* wide jobs
         correctly, but fanning out cannot make them faster — the cost
         gate treats [eff = 1] as "never fan out". *)
  mutex : Mutex.t;
  work : Condition.t;  (* workers: a new job was posted *)
  finished : Condition.t;  (* coordinator: progress on the job *)
  mutable job : job option;
  mutable generation : int;  (* bumped per job; workers join each job once *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  busy : float array;
      (* cumulative busy seconds per worker; protected by the mutex *)
  mutable dispatch_overhead_s : float;
      (* measured fixed cost of one fan-out (post + wake + handshake);
         the cost gate's unit of account *)
}

let now () = Unix.gettimeofday ()

(* Balanced contiguous slices of [0, n): the first [n mod size] shards
   get one extra index. Pure, so the steal-path unit tests can pin the
   slicing directly. *)
let shard_bounds ~n ~size =
  let base = n / size and rem = n mod size in
  Array.init size (fun k ->
      let lo = (k * base) + min k rem in
      let hi = lo + base + if k < rem then 1 else 0 in
      (lo, hi))

let make_shards ~n ~size =
  Array.map
    (fun (lo, hi) -> { hi; next = Atomic.make lo })
    (shard_bounds ~n ~size)

(* The order in which [worker] visits shards: its own first, then
   round-robin over the victims — each shard exactly once, never itself
   twice. Pure, for the same reason as [shard_bounds]. *)
let probe_order ~worker ~shards =
  List.init shards (fun k -> (worker + k) mod shards)

let claim shard =
  if Atomic.get shard.next >= shard.hi then None
  else
    let i = Atomic.fetch_and_add shard.next 1 in
    if i < shard.hi then Some i else None

(* Claim and run tasks until every shard is dry, the guard is cancelled
   (workers only — the coordinator must keep going so the job always
   completes), or the fault schedule kills this worker. The completion
   count (not a per-worker barrier) is what the coordinator waits on, so
   it never matters which workers ever woke up for a given job; a dying
   worker hands its claimed index over as an orphan and thieves drain
   the rest of its shard. *)
let drain pool job worker =
  let t0 = now () in
  let nshards = Array.length job.shards in
  (* Own shard first (k = 0), then steal round-robin; a full fruitless
     scan means every shard is dry, which is stable (cursors only move
     forward), so exiting is safe. *)
  let rec find k =
    if k >= nshards then None
    else
      match claim job.shards.((worker + k) mod nshards) with
      | Some i -> Some i
      | None -> find (k + 1)
  in
  let rec loop done_count =
    if worker > 0 && job.cancelled () then (done_count, None)
    else
      match find 0 with
      | None -> (done_count, None)
      | Some i ->
          if job.early_stop () && job.skip <> None then begin
            (Option.get job.skip) i;
            loop (done_count + 1)
          end
          else begin
            match Guard.Faults.claim_fate ~worker with
            | `Die -> (done_count, Some i)
            | (`Run | `Raise _) as fate ->
                job.run i ~fate;
                loop (done_count + 1)
          end
  in
  let did, orphan = loop 0 in
  let dt = now () -. t0 in
  Mutex.lock pool.mutex;
  pool.busy.(worker) <- pool.busy.(worker) +. dt;
  job.completed <- job.completed + did;
  (match orphan with
  | Some i -> job.orphans <- i :: job.orphans
  | None -> ());
  (* Wake the coordinator on any exit: completion, cancellation bail-out,
     or death — it re-evaluates and rescues orphans as needed. *)
  Condition.broadcast pool.finished;
  Mutex.unlock pool.mutex

let worker_loop pool worker =
  let last_generation = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while
      (not pool.stop)
      && (pool.job = None || pool.generation = !last_generation)
    do
      Condition.wait pool.work pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      let job = Option.get pool.job in
      last_generation := pool.generation;
      Mutex.unlock pool.mutex;
      drain pool job worker
    end
  done

(* A conservative stand-in until (and unless) the dispatch
   microbenchmark runs: about what a cross-domain dispatch costs on a
   mainstream machine. Used as-is when measurement is skipped (size-1
   pools; fault-injection runs, where the measurement's task claims
   would shift the deterministic fault schedule). *)
let default_overhead_s = 1e-4

(* The dispatch-overhead microbenchmark, installed after [run_all] is
   defined (it fans a calibration batch out through it). *)
let calibrator : (t -> float) ref = ref (fun _ -> default_overhead_s)

(* Workers are spawned on the first batch that actually fans out, not
   at pool creation: a pool whose cost gate keeps every batch inline —
   notably any pool on a single-core container, where [eff = 1] — then
   never spawns a domain at all, so the program never pays the
   stop-the-world minor-GC rendezvous that even sleeping domains add to
   every collection (measured at ~10% wall clock on allocation-heavy
   workloads). The overhead calibration moves with the spawn: it is
   meaningless until there are workers to dispatch to, and the gate
   decision that triggered this fan-out has already been taken on the
   conservative default. Double-checked under the pool mutex so
   concurrent first fan-outs spawn exactly once. *)
let ensure_workers pool =
  if pool.size > 1 && pool.domains = [] then begin
    Mutex.lock pool.mutex;
    let spawn = pool.domains = [] && not pool.stop in
    if spawn then
      pool.domains <-
        List.init (pool.size - 1) (fun k ->
            Domain.spawn (fun () -> worker_loop pool (k + 1)));
    Mutex.unlock pool.mutex;
    if spawn && not (Guard.Faults.active ()) then
      pool.dispatch_overhead_s <- !calibrator pool
  end

let make_pool size =
  {
    size;
    eff = min size (Domain.recommended_domain_count ());
    mutex = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    job = None;
    generation = 0;
    stop = false;
    domains = [];
    busy = Array.make size 0.;
    dispatch_overhead_s = default_overhead_s;
  }

let sequential = make_pool 1

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* Execute task [i] into its slot, catching everything: a real task
   exception and an injected one both land as [Error] — the caller
   retries those inline before giving up on them. *)
let exec_into (type a b) (f : a -> b) (tasks : a array)
    (slots : (b, exn * Printexc.raw_backtrace) result option array) i
    ~fate =
  match fate with
  | `Raise claim ->
      slots.(i) <-
        Some
          (Error
             ( Guard.Faults.Injected_fault claim,
               Printexc.get_callstack 16 ))
  | `Run -> (
      match f tasks.(i) with
      | r -> slots.(i) <- Some (Ok r)
      | exception e ->
          slots.(i) <- Some (Error (e, Printexc.get_raw_backtrace ())))

(* ------------------------------------------------------------------ *)
(* Cost gate                                                           *)
(* ------------------------------------------------------------------ *)

(* Fanning a batch out costs a fixed dispatch overhead (posting the job,
   waking the workers, the completion handshake) regardless of how much
   work the batch holds. The saturation clients routinely dispatch
   batches worth a few microseconds — per-step reclassification lists,
   per-insertion subsumption rounds — where that overhead dominates by
   orders of magnitude: the pre-gate scheduler ran the E2/E3 marked
   processes at 0.14x/0.02x of sequential under -j4 on one core. The
   gate routes such batches inline and reserves fan-out for batches
   whose measured (or caller-estimated) work clears a multiple of the
   pool's own dispatch overhead:

   - effective parallelism 1 (size-1 pool, or any pool on a one-core
     box): always inline — fan-out cannot win;
   - caller passed [~est_s]: compare the estimate against the gate
     threshold directly;
   - otherwise, *probe*: run tasks inline until the gate threshold of
     wall time has been spent, then fan out the remainder iff its
     extrapolated cost clears the threshold too.

   The gate changes scheduling only, never results: every client
   already requires cross-[-j] determinism, and inline execution is the
   size-1 code path those contracts are stated against. [set_cost_gate
   false] restores unconditional fan-out (the scheduler tests exercise
   the steal/death paths on one core and need it). *)

let cost_gate = Atomic.make true
let set_cost_gate b = Atomic.set cost_gate b

(* Threshold, as a multiple of the measured dispatch overhead: a batch
   has to be worth several dispatches before the pool pays for one. *)
let gate_factor = 5.

type gate_counters = { inline_batches : int; fanout_batches : int }

let g_inline = Atomic.make 0
let g_fanout = Atomic.make 0

let gate_counters () =
  {
    inline_batches = Atomic.get g_inline;
    fanout_batches = Atomic.get g_fanout;
  }

let reset_gate_counters () =
  Atomic.set g_inline 0;
  Atomic.set g_fanout 0

let dispatch_overhead_s pool = pool.dispatch_overhead_s

(* How many tasks can actually run at once. Saturation clients size
   their round batches off this (a 4-domain pool on a 1-core box should
   drain one item per round, like -j1, not whole frontiers); with the
   gate off it falls back to the nominal size, restoring unconditional
   pre-gate behavior. *)
let effective_size pool =
  if Atomic.get cost_gate then pool.eff else pool.size

(* The degraded-mode core: run every task, rescue orphans inline, retry
   failed slots once (transient/injected failures recover; deterministic
   ones stay [Error]). Always returns a fully populated slot per index.
   [stop]/[skip] implement cooperative early exit ([exists]): once [stop]
   flips true, workers stop claiming and every remaining claim is
   resolved through [skip] without touching the task. [est_s] is the
   caller's estimate of the whole batch's sequential cost, consumed by
   the cost gate; [force_fanout] bypasses the gate (the creation-time
   overhead measurement must go through the real dispatch path). *)
let run_all (type a b) ?guard ?stop ?skip ?est_s ?(force_fanout = false)
    pool (f : a -> b) (tasks : a array) :
    (b, exn * Printexc.raw_backtrace) result array =
  let n = Array.length tasks in
  let slots : (b, exn * Printexc.raw_backtrace) result option array =
    Array.make n None
  in
  let exec = exec_into f tasks slots in
  let early_stop = match stop with Some s -> s | None -> fun () -> false in
  let skip_into =
    Option.map (fun sk i -> slots.(i) <- Some (Ok (sk ()))) skip
  in
  (* Inline execution of one index: the coordinator is the only worker,
     so injected worker death degrades to a no-op and cancellation is
     handled inside the (guard-aware) task bodies. *)
  let run_one i =
    if early_stop () && skip_into <> None then (Option.get skip_into) i
    else
      match Guard.Faults.claim_fate ~worker:0 with
      | (`Run | `Raise _) as fate -> exec i ~fate
      | `Die -> exec i ~fate:`Run (* the coordinator never dies *)
  in
  let run_inline lo =
    let t0 = now () in
    for i = lo to n - 1 do
      run_one i
    done;
    let dt = now () -. t0 in
    Mutex.lock pool.mutex;
    pool.busy.(0) <- pool.busy.(0) +. dt;
    Mutex.unlock pool.mutex
  in
  (* Fan indices [lo, n) out to the workers (the coordinator drains as
     worker 0). The job speaks batch-relative indices so the sharding
     and steal machinery is untouched. *)
  let fan_out lo =
    ensure_workers pool;
    let guard_cancelled =
      match guard with
      | Some g -> fun () -> Guard.cancelled g
      | None -> fun () -> false
    in
    let m = n - lo in
    let job =
      {
        run = (fun i ~fate -> exec (lo + i) ~fate);
        n = m;
        shards = make_shards ~n:m ~size:pool.size;
        cancelled = (fun () -> guard_cancelled () || early_stop ());
        early_stop;
        skip = Option.map (fun si i -> si (lo + i)) skip_into;
        completed = 0;
        orphans = [];
      }
    in
    Mutex.lock pool.mutex;
    pool.job <- Some job;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    drain pool job 0;
    Mutex.lock pool.mutex;
    let rec wait () =
      if job.completed >= job.n then ()
      else if job.orphans <> [] then begin
        (* Rescue a dead worker's abandoned claims: run them inline in
           the coordinator (fault-free by construction — the rescue path
           does not consult the fault schedule). Only the index the dead
           worker had already claimed lands here; the rest of its shard
           was stolen by the surviving workers. *)
        let orphans = job.orphans in
        job.orphans <- [];
        Mutex.unlock pool.mutex;
        let t0 = now () in
        List.iter (fun i -> job.run i ~fate:`Run) orphans;
        let dt = now () -. t0 in
        Mutex.lock pool.mutex;
        pool.busy.(0) <- pool.busy.(0) +. dt;
        job.completed <- job.completed + List.length orphans;
        wait ()
      end
      else begin
        Condition.wait pool.finished pool.mutex;
        wait ()
      end
    in
    wait ();
    pool.job <- None;
    Mutex.unlock pool.mutex
  in
  if pool.size = 1 || n <= 1 then run_inline 0
  else if force_fanout || not (Atomic.get cost_gate) then fan_out 0
  else begin
    let gate = gate_factor *. pool.dispatch_overhead_s in
    if pool.eff <= 1 then begin
      (* Fan-out can only add overhead when there is one core. *)
      Atomic.incr g_inline;
      run_inline 0
    end
    else
      match est_s with
      | Some e when e <= gate ->
          Atomic.incr g_inline;
          run_inline 0
      | Some _ ->
          Atomic.incr g_fanout;
          fan_out 0
      | None ->
          (* Probe: spend up to one gate's worth of wall time inline,
             then extrapolate the remainder from the measured per-task
             cost. Small batches never leave the coordinator; a big
             batch pays at most [gate] before going wide. *)
          let t0 = now () in
          let i = ref 0 in
          while !i < n && now () -. t0 < gate do
            run_one !i;
            incr i
          done;
          let dt = now () -. t0 in
          Mutex.lock pool.mutex;
          pool.busy.(0) <- pool.busy.(0) +. dt;
          Mutex.unlock pool.mutex;
          if !i >= n then Atomic.incr g_inline
          else begin
            let per_task = dt /. float_of_int !i in
            let rest = n - !i in
            if rest >= 2 && float_of_int rest *. per_task > gate then begin
              Atomic.incr g_fanout;
              fan_out !i
            end
            else begin
              Atomic.incr g_inline;
              run_inline !i
            end
          end
  end;
  (* Inline retry of failed tasks: an injected or otherwise transient
     exception recovers here; a deterministic one fails again and is
     reported. Tasks must therefore be effect-free or idempotent. *)
  Array.iteri
    (fun i slot ->
      match slot with
      | Some (Error _) -> exec i ~fate:`Run
      | Some (Ok _) -> ()
      | None -> assert false (* every index was run, skipped, or rescued *))
    slots;
  Array.map (function Some r -> r | None -> assert false) slots

(* One fan-out of trivial tasks measures the pool's fixed dispatch cost;
   the minimum over a handful of runs discards scheduler noise (and the
   first run's domain-startup latency). Skipped under an active fault
   schedule — the measurement's task claims would shift the
   deterministic injection points of the actual workload. *)
let measure_dispatch_overhead pool =
  let tasks = Array.make (4 * pool.size) () in
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = now () in
    ignore
      (run_all ~force_fanout:true pool (fun () -> ()) tasks
        : (unit, exn * Printexc.raw_backtrace) result array);
    let dt = now () -. t0 in
    if dt < !best then best := dt
  done;
  max !best 1e-5

let () = calibrator := measure_dispatch_overhead

let create requested =
  let size = max 1 requested in
  make_pool size

let map_array_result ?guard ?est_s pool f tasks =
  if Array.length tasks = 0 then [||] else run_all ?guard ?est_s pool f tasks

let errors_of_slots slots =
  Array.to_list slots
  |> List.mapi (fun i slot -> (i, slot))
  |> List.filter_map (function
       | i, Error (e, bt) -> Some (i, e, bt)
       | _, Ok _ -> None)

let map_array ?guard ?est_s pool f tasks =
  let slots = map_array_result ?guard ?est_s pool f tasks in
  let errors = errors_of_slots slots in
  if errors <> [] then raise (Task_errors errors);
  Array.map (function Ok r -> r | Error _ -> assert false) slots

let map_list ?guard ?est_s pool f l =
  Array.to_list (map_array ?guard ?est_s pool f (Array.of_list l))

let exists ?guard ?est_s pool pred tasks =
  if
    pool.size = 1
    || Array.length tasks < 2
    || (Atomic.get cost_gate && pool.eff <= 1)
    (* On one core the sequential scan strictly dominates: same verdict,
       true early exit, no dispatch. *)
  then Array.exists pred tasks
  else begin
    let found = Atomic.make false in
    let slots =
      run_all ?guard ?est_s pool
        ~stop:(fun () -> Atomic.get found)
        ~skip:(fun () -> ())
        (fun x ->
          if (not (Atomic.get found)) && pred x then Atomic.set found true)
        tasks
    in
    let errors = errors_of_slots slots in
    if errors <> [] then raise (Task_errors errors);
    Atomic.get found
  end

let filter_list ?guard ?est_s pool pred l =
  if pool.size = 1 then List.filter pred l
  else
    let arr = Array.of_list l in
    let keep = map_array ?guard ?est_s pool pred arr in
    let out = ref [] in
    for i = Array.length arr - 1 downto 0 do
      if keep.(i) then out := arr.(i) :: !out
    done;
    !out

let busy_times pool =
  Mutex.lock pool.mutex;
  let copy = Array.copy pool.busy in
  Mutex.unlock pool.mutex;
  copy

let reset_busy pool =
  Mutex.lock pool.mutex;
  Array.fill pool.busy 0 (Array.length pool.busy) 0.;
  Mutex.unlock pool.mutex

(* ------------------------------------------------------------------ *)
(* Default pool plumbing (-j N / FRONTIER_JOBS)                        *)
(* ------------------------------------------------------------------ *)

let jobs_from_env () =
  match Sys.getenv_opt "FRONTIER_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some n ->
          Printf.eprintf
            "frontier: warning: FRONTIER_JOBS=%d is not positive; using 1\n%!"
            n;
          1
      | None ->
          Printf.eprintf
            "frontier: warning: FRONTIER_JOBS=%S is not an integer; using 1\n%!"
            s;
          1)

let default_size = ref None
let default_pool = ref None

let default_jobs () =
  match !default_size with
  | Some n -> n
  | None ->
      let n = jobs_from_env () in
      default_size := Some n;
      n

let set_default_jobs n =
  let n = max 1 n in
  (match !default_pool with Some p -> shutdown p | None -> ());
  default_pool := None;
  default_size := Some n

let get_default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create (default_jobs ()) in
      default_pool := Some p;
      p

(* ------------------------------------------------------------------ *)
(* Test hooks                                                          *)
(* ------------------------------------------------------------------ *)

module Internal = struct
  let shard_bounds = shard_bounds
  let probe_order = probe_order
end

(** A work-stealing pool of OCaml 5 domains, hardened for degraded-mode
    operation.

    The pool executes arrays of independent tasks. A job slices the index
    range into one contiguous shard per worker; each worker drains its own
    shard through a private atomic cursor (the hot path is an uncontended
    fetch-and-add) and steals round-robin from the other shards only when
    its own runs dry. Because a shard cursor only moves forward, "every
    shard is dry" is a stable condition, so no index can be lost to a
    scheduling race — including the shard of a worker that died mid-job,
    which the survivors steal like any other. Results are written into
    per-index slots, so the merged output is in task order regardless of
    which domain ran what. This is what makes the parallel chase and
    rewriting saturation deterministic: callers fix a task order, and the
    pool guarantees the merged result is as if the tasks ran sequentially
    in that order (provided tasks are independent).

    A pool of size 1 never spawns domains and runs everything inline in the
    caller, so [~pool:(Pool.create 1)] is observationally the sequential
    code path.

    Failure containment: a task that raises does {e not} poison the batch.
    Its per-index slot records the exception with its backtrace, every
    other task still runs, the coordinator retries each failed index once
    inline (recovering transient and injected faults), and only then are
    the surviving failures aggregated into a single {!Task_errors}. A
    worker "killed" by the fault-injection schedule ({!Guard.Faults})
    abandons only the index it had already claimed — rescued inline by the
    coordinator — while the unclaimed remainder of its shard is stolen by
    the surviving workers; at pool size 1 all of this degenerates to plain
    sequential execution. Because failed or orphaned tasks may be
    re-executed, tasks must be effect-free or idempotent.

    Tasks must not themselves call into the same pool (no nesting), and the
    shared structures they read must be published before [map_array] is
    called (the job hand-off is a memory barrier: anything written by the
    caller before [map_array] is visible to the workers). *)

exception Task_errors of (int * exn * Printexc.raw_backtrace) list
(** All task failures of one batch — [(task index, exception, backtrace)],
    sorted by task index. Raised by {!map_array} (and its derivatives)
    after the barrier, once every task has run and each failed one has
    been retried inline. *)

type t

val sequential : t
(** The shared size-1 pool: inline execution, no domains. Note that its
    {!busy_times} accumulate across every caller in the process; library
    entry points that want per-run accounting should default to a private
    [create 1] instead. *)

val create : int -> t
(** [create n] makes a pool of [n - 1] worker domains (the caller
    participates as worker 0 during [map_array]). [n] is clamped below
    at 1. The domains themselves are spawned lazily, on the first batch
    the cost gate actually fans out — a pool that stays inline (always
    the case at effective parallelism 1) never spawns any, so idle
    workers never tax the runtime's stop-the-world collections. Pools
    are long-lived; create one per process or per [-j] setting, not per
    call. [create 1] never spawns and is cheap enough to make per run. *)

val size : t -> int

val shutdown : t -> unit
(** Terminate and join the worker domains. The pool must not be used
    afterwards. Idempotent. *)

val map_array :
  ?guard:Guard.t -> ?est_s:float -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic output order. If tasks raise,
    the remaining tasks still run, failed indices are retried inline, and
    the surviving failures are re-raised together as {!Task_errors} after
    the barrier. With [?guard], workers stop claiming new tasks once the
    guard is cancelled; the coordinator finishes the remaining tasks
    inline (guard-aware task bodies early-exit at their own checkpoints),
    so the call always returns. Must be called from the thread that
    created the pool (the coordinator), never from inside a task.

    [?est_s] is the caller's estimate of the batch's whole sequential
    cost in seconds, consumed by the cost gate (see {!set_cost_gate}):
    an estimate below the gate threshold skips both the fan-out and the
    gate's own probe phase; a large one fans out immediately. *)

val map_array_result :
  ?guard:Guard.t ->
  ?est_s:float ->
  t ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn * Printexc.raw_backtrace) result array
(** Degraded-mode variant of {!map_array}: never raises {!Task_errors};
    each persistent per-task failure stays in its slot as [Error]. *)

val map_list :
  ?guard:Guard.t -> ?est_s:float -> t -> ('a -> 'b) -> 'a list -> 'b list

val exists :
  ?guard:Guard.t -> ?est_s:float -> t -> ('a -> bool) -> 'a array -> bool
(** Parallel existential check with a genuine early exit: once a witness
    is found, workers stop claiming tasks and every remaining index is
    resolved as a no-op without invoking the predicate. The boolean
    result is deterministic (it does not depend on scheduling); the set
    of predicate invocations is not, but is bounded by the tasks claimed
    before the witness was published. At effective parallelism 1 (with
    the cost gate on) this is a plain sequential [Array.exists]. *)

val filter_list :
  ?guard:Guard.t -> ?est_s:float -> t -> ('a -> bool) -> 'a list -> 'a list
(** Parallel filter preserving list order. *)

(** {1 Cost-gated fan-out}

    Dispatching a job to the workers costs a fixed overhead — posting,
    wake-ups, the completion handshake — measured per pool by a one-shot
    microbenchmark when its workers first spawn
    ({!dispatch_overhead_s}). The cost gate
    compares each batch against a small multiple of that overhead and
    runs cheap batches inline on the coordinator: with no [?est_s] hint
    it {e probes} (runs tasks inline for up to one threshold's worth of
    wall time, then fans out the remainder iff its extrapolated cost
    also clears the threshold). On a machine whose core count makes the
    pool's parallelism nominal ([min size cores = 1]) nothing is ever
    fanned out. The gate changes scheduling only — every client's
    cross-[-j] determinism contract is unaffected, because inline
    execution is exactly the size-1 code path. *)

val set_cost_gate : bool -> unit
(** Process-wide A/B switch, default [true]. [set_cost_gate false]
    restores unconditional fan-out — the scheduler's steal/death-path
    tests rely on it, and it is the honest baseline arm when
    benchmarking the gate itself. *)

val dispatch_overhead_s : t -> float
(** The measured fixed cost of one fan-out through this pool, in
    seconds. Size-1 pools, pools that have never fanned a batch out, and
    pools whose workers first spawned under an active fault-injection
    schedule (where the microbenchmark would shift the deterministic
    claim numbering) report a conservative default. *)

val effective_size : t -> int
(** [min size cores] while the cost gate is on — how many tasks can
    actually run at once. Saturation clients that widen their round
    batches with the pool should widen with this, not {!size}: a
    4-domain pool on a 1-core box gains nothing from coarser rounds and
    should keep the [-j1] schedule. Falls back to {!size} when the gate
    is off. *)

type gate_counters = {
  inline_batches : int;
      (** batches the gate kept on the coordinator (including probes
          that exhausted the batch) *)
  fanout_batches : int;  (** batches the gate sent to the workers *)
}

val gate_counters : unit -> gate_counters
(** Process-wide tallies of gate decisions — only batches where fan-out
    was possible (pool size > 1, at least 2 tasks, gate enabled) are
    counted. Thread-safe. *)

val reset_gate_counters : unit -> unit

val busy_times : t -> float array
(** Cumulative per-worker busy seconds (index 0 is the coordinator),
    accumulated across [map_array] calls since creation or the last
    [reset_busy]. Length equals [size]. *)

val reset_busy : t -> unit

(** {1 Job-count configuration}

    The conventional knobs behind [-j N] and the [FRONTIER_JOBS]
    environment variable. *)

val jobs_from_env : unit -> int
(** [FRONTIER_JOBS] parsed as a positive integer; 1 when unset. A
    malformed or non-positive value also maps to 1, but with a warning
    on stderr rather than silently. *)

val set_default_jobs : int -> unit
(** Override the default job count (e.g. from a [-j] flag); shuts down the
    previously materialized default pool, if any. *)

val default_jobs : unit -> int

val get_default : unit -> t
(** The process-wide pool, lazily created with [default_jobs ()] workers. *)

(** {1 Scheduler internals, exposed for the steal-path unit tests}

    Pure functions — no pool required. Not part of the stable API. *)
module Internal : sig
  val shard_bounds : n:int -> size:int -> (int * int) array
  (** The balanced contiguous [(lo, hi)] slices of [0, n) assigned to the
      [size] workers; slices concatenate to exactly [0, n). *)

  val probe_order : worker:int -> shards:int -> int list
  (** The order in which [worker] visits shards when claiming: its own
      shard first, then the victims round-robin — each shard exactly
      once (no self-steal). *)
end

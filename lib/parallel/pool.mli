(** A work-sharing pool of OCaml 5 domains.

    The pool executes arrays of independent tasks: workers claim task
    indices from a shared atomic counter (a degenerate work-stealing deque —
    every idle worker steals the next undone index), and results are written
    into per-index slots, so the merged output is in task order regardless
    of which domain ran what. This is what makes the parallel chase and
    rewriting saturation deterministic: callers fix a task order, and the
    pool guarantees the merged result is as if the tasks ran sequentially in
    that order (provided tasks are independent).

    A pool of size 1 never spawns domains and runs everything inline in the
    caller, so [~pool:(Pool.create 1)] is observationally the sequential
    code path.

    Tasks must not themselves call into the same pool (no nesting), and the
    shared structures they read must be published before [map_array] is
    called (the job hand-off is a memory barrier: anything written by the
    caller before [map_array] is visible to the workers). *)

type t

val sequential : t
(** The shared size-1 pool: inline execution, no domains, no locking. *)

val create : int -> t
(** [create n] spawns [n - 1] worker domains (the caller participates as
    worker 0 during [map_array]). [n] is clamped below at 1. Pools are
    long-lived; create one per process or per [-j] setting, not per call. *)

val size : t -> int

val shutdown : t -> unit
(** Terminate and join the worker domains. The pool must not be used
    afterwards. Idempotent. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic output order. If a task raises,
    the remaining tasks still run and one of the exceptions is re-raised in
    the caller after the barrier. Must be called from the thread that
    created the pool (the coordinator), never from inside a task. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val exists : t -> ('a -> bool) -> 'a array -> bool
(** Parallel existential check. Early-exits cooperatively: once a witness
    is found, not-yet-started tasks are skipped. The boolean result is
    deterministic (it does not depend on scheduling). *)

val filter_list : t -> ('a -> bool) -> 'a list -> 'a list
(** Parallel filter preserving list order. *)

val busy_times : t -> float array
(** Cumulative per-worker busy seconds (index 0 is the coordinator),
    accumulated across [map_array] calls since creation or the last
    [reset_busy]. Length equals [size]. *)

val reset_busy : t -> unit

(** {1 Job-count configuration}

    The conventional knobs behind [-j N] and the [FRONTIER_JOBS]
    environment variable. *)

val jobs_from_env : unit -> int
(** [FRONTIER_JOBS] parsed as a positive integer; 1 when unset or
    malformed. *)

val set_default_jobs : int -> unit
(** Override the default job count (e.g. from a [-j] flag); shuts down the
    previously materialized default pool, if any. *)

val default_jobs : unit -> int

val get_default : unit -> t
(** The process-wide pool, lazily created with [default_jobs ()] workers. *)

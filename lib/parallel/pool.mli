(** A work-stealing pool of OCaml 5 domains, hardened for degraded-mode
    operation.

    The pool executes arrays of independent tasks. A job slices the index
    range into one contiguous shard per worker; each worker drains its own
    shard through a private atomic cursor (the hot path is an uncontended
    fetch-and-add) and steals round-robin from the other shards only when
    its own runs dry. Because a shard cursor only moves forward, "every
    shard is dry" is a stable condition, so no index can be lost to a
    scheduling race — including the shard of a worker that died mid-job,
    which the survivors steal like any other. Results are written into
    per-index slots, so the merged output is in task order regardless of
    which domain ran what. This is what makes the parallel chase and
    rewriting saturation deterministic: callers fix a task order, and the
    pool guarantees the merged result is as if the tasks ran sequentially
    in that order (provided tasks are independent).

    A pool of size 1 never spawns domains and runs everything inline in the
    caller, so [~pool:(Pool.create 1)] is observationally the sequential
    code path.

    Failure containment: a task that raises does {e not} poison the batch.
    Its per-index slot records the exception with its backtrace, every
    other task still runs, the coordinator retries each failed index once
    inline (recovering transient and injected faults), and only then are
    the surviving failures aggregated into a single {!Task_errors}. A
    worker "killed" by the fault-injection schedule ({!Guard.Faults})
    abandons only the index it had already claimed — rescued inline by the
    coordinator — while the unclaimed remainder of its shard is stolen by
    the surviving workers; at pool size 1 all of this degenerates to plain
    sequential execution. Because failed or orphaned tasks may be
    re-executed, tasks must be effect-free or idempotent.

    Tasks must not themselves call into the same pool (no nesting), and the
    shared structures they read must be published before [map_array] is
    called (the job hand-off is a memory barrier: anything written by the
    caller before [map_array] is visible to the workers). *)

exception Task_errors of (int * exn * Printexc.raw_backtrace) list
(** All task failures of one batch — [(task index, exception, backtrace)],
    sorted by task index. Raised by {!map_array} (and its derivatives)
    after the barrier, once every task has run and each failed one has
    been retried inline. *)

type t

val sequential : t
(** The shared size-1 pool: inline execution, no domains. Note that its
    {!busy_times} accumulate across every caller in the process; library
    entry points that want per-run accounting should default to a private
    [create 1] instead. *)

val create : int -> t
(** [create n] spawns [n - 1] worker domains (the caller participates as
    worker 0 during [map_array]). [n] is clamped below at 1. Pools are
    long-lived; create one per process or per [-j] setting, not per call.
    [create 1] spawns nothing and is cheap enough to make per run. *)

val size : t -> int

val shutdown : t -> unit
(** Terminate and join the worker domains. The pool must not be used
    afterwards. Idempotent. *)

val map_array : ?guard:Guard.t -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] with deterministic output order. If tasks raise,
    the remaining tasks still run, failed indices are retried inline, and
    the surviving failures are re-raised together as {!Task_errors} after
    the barrier. With [?guard], workers stop claiming new tasks once the
    guard is cancelled; the coordinator finishes the remaining tasks
    inline (guard-aware task bodies early-exit at their own checkpoints),
    so the call always returns. Must be called from the thread that
    created the pool (the coordinator), never from inside a task. *)

val map_array_result :
  ?guard:Guard.t ->
  t ->
  ('a -> 'b) ->
  'a array ->
  ('b, exn * Printexc.raw_backtrace) result array
(** Degraded-mode variant of {!map_array}: never raises {!Task_errors};
    each persistent per-task failure stays in its slot as [Error]. *)

val map_list : ?guard:Guard.t -> t -> ('a -> 'b) -> 'a list -> 'b list

val exists : ?guard:Guard.t -> t -> ('a -> bool) -> 'a array -> bool
(** Parallel existential check with a genuine early exit: once a witness
    is found, workers stop claiming tasks and every remaining index is
    resolved as a no-op without invoking the predicate. The boolean
    result is deterministic (it does not depend on scheduling); the set
    of predicate invocations is not, but is bounded by the tasks claimed
    before the witness was published. *)

val filter_list : ?guard:Guard.t -> t -> ('a -> bool) -> 'a list -> 'a list
(** Parallel filter preserving list order. *)

val busy_times : t -> float array
(** Cumulative per-worker busy seconds (index 0 is the coordinator),
    accumulated across [map_array] calls since creation or the last
    [reset_busy]. Length equals [size]. *)

val reset_busy : t -> unit

(** {1 Job-count configuration}

    The conventional knobs behind [-j N] and the [FRONTIER_JOBS]
    environment variable. *)

val jobs_from_env : unit -> int
(** [FRONTIER_JOBS] parsed as a positive integer; 1 when unset. A
    malformed or non-positive value also maps to 1, but with a warning
    on stderr rather than silently. *)

val set_default_jobs : int -> unit
(** Override the default job count (e.g. from a [-j] flag); shuts down the
    previously materialized default pool, if any. *)

val default_jobs : unit -> int

val get_default : unit -> t
(** The process-wide pool, lazily created with [default_jobs ()] workers. *)

(** {1 Scheduler internals, exposed for the steal-path unit tests}

    Pure functions — no pool required. Not part of the stable API. *)
module Internal : sig
  val shard_bounds : n:int -> size:int -> (int * int) array
  (** The balanced contiguous [(lo, hi)] slices of [0, n) assigned to the
      [size] workers; slices concatenate to exactly [0, n). *)

  val probe_order : worker:int -> shards:int -> int list
  (** The order in which [worker] visits shards when claiming: its own
      shard first, then the victims round-robin — each shard exactly
      once (no self-steal). *)
end

(** The process-wide resource governor.

    Every core procedure of this reproduction is a {e semi-decision}
    procedure: the Skolem chase need not terminate (Definition 6), core
    termination checks are budgeted by construction (Observation 27), and
    Theorems 5-6 build theories whose smallest rewritings are (K-fold)
    exponentially large — so "ran out of resources" is a first-class,
    paper-sanctioned outcome, not an error. A [Guard.t] is the single
    account those procedures draw on: a wall-clock deadline, an
    atom/step fuel budget, a live-word memory ceiling (sampled through
    [Gc.quick_stat] at checkpoints), and a cooperative cancellation
    token that the coordinator, a sibling task, or a Unix signal handler
    can flip.

    Long-running loops call {!check} (or {!spend}) at their checkpoints —
    once per chase-stage sweep and every {!poll_mask}+1 trigger
    enumerations inside a sweep, once per rewriting worklist step, once
    per marked-process step, once per core-fold candidate. A tripped
    guard is {e sticky}: every later checkpoint reports the same cause,
    so a trip observed by one worker domain is seen by all of them and
    by the coordinator. Checkpoints are safe to call concurrently from
    multiple domains.

    The contract a trip buys ("what does [Exhausted] guarantee?"): a
    procedure that observes a trip abandons only {e unfinished} work —
    the partial result it returns is a sound prefix of the fault-free
    computation (chase stages [Ch_0 .. Ch_i] exactly, a subset of the
    saturated rewriting UCQ, ...), never a corrupted or speculative
    state. The differential fault-injection suite in
    [test/test_properties.ml] checks exactly this. *)

type cause =
  | Deadline  (** the wall-clock deadline passed *)
  | Fuel  (** the atom/step fuel account ran dry *)
  | Memory  (** [Gc.quick_stat] sampled more live words than the ceiling *)
  | Cancelled  (** the cancellation token was flipped *)

val pp_cause : Format.formatter -> cause -> unit
val cause_to_string : cause -> string

type counters = {
  checkpoints : int;  (** guard checkpoints passed so far *)
  fuel_spent : int;  (** fuel units drawn through {!spend} *)
  elapsed_s : float;  (** wall-clock seconds since {!create} *)
  peak_heap_words : int;
      (** largest [Gc.quick_stat].heap_words observed at a memory-sampling
          checkpoint (0 when no ceiling was set: unmetered runs skip the
          sampling) *)
}

(** The one outcome type every long-running entry point derives:
    ['a] is the completed result, ['p] the partial state salvaged at a
    trip. The bespoke [Engine.hit_atom_budget], [Termination.
    Budget_exhausted] and [Entailment.Unknown] signals are derived views
    of this. *)
type ('a, 'p) outcome =
  | Complete of 'a
  | Exhausted of { partial : 'p; cause : cause; progress : counters }

type t

val create :
  ?deadline_s:float ->
  ?fuel:int ->
  ?max_heap_words:int ->
  ?cancel:bool Atomic.t ->
  unit ->
  t
(** [create ()] is an unlimited guard (it can still be {!cancel}ed, and
    still honours injected {!Faults}). [deadline_s] is a relative budget
    in seconds from now; [fuel] an initial fuel balance drawn down by
    {!spend}; [max_heap_words] a live-word ceiling checked against
    [Gc.quick_stat] heap words every {!mem_mask}+1 checkpoints.
    [cancel] lets several guards share one cancellation token (the CLI
    installs its SIGINT handler on such a shared token). *)

val unlimited : unit -> t
(** A fresh guard with no deadline, fuel, or memory ceiling. *)

val cancel : t -> unit
(** Flip the cancellation token. Cooperative: running work stops at its
    next checkpoint. Idempotent; safe from signal handlers and sibling
    domains. *)

val cancelled : t -> bool

val check : t -> cause option
(** The checkpoint. [None]: keep going. [Some cause]: stop, salvage the
    partial state, report [Exhausted]. Sticky — once tripped, every
    subsequent check returns the same cause. *)

val spend : t -> int -> cause option
(** [spend g n] draws [n] fuel units, then behaves as [check g]; the
    guard trips with {!Fuel} when the balance goes negative. With no
    fuel budget, equivalent to [check g]. *)

val status : t -> cause option
(** The sticky trip state, without performing a checkpoint (no counter
    movement, no sampling). *)

val progress : t -> counters

val outcome : t -> complete:'a -> partial:'p -> ('a, 'p) outcome
(** Package a result: [Complete complete] if the guard never tripped,
    otherwise [Exhausted] with the trip cause and current counters. *)

val poll_mask : int
(** Inner-loop checkpoint spacing: callers in per-trigger/per-candidate
    loops call [check] only when [count land poll_mask = 0], giving
    checkpoints every 64 iterations — fine enough that a 1 ms deadline
    on an exponential chase stage returns in well under a second. *)

val mem_mask : int
(** A memory-ceiling guard samples [Gc.quick_stat] every [mem_mask]+1
    checkpoints (every 32nd). *)

(** {1 Deterministic fault injection}

    A seeded, process-wide schedule of synthetic failures, consulted by
    {!check} and by [Parallel.Pool] task claims. Everything is derived
    from one integer seed (the [FRONTIER_FAULTS] environment variable,
    or {!Faults.install} directly), so a failing run is replayable. The
    injected faults:

    {ul
    {- {e task exceptions}: a pool task raises [Injected_fault] at its
       claim — exercising the [Task_errors] aggregation path;}
    {- {e worker death}: a worker domain abandons its claimed index and
       stops claiming — exercising orphan redistribution (at pool size 1
       the coordinator never dies; the schedule degrades to inline
       sequential execution);}
    {- {e simulated deadline/memory trips}: a guard checkpoint trips as
       if the deadline had passed or the ceiling been hit — exercising
       every [Exhausted] salvage path without waiting for real
       exhaustion;}
    {- {e IO faults} (consulted by the [Checkpoint] snapshot layer, never
       by compute paths): a snapshot write is torn short before the
       rename, an fsync fails as if the disk were full ([ENOSPC]), or a
       snapshot read returns corrupted bytes — exercising the
       checksum-validation and degradation ladder without real disk
       failures.}} *)
module Faults : sig
  exception Injected_fault of int
  (** Raised by a pool task whose claim the schedule selected; the
      payload is the process-wide claim number. *)

  type schedule

  val none : schedule
  (** The empty schedule: no injection (the production default). *)

  val of_seed : int -> schedule
  (** Deterministically derive a schedule from a seed: the seed's low
      bits select which fault kinds are active and the injection periods
      (every k-th claim raises / every m-th claim dies / the n-th
      checkpoint trips). Seed 0 is {!none}. *)

  val from_env : unit -> schedule
  (** [FRONTIER_FAULTS] parsed as an integer seed; {!none} when unset
      or malformed. *)

  val with_io :
    ?torn_every:int ->
    ?fsync_fail_every:int ->
    ?corrupt_every:int ->
    schedule ->
    schedule
  (** Override the schedule's IO-fault periods explicitly (the
      checkpoint test-suite's precision knob): every [torn_every]-th
      snapshot write is torn short, every [fsync_fail_every]-th fsync
      raises [ENOSPC], every [corrupt_every]-th snapshot read is
      corrupted. Omitted arguments keep the schedule's derived values. *)

  val install : schedule -> unit
  (** Make the schedule current, resetting the process-wide claim and
      checkpoint counters (so runs are replayable). [install none]
      turns injection off. *)

  val current : unit -> schedule
  val active : unit -> bool

  val describe : schedule -> string
  (** Human-readable summary of what the schedule injects. *)

  (** {2 Hooks (used by [Guard.check] and [Parallel.Pool])} *)

  val claim_fate : worker:int -> [ `Run | `Raise of int | `Die ]
  (** Consulted once per pool task claim. [`Raise k] directs the task
      wrapper to raise [Injected_fault k]; [`Die] directs a non-zero
      worker to abandon the claim and stop (the coordinator, worker 0,
      never dies — it is the rescue path). *)

  val forced_trip : unit -> cause option
  (** Consulted once per guard checkpoint: [Some Deadline] / [Some
      Memory] when the schedule trips this checkpoint. *)

  val io_fate : [ `Write | `Fsync | `Read ] -> [ `Ok | `Torn | `Enospc | `Corrupt ]
  (** Consulted once per checkpoint-layer IO operation, on a counter of
      its own (compute-path checkpoints never move it). [`Torn] directs
      a snapshot write to truncate its payload before the rename (a
      simulated torn write — the file lands, its checksum does not
      verify); [`Enospc] directs the fsync to fail as if the device
      were full (the snapshot write is abandoned, the run continues);
      [`Corrupt] directs a snapshot read to flip a byte before
      validation. Faults only fire on the matching operation kind. *)
end

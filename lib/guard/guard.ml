(* The process-wide resource governor: one account for wall-clock,
   fuel, memory and cancellation, drawn on by every semi-decision
   procedure in the codebase. See guard.mli for the contract.

   Everything a worker domain touches is an Atomic: checkpoints are
   called concurrently from inside pool tasks, and a trip observed by
   one domain must be visible to all of them. The trip cell is
   compare-and-set so the *first* cause wins and stays put (sticky). *)

type cause = Deadline | Fuel | Memory | Cancelled

let cause_to_string = function
  | Deadline -> "deadline"
  | Fuel -> "fuel"
  | Memory -> "memory"
  | Cancelled -> "cancelled"

let pp_cause fmt c = Format.pp_print_string fmt (cause_to_string c)

type counters = {
  checkpoints : int;
  fuel_spent : int;
  elapsed_s : float;
  peak_heap_words : int;
}

type ('a, 'p) outcome =
  | Complete of 'a
  | Exhausted of { partial : 'p; cause : cause; progress : counters }

(* Trip state coded as an int so a single CAS decides the cause:
   0 = running, 1..4 = tripped. *)
let code_of_cause = function
  | Deadline -> 1
  | Fuel -> 2
  | Memory -> 3
  | Cancelled -> 4

let cause_of_code = function
  | 1 -> Deadline
  | 2 -> Fuel
  | 3 -> Memory
  | 4 -> Cancelled
  | _ -> invalid_arg "Guard.cause_of_code"

type t = {
  deadline : float option;  (* absolute gettimeofday *)
  max_heap_words : int option;
  fuel_limit : int option;
  fuel : int Atomic.t;  (* remaining balance; may go negative at the trip *)
  fuel_spent : int Atomic.t;
  cancel_token : bool Atomic.t;
  tripped : int Atomic.t;
  checkpoints : int Atomic.t;
  peak_heap : int Atomic.t;
  born : float;
}

let poll_mask = 63
let mem_mask = 31

let create ?deadline_s ?fuel ?max_heap_words ?cancel () =
  let now = Unix.gettimeofday () in
  {
    deadline = Option.map (fun s -> now +. s) deadline_s;
    max_heap_words;
    fuel_limit = fuel;
    fuel = Atomic.make (Option.value ~default:max_int fuel);
    fuel_spent = Atomic.make 0;
    cancel_token =
      (match cancel with Some token -> token | None -> Atomic.make false);
    tripped = Atomic.make 0;
    checkpoints = Atomic.make 0;
    peak_heap = Atomic.make 0;
    born = now;
  }

let unlimited () = create ()

let cancel g = Atomic.set g.cancel_token true
let cancelled g = Atomic.get g.cancel_token

let status g =
  match Atomic.get g.tripped with
  | 0 -> None
  | code -> Some (cause_of_code code)

(* First cause wins; later trips (e.g. a cancellation racing a deadline
   observed on another domain) keep the original verdict. *)
let trip g cause =
  ignore (Atomic.compare_and_set g.tripped 0 (code_of_cause cause));
  Some (cause_of_code (Atomic.get g.tripped))

let progress g =
  {
    checkpoints = Atomic.get g.checkpoints;
    fuel_spent = Atomic.get g.fuel_spent;
    elapsed_s = Unix.gettimeofday () -. g.born;
    peak_heap_words = Atomic.get g.peak_heap;
  }

let outcome g ~complete ~partial =
  match status g with
  | None -> Complete complete
  | Some cause -> Exhausted { partial; cause; progress = progress g }

(* ------------------------------------------------------------------ *)
(* Deterministic fault injection                                       *)
(* ------------------------------------------------------------------ *)

module Faults = struct
  exception Injected_fault of int

  type schedule = {
    seed : int;
    raise_period : int option;  (* every k-th pool claim raises *)
    die_period : int option;  (* every m-th claim: the worker dies *)
    trip_period : int option;  (* every n-th guard checkpoint trips *)
    trip_cause : cause;
    (* IO faults, consulted only by the checkpoint snapshot layer (their
       counter is separate from claims/checks, so adding them never
       perturbs the compute-path schedules of existing seeds). *)
    torn_period : int option;  (* every k-th snapshot write is torn *)
    fsync_fail_period : int option;  (* every m-th fsync raises ENOSPC *)
    corrupt_period : int option;  (* every n-th snapshot read corrupts *)
  }

  let none =
    {
      seed = 0;
      raise_period = None;
      die_period = None;
      trip_period = None;
      trip_cause = Deadline;
      torn_period = None;
      fsync_fail_period = None;
      corrupt_period = None;
    }

  (* splitmix-style avalanche; the derivation only needs well-spread
     bits, not cryptographic quality. *)
  let mix x =
    let x = x * 0x1E3779B97F4A7C15 in
    let x = x lxor (x lsr 30) in
    let x = x * 0x3F58476D1CE4E5B9 in
    let x = x lxor (x lsr 27) in
    x land max_int

  let of_seed seed =
    if seed = 0 then none
    else
      let h k = mix (seed + (k * 0x1000003)) in
      (* 1..7: a nonempty subset of {raise, die, trip}. *)
      let kinds = 1 + (h 0 mod 7) in
      {
        seed;
        raise_period =
          (if kinds land 1 <> 0 then Some (2 + (h 1 mod 9)) else None);
        die_period =
          (if kinds land 2 <> 0 then Some (2 + (h 2 mod 9)) else None);
        trip_period =
          (if kinds land 4 <> 0 then Some (5 + (h 3 mod 50)) else None);
        trip_cause = (if h 4 land 1 = 0 then Deadline else Memory);
        (* IO faults draw on fresh hash lanes (h 5..h 8): existing seeds
           keep their historical compute-fault schedules bit-for-bit. A
           nonempty subset of {torn, fsync, corrupt} is active. *)
        torn_period =
          (let io_kinds = 1 + (h 5 mod 7) in
           if io_kinds land 1 <> 0 then Some (2 + (h 6 mod 5)) else None);
        fsync_fail_period =
          (let io_kinds = 1 + (h 5 mod 7) in
           if io_kinds land 2 <> 0 then Some (2 + (h 7 mod 5)) else None);
        corrupt_period =
          (let io_kinds = 1 + (h 5 mod 7) in
           if io_kinds land 4 <> 0 then Some (2 + (h 8 mod 5)) else None);
      }

  let with_io ?torn_every ?fsync_fail_every ?corrupt_every s =
    let pick override current =
      match override with
      | Some p -> if p <= 0 then None else Some p
      | None -> current
    in
    {
      s with
      torn_period = pick torn_every s.torn_period;
      fsync_fail_period = pick fsync_fail_every s.fsync_fail_period;
      corrupt_period = pick corrupt_every s.corrupt_period;
    }

  let from_env () =
    match Sys.getenv_opt "FRONTIER_FAULTS" with
    | None -> none
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some seed -> of_seed seed
        | None -> none)

  (* The installed schedule plus process-wide claim / checkpoint
     counters. The counters restart at [install] so a given seed
     replays the same fault positions. *)
  let state = Atomic.make none
  let claims = Atomic.make 0
  let checks = Atomic.make 0
  let io_ops = Atomic.make 0

  let install schedule =
    Atomic.set claims 0;
    Atomic.set checks 0;
    Atomic.set io_ops 0;
    Atomic.set state schedule

  let current () = Atomic.get state
  let active () = (Atomic.get state).seed <> 0

  let describe s =
    let parts =
      List.filter_map Fun.id
        [
             Option.map
               (Printf.sprintf "task exception every %d claims")
               s.raise_period;
             Option.map
               (Printf.sprintf "worker death every %d claims")
               s.die_period;
             Option.map
               (fun p ->
                 Printf.sprintf "forced %s trip every %d checkpoints"
                   (cause_to_string s.trip_cause)
                   p)
               s.trip_period;
             Option.map
               (Printf.sprintf "torn snapshot write every %d IO writes")
               s.torn_period;
             Option.map
               (Printf.sprintf "ENOSPC fsync every %d IO fsyncs")
               s.fsync_fail_period;
          Option.map
            (Printf.sprintf "corrupt snapshot read every %d IO reads")
            s.corrupt_period;
        ]
    in
    if parts = [] then "no fault injection" else String.concat ", " parts

  let claim_fate ~worker =
    let s = Atomic.get state in
    if s.seed = 0 then `Run
    else
      let n = 1 + Atomic.fetch_and_add claims 1 in
      let hits = function Some p -> n mod p = 0 | None -> false in
      if hits s.raise_period then `Raise n
      else if hits s.die_period && worker > 0 then `Die
      else `Run

  let forced_trip () =
    let s = Atomic.get state in
    if s.seed = 0 then None
    else
      let n = 1 + Atomic.fetch_and_add checks 1 in
      match s.trip_period with
      | Some p when n mod p = 0 -> Some s.trip_cause
      | Some _ | None -> None

  (* One tick per checkpoint-layer IO operation, whatever its kind: a
     schedule's periods land on a shared deterministic counter, and a
     fault only fires when its period hits on an operation of the
     matching kind. Compute-path checkpoints never move this counter. *)
  let io_fate kind =
    let s = Atomic.get state in
    if
      s.torn_period = None && s.fsync_fail_period = None
      && s.corrupt_period = None
    then `Ok
    else
      let n = 1 + Atomic.fetch_and_add io_ops 1 in
      let hits = function Some p -> n mod p = 0 | None -> false in
      match kind with
      | `Write -> if hits s.torn_period then `Torn else `Ok
      | `Fsync -> if hits s.fsync_fail_period then `Enospc else `Ok
      | `Read -> if hits s.corrupt_period then `Corrupt else `Ok
end

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let check g =
  match status g with
  | Some _ as tripped -> tripped
  | None -> (
      let n = Atomic.fetch_and_add g.checkpoints 1 in
      if Atomic.get g.cancel_token then trip g Cancelled
      else
        match Faults.forced_trip () with
        | Some cause -> trip g cause
        | None -> (
            match g.deadline with
            | Some d when Unix.gettimeofday () > d -> trip g Deadline
            | _ -> (
                match g.max_heap_words with
                | Some ceiling when n land mem_mask = 0 ->
                    let words = (Gc.quick_stat ()).Gc.heap_words in
                    let rec raise_peak () =
                      let seen = Atomic.get g.peak_heap in
                      if
                        words > seen
                        && not
                             (Atomic.compare_and_set g.peak_heap seen words)
                      then raise_peak ()
                    in
                    raise_peak ();
                    if words > ceiling then trip g Memory else None
                | _ -> None)))

let spend g n =
  if n < 0 then invalid_arg "Guard.spend: negative amount";
  ignore (Atomic.fetch_and_add g.fuel_spent n);
  match g.fuel_limit with
  | None -> check g
  | Some _ ->
      let remaining = Atomic.fetch_and_add g.fuel (-n) - n in
      if remaining < 0 then trip g Fuel else check g

open Logic

type t = {
  original : Theory.t;
  t_ii : Theory.t;
  t_iii : Theory.t;
  t_nf : Theory.t;
  nullary : Symbol.Set.t;
}

(* Registry of nullary predicates: one [M_phi] per isomorphism class of the
   separated body fragment [phi]. *)
type m_registry = {
  mutable entries : (Cq.t option * Symbol.t) list;
      (* [None] is the empty fragment, [M_emptyset]. *)
  mutable count : int;
}

let m_symbol registry phi_atoms =
  let found =
    List.find_opt
      (fun (repr, _) ->
        match (repr, phi_atoms) with
        | None, [] -> true
        | Some cq, _ :: _ ->
            Containment.isomorphic cq (Cq.make ~free:[] phi_atoms)
        | None, _ :: _ | Some _, [] -> false)
      registry.entries
  in
  match found with
  | Some (_, sym) -> sym
  | None ->
      registry.count <- registry.count + 1;
      let sym =
        Symbol.make (Printf.sprintf "M_%d" registry.count) ~arity:0
      in
      let repr =
        match phi_atoms with [] -> None | _ :: _ -> Some (Cq.make ~free:[] phi_atoms)
      in
      registry.entries <- (repr, sym) :: registry.entries;
      sym

(* Split a body into the connected part containing the frontier and the
   leftover fragment. Atoms without variables join the leftover. *)
let separate_body rule =
  let body = Tgd.body rule in
  let fr = Term.Set.of_list (Tgd.frontier rule) in
  let gaifman = Gaifman.of_atoms body in
  let in_frontier_component atom =
    match Atom.vars atom with
    | [] -> false
    | vs ->
        Term.Set.exists
          (fun f ->
            List.exists
              (fun v ->
                Term.equal v f || Gaifman.same_component gaifman v f)
              vs)
          fr
  in
  List.partition in_frontier_component body

let body_rewritings ?guard ?budget theory rule =
  match Tgd.body_cq rule with
  | None -> if Tgd.body rule = [] then Some [ [] ] else None
  | Some cq -> (
      let r = Rewriting.Rewrite.rewrite ?guard ?budget theory cq in
      match r.Rewriting.Rewrite.outcome with
      | Rewriting.Rewrite.Complete ->
          Some (List.map Cq.atoms (Ucq.disjuncts r.Rewriting.Rewrite.ucq))
      | _ -> None)

let normalize ?guard ?budget theory =
  let existential = Theory.existential_rules theory in
  if List.exists (fun r -> Tgd.dom_vars r <> []) (Theory.rules theory) then
    None
  else
    let registry = { entries = []; count = 0 } in
    (* STEP ONE: rewrite the bodies of the existential rules. *)
    let t_i =
      List.fold_left
        (fun acc rule ->
          match acc with
          | None -> None
          | Some rules -> (
              match body_rewritings ?guard ?budget theory rule with
              | None -> None
              | Some bodies ->
                  Some
                    (rules
                    @ List.mapi
                        (fun i body ->
                          Tgd.make
                            ~name:(Printf.sprintf "%s~%d" (Tgd.name rule) i)
                            ~body ~head:(Tgd.head rule) ())
                        bodies)))
        (Some []) existential
    in
    match t_i with
    | None -> None
    | Some t_i ->
        (* STEP TWO: separate; STEP THREE: prove the nullary predicates. *)
        let t_ii_rules = ref [] in
        let sep_m_rules = ref [] in
        List.iter
          (fun rule ->
            let beta, phi = separate_body rule in
            let m = m_symbol registry phi in
            let m_atom = Atom.make m [] in
            t_ii_rules :=
              Tgd.make
                ~name:(Tgd.name rule ^ "#cc")
                ~body:(beta @ [ m_atom ])
                ~head:(Tgd.head rule) ()
              :: !t_ii_rules;
            sep_m_rules :=
              Tgd.make ~name:(Tgd.name rule ^ "#m") ~body:phi
                ~head:[ m_atom ] ()
              :: !sep_m_rules)
          t_i;
        (* Dedup the sep_M rules (many rules share the empty fragment). *)
        let sep_m_unique =
          List.sort_uniq
            (fun r1 r2 ->
              compare
                (Fmt.str "%a" Tgd.pp r1)
                (Fmt.str "%a" Tgd.pp r2))
            !sep_m_rules
        in
        let t_iii =
          List.fold_left
            (fun acc rule ->
              match acc with
              | None -> None
              | Some rules -> (
                  match body_rewritings ?guard ?budget theory rule with
                  | None -> None
                  | Some bodies ->
                      Some
                        (rules
                        @ List.mapi
                            (fun i body ->
                              Tgd.make
                                ~name:
                                  (Printf.sprintf "%s~%d" (Tgd.name rule) i)
                                ~body ~head:(Tgd.head rule) ())
                            bodies)))
            (Some []) sep_m_unique
        in
        (match t_iii with
        | None -> None
        | Some t_iii_rules ->
            let t_ii = Theory.make ~name:(Theory.name theory ^ "#II") !t_ii_rules in
            let t_iii =
              Theory.make ~name:(Theory.name theory ^ "#III") t_iii_rules
            in
            let nullary =
              List.fold_left
                (fun acc (_, sym) -> Symbol.Set.add sym acc)
                Symbol.Set.empty registry.entries
            in
            Some
              {
                original = theory;
                t_ii;
                t_iii;
                t_nf =
                  Theory.make
                    ~name:(Theory.name theory ^ "#NF")
                    (Theory.rules t_ii @ Theory.rules t_iii);
                nullary;
              })

let constants t =
  let k = Symbol.Set.cardinal t.nullary in
  let rules = Theory.rules t.t_nf in
  let h =
    List.fold_left (fun acc r -> max acc (List.length (Tgd.body r))) 1 rules
  in
  let n = List.length rules in
  (* N = 1 + n + n^2 + ... + n^h, saturating. *)
  let cap_n =
    let rec go i acc power =
      if i > h then acc
      else
        let acc' = acc + power in
        if acc' < acc || power > max_int / (max n 1) then max_int
        else go (i + 1) acc' (power * max n 1)
    in
    go 0 0 1
  in
  (k, h, n, cap_n)

let crucial_bound t =
  let k, h, _, cap_n = constants t in
  if cap_n = max_int then max_int else (cap_n * h) + (k * h)

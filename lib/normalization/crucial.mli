(** The end of the Theorem 3 pipeline: an explicit locality constant for a
    binary BDD theory, assembled from the Crucial Lemma bound [M] on
    existential atoms (Lemma 77 via {!Normalize}) and the Datalog-atom
    bound [d_T = h^{n_at}] of Observation 79, giving the constant
    [M * d_T] with which the theory is local. The [n_at] constant of
    Exercise 17 is undecidable in general; it is estimated empirically from
    sample chase runs (and the estimate is validated by
    {!validate_locality}). *)

open Logic

val estimate_n_at :
  ?guard:Guard.t ->
  ?max_depth:int -> ?max_atoms:int -> Theory.t -> Fact_set.t list -> int
(** Maximal atom delay (Exercise 17) observed across the sample runs. A
    guard trip truncates the sample chases, so the estimate degrades to a
    lower bound on the observed delay. *)

val locality_constant :
  ?guard:Guard.t ->
  ?budget:Rewriting.Rewrite.budget ->
  ?max_depth:int -> ?max_atoms:int ->
  Theory.t -> samples:Fact_set.t list -> int option
(** [M * h^{n_at}]: the locality constant Theorem 3 extracts. [None] when
    normalization does not complete, the guard trips, or the numbers
    overflow. *)

val validate_locality :
  ?depth:int -> ?sub_depth:int -> ?max_atoms:int ->
  Theory.t -> l:int -> Fact_set.t list -> bool
(** No locality defect at constant [l] on any of the given instances
    (within the chase windows) — the empirical check that the extracted
    constant indeed works. *)

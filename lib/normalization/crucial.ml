open Logic

let estimate_n_at ?guard ?(max_depth = 6) ?(max_atoms = 50_000) theory samples
    =
  List.fold_left
    (fun acc d ->
      let run = Chase.Engine.run ?guard ~max_depth ~max_atoms theory d in
      max acc (Rewriting.Exercises.atom_delay run))
    1 samples

let locality_constant ?guard ?budget ?max_depth ?max_atoms theory ~samples =
  match Normalize.normalize ?guard ?budget theory with
  | None -> None
  | Some nf ->
      let m = Normalize.crucial_bound nf in
      if m = max_int then None
      else
        let h =
          List.fold_left
            (fun acc r -> max acc (List.length (Tgd.body r)))
            1 (Theory.rules theory)
        in
        let n_at = estimate_n_at ?guard ?max_depth ?max_atoms theory samples in
        (* d_T = h^{n_at}, saturating. *)
        let rec power acc i =
          if i = 0 then Some acc
          else if acc > max_int / (max h 1) then None
          else power (acc * max h 1) (i - 1)
        in
        Option.bind (power 1 n_at) (fun d_t ->
            if m > max_int / (max d_t 1) then None else Some (m * d_t))

let validate_locality ?depth ?sub_depth ?max_atoms theory ~l instances =
  List.for_all
    (fun d ->
      Rewriting.Locality.defects ?depth ?sub_depth ?max_atoms theory d ~l = [])
    instances

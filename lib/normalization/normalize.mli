(** The normalization [T -> T_NF] of Appendix A (proof machinery of
    Theorem 3, "binary BDD implies local").

    The three steps:
    - STEP ONE: replace every existential rule's body by each CQ of its
      rewriting ([T_I = U Rew(rho)]);
    - STEP TWO: separate each body into the connected component of the
      frontier plus a leftover, encapsulated behind a fresh *nullary*
      predicate [M_phi] ([T_II = sep_cc(T_I)]);
    - STEP THREE: add the rules proving the nullary predicates, with their
      bodies rewritten ([T_III = U Rew(sep_M(rho))]).

    [T_NF = T_II + T_III] — its chase creates the same existential atoms as
    [T]'s (Lemma 70) but every existential rule's body is a connected CQ
    plus one nullary atom, which is what bounds ancestor sets
    (Lemma 77). *)

open Logic

type t = {
  original : Theory.t;
  t_ii : Theory.t;  (** separated existential rules *)
  t_iii : Theory.t;  (** nullary-predicate producers *)
  t_nf : Theory.t;  (** the union *)
  nullary : Symbol.Set.t;  (** all [M_phi] predicates introduced *)
}

val normalize :
  ?guard:Guard.t -> ?budget:Rewriting.Rewrite.budget -> Theory.t -> t option
(** [None] when some body rewriting did not complete within budget — or the
    guard tripped mid-construction (the construction needs every body
    rewriting to finish, so there is no useful partial output; inspect
    [Guard.status] to tell a trip from a plain budget miss). Rules with
    domain variables are not supported (the paper's Appendix A setting is
    plain binary TGDs). *)

val constants : t -> int * int * int * int
(** [(k, h, n, cap_n)] of the Crucial Lemma: number of nullary predicates,
    maximal body size, number of rules of [T_NF], and [N] = the size of the
    full [n]-ary tree of depth [h]. *)

val crucial_bound : t -> int
(** [M = N*h + k*h] (Lemma 77): an upper bound on the number of
    [D]-ancestors of any sensible tree [S(t)] in the [T_NF]-chase. *)

(** Crash-safe snapshots of saturation state, and the supervisor that
    turns them into resumable runs.

    The paper's hardest workloads — deep chase towers (E2 [phi_R^5], E3
    [phi_I2^5]) and the long rewriting saturations of Theorems 5-6 — run
    for minutes to hours, and without durability a crash, OOM kill, or
    deadline trip throws all partial work away. This module provides the
    three layers that fix that:

    {ol
    {- {!Snapshot}: a versioned, MD5-checksummed, atomically-written
       (tmp + fsync + rename) file format for saturation state. A
       snapshot is a [kind] tag, an absolute round number, a small
       key/value [meta] block, and named line-oriented [sections] whose
       lines the engines fill with {!Codec}-rendered state. A reader
       validates magic, version, payload length and checksum before
       surrendering a single byte of content, so a torn or corrupted
       file is {e rejected}, never half-believed.}
    {- {!Codec}: deterministic text encodings for the hash-consed logic
       types (terms, atoms, CQs, mappings, rules, theories). Hash-consed
       ids are process-local, so snapshots never store them; decoding
       re-interns every value through the ordinary constructors, which is
       exactly what makes a resumed chase bit-identical (Observation 8:
       the Skolem naming convention derives names from head isomorphism
       types, so [Tgd.make] on the decoded rule rebuilds the very same
       Skolem patterns).}
    {- {!Supervisor}: capped-exponential-backoff retry around a
       resumable run. Each attempt resumes from the newest snapshot that
       validates; rejected snapshots degrade to the next-older one and
       finally to a cold start — a corrupt checkpoint can cost time,
       never correctness.}}

    Writes honour the seeded IO fault schedule ([Guard.Faults.io_fate]):
    a torn write truncates the payload before the rename (the file lands
    but fails its checksum), a failed fsync abandons the write as if the
    disk were full, and a corrupt read flips a byte before validation —
    so the whole degradation ladder is exercisable deterministically in
    tests without real disk failures. *)

open Logic

(** {1 Snapshot files} *)

module Snapshot : sig
  type t = {
    kind : string;  (** which engine wrote it: ["chase"] etc. *)
    round : int;  (** absolute saturation round the state is valid at *)
    meta : (string * string) list;  (** small scalar state, ordered *)
    sections : (string * string list) list;
        (** named line blocks; lines must not contain newlines *)
  }

  val version : int
  (** Bumped on any incompatible format change; readers reject other
      versions ({!Bad_version}) rather than guess. *)

  type error =
    | Missing of string  (** no such file *)
    | Bad_magic of string  (** not a snapshot file at all *)
    | Bad_version of int  (** written by an incompatible format version *)
    | Bad_checksum of string  (** truncated or corrupted payload *)
    | Malformed of string  (** checksum passed but the structure didn't parse *)
    | Io of string  (** the write itself failed (ENOSPC, permissions, ...) *)

  val describe_error : error -> string

  val meta : t -> string -> string option
  val meta_int : t -> string -> int option
  val section : t -> string -> string list
  (** Lines of the named section; [[]] when absent. *)

  val write : dir:string -> t -> (string, error) result
  (** Atomically persist the snapshot as [dir/snap-<round>.ckpt]: render
      to a temp file in [dir], fsync it, rename over the target, fsync
      the directory. Returns the final path. A failure (including an
      injected [`Enospc] fsync fate) cleans up the temp file and reports
      [Error]; the previous snapshot for that round, if any, survives
      untouched. An injected [`Torn] write fate truncates the payload
      before the rename — the file lands, and {!read} rejects it. *)

  val read : string -> (t, error) result
  (** Validate magic, version, payload length, and MD5 checksum, then
      parse. An injected [`Corrupt] read fate flips a payload byte
      before validation (and is therefore caught by the checksum). *)

  val list : dir:string -> (int * string) list
  (** The snapshot files in [dir] as [(round, path)], newest round
      first. Non-snapshot files are ignored; a missing directory is
      [[]]. *)

  val load_latest : dir:string -> (t * string) option * int
  (** Walk {!list} newest-first and return the first snapshot that
      validates, plus the number of newer snapshots that were rejected
      on the way (the degradation count surfaced in [--stats]).
      [None] means a cold start. Rejected files are left in place for
      post-mortem. *)
end

(** {1 Sinks: where and how often engines save} *)

type sink = {
  dir : string;  (** snapshot directory (created by {!sink}) *)
  every : int;  (** save at every [every]-th committed round *)
  min_interval_s : float;
      (** and no more often than this much wall time apart — the knob
          that keeps fine-grained kernels (the marked process commits
          hundreds of thousands of one-pop rounds) from spending their
          run writing files *)
  keep : int;  (** retain at most this many newest snapshots *)
}

val sink : ?every:int -> ?min_interval_s:float -> ?keep:int -> string -> sink
(** [sink dir] with defaults [every:1], [min_interval_s:0.5], [keep:4].
    Creates [dir] (and parents) if needed. *)

val save_to : sink -> Snapshot.t -> unit
(** {!Snapshot.write} plus pruning to [keep] newest snapshots. Never
    raises: write failures are counted (see {!counters}) and the run
    continues — durability is best-effort, correctness is not at
    stake. *)

(** {1 Process-wide counters (surfaced in [--stats])} *)

type counters = {
  writes : int;  (** snapshots successfully persisted *)
  write_failures : int;  (** snapshot writes abandoned (IO errors) *)
  bytes_written : int;  (** total payload bytes persisted *)
  rejected_reads : int;  (** snapshots rejected during {!Snapshot.load_latest} *)
}

val counters : unit -> counters
val reset_counters : unit -> unit

(** {1 Codec: deterministic text encodings of logic values} *)

module Codec : sig
  exception Error of string
  (** Raised by every decoder on malformed input. *)

  (** Fields are length-prefixed (netstring-style), so encoded values
      nest and concatenate without quoting or escaping; every encoder
      below produces a single newline-free string suitable as a snapshot
      section line or as a {!concat} field. *)

  val concat : string list -> string
  (** Join fields into one line; inverse of {!fields}. *)

  val fields : string -> string list

  val list_to_string : ('a -> string) -> 'a list -> string
  val list_of_string : (string -> 'a) -> string -> 'a list

  val int_of_string : string -> int
  (** [Stdlib.int_of_string] with failures mapped to {!Error}. *)

  val term_to_string : Term.t -> string
  val term_of_string : string -> Term.t

  val atom_to_string : Atom.t -> string
  val atom_of_string : string -> Atom.t

  val cq_to_string : Cq.t -> string
  val cq_of_string : string -> Cq.t

  val mapping_to_string : Homomorphism.mapping -> string
  val mapping_of_string : string -> Homomorphism.mapping

  val rule_to_string : Tgd.t -> string
  val rule_of_string : string -> Tgd.t
  (** Round-trips through [Tgd.make], so the decoded rule's Skolemized
      head is rebuilt by the same Definition-4 naming convention — the
      load-bearing fact for bit-identical chase resume. *)

  val theory_to_lines : Theory.t -> string list
  val theory_of_lines : string list -> Theory.t
end

(** {1 Atomic writes for plain files}

    The tmp + rename protocol alone (no checksum, no format), shared
    with the [.repro] and bench-JSON writers so an interrupted campaign
    never leaves a truncated file behind. *)

module Atomic_io : sig
  val write_file : string -> string -> unit
  (** [write_file path contents]: write to a temp file in [path]'s
      directory, fsync, rename over [path]. Raises [Sys_error] /
      [Unix.Unix_error] on failure (the temp file is cleaned up). *)
end

(** {1 Supervisor: retry + resume} *)

module Supervisor : sig
  type report = {
    attempts : int;  (** attempts made (1 = first try succeeded) *)
    resumed_round : int option;
        (** round of the snapshot the {e last} attempt resumed from;
            [None] if it cold-started *)
    rejected_snapshots : int;  (** total rejected across all attempts *)
    cold_starts : int;  (** attempts that found no valid snapshot *)
    slept_s : float;  (** total backoff time *)
  }

  val run :
    ?max_attempts:int ->
    ?base_backoff_s:float ->
    ?max_backoff_s:float ->
    ?should_retry:('a -> bool) ->
    ?on_event:(string -> unit) ->
    dir:string ->
    (resume:Snapshot.t option -> 'a) ->
    ('a, exn) result * report
  (** [run ~dir f]: load the newest valid snapshot from [dir] (the
      degradation ladder: newest → older → cold start) and call
      [f ~resume]. If [f] raises, or returns a value [should_retry]
      flags as transient (a tripped-guard partial the caller wants
      retried, say), sleep a capped exponential backoff
      ([base_backoff_s] doubling up to [max_backoff_s]; defaults 0.05 s
      and 2 s) and try again — re-reading the directory, so progress
      checkpointed by the failed attempt is kept — up to [max_attempts]
      (default 3) in total. The final outcome is [Ok] with [f]'s value
      or [Error] with the last exception; the report always comes back.
      [on_event] receives one human-readable line per resume / failure /
      retry decision. *)
end

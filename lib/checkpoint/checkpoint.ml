(* Crash-safe snapshots + supervisor. See checkpoint.mli for the
   contract.

   Layout of a snapshot file:

     frontier-snapshot <version>\n
     <md5-hex> <payload-length>\n
     <payload>

   and the payload is line-oriented:

     kind <ns>
     round <int>
     meta <ns-key><ns-value>          (zero or more)
     section <ns-name> <line-count>   (zero or more, followed by its lines)
     <line>...

   where <ns> is a netstring (<decimal-length>:<bytes>). Nothing in the
   payload is escaped — writers promise newline-free meta values and
   section lines (enforced at [write]), and the netstrings make names
   and values self-delimiting.

   The reader trusts nothing before the checksum: magic, version,
   length, digest, in that order. A torn write (real or injected) fails
   the length/digest check; a corrupt read fails the digest; only then
   is the payload parsed, and parse failures still reject the file
   rather than half-load it. *)

open Logic

(* ------------------------------------------------------------------ *)
(* Process-wide counters                                               *)
(* ------------------------------------------------------------------ *)

type counters = {
  writes : int;
  write_failures : int;
  bytes_written : int;
  rejected_reads : int;
}

let writes_c = Atomic.make 0
let write_failures_c = Atomic.make 0
let bytes_written_c = Atomic.make 0
let rejected_reads_c = Atomic.make 0

let counters () =
  {
    writes = Atomic.get writes_c;
    write_failures = Atomic.get write_failures_c;
    bytes_written = Atomic.get bytes_written_c;
    rejected_reads = Atomic.get rejected_reads_c;
  }

let reset_counters () =
  Atomic.set writes_c 0;
  Atomic.set write_failures_c 0;
  Atomic.set bytes_written_c 0;
  Atomic.set rejected_reads_c 0

(* ------------------------------------------------------------------ *)
(* Snapshot files                                                      *)
(* ------------------------------------------------------------------ *)

module Snapshot = struct
  type t = {
    kind : string;
    round : int;
    meta : (string * string) list;
    sections : (string * string list) list;
  }

  let version = 1
  let magic = "frontier-snapshot"

  type error =
    | Missing of string
    | Bad_magic of string
    | Bad_version of int
    | Bad_checksum of string
    | Malformed of string
    | Io of string

  let describe_error = function
    | Missing p -> Printf.sprintf "missing snapshot: %s" p
    | Bad_magic p -> Printf.sprintf "not a snapshot file: %s" p
    | Bad_version v ->
        Printf.sprintf "snapshot format version %d (this build reads %d)" v
          version
    | Bad_checksum p -> Printf.sprintf "checksum mismatch (torn/corrupt): %s" p
    | Malformed m -> Printf.sprintf "malformed snapshot payload: %s" m
    | Io m -> Printf.sprintf "snapshot IO failure: %s" m

  let meta t k = List.assoc_opt k t.meta
  let meta_int t k = Option.bind (meta t k) int_of_string_opt

  let section t name =
    match List.assoc_opt name t.sections with Some l -> l | None -> []

  (* -------------------- rendering -------------------- *)

  let ns b s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s

  let check_line_free what s =
    if String.contains s '\n' then
      invalid_arg
        (Printf.sprintf "Checkpoint.Snapshot.write: newline in %s" what)

  let render_payload t =
    let b = Buffer.create 8192 in
    check_line_free "kind" t.kind;
    Buffer.add_string b "kind ";
    ns b t.kind;
    Buffer.add_char b '\n';
    Buffer.add_string b (Printf.sprintf "round %d\n" t.round);
    List.iter
      (fun (k, v) ->
        check_line_free "meta key" k;
        check_line_free "meta value" v;
        Buffer.add_string b "meta ";
        ns b k;
        ns b v;
        Buffer.add_char b '\n')
      t.meta;
    List.iter
      (fun (name, lines) ->
        check_line_free "section name" name;
        Buffer.add_string b "section ";
        ns b name;
        Buffer.add_string b (Printf.sprintf " %d\n" (List.length lines));
        List.iter
          (fun line ->
            check_line_free "section line" line;
            Buffer.add_string b line;
            Buffer.add_char b '\n')
          lines)
      t.sections;
    Buffer.contents b

  (* -------------------- parsing -------------------- *)

  exception Parse of string

  let take_ns s pos =
    let n = String.length s in
    let rec digits i acc seen =
      if i >= n then raise (Parse "unterminated length prefix")
      else
        match s.[i] with
        | '0' .. '9' ->
            digits (i + 1) ((acc * 10) + Char.code s.[i] - 48) true
        | ':' when seen -> (i + 1, acc)
        | c -> raise (Parse (Printf.sprintf "bad length prefix char %C" c))
    in
    let start, len = digits pos 0 false in
    if start + len > n then raise (Parse "field overruns input");
    (String.sub s start len, start + len)

  let expect_prefix line p =
    let n = String.length p in
    if String.length line >= n && String.sub line 0 n = p then
      String.sub line n (String.length line - n)
    else raise (Parse (Printf.sprintf "expected %S line" (String.trim p)))

  let parse_int what s =
    match int_of_string_opt (String.trim s) with
    | Some i -> i
    | None -> raise (Parse (Printf.sprintf "bad integer in %s" what))

  let parse_payload payload =
    let lines = String.split_on_char '\n' payload in
    (* the payload ends with '\n', so drop the final empty chunk *)
    let lines =
      match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
    in
    match lines with
    | kind_l :: round_l :: rest ->
        let kind_f = expect_prefix kind_l "kind " in
        let kind, p = take_ns kind_f 0 in
        if p <> String.length kind_f then raise (Parse "trailing kind bytes");
        let round = parse_int "round" (expect_prefix round_l "round ") in
        let meta = ref [] and sections = ref [] in
        let rec go = function
          | [] -> ()
          | l :: rest when String.length l >= 5 && String.sub l 0 5 = "meta " ->
              let f = String.sub l 5 (String.length l - 5) in
              let k, p = take_ns f 0 in
              let v, p = take_ns f p in
              if p <> String.length f then raise (Parse "trailing meta bytes");
              meta := (k, v) :: !meta;
              go rest
          | l :: rest
            when String.length l >= 8 && String.sub l 0 8 = "section " ->
              let f = String.sub l 8 (String.length l - 8) in
              let name, p = take_ns f 0 in
              let count =
                parse_int "section count"
                  (String.sub f p (String.length f - p))
              in
              if count < 0 then raise (Parse "negative section count");
              let rec take k acc rest =
                if k = 0 then (List.rev acc, rest)
                else
                  match rest with
                  | [] -> raise (Parse "section shorter than declared")
                  | l :: rest -> take (k - 1) (l :: acc) rest
              in
              let body, rest = take count [] rest in
              sections := (name, body) :: !sections;
              go rest
          | l :: _ ->
              raise (Parse (Printf.sprintf "unrecognized line %S" l))
        in
        go rest;
        { kind; round; meta = List.rev !meta; sections = List.rev !sections }
    | _ -> raise (Parse "payload too short")

  (* -------------------- files -------------------- *)

  let file_name round = Printf.sprintf "snap-%08d.ckpt" round

  let round_of_file name =
    if
      String.length name = String.length "snap-00000000.ckpt"
      && String.sub name 0 5 = "snap-"
      && Filename.check_suffix name ".ckpt"
    then int_of_string_opt (String.sub name 5 8)
    else None

  let fsync_dir dir =
    (* Best-effort: persist the rename itself. Some filesystems refuse
       fsync on a directory fd; that costs durability of the *newest*
       snapshot on power loss, never correctness. *)
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
        Unix.close fd

  let write ~dir t =
    let result =
      try
        let payload = render_payload t in
        let digest = Digest.to_hex (Digest.string payload) in
        let payload_on_disk =
          match Guard.Faults.io_fate `Write with
          | `Torn -> String.sub payload 0 (String.length payload * 2 / 3)
          | _ -> payload
        in
        let header =
          Printf.sprintf "%s %d\n%s %d\n" magic version digest
            (String.length payload)
        in
        let path = Filename.concat dir (file_name t.round) in
        let tmp = Filename.temp_file ~temp_dir:dir "snap-" ".tmp" in
        let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
        (try
           let oc = open_out_bin tmp in
           Fun.protect
             ~finally:(fun () -> close_out_noerr oc)
             (fun () ->
               output_string oc header;
               output_string oc payload_on_disk;
               flush oc;
               match Guard.Faults.io_fate `Fsync with
               | `Enospc ->
                   raise (Unix.Unix_error (Unix.ENOSPC, "fsync", tmp))
               | _ -> Unix.fsync (Unix.descr_of_out_channel oc));
           Sys.rename tmp path;
           fsync_dir dir
         with e ->
           cleanup ();
           raise e);
        Ok (path, String.length payload)
      with
      | Invalid_argument m -> Error (Io m)
      | Sys_error m -> Error (Io m)
      | Unix.Unix_error (e, fn, _) ->
          Error (Io (Printf.sprintf "%s: %s" fn (Unix.error_message e)))
    in
    match result with
    | Ok (path, len) ->
        Atomic.incr writes_c;
        ignore (Atomic.fetch_and_add bytes_written_c len);
        Ok path
    | Error e ->
        Atomic.incr write_failures_c;
        Error e

  let read path =
    if not (Sys.file_exists path) then Error (Missing path)
    else
      match In_channel.with_open_bin path In_channel.input_all with
      | exception Sys_error m -> Error (Io m)
      | content -> (
          let content =
            match Guard.Faults.io_fate `Read with
            | `Corrupt when String.length content > 0 ->
                let b = Bytes.of_string content in
                let i = Bytes.length b / 2 in
                Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
                Bytes.to_string b
            | _ -> content
          in
          let line_end from =
            match String.index_from_opt content from '\n' with
            | Some i -> i
            | None -> -1
          in
          let e1 = line_end 0 in
          if e1 < 0 then Error (Bad_magic path)
          else
            let l1 = String.sub content 0 e1 in
            match String.split_on_char ' ' l1 with
            | [ m; v ] when m = magic -> (
                match int_of_string_opt v with
                | None -> Error (Bad_magic path)
                | Some v when v <> version -> Error (Bad_version v)
                | Some _ -> (
                    let e2 = line_end (e1 + 1) in
                    if e2 < 0 then Error (Bad_checksum path)
                    else
                      let l2 = String.sub content (e1 + 1) (e2 - e1 - 1) in
                      match String.split_on_char ' ' l2 with
                      | [ digest; len_s ] -> (
                          match int_of_string_opt len_s with
                          | None -> Error (Bad_checksum path)
                          | Some len ->
                              let payload_start = e2 + 1 in
                              let avail =
                                String.length content - payload_start
                              in
                              if avail <> len then Error (Bad_checksum path)
                              else
                                let payload =
                                  String.sub content payload_start len
                                in
                                if
                                  Digest.to_hex (Digest.string payload)
                                  <> digest
                                then Error (Bad_checksum path)
                                else (
                                  match parse_payload payload with
                                  | t -> Ok t
                                  | exception Parse m -> Error (Malformed m)))
                      | _ -> Error (Bad_checksum path)))
            | _ -> Error (Bad_magic path))

  let list ~dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | files ->
        Array.to_list files
        |> List.filter_map (fun f ->
               match round_of_file f with
               | Some r -> Some (r, Filename.concat dir f)
               | None -> None)
        |> List.sort (fun (a, _) (b, _) -> compare b a)

  let load_latest ~dir =
    let rec go rejected = function
      | [] -> (None, rejected)
      | (_, path) :: rest -> (
          match read path with
          | Ok t -> (Some (t, path), rejected)
          | Error _ ->
              Atomic.incr rejected_reads_c;
              go (rejected + 1) rest)
    in
    go 0 (list ~dir)
end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type sink = { dir : string; every : int; min_interval_s : float; keep : int }

let rec mkdirs d =
  if d = "" || d = "." || Sys.file_exists d then ()
  else begin
    let parent = Filename.dirname d in
    if parent <> d then mkdirs parent;
    try Unix.mkdir d 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let sink ?(every = 1) ?(min_interval_s = 0.5) ?(keep = 4) dir =
  if every < 1 then invalid_arg "Checkpoint.sink: every < 1";
  if keep < 1 then invalid_arg "Checkpoint.sink: keep < 1";
  mkdirs dir;
  { dir; every; min_interval_s; keep }

let prune sink =
  let rec drop k = function
    | [] -> ()
    | (_, path) :: rest ->
        if k > 0 then drop (k - 1) rest
        else begin
          (try Sys.remove path with Sys_error _ -> ());
          drop 0 rest
        end
  in
  drop sink.keep (Snapshot.list ~dir:sink.dir)

let save_to sink snap =
  match Snapshot.write ~dir:sink.dir snap with
  | Ok _ -> prune sink
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

module Codec = struct
  exception Error of string

  let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

  let ns b s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s

  let take_ns s pos =
    let n = String.length s in
    let rec digits i acc seen =
      if i >= n then err "unterminated length prefix"
      else
        match s.[i] with
        | '0' .. '9' ->
            digits (i + 1) ((acc * 10) + Char.code s.[i] - 48) true
        | ':' when seen -> (i + 1, acc)
        | c -> err "bad length prefix char %C" c
    in
    let start, len = digits pos 0 false in
    if start + len > n then err "field overruns input";
    (String.sub s start len, start + len)

  let concat fields =
    let b = Buffer.create 64 in
    List.iter (ns b) fields;
    Buffer.contents b

  let fields s =
    let n = String.length s in
    let rec go pos acc =
      if pos >= n then List.rev acc
      else
        let f, pos = take_ns s pos in
        go pos (f :: acc)
    in
    go 0 []

  let list_to_string enc l = concat (List.map enc l)
  let list_of_string dec s = List.map dec (fields s)

  let int_of_string s =
    match Stdlib.int_of_string_opt s with
    | Some i -> i
    | None -> err "bad integer %S" s

  (* Terms: v<ns> (variable) | k<ns> (constant) | f<ns>(...) (Skolem).
     Decoding re-interns through the hash-consing constructors — ids are
     process-local and never serialized. *)

  let rec enc_term b t =
    match t.Term.view with
    | Term.Var v ->
        Buffer.add_char b 'v';
        ns b v
    | Term.Const c ->
        Buffer.add_char b 'k';
        ns b c
    | Term.App { fn; args } ->
        Buffer.add_char b 'f';
        ns b fn;
        Buffer.add_char b '(';
        List.iter (enc_term b) args;
        Buffer.add_char b ')'

  let expect s pos c =
    if pos >= String.length s || s.[pos] <> c then
      err "expected %C at %d" c pos

  (* Fresh-variable names are [prefix#n] from a process-global counter
     ([Cq.fresh_var]). A decoded snapshot carries the dead process's
     names, so reserve each [n] we see: otherwise the resuming process
     could mint the "fresh" [u#10] while a decoded disjunct already uses
     [u#10], and the capture silently absorbs rewriting candidates (the
     saturation then under-approximates — observed, not hypothetical). *)
  let reserve_fresh_name v =
    match String.rindex_opt v '#' with
    | None -> ()
    | Some i -> (
        match
          Stdlib.int_of_string_opt
            (String.sub v (i + 1) (String.length v - i - 1))
        with
        | Some n when n > 0 -> Cq.reserve_fresh n
        | _ -> ())

  let rec dec_term s pos =
    if pos >= String.length s then err "truncated term";
    match s.[pos] with
    | 'v' ->
        let v, p = take_ns s (pos + 1) in
        reserve_fresh_name v;
        (Term.var v, p)
    | 'k' ->
        let c, p = take_ns s (pos + 1) in
        (Term.const c, p)
    | 'f' ->
        let fn, p = take_ns s (pos + 1) in
        expect s p '(';
        let rec args acc p =
          if p >= String.length s then err "unterminated term args"
          else if s.[p] = ')' then (List.rev acc, p + 1)
          else
            let t, p = dec_term s p in
            args (t :: acc) p
        in
        let args, p = args [] (p + 1) in
        (Term.app fn args, p)
    | c -> err "bad term tag %C" c

  (* Atoms: A<ns-rel>(<terms>) — arity recovered from the argument
     count, symbol re-interned by (name, arity). *)

  let enc_atom b a =
    Buffer.add_char b 'A';
    ns b (Symbol.name (Atom.rel a));
    Buffer.add_char b '(';
    List.iter (enc_term b) (Atom.args a);
    Buffer.add_char b ')'

  let dec_atom s pos =
    expect s pos 'A';
    let rel, p = take_ns s (pos + 1) in
    expect s p '(';
    let rec args acc p =
      if p >= String.length s then err "unterminated atom args"
      else if s.[p] = ')' then (List.rev acc, p + 1)
      else
        let t, p = dec_term s p in
        args (t :: acc) p
    in
    let args, p = args [] (p + 1) in
    (Atom.make (Symbol.make rel ~arity:(List.length args)) args, p)

  let dec_term_group s pos =
    expect s pos '(';
    let rec go acc p =
      if p >= String.length s then err "unterminated term group"
      else if s.[p] = ')' then (List.rev acc, p + 1)
      else
        let t, p = dec_term s p in
        go (t :: acc) p
    in
    go [] (pos + 1)

  let dec_atom_group s pos =
    expect s pos '(';
    let rec go acc p =
      if p >= String.length s then err "unterminated atom group"
      else if s.[p] = ')' then (List.rev acc, p + 1)
      else
        let a, p = dec_atom s p in
        go (a :: acc) p
    in
    go [] (pos + 1)

  let enc_term_group b ts =
    Buffer.add_char b '(';
    List.iter (enc_term b) ts;
    Buffer.add_char b ')'

  let enc_atom_group b atoms =
    Buffer.add_char b '(';
    List.iter (enc_atom b) atoms;
    Buffer.add_char b ')'

  let finish what s (v, p) =
    if p <> String.length s then err "trailing bytes after %s" what;
    v

  let to_string enc v =
    let b = Buffer.create 64 in
    enc b v;
    Buffer.contents b

  let term_to_string t = to_string enc_term t
  let term_of_string s = finish "term" s (dec_term s 0)
  let atom_to_string a = to_string enc_atom a
  let atom_of_string s = finish "atom" s (dec_atom s 0)

  (* CQs: C(<free>)(<atoms>) — validated by Cq.make on decode. *)

  let cq_to_string q =
    let b = Buffer.create 128 in
    Buffer.add_char b 'C';
    enc_term_group b (Cq.free q);
    enc_atom_group b (Cq.atoms q);
    Buffer.contents b

  let cq_of_string s =
    expect s 0 'C';
    let free, p = dec_term_group s 1 in
    let atoms, p = dec_atom_group s p in
    if p <> String.length s then err "trailing bytes after cq";
    try Cq.make ~free atoms
    with Invalid_argument m -> err "invalid cq in snapshot: %s" m

  (* Mappings: M(<var><image><var><image>...). *)

  let mapping_to_string (m : Homomorphism.mapping) =
    let b = Buffer.create 128 in
    Buffer.add_char b 'M';
    Buffer.add_char b '(';
    Term.Map.iter
      (fun v t ->
        enc_term b v;
        enc_term b t)
      m;
    Buffer.add_char b ')';
    Buffer.contents b

  let mapping_of_string s =
    expect s 0 'M';
    expect s 1 '(';
    let n = String.length s in
    let rec go acc p =
      if p >= n then err "unterminated mapping"
      else if s.[p] = ')' then (acc, p + 1)
      else
        let v, p = dec_term s p in
        let t, p = dec_term s p in
        go (Term.Map.add v t acc) p
    in
    let m, p = go Term.Map.empty 2 in
    if p <> n then err "trailing bytes after mapping";
    m

  (* Rules: G<ns-name>(<body>)(<dom-vars>)(<head>) — Tgd.make rebuilds
     the Skolemized head from the head isomorphism type (Definition 4),
     so the decoded rule fires the very same Skolem terms. *)

  let rule_to_string r =
    let b = Buffer.create 256 in
    Buffer.add_char b 'G';
    ns b (Tgd.name r);
    enc_atom_group b (Tgd.body r);
    enc_term_group b (Tgd.dom_vars r);
    enc_atom_group b (Tgd.head r);
    Buffer.contents b

  let rule_of_string s =
    expect s 0 'G';
    let name, p = take_ns s 1 in
    let body, p = dec_atom_group s p in
    let dom_vars, p = dec_term_group s p in
    let head, p = dec_atom_group s p in
    if p <> String.length s then err "trailing bytes after rule";
    try Tgd.make ~name ~dom_vars ~body ~head ()
    with Invalid_argument m -> err "invalid rule in snapshot: %s" m

  (* Theories: first line the name (one field), then one rule per line. *)

  let theory_to_lines thy =
    concat [ Theory.name thy ] :: List.map rule_to_string (Theory.rules thy)

  let theory_of_lines = function
    | [] -> err "empty theory section"
    | name_l :: rule_ls ->
        let name =
          match fields name_l with
          | [ n ] -> n
          | _ -> err "bad theory name line"
        in
        Theory.make ~name (List.map rule_of_string rule_ls)
end

(* ------------------------------------------------------------------ *)
(* Atomic writes for plain files                                       *)
(* ------------------------------------------------------------------ *)

module Atomic_io = struct
  let write_file path contents =
    let dir = Filename.dirname path in
    let tmp =
      Filename.temp_file ~temp_dir:dir
        ("." ^ Filename.basename path ^ "-")
        ".tmp"
    in
    try
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc contents;
          flush oc;
          Unix.fsync (Unix.descr_of_out_channel oc));
      Sys.rename tmp path
    with e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
end

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

module Supervisor = struct
  type report = {
    attempts : int;
    resumed_round : int option;
    rejected_snapshots : int;
    cold_starts : int;
    slept_s : float;
  }

  let run ?(max_attempts = 3) ?(base_backoff_s = 0.05) ?(max_backoff_s = 2.0)
      ?(should_retry = fun _ -> false) ?(on_event = fun _ -> ()) ~dir f =
    let rejected_total = ref 0 in
    let cold_starts = ref 0 in
    let slept = ref 0.0 in
    let resumed_round = ref None in
    let report attempts =
      {
        attempts;
        resumed_round = !resumed_round;
        rejected_snapshots = !rejected_total;
        cold_starts = !cold_starts;
        slept_s = !slept;
      }
    in
    let backoff attempt =
      let d =
        Float.min max_backoff_s
          (base_backoff_s *. Float.pow 2.0 (float_of_int (attempt - 1)))
      in
      slept := !slept +. d;
      Unix.sleepf d
    in
    let rec go attempt =
      let snap, rejected = Snapshot.load_latest ~dir in
      rejected_total := !rejected_total + rejected;
      if rejected > 0 then
        on_event
          (Printf.sprintf "degraded past %d invalid snapshot%s" rejected
             (if rejected = 1 then "" else "s"));
      (match snap with
       | Some (s, path) ->
           resumed_round := Some s.Snapshot.round;
           on_event
             (Printf.sprintf "attempt %d: resuming from %s (round %d)" attempt
                (Filename.basename path) s.Snapshot.round)
       | None ->
           resumed_round := None;
           incr cold_starts;
           on_event (Printf.sprintf "attempt %d: cold start" attempt));
      match f ~resume:(Option.map fst snap) with
      | v when attempt < max_attempts && should_retry v ->
          on_event "transient outcome; retrying";
          backoff attempt;
          go (attempt + 1)
      | v -> (Ok v, report attempt)
      | exception e when attempt < max_attempts ->
          on_event
            (Printf.sprintf "attempt %d failed: %s" attempt
               (Printexc.to_string e));
          backoff attempt;
          go (attempt + 1)
      | exception e -> (Error e, report attempt)
    in
    go 1
end

(* Tests for the chase library: the semi-oblivious Skolem chase engine,
   entailment, cores and termination, against the paper's examples. *)

open Logic

let c = Term.const
let v = Term.var
let atom = Atom.make

(* ------------------------------------------------------------------ *)
(* Example 7: the chase of T_a on {Human(Abel)}                        *)
(* ------------------------------------------------------------------ *)

let test_example7_stages () =
  let run = Chase.Engine.run ~max_depth:3 Theories.Zoo.t_a Theories.Instances.human_abel in
  let abel = c "Abel" in
  Alcotest.(check int) "Ch_0 is D" 1
    (Fact_set.cardinal (Chase.Engine.stage run 0));
  let ch1 = Chase.Engine.stage run 1 in
  Alcotest.(check int) "Ch_1 adds Mother(Abel, mum(Abel))" 2
    (Fact_set.cardinal ch1);
  let mum_abel =
    match
      List.find_opt
        (fun a -> Symbol.equal (Atom.rel a) Theories.Zoo.mother)
        (Fact_set.atoms ch1)
    with
    | Some a ->
        Alcotest.(check bool) "first arg Abel" true
          (Term.equal (Atom.arg a 0) abel);
        Atom.arg a 1
    | None -> Alcotest.fail "no Mother atom at stage 1"
  in
  Alcotest.(check bool) "mum(Abel) is skolem" true
    (Term.is_functional mum_abel);
  (* Stage 2 proclaims mum(Abel) human and gives her a mother; stage 3
     continues the chain. *)
  let ch2 = Chase.Engine.stage run 2 in
  Alcotest.(check bool) "Human(mum(Abel))" true
    (Fact_set.mem (atom Theories.Zoo.human [ mum_abel ]) ch2);
  Alcotest.(check bool) "chase does not saturate" false
    (Chase.Engine.saturated run)

let test_example1_entailment () =
  (* T_a, {Human(Abel)} |= exists y z. Mother(Abel,y), Mother(y,z). *)
  let y = v "y" and z = v "z" and abel = v "abel_v" in
  let q =
    Cq.make ~free:[ abel ]
      [
        atom Theories.Zoo.mother [ abel; y ]; atom Theories.Zoo.mother [ y; z ];
      ]
  in
  match
    Chase.Entailment.entails ~max_depth:5 Theories.Zoo.t_a
      Theories.Instances.human_abel q [ c "Abel" ]
  with
  | Chase.Entailment.Entailed n ->
      Alcotest.(check bool) "needs at least two steps" true (n >= 2)
  | _ -> Alcotest.fail "expected entailment"

(* ------------------------------------------------------------------ *)
(* Observation 8: Ch(T, F) = Ch(T, D) literally for D ⊆ F ⊆ Ch(T,D)    *)
(* ------------------------------------------------------------------ *)

let test_observation8 () =
  let d = Theories.Instances.human_abel in
  let run1 = Chase.Engine.run ~max_depth:6 Theories.Zoo.t_a d in
  let f = Chase.Engine.stage run1 2 in
  let run2 = Chase.Engine.run ~max_depth:6 Theories.Zoo.t_a f in
  (* Every stage of the restart is inside the original chase, and vice
     versa within the computed prefixes. *)
  Alcotest.(check bool) "restart stage 2 inside original prefix" true
    (Fact_set.subset (Chase.Engine.stage run2 2) (Chase.Engine.result run1));
  Alcotest.(check bool) "original stage 4 inside restart prefix" true
    (Fact_set.subset (Chase.Engine.stage run1 4) (Chase.Engine.result run2))

let test_observation8_td () =
  (* The same literal-equality check for the multi-head T_d. *)
  let _, _, d = Theories.Instances.path Theories.Zoo.g2 2 in
  let run1 = Chase.Engine.run ~max_depth:4 Theories.Zoo.t_d d in
  let f = Chase.Engine.stage run1 1 in
  let run2 = Chase.Engine.run ~max_depth:3 Theories.Zoo.t_d f in
  Alcotest.(check bool) "restarted chase stays inside original" true
    (Fact_set.subset (Chase.Engine.stage run2 2) (Chase.Engine.result run1))

(* ------------------------------------------------------------------ *)
(* Provenance: birth atoms (Observation 10)                            *)
(* ------------------------------------------------------------------ *)

let test_birth_atoms () =
  let d = Theories.Instances.human_abel in
  let run = Chase.Engine.run ~max_depth:3 Theories.Zoo.t_a d in
  let invented = Chase.Engine.invented_terms run in
  Alcotest.(check bool) "invented terms exist" true
    (not (Term.Set.is_empty invented));
  Term.Set.iter
    (fun t ->
      match Chase.Engine.birth_atom run t with
      | Some a ->
          Alcotest.(check bool) "birth atom contains term" true
            (List.exists (Term.equal t) (Atom.args a))
      | None -> Alcotest.fail "invented term without birth atom")
    invented;
  Alcotest.(check (option string)) "initial constants have no birth atom"
    None
    (Option.map (fun _ -> "atom") (Chase.Engine.birth_atom run (c "Abel")))

let test_derivation_frontier () =
  let d = Theories.Instances.human_abel in
  let run = Chase.Engine.run ~max_depth:3 Theories.Zoo.t_a d in
  let derived =
    List.filter
      (fun a -> not (Fact_set.mem a d))
      (Fact_set.atoms (Chase.Engine.result run))
  in
  List.iter
    (fun a ->
      match Chase.Engine.atom_frontier run a with
      | Some fr ->
          Alcotest.(check bool) "frontier inside atom terms" true
            (Term.Set.for_all
               (fun t -> List.exists (Term.equal t) (Atom.args a))
               fr)
      | None -> Alcotest.fail "derived atom without frontier")
    derived

(* ------------------------------------------------------------------ *)
(* T_d chase structure: Observation 49                                 *)
(* ------------------------------------------------------------------ *)

let test_observation49 () =
  let _, _, d = Theories.Instances.path Theories.Zoo.g2 3 in
  let run = Chase.Engine.run ~max_depth:4 ~max_atoms:50_000 Theories.Zoo.t_d d in
  let ch = Chase.Engine.result run in
  let dom_d = Fact_set.domain d in
  let edges =
    List.filter
      (fun a ->
        Symbol.equal (Atom.rel a) Theories.Zoo.r2
        || Symbol.equal (Atom.rel a) Theories.Zoo.g2)
      (Fact_set.atoms ch)
  in
  (* (i) an edge into dom(D) must come from dom(D). *)
  List.iter
    (fun a ->
      let src = Atom.arg a 0 and dst = Atom.arg a 1 in
      if Term.Set.mem dst dom_d then
        Alcotest.(check bool)
          (Fmt.str "edge into D from D: %a" Atom.pp a)
          true
          (Term.Set.mem src dom_d))
    edges;
  (* (iii) two same-colour edges into one vertex: if one source is in
     dom(D), both are.  Equivalently: invented terms have in-degree at most
     one per colour. *)
  let in_count = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let dst = Atom.arg a 1 in
      if not (Term.Set.mem dst dom_d) then begin
        let key = (Symbol.name (Atom.rel a), Term.hash dst) in
        let sources =
          Option.value ~default:Term.Set.empty (Hashtbl.find_opt in_count key)
        in
        Hashtbl.replace in_count key (Term.Set.add (Atom.arg a 0) sources)
      end)
    edges;
  Hashtbl.iter
    (fun _ sources ->
      Alcotest.(check bool) "invented in-degree <= 1 per colour" true
        (Term.Set.cardinal sources <= 1))
    in_count

let test_rule_counts () =
  let d = Theories.Instances.human_abel in
  let run = Chase.Engine.run ~max_depth:4 Theories.Zoo.t_a d in
  let counts = Chase.Engine.rule_counts run in
  Alcotest.(check int) "two rules fired" 2 (List.length counts);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  Alcotest.(check int) "every derived atom accounted for" 
    (Fact_set.cardinal (Chase.Engine.result run) - 1)
    total

(* ------------------------------------------------------------------ *)
(* Enough and needed depth                                             *)
(* ------------------------------------------------------------------ *)

let test_needed_depth () =
  let d = Theories.Instances.single_edge Theories.Zoo.e2 in
  let run = Chase.Engine.run ~max_depth:6 Theories.Zoo.t_p d in
  let _, _, path3 = Theories.Zoo.e_path_query 3 in
  let q = Cq.make ~free:[] (Cq.atoms path3) in
  (match Chase.Entailment.entails_run run q [] with
  | Chase.Entailment.Entailed n -> Alcotest.(check int) "depth 2" 2 n
  | _ -> Alcotest.fail "path of 3 should appear");
  Alcotest.(check bool) "enough 2" true (Chase.Entailment.enough run 2 q);
  Alcotest.(check bool) "not enough 1" false (Chase.Entailment.enough run 1 q)

(* ------------------------------------------------------------------ *)
(* Cores and termination                                               *)
(* ------------------------------------------------------------------ *)

let test_core_of_structure () =
  (* A path folds onto an edge plus a loop?  No: a pure path has itself as
     core.  A structure with a redundant pendant does fold. *)
  let redundant =
    Fact_set.of_list
      [
        atom Theories.Zoo.e2 [ c "a"; c "b" ];
        atom Theories.Zoo.e2 [ c "a"; c "b'" ];
        atom Theories.Zoo.e2 [ c "b"; c "b" ];
      ]
  in
  (* With nothing frozen everything folds onto the self-loop. *)
  let core = Chase.Core_model.core_of redundant in
  Alcotest.(check int) "folds onto the loop" 1 (Fact_set.cardinal core);
  (* Freezing a keeps the edge but still folds b' onto b. *)
  let keep_a = Term.Set.of_list [ c "a" ] in
  Alcotest.(check int) "a frozen: b' folds onto b" 2
    (Fact_set.cardinal (Chase.Core_model.core_of ~keep:keep_a redundant));
  (* With everything frozen, no folding is allowed. *)
  let keep = Term.Set.of_list [ c "a"; c "b"; c "b'" ] in
  Alcotest.(check int) "frozen keeps all" 3
    (Fact_set.cardinal (Chase.Core_model.core_of ~keep redundant))

let test_exercise23_core_terminates () =
  let d = Theories.Instances.single_edge Theories.Zoo.e2 in
  match Chase.Termination.core_terminates_on ~max_c:6 ~lookahead:4
          Theories.Zoo.t_loopcut d
  with
  | Chase.Termination.Holds cn ->
      Alcotest.(check bool) "small c" true (cn <= 3)
  | _ -> Alcotest.fail "T_loopcut should core-terminate on an edge"

let test_exercise23_not_all_instances () =
  let d = Theories.Instances.single_edge Theories.Zoo.e2 in
  match
    Chase.Termination.all_instances_terminates_on ~max_depth:8
      Theories.Zoo.t_loopcut d
  with
  | Chase.Termination.Budget_exhausted -> ()
  | Chase.Termination.Holds n ->
      Alcotest.failf "chase should not saturate, saturated at %d" n
  | Chase.Termination.Fails -> Alcotest.fail "unexpected verdict"

let test_exercise22_tp_not_core_terminating () =
  let d = Theories.Instances.single_edge Theories.Zoo.e2 in
  match
    Chase.Termination.core_terminates_on ~max_c:5 ~lookahead:4
      Theories.Zoo.t_p d
  with
  | Chase.Termination.Budget_exhausted -> ()
  | Chase.Termination.Holds n ->
      Alcotest.failf "T_p must not core-terminate, got c = %d" n
  | Chase.Termination.Fails -> Alcotest.fail "unexpected verdict"

let test_core_model_is_model () =
  let d = Theories.Instances.single_edge Theories.Zoo.e2 in
  match Chase.Core_model.core_of_chase ~max_c:6 ~lookahead:4
          Theories.Zoo.t_loopcut d
  with
  | Some { Chase.Core_model.model; core; _ } ->
      Alcotest.(check bool) "model satisfies theory" true
        (Theory.satisfied_in Theories.Zoo.t_loopcut model);
      Alcotest.(check bool) "core satisfies theory" true
        (Theory.satisfied_in Theories.Zoo.t_loopcut core);
      Alcotest.(check bool) "core contains D" true (Fact_set.subset d core);
      (* Exercise 25: Core(Core(D)) = Core(D): the core is its own core. *)
      let keep = Fact_set.domain d in
      Alcotest.(check bool) "core idempotent" true
        (Fact_set.equal (Chase.Core_model.core_of ~keep core) core)
  | None -> Alcotest.fail "expected a core"

let test_datalog_saturates () =
  (* Transitive closure is all-instances terminating. *)
  let x = v "x" and y = v "y" and z = v "z" in
  let tc =
    Theory.make ~name:"tc"
      [
        Tgd.make
          ~body:[ atom Theories.Zoo.e2 [ x; y ]; atom Theories.Zoo.e2 [ y; z ] ]
          ~head:[ atom Theories.Zoo.e2 [ x; z ] ]
          ();
      ]
  in
  let _, _, d = Theories.Instances.path Theories.Zoo.e2 5 in
  let run = Chase.Engine.run ~max_depth:10 tc d in
  Alcotest.(check bool) "saturated" true (Chase.Engine.saturated run);
  Alcotest.(check int) "all pairs" 15
    (Fact_set.cardinal (Chase.Engine.result run))

let test_uniform_bound_family () =
  let instances =
    List.map
      (fun n ->
        let _, _, d = Theories.Instances.path Theories.Zoo.e2 n in
        d)
      [ 1; 2; 3; 4 ]
  in
  let bound, per_instance =
    Chase.Termination.uniform_bound_on ~max_c:6 ~lookahead:4
      Theories.Zoo.t_loopcut instances
  in
  Alcotest.(check int) "all instances solved" 4 (List.length per_instance);
  match bound with
  | Some b -> Alcotest.(check bool) "uniformly small" true (b <= 3)
  | None -> Alcotest.fail "expected uniform bound"

(* ------------------------------------------------------------------ *)
(* Section 8: C_D and Lemma 33                                         *)
(* ------------------------------------------------------------------ *)

let test_lemma33 () =
  (* On the FES members of the zoo the union-of-cores C_D sits inside a
     uniformly shallow chase stage. *)
  List.iter
    (fun (name, theory, d) ->
      match Chase.Fusfes.lemma33_holds ~l:2 ~max_c:6 ~lookahead:4 theory d with
      | Some ok ->
          Alcotest.(check bool) (name ^ ": C_D inside Ch_kT") true ok
      | None -> Alcotest.fail (name ^ ": sub-instance core search failed"))
    [
      ("t_loopcut", Theories.Zoo.t_loopcut,
       (let _, _, d = Theories.Instances.path Theories.Zoo.e2 4 in d));
      ("t_spouse", Theories.Zoo.t_spouse,
       Fact_set.of_list
         (List.init 3 (fun i ->
              atom Theories.Zoo.person [ c (Printf.sprintf "p%d" i) ])));
    ];
  (* For non-FES T_p the construction cannot get off the ground. *)
  let d = Theories.Instances.single_edge Theories.Zoo.e2 in
  Alcotest.(check bool) "T_p: no C_D" true
    (Chase.Fusfes.c_d ~l:1 ~max_c:4 ~lookahead:3 Theories.Zoo.t_p d = None)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_edges = QCheck.Gen.(list_size (1 -- 6) (pair (0 -- 3) (0 -- 3)))

let fact_set_of_edges edges =
  Fact_set.of_list
    (List.map
       (fun (i, j) ->
         atom Theories.Zoo.e2
           [ c (Printf.sprintf "x%d" i); c (Printf.sprintf "x%d" j) ])
       edges)

let prop_stages_monotone =
  QCheck.Test.make ~count:60 ~name:"chase stages are increasing"
    (QCheck.make gen_edges) (fun edges ->
      let d = fact_set_of_edges edges in
      let run = Chase.Engine.run ~max_depth:4 Theories.Zoo.t_loopcut d in
      let ok = ref true in
      for i = 0 to Chase.Engine.depth run - 1 do
        if
          not
            (Fact_set.subset (Chase.Engine.stage run i)
               (Chase.Engine.stage run (i + 1)))
        then ok := false
      done;
      !ok)

let prop_saturated_is_model =
  QCheck.Test.make ~count:60 ~name:"saturated chase satisfies the theory"
    (QCheck.make gen_edges) (fun edges ->
      let d = fact_set_of_edges edges in
      (* Datalog: guaranteed to saturate. *)
      let x = v "x" and y = v "y" and z = v "z" in
      let tc =
        Theory.make
          [
            Tgd.make
              ~body:
                [ atom Theories.Zoo.e2 [ x; y ]; atom Theories.Zoo.e2 [ y; z ] ]
              ~head:[ atom Theories.Zoo.e2 [ x; z ] ]
              ();
          ]
      in
      let run = Chase.Engine.run ~max_depth:30 tc d in
      Chase.Engine.saturated run
      && Theory.satisfied_in tc (Chase.Engine.result run))

let prop_semi_naive_equals_naive =
  (* The semi-naive engine must produce exactly Definition 6's stages: we
     recompute stage i+1 naively from stage i and compare. *)
  QCheck.Test.make ~count:40 ~name:"semi-naive equals naive stages"
    (QCheck.make gen_edges) (fun edges ->
      let d = fact_set_of_edges edges in
      let theory = Theories.Zoo.t_loopcut in
      let run = Chase.Engine.run ~max_depth:3 theory d in
      let ok = ref true in
      for i = 0 to Chase.Engine.depth run - 1 do
        let stage_i = Chase.Engine.stage run i in
        let naive_next = ref (Fact_set.to_set stage_i) in
        List.iter
          (fun rule ->
            Tgd.triggers rule stage_i (fun sigma ->
                List.iter
                  (fun a -> naive_next := Atom.Set.add a !naive_next)
                  (Tgd.apply rule sigma)))
          (Theory.rules theory);
        if
          not
            (Fact_set.equal
               (Fact_set.of_set !naive_next)
               (Chase.Engine.stage run (i + 1)))
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "chase"
    [
      ( "engine",
        [
          Alcotest.test_case "example 7 stages" `Quick test_example7_stages;
          Alcotest.test_case "example 1 entailment" `Quick
            test_example1_entailment;
          Alcotest.test_case "observation 8" `Quick test_observation8;
          Alcotest.test_case "observation 8 for T_d" `Quick
            test_observation8_td;
          Alcotest.test_case "birth atoms" `Quick test_birth_atoms;
          Alcotest.test_case "derivation frontier" `Quick
            test_derivation_frontier;
          Alcotest.test_case "observation 49" `Quick test_observation49;
          Alcotest.test_case "rule counts" `Quick test_rule_counts;
        ] );
      ( "entailment",
        [ Alcotest.test_case "needed depth" `Quick test_needed_depth ] );
      ( "cores",
        [
          Alcotest.test_case "core of structure" `Quick test_core_of_structure;
          Alcotest.test_case "exercise 23: core terminates" `Quick
            test_exercise23_core_terminates;
          Alcotest.test_case "exercise 23: not all-instances" `Quick
            test_exercise23_not_all_instances;
          Alcotest.test_case "exercise 22: T_p does not core-terminate" `Quick
            test_exercise22_tp_not_core_terminating;
          Alcotest.test_case "core model is a model" `Quick
            test_core_model_is_model;
          Alcotest.test_case "datalog saturates" `Quick test_datalog_saturates;
          Alcotest.test_case "uniform bound on family" `Quick
            test_uniform_bound_family;
          Alcotest.test_case "lemma 33 (C_D)" `Quick test_lemma33;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_stages_monotone;
          QCheck_alcotest.to_alcotest prop_saturated_is_model;
          QCheck_alcotest.to_alcotest prop_semi_naive_equals_naive;
        ] );
    ]

(* Tests for the marked-query machinery of Sections 10-12: markings,
   the five operations, ranks, and the terminating process, including the
   headline Theorem 5(B) reproduction. *)

open Logic

let v = Term.var
let c = Term.const
let atom = Atom.make
let r = Theories.Zoo.r2
let g = Theories.Zoo.g2
let levels = [| g; r |]

let mk ~free ~marked atoms =
  Marked.Marked_query.make ~levels
    ~free:(List.map (fun x -> (x, x)) free)
    ~marked:(Term.Set.of_list (free @ marked))
    atoms

(* ------------------------------------------------------------------ *)
(* Proper markings (Observation 50)                                    *)
(* ------------------------------------------------------------------ *)

let test_proper_marking_conditions () =
  let x = v "x" and y = v "y" and z = v "z" in
  (* (i) edge into a marked variable from an unmarked one. *)
  let bad_i = mk ~free:[ y ] ~marked:[] [ atom g [ x; y ] ] in
  Alcotest.(check bool) "(i) violated" false
    (Marked.Marked_query.is_properly_marked bad_i);
  let good_i = mk ~free:[ y ] ~marked:[ x ] [ atom g [ x; y ] ] in
  Alcotest.(check bool) "(i) satisfied" true
    (Marked.Marked_query.is_properly_marked good_i);
  (* (ii) unmarked variable on a cycle. *)
  let bad_ii =
    mk ~free:[ x ] ~marked:[]
      [ atom g [ x; y ]; atom g [ y; z ]; atom g [ z; y ] ]
  in
  Alcotest.(check bool) "(ii) violated" false
    (Marked.Marked_query.is_properly_marked bad_ii);
  (* (iii) same-colour in-edges with disagreeing source markings. *)
  let w = v "w" in
  let bad_iii =
    mk ~free:[ x ] ~marked:[]
      [ atom g [ x; z ]; atom g [ w; z ]; atom r [ y; w ] ]
  in
  (* x marked (free), w unmarked, both G-point at z. *)
  Alcotest.(check bool) "(iii) violated" false
    (Marked.Marked_query.is_properly_marked bad_iii)

let test_all_markings_phi1 () =
  let _, _, phi1 = Theories.Zoo.phi_r 1 in
  let markings = Marked.Marked_query.all_markings ~levels phi1 in
  (* Of the four markings of {x', y'}, the one marking y' alone is improper. *)
  Alcotest.(check int) "three proper markings" 3 (List.length markings);
  Alcotest.(check int) "one totally marked" 1
    (List.length (List.filter Marked.Marked_query.is_totally_marked markings))

(* ------------------------------------------------------------------ *)
(* Maximal variables and the operations (Lemma 55, Definitions 56-58)  *)
(* ------------------------------------------------------------------ *)

let test_classify_cut () =
  let x = v "x" and y = v "y" in
  let q = mk ~free:[ x ] ~marked:[] [ atom g [ x; y ] ] in
  match Marked.Operations.maximal_var q with
  | Some (mv, Marked.Operations.Cut _) ->
      Alcotest.(check bool) "maximal is y" true (Term.equal mv y)
  | _ -> Alcotest.fail "expected cut"

let test_classify_fuse () =
  let x = v "x" and y = v "y" and z = v "z" in
  let q = mk ~free:[ x; y ] ~marked:[] [ atom g [ x; z ]; atom g [ y; z ] ] in
  match Marked.Operations.maximal_var q with
  | Some (_, Marked.Operations.Fuse { z = z1; z' = z2; _ }) ->
      Alcotest.(check bool) "fuses x and y" true
        (not (Term.equal z1 z2))
  | _ -> Alcotest.fail "expected fuse"

let test_classify_reduce () =
  let xr = v "xr" and xg = v "xg" and x = v "x" in
  let q =
    mk ~free:[ xr; xg ] ~marked:[] [ atom r [ xr; x ]; atom g [ xg; x ] ]
  in
  match Marked.Operations.maximal_var q with
  | Some (mv, Marked.Operations.Reduce { level; _ }) ->
      Alcotest.(check bool) "maximal is x" true (Term.equal mv x);
      Alcotest.(check int) "level is R" 1 level
  | _ -> Alcotest.fail "expected reduce"

let test_reduce_shape () =
  (* Definition 58: reduce removes R(x_r,x), G(x_g,x) and adds G(x',x''),
     G(x'',x_r), R(x',x_g) with two fresh variables, in four markings.
     With x_r and x_g unmarked, exactly the V(Q) + {x''} variant is
     improper (footnote 33). *)
  let a = v "a" and xr = v "xr" and xg = v "xg" and x = v "x" in
  let q =
    mk ~free:[ a ] ~marked:[]
      [
        atom r [ a; xr ]; atom g [ a; xg ];
        atom r [ xr; x ]; atom g [ xg; x ];
      ]
  in
  (match Marked.Operations.maximal_var q with
  | Some (mv, Marked.Operations.Reduce _) ->
      Alcotest.(check bool) "pivot is x" true (Term.equal mv x)
  | _ -> Alcotest.fail "expected reduce classification");
  match Marked.Operations.step q with
  | Some results ->
      Alcotest.(check int) "four results" 4 (List.length results);
      List.iter
        (fun q' ->
          Alcotest.(check int) "five atoms" 5
            (List.length q'.Marked.Marked_query.atoms);
          Alcotest.(check int) "two red atoms" 2
            (List.length (Marked.Marked_query.atoms_at_level q' 1));
          Alcotest.(check int) "three green atoms" 3
            (List.length (Marked.Marked_query.atoms_at_level q' 0)))
        results;
      Alcotest.(check int) "exactly one improper" 1
        (List.length
           (List.filter
              (fun q' -> not (Marked.Marked_query.is_properly_marked q'))
              results))
  | None -> Alcotest.fail "expected a step"

let test_cut_to_trivial () =
  let x = v "x" and y = v "y" in
  let q = mk ~free:[ x ] ~marked:[] [ atom g [ x; y ] ] in
  match Marked.Operations.step q with
  | Some [ q' ] ->
      Alcotest.(check bool) "trivial" true (Marked.Marked_query.is_trivial q')
  | _ -> Alcotest.fail "expected one result"

(* ------------------------------------------------------------------ *)
(* Ranks                                                               *)
(* ------------------------------------------------------------------ *)

let test_erk_simple () =
  let a = v "a" and b = v "b" in
  let q = mk ~free:[ a ] ~marked:[] [ atom g [ a; b ] ] in
  (match Marked.Rank.edge_ranks q ~upper_level:1 with
  | [ (_, Marked.Rank.Fin cost) ] ->
      Alcotest.(check (option int)) "erk = 3^0 = 1" (Some 1)
        (Order.Base3.to_int_opt cost)
  | _ -> Alcotest.fail "expected one finite rank");
  (* Behind one red edge: elevation 3^|Q_R| = 3, doubled to 9 by the
     forward red step; the green step then costs 9. *)
  let cc = v "c" and d = v "d" in
  let q2 = mk ~free:[ a ] ~marked:[] [ atom r [ a; cc ]; atom g [ cc; d ] ] in
  match Marked.Rank.edge_ranks q2 ~upper_level:1 with
  | [ (_, Marked.Rank.Fin cost) ] ->
      Alcotest.(check (option int)) "erk = 9" (Some 9)
        (Order.Base3.to_int_opt cost)
  | _ -> Alcotest.fail "expected one finite rank"

let test_erk_backward_descent () =
  (* Reaching a green atom by walking a red edge backwards lowers the
     elevation: R(c,a) with marked a, then G(c,d) costs 3^0 = 1. *)
  let a = v "a" and cc = v "c" and d = v "d" in
  let q = mk ~free:[ a ] ~marked:[] [ atom r [ cc; a ]; atom g [ cc; d ] ] in
  match Marked.Rank.edge_ranks q ~upper_level:1 with
  | [ (_, Marked.Rank.Fin cost) ] ->
      Alcotest.(check (option int)) "erk = 1" (Some 1)
        (Order.Base3.to_int_opt cost)
  | _ -> Alcotest.fail "expected one finite rank"

let test_rank_descent_lemma53 () =
  (* Run the process with rank recording; the set rank must strictly
     decrease at every step (this is exactly the paper's termination
     argument). *)
  List.iter
    (fun n ->
      let _, _, phi = Theories.Zoo.phi_r n in
      let res = Marked.Process.run ~record_ranks:true ~levels phi in
      match res.Marked.Process.rank_trace with
      | Some trace ->
          Alcotest.(check bool)
            (Printf.sprintf "strict descent for n=%d" n)
            true
            (Order.Well_order.strictly_descending
               ~cmp:Marked.Rank.compare_srk trace)
      | None -> Alcotest.fail "trace requested")
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* The process: Theorem 5(B)                                           *)
(* ------------------------------------------------------------------ *)

let test_theorem5b () =
  List.iter
    (fun n ->
      let _, _, phi = Theories.Zoo.phi_r n in
      let res = Marked.Process.rewrite_td phi in
      Alcotest.(check bool) "complete" true res.Marked.Process.complete;
      let _, _, gq = Theories.Zoo.g_path_query (1 lsl n) in
      Alcotest.(check bool)
        (Printf.sprintf "G^{2^%d} in rew(phi_R^%d)" n n)
        true
        (Ucq.exists
           (fun d -> Containment.isomorphic d gq)
           res.Marked.Process.rewriting);
      Alcotest.(check bool) "exponential disjunct size" true
        (Ucq.max_disjunct_size res.Marked.Process.rewriting >= 1 lsl n))
    [ 1; 2; 3 ]

let test_process_agrees_with_chase () =
  (* The computed rewriting evaluated over D must agree with chase
     entailment for every answer tuple — the (spades) invariant. *)
  let _, _, phi = Theories.Zoo.phi_r 1 in
  let res = Marked.Process.rewrite_td phi in
  let instances =
    [
      (let _, _, d = Theories.Instances.path g 2 in d);
      (let _, _, d = Theories.Instances.path g 3 in d);
      (let _, _, d = Theories.Instances.path r 2 in d);
      Fact_set.of_list [ atom g [ c "a"; c "b" ]; atom r [ c "a"; c "s" ] ];
      Fact_set.of_list
        [ atom r [ c "a"; c "b" ]; atom r [ c "c"; c "d" ];
          atom g [ c "b"; c "d" ] ];
    ]
  in
  List.iter
    (fun d ->
      let run = Chase.Engine.run ~max_depth:5 ~max_atoms:60_000 Theories.Zoo.t_d d in
      List.iter
        (fun tuple ->
          let via_chase =
            match Chase.Entailment.entails_run run phi tuple with
            | Chase.Entailment.Entailed _ -> true
            | Chase.Entailment.Not_entailed | Chase.Entailment.Unknown ->
                false
          in
          let via_rew = Marked.Process.holds_via_rewriting res d tuple in
          Alcotest.(check bool)
            (Fmt.str "agree on %a"
               (Fmt.list ~sep:(Fmt.any ",") Term.pp)
               tuple)
            via_chase via_rew)
        (Chase.Entailment.all_tuples d 2))
    instances

let test_exercise46_ablation () =
  (* Without (loop), T_d is not BDD (Exercise 46): on the chase side, the
     query phi_R^1(a,b) on instances where b has only red support keeps
     needing deeper chases... we check the cheap witness: the process'
     rewriting relies on chase facts that (loop) provides, i.e. the chase
     of T_d derives phi_R^1 positives that T_d-without-loop cannot. *)
  let d =
    Fact_set.of_list
      [ atom g [ c "a"; c "b" ]; atom g [ c "b"; c "e" ] ]
  in
  let _, _, phi = Theories.Zoo.phi_r 1 in
  let with_loop =
    Chase.Entailment.entails ~max_depth:5 ~max_atoms:60_000 Theories.Zoo.t_d d
      phi [ c "a"; c "e" ]
  in
  (match with_loop with
  | Chase.Entailment.Entailed _ -> ()
  | _ -> Alcotest.fail "T_d should entail phi_R^1(a,e) on G^2");
  match
    Chase.Entailment.entails ~max_depth:5 ~max_atoms:60_000
      Theories.Zoo.t_d_noloop d phi [ c "a"; c "e" ]
  with
  | Chase.Entailment.Entailed _ -> ()
  | _ ->
      (* Without loop the chase is smaller but phi_R^1 is still derivable
         via (pins) + (grid); the BDD failure shows up for other queries.
         Accept either outcome here; the real divergence test follows. *)
      ()

let test_tdk3_small () =
  (* Section 12 with K = 3: the analogue of phi at the top level pair. *)
  let _, _, phi = Theories.Zoo.phi_i 3 1 in
  let res = Marked.Process.rewrite_tdk 3 phi in
  Alcotest.(check bool) "complete" true res.Marked.Process.complete;
  (* The rewriting contains the I_2-path of length 2 disjunct. *)
  let _, _, i2q = Theories.Zoo.i_path_query 2 2 in
  Alcotest.(check bool) "I_2^2 disjunct" true
    (Ucq.exists
       (fun d -> Containment.isomorphic d i2q)
       res.Marked.Process.rewriting)

let test_tdk_unsat_pattern () =
  (* K = 3: an unmarked variable with I_3 and I_1 in-edges (non-adjacent)
     is improper — no chase term has that in-pattern. *)
  let lv3 =
    Array.init 3 (fun i -> Symbol.make (Printf.sprintf "I%d" (i + 1)) ~arity:2)
  in
  let x = v "x" and y = v "y" and z = v "z" in
  let q =
    Marked.Marked_query.make ~levels:lv3
      ~free:[ (x, x); (y, y) ]
      ~marked:(Term.Set.of_list [ x; y ])
      [ Atom.make lv3.(2) [ x; z ]; Atom.make lv3.(0) [ y; z ] ]
  in
  Alcotest.(check bool) "improper for K=3" false
    (Marked.Marked_query.is_properly_marked q)

(* ------------------------------------------------------------------ *)
(* Lemma 52 (soundness of single operations) as a property             *)
(* ------------------------------------------------------------------ *)

let gen_green_red =
  (* Random small instances over G/R. *)
  QCheck.Gen.(
    list_size (1 -- 5)
      (triple bool (0 -- 3) (0 -- 3)))

let instance_of edges =
  Fact_set.of_list
    (List.map
       (fun (is_green, i, j) ->
         atom
           (if is_green then g else r)
           [ c (Printf.sprintf "k%d" i); c (Printf.sprintf "k%d" j) ])
       edges)

let prop_lemma52_phi1 =
  (* Full-process soundness doubles as per-operation soundness here: for
     random instances, the rewriting of phi_R^1 agrees with the chase. *)
  QCheck.Test.make ~count:30 ~name:"process rewriting = chase (random D)"
    (QCheck.make gen_green_red) (fun edges ->
      let d = instance_of edges in
      let _, _, phi = Theories.Zoo.phi_r 1 in
      let res = Marked.Process.rewrite_td phi in
      let run = Chase.Engine.run ~max_depth:5 ~max_atoms:60_000 Theories.Zoo.t_d d in
      List.for_all
        (fun tuple ->
          let via_chase =
            match Chase.Entailment.entails_run run phi tuple with
            | Chase.Entailment.Entailed _ -> true
            | _ -> false
          in
          Bool.equal via_chase
            (Marked.Process.holds_via_rewriting res d tuple))
        (Chase.Entailment.all_tuples d 2))

let prop_marked_holds_consistent =
  (* Definition 48 vs the union over S_0: Ch |= phi(abar) iff some proper
     marking of phi is satisfied with its marking constraints. *)
  QCheck.Test.make ~count:20 ~name:"S_0 covers plain satisfaction"
    (QCheck.make gen_green_red) (fun edges ->
      let d = instance_of edges in
      let _, _, phi = Theories.Zoo.phi_r 1 in
      let run = Chase.Engine.run ~max_depth:4 ~max_atoms:40_000 Theories.Zoo.t_d d in
      let markings = Marked.Marked_query.all_markings ~levels phi in
      List.for_all
        (fun tuple ->
          let plain =
            match Chase.Entailment.entails_run run phi tuple with
            | Chase.Entailment.Entailed _ -> true
            | _ -> false
          in
          let via_markings =
            List.exists
              (fun mq -> Marked.Marked_query.holds run mq tuple)
              markings
          in
          Bool.equal plain via_markings)
        (Chase.Entailment.all_tuples d 2))

let test_asymmetric_phi () =
  (* A lopsided phi: R^2 on the left leg, R^1 on the right. The process
     must still terminate and agree with the chase. *)
  let x = v "x" and y = v "y" in
  let x1 = v "as1" and x2 = v "as2" and y1 = v "as3" in
  let phi =
    Cq.make ~free:[ x; y ]
      [
        atom r [ x; x1 ]; atom r [ x1; x2 ]; atom r [ y; y1 ];
        atom g [ x2; y1 ];
      ]
  in
  let res = Marked.Process.rewrite_td phi in
  Alcotest.(check bool) "complete" true res.Marked.Process.complete;
  Alcotest.(check bool) "nonempty rewriting" true
    (not (Ucq.is_empty res.Marked.Process.rewriting));
  (* Cross-validate on a couple of instances. *)
  List.iter
    (fun d ->
      let run =
        Chase.Engine.run ~max_depth:6 ~max_atoms:100_000 Theories.Zoo.t_d d
      in
      List.iter
        (fun tuple ->
          let via_chase =
            match Chase.Entailment.entails_run run phi tuple with
            | Chase.Entailment.Entailed _ -> true
            | _ -> false
          in
          Alcotest.(check bool)
            (Fmt.str "asym agree on %a"
               (Fmt.list ~sep:(Fmt.any ",") Term.pp)
               tuple)
            via_chase
            (Marked.Process.holds_via_rewriting res d tuple))
        (Chase.Entailment.all_tuples d 2))
    [
      (let _, _, d = Theories.Instances.path g 3 in d);
      Fact_set.of_list
        [ atom r [ c "a"; c "b" ]; atom g [ c "b"; c "e" ];
          atom g [ c "e"; c "f" ] ];
    ]

let test_single_green_edge_query () =
  (* rew(G(x,y)) under T_d: a G edge between two instance constants exists
     in the chase only if it is in D (Observation 49), so the rewriting is
     the query itself. *)
  let x = v "x" and y = v "y" in
  let q = Cq.make ~free:[ x; y ] [ atom g [ x; y ] ] in
  let res = Marked.Process.rewrite_td q in
  Alcotest.(check bool) "complete" true res.Marked.Process.complete;
  Alcotest.(check int) "one disjunct" 1
    (Ucq.cardinal res.Marked.Process.rewriting);
  Alcotest.(check int) "of size one" 1
    (Ucq.max_disjunct_size res.Marked.Process.rewriting)

let test_half_free_query () =
  (* phi(x) = exists u. R(x,u): true for every x in the domain thanks to
     (pins) — the process should discover a trivial disjunct. *)
  let x = v "x" and u = v "u" in
  let q = Cq.make ~free:[ x ] [ atom r [ x; u ] ] in
  let res = Marked.Process.rewrite_td q in
  Alcotest.(check bool) "complete" true res.Marked.Process.complete;
  Alcotest.(check bool) "has a trivial disjunct" true
    (res.Marked.Process.trivial <> []);
  (* And indeed any domain element answers it. *)
  let _, _, d = Theories.Instances.path g 2 in
  Alcotest.(check bool) "holds for a0" true
    (Marked.Process.holds_via_rewriting res d [ c "a0" ])

let test_tdk_indegree_analysis () =
  (* DESIGN.md's derived condition (iv) for K > 2 rests on this chase
     property: an invented term has either a single in-edge or exactly one
     I_{i+1} and one I_i in-edge — never in-edges at non-adjacent levels.
     Validate it on an actual T_d^3 chase. *)
  let kk = 3 in
  let theory = Theories.Zoo.t_dk kk in
  let i1 = Theories.Zoo.i_k 1 in
  let _, _, d =
    Theories.Instances.path i1 3
  in
  let run = Chase.Engine.run ~max_depth:4 ~max_atoms:60_000 theory d in
  let dom_d = Fact_set.domain d in
  (* The (loop) element is the one legitimate exception: it has self-loops
     in every colour, but lives in its own connected component, unreachable
     from any marked variable — which is what keeps condition (iv) sound
     for the (connected, answered) queries of the process. *)
  let loop_elements =
    List.filter_map
      (fun a ->
        if Term.equal (Atom.arg a 0) (Atom.arg a 1) then Some (Atom.arg a 0)
        else None)
      (Fact_set.atoms (Chase.Engine.result run))
    |> Term.Set.of_list
  in
  let in_levels = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let rel = Atom.rel a in
      let level =
        (* I1 -> 0, I2 -> 1, I3 -> 2 *)
        int_of_string (String.sub (Symbol.name rel) 1 1) - 1
      in
      let tgt = Atom.arg a 1 in
      if
        (not (Term.Set.mem tgt dom_d))
        && not (Term.Set.mem tgt loop_elements)
      then begin
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt in_levels (Term.hash tgt))
        in
        if not (List.mem level prev) then
          Hashtbl.replace in_levels (Term.hash tgt) (level :: prev)
      end)
    (Fact_set.atoms (Chase.Engine.result run));
  Hashtbl.iter
    (fun _ levels_seen ->
      match List.sort Int.compare levels_seen with
      | [] | [ _ ] -> ()
      | [ a; b ] ->
          Alcotest.(check bool) "adjacent levels only" true (b = a + 1)
      | _ -> Alcotest.fail "more than two in-levels on an invented term")
    in_levels

let test_lemma53_per_operation () =
  (* Lemma 53 case by case, checked at every step of the process on
     phi_R^2 via the on_step hook. Atom identity is preserved exactly for
     cut (removal) and reduce (the untouched atoms), so ranks can be
     compared per atom. *)
  let erk_map q =
    List.map
      (fun (a, e) -> (a, e))
      (Marked.Rank.edge_ranks q ~upper_level:1)
  in
  let find_rank ranks a =
    List.find_map
      (fun (a', e) -> if Atom.equal a a' then Some e else None)
      ranks
  in
  let red_count q = List.length (Marked.Marked_query.atoms_at_level q 1) in
  let checks = ref 0 in
  let on_step ~before ~classification ~results =
    let ranks_before = lazy (erk_map before) in
    match classification with
    | Marked.Operations.Cut atom ->
        incr checks;
        let level = Marked.Marked_query.level_of before atom in
        List.iter
          (fun q' ->
            if level = 1 then
              (* cut-red: |Q_R| strictly decreases (Lemma 53 i). *)
              Alcotest.(check bool) "cut-red decreases |Q_R|" true
                (red_count q' < red_count before)
            else begin
              (* cut-green: |Q_R| unchanged, no erk increases (ii). *)
              Alcotest.(check int) "cut-green keeps |Q_R|"
                (red_count before) (red_count q');
              List.iter
                (fun (a, e') ->
                  match find_rank (Lazy.force ranks_before) a with
                  | Some e ->
                      Alcotest.(check bool) "cut-green erk non-increasing"
                        true
                        (Marked.Rank.compare_erk e' e <= 0)
                  | None -> ())
                (erk_map q')
            end)
          results
    | Marked.Operations.Fuse _ ->
        incr checks;
        List.iter
          (fun q' ->
            (* fuse (iii): |Q_R| never increases. *)
            Alcotest.(check bool) "fuse |Q_R| non-increasing" true
              (red_count q' <= red_count before))
          results
    | Marked.Operations.Reduce { red = _; green; _ } ->
        incr checks;
        List.iter
          (fun q' ->
            (* reduce (iv a): |Q_R| unchanged. *)
            Alcotest.(check int) "reduce keeps |Q_R|" (red_count before)
              (red_count q');
            if Marked.Marked_query.is_properly_marked q' then begin
              let rb = Lazy.force ranks_before in
              match find_rank rb green with
              | Some old_rank ->
                  List.iter
                    (fun (a, e') ->
                      match find_rank rb a with
                      | Some e ->
                          (* (iv c): surviving atoms do not go up. *)
                          Alcotest.(check bool) "reduce survivors" true
                            (Marked.Rank.compare_erk e' e <= 0)
                      | None ->
                          (* (iv b): the fresh green atoms rank strictly
                             below the removed one. *)
                          Alcotest.(check bool) "reduce new atoms lower" true
                            (Marked.Rank.compare_erk e' old_rank < 0))
                    (erk_map q')
              | None -> ()
            end)
          results
    | Marked.Operations.Unsatisfiable -> ()
  in
  let _, _, phi = Theories.Zoo.phi_r 2 in
  let res = Marked.Process.rewrite_td ~on_step phi in
  Alcotest.(check bool) "complete" true res.Marked.Process.complete;
  Alcotest.(check bool) "exercised many steps" true (!checks >= 10)

let () =
  Alcotest.run "marked"
    [
      ( "markings",
        [
          Alcotest.test_case "observation 50 conditions" `Quick
            test_proper_marking_conditions;
          Alcotest.test_case "S_0 of phi_R^1" `Quick test_all_markings_phi1;
        ] );
      ( "operations",
        [
          Alcotest.test_case "cut" `Quick test_classify_cut;
          Alcotest.test_case "fuse" `Quick test_classify_fuse;
          Alcotest.test_case "reduce" `Quick test_classify_reduce;
          Alcotest.test_case "reduce shape" `Quick test_reduce_shape;
          Alcotest.test_case "cut to trivial" `Quick test_cut_to_trivial;
        ] );
      ( "ranks",
        [
          Alcotest.test_case "erk basics" `Quick test_erk_simple;
          Alcotest.test_case "erk backward" `Quick test_erk_backward_descent;
          Alcotest.test_case "lemma 53 descent" `Quick
            test_rank_descent_lemma53;
          Alcotest.test_case "lemma 53 per operation" `Quick
            test_lemma53_per_operation;
        ] );
      ( "process",
        [
          Alcotest.test_case "theorem 5B" `Quick test_theorem5b;
          Alcotest.test_case "agrees with chase" `Quick
            test_process_agrees_with_chase;
          Alcotest.test_case "exercise 46 smoke" `Quick
            test_exercise46_ablation;
          Alcotest.test_case "T_d^3 small" `Quick test_tdk3_small;
          Alcotest.test_case "T_d^K unsat pattern" `Quick
            test_tdk_unsat_pattern;
          Alcotest.test_case "asymmetric phi" `Quick test_asymmetric_phi;
          Alcotest.test_case "single green edge" `Quick
            test_single_green_edge_query;
          Alcotest.test_case "half-free query" `Quick test_half_free_query;
          Alcotest.test_case "T_d^K in-degree analysis" `Quick
            test_tdk_indegree_analysis;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_lemma52_phi1;
          QCheck_alcotest.to_alcotest prop_marked_holds_consistent;
        ] );
    ]

(* Tests for the Appendix A normalization pipeline: T_NF construction,
   chase equivalence on existential atoms (Lemma 70), ancestor analysis and
   the Crucial Lemma bound, with Example 66 as the star witness. *)

open Logic
module Normalize = Normalization.Normalize
module Ancestry = Normalization.Ancestry

let test_normalize_ta () =
  match Normalize.normalize Theories.Zoo.t_a with
  | None -> Alcotest.fail "T_a normalization should complete"
  | Some nf ->
      (* rew(Human(y)) = {Human(y), Mother(z,y)}: two T_II rules. *)
      Alcotest.(check int) "two separated rules" 2
        (List.length (Theory.rules nf.Normalize.t_ii));
      Alcotest.(check int) "one nullary predicate (M_empty)" 1
        (Symbol.Set.cardinal nf.Normalize.nullary);
      (* Every T_II rule body is a connected CQ plus one nullary atom. *)
      List.iter
        (fun rule ->
          let nullary, rest =
            List.partition
              (fun a -> Symbol.Set.mem (Atom.rel a) nf.Normalize.nullary)
              (Tgd.body rule)
          in
          Alcotest.(check int) "one nullary atom" 1 (List.length nullary);
          Alcotest.(check bool) "rest connected" true
            (rest = [] || Gaifman.connected (Gaifman.of_atoms rest)))
        (Theory.rules nf.Normalize.t_ii)

let test_normalize_ex66 () =
  match Normalize.normalize Theories.Zoo.t_ex66 with
  | None -> Alcotest.fail "Example 66 normalization should complete"
  | Some nf ->
      (* The extend-rule body rewrites to {E,R} and {E,P}; the {E,P} variant
         separates P(z) behind a non-trivial nullary predicate. *)
      Alcotest.(check bool) "at least two nullary predicates" true
        (Symbol.Set.cardinal nf.Normalize.nullary >= 2);
      Alcotest.(check bool) "crucial bound finite" true
        (Normalize.crucial_bound nf < max_int)

let test_lemma70_existential_atoms () =
  (* The existential atoms of Ch(T, D) and Ch(T_NF, D) coincide literally —
     thanks to Skolem naming by head type. *)
  match Normalize.normalize Theories.Zoo.t_ex66 with
  | None -> Alcotest.fail "normalization failed"
  | Some nf ->
      let d = Theories.Instances.ex66_instance 3 in
      (* T_NF derives faster (rewritten bodies skip Datalog detours), so
         give the raw theory a much deeper window. *)
      let run_t = Chase.Engine.run ~max_depth:14 Theories.Zoo.t_ex66 d in
      let run_nf = Chase.Engine.run ~max_depth:4 nf.Normalize.t_nf d in
      let existential_atoms run =
        List.filter
          (fun a ->
            Symbol.equal (Atom.rel a) Theories.Zoo.e2
            && not (Fact_set.mem a d))
          (Fact_set.atoms (Chase.Engine.result run))
      in
      let et = existential_atoms run_t in
      let enf = existential_atoms run_nf in
      Alcotest.(check bool) "both chases derived something" true
        (et <> [] && enf <> []);
      (* Every NF existential atom appears, literally, in the T chase. *)
      List.iter
        (fun a ->
          Alcotest.(check bool)
            (Fmt.str "NF atom %a in T chase" Atom.pp a)
            true
            (List.exists (Atom.equal a) et))
        enf;
      (* Conversely, shallow T atoms appear in the NF prefix. *)
      List.iter
        (fun a ->
          match Chase.Engine.stage_of_atom run_t a with
          | Some s when s <= 4 ->
              Alcotest.(check bool)
                (Fmt.str "T atom %a in NF chase" Atom.pp a)
                true
                (List.exists (Atom.equal a) enf)
          | Some _ | None -> ())
        et

let test_sensible_trees_ta () =
  let run = Chase.Engine.run ~max_depth:4 Theories.Zoo.t_a Theories.Instances.human_abel in
  let trees = Ancestry.sensible_trees run in
  Alcotest.(check int) "one tree" 1 (List.length trees);
  let tree = List.hd trees in
  Alcotest.(check string) "rooted at Abel" "Abel"
    (Fmt.str "%a" Term.pp tree.Ancestry.root);
  (* Depth 4 alternates Mother / Human stages: two sensible atoms. *)
  Alcotest.(check int) "mother chain atoms" 2
    (List.length tree.Ancestry.atoms)

let test_ancestors_basic () =
  let d = Theories.Instances.human_abel in
  let run = Chase.Engine.run ~max_depth:3 Theories.Zoo.t_a d in
  let mother_atoms =
    List.filter
      (fun a -> Symbol.equal (Atom.rel a) Theories.Zoo.mother)
      (Fact_set.atoms (Chase.Engine.result run))
  in
  List.iter
    (fun a ->
      let anc = Ancestry.ancestors run Ancestry.First a in
      Alcotest.(check int) "single ancestor Human(Abel)" 1
        (Atom.Set.cardinal anc);
      Alcotest.(check bool) "ancestors in D" true
        (Fact_set.subset (Fact_set.of_set anc) d))
    mother_atoms

let test_example66_unbounded_vs_nf () =
  (* The paper's Example 66 phenomenon: under T with an adversarial parent
     choice the chain's ancestor set grows with the number of P-facts;
     under T_NF it stays bounded by the crucial bound. *)
  let counts =
    List.map
      (fun m ->
        let d = Theories.Instances.ex66_instance m in
        let run =
          Chase.Engine.run ~max_depth:(m + 2) Theories.Zoo.t_ex66 d
        in
        Ancestry.max_tree_ancestors run (Ancestry.Adversarial 17))
      [ 2; 5; 8 ]
  in
  (match counts with
  | [ c2; c5; c8 ] ->
      Alcotest.(check bool)
        (Fmt.str "ancestors grow: %d < %d <= %d" c2 c5 c8)
        true
        (c2 < c5 && c5 <= c8)
  | _ -> Alcotest.fail "unexpected");
  match Normalize.normalize Theories.Zoo.t_ex66 with
  | None -> Alcotest.fail "normalization failed"
  | Some nf ->
      let bound = Normalize.crucial_bound nf in
      List.iter
        (fun m ->
          let d = Theories.Instances.ex66_instance m in
          let run = Chase.Engine.run ~max_depth:(m + 2) nf.Normalize.t_nf d in
          let worst =
            List.fold_left max 0
              (List.map
                 (fun salt ->
                   Ancestry.max_tree_ancestors run (Ancestry.Adversarial salt))
                 [ 1; 17; 99 ])
          in
          Alcotest.(check bool)
            (Fmt.str "NF ancestors %d within bound %d (m=%d)" worst bound m)
            true (worst <= bound))
        [ 2; 5; 8 ]

let test_crucial_constants () =
  match Normalize.normalize Theories.Zoo.t_a with
  | None -> Alcotest.fail "normalization failed"
  | Some nf ->
      let k, h, n, cap_n = Normalize.constants nf in
      Alcotest.(check bool) "k >= 1" true (k >= 1);
      Alcotest.(check bool) "h >= 1" true (h >= 1);
      Alcotest.(check bool) "n >= 2" true (n >= 2);
      Alcotest.(check bool) "N >= n" true (cap_n >= n)

let test_locality_constant_pipeline () =
  (* The full Theorem 3 pipeline on T_a: normalize, extract M * h^{n_at},
     and validate the constant on sample instances. *)
  let samples =
    [
      Theories.Instances.human_abel;
      Fact_set.of_list
        [
          Atom.make Theories.Zoo.human [ Term.const "h1" ];
          Atom.make Theories.Zoo.mother [ Term.const "m"; Term.const "h1" ];
        ];
    ]
  in
  match
    Normalization.Crucial.locality_constant Theories.Zoo.t_a ~samples
  with
  | Some l ->
      Alcotest.(check bool) "constant positive" true (l >= 1);
      Alcotest.(check bool) "validates on samples" true
        (Normalization.Crucial.validate_locality ~depth:3 Theories.Zoo.t_a
           ~l:(min l 4) samples)
  | None -> Alcotest.fail "pipeline should produce a constant for T_a"

let test_n_at_estimate () =
  let samples =
    [ (let _, _, d = Theories.Instances.path Theories.Zoo.e2 4 in d) ]
  in
  let n_at =
    Normalization.Crucial.estimate_n_at Theories.Zoo.t_loopcut samples
  in
  Alcotest.(check bool) "n_at in [1;2]" true (n_at >= 1 && n_at <= 2)

let () =
  Alcotest.run "normalization"
    [
      ( "normalize",
        [
          Alcotest.test_case "T_a" `Quick test_normalize_ta;
          Alcotest.test_case "Example 66" `Quick test_normalize_ex66;
          Alcotest.test_case "Lemma 70" `Quick test_lemma70_existential_atoms;
          Alcotest.test_case "crucial constants" `Quick test_crucial_constants;
        ] );
      ( "ancestry",
        [
          Alcotest.test_case "sensible trees" `Quick test_sensible_trees_ta;
          Alcotest.test_case "ancestors" `Quick test_ancestors_basic;
          Alcotest.test_case "Example 66 vs T_NF" `Quick
            test_example66_unbounded_vs_nf;
        ] );
      ( "crucial",
        [
          Alcotest.test_case "locality constant pipeline" `Quick
            test_locality_constant_pipeline;
          Alcotest.test_case "n_at estimate" `Quick test_n_at_estimate;
        ] );
    ]

(* Tests for the chase variants (oblivious / restricted), the executable
   exercises, and the rendering helpers. *)

open Logic

let c = Term.const
let atom = Atom.make

(* ------------------------------------------------------------------ *)
(* Restricted chase                                                    *)
(* ------------------------------------------------------------------ *)

let test_restricted_terminates_on_spouse () =
  (* T_spouse: the restricted chase closes the spouse loop with one null
     and stops; the semi-oblivious chase keeps inventing spouses forever. *)
  let d = Fact_set.of_list [ atom Theories.Zoo.person [ c "alice" ] ] in
  let r = Chase.Variants.run_restricted Theories.Zoo.t_spouse d in
  Alcotest.(check bool) "restricted saturates" true r.Chase.Variants.saturated;
  Alcotest.(check bool) "small model" true
    (Fact_set.cardinal r.Chase.Variants.facts <= 6);
  Alcotest.(check bool) "result is a model" true
    (Theory.satisfied_in Theories.Zoo.t_spouse r.Chase.Variants.facts);
  let so = Chase.Engine.run ~max_depth:8 Theories.Zoo.t_spouse d in
  Alcotest.(check bool) "semi-oblivious does not saturate" false
    (Chase.Engine.saturated so)

let test_restricted_diverges_on_loopcut () =
  (* Once E(b, null) is added, the null needs its own successor: the
     restricted chase of Exercise 23's theory does not terminate either
     (termination differences are direction-specific). *)
  let d = Theories.Instances.single_edge Theories.Zoo.e2 in
  let r =
    Chase.Variants.run_restricted ~max_applications:60 Theories.Zoo.t_loopcut
      d
  in
  Alcotest.(check bool) "budget trips" false r.Chase.Variants.saturated

let test_restricted_respects_existing_witnesses () =
  (* On a closed model nothing fires at all. *)
  let d =
    Fact_set.of_list
      [ atom Theories.Zoo.e2 [ c "a"; c "b" ]; atom Theories.Zoo.e2 [ c "b"; c "b" ] ]
  in
  let r = Chase.Variants.run_restricted Theories.Zoo.t_p d in
  Alcotest.(check bool) "saturated" true r.Chase.Variants.saturated;
  Alcotest.(check int) "no applications" 0 r.Chase.Variants.steps;
  Alcotest.(check int) "unchanged" 2 (Fact_set.cardinal r.Chase.Variants.facts)

(* ------------------------------------------------------------------ *)
(* Oblivious chase                                                     *)
(* ------------------------------------------------------------------ *)

let test_oblivious_is_coarser () =
  (* A fork: two edges into b. Semi-oblivious invents one successor of b
     (frontier = y only); oblivious invents one per trigger (x matters). *)
  let d =
    Fact_set.of_list
      [
        atom Theories.Zoo.e2 [ c "a1"; c "b" ];
        atom Theories.Zoo.e2 [ c "a2"; c "b" ];
      ]
  in
  let so = Chase.Engine.run ~max_depth:1 Theories.Zoo.t_p d in
  let ob = Chase.Variants.run_oblivious ~max_depth:1 Theories.Zoo.t_p d in
  Alcotest.(check int) "semi-oblivious adds one" 3
    (Fact_set.cardinal (Chase.Engine.result so));
  Alcotest.(check int) "oblivious adds two" 4
    (Fact_set.cardinal ob.Chase.Variants.facts)

let test_oblivious_agrees_on_entailment () =
  (* Both chases are universal models: boolean queries agree (within
     matching depth windows). *)
  let _, _, d = Theories.Instances.path Theories.Zoo.e2 2 in
  let so = Chase.Engine.run ~max_depth:4 Theories.Zoo.t_p d in
  let ob = Chase.Variants.run_oblivious ~max_depth:4 Theories.Zoo.t_p d in
  List.iter
    (fun n ->
      let _, _, q = Theories.Zoo.e_path_query n in
      let bq = Cq.make ~free:[] (Cq.atoms q) in
      Alcotest.(check bool)
        (Printf.sprintf "path %d agrees" n)
        (Cq.boolean_holds bq (Chase.Engine.result so))
        (Cq.boolean_holds bq ob.Chase.Variants.facts))
    [ 1; 2; 3; 4; 5 ]

let test_oblivious_ex66_blowup () =
  (* Footnote 15 / Example 66: with m P-facts the oblivious chase invents
     one successor per (edge, P-fact) pair. *)
  let m = 4 in
  let d = Theories.Instances.ex66_instance m in
  let so = Chase.Engine.run ~max_depth:4 Theories.Zoo.t_ex66 d in
  let ob =
    Chase.Variants.run_oblivious ~max_depth:4 ~max_atoms:50_000
      Theories.Zoo.t_ex66 d
  in
  let count_e fs =
    List.length
      (List.filter
         (fun a -> Symbol.equal (Atom.rel a) Theories.Zoo.e2)
         (Fact_set.atoms fs))
  in
  Alcotest.(check bool) "oblivious strictly bigger" true
    (count_e ob.Chase.Variants.facts > count_e (Chase.Engine.result so))

(* ------------------------------------------------------------------ *)
(* Core chase                                                          *)
(* ------------------------------------------------------------------ *)

let test_core_chase_terminates_on_fes () =
  (* FES theories: the core chase reaches the finite universal model even
     though the semi-oblivious chase is infinite. *)
  let d = Theories.Instances.single_edge Theories.Zoo.e2 in
  let r = Chase.Variants.run_core Theories.Zoo.t_loopcut d in
  Alcotest.(check bool) "terminates" true r.Chase.Variants.saturated;
  Alcotest.(check bool) "result is a model" true
    (Theory.satisfied_in Theories.Zoo.t_loopcut r.Chase.Variants.facts);
  Alcotest.(check bool) "contains D" true
    (Fact_set.subset d r.Chase.Variants.facts);
  Alcotest.(check bool) "small (the core)" true
    (Fact_set.cardinal r.Chase.Variants.facts <= 3);
  let sp =
    Chase.Variants.run_core Theories.Zoo.t_spouse
      (Fact_set.of_list [ atom Theories.Zoo.person [ c "ada" ] ])
  in
  Alcotest.(check bool) "T_spouse terminates too" true
    sp.Chase.Variants.saturated

let test_core_chase_diverges_on_non_fes () =
  let d = Theories.Instances.single_edge Theories.Zoo.e2 in
  let r = Chase.Variants.run_core ~max_rounds:8 Theories.Zoo.t_p d in
  Alcotest.(check bool) "T_p core chase never stops" false
    r.Chase.Variants.saturated

let test_core_chase_agrees_with_fes_verdict () =
  (* Cross-validate against the Definition 20 search. *)
  List.iter
    (fun (name, theory, d) ->
      let core_chase_terminates =
        (Chase.Variants.run_core ~max_rounds:8 theory d).Chase.Variants.saturated
      in
      let fes =
        match
          Chase.Termination.core_terminates_on ~max_c:6 ~lookahead:4 theory d
        with
        | Chase.Termination.Holds _ -> true
        | _ -> false
      in
      Alcotest.(check bool) (name ^ ": verdicts agree") fes
        core_chase_terminates)
    [
      ("t_loopcut", Theories.Zoo.t_loopcut,
       Theories.Instances.single_edge Theories.Zoo.e2);
      ("t_p", Theories.Zoo.t_p,
       Theories.Instances.single_edge Theories.Zoo.e2);
      ("t_spouse", Theories.Zoo.t_spouse,
       Fact_set.of_list [ atom Theories.Zoo.person [ c "p0" ] ]);
      ("t_a", Theories.Zoo.t_a, Theories.Instances.human_abel);
    ]

(* ------------------------------------------------------------------ *)
(* Exercises                                                           *)
(* ------------------------------------------------------------------ *)

let test_exercise13_bounded_for_connected () =
  (* T_loopcut is connected: chase-adjacent instance constants stay at
     bounded instance distance, across instance sizes. *)
  List.iter
    (fun n ->
      let _, _, d = Theories.Instances.path Theories.Zoo.e2 n in
      let run = Chase.Engine.run ~max_depth:5 Theories.Zoo.t_loopcut d in
      match Rewriting.Exercises.adjacency_contraction run with
      | Some k ->
          Alcotest.(check bool)
            (Printf.sprintf "bounded at n=%d" n)
            true (k <= 2)
      | None -> Alcotest.fail "connected theory: pairs must stay connected")
    [ 2; 4; 6 ]

let test_exercise13_fails_for_disconnected () =
  (* T_ex66 has a disconnected rule body: the chase makes b_i adjacent to
     the E-chain although they share no component in D — exactly why the
     paper restricts to connected theories. *)
  let d = Theories.Instances.ex66_instance 3 in
  let run = Chase.Engine.run ~max_depth:4 Theories.Zoo.t_ex66 d in
  Alcotest.(check bool) "violation witnessed" true
    (Rewriting.Exercises.adjacency_contraction run = None)

let test_exercise17_delay_bounded () =
  (* Facts about terms appear within a constant number of stages of the
     terms' creation, across instance sizes. *)
  List.iter
    (fun (name, theory, d) ->
      let run = Chase.Engine.run ~max_depth:6 ~max_atoms:60_000 theory d in
      Alcotest.(check bool)
        (name ^ " delay small")
        true
        (Rewriting.Exercises.atom_delay run <= 2))
    [
      ("t_loopcut",
       Theories.Zoo.t_loopcut,
       (let _, _, d = Theories.Instances.path Theories.Zoo.e2 4 in d));
      ("t_d",
       Theories.Zoo.t_d,
       (let _, _, d = Theories.Instances.path Theories.Zoo.g2 3 in d));
      ("t_spouse",
       Theories.Zoo.t_spouse,
       Fact_set.of_list [ atom Theories.Zoo.person [ c "p" ] ]);
    ]

let test_term_birth_stages () =
  let d = Theories.Instances.human_abel in
  let run = Chase.Engine.run ~max_depth:3 Theories.Zoo.t_a d in
  let births = Rewriting.Exercises.term_birth_stages run in
  Alcotest.(check (option int)) "Abel born at 0" (Some 0)
    (Term.Map.find_opt (c "Abel") births);
  let depth1_terms =
    Term.Map.filter (fun _ s -> s = 1) births |> Term.Map.cardinal
  in
  Alcotest.(check int) "one term invented at stage 1" 1 depth1_terms

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let test_render_dot () =
  let _, _, d = Theories.Instances.path Theories.Zoo.g2 2 in
  let run = Chase.Engine.run ~max_depth:1 ~max_atoms:5_000 Theories.Zoo.t_d d in
  let dot =
    Render.to_dot ~highlight:(Fact_set.domain d) (Chase.Engine.result run)
  in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (contains "digraph" dot);
  Alcotest.(check bool) "red edges" true (contains "color=red" dot);
  Alcotest.(check bool) "green edges" true (contains "color=green3" dot);
  Alcotest.(check bool) "highlights" true (contains "doublecircle" dot)

let test_edge_listing () =
  let _, _, d = Theories.Instances.path Theories.Zoo.g2 3 in
  let listing = Render.edge_listing d in
  Alcotest.(check int) "three lines" 3
    (List.length (String.split_on_char '\n' listing));
  let truncated = Render.edge_listing ~max_edges:2 d in
  Alcotest.(check int) "truncation marker" 3
    (List.length (String.split_on_char '\n' truncated))

(* ------------------------------------------------------------------ *)
(* Properties over random theories                                     *)
(* ------------------------------------------------------------------ *)

let prop_restricted_model_when_saturated =
  QCheck.Test.make ~count:40
    ~name:"restricted chase result is a model when saturated"
    (QCheck.make (QCheck.Gen.int_bound 1000))
    (fun seed ->
      let theory =
        Theories.Generators.random_linear_binary ~seed ~rels:3 ~rules:3
      in
      let d =
        Theories.Generators.random_instance_for ~seed theory ~nodes:3 ~facts:5
      in
      let r =
        Chase.Variants.run_restricted ~max_applications:300 ~max_atoms:5_000
          theory d
      in
      (not r.Chase.Variants.saturated)
      || Theory.satisfied_in theory r.Chase.Variants.facts)

let prop_core_chase_model_when_saturated =
  QCheck.Test.make ~count:30
    ~name:"core chase result is a model when saturated"
    (QCheck.make (QCheck.Gen.int_bound 1000))
    (fun seed ->
      let theory =
        Theories.Generators.random_linear_binary ~seed ~rels:2 ~rules:3
      in
      let d =
        Theories.Generators.random_instance_for ~seed theory ~nodes:3 ~facts:4
      in
      let r =
        Chase.Variants.run_core ~max_rounds:6 ~max_atoms:5_000 theory d
      in
      (not r.Chase.Variants.saturated)
      || Theory.satisfied_in theory r.Chase.Variants.facts
         && Fact_set.subset d r.Chase.Variants.facts)

let prop_oblivious_contains_semi_entailment =
  QCheck.Test.make ~count:30
    ~name:"semi-oblivious positives hold in the oblivious chase"
    (QCheck.make (QCheck.Gen.int_bound 1000))
    (fun seed ->
      let theory =
        Theories.Generators.random_linear_binary ~seed ~rels:2 ~rules:3
      in
      let d =
        Theories.Generators.random_instance_for ~seed theory ~nodes:3 ~facts:4
      in
      QCheck.assume (not (Fact_set.is_empty d));
      let so = Chase.Engine.run ~max_depth:3 ~max_atoms:5_000 theory d in
      let ob =
        Chase.Variants.run_oblivious ~max_depth:3 ~max_atoms:20_000 theory d
      in
      (* Any boolean 2-path query over the signature agrees positively. *)
      List.for_all
        (fun rel ->
          let x = Term.var "px" and y = Term.var "py" and z = Term.var "pz" in
          let q =
            Cq.make ~free:[]
              [ Atom.make rel [ x; y ]; Atom.make rel [ y; z ] ]
          in
          (not (Cq.boolean_holds q (Chase.Engine.result so)))
          || Cq.boolean_holds q ob.Chase.Variants.facts)
        (List.filter
           (fun s -> Symbol.arity s = 2)
           (Symbol.Set.elements (Theory.signature theory))))

let () =
  Alcotest.run "variants"
    [
      ( "restricted",
        [
          Alcotest.test_case "terminates on T_spouse" `Quick
            test_restricted_terminates_on_spouse;
          Alcotest.test_case "diverges on T_loopcut" `Quick
            test_restricted_diverges_on_loopcut;
          Alcotest.test_case "respects witnesses" `Quick
            test_restricted_respects_existing_witnesses;
        ] );
      ( "oblivious",
        [
          Alcotest.test_case "coarser than semi-oblivious" `Quick
            test_oblivious_is_coarser;
          Alcotest.test_case "entailment agrees" `Quick
            test_oblivious_agrees_on_entailment;
          Alcotest.test_case "example 66 blow-up" `Quick
            test_oblivious_ex66_blowup;
        ] );
      ( "core chase",
        [
          Alcotest.test_case "terminates on FES" `Quick
            test_core_chase_terminates_on_fes;
          Alcotest.test_case "diverges on non-FES" `Quick
            test_core_chase_diverges_on_non_fes;
          Alcotest.test_case "agrees with FES verdict" `Quick
            test_core_chase_agrees_with_fes_verdict;
        ] );
      ( "exercises",
        [
          Alcotest.test_case "exercise 13 bounded" `Quick
            test_exercise13_bounded_for_connected;
          Alcotest.test_case "exercise 13 needs connectivity" `Quick
            test_exercise13_fails_for_disconnected;
          Alcotest.test_case "exercise 17 delay" `Quick
            test_exercise17_delay_bounded;
          Alcotest.test_case "term births" `Quick test_term_birth_stages;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_restricted_model_when_saturated;
          QCheck_alcotest.to_alcotest prop_core_chase_model_when_saturated;
          QCheck_alcotest.to_alcotest prop_oblivious_contains_semi_entailment;
        ] );
      ( "render",
        [
          Alcotest.test_case "dot output" `Quick test_render_dot;
          Alcotest.test_case "edge listing" `Quick test_edge_listing;
        ] );
    ]

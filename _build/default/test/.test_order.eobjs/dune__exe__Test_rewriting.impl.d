test/test_rewriting.ml: Alcotest Atom Chase Containment Cq Fact_set Fmt List Logic Marked Printf QCheck QCheck_alcotest Rewriting Symbol Term Theories Theory Ucq

test/test_variants.ml: Alcotest Atom Chase Cq Fact_set List Logic Printf QCheck QCheck_alcotest Render Rewriting String Symbol Term Theories Theory

test/test_order.ml: Alcotest Bool Fun Gen Int List Order QCheck QCheck_alcotest

test/test_marked.mli:

test/test_theories.ml: Alcotest Atom Chase Cq Fact_set Gaifman List Logic Printf Symbol Term Tgd Theories Theory

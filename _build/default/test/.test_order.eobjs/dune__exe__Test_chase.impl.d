test/test_chase.ml: Alcotest Atom Chase Cq Fact_set Fmt Hashtbl List Logic Option Printf QCheck QCheck_alcotest Symbol Term Tgd Theories Theory

test/test_paper.ml: Alcotest Atom Chase Containment Cq Fact_set Fmt List Logic Printf Rewriting String Symbol Term Theories Theory Ucq

test/test_normalization.mli:

test/test_rewriting.mli:

test/test_normalization.ml: Alcotest Atom Chase Fact_set Fmt Gaifman List Logic Normalization Symbol Term Tgd Theories Theory

test/test_frontier.ml: Alcotest Atom Bdd_probe Containment Cq Fact_set Frontier Gaifman Instances List Reasoner Rewrite String Term Theory Transform Ucq Zoo

test/test_marked.ml: Alcotest Array Atom Bool Chase Containment Cq Fact_set Fmt Hashtbl Int Lazy List Logic Marked Option Order Printf QCheck QCheck_alcotest String Symbol Term Theories Ucq

test/test_frontier.mli:

test/test_logic.ml: Alcotest Atom Containment Cq Fact_set Fmt Gaifman Homomorphism List Logic Parser Printf QCheck QCheck_alcotest Symbol Term Tgd Theories Theory Ucq

(* Tests for the order library: Dershowitz-Manna multiset ordering and
   lexicographic combinators (the termination scaffolding of Section 10). *)

let cmp = Int.compare

let ms l = Order.Multiset.of_list ~cmp l

(* The textbook Dershowitz-Manna definition, used as an oracle: M < N iff
   M <> N and for every x with M(x) > N(x) there is y > x with N(y) > M(y). *)
let naive_dm_lt m n =
  let mult x t = Order.Multiset.multiplicity x t in
  let support = List.sort_uniq cmp (Order.Multiset.to_list m @ Order.Multiset.to_list n) in
  (not (Order.Multiset.equal m n))
  && List.for_all
       (fun x ->
         mult x m <= mult x n
         || List.exists (fun y -> y > x && mult y n > mult y m) support)
       support

let test_empty () =
  Alcotest.(check bool) "empty < {1}" true (Order.Multiset.lt (ms []) (ms [ 1 ]));
  Alcotest.(check bool) "not {1} < empty" false (Order.Multiset.lt (ms [ 1 ]) (ms []));
  Alcotest.(check bool) "empty = empty" true (Order.Multiset.equal (ms []) (ms []))

let test_classic_descent () =
  (* Replacing one big element by many smaller ones descends. *)
  Alcotest.(check bool) "{3;3} > {3;2;2;2;2}" true
    (Order.Multiset.lt (ms [ 3; 2; 2; 2; 2 ]) (ms [ 3; 3 ]));
  Alcotest.(check bool) "{5} > {4;4;4;4}" true
    (Order.Multiset.lt (ms [ 4; 4; 4; 4 ]) (ms [ 5 ]));
  Alcotest.(check bool) "{2;2} < {2;3}" true
    (Order.Multiset.lt (ms [ 2; 2 ]) (ms [ 2; 3 ]))

let test_operations () =
  let m = ms [ 1; 2; 2; 3 ] in
  Alcotest.(check int) "cardinal" 4 (Order.Multiset.cardinal m);
  Alcotest.(check int) "multiplicity 2" 2 (Order.Multiset.multiplicity 2 m);
  Alcotest.(check int) "multiplicity 7" 0 (Order.Multiset.multiplicity 7 m);
  let m' = Order.Multiset.remove 2 m in
  Alcotest.(check int) "after remove" 1 (Order.Multiset.multiplicity 2 m');
  Alcotest.(check bool) "remove descends" true (Order.Multiset.lt m' m);
  let u = Order.Multiset.union (ms [ 1 ]) (ms [ 1; 5 ]) in
  Alcotest.(check int) "union multiplicity" 2 (Order.Multiset.multiplicity 1 u);
  Alcotest.(check (list int)) "to_list sorted" [ 1; 1; 5 ] (Order.Multiset.to_list u)

let arbitrary_small_list =
  QCheck.(list_of_size Gen.(0 -- 6) (int_bound 5))

let prop_agrees_with_naive =
  QCheck.Test.make ~count:500 ~name:"multiset lt agrees with textbook DM"
    (QCheck.pair arbitrary_small_list arbitrary_small_list)
    (fun (l1, l2) ->
      let m = ms l1 and n = ms l2 in
      Bool.equal (Order.Multiset.lt m n) (naive_dm_lt m n))

let prop_irreflexive =
  QCheck.Test.make ~count:200 ~name:"multiset lt irreflexive"
    arbitrary_small_list
    (fun l -> not (Order.Multiset.lt (ms l) (ms l)))

let prop_total =
  QCheck.Test.make ~count:500 ~name:"multiset order total"
    (QCheck.pair arbitrary_small_list arbitrary_small_list)
    (fun (l1, l2) ->
      let m = ms l1 and n = ms l2 in
      let lt = Order.Multiset.lt m n
      and gt = Order.Multiset.lt n m
      and eq = Order.Multiset.equal m n in
      List.length (List.filter Fun.id [ lt; gt; eq ]) = 1)

let prop_transitive =
  QCheck.Test.make ~count:500 ~name:"multiset lt transitive"
    (QCheck.triple arbitrary_small_list arbitrary_small_list
       arbitrary_small_list)
    (fun (l1, l2, l3) ->
      let a = ms l1 and b = ms l2 and c = ms l3 in
      (not (Order.Multiset.lt a b && Order.Multiset.lt b c))
      || Order.Multiset.lt a c)

let prop_add_increases =
  QCheck.Test.make ~count:200 ~name:"adding an element strictly increases"
    (QCheck.pair arbitrary_small_list (QCheck.int_bound 5))
    (fun (l, x) ->
      let m = ms l in
      Order.Multiset.lt m (Order.Multiset.add x m))

(* ------------------------------------------------------------------ *)
(* Base-3 exact cost arithmetic (used by the rank computation)         *)
(* ------------------------------------------------------------------ *)

let b3 = Order.Base3.of_int

let test_base3_basics () =
  Alcotest.(check bool) "zero" true (Order.Base3.is_zero Order.Base3.zero);
  Alcotest.(check (option int)) "27" (Some 27)
    (Order.Base3.to_int_opt (Order.Base3.power_of_3 3));
  Alcotest.(check (option int)) "3^0 = 1" (Some 1)
    (Order.Base3.to_int_opt (Order.Base3.power_of_3 0));
  Alcotest.(check (option int)) "9 + 27 = 36" (Some 36)
    (Order.Base3.to_int_opt
       (Order.Base3.add (Order.Base3.power_of_3 2) (Order.Base3.power_of_3 3)))

let test_base3_huge () =
  (* Far beyond native integers: 3^80 vs 3^80 + 1. *)
  let huge = Order.Base3.power_of_3 80 in
  Alcotest.(check (option int)) "does not fit an int" None
    (Order.Base3.to_int_opt huge);
  let bigger = Order.Base3.add huge (b3 1) in
  Alcotest.(check bool) "3^80 < 3^80 + 1" true
    (Order.Base3.compare huge bigger < 0);
  Alcotest.(check bool) "equal to itself" true
    (Order.Base3.equal huge (Order.Base3.power_of_3 80))

let prop_base3_add_agrees_with_int =
  QCheck.Test.make ~count:500 ~name:"base3 add agrees with int arithmetic"
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (a, b) ->
      Order.Base3.to_int_opt (Order.Base3.add (b3 a) (b3 b)) = Some (a + b))

let prop_base3_compare_agrees_with_int =
  QCheck.Test.make ~count:500 ~name:"base3 compare agrees with int compare"
    QCheck.(pair (int_bound 100_000) (int_bound 100_000))
    (fun (a, b) ->
      let c = Order.Base3.compare (b3 a) (b3 b) in
      (c < 0 && a < b) || (c = 0 && a = b) || (c > 0 && a > b))

let prop_base3_add_commutative =
  QCheck.Test.make ~count:300 ~name:"base3 add commutative"
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (a, b) ->
      Order.Base3.equal
        (Order.Base3.add (b3 a) (b3 b))
        (Order.Base3.add (b3 b) (b3 a)))

let test_lex2 () =
  let c = Order.Well_order.lex2 Int.compare Int.compare in
  Alcotest.(check bool) "(1,9) < (2,0)" true (c (1, 9) (2, 0) < 0);
  Alcotest.(check bool) "(1,1) < (1,2)" true (c (1, 1) (1, 2) < 0);
  Alcotest.(check bool) "(2,2) = (2,2)" true (c (2, 2) (2, 2) = 0)

let test_lex_list () =
  let c = Order.Well_order.lex_list Int.compare in
  Alcotest.(check bool) "[1;2] < [1;3]" true (c [ 1; 2 ] [ 1; 3 ] < 0);
  Alcotest.(check bool) "[1] < [1;0]" true (c [ 1 ] [ 1; 0 ] < 0);
  Alcotest.(check bool) "[] < [0]" true (c [] [ 0 ] < 0)

let test_descending () =
  let desc = Order.Well_order.strictly_descending ~cmp in
  Alcotest.(check bool) "5 3 1 descends" true (desc [ 5; 3; 1 ]);
  Alcotest.(check bool) "5 5 fails" false (desc [ 5; 5 ]);
  Alcotest.(check bool) "singleton ok" true (desc [ 42 ]);
  Alcotest.(check bool) "empty ok" true (desc [])

let () =
  Alcotest.run "order"
    [
      ( "multiset",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "classic descents" `Quick test_classic_descent;
          Alcotest.test_case "operations" `Quick test_operations;
          QCheck_alcotest.to_alcotest prop_agrees_with_naive;
          QCheck_alcotest.to_alcotest prop_irreflexive;
          QCheck_alcotest.to_alcotest prop_total;
          QCheck_alcotest.to_alcotest prop_transitive;
          QCheck_alcotest.to_alcotest prop_add_increases;
        ] );
      ( "base3",
        [
          Alcotest.test_case "basics" `Quick test_base3_basics;
          Alcotest.test_case "huge values" `Quick test_base3_huge;
          QCheck_alcotest.to_alcotest prop_base3_add_agrees_with_int;
          QCheck_alcotest.to_alcotest prop_base3_compare_agrees_with_int;
          QCheck_alcotest.to_alcotest prop_base3_add_commutative;
        ] );
      ( "well_order",
        [
          Alcotest.test_case "lex2" `Quick test_lex2;
          Alcotest.test_case "lex_list" `Quick test_lex_list;
          Alcotest.test_case "strictly_descending" `Quick test_descending;
        ] );
    ]

(* Integration tests through the public Frontier facade: parsing, the
   high-level pipelines, and a few whole-paper scenarios knitting several
   subsystems together. *)

let parse_theory = Frontier.Parse.theory
let parse_instance = Frontier.Parse.instance
let parse_query = Frontier.Parse.query

let test_quickstart_pipeline () =
  let theory =
    parse_theory
      "mother: Human(y) -> exists z. Mother(y,z). human: Mother(x,y) -> Human(y)"
  in
  let db = parse_instance "Human(abel)" in
  let query = parse_query "(x) :- Mother(x, m)" in
  let via_chase = Frontier.certain_answers ~max_depth:5 theory db query in
  Alcotest.(check int) "one chase answer" 1 (List.length via_chase);
  match Frontier.answer_via_rewriting theory db query with
  | Some via_rew ->
      Alcotest.(check bool) "rewriting agrees" true (via_chase = via_rew)
  | None -> Alcotest.fail "rewriting should complete"

let test_certain_filters_skolems () =
  (* certain_answers must only report tuples over the original domain. *)
  let theory = parse_theory "Human(y) -> exists z. Mother(y,z). Mother(x,y) -> Human(y)" in
  let db = parse_instance "Human(abel)" in
  let q = parse_query "(x) :- Human(x)" in
  let answers = Frontier.certain_answers ~max_depth:4 theory db q in
  Alcotest.(check int) "only abel" 1 (List.length answers)

let test_certain_tuple () =
  let theory = parse_theory "E(x,y) -> exists z. E(y,z)" in
  let db = parse_instance "E(a,b)" in
  let _, _, q3 = Frontier.Zoo.e_path_query 3 in
  Alcotest.(check bool) "path from a" true
    (Frontier.certain ~max_depth:6 theory db
       (Frontier.Cq.make ~free:[] (Frontier.Cq.atoms q3))
       [])

let test_tc_bdd_certificate () =
  (* Example 42's T_c is BDD: the saturating rewriter certifies the atomic
     query (the chain of backward steps is pruned by subsumption). *)
  let open Frontier in
  let a = Term.var "a" and b = Term.var "b" in
  let a' = Term.var "a'" and b' = Term.var "b'" in
  let q = Cq.make ~free:[] [ Atom.make Zoo.r4 [ a; b; a'; b' ] ] in
  let r = rewrite Zoo.t_c q in
  Alcotest.(check bool) "complete" true (r.Rewrite.outcome = Rewrite.Complete);
  (* rew = { exists Rc(...), exists E(...) }. *)
  Alcotest.(check int) "two disjuncts" 2 (Ucq.cardinal r.Rewrite.ucq);
  let edge =
    Cq.make ~free:[] [ Atom.make Zoo.e2 [ Term.var "u"; Term.var "w" ] ]
  in
  Alcotest.(check bool) "E disjunct present" true
    (Ucq.exists (fun d -> Containment.equivalent d edge) r.Rewrite.ucq)

let test_tc_rewriting_agrees_with_chase () =
  let open Frontier in
  let a = Term.var "a" and b = Term.var "b" in
  let a' = Term.var "a'" and b' = Term.var "b'" in
  let q = Cq.make ~free:[] [ Atom.make Zoo.r4 [ a; b; a'; b' ] ] in
  List.iter
    (fun d ->
      Alcotest.(check bool) "agrees" true
        (Bdd_probe.rewriting_certifies ~max_depth:6 Zoo.t_c q [ d ]))
    [
      Instances.cycle Zoo.e2 3;
      (let _, _, d = Instances.path Zoo.e2 2 in d);
      Fact_set.of_list [ Atom.make Zoo.r2 [ Term.const "x"; Term.const "y" ] ];
    ]

let test_classify_facade () =
  let r = Frontier.classify (parse_theory "E(x,y) -> exists z. E(y,z)") in
  Alcotest.(check bool) "linear" true r.Frontier.Classes.linear;
  Alcotest.(check bool) "binary" true r.Frontier.Classes.binary

let test_parse_errors_surface () =
  match parse_theory "E(x,y -> E(y,x)" with
  | exception Frontier.Parse.Error _ -> ()
  | _ -> Alcotest.fail "expected Parse.Error"

let test_multiline_theory_file_style () =
  (* The @file style content: comments, blank lines, several rules. *)
  let theory =
    parse_theory
      "# the paper's T_d\n\
       loop: true -> exists x. R(x,x), G(x,x)\n\
       \n\
       pins: dom(x) -> exists z z'. R(x,z), G(x,z')\n\
       grid: R(x,x'), G(x,u), G(u,u') -> exists z. R(u',z), G(x',z)\n"
  in
  Alcotest.(check int) "three rules" 3
    (List.length (Frontier.Theory.rules theory));
  (* It really is T_d: chase G^2 and compare against the zoo's version. *)
  let _, _, d = Frontier.Instances.path Frontier.Zoo.g2 2 in
  let r1 = Frontier.Chase_engine.run ~max_depth:2 theory d in
  let r2 = Frontier.Chase_engine.run ~max_depth:2 Frontier.Zoo.t_d d in
  Alcotest.(check bool) "same chase" true
    (Frontier.Fact_set.equal
       (Frontier.Chase_engine.result r1)
       (Frontier.Chase_engine.result r2))

let test_bd_locality_family () =
  (* Definition 40 probe: sticky theory on a degree-2 family. *)
  let family =
    List.map
      (fun n ->
        let _, _, d = Frontier.Instances.path Frontier.Zoo.r2 n in
        d)
      [ 2; 3; 4 ]
  in
  match
    Frontier.Locality.min_constant_family ~depth:3 Frontier.Zoo.t_sticky
      family ~max_l:3
  with
  | Some l -> Alcotest.(check bool) "bounded at degree 2" true (l <= 2)
  | None -> Alcotest.fail "expected a bd-locality constant"

let test_render_through_facade () =
  let d = parse_instance "R(a,b). G(b,c)" in
  let dot = Frontier.Render.to_dot d in
  Alcotest.(check bool) "dot nonempty" true (String.length dot > 40)

(* ------------------------------------------------------------------ *)
(* Reasoner                                                            *)
(* ------------------------------------------------------------------ *)

let test_reasoner_routes () =
  let open Frontier in
  let reasoner = Reasoner.create Zoo.t_a in
  let d = parse_instance "Human(abel). Mother(eve, abel)" in
  let x = Term.var "x" and y = Term.var "y" in
  let q = Cq.make ~free:[ x ] [ Atom.make Zoo.mother [ x; y ] ] in
  let answers, route = Reasoner.answer reasoner d q in
  Alcotest.(check bool) "rewriting route" true (route = Reasoner.Rewriting);
  (* abel, eve (both are human, eve via Mother(eve,abel) frontier... eve
     appears as a mother already; abel gets an invented mother). *)
  Alcotest.(check int) "two answers" 2 (List.length answers);
  Alcotest.(check int) "one cached shape" 1
    (Reasoner.cached_rewritings reasoner);
  (* Second, isomorphic query: cache hit (still one cached shape). *)
  let a = Term.var "aa" and b = Term.var "bb" in
  let q2 = Cq.make ~free:[ a ] [ Atom.make Zoo.mother [ a; b ] ] in
  let answers2, _ = Reasoner.answer reasoner d q2 in
  Alcotest.(check int) "same answers" 2 (List.length answers2);
  Alcotest.(check int) "still one cached shape" 1
    (Reasoner.cached_rewritings reasoner)

let test_reasoner_fallback () =
  let open Frontier in
  (* Example 41's non-BDD theory forces the chase fallback. *)
  let budget =
    { Rewrite.max_disjuncts = 20; max_atoms_per_disjunct = 10; max_steps = 60 }
  in
  let reasoner = Reasoner.create ~rewrite_budget:budget Zoo.t_nonbdd in
  let d = Instances.nonbdd_chain 3 in
  let x = Term.var "x" and u = Term.var "u" in
  let q = Cq.make ~free:[ x ] [ Atom.make Zoo.r2 [ x; u ] ] in
  let answers, route = Reasoner.answer reasoner d q in
  (match route with
  | Reasoner.Chase_fallback _ -> ()
  | Reasoner.Rewriting -> Alcotest.fail "expected fallback");
  Alcotest.(check int) "all chain nodes reach c" 4 (List.length answers)

let test_reasoner_agrees_with_direct () =
  let open Frontier in
  let reasoner = Reasoner.create Zoo.t_loopcut in
  let d =
    let _, _, d = Instances.path Zoo.e2 3 in
    d
  in
  let x = Term.var "x" in
  let q = Cq.make ~free:[] [ Atom.make Zoo.e2 [ x; x ] ] in
  let held, route = Reasoner.holds reasoner d q [] in
  Alcotest.(check bool) "self-loop certain" true held;
  Alcotest.(check bool) "by rewriting" true (route = Reasoner.Rewriting)

(* ------------------------------------------------------------------ *)
(* The Section 2 "trivial trick"                                       *)
(* ------------------------------------------------------------------ *)

let test_connectize () =
  let open Frontier in
  (* T_ex66 has a disconnected rule body; the lifted version is connected. *)
  Alcotest.(check bool) "raw disconnected" false
    (Theory.is_connected Zoo.t_ex66);
  let lifted = Transform.connectize Zoo.t_ex66 in
  Alcotest.(check bool) "lifted connected" true (Theory.is_connected lifted);
  Alcotest.(check bool) "arity raised" true (Theory.max_arity lifted = 3);
  (* Entailment transfers through the lifting. *)
  let d = Instances.ex66_instance 2 in
  let lifted_d = Transform.lift_instance d in
  let y = Term.var "y" and vv = Term.var "v" and u = Term.var "u" in
  let q =
    Cq.make ~free:[] [ Atom.make Zoo.e2 [ y; vv ]; Atom.make Zoo.e2 [ vv; u ] ]
  in
  let lifted_q = Transform.lift_query q in
  let raw =
    certain ~max_depth:6 Zoo.t_ex66 d q []
  in
  let lifted_res = certain ~max_depth:6 lifted lifted_d lifted_q [] in
  Alcotest.(check bool) "entailment preserved" raw lifted_res;
  Alcotest.(check bool) "raw entails a 2-chain" true raw;
  (* The paper's caveat: the trick destroys degree bounds — the world
     constant touches everything. *)
  let g = Gaifman.of_fact_set lifted_d in
  Alcotest.(check int) "world has full degree" 
    (Term.Set.cardinal (Fact_set.domain d))
    (Gaifman.degree g Transform.default_world)

let () =
  Alcotest.run "frontier"
    [
      ( "pipelines",
        [
          Alcotest.test_case "quickstart" `Quick test_quickstart_pipeline;
          Alcotest.test_case "skolem filtering" `Quick
            test_certain_filters_skolems;
          Alcotest.test_case "certain tuple" `Quick test_certain_tuple;
          Alcotest.test_case "classify" `Quick test_classify_facade;
          Alcotest.test_case "parse errors" `Quick test_parse_errors_surface;
          Alcotest.test_case "multiline theory" `Quick
            test_multiline_theory_file_style;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "T_c BDD certificate" `Quick
            test_tc_bdd_certificate;
          Alcotest.test_case "T_c rewriting vs chase" `Quick
            test_tc_rewriting_agrees_with_chase;
          Alcotest.test_case "bd-locality family" `Quick
            test_bd_locality_family;
          Alcotest.test_case "render" `Quick test_render_through_facade;
        ] );
      ( "reasoner",
        [
          Alcotest.test_case "routes and cache" `Quick test_reasoner_routes;
          Alcotest.test_case "chase fallback" `Quick test_reasoner_fallback;
          Alcotest.test_case "holds" `Quick test_reasoner_agrees_with_direct;
        ] );
      ( "transform",
        [ Alcotest.test_case "connectize" `Quick test_connectize ] );
    ]

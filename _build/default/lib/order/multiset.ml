type 'a t = { cmp : 'a -> 'a -> int; elts : ('a * int) list }
(* [elts] is sorted ascending by [cmp], multiplicities strictly positive. *)

let empty ~cmp = { cmp; elts = [] }

let rec insert cmp x n = function
  | [] -> [ (x, n) ]
  | (y, m) :: rest as l ->
      let c = cmp x y in
      if c < 0 then (x, n) :: l
      else if c = 0 then (y, m + n) :: rest
      else (y, m) :: insert cmp x n rest

let add x t = { t with elts = insert t.cmp x 1 t.elts }

let of_list ~cmp l = List.fold_left (fun t x -> add x t) (empty ~cmp) l

let to_list t =
  List.concat_map (fun (x, n) -> List.init n (fun _ -> x)) t.elts

let remove x t =
  let rec go = function
    | [] -> []
    | (y, m) :: rest ->
        let c = t.cmp x y in
        if c < 0 then (y, m) :: rest
        else if c = 0 then if m = 1 then rest else (y, m - 1) :: rest
        else (y, m) :: go rest
  in
  { t with elts = go t.elts }

let multiplicity x t =
  match List.find_opt (fun (y, _) -> t.cmp x y = 0) t.elts with
  | Some (_, m) -> m
  | None -> 0

let cardinal t = List.fold_left (fun acc (_, m) -> acc + m) 0 t.elts

let union a b = List.fold_left (fun t (x, n) -> { t with elts = insert t.cmp x n t.elts }) a b.elts

let equal a b =
  List.length a.elts = List.length b.elts
  && List.for_all2 (fun (x, n) (y, m) -> a.cmp x y = 0 && n = m) a.elts b.elts

(* For a total element order, [m <_m n] iff at the largest element where the
   multiplicities differ, [m]'s multiplicity is smaller. We scan the two
   ascending lists from the back by reversing first. *)
let compare_dm a b =
  let ra = List.rev a.elts and rb = List.rev b.elts in
  let rec go xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | (x, n) :: xs', (y, m) :: ys' ->
        let c = a.cmp x y in
        if c > 0 then 1
        else if c < 0 then -1
        else if n <> m then compare n m
        else go xs' ys'
  in
  Some (go ra rb)

let lt a b = compare_dm a b = Some (-1)

let pp pp_elt ppf t =
  Fmt.pf ppf "{%a}m" (Fmt.list ~sep:(Fmt.any ",@ ") pp_elt) (to_list t)

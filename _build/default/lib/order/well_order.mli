(** Lexicographic products and descent checking over well-orderings.

    Section 10 builds the rank domain [R = N x M(N)] ordered
    lexicographically, then takes multisets over [R]. These combinators
    build such compound comparisons and check strict-descent sequences. *)

val lex2 : ('a -> 'a -> int) -> ('b -> 'b -> int) -> 'a * 'b -> 'a * 'b -> int
(** Lexicographic product of two comparisons. *)

val lex_list : ('a -> 'a -> int) -> 'a list -> 'a list -> int
(** Lexicographic comparison of equal-length lists; shorter lists compare as
    if padded with minimal elements (a proper prefix is smaller). *)

val strictly_descending : cmp:('a -> 'a -> int) -> 'a list -> bool
(** [strictly_descending ~cmp [x1; x2; ...]] iff [x1 > x2 > ...]. Used to
    check rank traces emitted by the marked-query process. *)

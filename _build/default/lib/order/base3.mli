(** Exact arithmetic for path costs (Definition 60).

    Elevations are powers of 3 up to [3^(2|Q_R|)] and costs are sums of
    elevations — they overflow native integers already for moderate queries,
    so costs are represented exactly as naturals in base 3 (little-endian
    digit arrays). Only the operations the rank computation needs are
    provided: zero, powers of 3, addition, comparison. *)

type t

val zero : t
val is_zero : t -> bool
val power_of_3 : int -> t
(** [power_of_3 k] is [3^k]; [k >= 0]. *)

val add : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val to_int_opt : t -> int option
(** Exact conversion when it fits in a native int. *)

val of_int : int -> t
(** [of_int n] for [n >= 0]. *)

val pp : t Fmt.t
(** Decimal when small, otherwise a base-3 digit expansion. *)

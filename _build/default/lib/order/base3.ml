(* Little-endian base-3 digit arrays, no trailing zeros. *)
type t = int array

let zero : t = [||]
let is_zero n = Array.length n = 0

let normalize digits =
  (* Carry-propagate and strip trailing zeros. *)
  let buf = ref (Array.copy digits) in
  let carry = ref 0 in
  let out = ref [] in
  Array.iter
    (fun d ->
      let v = d + !carry in
      out := v mod 3 :: !out;
      carry := v / 3)
    !buf;
  while !carry > 0 do
    out := !carry mod 3 :: !out;
    carry := !carry / 3
  done;
  let arr = Array.of_list (List.rev !out) in
  (* Strip high-order zeros (they are at the end, little-endian). *)
  let last = ref (Array.length arr) in
  while !last > 0 && arr.(!last - 1) = 0 do
    decr last
  done;
  Array.sub arr 0 !last

let power_of_3 k =
  if k < 0 then invalid_arg "Base3.power_of_3: negative exponent";
  Array.init (k + 1) (fun i -> if i = k then 1 else 0)

let add a b =
  let n = max (Array.length a) (Array.length b) in
  let digit arr i = if i < Array.length arr then arr.(i) else 0 in
  normalize (Array.init n (fun i -> digit a i + digit b i))

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let to_int_opt n =
  let rec go i acc =
    if i < 0 then Some acc
    else if acc > (max_int - 2) / 3 then None
    else go (i - 1) ((acc * 3) + n.(i))
  in
  go (Array.length n - 1) 0

let of_int n =
  if n < 0 then invalid_arg "Base3.of_int: negative";
  let rec go n acc = if n = 0 then acc else go (n / 3) ((n mod 3) :: acc) in
  normalize (Array.of_list (List.rev (go n [])))

let pp ppf n =
  match to_int_opt n with
  | Some i -> Fmt.int ppf i
  | None ->
      Fmt.pf ppf "0t%a"
        (Fmt.array ~sep:Fmt.nop Fmt.int)
        (Array.of_list (List.rev (Array.to_list n)))

(** Finite multisets and the Dershowitz-Manna multiset ordering.

    Section 10 of the paper proves termination of the marked-query process
    by descent in a nest of multiset and lexicographic orderings over the
    naturals; this module provides the multiset layer, generically over an
    element ordering. *)

type 'a t
(** A finite multiset with elements of type ['a]. The element ordering used
    at creation time fixes the notion of equality between elements. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_list : 'a t -> 'a list
(** Elements in ascending order, repeated according to multiplicity. *)

val empty : cmp:('a -> 'a -> int) -> 'a t
val add : 'a -> 'a t -> 'a t
val remove : 'a -> 'a t -> 'a t
(** Removes one occurrence; no-op if absent. *)

val multiplicity : 'a -> 'a t -> int
val cardinal : 'a t -> int
val union : 'a t -> 'a t -> 'a t
val equal : 'a t -> 'a t -> bool

val compare_dm : 'a t -> 'a t -> int option
(** [compare_dm m n] is the (strict) Dershowitz-Manna multiset ordering
    [<_m] lifted from the element ordering: [Some 0] when equal,
    [Some (-1)] when [m <_m n], [Some 1] when [n <_m m]. For a total element
    order the multiset order is total, so this never returns [None]; the
    option is kept for future partial element orders. *)

val lt : 'a t -> 'a t -> bool
(** [lt m n] iff [m <_m n] in the Dershowitz-Manna ordering. *)

val pp : 'a Fmt.t -> 'a t Fmt.t

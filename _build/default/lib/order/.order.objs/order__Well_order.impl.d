lib/order/well_order.ml:

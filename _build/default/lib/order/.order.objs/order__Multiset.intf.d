lib/order/multiset.mli: Fmt

lib/order/multiset.ml: Fmt List

lib/order/well_order.mli:

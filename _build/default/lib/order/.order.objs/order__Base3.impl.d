lib/order/base3.ml: Array Fmt Int List

lib/order/base3.mli: Fmt

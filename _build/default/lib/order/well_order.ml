let lex2 cmp_a cmp_b (a1, b1) (a2, b2) =
  let c = cmp_a a1 a2 in
  if c <> 0 then c else cmp_b b1 b2

let rec lex_list cmp xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = cmp x y in
      if c <> 0 then c else lex_list cmp xs' ys'

let strictly_descending ~cmp l =
  let rec go = function
    | [] | [ _ ] -> true
    | x :: (y :: _ as rest) -> cmp x y > 0 && go rest
  in
  go l

(** Ranks (Definitions 59-62 and their Section 12 generalization).

    For the level pair (red [I_i], green [I_{i-1}]), the edge rank
    [erk(alpha)] of a green atom is the minimal cost of a *hike*: a walk
    from a marked variable to [alpha] that may traverse green and
    other-level atoms freely in both directions, but each red atom at most
    once in one direction; green steps cost the current elevation
    [3^(|Q_red| + forward_red - backward_red)], red steps are free but move
    the elevation. Computed exactly (base-3 naturals) by Dijkstra over
    states (variable, set of used red atoms, elevation exponent).

    The query rank [qrk] is the lexicographic tuple
    [<|Q_K|, qrk_K, ..., |Q_2|, qrk_2>] where [qrk_i] is the multiset of
    green ranks at level pair [(i, i-1)]; the set rank [srk] is the
    multiset of query ranks. Lemma 53 states every process operation
    strictly decreases [srk] — exercised by the property tests. *)

type erk = Fin of Order.Base3.t | Inf

val compare_erk : erk -> erk -> int

val edge_ranks : Marked_query.t -> upper_level:int -> (Logic.Atom.t * erk) list
(** Ranks of the atoms at level [upper_level - 1], hiking through red atoms
    at [upper_level] (both 0-based level indices into the query's level
    array). *)

type qrk

val qrk : Marked_query.t -> qrk
val compare_qrk : qrk -> qrk -> int
val pp_qrk : qrk Fmt.t

type srk

val srk : Marked_query.t list -> srk
val compare_srk : srk -> srk -> int

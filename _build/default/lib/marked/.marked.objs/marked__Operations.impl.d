lib/marked/operations.ml: Array Atom Cq Int List Logic Marked_query Term

lib/marked/process.ml: Array Cq Fact_set Hashtbl List Logic Marked_query Operations Option Printf Queue Rank Symbol Term Ucq

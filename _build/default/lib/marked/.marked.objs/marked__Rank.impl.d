lib/marked/rank.ml: Array Atom Fmt Hashtbl Int List Logic Map Marked_query Option Order Symbol Term

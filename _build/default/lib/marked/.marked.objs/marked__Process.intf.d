lib/marked/process.mli: Cq Fact_set Logic Marked_query Operations Rank Symbol Term Ucq

lib/marked/marked_query.mli: Atom Chase Cq Fmt Logic Symbol Term

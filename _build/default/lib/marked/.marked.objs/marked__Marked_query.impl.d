lib/marked/marked_query.ml: Array Atom Chase Containment Cq Fact_set Fmt Hashtbl Homomorphism Int List Logic Option Symbol Term

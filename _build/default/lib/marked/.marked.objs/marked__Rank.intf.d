lib/marked/rank.mli: Fmt Logic Marked_query Order

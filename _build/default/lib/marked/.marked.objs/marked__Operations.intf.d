lib/marked/operations.mli: Atom Logic Marked_query Term

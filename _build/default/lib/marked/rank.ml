open Logic

type erk = Fin of Order.Base3.t | Inf

let compare_erk a b =
  match (a, b) with
  | Fin x, Fin y -> Order.Base3.compare x y
  | Fin _, Inf -> -1
  | Inf, Fin _ -> 1
  | Inf, Inf -> 0

(* Priority queue over Base3 costs, backed by a map cost -> states. *)
module Cost_map = Map.Make (struct
  type t = Order.Base3.t

  let compare = Order.Base3.compare
end)

type state = { term : Term.t; mask : int; expo : int }

let state_key s = (Term.hash s.term, s.mask, s.expo)

let edge_ranks q ~upper_level =
  let red_atoms = Array.of_list (Marked_query.atoms_at_level q upper_level) in
  let green_atoms = Marked_query.atoms_at_level q (upper_level - 1) in
  let m = Array.length red_atoms in
  let red_index a =
    let rec go i =
      if i >= m then None
      else if Atom.equal red_atoms.(i) a then Some i
      else go (i + 1)
    in
    go 0
  in
  (* Adjacency: for each variable, the atoms touching it. *)
  let touching = Hashtbl.create 32 in
  List.iter
    (fun a ->
      List.iter
        (fun v ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt touching (Term.hash v))
          in
          Hashtbl.replace touching (Term.hash v) (a :: prev))
        (Atom.vars a))
    q.Marked_query.atoms;
  let dist : ((int * int * int), Order.Base3.t) Hashtbl.t = Hashtbl.create 256 in
  let queue = ref Cost_map.empty in
  let push cost st =
    let better =
      match Hashtbl.find_opt dist (state_key st) with
      | Some best -> Order.Base3.compare cost best < 0
      | None -> true
    in
    if better then begin
      Hashtbl.replace dist (state_key st) cost;
      queue :=
        Cost_map.update cost
          (function None -> Some [ st ] | Some l -> Some (st :: l))
          !queue
    end
  in
  (* Best rank seen per green atom. *)
  let best_rank = Hashtbl.create 16 in
  let atom_key a =
    (Symbol.name (Atom.rel a), Term.hash (Atom.arg a 0), Term.hash (Atom.arg a 1))
  in
  let note_rank atom cost =
    let k = atom_key atom in
    match Hashtbl.find_opt best_rank k with
    | Some c when Order.Base3.compare c cost <= 0 -> ()
    | Some _ | None -> Hashtbl.replace best_rank k cost
  in
  Term.Set.iter
    (fun v -> push Order.Base3.zero { term = v; mask = 0; expo = m })
    q.Marked_query.marked;
  while not (Cost_map.is_empty !queue) do
    let cost, states = Cost_map.min_binding !queue in
    queue := Cost_map.remove cost !queue;
    List.iter
      (fun st ->
        (* Skip stale entries. *)
        match Hashtbl.find_opt dist (state_key st) with
        | Some best when Order.Base3.compare best cost < 0 -> ()
        | _ ->
            let neighbours =
              Option.value ~default:[]
                (Hashtbl.find_opt touching (Term.hash st.term))
            in
            List.iter
              (fun a ->
                let src = Atom.arg a 0 and dst = Atom.arg a 1 in
                let level = Marked_query.level_of q a in
                let moves =
                  if level = upper_level then
                    match red_index a with
                    | None -> []
                    | Some idx ->
                        if st.mask land (1 lsl idx) <> 0 then []
                        else
                          let used = st.mask lor (1 lsl idx) in
                          (if Term.equal src st.term then
                             [ ({ term = dst; mask = used; expo = st.expo + 1 }, Order.Base3.zero) ]
                           else [])
                          @
                          if Term.equal dst st.term then
                            [ ({ term = src; mask = used; expo = st.expo - 1 }, Order.Base3.zero) ]
                          else []
                  else if level = upper_level - 1 then begin
                    let step_cost = Order.Base3.power_of_3 st.expo in
                    (if Term.equal src st.term then begin
                       note_rank a (Order.Base3.add cost step_cost);
                       [ ({ st with term = dst }, step_cost) ]
                     end
                     else [])
                    @
                    if Term.equal dst st.term then begin
                      note_rank a (Order.Base3.add cost step_cost);
                      [ ({ st with term = src }, step_cost) ]
                    end
                    else []
                  end
                  else
                    (if Term.equal src st.term then
                       [ ({ st with term = dst }, Order.Base3.zero) ]
                     else [])
                    @
                    if Term.equal dst st.term then
                      [ ({ st with term = src }, Order.Base3.zero) ]
                    else []
                in
                List.iter
                  (fun (st', extra) -> push (Order.Base3.add cost extra) st')
                  moves)
              neighbours)
      states
  done;
  List.map
    (fun a ->
      match Hashtbl.find_opt best_rank (atom_key a) with
      | Some c -> (a, Fin c)
      | None -> (a, Inf))
    green_atoms

(* ------------------------------------------------------------------ *)
(* Query and set ranks                                                 *)
(* ------------------------------------------------------------------ *)

type level_rank = { count : int; greens : erk Order.Multiset.t }

type qrk = level_rank list
(* One entry per level pair, highest level first:
   [(|Q_K|, qrk_K); ...; (|Q_2|, qrk_2)]. *)

let qrk q =
  let kk = Array.length q.Marked_query.levels in
  List.init (kk - 1) (fun j ->
      let upper = kk - 1 - j in
      let ranks = edge_ranks q ~upper_level:upper in
      {
        count = List.length (Marked_query.atoms_at_level q upper);
        greens =
          Order.Multiset.of_list ~cmp:compare_erk (List.map snd ranks);
      })

let compare_level_rank a b =
  let c = Int.compare a.count b.count in
  if c <> 0 then c
  else
    match Order.Multiset.compare_dm a.greens b.greens with
    | Some c -> c
    | None -> 0

let compare_qrk = Order.Well_order.lex_list compare_level_rank

let pp_qrk ppf r =
  let pp_erk ppf = function
    | Fin c -> Order.Base3.pp ppf c
    | Inf -> Fmt.string ppf "inf"
  in
  Fmt.pf ppf "[%a]"
    (Fmt.list ~sep:(Fmt.any "; ") (fun ppf lr ->
         Fmt.pf ppf "#%d %a" lr.count (Order.Multiset.pp pp_erk) lr.greens))
    r

type srk = qrk Order.Multiset.t

let srk queries =
  Order.Multiset.of_list ~cmp:compare_qrk (List.map qrk queries)

let compare_srk a b =
  match Order.Multiset.compare_dm a b with Some c -> c | None -> 0

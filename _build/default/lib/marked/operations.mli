(** The five operations of Section 11 (Definitions 56-58), generalized to
    the [K]-level signature of Section 12: [K] cut operations, [K] fuse
    operations and [K-1] reduce operations, all driven by a *maximal
    variable* (Lemma 55) — an unmarked variable with no outgoing edge.

    Soundness is Lemma 52 (Appendix B), exercised by the property tests;
    termination is by rank descent (Lemma 53), exercised via {!Rank}. *)

open Logic

type classification =
  | Cut of Atom.t
      (** The variable occurs in exactly this one (incoming) atom. *)
  | Reduce of { level : int; red : Atom.t; green : Atom.t }
      (** Exactly two in-edges at adjacent levels: [red] at [level + 1]
          (1-based [I_{level+1}]... stored 0-based: [red] has level index
          [level], [green] has level index [level - 1]). *)
  | Fuse of { level : int; z : Term.t; z' : Term.t }
      (** Two same-level in-edges from distinct sources. *)
  | Unsatisfiable
      (** In-edge pattern no chase-invented term can realize (only possible
          for [K > 2]; properly marked queries with [K = 2] never produce
          it). *)

val maximal_var : Marked_query.t -> (Term.t * classification) option
(** Some maximal variable with its classification; [None] when the query
    has no unmarked variable without out-edges (e.g. totally marked). For a
    live query this is always [Some] (Lemma 55). *)

val apply : Marked_query.t -> Term.t -> classification -> Marked_query.t list
(** Apply the operation; [cut]/[fuse] return one query, [reduce] the four
    marked variants of Definition 58, [Unsatisfiable] returns []. Results
    are NOT filtered for proper marking — the process does that. *)

val step : Marked_query.t -> Marked_query.t list option
(** One process step: classify and apply. [None] when no maximal variable
    exists. *)

open Logic

type classification =
  | Cut of Atom.t
  | Reduce of { level : int; red : Atom.t; green : Atom.t }
  | Fuse of { level : int; z : Term.t; z' : Term.t }
  | Unsatisfiable

let in_edges q x =
  List.filter (fun a -> Term.equal (Atom.arg a 1) x) q.Marked_query.atoms

let out_edges q x =
  List.filter (fun a -> Term.equal (Atom.arg a 0) x) q.Marked_query.atoms

let classify q x =
  let ins = in_edges q x in
  let with_levels =
    List.sort
      (fun (l1, _) (l2, _) -> Int.compare l2 l1)
      (List.map (fun a -> (Marked_query.level_of q a, a)) ins)
  in
  (* A same-level pair anywhere triggers fuse first. *)
  let rec find_fuse = function
    | (l1, a1) :: ((l2, a2) :: _ as rest) ->
        if l1 = l2 then Some (l1, a1, a2) else find_fuse rest
    | _ -> None
  in
  match with_levels with
  | [] -> Unsatisfiable (* cannot happen for variables drawn from atoms *)
  | [ (_, a) ] -> Cut a
  | _ -> (
      match find_fuse with_levels with
      | Some (level, a1, a2) ->
          Fuse { level; z = Atom.arg a1 0; z' = Atom.arg a2 0 }
      | None -> (
          match with_levels with
          | [ (l1, red); (l2, green) ] when l1 = l2 + 1 ->
              Reduce { level = l1; red; green }
          | _ -> Unsatisfiable))

let maximal_var q =
  let candidates =
    List.filter
      (fun v ->
        (not (Term.Set.mem v q.Marked_query.marked)) && out_edges q v = [])
      (Marked_query.vars q)
  in
  match candidates with
  | [] -> None
  | x :: _ -> Some (x, classify q x)

let remake q ~atoms ~marked ~free =
  (* Prune the marking to the surviving variables (plus representatives). *)
  let var_set = Term.Set.of_list (List.concat_map Atom.vars atoms) in
  let rep_set = Term.Set.of_list (List.map snd free) in
  let surviving = Term.Set.union var_set rep_set in
  Marked_query.make ~levels:q.Marked_query.levels ~free
    ~marked:(Term.Set.inter marked surviving)
    atoms

let apply q _x classification =
  match classification with
  | Unsatisfiable -> []
  | Cut atom ->
      let atoms =
        List.filter (fun a -> not (Atom.equal a atom)) q.Marked_query.atoms
      in
      [
        remake q ~atoms ~marked:q.Marked_query.marked ~free:q.Marked_query.free;
      ]
  | Fuse { z; z'; _ } ->
      if Term.equal z z' then
        (* Two identical atoms cannot coexist in a set; guard anyway. *)
        [ q ]
      else
        let s = Term.subst_of_bindings [ (z', z) ] in
        let atoms = List.map (Atom.subst s) q.Marked_query.atoms in
        let free =
          List.map
            (fun (orig, rep) ->
              (orig, if Term.equal rep z' then z else rep))
            q.Marked_query.free
        in
        let marked =
          Term.Set.map
            (fun v -> if Term.equal v z' then z else v)
            q.Marked_query.marked
        in
        [ remake q ~atoms ~marked ~free ]
  | Reduce { level; red; green } ->
      let x_r = Atom.arg red 0 and x_g = Atom.arg green 0 in
      let upper = q.Marked_query.levels.(level) in
      let lower = q.Marked_query.levels.(level - 1) in
      let x1 = Cq.fresh_var ~prefix:"m'" () in
      let x2 = Cq.fresh_var ~prefix:"m''" () in
      let atoms =
        Atom.make lower [ x1; x2 ]
        :: Atom.make lower [ x2; x_r ]
        :: Atom.make upper [ x1; x_g ]
        :: List.filter
             (fun a -> not (Atom.equal a red || Atom.equal a green))
             q.Marked_query.atoms
      in
      let base = q.Marked_query.marked in
      List.map
        (fun extra ->
          remake q ~atoms
            ~marked:(Term.Set.union base (Term.Set.of_list extra))
            ~free:q.Marked_query.free)
        [ []; [ x1 ]; [ x1; x2 ]; [ x2 ] ]

let step q =
  match maximal_var q with
  | None -> None
  | Some (x, c) -> Some (apply q x c)

open Logic

module Pos = struct
  type t = Symbol.t * int

  let compare (s1, i1) (s2, i2) =
    let c = Symbol.compare s1 s2 in
    if c <> 0 then c else Int.compare i1 i2
end

module Pos_set = Set.Make (Pos)

let var_positions_in_atoms atoms v =
  List.concat_map
    (fun a ->
      List.mapi (fun i t -> (i, t)) (Atom.args a)
      |> List.filter_map (fun (i, t) ->
             if Term.equal t v then Some (Atom.rel a, i) else None))
    atoms

let marked_positions theory =
  let rules = Theory.rules theory in
  (* Initial marking: positions of body variables that some head forgets. *)
  let initial =
    List.fold_left
      (fun acc rule ->
        let head_vars =
          Term.Set.of_list (List.concat_map Atom.vars (Tgd.head rule))
        in
        List.fold_left
          (fun acc v ->
            if Term.Set.mem v head_vars then acc
            else
              List.fold_left
                (fun acc pos -> Pos_set.add pos acc)
                acc
                (var_positions_in_atoms (Tgd.body rule) v))
          acc
          (List.concat_map Atom.vars (Tgd.body rule)))
      Pos_set.empty rules
  in
  (* Propagation: a variable sitting at a marked head position transfers the
     mark to all its body positions. *)
  let step marked =
    List.fold_left
      (fun acc rule ->
        List.fold_left
          (fun acc head_atom ->
            List.fold_left
              (fun acc (i, t) ->
                if
                  Term.is_var t
                  && Pos_set.mem (Atom.rel head_atom, i) marked
                then
                  List.fold_left
                    (fun acc pos -> Pos_set.add pos acc)
                    acc
                    (var_positions_in_atoms (Tgd.body rule) t)
                else acc)
              acc
              (List.mapi (fun i t -> (i, t)) (Atom.args head_atom)))
          acc (Tgd.head rule))
      marked rules
  in
  let rec fixpoint marked =
    let next = step marked in
    if Pos_set.equal next marked then marked else fixpoint next
  in
  Pos_set.elements (fixpoint initial)

let is_sticky theory =
  let marked = Pos_set.of_list (marked_positions theory) in
  List.for_all
    (fun rule ->
      let body = Tgd.body rule in
      let body_vars = List.concat_map Atom.vars body in
      let occurrence_count v =
        List.fold_left
          (fun acc a ->
            acc + List.length (List.filter (Term.equal v) (Atom.args a)))
          0 body
      in
      List.for_all
        (fun v ->
          occurrence_count v <= 1
          || List.for_all
               (fun pos -> not (Pos_set.mem pos marked))
               (var_positions_in_atoms body v))
        body_vars)
    (Theory.rules theory)

(* Weak acyclicity: dependency graph over positions (R, i). *)
type wa_edge = Ordinary | Special

let dependency_edges theory =
  let edges = ref [] in
  List.iter
    (fun rule ->
      let body = Tgd.body rule in
      let body_positions v = var_positions_in_atoms body v in
      (* Domain variables occur in no body atom; the universal variable
         reads from the whole active domain, i.e. conservatively from every
         position of the signature. *)
      let dom_positions =
        Symbol.Set.fold
          (fun s acc ->
            List.init (Symbol.arity s) (fun i -> (s, i)) @ acc)
          (Theory.signature theory) []
      in
      let exist = Term.Set.of_list (Tgd.exist_vars rule) in
      let is_dom v = List.exists (Term.equal v) (Tgd.dom_vars rule) in
      List.iter
        (fun v ->
          let sources =
            if is_dom v then dom_positions else body_positions v
          in
          if sources <> [] || is_dom v then
            List.iter
              (fun head_atom ->
                List.iteri
                  (fun i t ->
                    if Term.equal t v then
                      List.iter
                        (fun src ->
                          edges :=
                            (src, (Atom.rel head_atom, i), Ordinary)
                            :: !edges)
                        sources
                    else if Term.is_var t && Term.Set.mem t exist then
                      List.iter
                        (fun src ->
                          edges :=
                            (src, (Atom.rel head_atom, i), Special) :: !edges)
                        sources)
                  (Atom.args head_atom))
              (Tgd.head rule))
        (Tgd.frontier rule))
    (Theory.rules theory);
  !edges

let weak_acyclicity_witness theory =
  let edges = dependency_edges theory in
  let vertices =
    List.sort_uniq compare
      (List.concat_map (fun (a, b, _) -> [ a; b ]) edges)
  in
  (* A special edge u =>s v lies on a cycle iff v reaches u. *)
  let succs u =
    List.filter_map
      (fun (a, b, _) -> if a = u then Some b else None)
      edges
  in
  let reaches start target =
    let visited = Hashtbl.create 16 in
    let rec go v =
      v = target
      || (not (Hashtbl.mem visited v))
         && begin
              Hashtbl.add visited v ();
              List.exists go (succs v)
            end
    in
    go start
  in
  ignore vertices;
  List.find_map
    (fun (u, v, kind) ->
      if kind = Special && reaches v u then Some [ u; v ] else None)
    edges
  |> Option.map (fun l -> l)

let is_weakly_acyclic theory = weak_acyclicity_witness theory = None

type report = {
  linear : bool;
  datalog : bool;
  guarded : bool;
  sticky : bool;
  weakly_acyclic : bool;
  binary : bool;
  connected : bool;
  single_head : bool;
  frontier_one : bool;
}

let classify theory =
  {
    linear = Theory.is_linear theory;
    datalog = Theory.is_datalog theory;
    guarded = Theory.is_guarded theory;
    sticky = is_sticky theory;
    weakly_acyclic = is_weakly_acyclic theory;
    binary = Theory.is_binary theory;
    connected = Theory.is_connected theory;
    single_head = Theory.is_single_head theory;
    frontier_one = Theory.is_frontier_one theory;
  }

let pp_report ppf r =
  let flag name b = if b then Some name else None in
  let flags =
    List.filter_map Fun.id
      [
        flag "linear" r.linear;
        flag "datalog" r.datalog;
        flag "guarded" r.guarded;
        flag "sticky" r.sticky;
        flag "weakly-acyclic" r.weakly_acyclic;
        flag "binary" r.binary;
        flag "connected" r.connected;
        flag "single-head" r.single_head;
        flag "frontier-one" r.frontier_one;
      ]
  in
  match flags with
  | [] -> Fmt.string ppf "(no syntactic class)"
  | _ -> Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) flags

(** The "trivial trick" of Section 2: adding a fresh variable as an extra
    first argument of every atom makes any theory connected while
    preserving its BDD and core-termination status — at the price of
    raising the arity and destroying degree bounds (every pair of
    constants ends up at Gaifman distance <= 2).

    [connectize] rewrites a theory over a lifted signature (each relation's
    arity + 1) with one shared fresh variable threaded through every body
    and head atom; [lift_instance] threads a single fresh "world" constant
    through an instance, and [lift_query] does the same for queries, so
    entailment transfers back and forth. *)

open Logic

val lifted_symbol : Symbol.t -> Symbol.t
(** Same name with a ["+"] suffix, arity + 1. *)

val connectize : Theory.t -> Theory.t
val lift_instance : ?world:Term.t -> Fact_set.t -> Fact_set.t
val lift_query : ?world:Term.t -> Cq.t -> Cq.t
(** When [world] is a variable it is added as an extra (existential or
    free, caller's choice via the query's own free list) variable; the
    default is a fresh existential variable shared by all atoms. *)

val default_world : Term.t
(** The constant used by [lift_instance] by default. *)

open Logic

let lifted_symbol s =
  Symbol.make (Symbol.name s ^ "+") ~arity:(Symbol.arity s + 1)

let lift_atom world a =
  Atom.make (lifted_symbol (Atom.rel a)) (world :: Atom.args a)

let connectize theory =
  let rules =
    List.map
      (fun rule ->
        let world = Cq.fresh_var ~prefix:"w" () in
        Tgd.make ~name:(Tgd.name rule ^ "+")
          ~dom_vars:(Tgd.dom_vars rule)
          ~body:(List.map (lift_atom world) (Tgd.body rule))
          ~head:(List.map (lift_atom world) (Tgd.head rule))
          ())
      (Theory.rules theory)
  in
  Theory.make ~name:(Theory.name theory ^ "+") rules

let default_world = Term.const "world#"

let lift_instance ?(world = default_world) fs =
  Fact_set.of_list (List.map (lift_atom world) (Fact_set.atoms fs))

let lift_query ?world q =
  let world =
    match world with Some w -> w | None -> Cq.fresh_var ~prefix:"wq" ()
  in
  Cq.make ~free:(Cq.free q) (List.map (lift_atom world) (Cq.atoms q))

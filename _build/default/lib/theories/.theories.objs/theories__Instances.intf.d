lib/theories/instances.mli: Fact_set Logic Symbol Term

lib/theories/generators.ml: Array Atom Fact_set Instances List Logic Printf Random Symbol Term Tgd Theory

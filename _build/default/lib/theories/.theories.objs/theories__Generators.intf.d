lib/theories/generators.mli: Fact_set Logic Theory

lib/theories/zoo.ml: Atom Cq List Logic Printf Symbol Term Tgd Theory

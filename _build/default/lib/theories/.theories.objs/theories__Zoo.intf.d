lib/theories/zoo.mli: Cq Logic Symbol Term Theory

lib/theories/transform.mli: Cq Fact_set Logic Symbol Term Theory

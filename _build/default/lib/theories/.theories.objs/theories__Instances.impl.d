lib/theories/instances.ml: Atom Fact_set List Logic Printf Random Symbol Term Zoo

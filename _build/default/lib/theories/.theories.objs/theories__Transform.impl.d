lib/theories/transform.ml: Atom Cq Fact_set List Logic Symbol Term Tgd Theory

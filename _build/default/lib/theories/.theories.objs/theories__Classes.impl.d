lib/theories/classes.ml: Atom Fmt Fun Hashtbl Int List Logic Option Set Symbol Term Tgd Theory

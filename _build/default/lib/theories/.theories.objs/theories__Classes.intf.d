lib/theories/classes.mli: Fmt Logic Symbol Theory

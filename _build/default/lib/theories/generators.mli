(** Random theory generators for property-based testing.

    Linear theories are always BDD (Section 1), so on any random linear
    theory the saturating rewriter must terminate and agree with the chase
    — a strong end-to-end oracle. Datalog theories always saturate on
    finite instances, giving a model oracle for the chase engine. Both
    generators are deterministic in the seed. *)

open Logic

val random_linear_binary :
  seed:int -> rels:int -> rules:int -> Theory.t
(** Rules with a single binary body atom [E_i(x,y)] and a head drawn from
    the patterns [E_j(y,z)], [E_j(x,z)] (existential) and [E_j(y,x)],
    [E_j(x,x)], [E_j(y,y)] (Datalog), over relations [L0 .. L_{rels-1}]. *)

val random_datalog_binary :
  seed:int -> rels:int -> rules:int -> Theory.t
(** One- or two-atom bodies, Datalog heads over the body variables. *)

val random_instance_for :
  seed:int -> Theory.t -> nodes:int -> facts:int -> Fact_set.t
(** A random instance over the binary relations of the theory's own
    signature. *)

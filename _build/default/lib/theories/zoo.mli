(** Every concrete theory the paper mentions, under one roof.

    Each value is referenced from DESIGN.md's inventory and exercised by the
    experiments in [bench/main.ml]. *)

open Logic

(** {1 Signatures} *)

val human : Symbol.t
val mother : Symbol.t

val e2 : Symbol.t
(** binary [E] *)

val r2 : Symbol.t
(** binary [R] (red edges of [T_d]) *)

val g2 : Symbol.t
(** binary [G] (green edges of [T_d]) *)

val p1 : Symbol.t
(** unary [P] (Example 66) *)

val e4 : Symbol.t
(** arity-4 [E] of the sticky Example 39 *)

val r4 : Symbol.t
(** arity-4 [R_c] of Example 42 *)

val e3 : Symbol.t
(** ternary [E] of Example 41 *)

val i_k : int -> Symbol.t
(** [I_k] of Section 12 *)

val e_k : int -> Symbol.t
(** [E_k] of Example 28 *)

(** {1 Theories} *)

val t_a : Theory.t
(** Example 1: [Human(y) -> exists z. Mother(y,z)] and
    [Mother(x,y) -> Human(y)]. Core-terminating, local. *)

val t_p : Theory.t
(** Exercise 12: [E(x,y) -> exists z. E(y,z)]. Linear, BDD; not
    core-terminating (Exercise 22). *)

val t_loopcut : Theory.t
(** Exercise 23: [t_p] plus [E(x,x'), E(x',x'') -> E(x',x')].
    Core-terminating but not all-instances-terminating. *)

val t_sticky : Theory.t
(** Example 39: the one-rule sticky theory over colored visible edges.
    BDD, bd-local, not local. *)

val t_nonbdd : Theory.t
(** Example 41: [E(x,y,z), R(x,z) -> R(y,z)]. bd-local but not BDD. *)

val t_c : Theory.t
(** Example 42: BDD but not bd-local. *)

val t_d : Theory.t
(** Definition 45: (loop), (pins), (grid). BDD, not distancing,
    exponential-size rewritings (Theorem 5). *)

val t_d_noloop : Theory.t
(** Exercise 46's ablation: [T_d] without (loop) — no longer BDD. *)

val t_dk : int -> Theory.t
(** Section 12: [T_d^K] over [I_1 .. I_K]; [t_dk 2] is [T_d] up to renaming. *)

val t_e28 : int -> Theory.t
(** Example 28 truncated to [E_0 .. E_n]: [E_i(x,y) -> exists z. E_{i-1}(y,z)]. *)

val knows : Symbol.t
val person : Symbol.t

val t_spouse : Theory.t
(** A linear (hence local) and core-terminating companion theory:
    [Person(x) -> exists z. Knows(x,z)], [Knows(x,y) -> Knows(y,x)],
    [Knows(x,y) -> Person(y)]. Invented acquaintances fold back after one
    round, so the FUS/FES hypothesis of Theorem 4 applies with a small
    uniform constant — the positive side of experiment E4. *)

val t_ex66 : Theory.t
(** Example 66 of Appendix A: the theory defeating the naive ancestor
    bound. *)

(** {1 Query families} *)

val g_path_query : int -> Term.t * Term.t * Cq.t
(** [G^n(x0, xn)]: a green path of length [n]; returns (x0, xn, query) with
    free variables x0, xn. *)

val r_path_query : int -> Term.t * Term.t * Cq.t
(** [R^n(x0, xn)], analogously. *)

val phi_r : int -> Term.t * Term.t * Cq.t
(** [phi_R^n(x,y) = exists x' y'. R^n(x,x'), R^n(y,y'), G(x',y')]
    (Section 10). *)

val e_path_query : int -> Term.t * Term.t * Cq.t
(** [E^n(x0, xn)] over the binary [E]. *)

val i_path_query : int -> int -> Term.t * Term.t * Cq.t
(** [i_path_query k n]: an [I_k^n] path (Section 12 signature). *)

val phi_i : int -> int -> Term.t * Term.t * Cq.t
(** [phi_i k n]: the Section 12 analogue of [phi_r] one level down:
    [exists x' y'. I_k^n(x,x'), I_k^n(y,y'), I_{k-1}(x',y')]. *)

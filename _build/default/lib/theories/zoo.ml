open Logic

let human = Symbol.make "Human" ~arity:1
let mother = Symbol.make "Mother" ~arity:2
let e2 = Symbol.make "E" ~arity:2
let r2 = Symbol.make "R" ~arity:2
let g2 = Symbol.make "G" ~arity:2
let p1 = Symbol.make "P" ~arity:1
let e4 = Symbol.make "E4" ~arity:4
let r4 = Symbol.make "Rc" ~arity:4
let e3 = Symbol.make "E3" ~arity:3
let i_k k = Symbol.make (Printf.sprintf "I%d" k) ~arity:2
let e_k k = Symbol.make (Printf.sprintf "E%d" k) ~arity:2

let v = Term.var
let atom = Atom.make

let t_a =
  let x = v "x" and y = v "y" and z = v "z" in
  Theory.make ~name:"T_a"
    [
      Tgd.make ~name:"mother"
        ~body:[ atom human [ y ] ]
        ~head:[ atom mother [ y; z ] ]
        ();
      Tgd.make ~name:"human"
        ~body:[ atom mother [ x; y ] ]
        ~head:[ atom human [ y ] ]
        ();
    ]

let t_p =
  let x = v "x" and y = v "y" and z = v "z" in
  Theory.make ~name:"T_p"
    [
      Tgd.make ~name:"extend"
        ~body:[ atom e2 [ x; y ] ]
        ~head:[ atom e2 [ y; z ] ]
        ();
    ]

let t_loopcut =
  let x = v "x" and x' = v "x'" and x'' = v "x''" in
  Theory.make ~name:"T_loopcut"
    (Theory.rules t_p
    @ [
        Tgd.make ~name:"selfloop"
          ~body:[ atom e2 [ x; x' ]; atom e2 [ x'; x'' ] ]
          ~head:[ atom e2 [ x'; x' ] ]
          ();
      ])

let t_sticky =
  let x = v "x" and y = v "y" and y' = v "y'" and y'' = v "y''" in
  let t = v "t" and t' = v "t'" in
  Theory.make ~name:"T_sticky"
    [
      Tgd.make ~name:"see"
        ~body:[ atom e4 [ x; y; y'; t ]; atom r2 [ x; t' ] ]
        ~head:[ atom e4 [ x; y'; y''; t' ] ]
        ();
    ]

let t_nonbdd =
  let x = v "x" and y = v "y" and z = v "z" in
  Theory.make ~name:"T_nonbdd"
    [
      Tgd.make ~name:"push"
        ~body:[ atom e3 [ x; y; z ]; atom r2 [ x; z ] ]
        ~head:[ atom r2 [ y; z ] ]
        ();
    ]

let t_c =
  let x = v "x" and y = v "y" and z = v "z" in
  let x' = v "x'" and y' = v "y'" and z' = v "z'" in
  Theory.make ~name:"T_c"
    [
      Tgd.make ~name:"start"
        ~body:[ atom e2 [ x; y ] ]
        ~head:[ atom r4 [ x; y; x'; y' ] ]
        ();
      Tgd.make ~name:"advance"
        ~body:[ atom r4 [ x; y; x'; y' ]; atom e2 [ y; z ] ]
        ~head:[ atom r4 [ y; z; y'; z' ] ]
        ();
    ]

let grid_rule ~upper ~lower ~name =
  let x = v "x" and x' = v "x'" and u = v "u" and u' = v "u'" and z = v "z" in
  Tgd.make ~name
    ~body:[ atom upper [ x; x' ]; atom lower [ x; u ]; atom lower [ u; u' ] ]
    ~head:[ atom upper [ u'; z ]; atom lower [ x'; z ] ]
    ()

let t_d =
  let x = v "x" and z = v "z" and z' = v "z'" in
  Theory.make ~name:"T_d"
    [
      Tgd.make ~name:"loop" ~body:[]
        ~head:[ atom r2 [ x; x ]; atom g2 [ x; x ] ]
        ();
      Tgd.make ~name:"pins" ~dom_vars:[ x ] ~body:[]
        ~head:[ atom r2 [ x; z ]; atom g2 [ x; z' ] ]
        ();
      grid_rule ~upper:r2 ~lower:g2 ~name:"grid";
    ]

let t_d_noloop =
  Theory.make ~name:"T_d_noloop"
    (List.filter (fun r -> Tgd.name r <> "loop") (Theory.rules t_d))

let t_dk kk =
  if kk < 2 then invalid_arg "Zoo.t_dk: K must be at least 2";
  let x = v "x" and z = v "z" in
  let loop =
    Tgd.make ~name:"loop" ~body:[]
      ~head:(List.init kk (fun j -> atom (i_k (j + 1)) [ x; x ]))
      ()
  in
  let pins =
    List.init kk (fun j ->
        Tgd.make
          ~name:(Printf.sprintf "pins%d" (j + 1))
          ~dom_vars:[ x ] ~body:[]
          ~head:[ atom (i_k (j + 1)) [ x; z ] ]
          ())
  in
  let grids =
    List.init (kk - 1) (fun j ->
        let i = j + 1 in
        grid_rule ~upper:(i_k (i + 1)) ~lower:(i_k i)
          ~name:(Printf.sprintf "grid%d" i))
  in
  Theory.make ~name:(Printf.sprintf "T_d^%d" kk) ((loop :: pins) @ grids)

let t_e28 n =
  if n < 1 then invalid_arg "Zoo.t_e28: need at least one level";
  let x = v "x" and y = v "y" and z = v "z" in
  Theory.make
    ~name:(Printf.sprintf "T_e28[%d]" n)
    (List.init n (fun j ->
         let i = j + 1 in
         Tgd.make
           ~name:(Printf.sprintf "down%d" i)
           ~body:[ atom (e_k i) [ x; y ] ]
           ~head:[ atom (e_k (i - 1)) [ y; z ] ]
           ()))

let knows = Symbol.make "Knows" ~arity:2
let person = Symbol.make "Person" ~arity:1

let t_spouse =
  let x = v "x" and y = v "y" and z = v "z" in
  Theory.make ~name:"T_spouse"
    [
      Tgd.make ~name:"has"
        ~body:[ atom person [ x ] ]
        ~head:[ atom knows [ x; z ] ]
        ();
      Tgd.make ~name:"sym"
        ~body:[ atom knows [ x; y ] ]
        ~head:[ atom knows [ y; x ] ]
        ();
      Tgd.make ~name:"is_person"
        ~body:[ atom knows [ x; y ] ]
        ~head:[ atom person [ y ] ]
        ();
    ]

let t_ex66 =
  let x = v "x" and y = v "y" and z = v "z" and w = v "w" in
  Theory.make ~name:"T_ex66"
    [
      Tgd.make ~name:"extend"
        ~body:[ atom e2 [ x; y ]; atom r2 [ z; y ] ]
        ~head:[ atom e2 [ y; w ] ]
        ();
      Tgd.make ~name:"colour"
        ~body:[ atom e2 [ x; y ]; atom p1 [ z ] ]
        ~head:[ atom r2 [ z; y ] ]
        ();
    ]

(* ------------------------------------------------------------------ *)
(* Query families                                                     *)
(* ------------------------------------------------------------------ *)

let path_query rel prefix n =
  if n < 1 then invalid_arg "Zoo.path_query: length must be positive";
  let node i = v (Printf.sprintf "%s%d" prefix i) in
  let atoms = List.init n (fun i -> atom rel [ node i; node (i + 1) ]) in
  let x0 = node 0 and xn = node n in
  (x0, xn, Cq.make ~free:[ x0; xn ] atoms)

let g_path_query n = path_query g2 "gq" n
let r_path_query n = path_query r2 "rq" n
let e_path_query n = path_query e2 "eq" n
let i_path_query k n = path_query (i_k k) (Printf.sprintf "i%dq" k) n

let phi_with ~upper ~lower n =
  let x = v "x" and y = v "y" and x' = v "x'" and y' = v "y'" in
  let chain start stop prefix =
    if n = 0 then ([], start, stop)
    else
      let node i =
        if i = 0 then start
        else if i = n then stop
        else v (Printf.sprintf "%s%d" prefix i)
      in
      (List.init n (fun i -> atom upper [ node i; node (i + 1) ]), start, stop)
  in
  let left_atoms, _, _ = chain x x' "pl" in
  let right_atoms, _, _ = chain y y' "pr" in
  let atoms = left_atoms @ right_atoms @ [ atom lower [ x'; y' ] ] in
  if n = 0 then
    (* phi_R^0(x,y) is just G(x,y). *)
    (x, y, Cq.make ~free:[ x; y ] [ atom lower [ x; y ] ])
  else (x, y, Cq.make ~free:[ x; y ] atoms)

let phi_r n = phi_with ~upper:r2 ~lower:g2 n
let phi_i k n = phi_with ~upper:(i_k k) ~lower:(i_k (k - 1)) n

open Logic

let rel_symbol i = Symbol.make (Printf.sprintf "L%d" i) ~arity:2

let random_linear_binary ~seed ~rels ~rules =
  if rels < 1 || rules < 1 then
    invalid_arg "Generators.random_linear_binary: need rels, rules >= 1";
  let state = Random.State.make [| seed; rels; rules |] in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let rel () = rel_symbol (Random.State.int state rels) in
  let rule i =
    let body = [ Atom.make (rel ()) [ x; y ] ] in
    let head =
      match Random.State.int state 5 with
      | 0 -> Atom.make (rel ()) [ y; z ]
      | 1 -> Atom.make (rel ()) [ x; z ]
      | 2 -> Atom.make (rel ()) [ y; x ]
      | 3 -> Atom.make (rel ()) [ x; x ]
      | _ -> Atom.make (rel ()) [ y; y ]
    in
    Tgd.make ~name:(Printf.sprintf "lin%d" i) ~body ~head:[ head ] ()
  in
  Theory.make
    ~name:(Printf.sprintf "linear[%d]" seed)
    (List.init rules rule)

let random_datalog_binary ~seed ~rels ~rules =
  if rels < 1 || rules < 1 then
    invalid_arg "Generators.random_datalog_binary: need rels, rules >= 1";
  let state = Random.State.make [| seed + 7919; rels; rules |] in
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let rel () = rel_symbol (Random.State.int state rels) in
  let rule i =
    let two_atoms = Random.State.bool state in
    let body =
      if two_atoms then
        [ Atom.make (rel ()) [ x; y ]; Atom.make (rel ()) [ y; z ] ]
      else [ Atom.make (rel ()) [ x; y ] ]
    in
    let vars = if two_atoms then [| x; y; z |] else [| x; y |] in
    let pick () = vars.(Random.State.int state (Array.length vars)) in
    let head = Atom.make (rel ()) [ pick (); pick () ] in
    Tgd.make ~name:(Printf.sprintf "dl%d" i) ~body ~head:[ head ] ()
  in
  Theory.make
    ~name:(Printf.sprintf "datalog[%d]" seed)
    (List.init rules rule)

let random_instance_for ~seed theory ~nodes ~facts =
  let rels =
    Symbol.Set.elements
      (Symbol.Set.filter
         (fun s -> Symbol.arity s = 2)
         (Theory.signature theory))
  in
  match rels with
  | [] -> Fact_set.empty
  | _ :: _ -> Instances.random_binary ~seed ~rels ~nodes ~facts

(** Syntactic class membership for the BDD subclasses of Section 1:
    linear, (bounded) Datalog, guarded, sticky, plus structural properties
    (binary signature, connectedness). Sticky uses the marking procedure of
    Cali-Gottlob-Pieris [5]. *)

open Logic

type report = {
  linear : bool;
  datalog : bool;
  guarded : bool;
  sticky : bool;
  weakly_acyclic : bool;
  binary : bool;
  connected : bool;
  single_head : bool;
  frontier_one : bool;
}

val classify : Theory.t -> report
val pp_report : report Fmt.t

val is_sticky : Theory.t -> bool
(** The marking procedure: mark body positions of variables lost by the
    head, propagate backwards through head positions, and require that no
    variable occurring twice in a body sits at a marked position.
    Only meaningful for single-head rules without domain variables; rules
    with domain variables or multi-atom heads are handled conservatively
    (each head atom is considered separately). *)

val marked_positions : Theory.t -> (Symbol.t * int) list
(** The fixpoint of the marking procedure, for inspection and tests. *)

val is_weakly_acyclic : Theory.t -> bool
(** The classic sufficient criterion for all-instances termination of the
    (semi-oblivious) chase: the dependency graph over predicate positions —
    ordinary edges from body positions to the head positions of shared
    frontier variables, special edges from body positions of frontier
    variables to head positions of existential variables — has no cycle
    through a special edge. Rules with domain variables are treated as if
    the domain variable occurred at every position (conservative). *)

val weak_acyclicity_witness : Theory.t -> (Symbol.t * int) list option
(** A position on a cycle through a special edge, when not weakly
    acyclic. *)

(** Executable versions of the paper's exercise-lemmas (Section 4-5).

    These are analyzers extracting, from a chase run, the constants whose
    existence the exercises assert for BDD theories; the test suite checks
    the asserted bounds on the zoo. *)

open Logic

val adjacency_contraction : Chase.Engine.run -> int option
(** Exercise 13: for a connected BDD theory there is a constant [d] such
    that instance constants adjacent in the chase were already at distance
    [<= d] in [D]. Returns the maximal [dist_D(c, c')] over pairs of
    initial constants that are chase-adjacent; [None] when some
    chase-adjacent pair is disconnected in [D] (witnessing a violation,
    possible only for disconnected or non-BDD theories). *)

val atom_delay : Chase.Engine.run -> int
(** Exercise 17: facts about terms appear soon after the terms are created:
    the maximal [stage(alpha) - max_t stage_of_first_occurrence(t)] over
    derived atoms [alpha]. For a BDD theory this is bounded by a constant
    [n_at] independent of the instance. *)

val term_birth_stages : Chase.Engine.run -> int Term.Map.t
(** First stage in which each active-domain term occurs. *)

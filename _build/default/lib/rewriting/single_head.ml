open Logic

let compile theory =
  let aux_syms = ref Symbol.Set.empty in
  let counter = ref 0 in
  let compile_rule rule =
    if Tgd.is_single_head rule then [ rule ]
    else begin
      incr counter;
      let frontier = Tgd.frontier rule in
      let exist = Tgd.exist_vars rule in
      let args = frontier @ exist in
      let aux =
        Symbol.make
          (Printf.sprintf "Aux_%s_%d"
             (match Tgd.name rule with "" -> "rule" | n -> n)
             !counter)
          ~arity:(List.length args)
      in
      aux_syms := Symbol.Set.add aux !aux_syms;
      let aux_atom = Atom.make aux args in
      let generator =
        Tgd.make
          ~name:(Tgd.name rule ^ "#gen")
          ~dom_vars:(Tgd.dom_vars rule) ~body:(Tgd.body rule)
          ~head:[ aux_atom ] ()
      in
      let projections =
        List.mapi
          (fun i h ->
            Tgd.make
              ~name:(Printf.sprintf "%s#proj%d" (Tgd.name rule) i)
              ~body:[ aux_atom ] ~head:[ h ] ())
          (Tgd.head rule)
      in
      generator :: projections
    end
  in
  let rules = List.concat_map compile_rule (Theory.rules theory) in
  (Theory.make ~name:(Theory.name theory ^ "#1h") rules, !aux_syms)

let mentions_aux aux q =
  List.exists (fun a -> Symbol.Set.mem (Atom.rel a) aux) (Cq.atoms q)

open Logic

type budget = {
  max_disjuncts : int;
  max_atoms_per_disjunct : int;
  max_steps : int;
}

let default_budget =
  { max_disjuncts = 2_000; max_atoms_per_disjunct = 40; max_steps = 5_000 }

type outcome = Complete | Disjunct_budget | Size_budget | Step_budget

type result = { ucq : Ucq.t; outcome : outcome; steps : int; generated : int }

let rewrite ?(budget = default_budget) theory q =
  let compiled, aux = Single_head.compile theory in
  let q0 = Containment.core_of_query q in
  let ucq = ref (fst (Ucq.add_minimal Ucq.empty q0)) in
  let worklist = Queue.create () in
  Queue.add q0 worklist;
  let steps = ref 0 in
  let generated = ref 0 in
  let outcome = ref Complete in
  (try
     while not (Queue.is_empty worklist) do
       if !steps >= budget.max_steps then begin
         outcome := Step_budget;
         raise Exit
       end;
       let current = Queue.pop worklist in
       (* A query subsumed since it was enqueued need not be expanded. *)
       if Ucq.exists (fun d -> d == current) !ucq then begin
         incr steps;
         List.iter
           (fun q' ->
             incr generated;
             if Cq.size q' > budget.max_atoms_per_disjunct then begin
               outcome := Size_budget;
               raise Exit
             end;
             let ucq', status = Ucq.add_minimal !ucq q' in
             ucq := ucq';
             match status with
             | `Added ->
                 Queue.add q' worklist;
                 if Ucq.cardinal !ucq > budget.max_disjuncts then begin
                   outcome := Disjunct_budget;
                   raise Exit
                 end
             | `Subsumed -> ())
           (Piece_unifier.one_step_theory current compiled)
       end
     done
   with Exit -> ());
  let visible =
    List.filter
      (fun d -> not (Single_head.mentions_aux aux d))
      (Ucq.disjuncts !ucq)
  in
  {
    ucq = Ucq.of_list visible;
    outcome = !outcome;
    steps = !steps;
    generated = !generated;
  }

let rs ?budget theory q =
  let r = rewrite ?budget theory q in
  match r.outcome with
  | Complete -> Some (Ucq.max_disjunct_size r.ucq)
  | Disjunct_budget | Size_budget | Step_budget -> None

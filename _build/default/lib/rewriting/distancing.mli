(** The distancing analyzer (Definition 43): a theory is distancing when
    Gaifman distances between original constants cannot contract by more
    than a constant factor when passing from [D] to [Ch(T, D)]. [T_d]
    violates this spectacularly ([2^n] vs [~3n], Theorem 5); all previously
    known BDD classes satisfy it (Observation 44). *)

open Logic

type pair = {
  a : Term.t;
  b : Term.t;
  dist_d : int option;  (** distance in the Gaifman graph of [D] *)
  dist_ch : int option;  (** distance in the computed chase prefix *)
}

val pairs : Chase.Engine.run -> pair list
(** One entry per unordered pair of initial-domain elements. *)

val max_contraction : Chase.Engine.run -> (pair * float) option
(** The pair maximizing [dist_d / dist_ch] (both finite, [dist_ch > 0]) —
    the observed distance contraction factor. [None] when no pair
    qualifies. *)

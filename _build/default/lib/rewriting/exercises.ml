open Logic

let term_birth_stages run =
  let births = ref Term.Map.empty in
  for i = 0 to Chase.Engine.depth run do
    List.iter
      (fun atom ->
        List.iter
          (fun t ->
            if not (Term.Map.mem t !births) then
              births := Term.Map.add t i !births)
          (Atom.terms atom))
      (Chase.Engine.new_at_stage run i)
  done;
  !births

let adjacency_contraction run =
  let d = Chase.Engine.initial run in
  let dom = Fact_set.domain d in
  let g_d = Gaifman.of_fact_set d in
  let g_ch = Gaifman.of_fact_set (Chase.Engine.result run) in
  let worst = ref (Some 0) in
  Term.Set.iter
    (fun c ->
      Term.Set.iter
        (fun c' ->
          if Term.compare c c' < 0 && Term.Set.mem c' (Gaifman.neighbours g_ch c)
          then
            match (!worst, Gaifman.distance g_d c c') with
            | Some w, Some dist -> worst := Some (max w dist)
            | _, None -> worst := None
            | None, _ -> ())
        dom)
    dom;
  !worst

let atom_delay run =
  let births = term_birth_stages run in
  let delay = ref 0 in
  for i = 1 to Chase.Engine.depth run do
    List.iter
      (fun atom ->
        let terms_ready =
          List.fold_left
            (fun acc t ->
              max acc (Option.value ~default:0 (Term.Map.find_opt t births)))
            0 (Atom.terms atom)
        in
        delay := max !delay (i - terms_ready))
      (Chase.Engine.new_at_stage run i)
  done;
  !delay

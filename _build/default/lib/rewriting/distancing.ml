open Logic

type pair = {
  a : Term.t;
  b : Term.t;
  dist_d : int option;
  dist_ch : int option;
}

let pairs run =
  let d = Chase.Engine.initial run in
  let g_d = Gaifman.of_fact_set d in
  let g_ch = Gaifman.of_fact_set (Chase.Engine.result run) in
  let dom = Term.Set.elements (Fact_set.domain d) in
  let rec all_pairs = function
    | [] -> []
    | x :: rest ->
        List.map
          (fun y ->
            {
              a = x;
              b = y;
              dist_d = Gaifman.distance g_d x y;
              dist_ch = Gaifman.distance g_ch x y;
            })
          rest
        @ all_pairs rest
  in
  all_pairs dom

let max_contraction run =
  List.fold_left
    (fun best p ->
      match (p.dist_d, p.dist_ch) with
      | Some dd, Some dc when dc > 0 ->
          let ratio = float_of_int dd /. float_of_int dc in
          (match best with
          | Some (_, r) when r >= ratio -> best
          | Some _ | None -> Some (p, ratio))
      | _ -> best)
    None (pairs run)

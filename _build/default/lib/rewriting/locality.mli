(** Empirical locality analyzers (Definitions 30 and 40).

    A theory is local with constant [l] when the chase of every instance is
    the literal union of the chases of its at-most-[l]-fact sub-instances —
    well-defined as a union of sets thanks to the Skolem naming convention.
    These analyzers check the property on a given instance up to a chase
    depth: the witness families of Examples 39 and 42 yield their defects at
    shallow depth, so the bounded check exhibits exactly the paper's
    phenomena. *)

open Logic

val subsets_up_to : int -> 'a list -> 'a list list
(** All non-empty subsets of size at most [l], smallest first. *)

val union_of_subchases :
  ?sub_depth:int -> ?max_atoms:int -> Theory.t -> Fact_set.t -> l:int ->
  Fact_set.t
(** The union of [Ch_{sub_depth}(T, F)] over sub-instances [F] of size at
    most [l]. *)

val defects :
  ?depth:int -> ?sub_depth:int -> ?max_atoms:int ->
  Theory.t -> Fact_set.t -> l:int -> Atom.t list
(** Atoms of [Ch_depth(T, D)] missing from the union of sub-chases
    (computed to [sub_depth], default [2 * depth + 2]) — locality-defect
    witnesses for constant [l]. *)

val min_constant :
  ?depth:int -> ?sub_depth:int -> ?max_atoms:int ->
  Theory.t -> Fact_set.t -> max_l:int -> int option
(** The least [l <= max_l] with no defect on this instance, if any. *)

val min_constant_family :
  ?depth:int -> ?sub_depth:int -> ?max_atoms:int ->
  Theory.t -> Fact_set.t list -> max_l:int -> int option
(** The bd-locality probe (Definition 40): the largest per-instance minimal
    constant across a (typically degree-bounded) family — [None] as soon as
    one instance exceeds [max_l]. *)

val atom_support :
  ?sub_depth:int -> ?max_atoms:int -> Theory.t -> Fact_set.t -> Atom.t ->
  int option
(** The minimal cardinality of a sub-instance [F] of [D] whose chase
    (to [sub_depth]) contains the given atom. [None] if not even the full
    instance derives it within bounds. *)

val max_support :
  ?depth:int -> ?sub_depth:int -> ?max_atoms:int ->
  Theory.t -> Fact_set.t -> int option
(** The largest [atom_support] over all atoms of [Ch_depth(T,D)] — the
    locality constant this instance *demands*. *)

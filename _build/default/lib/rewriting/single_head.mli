(** Compilation of multi-head TGDs to single-head ones (footnote 31 of the
    paper): a rule [B -> exists w. H1, ..., Hk] becomes

    {v
      B -> exists w. Aux(y, w)          (Aux fresh)
      Aux(y, w) -> Hi                   (one Datalog projection per i)
    v}

    with [y] the frontier. The chase over the compiled theory coincides with
    the original on the original signature, so a UCQ rewriting computed over
    the compiled theory is correct once disjuncts mentioning an auxiliary
    predicate are discarded (instances never contain them). *)

open Logic

val compile : Theory.t -> Theory.t * Symbol.Set.t
(** Returns the compiled theory and the set of auxiliary predicates. *)

val mentions_aux : Symbol.Set.t -> Cq.t -> bool

open Logic

let subsets_up_to l items =
  let rec go size =
    if size > l then []
    else
      let rec choose k items =
        if k = 0 then [ [] ]
        else
          match items with
          | [] -> []
          | x :: rest ->
              List.map (fun s -> x :: s) (choose (k - 1) rest) @ choose k rest
      in
      choose size items @ go (size + 1)
  in
  List.filter (fun s -> s <> []) (go 1)

let union_of_subchases ?(sub_depth = 8) ?(max_atoms = 100_000) theory d ~l =
  List.fold_left
    (fun acc subset ->
      let f = Fact_set.of_list subset in
      let run = Chase.Engine.run ~max_depth:sub_depth ~max_atoms theory f in
      Fact_set.union acc (Chase.Engine.result run))
    Fact_set.empty
    (subsets_up_to l (Fact_set.atoms d))

let defects ?(depth = 3) ?sub_depth ?max_atoms theory d ~l =
  let sub_depth = Option.value ~default:((2 * depth) + 2) sub_depth in
  let run =
    Chase.Engine.run ~max_depth:depth
      ?max_atoms theory d
  in
  let full = Chase.Engine.result run in
  let union = union_of_subchases ~sub_depth ?max_atoms theory d ~l in
  Fact_set.atoms (Fact_set.diff full union)

let min_constant ?depth ?sub_depth ?max_atoms theory d ~max_l =
  let rec go l =
    if l > max_l then None
    else if defects ?depth ?sub_depth ?max_atoms theory d ~l = [] then Some l
    else go (l + 1)
  in
  go 1

let min_constant_family ?depth ?sub_depth ?max_atoms theory instances ~max_l =
  List.fold_left
    (fun acc d ->
      match (acc, min_constant ?depth ?sub_depth ?max_atoms theory d ~max_l) with
      | Some best, Some l -> Some (max best l)
      | None, _ | _, None -> None)
    (Some 0) instances

let atom_support ?(sub_depth = 8) ?(max_atoms = 100_000) theory d atom =
  let atoms = Fact_set.atoms d in
  let rec go size =
    if size > List.length atoms then None
    else
      let found =
        List.exists
          (fun subset ->
            List.length subset = size
            &&
            let run =
              Chase.Engine.run ~max_depth:sub_depth ~max_atoms theory
                (Fact_set.of_list subset)
            in
            Fact_set.mem atom (Chase.Engine.result run))
          (subsets_up_to size atoms)
      in
      if found then Some size else go (size + 1)
  in
  go 1

let max_support ?(depth = 3) ?sub_depth ?max_atoms theory d =
  let sub_depth = Option.value ~default:((2 * depth) + 2) sub_depth in
  let run = Chase.Engine.run ~max_depth:depth ?max_atoms theory d in
  let derived = Fact_set.atoms (Chase.Engine.result run) in
  List.fold_left
    (fun acc atom ->
      match (acc, atom_support ~sub_depth ?max_atoms theory d atom) with
      | Some best, Some s -> Some (max best s)
      | _, None | None, _ -> None)
    (Some 0) derived

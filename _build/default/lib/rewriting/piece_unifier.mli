(** One-step backward rewriting with piece unifiers (the engine behind
    Theorem 1's [rew] sets), for single-head TGDs under Skolem-chase
    semantics.

    A piece unifier of a query [q] with a rule [B -> exists w. H] picks a
    non-empty subset [A] of [q]'s atoms, unifies every atom of [A] with [H],
    and replaces [A] by [u(B)].  Admissibility (which encodes that Skolem
    terms are invented, mutually distinct, and absent from earlier chase
    stages): a unification class containing an existential variable of the
    rule must contain no constant, no answer variable, no frontier variable
    of the rule, no second existential variable, and no query variable that
    also occurs outside [A].

    Restrictions (documented in DESIGN.md): rules with empty bodies, with
    domain variables, or with multi-atom heads are not rewritten here —
    multi-head rules go through {!Single_head.compile} first, and the
    [T_d]-style rules are handled by the dedicated marked-query engine.
    Unifiers forcing two answer variables together, or an answer variable
    onto a constant, are skipped (CQ-with-equality specializations are out
    of scope). *)

open Logic

val one_step : Cq.t -> Tgd.t -> Cq.t list
(** All one-step rewritings of the query through the rule. Each result is
    already reduced to its query core. Returns [[]] for rules this engine
    does not handle (empty body, domain variables, multi-atom head). *)

val one_step_theory : Cq.t -> Theory.t -> Cq.t list

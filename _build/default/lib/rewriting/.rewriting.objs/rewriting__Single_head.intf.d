lib/rewriting/single_head.mli: Cq Logic Symbol Theory

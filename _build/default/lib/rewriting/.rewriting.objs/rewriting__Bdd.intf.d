lib/rewriting/bdd.mli: Cq Fact_set Logic Rewrite Term Theory Ucq

lib/rewriting/distancing.ml: Chase Fact_set Gaifman List Logic Term

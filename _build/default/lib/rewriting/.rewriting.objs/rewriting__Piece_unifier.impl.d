lib/rewriting/piece_unifier.ml: Atom Containment Cq Hashtbl List Logic Option Symbol Term Tgd Theory

lib/rewriting/exercises.mli: Chase Logic Term

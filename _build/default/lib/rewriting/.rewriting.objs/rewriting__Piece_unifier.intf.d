lib/rewriting/piece_unifier.mli: Cq Logic Tgd Theory

lib/rewriting/single_head.ml: Atom Cq List Logic Printf Symbol Tgd Theory

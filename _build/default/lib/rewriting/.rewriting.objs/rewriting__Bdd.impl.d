lib/rewriting/bdd.ml: Atom Bool Chase Cq Fact_set List Logic Rewrite Term Ucq

lib/rewriting/locality.ml: Chase Fact_set List Logic Option

lib/rewriting/rewrite.mli: Cq Logic Theory Ucq

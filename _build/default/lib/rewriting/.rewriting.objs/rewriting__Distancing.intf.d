lib/rewriting/distancing.mli: Chase Logic Term

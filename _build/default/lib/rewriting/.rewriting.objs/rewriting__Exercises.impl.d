lib/rewriting/exercises.ml: Atom Chase Fact_set Gaifman List Logic Option Term

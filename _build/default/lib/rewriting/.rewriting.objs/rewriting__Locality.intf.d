lib/rewriting/locality.mli: Atom Fact_set Logic Theory

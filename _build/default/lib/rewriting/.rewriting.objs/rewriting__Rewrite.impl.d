lib/rewriting/rewrite.ml: Containment Cq List Logic Piece_unifier Queue Single_head Ucq

type t = { name : string; arity : int }

let make name ~arity =
  if arity < 0 then invalid_arg "Symbol.make: negative arity";
  { name; arity }

let name s = s.name
let arity s = s.arity

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else Int.compare a.arity b.arity

let equal a b = compare a b = 0
let pp ppf s = Fmt.string ppf s.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

type mapping = Term.t Term.Map.t

type problem = {
  init : mapping;
  image_ok : Term.t -> Term.t -> bool;
  prefer : (Atom.t -> int) option;
  domain_vars : Term.t list;
  flexible : Term.Set.t;
  pattern : Atom.t list;
  target : Fact_set.t;
}

let make ?(init = Term.Map.empty) ?(image_ok = fun _ _ -> true) ?prefer
    ?(domain_vars = []) ~flexible ~pattern ~target () =
  { init; image_ok; prefer; domain_vars; flexible; pattern; target }

exception Stop

(* Generic engine: each pattern atom carries its own target fact set (the
   semi-naive chase partitions body atoms between "old", "delta" and "full"
   stages), and each domain-bound variable carries its own candidate pool. *)
let iter_multi ?(init = Term.Map.empty) ?(image_ok = fun _ _ -> true)
    ?prefer ~flexible ~pattern ~domain_bindings f =
  let bound_positions assignment atom =
    let bound = ref [] in
    List.iteri
      (fun pos t ->
        if Term.Set.mem t flexible then (
          match Term.Map.find_opt t assignment with
          | Some image -> bound := (pos, image) :: !bound
          | None -> ())
        else bound := (pos, t) :: !bound)
      (Atom.args atom);
    !bound
  in
  let match_atom assignment atom fact =
    let rec go assignment pos = function
      | [] -> Some assignment
      | t :: rest ->
          let u = Atom.arg fact pos in
          if Term.Set.mem t flexible then
            match Term.Map.find_opt t assignment with
            | Some image ->
                if Term.equal image u then go assignment (pos + 1) rest
                else None
            | None ->
                if image_ok t u then
                  go (Term.Map.add t u assignment) (pos + 1) rest
                else None
          else if Term.equal t u then go assignment (pos + 1) rest
          else None
    in
    go assignment 0 (Atom.args atom)
  in
  let rec bind_domain assignment = function
    | [] -> f assignment
    | (v, pool) :: rest -> (
        match Term.Map.find_opt v assignment with
        | Some u ->
            (* Pre-bound (e.g. by a body atom): still honour the pool. *)
            if List.exists (Term.equal u) pool then
              bind_domain assignment rest
        | None ->
            List.iter
              (fun u ->
                if image_ok v u then
                  bind_domain (Term.Map.add v u assignment) rest)
              pool)
  in
  let rec solve assignment remaining =
    match remaining with
    | [] -> bind_domain assignment domain_bindings
    | _ :: _ ->
        let scored =
          List.map
            (fun ((a, _) as entry) -> (entry, bound_positions assignment a))
            remaining
        in
        let (best_atom, best_target), bound =
          List.fold_left
            (fun ((_, bb) as best) ((_, b) as cur) ->
              if List.length b > List.length bb then cur else best)
            (List.hd scored) (List.tl scored)
        in
        let rest =
          List.filter (fun (a, _) -> not (a == best_atom)) remaining
        in
        let cands =
          Fact_set.candidates best_target (Atom.rel best_atom) ~bound
        in
        let cands =
          (* Candidate preference steers which homomorphism is found first
             (e.g. the core search prefers folding onto original
             constants); it never prunes. *)
          match prefer with
          | None -> cands
          | Some rank ->
              List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) cands
        in
        List.iter
          (fun fact ->
            match match_atom assignment best_atom fact with
            | Some assignment' -> solve assignment' rest
            | None -> ())
          cands
  in
  if Term.Map.for_all (fun v u -> image_ok v u) init then solve init pattern

let iter p f =
  let pool =
    lazy (Term.Set.elements (Fact_set.domain p.target))
  in
  let domain_bindings =
    List.map (fun v -> (v, Lazy.force pool)) p.domain_vars
  in
  iter_multi ~init:p.init ~image_ok:p.image_ok ?prefer:p.prefer
    ~flexible:p.flexible
    ~pattern:(List.map (fun a -> (a, p.target)) p.pattern)
    ~domain_bindings f

let find p =
  let result = ref None in
  (try
     iter p (fun m ->
         result := Some m;
         raise Stop)
   with Stop -> ());
  !result

let exists p = find p <> None

let count p =
  let n = ref 0 in
  iter p (fun _ -> incr n);
  !n

let apply mapping ~flexible atom =
  let image t =
    if Term.Set.mem t flexible then
      match Term.Map.find_opt t mapping with
      | Some u -> u
      | None -> invalid_arg "Homomorphism.apply: unmapped flexible term"
    else t
  in
  Atom.make (Atom.rel atom) (List.map image (Atom.args atom))

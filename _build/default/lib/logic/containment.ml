let hom_problem ~from ~into ~extra_ok =
  (* A homomorphism from query [from] to query [into], mapping answer
     variables positionally. *)
  if List.length (Cq.free from) <> List.length (Cq.free into) then None
  else
    let init =
      List.fold_left2
        (fun m v w -> Term.Map.add v w m)
        Term.Map.empty (Cq.free from) (Cq.free into)
    in
    Some
      (Homomorphism.make ~init ~image_ok:extra_ok
         ~flexible:(Term.Set.of_list (Cq.vars from))
         ~pattern:(Cq.atoms from)
         ~target:(Cq.as_fact_set into) ())

let implies q1 q2 =
  match hom_problem ~from:q2 ~into:q1 ~extra_ok:(fun _ _ -> true) with
  | None -> false
  | Some p -> Homomorphism.exists p

let equivalent q1 q2 = implies q1 q2 && implies q2 q1

exception Found

let isomorphic q1 q2 =
  Cq.size q1 = Cq.size q2
  && List.length (Cq.vars q1) = List.length (Cq.vars q2)
  && String.equal (Cq.iso_key q1) (Cq.iso_key q2)
  &&
  match hom_problem ~from:q1 ~into:q2 ~extra_ok:(fun _ _ -> true) with
  | None -> false
  | Some p -> (
      let injective m =
        let images = Term.Map.fold (fun _ u acc -> u :: acc) m [] in
        List.length images
        = Term.Set.cardinal (Term.Set.of_list images)
      in
      try
        Homomorphism.iter p (fun m -> if injective m then raise Found);
        false
      with Found -> true)

let core_of_query q =
  let redundant atoms atom free =
    match
      List.filter (fun a -> not (Atom.equal a atom)) atoms
    with
    | [] -> None
    | smaller_atoms -> (
        let smaller = Cq.make ~free smaller_atoms in
        (* [atom] is redundant iff the full query maps into the smaller one
           fixing the answer variables. *)
        match
          hom_problem
            ~from:(Cq.make ~free atoms)
            ~into:smaller
            ~extra_ok:(fun _ _ -> true)
        with
        | Some p when Homomorphism.exists p -> Some smaller
        | Some _ | None -> None)
  in
  let rec shrink q =
    let free = Cq.free q in
    let rec try_each = function
      | [] -> q
      | atom :: rest -> (
          (* Free variables must keep occurring in the body. *)
          match redundant (Cq.atoms q) atom free with
          | Some smaller -> shrink smaller
          | None -> try_each rest
          | exception Invalid_argument _ -> try_each rest)
    in
    try_each (Cq.atoms q)
  in
  shrink q

let default_colour sym =
  (* Stable colour per relation name, friendly to the paper's red/green. *)
  match Symbol.name sym with
  | "R" -> "red"
  | "G" -> "green3"
  | name ->
      let palette =
        [| "blue"; "orange"; "purple"; "brown"; "teal"; "magenta" |]
      in
      palette.(Hashtbl.hash name mod Array.length palette)

let quote s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let term_id t = quote (Fmt.str "%a" Term.pp t)

let to_dot ?(name = "chase") ?(colour = default_colour)
    ?(highlight = Term.Set.empty) fs =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %s {\n" (quote name |> fun s -> String.sub s 1 (String.length s - 2));
  out "  rankdir=LR;\n  node [shape=circle, fontsize=10];\n";
  Term.Set.iter
    (fun t -> out "  %s [shape=doublecircle];\n" (term_id t))
    highlight;
  let hyper = ref 0 in
  List.iter
    (fun atom ->
      match Atom.args atom with
      | [ a; b ] ->
          out "  %s -> %s [color=%s, label=%s];\n" (term_id a) (term_id b)
            (colour (Atom.rel atom))
            (quote (Symbol.name (Atom.rel atom)))
      | [ a ] ->
          out "  %s [xlabel=%s];\n" (term_id a)
            (quote (Symbol.name (Atom.rel atom)))
      | args ->
          incr hyper;
          let hub = Printf.sprintf "\"hyper%d\"" !hyper in
          out "  %s [shape=box, label=%s];\n" hub
            (quote (Symbol.name (Atom.rel atom)));
          List.iteri
            (fun i t ->
              out "  %s -> %s [style=dashed, label=\"%d\"];\n" hub
                (term_id t) i)
            args)
    (Fact_set.atoms fs);
  out "}\n";
  Buffer.contents buf

let edge_listing ?(max_edges = 100) fs =
  let binary =
    List.filter_map
      (fun atom ->
        match Atom.args atom with
        | [ a; b ] ->
            Some
              (Fmt.str "%a: %a -> %a" Symbol.pp (Atom.rel atom) Term.pp a
                 Term.pp b)
        | _ -> None)
      (Fact_set.atoms fs)
  in
  let sorted = List.sort String.compare binary in
  let shown = List.filteri (fun i _ -> i < max_edges) sorted in
  let suffix =
    if List.length sorted > max_edges then
      [ Printf.sprintf "... (%d more)" (List.length sorted - max_edges) ]
    else []
  in
  String.concat "\n" (shown @ suffix)

(** Rendering of (mostly binary) fact sets: GraphViz dot output and a
    plain-text edge listing, used to draw Figure 1-style chase fragments. *)

val to_dot :
  ?name:string ->
  ?colour:(Symbol.t -> string) ->
  ?highlight:Term.Set.t ->
  Fact_set.t ->
  string
(** A [digraph]: binary facts become edges labelled (and coloured) by their
    relation; facts of other arities become rectangular hyperedge nodes.
    [highlight] marks distinguished vertices (e.g. the original instance
    domain) with a double circle. *)

val edge_listing : ?max_edges:int -> Fact_set.t -> string
(** A deterministic, human-scannable listing "rel: a -> b" for binary facts
    (sorted), truncated at [max_edges] (default 100). *)

(** Tuple-generating dependencies (rules), with the features the paper's
    theories need beyond textbook TGDs:

    - multi-atom heads with shared existential variables (the (grid) rule of
      [T_d], Definition 45);
    - empty bodies ("[true => ...]", the (loop) rule), which fire exactly
      once;
    - *domain variables* ("[forall x (true => ...)]", the (pins) rule):
      body-less universal variables ranging over the active domain.

    Skolemization follows Definition 4: Skolem function names are derived
    from the *isomorphism type of the head*, not from the rule identity, so
    two rules with isomorphic heads produce identical Skolem terms — this is
    what makes the chase "with the Skolem naming convention" satisfy
    Observation 8 literally. *)

type t = private {
  name : string;
  body : Atom.t list;
  dom_vars : Term.t list;
  head : Atom.t list;
  frontier : Term.t list;  (** body-or-domain variables occurring in head *)
  exist_vars : Term.t list;
  skolemized_head : Atom.t list;
      (** [sh(rho)]: the head with each existential variable replaced by its
          Skolem pattern over the frontier (Definition 4). *)
}

val make :
  ?name:string -> ?dom_vars:Term.t list -> body:Atom.t list ->
  head:Atom.t list -> unit -> t
(** Raises [Invalid_argument] when the head is empty, when a term in
    body/head is neither variable nor constant, or when a domain variable
    also occurs in the body. *)

val name : t -> string
val body : t -> Atom.t list
val head : t -> Atom.t list
val dom_vars : t -> Term.t list
val frontier : t -> Term.t list
val exist_vars : t -> Term.t list
val body_vars : t -> Term.t list
(** Variables of the body atoms plus the domain variables. *)

val signature : t -> Symbol.Set.t
val max_arity : t -> int
val is_datalog : t -> bool
val is_linear : t -> bool
(** At most one body atom and no domain variables. *)

val is_detached : t -> bool
(** Empty frontier (Appendix A). *)

val is_guarded : t -> bool
(** Some body atom contains every body variable. *)

val is_connected : t -> bool
(** The body Gaifman graph (including domain variables as vertices) is
    connected (Section 2). *)

val is_single_head : t -> bool
val is_frontier_one : t -> bool

val triggers : t -> Fact_set.t -> (Homomorphism.mapping -> unit) -> unit
(** Iterate over [Hom(rho, F)] (Definition 5): all mappings of body
    variables and domain variables into [F]. *)

val apply : t -> Homomorphism.mapping -> Atom.t list
(** [appl(rho, sigma)]: the Skolemized head instantiated by the trigger. *)

val satisfied_in : t -> Fact_set.t -> bool
(** Plain first-order satisfaction: every trigger has head witnesses in the
    structure itself (no Skolem naming involved). *)

val violating_trigger : t -> Fact_set.t -> Homomorphism.mapping option

val refresh : t -> t
(** Rename all rule variables apart (used before unification in the
    rewriting engine). *)

val body_cq : t -> Cq.t option
(** The body as a CQ with the frontier as answer variables; [None] when the
    body is empty. Domain variables become extra body-less answer variables
    and are not representable — rules with domain variables return [None]
    too. *)

val pp : t Fmt.t

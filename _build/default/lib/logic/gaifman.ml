type t = { adj : Term.Set.t Term.Map.t }

let add_vertex v adj =
  Term.Map.update v
    (function None -> Some Term.Set.empty | some -> some)
    adj

let add_edge u v adj =
  let link a b m =
    Term.Map.update a
      (function
        | None -> Some (Term.Set.singleton b)
        | Some s -> Some (Term.Set.add b s))
      m
  in
  link u v (link v u adj)

let of_terms_per_atom term_lists =
  let adj =
    List.fold_left
      (fun adj terms ->
        let adj = List.fold_left (fun adj v -> add_vertex v adj) adj terms in
        List.fold_left
          (fun adj' t ->
            List.fold_left
              (fun adj'' u ->
                if Term.equal t u then adj'' else add_edge t u adj'')
              adj' terms)
          adj terms)
      Term.Map.empty term_lists
  in
  { adj }

let of_fact_set fs =
  of_terms_per_atom (List.map Atom.terms (Fact_set.atoms fs))

let of_atoms atoms = of_terms_per_atom (List.map Atom.vars atoms)

let vertices g =
  Term.Map.fold (fun v _ acc -> Term.Set.add v acc) g.adj Term.Set.empty

let neighbours g v =
  Option.value ~default:Term.Set.empty (Term.Map.find_opt v g.adj)

let degree g v = Term.Set.cardinal (neighbours g v)

let max_degree g =
  Term.Map.fold (fun _ ns acc -> max acc (Term.Set.cardinal ns)) g.adj 0

let distances_from g source =
  if not (Term.Map.mem source g.adj) then Term.Map.empty
  else begin
    let dist = ref (Term.Map.singleton source 0) in
    let queue = Queue.create () in
    Queue.add source queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let du = Term.Map.find u !dist in
      Term.Set.iter
        (fun v ->
          if not (Term.Map.mem v !dist) then begin
            dist := Term.Map.add v (du + 1) !dist;
            Queue.add v queue
          end)
        (neighbours g u)
    done;
    !dist
  end

let distance g u v = Term.Map.find_opt v (distances_from g u)

let components g =
  let remaining = ref (vertices g) in
  let comps = ref [] in
  while not (Term.Set.is_empty !remaining) do
    let seed = Term.Set.choose !remaining in
    let comp =
      Term.Map.fold
        (fun v _ acc -> Term.Set.add v acc)
        (distances_from g seed) Term.Set.empty
    in
    comps := comp :: !comps;
    remaining := Term.Set.diff !remaining comp
  done;
  List.rev !comps

let connected g =
  match components g with [] | [ _ ] -> true | _ :: _ :: _ -> false

let same_component g u v = distance g u v <> None

(** Fact sets: database instances and (finite prefixes of) chase structures.

    A fact set is an immutable set of atoms together with lazily-built
    indexes used by the homomorphism engine: a per-relation index and a
    (relation, position, term) index for selective joins. *)

type t

val empty : t
val of_list : Atom.t list -> t
val of_set : Atom.Set.t -> t
val to_set : t -> Atom.Set.t
val atoms : t -> Atom.t list
val cardinal : t -> int
val is_empty : t -> bool
val mem : Atom.t -> t -> bool
val add : Atom.t -> t -> t
val remove : Atom.t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val filter : (Atom.t -> bool) -> t -> t

val domain : t -> Term.Set.t
(** The active domain [dom(F)]: every term appearing in some fact. Terms are
    treated atomically (a Skolem term is one element; its subterms are not
    domain members unless they appear in argument position themselves). *)

val signature : t -> Symbol.Set.t

val by_rel : t -> Symbol.t -> Atom.t list
(** All facts with the given relation symbol. *)

val candidates : t -> Symbol.t -> bound:(int * Term.t) list -> Atom.t list
(** Facts with relation [rel] agreeing with every [(position, term)]
    constraint in [bound]; uses the most selective available index, then
    filters. *)

val restrict : t -> Term.Set.t -> t
(** The induced substructure on the given terms: keep the atoms whose every
    argument is in the set (Definition 36's "ban the other terms"). *)

val pp : t Fmt.t

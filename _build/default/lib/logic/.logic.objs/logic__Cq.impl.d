lib/logic/cq.ml: Atom Fact_set Fmt Gaifman Homomorphism List Printf Set String Symbol Term

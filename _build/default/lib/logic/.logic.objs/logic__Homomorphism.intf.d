lib/logic/homomorphism.mli: Atom Fact_set Term

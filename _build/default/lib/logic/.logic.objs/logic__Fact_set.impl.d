lib/logic/fact_set.ml: Atom Fmt Hashtbl List Option Symbol Term

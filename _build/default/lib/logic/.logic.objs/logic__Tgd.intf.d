lib/logic/tgd.mli: Atom Cq Fact_set Fmt Homomorphism Symbol Term

lib/logic/fact_set.mli: Atom Fmt Symbol Term

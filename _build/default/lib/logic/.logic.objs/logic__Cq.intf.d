lib/logic/cq.mli: Atom Fact_set Fmt Gaifman Term

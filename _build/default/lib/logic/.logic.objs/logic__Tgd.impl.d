lib/logic/tgd.ml: Atom Cq Fmt Gaifman Homomorphism List Printf String Symbol Term

lib/logic/ucq.mli: Cq Fact_set Fmt Term

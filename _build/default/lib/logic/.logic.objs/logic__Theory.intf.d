lib/logic/theory.mli: Fact_set Fmt Symbol Tgd

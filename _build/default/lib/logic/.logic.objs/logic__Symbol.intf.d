lib/logic/symbol.mli: Fmt Map Set

lib/logic/parser.ml: Atom Cq Fact_set Fmt Hashtbl List String Symbol Term Tgd Theory

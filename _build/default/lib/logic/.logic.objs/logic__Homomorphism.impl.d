lib/logic/homomorphism.ml: Atom Fact_set Int Lazy List Term

lib/logic/theory.ml: Fmt List Symbol Tgd

lib/logic/containment.ml: Atom Cq Homomorphism List String Term

lib/logic/symbol.ml: Fmt Int Map Set String

lib/logic/render.mli: Fact_set Symbol Term

lib/logic/atom.mli: Fmt Map Set Symbol Term

lib/logic/gaifman.mli: Atom Fact_set Term

lib/logic/render.ml: Array Atom Buffer Fact_set Fmt Hashtbl List Printf String Symbol Term

lib/logic/term.ml: Fmt Hashtbl Int List Map Set

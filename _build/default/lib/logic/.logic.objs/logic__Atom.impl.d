lib/logic/atom.ml: Array Fmt Hashtbl List Map Printf Set Symbol Term

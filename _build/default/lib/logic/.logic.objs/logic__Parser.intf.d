lib/logic/parser.mli: Cq Fact_set Tgd Theory

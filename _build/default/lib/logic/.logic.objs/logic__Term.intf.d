lib/logic/term.mli: Fmt Map Set

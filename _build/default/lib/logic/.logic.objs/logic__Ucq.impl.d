lib/logic/ucq.ml: Containment Cq Fmt List

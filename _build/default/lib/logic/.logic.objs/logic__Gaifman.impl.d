lib/logic/gaifman.ml: Atom Fact_set List Option Queue Term

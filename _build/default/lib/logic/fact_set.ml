type index = {
  by_rel : Atom.t list Symbol.Map.t;
  by_rel_pos_term : (string * int * int * int, Atom.t list) Hashtbl.t;
      (* key: (rel name, rel arity, position, term id) *)
  domain : Term.Set.t;
}

type t = { set : Atom.Set.t; mutable index : index option }

let of_set set = { set; index = None }
let empty = of_set Atom.Set.empty
let of_list l = of_set (Atom.Set.of_list l)
let to_set t = t.set
let atoms t = Atom.Set.elements t.set
let cardinal t = Atom.Set.cardinal t.set
let is_empty t = Atom.Set.is_empty t.set
let mem a t = Atom.Set.mem a t.set
let add a t = of_set (Atom.Set.add a t.set)
let remove a t = of_set (Atom.Set.remove a t.set)
let union a b = of_set (Atom.Set.union a.set b.set)
let diff a b = of_set (Atom.Set.diff a.set b.set)
let inter a b = of_set (Atom.Set.inter a.set b.set)
let subset a b = Atom.Set.subset a.set b.set
let equal a b = Atom.Set.equal a.set b.set
let filter f t = of_set (Atom.Set.filter f t.set)

let key_of rel pos term =
  (Symbol.name rel, Symbol.arity rel, pos, Term.hash term)

let build_index t =
  let by_rel = ref Symbol.Map.empty in
  let by_rel_pos_term = Hashtbl.create 256 in
  let domain = ref Term.Set.empty in
  Atom.Set.iter
    (fun a ->
      let rel = Atom.rel a in
      by_rel :=
        Symbol.Map.update rel
          (function None -> Some [ a ] | Some l -> Some (a :: l))
          !by_rel;
      List.iteri
        (fun pos term ->
          domain := Term.Set.add term !domain;
          let key = key_of rel pos term in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt by_rel_pos_term key)
          in
          Hashtbl.replace by_rel_pos_term key (a :: prev))
        (Atom.args a))
    t.set;
  { by_rel = !by_rel; by_rel_pos_term; domain = !domain }

let index t =
  match t.index with
  | Some i -> i
  | None ->
      let i = build_index t in
      t.index <- Some i;
      i

let domain t = (index t).domain

let signature t =
  Atom.Set.fold (fun a acc -> Symbol.Set.add (Atom.rel a) acc) t.set
    Symbol.Set.empty

let by_rel t rel =
  Option.value ~default:[] (Symbol.Map.find_opt rel (index t).by_rel)

let candidates t rel ~bound =
  let idx = index t in
  let matches a =
    List.for_all (fun (pos, term) -> Term.equal (Atom.arg a pos) term) bound
  in
  match bound with
  | [] -> by_rel t rel
  | (pos0, term0) :: _ ->
      (* Pick the constraint with the shortest candidate list as the seed. *)
      let seed_list =
        List.fold_left
          (fun best (pos, term) ->
            let l =
              Option.value ~default:[]
                (Hashtbl.find_opt idx.by_rel_pos_term (key_of rel pos term))
            in
            match best with
            | None -> Some l
            | Some b -> if List.length l < List.length b then Some l else best)
          None bound
        |> Option.value
             ~default:
               (Option.value ~default:[]
                  (Hashtbl.find_opt idx.by_rel_pos_term
                     (key_of rel pos0 term0)))
      in
      List.filter matches seed_list

let restrict t allowed =
  filter
    (fun a -> List.for_all (fun term -> Term.Set.mem term allowed) (Atom.args a))
    t

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Atom.pp) (atoms t)

type t = { name : string; rules : Tgd.t list }

let make ?(name = "") rules = { name; rules }
let name t = t.name
let rules t = t.rules

let signature t =
  List.fold_left
    (fun acc r -> Symbol.Set.union acc (Tgd.signature r))
    Symbol.Set.empty t.rules

let max_arity t =
  Symbol.Set.fold (fun s acc -> max acc (Symbol.arity s)) (signature t) 0

let is_binary t = max_arity t <= 2
let is_datalog t = List.for_all Tgd.is_datalog t.rules
let is_linear t = List.for_all Tgd.is_linear t.rules
let is_guarded t = List.for_all Tgd.is_guarded t.rules
let is_connected t = List.for_all Tgd.is_connected t.rules
let is_single_head t = List.for_all Tgd.is_single_head t.rules
let is_frontier_one t = List.for_all Tgd.is_frontier_one t.rules
let datalog_rules t = List.filter Tgd.is_datalog t.rules

let existential_rules t =
  List.filter (fun r -> not (Tgd.is_datalog r)) t.rules

let satisfied_in t f = List.for_all (fun r -> Tgd.satisfied_in r f) t.rules

let union a b = { name = a.name ^ "+" ^ b.name; rules = a.rules @ b.rules }

let pp ppf t =
  Fmt.pf ppf "@[<v>theory %s:@,%a@]" t.name
    (Fmt.list ~sep:Fmt.cut (fun ppf r ->
         Fmt.pf ppf "  %a" Tgd.pp r))
    t.rules

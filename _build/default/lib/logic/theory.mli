(** Theories (rule sets): finite sets of TGDs, with the syntactic
    classifications the paper discusses (Section 1). *)

type t = private { name : string; rules : Tgd.t list }

val make : ?name:string -> Tgd.t list -> t
val name : t -> string
val rules : t -> Tgd.t list
val signature : t -> Symbol.Set.t
val max_arity : t -> int
val is_binary : t -> bool
(** All predicates at most binary (Theorem 3's hypothesis). *)

val is_datalog : t -> bool
val is_linear : t -> bool
val is_guarded : t -> bool
val is_connected : t -> bool
val is_single_head : t -> bool
val is_frontier_one : t -> bool

val datalog_rules : t -> Tgd.t list
(** [T_DL] of Appendix A. *)

val existential_rules : t -> Tgd.t list
(** [T_exists] of Appendix A. *)

val satisfied_in : t -> Fact_set.t -> bool
(** [F |= T]: plain first-order model check. *)

val union : t -> t -> t
val pp : t Fmt.t

(** CQ containment, equivalence, isomorphism, and query cores
    (Chandra-Merlin).

    Terminology note: the paper's "phi contains psi" is logical implication
    of answers. To avoid direction confusion we expose [implies]:
    [implies q1 q2] holds iff every answer of [q1] (over every structure) is
    an answer of [q2] — certified by a homomorphism from [q2] to [q1] that
    is the identity (positionally) on answer variables. *)

val implies : Cq.t -> Cq.t -> bool
(** [implies q1 q2]: answers(q1) is a subset of answers(q2) on every
    structure. Requires equally long free-variable lists. *)

val equivalent : Cq.t -> Cq.t -> bool

val isomorphic : Cq.t -> Cq.t -> bool
(** Equality up to renaming of bound variables (free variables correspond
    positionally). *)

val core_of_query : Cq.t -> Cq.t
(** Remove redundant body atoms until none is redundant: the core of the
    query, equivalent to the input. *)

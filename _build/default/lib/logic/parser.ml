exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Quoted of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Arrow
  | Colon
  | Turnstile (* :- *)
  | Kw_exists
  | Kw_true
  | Kw_dom
  | Eof

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | Quoted s -> Fmt.pf ppf "constant %S" s
  | Lparen -> Fmt.string ppf "'('"
  | Rparen -> Fmt.string ppf "')'"
  | Comma -> Fmt.string ppf "','"
  | Dot -> Fmt.string ppf "'.'"
  | Arrow -> Fmt.string ppf "'->'"
  | Colon -> Fmt.string ppf "':'"
  | Turnstile -> Fmt.string ppf "':-'"
  | Kw_exists -> Fmt.string ppf "'exists'"
  | Kw_true -> Fmt.string ppf "'true'"
  | Kw_dom -> Fmt.string ppf "'dom'"
  | Eof -> Fmt.string ppf "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '\n' then begin
      (* Newlines terminate rules/facts like '.' does. *)
      push Dot;
      incr i
    end
    else if c = '#' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (push Lparen; incr i)
    else if c = ')' then (push Rparen; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = '.' then (push Dot; incr i)
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '>' then begin
      push Arrow;
      i := !i + 2
    end
    else if c = ':' && !i + 1 < n && input.[!i + 1] = '-' then begin
      push Turnstile;
      i := !i + 2
    end
    else if c = ':' then (push Colon; incr i)
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && input.[!j] <> '"' do
        incr j
      done;
      if !j >= n then fail "unterminated string constant";
      push (Quoted (String.sub input (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char input.[!j] do
        incr j
      done;
      let word = String.sub input !i (!j - !i) in
      let tok =
        match word with
        | "exists" -> Kw_exists
        | "true" -> Kw_true
        | "dom" -> Kw_dom
        | _ -> Ident word
      in
      push tok;
      i := !j
    end
    else fail "unexpected character %C at offset %d" c !i
  done;
  push Eof;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Token stream with one-symbol lookahead                             *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> Eof | t :: _ -> t

let advance s =
  match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let eat s expected =
  let t = peek s in
  if t = expected then advance s
  else fail "expected %a but found %a" pp_token expected pp_token t

let skip_dots s =
  while peek s = Dot do
    advance s
  done

(* ------------------------------------------------------------------ *)
(* Arity-inferring symbol table                                       *)
(* ------------------------------------------------------------------ *)

type symtab = (string, Symbol.t) Hashtbl.t

let symbol (tab : symtab) name arity =
  match Hashtbl.find_opt tab name with
  | Some s when Symbol.arity s = arity -> s
  | Some s ->
      fail "relation %s used with arity %d but previously with arity %d" name
        arity (Symbol.arity s)
  | None ->
      let s = Symbol.make name ~arity in
      Hashtbl.add tab name s;
      s

(* ------------------------------------------------------------------ *)
(* Grammar                                                            *)
(* ------------------------------------------------------------------ *)

(* [ident_is] decides whether a bare identifier is a variable or constant
   (rules vs instances). *)
let parse_term ~ident_is s =
  match peek s with
  | Quoted c ->
      advance s;
      Term.const c
  | Ident x ->
      advance s;
      ident_is x
  | t -> fail "expected a term but found %a" pp_token t

let parse_atom ~ident_is tab s =
  match peek s with
  | Ident rel_name -> (
      advance s;
      match peek s with
      | Lparen ->
          advance s;
          let rec args acc =
            let t = parse_term ~ident_is s in
            match peek s with
            | Comma ->
                advance s;
                args (t :: acc)
            | Rparen ->
                advance s;
                List.rev (t :: acc)
            | tok -> fail "expected ',' or ')' but found %a" pp_token tok
          in
          let ts = args [] in
          Atom.make (symbol tab rel_name (List.length ts)) ts
      | _ ->
          (* Nullary predicate written without parentheses. *)
          Atom.make (symbol tab rel_name 0) [])
  | t -> fail "expected an atom but found %a" pp_token t

let rec parse_atom_list ~ident_is tab s acc =
  let a = parse_atom ~ident_is tab s in
  match peek s with
  | Comma ->
      advance s;
      parse_atom_list ~ident_is tab s (a :: acc)
  | _ -> List.rev (a :: acc)

let as_var x = Term.var x

(* body ::= 'true' | body-item (',' body-item)*
   body-item ::= atom | 'dom' '(' var (',' var)* ')' *)
let parse_body tab s =
  if peek s = Kw_true then begin
    advance s;
    ([], [])
  end
  else
    let atoms = ref [] and doms = ref [] in
    let parse_item () =
      if peek s = Kw_dom then begin
        advance s;
        eat s Lparen;
        let rec vars () =
          (match peek s with
          | Ident x ->
              advance s;
              doms := Term.var x :: !doms
          | t -> fail "expected a variable in dom(...) but found %a" pp_token t);
          match peek s with
          | Comma ->
              advance s;
              vars ()
          | Rparen -> advance s
          | t -> fail "expected ',' or ')' but found %a" pp_token t
        in
        vars ()
      end
      else atoms := parse_atom ~ident_is:as_var tab s :: !atoms
    in
    parse_item ();
    while peek s = Comma do
      advance s;
      parse_item ()
    done;
    (List.rev !atoms, List.rev !doms)

(* head ::= ['exists' var+ '.'] atom (',' atom)* *)
let parse_head tab s =
  if peek s = Kw_exists then begin
    advance s;
    let rec vars acc =
      match peek s with
      | Ident x ->
          advance s;
          vars (x :: acc)
      | Dot ->
          advance s;
          List.rev acc
      | t -> fail "expected a variable or '.' after exists, found %a" pp_token t
    in
    let _declared = vars [] in
    parse_atom_list ~ident_is:as_var tab s []
  end
  else parse_atom_list ~ident_is:as_var tab s []

let parse_rule_inner tab s =
  (* Optional 'name :' prefix: an identifier followed by a colon. *)
  let rule_name =
    match s.toks with
    | Ident name :: Colon :: rest ->
        s.toks <- rest;
        name
    | _ -> ""
  in
  let body, doms = parse_body tab s in
  eat s Arrow;
  let head = parse_head tab s in
  Tgd.make ~name:rule_name ~dom_vars:doms ~body ~head ()

let with_stream input f =
  let s = { toks = tokenize input } in
  let result = f s in
  skip_dots s;
  (match peek s with
  | Eof -> ()
  | t -> fail "trailing input: %a" pp_token t);
  result

let parse_rule input =
  with_stream input (fun s ->
      skip_dots s;
      let tab = Hashtbl.create 16 in
      parse_rule_inner tab s)

let parse_theory ?(name = "") input =
  with_stream input (fun s ->
      let tab = Hashtbl.create 16 in
      let rules = ref [] in
      skip_dots s;
      while peek s <> Eof do
        rules := parse_rule_inner tab s :: !rules;
        (match peek s with
        | Dot -> skip_dots s
        | Eof -> ()
        | t -> fail "expected '.' between rules, found %a" pp_token t);
        skip_dots s
      done;
      Theory.make ~name (List.rev !rules))

let parse_instance input =
  with_stream input (fun s ->
      let tab = Hashtbl.create 16 in
      let facts = ref [] in
      let as_const x = Term.const x in
      skip_dots s;
      while peek s <> Eof do
        facts := parse_atom ~ident_is:as_const tab s :: !facts;
        (match peek s with
        | Dot | Comma -> advance s
        | Eof -> ()
        | t -> fail "expected '.' between facts, found %a" pp_token t);
        skip_dots s
      done;
      Fact_set.of_list (List.rev !facts))

let parse_query input =
  with_stream input (fun s ->
      let tab = Hashtbl.create 16 in
      skip_dots s;
      let free =
        if peek s = Turnstile then []
        else begin
          eat s Lparen;
          let rec vars acc =
            match peek s with
            | Ident x -> (
                advance s;
                match peek s with
                | Comma ->
                    advance s;
                    vars (Term.var x :: acc)
                | Rparen ->
                    advance s;
                    List.rev (Term.var x :: acc)
                | t -> fail "expected ',' or ')', found %a" pp_token t)
            | Rparen ->
                advance s;
                List.rev acc
            | t -> fail "expected a variable, found %a" pp_token t
          in
          vars []
        end
      in
      eat s Turnstile;
      let atoms = parse_atom_list ~ident_is:as_var tab s [] in
      Cq.make ~free atoms)

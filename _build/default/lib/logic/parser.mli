(** A small concrete syntax for rules, theories, instances and queries.

    Rules (identifiers are variables; constants are ["quoted"]):
    {v
      grid: R(x,x'), G(x,u), G(u,u') -> exists z. R(u',z), G(x',z)
      loop: true -> exists x. R(x,x), G(x,x)
      pins: dom(x) -> exists z z'. R(x,z), G(x,z')
      mother: Human(y) -> exists z. Mother(y,z)
    v}
    A theory is rules separated by [.] or newlines; [#]-comments allowed.

    Instances (identifiers are constants):
    {v  E(a,b). E(b,c). Human(abel)  v}

    Queries (identifiers are variables, constants ["quoted"]):
    {v
      (x, y) :- R(x,z), G(z,y)      # answer variables x, y
      :- Mother("abel", y)          # boolean
    v}

    Relation arities are inferred from use and must be consistent within one
    [parse_*] call. All functions raise [Parse_error] with a message and
    position on bad input. *)

exception Parse_error of string

val parse_rule : string -> Tgd.t
val parse_theory : ?name:string -> string -> Theory.t
val parse_instance : string -> Fact_set.t
val parse_query : string -> Cq.t

(** Parent and ancestor functions over a chase run (Appendix A).

    A *parent function* chooses, for every derived atom, one of its
    recorded rule applications; ancestors are the original-instance facts
    reachable through parents. The choice matters: Example 66 shows a
    parent choice under which a single chase tree accumulates unboundedly
    many ancestors, while after normalization every choice is bounded
    (Lemma 77) — hence the [chooser] parameter, including an adversarial
    one. *)

open Logic

type chooser =
  | First  (** the derivation that actually created the atom *)
  | Adversarial of int
      (** spread choices across the recorded derivations (salted), to
          maximize ancestor diversity as in Example 66 *)

val parents : Chase.Engine.run -> chooser -> Atom.t -> Atom.t list
(** [sigma(body(rho))] of the chosen derivation; [[]] for initial facts.
    Only derivations whose body atoms all appear strictly earlier are
    eligible (so the parent relation is well-founded). *)

val ancestors : Chase.Engine.run -> chooser -> Atom.t -> Atom.Set.t
(** The fact-set ancestors: [anc(alpha) = {alpha}] for initial facts,
    union of the parents' ancestors otherwise. Memoize externally if
    calling in bulk — an internal cache is keyed per run+chooser call. *)

val connected_ancestors :
  Chase.Engine.run -> chooser -> nullary:Symbol.Set.t -> Atom.t -> Atom.Set.t
(** Ancestors through non-nullary parents only ([canc] of Appendix A). *)

type tree = { root : Term.t; atoms : Atom.t list }

val sensible_trees : Chase.Engine.run -> tree list
(** The forest of Observation 64: edges are the *sensible* atoms (created
    by existential rules with non-empty frontier); roots are the
    initial-domain constants and the detached terms. Assumes frontier-one
    existential rules (the Theorem 3 setting). *)

val max_tree_ancestors :
  ?nullary:Symbol.Set.t -> Chase.Engine.run -> chooser -> int
(** [max_t |U_{alpha in S(t)} anc(alpha)|] — the quantity the Crucial Lemma
    bounds for [T_NF] and Example 66 refutes for raw theories. When
    [nullary] is given, ancestors are [connected_ancestors] plus the
    (bounded) nullary contributions, i.e. plain ancestors; the parameter
    only affects which atoms count as tree edges (nullary atoms never
    do). *)

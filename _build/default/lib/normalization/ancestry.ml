open Logic

type chooser = First | Adversarial of int

let eligible_derivations run atom =
  match Chase.Engine.stage_of_atom run atom with
  | None -> []
  | Some stage ->
      List.filter
        (fun (rule, sigma) ->
          List.for_all
            (fun body_atom ->
              let parent = Homomorphism.apply sigma
                  ~flexible:(Term.Set.of_list (Tgd.body_vars rule))
                  body_atom
              in
              match Chase.Engine.stage_of_atom run parent with
              | Some s -> s < stage
              | None -> false)
            (Tgd.body rule))
        (Chase.Engine.derivations run atom)

let choose run chooser atom derivations =
  match derivations with
  | [] -> None
  | _ :: _ -> (
      match chooser with
      | First -> Some (List.nth derivations (List.length derivations - 1))
      | Adversarial salt ->
          (* Key the pick on the (stable) chase stage so that successive
             levels of a derivation chain pick different parents —
             Example 66's adversarial schedule. *)
          let stage =
            Option.value ~default:0 (Chase.Engine.stage_of_atom run atom)
          in
          let idx =
            abs (((stage / 2) + salt) mod List.length derivations)
          in
          Some (List.nth derivations idx))

let parents run chooser atom =
  if Fact_set.mem atom (Chase.Engine.initial run) then []
  else
    match choose run chooser atom (eligible_derivations run atom) with
    | None -> []
    | Some (rule, sigma) ->
        List.map
          (Homomorphism.apply sigma
             ~flexible:(Term.Set.of_list (Tgd.body_vars rule)))
          (Tgd.body rule)

let ancestors_with ~parent_filter run chooser atom =
  let cache = Hashtbl.create 64 in
  let rec go atom =
    match Hashtbl.find_opt cache (Atom.hash atom, atom) with
    | Some s -> s
    | None ->
        let result =
          if Fact_set.mem atom (Chase.Engine.initial run) then
            Atom.Set.singleton atom
          else
            List.fold_left
              (fun acc p ->
                if parent_filter p then Atom.Set.union acc (go p) else acc)
              Atom.Set.empty (parents run chooser atom)
        in
        Hashtbl.replace cache (Atom.hash atom, atom) result;
        result
  in
  go atom

let ancestors run chooser atom =
  ancestors_with ~parent_filter:(fun _ -> true) run chooser atom

let connected_ancestors run chooser ~nullary atom =
  ancestors_with
    ~parent_filter:(fun p -> not (Symbol.Set.mem (Atom.rel p) nullary))
    run chooser atom

type tree = { root : Term.t; atoms : Atom.t list }

let is_sensible run atom =
  match Chase.Engine.derivations run atom with
  | [] -> false
  | (rule, _) :: _ -> Tgd.exist_vars rule <> [] && Tgd.frontier rule <> []

let sensible_trees run =
  let initial_dom = Fact_set.domain (Chase.Engine.initial run) in
  (* Parent term of a sensible binary atom: its frontier image. *)
  let sensible =
    List.filter (is_sensible run) (Fact_set.atoms (Chase.Engine.result run))
  in
  let parent_term = Hashtbl.create 64 in
  List.iter
    (fun atom ->
      match Chase.Engine.atom_frontier run atom with
      | Some fr when Term.Set.cardinal fr >= 1 ->
          let p = Term.Set.min_elt fr in
          let child =
            List.find_opt
              (fun t -> not (Term.Set.mem t fr))
              (Atom.args atom)
          in
          (match child with
          | Some child_term ->
              Hashtbl.replace parent_term (Term.hash child_term) (p, atom)
          | None -> ())
      | Some _ | None -> ())
    sensible;
  (* Root of a term: follow parent links. *)
  let root_cache = Hashtbl.create 64 in
  let rec root_of t =
    match Hashtbl.find_opt root_cache (Term.hash t) with
    | Some r -> r
    | None ->
        let r =
          if Term.Set.mem t initial_dom then t
          else
            match Hashtbl.find_opt parent_term (Term.hash t) with
            | Some (p, _) -> root_of p
            | None -> t (* detached term: its own root *)
        in
        Hashtbl.replace root_cache (Term.hash t) r;
        r
  in
  let trees = Hashtbl.create 16 in
  List.iter
    (fun atom ->
      (* The tree an atom belongs to is the root of its frontier term. *)
      match Chase.Engine.atom_frontier run atom with
      | Some fr when not (Term.Set.is_empty fr) ->
          let r = root_of (Term.Set.min_elt fr) in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt trees (Term.hash r))
          in
          Hashtbl.replace trees (Term.hash r) (atom :: prev)
      | Some _ | None -> ())
    sensible;
  (* Also include empty trees for initial constants without sensible
     children?  Not needed: ancestor maxima are over non-empty trees. *)
  Hashtbl.fold
    (fun _ atoms acc ->
      match atoms with
      | [] -> acc
      | a :: _ ->
          let root =
            match Chase.Engine.atom_frontier run a with
            | Some fr when not (Term.Set.is_empty fr) ->
                root_of (Term.Set.min_elt fr)
            | Some _ | None -> List.hd (Atom.args a)
          in
          { root; atoms } :: acc)
    trees []

let max_tree_ancestors ?nullary run chooser =
  let anc atom =
    match nullary with
    | Some n -> connected_ancestors run chooser ~nullary:n atom
    | None -> ancestors run chooser atom
  in
  List.fold_left
    (fun acc tree ->
      let union =
        List.fold_left
          (fun s atom -> Atom.Set.union s (anc atom))
          Atom.Set.empty tree.atoms
      in
      max acc (Atom.Set.cardinal union))
    0 (sensible_trees run)

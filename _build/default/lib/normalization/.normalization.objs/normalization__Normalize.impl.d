lib/normalization/normalize.ml: Atom Containment Cq Fmt Gaifman List Logic Printf Rewriting Symbol Term Tgd Theory Ucq

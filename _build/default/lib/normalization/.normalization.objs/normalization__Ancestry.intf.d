lib/normalization/ancestry.mli: Atom Chase Logic Symbol Term

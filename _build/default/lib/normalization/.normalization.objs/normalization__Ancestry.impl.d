lib/normalization/ancestry.ml: Atom Chase Fact_set Hashtbl Homomorphism List Logic Option Symbol Term Tgd

lib/normalization/crucial.mli: Fact_set Logic Rewriting Theory

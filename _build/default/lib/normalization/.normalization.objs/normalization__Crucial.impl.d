lib/normalization/crucial.ml: Chase List Logic Normalize Option Rewriting Tgd Theory

lib/normalization/normalize.mli: Logic Rewriting Symbol Theory

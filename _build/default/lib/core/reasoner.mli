(** A caching certain-answer reasoner — the downstream-user API.

    Create a reasoner from a theory once; it computes and caches a UCQ
    rewriting per query shape (keyed up to variable renaming) and then
    answers every instance by direct UCQ evaluation — no chase at query
    time. Queries whose rewriting does not complete within budget fall
    back to the chase, with the outcome reported so callers can tell which
    regime they are in. *)

open Logic

type t

type route =
  | Rewriting  (** answered by evaluating the cached UCQ over the instance *)
  | Chase_fallback of [ `Saturated | `Prefix of int ]
      (** answered through the chase (no complete rewriting available);
          [`Prefix n] means a depth-[n] prefix decided the positives only *)

val create :
  ?rewrite_budget:Rewriting.Rewrite.budget ->
  ?chase_depth:int -> ?chase_atoms:int ->
  Theory.t -> t

val theory : t -> Theory.t

val answer : t -> Fact_set.t -> Cq.t -> Term.t list list * route
(** Certain answers of the query over the instance. *)

val holds : t -> Fact_set.t -> Cq.t -> Term.t list -> bool * route

val cached_rewritings : t -> int
(** Number of query shapes with a cached (complete) rewriting. *)

val rewriting_for : t -> Cq.t -> Ucq.t option
(** The cached (or freshly computed) complete rewriting, if any. *)

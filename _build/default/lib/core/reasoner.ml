open Logic

type route = Rewriting | Chase_fallback of [ `Saturated | `Prefix of int ]

type cache_entry = Rewritten of Ucq.t | Not_rewritable

type t = {
  theory : Theory.t;
  rewrite_budget : Rewriting.Rewrite.budget;
  chase_depth : int;
  chase_atoms : int;
  cache : (string, (Cq.t * cache_entry) list) Hashtbl.t;
      (* bucketed by iso fingerprint; matched up to isomorphism *)
}

let create ?(rewrite_budget = Rewriting.Rewrite.default_budget)
    ?(chase_depth = 20) ?(chase_atoms = 200_000) theory =
  {
    theory;
    rewrite_budget;
    chase_depth;
    chase_atoms;
    cache = Hashtbl.create 32;
  }

let theory r = r.theory

let lookup r q =
  let key = Cq.iso_key q in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt r.cache key) in
  match
    List.find_opt (fun (q', _) -> Containment.isomorphic q q') bucket
  with
  | Some (_, entry) -> Some entry
  | None -> None

let store r q entry =
  let key = Cq.iso_key q in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt r.cache key) in
  Hashtbl.replace r.cache key ((q, entry) :: bucket)

let rewriting_entry r q =
  match lookup r q with
  | Some entry -> entry
  | None ->
      let result = Rewriting.Rewrite.rewrite ~budget:r.rewrite_budget r.theory q in
      let entry =
        match result.Rewriting.Rewrite.outcome with
        | Rewriting.Rewrite.Complete -> Rewritten result.Rewriting.Rewrite.ucq
        | _ -> Not_rewritable
      in
      store r q entry;
      entry

let rewriting_for r q =
  match rewriting_entry r q with
  | Rewritten ucq -> Some ucq
  | Not_rewritable -> None

let cached_rewritings r =
  Hashtbl.fold
    (fun _ bucket acc ->
      acc
      + List.length
          (List.filter (function _, Rewritten _ -> true | _ -> false) bucket))
    r.cache 0

module Tuple_set = Set.Make (struct
  type t = Term.t list

  let compare = List.compare Term.compare
end)

(* The cached rewriting is over the *original* query's variables; to answer
   an isomorphic query we just evaluate the rewriting of THIS query — the
   cache stores per-isomorphism-class representatives, so recompute against
   the representative via a renaming. Cheapest correct approach: cache hit
   requires isomorphism, and we evaluate the representative's UCQ, mapping
   the answer positions through the positional free-variable correspondence
   (isomorphism fixes free variables positionally, so answers transfer
   verbatim). *)
let answer r d q =
  match rewriting_entry r q with
  | Rewritten ucq ->
      let answers =
        List.fold_left
          (fun acc disjunct ->
            List.fold_left
              (fun acc tuple -> Tuple_set.add tuple acc)
              acc (Cq.answers disjunct d))
          Tuple_set.empty (Ucq.disjuncts ucq)
      in
      let dom = Fact_set.domain d in
      ( Tuple_set.elements
          (Tuple_set.filter
             (fun tuple -> List.for_all (fun t -> Term.Set.mem t dom) tuple)
             answers),
        Rewriting )
  | Not_rewritable ->
      let run =
        Chase.Engine.run ~max_depth:r.chase_depth ~max_atoms:r.chase_atoms
          r.theory d
      in
      let dom = Fact_set.domain d in
      let answers =
        List.filter
          (fun tuple -> List.for_all (fun t -> Term.Set.mem t dom) tuple)
          (Cq.answers q (Chase.Engine.result run))
      in
      let mode =
        if Chase.Engine.saturated run then `Saturated
        else `Prefix (Chase.Engine.depth run)
      in
      (answers, Chase_fallback mode)

let holds r d q tuple =
  match rewriting_entry r q with
  | Rewritten ucq -> (Ucq.holds ucq d tuple, Rewriting)
  | Not_rewritable ->
      let run =
        Chase.Engine.run ~max_depth:r.chase_depth ~max_atoms:r.chase_atoms
          r.theory d
      in
      let mode =
        if Chase.Engine.saturated run then `Saturated
        else `Prefix (Chase.Engine.depth run)
      in
      (Cq.holds q (Chase.Engine.result run) tuple, Chase_fallback mode)

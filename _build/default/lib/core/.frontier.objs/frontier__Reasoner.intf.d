lib/core/reasoner.mli: Cq Fact_set Logic Rewriting Term Theory Ucq

lib/core/reasoner.ml: Chase Containment Cq Fact_set Hashtbl List Logic Option Rewriting Set Term Theory Ucq

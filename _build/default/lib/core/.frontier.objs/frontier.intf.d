lib/core/frontier.mli: Chase Logic Marked Normalization Order Reasoner Rewriting Theories

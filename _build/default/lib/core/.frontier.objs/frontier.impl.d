lib/core/frontier.ml: Chase List Logic Marked Normalization Order Reasoner Rewriting Set Theories

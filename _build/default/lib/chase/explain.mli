(** Derivation explanations: why does [T, D |= q(a)]?

    From the chase's recorded provenance this module extracts, for an
    entailed query, a witness homomorphism, a derivation forest (each
    matched chase atom unfolded down to instance facts through one chosen
    rule application per atom), and the *support*: the sub-instance of [D]
    actually used. The support is a certified witness for Observation 29 —
    [Ch(T, support) |= q(a)] — computed in provenance time instead of the
    exponential subset search of {!Rewriting.Locality.atom_support}. *)

open Logic

type derivation =
  | Fact of Atom.t  (** an instance fact *)
  | Derived of {
      atom : Atom.t;
      rule : Tgd.t;
      premises : derivation list;
    }

type t = {
  witness : Homomorphism.mapping;  (** query variables to chase terms *)
  derivations : derivation list;  (** one tree per query atom *)
  support : Fact_set.t;  (** the instance facts used (leaves) *)
  depth : int;  (** maximal derivation-tree height *)
}

val explain : Engine.run -> Cq.t -> Term.t list -> t option
(** [None] when the query does not hold in the computed prefix. The
    derivation choice is the chase's own creating application (the
    [First] parent function). *)

val support_is_sufficient :
  ?max_depth:int -> ?max_atoms:int -> Engine.run -> t -> Cq.t ->
  Term.t list -> bool
(** Re-chase just the support and confirm the query still holds — the
    executable content of Observation 29. *)

val pp_derivation : derivation Fmt.t
val pp : t Fmt.t

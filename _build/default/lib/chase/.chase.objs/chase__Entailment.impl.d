lib/chase/entailment.ml: Bool Cq Engine Fact_set List Logic Term

lib/chase/fusfes.mli: Fact_set Logic Theory

lib/chase/core_model.ml: Atom Engine Fact_set Homomorphism List Logic Term Theory

lib/chase/engine.mli: Atom Fact_set Homomorphism Logic Term Tgd Theory

lib/chase/fusfes.ml: Core_model Engine Fact_set List Logic

lib/chase/explain.mli: Atom Cq Engine Fact_set Fmt Homomorphism Logic Term Tgd

lib/chase/variants.ml: Atom Core_model Engine Fact_set List Logic Printf Term Tgd Theory

lib/chase/termination.ml: Core_model Engine List

lib/chase/variants.mli: Fact_set Logic Theory

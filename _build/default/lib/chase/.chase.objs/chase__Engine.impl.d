lib/chase/engine.ml: Array Atom Fact_set Hashtbl Homomorphism Int List Logic Option Printf Term Tgd Theory

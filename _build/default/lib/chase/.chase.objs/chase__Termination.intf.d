lib/chase/termination.mli: Fact_set Logic Theory

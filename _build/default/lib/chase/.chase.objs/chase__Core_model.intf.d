lib/chase/core_model.mli: Fact_set Homomorphism Logic Term Theory

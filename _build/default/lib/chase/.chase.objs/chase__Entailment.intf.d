lib/chase/entailment.mli: Cq Engine Fact_set Logic Term Theory

lib/chase/explain.ml: Atom Cq Engine Fact_set Fmt Homomorphism List Logic Option Term Tgd

open Logic

type derivation =
  | Fact of Atom.t
  | Derived of { atom : Atom.t; rule : Tgd.t; premises : derivation list }

type t = {
  witness : Homomorphism.mapping;
  derivations : derivation list;
  support : Fact_set.t;
  depth : int;
}

let rec derivation_height = function
  | Fact _ -> 0
  | Derived { premises; _ } ->
      1 + List.fold_left (fun acc p -> max acc (derivation_height p)) 0 premises

let rec derivation_leaves = function
  | Fact a -> Atom.Set.singleton a
  | Derived { premises; _ } ->
      List.fold_left
        (fun acc p -> Atom.Set.union acc (derivation_leaves p))
        Atom.Set.empty premises

(* Unfold one atom down to instance facts, following the creating rule
   application (the one recorded first; derivations were prepended, so it
   is the last element), guarding against cyclic re-derivations by always
   descending to strictly earlier stages. *)
let rec unfold run atom =
  if Fact_set.mem atom (Engine.initial run) then Fact atom
  else
    let stage = Option.value ~default:max_int (Engine.stage_of_atom run atom) in
    let eligible =
      List.filter
        (fun (rule, sigma) ->
          List.for_all
            (fun body_atom ->
              let parent =
                Homomorphism.apply sigma
                  ~flexible:(Term.Set.of_list (Tgd.body_vars rule))
                  body_atom
              in
              match Engine.stage_of_atom run parent with
              | Some s -> s < stage
              | None -> false)
            (Tgd.body rule))
        (Engine.derivations run atom)
    in
    match List.rev eligible with
    | [] ->
        (* No recorded derivation (should not happen for derived atoms in
           the prefix); treat as a leaf so the caller still gets a tree. *)
        Fact atom
    | (rule, sigma) :: _ ->
        let premises =
          List.map
            (fun body_atom ->
              unfold run
                (Homomorphism.apply sigma
                   ~flexible:(Term.Set.of_list (Tgd.body_vars rule))
                   body_atom))
            (Tgd.body rule)
        in
        Derived { atom; rule; premises }

let explain run q tuple =
  if List.length tuple <> List.length (Cq.free q) then None
  else
    let init =
      List.fold_left2
        (fun m v a -> Term.Map.add v a m)
        Term.Map.empty (Cq.free q) tuple
    in
    let witness =
      Homomorphism.find
        (Homomorphism.make ~init
           ~flexible:(Term.Set.of_list (Cq.vars q))
           ~pattern:(Cq.atoms q)
           ~target:(Engine.result run) ())
    in
    match witness with
    | None -> None
    | Some h ->
        let flexible = Term.Set.of_list (Cq.vars q) in
        let matched =
          List.map (Homomorphism.apply h ~flexible) (Cq.atoms q)
        in
        let derivations = List.map (unfold run) matched in
        let support =
          List.fold_left
            (fun acc d -> Atom.Set.union acc (derivation_leaves d))
            Atom.Set.empty derivations
        in
        Some
          {
            witness = h;
            derivations;
            support =
              Fact_set.inter (Fact_set.of_set support) (Engine.initial run);
            depth =
              List.fold_left
                (fun acc d -> max acc (derivation_height d))
                0 derivations;
          }

let support_is_sufficient ?(max_depth = 20) ?max_atoms run expl q tuple =
  let sub_run =
    Engine.run ~max_depth ?max_atoms (Engine.theory run) expl.support
  in
  Cq.holds q (Engine.result sub_run) tuple

let rec pp_derivation ppf = function
  | Fact a -> Fmt.pf ppf "%a  [fact]" Atom.pp a
  | Derived { atom; rule; premises } ->
      Fmt.pf ppf "@[<v 2>%a  [by %s]%a@]" Atom.pp atom
        (match Tgd.name rule with "" -> "rule" | n -> n)
        (fun ppf ps ->
          List.iter (fun p -> Fmt.pf ppf "@,%a" pp_derivation p) ps)
        premises

let pp ppf e =
  Fmt.pf ppf "@[<v>support (%d facts):@,%a@,derivations (height %d):@,%a@]"
    (Fact_set.cardinal e.support)
    Fact_set.pp e.support e.depth
    (Fmt.list ~sep:Fmt.cut pp_derivation)
    e.derivations

(* Genealogy: ontology-mediated query answering over a family database.

   A small description-logic-flavoured ontology (binary, linear — hence BDD
   and local, Theorem 3) over parents, ancestors and royals; the example
   shows query answering by rewriting, core termination, and the uniform
   bound of Theorem 4 on a family of instances.

   Run with: dune exec examples/genealogy.exe *)

let ontology =
  Frontier.Parse.theory ~name:"genealogy"
    "parent_is_ancestor: Parent(x,y) -> Ancestor(x,y)\n\
     royal_has_parent:   Royal(x) -> exists p. Parent(p,x)\n\
     royal_parent:       Parent(p,x), Royal(x) -> Royal(p)\n\
     ancestors_compose:  Ancestor(x,y), Ancestor(y,z) -> Ancestor(x,z)"

let database =
  Frontier.Parse.instance
    "Parent(victoria, edward7). Parent(edward7, george5).\n\
     Parent(george5, george6). Parent(george6, elizabeth2).\n\
     Royal(elizabeth2). Human(victoria)"

let () =
  Fmt.pr "ontology:@.%a@.@." Frontier.Theory.pp ontology;
  Fmt.pr "classification: %a@.@." Frontier.Classes.pp_report
    (Frontier.classify ontology);

  (* Who are Elizabeth's certain ancestors? *)
  let q = Frontier.Parse.query "(a) :- Ancestor(a, \"elizabeth2\")" in
  let answers = Frontier.certain_answers ~max_depth:8 ontology database q in
  Fmt.pr "certain ancestors of elizabeth2 (%d):@." (List.length answers);
  List.iter
    (fun t ->
      Fmt.pr "  %a@." (Fmt.list ~sep:(Fmt.any ", ") Frontier.Term.pp) t)
    answers;

  (* Royalty propagates up the (partially unknown) parent chain: the chase
     invents a parent for every royal; certain royals stay certain. *)
  let royals = Frontier.Parse.query "(x) :- Royal(x)" in
  let certain_royals =
    Frontier.certain_answers ~max_depth:8 ontology database royals
  in
  Fmt.pr "@.certain royals (%d):@." (List.length certain_royals);
  List.iter
    (fun t ->
      Fmt.pr "  %a@." (Fmt.list ~sep:(Fmt.any ", ") Frontier.Term.pp) t)
    certain_royals;

  (* Rewriting of the royalty query: it climbs the explicit parent chain. *)
  let r = Frontier.rewrite ontology royals in
  (match r.Frontier.Rewrite.outcome with
  | Frontier.Rewrite.Complete ->
      Fmt.pr "@.rew(Royal(x)) has %d disjuncts, max size %d@."
        (Frontier.Ucq.cardinal r.Frontier.Rewrite.ucq)
        (Frontier.Ucq.max_disjunct_size r.Frontier.Rewrite.ucq)
  | _ -> Fmt.pr "@.rewriting incomplete (Datalog ancestor closure)@.");

  (* Royals marry: every royal has a spouse, spousehood is symmetric, and
     spouses are royal. Unlike open-ended parent chains, invented spouses
     fold back after one round — the theory is core-terminating AND local,
     so Theorem 4 promises a uniform chase bound; watch c_{T,D} stay flat
     while the family grows. *)
  let marriages =
    Frontier.Parse.theory ~name:"marriages"
      "has:  Royal(x) -> exists s. Spouse(x,s)\n\
       sym:  Spouse(x,y) -> Spouse(y,x)\n\
       roy:  Spouse(x,y) -> Royal(y)"
  in
  let court n =
    Frontier.Parse.instance
      (String.concat ". "
         (List.init n (fun i -> Printf.sprintf "Royal(r%d)" i)))
  in
  Fmt.pr "@.Theorem 4 in action — c_T,D for growing courts under %s:@."
    (Frontier.Theory.name marriages);
  List.iter
    (fun n ->
      match
        Frontier.Termination.core_terminates_on ~max_c:6 ~lookahead:4
          marriages (court n)
      with
      | Frontier.Termination.Holds c ->
          Fmt.pr "  court of %d royals: model inside stage %d@." n c
      | _ -> Fmt.pr "  court of %d royals: budget exhausted@." n)
    [ 1; 2; 4; 6 ];

  (* Contrast: open-ended parent invention (essentially Exercise 12) does
     NOT core-terminate — there is nothing for the fresh ancestors to fold
     onto. *)
  let parents_only =
    Frontier.Parse.theory ~name:"parents"
      "Royal(x) -> exists p. Parent(p,x). Parent(p,x), Royal(x) -> Royal(p)"
  in
  (match
     Frontier.Termination.core_terminates_on ~max_c:5 ~lookahead:4
       parents_only (court 1)
   with
  | Frontier.Termination.Holds c ->
      Fmt.pr "@.unexpected: parent fragment terminated at %d@." c
  | _ ->
      Fmt.pr
        "@.parent fragment: no model within budget — ancestors never fold \
         (it is BDD but, like Exercise 12, not FES)@.")

(* Chase flavours across the termination zoo (Sections 3 and 5).

   The same theory can behave very differently under different chase
   variants: the restricted chase reaches a finite model where the
   semi-oblivious one runs forever, and the oblivious chase diverges even
   more eagerly. Termination and core-termination are properties of the
   (theory, variant) pair — this example walks the paper's zoo through all
   three variants.

   Run with: dune exec examples/chase_zoo.exe *)

open Frontier

let verdict_semi theory d =
  let run = Chase_engine.run ~max_depth:10 ~max_atoms:20_000 theory d in
  if Chase_engine.saturated run then
    Printf.sprintf "terminates (%d stages, %d atoms)" (Chase_engine.depth run)
      (Fact_set.cardinal (Chase_engine.result run))
  else "diverges"

let verdict_oblivious theory d =
  let r = Chase_variants.run_oblivious ~max_depth:10 ~max_atoms:20_000 theory d in
  if r.Chase_variants.saturated then
    Printf.sprintf "terminates (%d stages, %d atoms)" r.Chase_variants.steps
      (Fact_set.cardinal r.Chase_variants.facts)
  else "diverges"

let verdict_restricted theory d =
  let r =
    Chase_variants.run_restricted ~max_applications:500 ~max_atoms:20_000
      theory d
  in
  if r.Chase_variants.saturated then
    Printf.sprintf "model in %d applications (%d atoms)" r.Chase_variants.steps
      (Fact_set.cardinal r.Chase_variants.facts)
  else "diverges"

let core_verdict theory d =
  match Termination.core_terminates_on ~max_c:6 ~lookahead:4 theory d with
  | Termination.Holds c -> Printf.sprintf "FES: model inside Ch_%d" c
  | _ -> "no model found (within budget)"

let () =
  let cases =
    [
      ("T_spouse on Person(ada)", Zoo.t_spouse,
       Fact_set.of_list [ Atom.make Zoo.person [ Term.const "ada" ] ]);
      ("T_p on E(a,b)  [Ex. 12]", Zoo.t_p, Instances.single_edge Zoo.e2);
      ("T_loopcut on E(a,b) [Ex. 23]", Zoo.t_loopcut,
       Instances.single_edge Zoo.e2);
      ("T_a on Human(abel) [Ex. 1]", Zoo.t_a, Instances.human_abel);
      ("T_ex66, m=3 [Ex. 66]", Zoo.t_ex66, Instances.ex66_instance 3);
      ("transitive closure on E^4",
       Parse.theory "E(x,y), E(y,z) -> E(x,z)",
       (let _, _, d = Instances.path Zoo.e2 4 in d));
    ]
  in
  Fmt.pr "%-30s | %-28s | %-28s | %-34s@." "case" "semi-oblivious" "oblivious"
    "restricted";
  Fmt.pr "%s@." (String.make 130 '-');
  List.iter
    (fun (name, theory, d) ->
      Fmt.pr "%-30s | %-28s | %-28s | %-34s@." name (verdict_semi theory d)
        (verdict_oblivious theory d)
        (verdict_restricted theory d))
    cases;

  Fmt.pr "@.core termination (Definition 20) — independent of chase flavour:@.";
  List.iter
    (fun (name, theory, d) ->
      Fmt.pr "  %-30s %s@." name (core_verdict theory d))
    cases;

  (* Exercise 23's punchline, spelled out: the semi-oblivious chase of
     T_loopcut is infinite, yet a model hides inside its second stage. *)
  let d = Instances.single_edge Zoo.e2 in
  match Cores.core_of_chase ~max_c:4 ~lookahead:4 Zoo.t_loopcut d with
  | Some { Cores.c; core; _ } ->
      Fmt.pr
        "@.Exercise 23: the infinite semi-oblivious chase of T_loopcut hides \
         a model in Ch_%d:@.%a@."
        c Fact_set.pp core
  | None -> Fmt.pr "@.unexpected: no core found@."
